package spatialtree

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"spatialtree/internal/wire"
)

// The golden fixtures pin the binary protocol's wire format — exactly
// as testdata/persist does for the snapshot codec. Re-encoding the
// reference values must reproduce the checked-in bytes byte for byte,
// so any change that drifts the format (field order, varint widths,
// header layout, CRC placement) fails loudly here and forces a
// conscious protocol version bump instead of silently breaking every
// deployed client. docs/protocol.md documents the layout these bytes
// embody.

func goldenWireQuery() *wire.Query {
	return &wire.Query{
		ID:      42,
		Kind:    wire.KindTreefix,
		TreeID:  "t69286a04bcfab1e6",
		Op:      "max",
		Vals:    []int64{5, -2, 0, 1 << 40},
		Queries: nil,
	}
}

func goldenWireLCAQuery() *wire.Query {
	return &wire.Query{
		ID:      43,
		Kind:    wire.KindLCA,
		Parents: []int{-1, 0, 0, 1, 1},
		Queries: []wire.LCAQuery{{U: 3, V: 4}, {U: 2, V: 3}},
	}
}

func goldenWireResult() *wire.Result {
	return &wire.Result{
		ID:   42,
		Kind: wire.KindTreefix,
		Sums: []int64{5, 3, 0, 1 << 40},
		Cost: wire.Cost{Energy: 1234, Messages: 56, Depth: 7},
	}
}

func goldenWireError() *wire.Error {
	return &wire.Error{ID: 9, Status: wire.StatusTooMany, Msg: "request queue full"}
}

func readWireGolden(t *testing.T, name string) []byte {
	t.Helper()
	raw, err := os.ReadFile(filepath.Join("testdata", "wire", name))
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

func decodeOneFrame(t *testing.T, raw []byte, wantKind byte) []byte {
	t.Helper()
	rd := wire.NewReader(bytes.NewReader(raw), 1<<20)
	kind, payload, err := rd.Next()
	if err != nil {
		t.Fatal(err)
	}
	if kind != wantKind {
		t.Fatalf("frame kind = %d, want %d", kind, wantKind)
	}
	return payload
}

func TestGoldenWireQueryFrames(t *testing.T) {
	for _, tc := range []struct {
		file string
		q    *wire.Query
	}{
		{"query-treefix.v1.bin", goldenWireQuery()},
		{"query-lca.v1.bin", goldenWireLCAQuery()},
	} {
		want := readWireGolden(t, tc.file)
		if got := wire.AppendQuery(nil, tc.q); !bytes.Equal(got, want) {
			t.Fatalf("query wire format drifted from testdata/wire/%s:\n got %x\nwant %x\n(bump the protocol version rather than regenerate silently)", tc.file, got, want)
		}
		var q wire.Query
		if err := q.Decode(decodeOneFrame(t, want, wire.FrameQuery)); err != nil {
			t.Fatal(err)
		}
		if again := wire.AppendQuery(nil, &q); !bytes.Equal(again, want) {
			t.Fatalf("golden %s does not round-trip through decode", tc.file)
		}
	}
}

func TestGoldenWireResultFrame(t *testing.T) {
	want := readWireGolden(t, "result-treefix.v1.bin")
	if got := wire.AppendResult(nil, goldenWireResult()); !bytes.Equal(got, want) {
		t.Fatalf("result wire format drifted from testdata/wire/result-treefix.v1.bin:\n got %x\nwant %x", got, want)
	}
	var r wire.Result
	if err := r.Decode(decodeOneFrame(t, want, wire.FrameResult)); err != nil {
		t.Fatal(err)
	}
	if again := wire.AppendResult(nil, &r); !bytes.Equal(again, want) {
		t.Fatal("golden result frame does not round-trip through decode")
	}
}

func TestGoldenWireErrorFrame(t *testing.T) {
	want := readWireGolden(t, "error.v1.bin")
	if got := wire.AppendError(nil, goldenWireError()); !bytes.Equal(got, want) {
		t.Fatalf("error wire format drifted from testdata/wire/error.v1.bin:\n got %x\nwant %x", got, want)
	}
	var e wire.Error
	if err := e.Decode(decodeOneFrame(t, want, wire.FrameError)); err != nil {
		t.Fatal(err)
	}
	if e.ID != 9 || e.Status != wire.StatusTooMany || e.Msg != "request queue full" {
		t.Fatalf("golden error decodes to %+v", e)
	}
}

// TestGoldenWireCorruptCRC: a stored frame whose payload no longer
// matches its CRC must come back as the typed wire.ErrCorrupt — never
// a panic, never a silently-accepted frame.
func TestGoldenWireCorruptCRC(t *testing.T) {
	raw := readWireGolden(t, "corrupt-crc.bin")
	rd := wire.NewReader(bytes.NewReader(raw), 1<<20)
	if _, _, err := rd.Next(); !errors.Is(err, wire.ErrCorrupt) {
		t.Fatalf("Next(corrupt) = %v, want wire.ErrCorrupt", err)
	}
}
