// Package spatialtree is a Go implementation of the spatial tree
// algorithms of Baumann, Ben-Nun, Besta, Gianinazzi, Hoefler and
// Luczynski, "Low-Depth Spatial Tree Algorithms" (IPDPS 2024,
// arXiv:2404.12953).
//
// The library targets the spatial computer model: a √n × √n grid of
// processors with O(1) words of memory each, where a message costs
// energy equal to the Manhattan distance it travels and the depth of a
// computation is its longest chain of dependent messages. It provides:
//
//   - space-filling curves (Hilbert, Moore, Peano, Z/Morton, plus
//     baselines) and the light-first tree order, whose composition is
//     the paper's energy-bound tree layout (Theorems 1 and 2);
//   - a spatial-computer simulator with exact energy/depth accounting
//     and collectives built from real message patterns;
//   - the layout-construction pipeline (Euler tours + random-mate list
//     ranking, Theorems 4 and 5);
//   - the virtual-tree transform for unbounded-degree trees (Theorem 3);
//   - treefix sums (bottom-up and top-down, any commutative monoid) via
//     rake/compress tree contraction (Lemmas 10-12);
//   - batched lowest common ancestors via subtree covers (Theorem 6);
//   - goroutine-parallel executors of the same operations for wall-clock
//     use, and PRAM baselines for comparison;
//   - a batched query engine (Engine, EnginePool) that amortizes one
//     cached layout across many request batches and coalesces
//     concurrently submitted work into shared runs, with an optional
//     background autoflush scheduler (StartAutoFlush /
//     EngineOptions.FlushDelay) dispatching batches on a size or
//     deadline trigger;
//   - pluggable execution backends (EngineOptions.Backend): "sim" runs
//     every batch on the spatial-computer simulator with exact model
//     costs (the default for direct engine users), "native" serves the
//     same kernels with goroutine parallelism and no simulator
//     bookkeeping (the serving daemon's default; >10x on wall clock),
//     optionally shadow-metered (EngineOptions.ShadowMeter) so sampled
//     model costs stay observable;
//   - a mutable serving path (DynEngine) wiring the §VII dynamic layout
//     into the engine: leaf inserts/deletes between batches, with
//     epoch-versioned placements instead of rebuild-per-mutation;
//   - a network serving daemon (cmd/spatialtreed over internal/server)
//     exposing both engine kinds over HTTP/JSON with adaptive batching,
//     bounded-queue admission control and graceful drain;
//   - a durability subsystem (internal/persist): CRC-checked placement
//     snapshots (SaveSnapshot/LoadSnapshot) plus a mutation WAL for
//     dynamic shards, giving the daemon warm restarts that skip layout
//     construction and replay surviving mutations (-data-dir).
//
// Quick start:
//
//	t := spatialtree.RandomTree(1<<16, 42)
//	pl, _ := spatialtree.Layout(t, "hilbert")        // light-first layout
//	sum := spatialtree.TreefixSum(t, pl, vals)        // subtree sums + costs
//	fmt.Println(sum.Cost.Energy, sum.Cost.Depth)
//
// Serving repeated batches on the same tree (layout built once, requests
// coalesced — see internal/engine for the full semantics):
//
//	eng, _ := spatialtree.NewEngine(t, spatialtree.EngineOptions{})
//	fut := eng.SubmitLCA(queries)       // queued; coalesces with others
//	res := fut.Wait()                   // flushes and resolves
//	fmt.Println(res.Answers, eng.Stats().Cache.HitRate())
//
// The cmd/spatialbench binary regenerates every experiment in
// EXPERIMENTS.md; examples/ contains runnable end-to-end programs.
package spatialtree

import (
	"fmt"
	"io"

	"spatialtree/internal/dynlayout"
	"spatialtree/internal/engine"
	"spatialtree/internal/eulertour"
	"spatialtree/internal/exprtree"
	"spatialtree/internal/layout"
	"spatialtree/internal/lca"
	"spatialtree/internal/machine"
	"spatialtree/internal/mincut"
	"spatialtree/internal/order"
	"spatialtree/internal/persist"
	"spatialtree/internal/rng"
	"spatialtree/internal/sfc"
	"spatialtree/internal/tree"
	"spatialtree/internal/treefix"
)

// Tree is a rooted tree over vertices 0..N-1 (see NewTree).
type Tree = tree.Tree

// Curve is a space-filling curve mapping linear ranks to grid points.
type Curve = sfc.Curve

// Placement embeds an ordered tree on the processor grid.
type Placement = layout.Placement

// Cost is a simulator cost snapshot: total energy (distance-weighted
// communication volume), message count, and depth (critical path).
type Cost = machine.Cost

// Query asks for the lowest common ancestor of U and V.
type Query = lca.Query

// Op is an associative (and, for bottom-up treefix, commutative)
// operator with identity. Predefined: OpAdd, OpMax, OpMin, OpXor.
type Op = treefix.Op

// Predefined treefix operators.
var (
	OpAdd = treefix.Add
	OpMax = treefix.Max
	OpMin = treefix.Min
	OpXor = treefix.Xor
)

// NewTree builds a tree from a parent array (parent[root] = -1) and
// validates it.
func NewTree(parents []int) (*Tree, error) { return tree.FromParents(parents) }

// RandomTree returns a random recursive tree with n vertices
// (deterministic per seed).
func RandomTree(n int, seed uint64) *Tree {
	return tree.RandomAttachment(n, rng.New(seed))
}

// RandomBinaryTree returns a random tree with at most two children per
// vertex.
func RandomBinaryTree(n int, seed uint64) *Tree {
	return tree.RandomBoundedDegree(n, 2, rng.New(seed))
}

// PhylogeneticTree returns a Yule-process tree with the given number of
// leaf taxa (2·leaves-1 vertices).
func PhylogeneticTree(leaves int, seed uint64) *Tree {
	return tree.Yule(leaves, rng.New(seed))
}

// Curves lists the available space-filling curves. The distance-bound
// curves (hilbert, moore, peano) and the Z curve yield energy-bound
// light-first layouts; snake, rowmajor and scatter are baselines.
func Curves() []Curve { return sfc.Registry() }

// CurveByName returns the named curve ("hilbert", "moore", "peano",
// "zorder", "snake", "rowmajor", "scatter").
func CurveByName(name string) (Curve, error) { return sfc.ByName(name) }

// Layout computes the paper's layout: light-first order placed on the
// named space-filling curve.
func Layout(t *Tree, curveName string) (*Placement, error) {
	c, err := sfc.ByName(curveName)
	if err != nil {
		return nil, err
	}
	return layout.LightFirst(t, c), nil
}

// LayoutWithOrder places t under an arbitrary named order
// ("light-first", "heavy-first", "dfs", "bfs", "random", "identity") —
// the baselines of the paper's Section III.
func LayoutWithOrder(t *Tree, orderName, curveName string, seed uint64) (*Placement, error) {
	c, err := sfc.ByName(curveName)
	if err != nil {
		return nil, err
	}
	o, ok := order.ByName(orderName, t, rng.New(seed))
	if !ok {
		return nil, fmt.Errorf("spatialtree: unknown order %q", orderName)
	}
	return layout.New(t, o, c), nil
}

// SaveSnapshot writes p — tree, order, curve and grid — to w in the
// versioned binary snapshot format of internal/persist (length-prefixed
// and CRC-checked; see docs/persistence.md for the wire layout). A
// loaded snapshot reconstructs the placement in O(n), skipping the
// O(n log n) layout pipeline — the same mechanism cmd/spatialtreed uses
// for warm restarts.
func SaveSnapshot(w io.Writer, p *Placement) error {
	_, err := w.Write(persist.EncodePlacement(persist.PlacementSnapshot{
		Parents: append([]int(nil), p.Tree.Parents()...),
		Curve:   p.Curve.Name(),
		Order:   p.Order.Name,
		Side:    p.Side,
		Ranks:   append([]int(nil), p.Order.Rank...),
	}))
	return err
}

// LoadSnapshot reads a placement snapshot written by SaveSnapshot. The
// tree, the curve and every rank are validated; corrupt or truncated
// input returns an error wrapping persist.ErrCorrupt (and a newer
// format version one wrapping persist.ErrVersion) — never a panic.
func LoadSnapshot(r io.Reader) (*Placement, error) {
	raw, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	snap, err := persist.DecodePlacement(raw)
	if err != nil {
		return nil, err
	}
	t, err := tree.FromParents(snap.Parents)
	if err != nil {
		return nil, fmt.Errorf("spatialtree: snapshot tree: %w", err)
	}
	c, err := sfc.ByName(snap.Curve)
	if err != nil {
		return nil, fmt.Errorf("spatialtree: snapshot curve: %w", err)
	}
	return layout.FromRanks(t, snap.Order, snap.Ranks, c, snap.Side)
}

// SnapshotErrors exposes the typed decode failures of the snapshot
// format, so callers can distinguish corruption from version skew:
// errors.Is(err, ErrSnapshotCorrupt) / errors.Is(err, ErrSnapshotVersion).
var (
	ErrSnapshotCorrupt = persist.ErrCorrupt
	ErrSnapshotVersion = persist.ErrVersion
)

// KernelEnergy measures the local messaging kernel on a placement:
// every vertex sends one message to each child. Theorems 1 and 2 bound
// its Energy by O(n) for light-first placements on the shipped curves.
func KernelEnergy(p *Placement) layout.KernelCost { return layout.ParentChildEnergy(p) }

// BuildLayoutOnMachine runs the full spatial layout-construction
// pipeline (Theorem 4: Euler tours + list ranking + permutation) on a
// simulator and returns the light-first ranks together with the exact
// model cost.
func BuildLayoutOnMachine(t *Tree, curveName string, seed uint64) (ranks []int, cost Cost, err error) {
	c, err := sfc.ByName(curveName)
	if err != nil {
		return nil, Cost{}, err
	}
	s := machine.New(2*t.N()+2, c)
	res := eulertour.LightFirstLayout(s, t, rng.New(seed))
	return res.Order.Rank, s.Cost(), nil
}

// TreefixResult is the outcome of a treefix sum on the simulator.
type TreefixResult struct {
	// Sums holds the per-vertex folds.
	Sums []int64
	// Cost is the exact spatial-model cost of the run.
	Cost Cost
	// Rounds is the number of contraction rounds (O(log n) w.h.p.).
	Rounds int
}

// TreefixSum computes, for every vertex, the sum of the values in its
// subtree (bottom-up treefix, Section V) on the simulator, using the
// placement's positions. Deterministic per seed; the default seed 1 is
// used.
func TreefixSum(t *Tree, p *Placement, vals []int64) TreefixResult {
	return TreefixOp(t, p, vals, OpAdd, 1)
}

// TreefixOp is TreefixSum under an arbitrary commutative operator and
// explicit coin seed.
func TreefixOp(t *Tree, p *Placement, vals []int64, op Op, seed uint64) TreefixResult {
	s := machine.New(t.N(), p.Curve)
	sums, st := treefix.BottomUp(s, t, p.Order.Rank, vals, op, rng.New(seed))
	return TreefixResult{Sums: sums, Cost: s.Cost(), Rounds: st.Rounds}
}

// TopDownTreefix computes, for every vertex, the fold of the values
// along its root path (Section V-D).
func TopDownTreefix(t *Tree, p *Placement, vals []int64, op Op, seed uint64) TreefixResult {
	s := machine.New(t.N(), p.Curve)
	sums, st := treefix.TopDown(s, t, p.Order.Rank, vals, op, rng.New(seed))
	return TreefixResult{Sums: sums, Cost: s.Cost(), Rounds: st.Rounds}
}

// LCAResult is the outcome of a batched LCA run.
type LCAResult struct {
	// Answers holds one LCA per query.
	Answers []int
	// Cost is the exact spatial-model cost.
	Cost Cost
	// Layers is the number of subtree-cover layers (O(log n)).
	Layers int
}

// BatchedLCA answers LCA queries on a light-first placement
// (Section VI, Theorem 6). For the paper's bounds each vertex should
// appear in O(1) queries.
func BatchedLCA(t *Tree, p *Placement, queries []Query, seed uint64) LCAResult {
	s := machine.New(t.N(), p.Curve)
	ans, st := lca.Batched(s, t, p.Order.Rank, queries, rng.New(seed))
	return LCAResult{Answers: ans, Cost: s.Cost(), Layers: st.Layers}
}

// SequentialTreefix is the host reference for TreefixSum (test oracle;
// also the fastest single-core implementation).
func SequentialTreefix(t *Tree, vals []int64, op Op) []int64 {
	return treefix.SequentialBottomUp(t, vals, op)
}

// LCAOracle returns a sequential binary-lifting LCA oracle.
func LCAOracle(t *Tree) *lca.Oracle { return lca.NewOracle(t) }

// GraphEdge is a weighted undirected edge for the minimum-cut
// application.
type GraphEdge = mincut.Edge

// MinCutResult reports a 1-respecting minimum cut.
type MinCutResult = mincut.Result

// OneRespectingMinCut computes, for a graph given by edges and a rooted
// spanning tree t in light-first placement p, the minimum cut among cuts
// removing exactly one tree edge (Karger's 1-respecting cuts — the
// application the paper cites for its kernels). It runs one batched LCA
// and two treefix sums on the simulator and returns the result with the
// exact model cost.
func OneRespectingMinCut(t *Tree, p *Placement, edges []GraphEdge, seed uint64) (MinCutResult, Cost, error) {
	s := machine.New(t.N(), p.Curve)
	res, err := mincut.OneRespecting(s, t, p.Order.Rank, edges, rng.New(seed))
	return res, s.Cost(), err
}

// Expression is an arithmetic expression tree (leaves hold constants
// mod exprtree.Mod; internal nodes hold + or ×).
type Expression = exprtree.Expr

// RandomExpression returns a random full-binary expression with the
// given number of leaves.
func RandomExpression(leaves int, seed uint64) *Expression {
	return exprtree.Random(leaves, rng.New(seed))
}

// EvaluateExpression evaluates the expression's root on the simulator by
// Miller-Reif rake contraction (the §V-cited application) and returns
// the value together with the exact model cost.
func EvaluateExpression(e *Expression, p *Placement) (int64, Cost) {
	s := machine.New(e.Tree.N(), p.Curve)
	v, _ := exprtree.EvalSpatial(s, e, p.Order.Rank)
	return v, s.Cost()
}

// DynamicLayout is a dynamically maintained light-first layout
// supporting leaf insertions and deletions (the paper's §VII
// future-work direction): a gap-spread placement with amortized
// rebuilds and a grid that grows and shrinks with the tree. DeleteLeaf
// keeps vertex ids contiguous by renumbering the last id into the hole;
// see its documentation. All methods report failures as errors — no
// panics are reachable on valid inputs.
type DynamicLayout = dynlayout.Dyn

// NewDynamicLayout creates a dynamic layout for t on the named curve.
// epsilon is the drift budget before a rebuild (e.g. 0.2).
func NewDynamicLayout(t *Tree, curveName string, epsilon float64) (*DynamicLayout, error) {
	c, err := sfc.ByName(curveName)
	if err != nil {
		return nil, err
	}
	return dynlayout.New(t, c, epsilon)
}

// Engine is a concurrency-safe batch server for one tree: it owns the
// tree plus a cached light-first placement, coalesces requests submitted
// within a window into shared simulator runs (Submit*/Flush), and
// demultiplexes the results to per-request futures. See the
// internal/engine package documentation for batching semantics, cache
// keys, and when Flush blocks.
type Engine = engine.Engine

// EngineOptions configures NewEngine: curve, auto-flush window, Las
// Vegas seed, an optional shared LayoutCache, and the autoflush
// scheduler's deadline (FlushDelay; see Engine.StartAutoFlush).
type EngineOptions = engine.Options

// EngineStats snapshots an engine's lifetime counters: batches,
// requests, coalesced LCA traffic, scheduler trigger counts
// (size-triggered vs deadline-triggered flushes), accumulated model
// cost, and layout-cache hits/misses/evictions.
type EngineStats = engine.Stats

// EngineResult is the resolved outcome of one submitted request.
type EngineResult = engine.Result

// LayoutCache is an LRU cache of placements keyed by tree fingerprint ×
// curve × order. Share one cache across engines (or use an EnginePool)
// so repeated workloads on structurally identical trees skip the
// O(n log n) layout pipeline.
type LayoutCache = engine.LayoutCache

// NewLayoutCache returns a cache holding at most capacity placements.
func NewLayoutCache(capacity int) *LayoutCache { return engine.NewLayoutCache(capacity) }

// NewEngine builds a batched query engine for t. The placement comes
// from the layout cache, so re-creating an engine for an already-seen
// tree skips layout construction.
func NewEngine(t *Tree, opts EngineOptions) (*Engine, error) { return engine.New(t, opts) }

// EnginePool shards engines by tree fingerprint over one shared layout
// cache and flushes independent shards in parallel on a worker pool.
type EnginePool = engine.Pool

// NewEnginePool returns a pool flushing with at most workers goroutines
// (<= 0 means GOMAXPROCS).
func NewEnginePool(workers int, opts EngineOptions) *EnginePool {
	return engine.NewPool(workers, opts)
}

// TreeFingerprint returns the structural hash of t used in layout-cache
// keys: equal parent arrays hash equally.
func TreeFingerprint(t *Tree) uint64 { return engine.Fingerprint(t) }

// DynEngine is the mutable-tree counterpart of Engine: it owns a
// DynamicLayout, serves the same Submit*/Flush batching protocol, and
// accepts InsertLeaf/DeleteLeaf between batches. A mutation drains the
// pending batch first (futures resolve against the tree they were
// submitted to), bumps the placement epoch — which is folded into the
// layout-cache key, so a stale placement can never serve a mutated
// tree — and the next submission refreshes the serving state from the
// dynamic layout instead of rebuilding it from scratch. See
// internal/engine's DynEngine documentation for the full semantics.
type DynEngine = engine.DynEngine

// DynEngineOptions configures NewDynEngine: the embedded EngineOptions
// plus the dynamic layout's rebuild threshold Epsilon.
type DynEngineOptions = engine.DynOptions

// DynEngineStats snapshots a dynamic engine's counters: mutation side
// (epoch, inserts, deletes, layout rebuilds, parking and migration
// energy), serving side (refreshes plus the folded EngineStats of all
// epochs).
type DynEngineStats = engine.DynStats

// NewDynEngine builds a mutable batched query engine for t.
func NewDynEngine(t *Tree, opts DynEngineOptions) (*DynEngine, error) {
	return engine.NewDyn(t, opts)
}

// ParallelTreefixEngine returns the goroutine-parallel treefix executor
// (+ operator) for wall-clock use; workers <= 0 means GOMAXPROCS.
func ParallelTreefixEngine(t *Tree, workers int) *treefix.Engine {
	return treefix.NewEngine(t, workers)
}

// ParallelLCAEngine returns the goroutine-parallel LCA engine.
func ParallelLCAEngine(t *Tree, workers int) *lca.Engine {
	return lca.NewEngine(t, workers)
}
