module spatialtree

go 1.21
