module spatialtree

go 1.22
