package mincut

import (
	"testing"

	"spatialtree/internal/rng"
	"spatialtree/internal/tree"
)

// TestParallelAgainstOracle pins the goroutine executor to the
// brute-force oracle, including tie-breaking on the arg vertex.
func TestParallelAgainstOracle(t *testing.T) {
	for _, n := range []int{2, 7, 64, 257, 1024} {
		for _, seed := range []uint64{1, 2, 3} {
			tr := tree.RandomAttachment(n, rng.New(seed))
			edges := RandomGraph(tr, n/2, 12, rng.New(seed+3))
			want := OneRespectingSequential(tr, edges)
			for _, workers := range []int{1, 4} {
				p := NewParallel(tr, nil, nil, workers)
				got, err := p.OneRespecting(edges)
				if err != nil {
					t.Fatal(err)
				}
				if got.MinWeight != want.MinWeight || got.ArgVertex != want.ArgVertex {
					t.Fatalf("n=%d seed=%d w=%d: got (%d, v%d), want (%d, v%d)",
						n, seed, workers, got.MinWeight, got.ArgVertex, want.MinWeight, want.ArgVertex)
				}
				for v := range want.Cuts {
					if got.Cuts[v] != want.Cuts[v] {
						t.Fatalf("n=%d seed=%d w=%d: cut[%d] = %d, want %d",
							n, seed, workers, v, got.Cuts[v], want.Cuts[v])
					}
				}
			}
		}
	}
}

// TestParallelTieBreak forces equal-weight cuts and asserts the
// sequential scan's arg choice (smallest vertex id) survives chunked
// parallel reduction.
func TestParallelTieBreak(t *testing.T) {
	// A star: every leaf's parent edge cuts exactly its own edge weight;
	// uniform weights make every cut tie.
	parents := make([]int, 9)
	parents[0] = -1
	tr := tree.MustFromParents(parents)
	var edges []Edge
	for v := 1; v < tr.N(); v++ {
		edges = append(edges, Edge{U: 0, V: v, W: 5})
	}
	want := OneRespectingSequential(tr, edges)
	for _, workers := range []int{1, 3, 8} {
		got, err := NewParallel(tr, nil, nil, workers).OneRespecting(edges)
		if err != nil {
			t.Fatal(err)
		}
		if got.ArgVertex != want.ArgVertex || got.MinWeight != want.MinWeight {
			t.Fatalf("w=%d: got (%d, v%d), want (%d, v%d)",
				workers, got.MinWeight, got.ArgVertex, want.MinWeight, want.ArgVertex)
		}
	}
}

// TestParallelValidation pins the shared validation: the parallel
// executor rejects exactly what the spatial one rejects.
func TestParallelValidation(t *testing.T) {
	single := tree.MustFromParents([]int{-1})
	if _, err := NewParallel(single, nil, nil, 2).OneRespecting(nil); err == nil {
		t.Fatal("1-vertex tree accepted")
	}
	tr := tree.MustFromParents([]int{-1, 0, 0})
	if _, err := NewParallel(tr, nil, nil, 2).OneRespecting([]Edge{{U: 0, V: 9, W: 1}}); err == nil {
		t.Fatal("out-of-range edge accepted")
	}
	if _, err := NewParallel(tr, nil, nil, 2).OneRespecting([]Edge{{U: 0, V: 1, W: -2}}); err == nil {
		t.Fatal("negative weight accepted")
	}
	// Self-loops are ignored, as in the spatial executor.
	got, err := NewParallel(tr, nil, nil, 2).OneRespecting([]Edge{{U: 1, V: 1, W: 7}, {U: 0, V: 1, W: 2}})
	if err != nil {
		t.Fatal(err)
	}
	if got.Cuts[1] != 2 {
		t.Fatalf("self-loop contributed to cut: %d", got.Cuts[1])
	}
}
