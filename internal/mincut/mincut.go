// Package mincut implements the application the paper motivates its
// kernels with (Sections I-C and V: treefix sums and LCA "are
// subroutines for other graph algorithms, such as the computation of
// minimum cuts [Karger]"): 1-respecting minimum cuts.
//
// Given a weighted graph G and a rooted spanning tree T of G, a cut
// 1-respects T if it cuts exactly one tree edge; Karger's minimum-cut
// algorithm reduces global minimum cut to 1- and 2-respecting cuts over
// O(log n) sampled trees. The weight of the cut that removes v's parent
// edge is
//
//	cut(v) = D(v) − 2·I(v)
//
// where D(v) is the total weighted degree of v's subtree and I(v) the
// total weight of graph edges with both endpoints inside the subtree.
// Both are treefix sums: D from per-vertex weighted degrees, and I from
// per-vertex values w(e) summed over the edges whose LCA is that vertex
// — so the whole computation is exactly one batched-LCA run plus two
// bottom-up treefix runs on the spatial computer.
package mincut

import (
	"errors"
	"fmt"

	"spatialtree/internal/lca"
	"spatialtree/internal/machine"
	"spatialtree/internal/rng"
	"spatialtree/internal/tree"
	"spatialtree/internal/treefix"
)

// Edge is a weighted undirected graph edge.
type Edge struct {
	U, V int
	W    int64
}

// Result reports a 1-respecting minimum cut.
type Result struct {
	// MinWeight is the weight of the lightest 1-respecting cut.
	MinWeight int64
	// ArgVertex is the vertex whose parent edge realizes it.
	ArgVertex int
	// Cuts holds cut(v) for every non-root vertex (root entry is 0 and
	// meaningless).
	Cuts []int64
	// LCAStats carries the statistics of the batched LCA run.
	LCAStats lca.Stats
}

// OneRespecting computes all 1-respecting cut weights of edges against
// the rooted spanning tree t on the spatial computer. rank must be the
// light-first placement of t (the LCA precondition). All edge weights
// must be non-negative.
func OneRespecting(s *machine.Sim, t *tree.Tree, rank []int, edges []Edge, r *rng.RNG) (Result, error) {
	if err := validate(t, edges); err != nil {
		return Result{}, err
	}
	n := t.N()

	// Weighted degrees, then D(v) by treefix.
	wdeg := make([]int64, n)
	for _, e := range edges {
		if e.U == e.V {
			continue // self-loops never cross a cut
		}
		wdeg[e.U] += e.W
		wdeg[e.V] += e.W
	}
	dSums, _ := treefix.BottomUp(s, t, rank, wdeg, treefix.Add, r)

	// LCA of every edge, batched.
	queries := make([]lca.Query, 0, len(edges))
	idx := make([]int, 0, len(edges))
	for i, e := range edges {
		if e.U == e.V {
			continue
		}
		queries = append(queries, lca.Query{U: e.U, V: e.V})
		idx = append(idx, i)
	}
	answers, lcaStats := lca.Batched(s, t, rank, queries, r)

	// Per-vertex internal-edge weight: val(u) = Σ w(e) over edges with
	// lca(e) = u, then I(v) by treefix. Many edges can share an LCA
	// (e.g. the root of a well-connected graph), so the deposits are
	// folded through per-target binary combining trees rather than
	// direct fan-in — depth O(log m) instead of Θ(max edges per LCA).
	val := make([]int64, n)
	groups := make(map[int][]int, n) // lca vertex -> contributing procs
	for qi, a := range answers {
		e := edges[idx[qi]]
		val[a] += e.W
		groups[a] = append(groups[a], rank[e.U])
	}
	var pairs [][2]int
	for {
		pairs = pairs[:0]
		active := false
		for a, procs := range groups {
			if len(procs) <= 1 {
				continue
			}
			active = true
			half := (len(procs) + 1) / 2
			for i := half; i < len(procs); i++ {
				pairs = append(pairs, [2]int{procs[i], procs[i-half]})
			}
			groups[a] = procs[:half]
		}
		if !active {
			break
		}
		s.SendBatch(pairs)
	}
	pairs = pairs[:0]
	for a, procs := range groups {
		if len(procs) == 1 {
			pairs = append(pairs, [2]int{procs[0], rank[a]})
		}
	}
	s.SendBatch(pairs)
	iSums, _ := treefix.BottomUp(s, t, rank, val, treefix.Add, r)

	res := Result{Cuts: make([]int64, n), ArgVertex: -1}
	for v := 0; v < n; v++ {
		if v == t.Root() {
			continue
		}
		cut := dSums[v] - 2*iSums[v]
		res.Cuts[v] = cut
		if res.ArgVertex == -1 || cut < res.MinWeight {
			res.MinWeight = cut
			res.ArgVertex = v
		}
	}
	res.LCAStats = lcaStats
	return res, nil
}

// validate checks the shared preconditions of every executor, so the
// spatial and parallel paths reject exactly the same inputs with
// identical messages.
// ErrInvalid marks input-validation failures (degenerate tree,
// out-of-range endpoint, negative weight), so serving layers can
// classify them as client faults with errors.Is without matching
// message text. Matching errors keep their specific messages.
var ErrInvalid = errors.New("mincut: invalid input")

type invalidError struct{ error }

func (invalidError) Is(target error) bool { return target == ErrInvalid }

func validate(t *tree.Tree, edges []Edge) error {
	n := t.N()
	if n < 2 {
		return invalidError{fmt.Errorf("mincut: tree with %d vertices has no cuts", n)}
	}
	for _, e := range edges {
		if e.U < 0 || e.U >= n || e.V < 0 || e.V >= n {
			return invalidError{fmt.Errorf("mincut: edge %v out of range", e)}
		}
		if e.W < 0 {
			return invalidError{fmt.Errorf("mincut: negative weight on %v", e)}
		}
	}
	return nil
}

// OneRespectingSequential is the host oracle: O(n·m) brute force.
func OneRespectingSequential(t *tree.Tree, edges []Edge) Result {
	n := t.N()
	res := Result{Cuts: make([]int64, n), ArgVertex: -1}
	// inSub[v][u]: is u in the subtree of v? Computed per v by DFS.
	for v := 0; v < n; v++ {
		if v == t.Root() {
			continue
		}
		in := make([]bool, n)
		stack := []int{v}
		in[v] = true
		for len(stack) > 0 {
			x := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, c := range t.Children(x) {
				in[c] = true
				stack = append(stack, c)
			}
		}
		var cut int64
		for _, e := range edges {
			if e.U != e.V && in[e.U] != in[e.V] {
				cut += e.W
			}
		}
		res.Cuts[v] = cut
		if res.ArgVertex == -1 || cut < res.MinWeight {
			res.MinWeight = cut
			res.ArgVertex = v
		}
	}
	return res
}

// RandomGraph builds a connected weighted graph: the given spanning tree's
// edges (weight 1..maxW) plus extra random edges. Useful for tests,
// benchmarks and the example.
func RandomGraph(t *tree.Tree, extraEdges, maxW int, r *rng.RNG) []Edge {
	var edges []Edge
	for v := 0; v < t.N(); v++ {
		if p := t.Parent(v); p != -1 {
			edges = append(edges, Edge{U: p, V: v, W: int64(1 + r.Intn(maxW))})
		}
	}
	for i := 0; i < extraEdges; i++ {
		u, v := r.Intn(t.N()), r.Intn(t.N())
		if u != v {
			edges = append(edges, Edge{U: u, V: v, W: int64(1 + r.Intn(maxW))})
		}
	}
	return edges
}
