package mincut

import (
	"testing"
	"testing/quick"

	"spatialtree/internal/machine"
	"spatialtree/internal/order"
	"spatialtree/internal/rng"
	"spatialtree/internal/sfc"
	"spatialtree/internal/tree"
)

func lfRanks(t *tree.Tree) []int { return order.LightFirst(t).Rank }

func TestKnownSmallGraph(t *testing.T) {
	// Path 0-1-2 with tree edges weight 1 and an extra edge (0,2) w=5.
	// cut(1) = w(0,1) + w(0,2) = 1+5 = 6; cut(2) = w(1,2) + w(0,2) = 6.
	tr := tree.Path(3)
	edges := []Edge{{0, 1, 1}, {1, 2, 1}, {0, 2, 5}}
	s := machine.New(3, sfc.Hilbert{})
	res, err := OneRespecting(s, tr, lfRanks(tr), edges, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if res.Cuts[1] != 6 || res.Cuts[2] != 6 {
		t.Fatalf("cuts = %v, want [_,6,6]", res.Cuts)
	}
	if res.MinWeight != 6 {
		t.Fatalf("min = %d", res.MinWeight)
	}
}

func TestBridgeDetection(t *testing.T) {
	// Two cliques joined by one light tree edge: the 1-respecting min
	// cut must find the bridge.
	r := rng.New(2)
	// Vertices 0..9: tree is a path; cliques {0..4} and {5..9} heavy.
	tr := tree.Path(10)
	var edges []Edge
	for v := 1; v < 10; v++ {
		edges = append(edges, Edge{U: v - 1, V: v, W: 1})
	}
	for a := 0; a < 5; a++ {
		for b := a + 1; b < 5; b++ {
			edges = append(edges, Edge{U: a, V: b, W: 10})
			edges = append(edges, Edge{U: a + 5, V: b + 5, W: 10})
		}
	}
	s := machine.New(10, sfc.Hilbert{})
	res, err := OneRespecting(s, tr, lfRanks(tr), edges, r)
	if err != nil {
		t.Fatal(err)
	}
	if res.ArgVertex != 5 {
		t.Fatalf("argmin = %d, want 5 (the bridge 4-5)", res.ArgVertex)
	}
	if res.MinWeight != 1 {
		t.Fatalf("min weight = %d, want 1", res.MinWeight)
	}
}

func TestMatchesSequential(t *testing.T) {
	r := rng.New(3)
	for trial := 0; trial < 15; trial++ {
		n := 5 + r.Intn(120)
		tr := tree.RandomAttachment(n, r)
		edges := RandomGraph(tr, n, 20, r)
		s := machine.New(n, sfc.Hilbert{})
		got, err := OneRespecting(s, tr, lfRanks(tr), edges, r)
		if err != nil {
			t.Fatal(err)
		}
		want := OneRespectingSequential(tr, edges)
		for v := 0; v < n; v++ {
			if got.Cuts[v] != want.Cuts[v] {
				t.Fatalf("trial %d: cut[%d] = %d, want %d", trial, v, got.Cuts[v], want.Cuts[v])
			}
		}
		if got.MinWeight != want.MinWeight {
			t.Fatalf("trial %d: min %d vs %d", trial, got.MinWeight, want.MinWeight)
		}
	}
}

func TestQuick(t *testing.T) {
	f := func(seed uint64, rawN uint8, extra uint8) bool {
		n := 3 + int(rawN)%80
		r := rng.New(seed)
		tr := tree.PreferentialAttachment(n, r)
		edges := RandomGraph(tr, int(extra)%50, 9, r)
		s := machine.New(n, sfc.Hilbert{})
		got, err := OneRespecting(s, tr, lfRanks(tr), edges, r)
		if err != nil {
			return false
		}
		want := OneRespectingSequential(tr, edges)
		return got.MinWeight == want.MinWeight
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestSelfLoopsIgnored(t *testing.T) {
	tr := tree.Path(4)
	edges := []Edge{{0, 1, 1}, {1, 2, 1}, {2, 3, 1}, {2, 2, 100}}
	s := machine.New(4, sfc.Hilbert{})
	res, err := OneRespecting(s, tr, lfRanks(tr), edges, rng.New(4))
	if err != nil {
		t.Fatal(err)
	}
	if res.MinWeight != 1 {
		t.Fatalf("self loop affected the cut: %d", res.MinWeight)
	}
}

func TestErrors(t *testing.T) {
	tr := tree.Path(3)
	s := machine.New(3, sfc.Hilbert{})
	if _, err := OneRespecting(s, tree.Path(1), []int{0}, nil, rng.New(1)); err == nil {
		t.Error("single-vertex tree should error")
	}
	if _, err := OneRespecting(s, tr, lfRanks(tr), []Edge{{0, 9, 1}}, rng.New(1)); err == nil {
		t.Error("out-of-range edge should error")
	}
	if _, err := OneRespecting(s, tr, lfRanks(tr), []Edge{{0, 1, -2}}, rng.New(1)); err == nil {
		t.Error("negative weight should error")
	}
}

func TestSpatialCostNearLinear(t *testing.T) {
	perVertex := func(bits int) float64 {
		n := 1 << bits
		r := rng.New(uint64(bits))
		tr := tree.RandomAttachment(n, r)
		edges := RandomGraph(tr, n/2, 10, r)
		s := machine.New(n, sfc.Hilbert{})
		if _, err := OneRespecting(s, tr, lfRanks(tr), edges, r); err != nil {
			t.Fatal(err)
		}
		return float64(s.Energy()) / float64(n)
	}
	small, large := perVertex(10), perVertex(13)
	// Energy/vertex may grow by the log factor only.
	if large > small*2.5 {
		t.Errorf("mincut energy/vertex grew superlogarithmically: %.1f -> %.1f", small, large)
	}
}
