package mincut

import (
	"sync"

	"spatialtree/internal/lca"
	"spatialtree/internal/par"
	"spatialtree/internal/tree"
	"spatialtree/internal/treefix"
)

// Parallel is the goroutine-parallel executor of the 1-respecting
// minimum cut: the same D(v) − 2·I(v) decomposition as OneRespecting,
// with the two treefix sums on the Euler-tour engine and the edge LCAs
// on the sparse-table engine — no simulator, no model accounting. It is
// the native serving backend's min-cut kernel.
//
// The preprocessing (tour positions, sparse table) is built once per
// tree and amortized across calls, mirroring how OneRespecting amortizes
// the light-first layout; OneRespecting answers the same queries with
// exact spatial-model costs, and OneRespectingSequential remains the
// brute-force oracle both are tested against.
type Parallel struct {
	t       *tree.Tree
	tf      *treefix.Engine
	le      *lca.Engine
	workers int
}

// NewParallel builds the executor for t. tf and le may be shared,
// already-built engines for the same tree (the exec backend passes its
// own); nil builds private ones. workers <= 0 means par.Workers().
func NewParallel(t *tree.Tree, tf *treefix.Engine, le *lca.Engine, workers int) *Parallel {
	if tf == nil {
		tf = treefix.NewEngine(t, workers)
	}
	if le == nil {
		le = lca.NewEngine(t, workers)
	}
	return &Parallel{t: t, tf: tf, le: le, workers: workers}
}

// OneRespecting computes all 1-respecting cut weights of edges against
// the executor's tree. Identical semantics and validation to the
// spatial OneRespecting (Result.LCAStats is zero: there is no spatial
// run to report).
func (p *Parallel) OneRespecting(edges []Edge) (Result, error) {
	if err := validate(p.t, edges); err != nil {
		return Result{}, err
	}
	n := p.t.N()

	// Weighted degrees, then D(v) by treefix. The per-edge accumulation
	// stays sequential: both endpoints of every edge are write targets,
	// and O(m) additions are noise next to the folds they feed.
	wdeg := make([]int64, n)
	queries := make([]lca.Query, 0, len(edges))
	idx := make([]int, 0, len(edges))
	for i, e := range edges {
		if e.U == e.V {
			continue // self-loops never cross a cut
		}
		wdeg[e.U] += e.W
		wdeg[e.V] += e.W
		queries = append(queries, lca.Query{U: e.U, V: e.V})
		idx = append(idx, i)
	}
	dSums := p.tf.BottomUpSum(wdeg)

	// LCA of every edge, batched over the query list in parallel.
	answers := p.le.BatchLCA(queries)

	// Per-vertex internal-edge weight val(u) = Σ w(e) over edges with
	// lca(e) = u, then I(v) by treefix.
	val := make([]int64, n)
	for qi, a := range answers {
		val[a] += edges[idx[qi]].W
	}
	iSums := p.tf.BottomUpSum(val)

	// cut(v) = D(v) − 2·I(v); the arg-min matches the sequential scan's
	// tie-break (the smallest vertex achieving the minimum) by combining
	// per-chunk minima left to right with a strict comparison.
	res := Result{Cuts: make([]int64, n), ArgVertex: -1}
	workers := p.workers
	if workers <= 0 {
		workers = par.Workers()
	}
	type chunkMin struct {
		weight int64
		arg    int
	}
	var mu chunkBox
	root := p.t.Root()
	par.For(n, workers, func(lo, hi int) {
		best := chunkMin{arg: -1}
		for v := lo; v < hi; v++ {
			if v == root {
				continue
			}
			cut := dSums[v] - 2*iSums[v]
			res.Cuts[v] = cut
			if best.arg == -1 || cut < best.weight {
				best = chunkMin{weight: cut, arg: v}
			}
		}
		if best.arg != -1 {
			mu.add(best.weight, best.arg)
		}
	})
	res.MinWeight, res.ArgVertex = mu.weight, mu.arg
	return res, nil
}

// chunkBox folds per-chunk minima under a mutex, preferring the smaller
// weight and, on ties, the smaller vertex id — the order a sequential
// ascending scan with strict < would produce.
type chunkBox struct {
	mu     sync.Mutex
	arg    int
	weight int64
	seen   bool
}

func (b *chunkBox) add(weight int64, arg int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.seen || weight < b.weight || (weight == b.weight && arg < b.arg) {
		b.weight, b.arg, b.seen = weight, arg, true
	}
}
