package experiments

import (
	"spatialtree/internal/listrank"
	"spatialtree/internal/machine"
	"spatialtree/internal/rng"
	"spatialtree/internal/sfc"
	"spatialtree/internal/xstat"
)

func init() {
	register(Experiment{
		ID:    "E6",
		Title: "Theorem 5: list ranking in O(n^{3/2}) energy and O(log n) depth w.h.p.",
		Claim: "Theorem 5: random-mate contraction list ranking takes O(n^{3/2}) energy and O(log n) depth w.h.p.; Wyllie pointer jumping (PRAM) pays an extra log factor in energy and messages",
		Run:   runE6,
	})
}

func runE6(cfg Config) []*xstat.Table {
	ns := sizes(cfg, []int{10, 12}, []int{10, 12, 14, 16})
	r := rng.New(cfg.Seed)

	tb := &xstat.Table{
		Title:  "E6: list ranking — spatial (Theorem 5) vs Wyllie (PRAM baseline)",
		Header: []string{"n", "spatial energy", "wyllie energy", "ratio", "sp msgs", "wy msgs", "sp depth", "wy depth"},
	}
	var fns, spE []float64
	for _, n := range ns {
		next := make([]int, n)
		perm := r.Perm(n)
		for i := 0; i+1 < n; i++ {
			next[perm[i]] = perm[i+1]
		}
		next[perm[n-1]] = -1

		sp := machine.New(n, sfc.Hilbert{})
		listrank.Spatial(sp, next, nil, rng.New(cfg.Seed+uint64(n)))
		wy := machine.New(n, sfc.Hilbert{})
		listrank.Wyllie(wy, next, nil)

		tb.Add(xstat.I(n),
			xstat.I(sp.Energy()), xstat.I(wy.Energy()),
			xstat.F(float64(wy.Energy())/float64(sp.Energy()), 2),
			xstat.I(sp.Messages()), xstat.I(wy.Messages()),
			xstat.I(sp.Depth()), xstat.I(wy.Depth()))
		fns = append(fns, float64(n))
		spE = append(spE, float64(sp.Energy()))
	}
	tb.Note("spatial energy exponent: %.2f (Theorem 5: 1.5)", xstat.LogLogSlope(fns, spE))
	tb.Note("spatial messages are O(n) (geometric contraction); Wyllie's grow as n·log n")

	seeds := &xstat.Table{
		Title:  "E6b: Las Vegas stability across coin seeds (n fixed)",
		Header: []string{"seed", "energy", "depth", "messages"},
	}
	n := ns[len(ns)-1]
	next := make([]int, n)
	perm := r.Perm(n)
	for i := 0; i+1 < n; i++ {
		next[perm[i]] = perm[i+1]
	}
	next[perm[n-1]] = -1
	var depths []float64
	for seed := uint64(0); seed < 5; seed++ {
		s := machine.New(n, sfc.Hilbert{})
		listrank.Spatial(s, next, nil, rng.New(seed))
		seeds.Add(xstat.I(int(seed)), xstat.I(s.Energy()), xstat.I(s.Depth()), xstat.I(s.Messages()))
		depths = append(depths, float64(s.Depth()))
	}
	seeds.Note("depth spread (stddev/mean): %.3f — the w.h.p. concentration", xstat.StdDev(depths)/xstat.Mean(depths))
	return []*xstat.Table{tb, seeds}
}
