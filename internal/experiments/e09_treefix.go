package experiments

import (
	"spatialtree/internal/machine"
	"spatialtree/internal/order"
	"spatialtree/internal/pram"
	"spatialtree/internal/rng"
	"spatialtree/internal/sfc"
	"spatialtree/internal/tree"
	"spatialtree/internal/treefix"
	"spatialtree/internal/xstat"
)

func init() {
	register(Experiment{
		ID:    "E9",
		Title: "Lemmas 11/12: treefix sum — spatial vs PRAM, bounded and unbounded degree",
		Claim: "Treefix sum takes O(n log n) energy and O(log n) depth (bounded degree) / O(log² n) (unbounded) w.h.p.; a PRAM simulation takes Θ(n^{3/2}) energy and O(log⁴ n) depth",
		Run:   runE9,
	})
}

func runE9(cfg Config) []*xstat.Table {
	ns := sizes(cfg, []int{9, 11}, []int{9, 11, 13, 15})
	r := rng.New(cfg.Seed)

	main := &xstat.Table{
		Title:  "E9: treefix energy and depth — spatial (light-first) vs executable PRAM baseline",
		Header: []string{"n", "spatial energy", "pram energy", "ratio", "spatial depth", "pram depth", "pram est(n^1.5)"},
	}
	var fns, spE, prE []float64
	for _, n := range ns {
		t := tree.RandomBoundedDegree(n, 2, r)
		vals := make([]int64, n)
		for i := range vals {
			vals[i] = int64(i%97) - 48
		}
		rank := order.LightFirst(t).Rank
		sp := machine.New(n, sfc.Hilbert{})
		spRes, _ := treefix.BottomUp(sp, t, rank, vals, treefix.Add, rng.New(cfg.Seed+uint64(n)))
		pr := machine.New(2*n, sfc.Hilbert{})
		prRes := pram.TreefixDirect(pr, t, vals)
		for v := 0; v < n; v++ {
			if spRes[v] != prRes[v] {
				panic("E9: baselines disagree — implementation bug")
			}
		}
		main.Add(xstat.I(n), xstat.I(sp.Energy()), xstat.I(pr.Energy()),
			xstat.F(float64(pr.Energy())/float64(sp.Energy()), 2),
			xstat.I(sp.Depth()), xstat.I(pr.Depth()),
			xstat.F(pram.WorkOptimalTreefixEnergy(n), 0))
		fns = append(fns, float64(n))
		spE = append(spE, float64(sp.Energy()))
		prE = append(prE, float64(pr.Energy()))
	}
	main.Note("spatial energy exponent: %.2f (claim: ~1 + log factor); PRAM exponent: %.2f (claim: 1.5 + log factor)",
		xstat.LogLogSlope(fns, spE), xstat.LogLogSlope(fns, prE))
	main.Note("the PRAM/spatial ratio widens with n — the paper's polynomial energy separation")

	fam := &xstat.Table{
		Title:  "E9b: spatial treefix across tree families (largest n)",
		Header: []string{"family", "max-deg", "energy/n", "depth", "rounds"},
	}
	n := ns[len(ns)-1]
	for _, name := range []string{"path", "random-bin", "caterpillar", "star", "preferential", "yule"} {
		var t *tree.Tree
		switch name {
		case "path":
			t = tree.Path(n)
		case "random-bin":
			t = tree.RandomBoundedDegree(n, 2, r)
		case "caterpillar":
			t = tree.Caterpillar(n)
		case "star":
			t = tree.Star(n)
		case "preferential":
			t = tree.PreferentialAttachment(n, r)
		case "yule":
			t = tree.Yule(n/2, r)
		}
		rank := order.LightFirst(t).Rank
		s := machine.New(t.N(), sfc.Hilbert{})
		_, st := treefix.BottomUp(s, t, rank, make([]int64, t.N()), treefix.Add, rng.New(cfg.Seed))
		fam.Add(name, xstat.I(t.MaxDegree()),
			xstat.F(float64(s.Energy())/float64(t.N()), 2),
			xstat.I(s.Depth()), xstat.I(st.Rounds))
	}

	abl := &xstat.Table{
		Title:  "E9c: ablation — the same treefix on different placements (largest n, random-bin)",
		Header: []string{"placement", "energy/n", "vs light-first", "max-link-load"},
	}
	t := tree.RandomBoundedDegree(n, 2, rng.New(cfg.Seed+1))
	vals := make([]int64, t.N())
	var base float64
	for _, pl := range []string{"light-first/hilbert", "light-first/zorder", "bfs/hilbert", "random/hilbert", "light-first/scatter"} {
		var rank []int
		var curve sfc.Curve = sfc.Hilbert{}
		switch pl {
		case "light-first/hilbert":
			rank = order.LightFirst(t).Rank
		case "light-first/zorder":
			rank = order.LightFirst(t).Rank
			curve = sfc.ZOrder{}
		case "bfs/hilbert":
			rank = order.BFS(t).Rank
		case "random/hilbert":
			rank = order.Random(t, rng.New(9)).Rank
		case "light-first/scatter":
			rank = order.LightFirst(t).Rank
			curve = sfc.Scatter{}
		}
		s := machine.New(t.N(), curve)
		s.EnableCongestion()
		treefix.BottomUp(s, t, rank, vals, treefix.Add, rng.New(cfg.Seed))
		ev := float64(s.Energy()) / float64(t.N())
		if pl == "light-first/hilbert" {
			base = ev
		}
		abl.Add(pl, xstat.F(ev, 2), xstat.F(ev/base, 2)+"x", xstat.I(s.MaxLinkLoad()))
	}
	abl.Note("the layout, not the algorithm, supplies the energy bound: same code, polynomially different cost")
	abl.Note("max-link-load (dimension-ordered routing) shows bad layouts also concentrate mesh traffic, §II-A's congestion point")
	return []*xstat.Table{main, fam, abl}
}
