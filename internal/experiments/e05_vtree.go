package experiments

import (
	"spatialtree/internal/eulertour"
	"spatialtree/internal/machine"
	"spatialtree/internal/order"
	"spatialtree/internal/rng"
	"spatialtree/internal/sfc"
	"spatialtree/internal/tree"
	"spatialtree/internal/vtree"
	"spatialtree/internal/xstat"
)

func init() {
	register(Experiment{
		ID:    "E5",
		Title: "Theorem 3: local messaging on unbounded-degree trees via the virtual tree",
		Claim: "Theorem 3: local broadcast/reduce in light-first order takes O(n) energy and O(log n) depth even for unbounded degree; naive fan-out has Θ(∆) depth",
		Run:   runE5,
	})
}

func runE5(cfg Config) []*xstat.Table {
	ns := sizes(cfg, []int{10, 12}, []int{10, 12, 14, 16})
	r := rng.New(cfg.Seed)

	tb := &xstat.Table{
		Title:  "E5: virtual-tree local broadcast on unbounded-degree trees (Hilbert light-first)",
		Header: []string{"family", "n", "max-deg", "vdeg", "energy/vertex", "depth", "log2(n)", "naive depth"},
	}
	for _, fam := range []string{"star", "preferential", "broom"} {
		for _, n := range ns {
			var t *tree.Tree
			switch fam {
			case "star":
				t = tree.Star(n)
			case "preferential":
				t = tree.PreferentialAttachment(n, r)
			case "broom":
				t = tree.Broom(n)
			}
			sizesArr := t.SubtreeSizes()
			vt := vtree.Build(t, eulertour.SortedChildrenBySize(t, sizesArr))
			rank := order.LightFirst(t).Rank
			s := machine.New(t.N(), sfc.Hilbert{})
			vtree.LocalBroadcast(s, vt, rank, make([]int64, t.N()))
			logn := 0
			for m := 1; m < t.N(); m *= 2 {
				logn++
			}
			// Naive direct fan-out depth is the maximum degree (sends
			// serialize at the hub).
			tb.Add(fam, xstat.I(t.N()), xstat.I(t.MaxDegree()),
				xstat.I(vt.MaxVirtualDegree()),
				xstat.F(float64(s.Energy())/float64(t.N()), 3),
				xstat.I(s.Depth()), xstat.I(logn), xstat.I(t.MaxDegree()))
		}
	}
	tb.Note("depth tracks log2(n), not max-deg — the Theorem 3 separation from naive fan-out")

	red := &xstat.Table{
		Title:  "E5b: virtual-tree local reduce (same trees)",
		Header: []string{"family", "n", "energy/vertex", "depth"},
	}
	for _, fam := range []string{"star", "preferential"} {
		for _, n := range ns {
			var t *tree.Tree
			if fam == "star" {
				t = tree.Star(n)
			} else {
				t = tree.PreferentialAttachment(n, r)
			}
			vt := vtree.Build(t, eulertour.SortedChildrenBySize(t, t.SubtreeSizes()))
			rank := order.LightFirst(t).Rank
			s := machine.New(t.N(), sfc.Hilbert{})
			vals := make([]int64, t.N())
			for i := range vals {
				vals[i] = 1
			}
			vtree.LocalReduce(s, vt, rank, vals, 0, func(a, b int64) int64 { return a + b })
			red.Add(fam, xstat.I(t.N()),
				xstat.F(float64(s.Energy())/float64(t.N()), 3), xstat.I(s.Depth()))
		}
	}
	return []*xstat.Table{tb, red}
}
