package experiments

import (
	"spatialtree/internal/sfc"
	"spatialtree/internal/xstat"
)

func init() {
	register(Experiment{
		ID:    "E1",
		Title: "Distance-bound constants of the space-filling curves",
		Claim: "§II-B/§III-B: dist(i,i+j) ≤ α√j with α=3 (Hilbert), α=√(10+2/3)≈3.27 (Peano); Z-order is not distance-bound; aligned curves have factor ≤ 2 (Lemma 4)",
		Run:   runE1,
	})
}

func runE1(cfg Config) []*xstat.Table {
	sides := map[string][]int{
		"hilbert":  {8, 16, 32, 64},
		"moore":    {8, 16, 32, 64},
		"peano":    {9, 27, 81},
		"zorder":   {8, 16, 32, 64},
		"snake":    {8, 16, 32, 64},
		"rowmajor": {8, 16, 32, 64},
		"scatter":  {8, 16, 32},
	}
	if cfg.Quick {
		for k, v := range sides {
			sides[k] = v[:2]
		}
	}
	paperAlpha := map[string]string{
		"hilbert": "3", "moore": "3 (Hilbert-derived)", "peano": "3.27",
		"zorder": "unbounded", "snake": "unbounded", "rowmajor": "unbounded",
		"scatter": "unbounded",
	}

	tb := &xstat.Table{
		Title:  "E1: measured α = max dist(i,i+j)/√j per curve and grid side",
		Header: []string{"curve", "side", "alpha", "paper"},
	}
	growth := &xstat.Table{
		Title:  "E1b: alignment factors (Lemma 3/4)",
		Header: []string{"curve", "side", "all-windows", "aligned-windows"},
	}
	for _, c := range sfc.Registry() {
		for _, side := range sides[c.Name()] {
			db := sfc.MeasureDistanceBoundSampled(c, side)
			tb.Add(c.Name(), xstat.I(side), xstat.F(db.Alpha, 3), paperAlpha[c.Name()])
		}
		side := sides[c.Name()][len(sides[c.Name()])-1]
		if side > 32 {
			side = 32
		}
		// Alignment factors are quadratic to measure; use a small side.
		if c.Name() == "peano" {
			side = 27
		}
		growth.Add(c.Name(), xstat.I(side),
			xstat.F(sfc.AlignmentFactor(c, side), 2),
			xstat.F(sfc.AlignedWindowFactor(c, side), 2))
	}
	tb.Note("distance-bound curves keep α flat as the side grows; Z/row-major/scatter α grows with the side")
	growth.Note("Lemma 4: aligned curves (factor ≤ 2 over all windows) are distance-bound; Z is aligned only for aligned windows (Lemma 3)")
	return []*xstat.Table{tb, growth}
}
