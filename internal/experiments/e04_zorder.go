package experiments

import (
	"spatialtree/internal/layout"
	"spatialtree/internal/rng"
	"spatialtree/internal/sfc"
	"spatialtree/internal/tree"
	"spatialtree/internal/xstat"
)

func init() {
	register(Experiment{
		ID:    "E4",
		Title: "Theorem 2 + Lemma 7: Z-light-first order is energy-bound; diagonal energy is O(n)",
		Claim: "Theorem 2: light-first on the Z curve has O(n) kernel energy despite Z not being distance-bound; Lemma 7: total diagonal energy ∈ O(n)",
		Run:   runE4,
	})
}

func runE4(cfg Config) []*xstat.Table {
	ns := sizes(cfg, []int{10, 12}, []int{10, 12, 14, 16, 18})
	r := rng.New(cfg.Seed)

	tb := &xstat.Table{
		Title:  "E4: Z-order light-first kernel energy split (Lemma 3 decomposition)",
		Header: []string{"family", "n", "energy/vertex", "base/vertex", "diag/vertex", "crossing-edges", "hilbert e/v"},
	}
	var allNs, totals []float64
	for _, fam := range []string{"random-bin", "caterpillar"} {
		for _, n := range ns {
			var t *tree.Tree
			if fam == "random-bin" {
				t = tree.RandomBoundedDegree(n, 2, r)
			} else {
				t = tree.Caterpillar(n)
			}
			pz := layout.LightFirst(t, sfc.ZOrder{})
			k := layout.ParentChildEnergy(pz)
			z := layout.MeasureZDiagnostics(pz)
			ph := layout.LightFirst(t, sfc.Hilbert{})
			kh := layout.ParentChildEnergy(ph)
			fn := float64(t.N())
			tb.Add(fam, xstat.I(t.N()),
				xstat.F(k.PerVertex, 3),
				xstat.F(float64(z.Base)/fn, 3),
				xstat.F(float64(z.Diagonal)/fn, 3),
				xstat.I(z.CrossingEdges),
				xstat.F(kh.PerVertex, 3))
			if fam == "random-bin" {
				allNs = append(allNs, fn)
				totals = append(totals, float64(k.Energy))
			}
		}
	}
	tb.Note("Z energy growth exponent (random-bin): %.2f (Theorem 2: 1.0 = linear)", xstat.LogLogSlope(allNs, totals))
	tb.Note("diag/vertex flat in n confirms Lemma 7's O(n) diagonal bound")
	return []*xstat.Table{tb}
}
