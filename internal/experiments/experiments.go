// Package experiments implements the reproduction experiments E1-E12
// indexed in DESIGN.md: one per quantitative claim of the paper (the
// paper is analytic, so its "tables and figures" are the theorem bounds,
// the curve constants of Section III-B, and the worst-case examples of
// Section III). Each experiment generates its workloads, runs the
// relevant algorithms on the spatial-computer simulator, and renders the
// measurements as tables with the paper's claim alongside.
//
// The cmd/spatialbench binary prints these tables; the repository-root
// benchmarks run the same code under testing.B; EXPERIMENTS.md records
// paper-vs-measured for a pinned seed.
package experiments

import (
	"fmt"
	"sort"

	"spatialtree/internal/xstat"
)

// Config controls experiment scale.
type Config struct {
	// Sizes are the input sizes (vertex counts) to sweep; nil uses the
	// experiment's default sweep.
	Sizes []int
	// Seed drives all randomness (workloads and Las Vegas coins).
	Seed uint64
	// Quick shrinks the sweep for smoke tests and benchmarks.
	Quick bool
}

// DefaultConfig is used by cmd/spatialbench.
func DefaultConfig() Config { return Config{Seed: 42} }

// Experiment is one reproduction unit.
type Experiment struct {
	// ID is the experiment identifier from DESIGN.md, e.g. "E3".
	ID string
	// Title is a short description.
	Title string
	// Claim quotes the paper's quantitative claim being checked.
	Claim string
	// Run executes the experiment and returns its tables.
	Run func(cfg Config) []*xstat.Table
}

var registry []Experiment

func register(e Experiment) { registry = append(registry, e) }

// All returns the registered experiments sorted by ID.
func All() []Experiment {
	out := append([]Experiment(nil), registry...)
	sort.Slice(out, func(i, j int) bool {
		// E1 < E2 < ... < E10 < E11 (numeric suffix).
		var a, b int
		fmt.Sscanf(out[i].ID, "E%d", &a)
		fmt.Sscanf(out[j].ID, "E%d", &b)
		return a < b
	})
	return out
}

// ByID returns the experiment with the given ID.
func ByID(id string) (Experiment, bool) {
	for _, e := range registry {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// sizes returns cfg.Sizes or the default (quick-aware) power-of-two
// sweep.
func sizes(cfg Config, quickBits, fullBits []int) []int {
	if len(cfg.Sizes) > 0 {
		return cfg.Sizes
	}
	bits := fullBits
	if cfg.Quick {
		bits = quickBits
	}
	out := make([]int, len(bits))
	for i, b := range bits {
		out[i] = 1 << b
	}
	return out
}
