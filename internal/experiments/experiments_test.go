package experiments

import (
	"strconv"
	"strings"
	"testing"
)

func TestRegistryComplete(t *testing.T) {
	all := All()
	if len(all) != 12 {
		t.Fatalf("registered %d experiments, want 12", len(all))
	}
	for i, e := range all {
		want := "E" + strconv.Itoa(i+1)
		if e.ID != want {
			t.Errorf("experiment %d has ID %q, want %q", i, e.ID, want)
		}
		if e.Title == "" || e.Claim == "" || e.Run == nil {
			t.Errorf("%s: incomplete metadata", e.ID)
		}
	}
}

func TestByID(t *testing.T) {
	if _, ok := ByID("E3"); !ok {
		t.Fatal("E3 not found")
	}
	if _, ok := ByID("E99"); ok {
		t.Fatal("E99 should not exist")
	}
}

func TestAllExperimentsRunQuick(t *testing.T) {
	cfg := Config{Seed: 1, Quick: true}
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			tables := e.Run(cfg)
			if len(tables) == 0 {
				t.Fatalf("%s returned no tables", e.ID)
			}
			for _, tb := range tables {
				out := tb.String()
				if len(tb.Rows) == 0 {
					t.Errorf("%s: table %q has no rows", e.ID, tb.Title)
				}
				if !strings.Contains(out, tb.Header[0]) {
					t.Errorf("%s: table render missing header", e.ID)
				}
			}
		})
	}
}

func TestSizesHelper(t *testing.T) {
	got := sizes(Config{Quick: true}, []int{3, 4}, []int{10})
	if len(got) != 2 || got[0] != 8 || got[1] != 16 {
		t.Fatalf("sizes quick = %v", got)
	}
	got = sizes(Config{Sizes: []int{7}}, []int{3}, []int{10})
	if len(got) != 1 || got[0] != 7 {
		t.Fatalf("sizes override = %v", got)
	}
}

func TestDefaultConfig(t *testing.T) {
	if DefaultConfig().Seed == 0 {
		t.Fatal("default seed should be fixed and nonzero")
	}
}
