package experiments

import (
	"time"

	"spatialtree/internal/lca"
	"spatialtree/internal/par"
	"spatialtree/internal/rng"
	"spatialtree/internal/tree"
	"spatialtree/internal/treefix"
	"spatialtree/internal/xstat"
)

func init() {
	register(Experiment{
		ID:    "E12",
		Title: "Wall-clock scalability of the goroutine executors",
		Claim: "The paper's algorithms assume fine-grained hardware parallelism; the CPU executors (Euler-tour treefix, sparse-table LCA) must scale with cores (the repro-band caveat: fork-join on goroutines)",
		Run:   runE12,
	})
}

func runE12(cfg Config) []*xstat.Table {
	n := 1 << 20
	if cfg.Quick {
		n = 1 << 16
	}
	r := rng.New(cfg.Seed)
	t := tree.RandomAttachment(n, r)
	vals := make([]int64, n)
	for i := range vals {
		vals[i] = int64(i)
	}

	workersList := []int{1, 2, 4, par.Workers()}
	tb := &xstat.Table{
		Title:  "E12: goroutine treefix/LCA wall-clock (n = " + xstat.I(n) + ")",
		Header: []string{"workers", "treefix-bu ms", "treefix-td ms", "lca-build ms", "lca-1e5-queries ms", "bu speedup"},
	}
	var base float64
	for _, w := range workersList {
		e := treefix.NewEngine(t, w)
		start := time.Now()
		bu := e.BottomUpSum(vals)
		buMS := float64(time.Since(start).Microseconds()) / 1000

		start = time.Now()
		e.TopDownSum(vals)
		tdMS := float64(time.Since(start).Microseconds()) / 1000

		start = time.Now()
		le := lca.NewEngine(t, w)
		buildMS := float64(time.Since(start).Microseconds()) / 1000

		qr := rng.New(7)
		qs := make([]lca.Query, 100000)
		for i := range qs {
			qs[i] = lca.Query{U: qr.Intn(n), V: qr.Intn(n)}
		}
		start = time.Now()
		le.BatchLCA(qs)
		qMS := float64(time.Since(start).Microseconds()) / 1000

		if w == 1 {
			base = buMS
		}
		_ = bu
		tb.Add(xstat.I(w), xstat.F(buMS, 1), xstat.F(tdMS, 1),
			xstat.F(buildMS, 1), xstat.F(qMS, 1), xstat.F(base/buMS, 2)+"x")
	}
	tb.Note("speedups are bounded by the two memory-bound prefix passes; see bench_test.go for testing.B numbers")
	return []*xstat.Table{tb}
}
