package experiments

import (
	"spatialtree/internal/lca"
	"spatialtree/internal/machine"
	"spatialtree/internal/order"
	"spatialtree/internal/pram"
	"spatialtree/internal/rng"
	"spatialtree/internal/sfc"
	"spatialtree/internal/tree"
	"spatialtree/internal/xstat"
)

func init() {
	register(Experiment{
		ID:    "E11",
		Title: "Theorem 6: batched LCA in O(n log n) energy and O(log² n) depth",
		Claim: "Theorem 6: the subtree-cover LCA algorithm answers a batch (each vertex in O(1) queries) with O(n log n) energy and O(log² n) depth w.h.p. — vs Ω(n^{3/2}) for the naive PRAM simulation",
		Run:   runE11,
	})
}

func runE11(cfg Config) []*xstat.Table {
	ns := sizes(cfg, []int{9, 11}, []int{9, 11, 13, 15})
	r := rng.New(cfg.Seed)

	tb := &xstat.Table{
		Title:  "E11: batched LCA cost scaling (random trees, n/2 disjoint queries)",
		Header: []string{"n", "queries", "energy", "energy/(n·log2 n)", "depth", "log2²(n)", "layers", "ancestor/cover", "pram-direct", "ratio"},
	}
	var fns, es []float64
	for _, n := range ns {
		t := tree.RandomAttachment(n, r)
		rank := order.LightFirst(t).Rank
		perm := r.Perm(n)
		var qs []lca.Query
		qPairs := make([][2]int, 0, n/2)
		for i := 0; i+1 < n; i += 2 {
			qs = append(qs, lca.Query{U: perm[i], V: perm[i+1]})
			qPairs = append(qPairs, [2]int{perm[i], perm[i+1]})
		}
		s := machine.New(n, sfc.Hilbert{})
		ans, st := lca.Batched(s, t, rank, qs, rng.New(cfg.Seed+uint64(n)))
		// Executable PRAM baseline: Euler-tour sparse table with
		// scattered cells, every access charged.
		ps := machine.New(2*n, sfc.Hilbert{})
		pAns := pram.LCADirect(ps, t, qPairs)
		for i := range ans {
			if ans[i] != pAns[i] {
				panic("E11: spatial and PRAM LCA disagree — implementation bug")
			}
		}
		logn := 0
		for m := 1; m < n; m *= 2 {
			logn++
		}
		tb.Add(xstat.I(n), xstat.I(len(qs)), xstat.I(s.Energy()),
			xstat.F(float64(s.Energy())/(float64(n)*float64(logn)), 2),
			xstat.I(s.Depth()), xstat.I(logn*logn), xstat.I(st.Layers),
			xstat.I(st.AncestorAnswered)+"/"+xstat.I(st.CoverAnswered),
			xstat.I(ps.Energy()),
			xstat.F(float64(ps.Energy())/float64(s.Energy()), 1)+"x")
		fns = append(fns, float64(n))
		es = append(es, float64(s.Energy()))
	}
	tb.Note("energy exponent: %.2f (Theorem 6: ~1 + log factor, vs 1.5 for PRAM)", xstat.LogLogSlope(fns, es))
	tb.Note("energy/(n·log2 n) flat confirms the O(n log n) bound; depth stays under the log² envelope")
	tb.Note("pram-direct = executable sparse-table LCA with scattered memory, Θ(n^{3/2} log n) energy")

	fam := &xstat.Table{
		Title:  "E11b: batched LCA across families (largest n)",
		Header: []string{"family", "energy/n", "depth", "layers"},
	}
	n := ns[len(ns)-1]
	for _, name := range []string{"random", "path", "caterpillar", "preferential", "yule"} {
		var t *tree.Tree
		switch name {
		case "random":
			t = tree.RandomAttachment(n, r)
		case "path":
			t = tree.Path(n)
		case "caterpillar":
			t = tree.Caterpillar(n)
		case "preferential":
			t = tree.PreferentialAttachment(n, r)
		case "yule":
			t = tree.Yule(n/2, r)
		}
		rank := order.LightFirst(t).Rank
		perm := r.Perm(t.N())
		var qs []lca.Query
		for i := 0; i+1 < t.N(); i += 2 {
			qs = append(qs, lca.Query{U: perm[i], V: perm[i+1]})
		}
		s := machine.New(t.N(), sfc.Hilbert{})
		_, st := lca.Batched(s, t, rank, qs, rng.New(cfg.Seed))
		fam.Add(name, xstat.F(float64(s.Energy())/float64(t.N()), 2),
			xstat.I(s.Depth()), xstat.I(st.Layers))
	}
	return []*xstat.Table{tb, fam}
}
