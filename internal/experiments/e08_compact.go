package experiments

import (
	"spatialtree/internal/machine"
	"spatialtree/internal/order"
	"spatialtree/internal/rng"
	"spatialtree/internal/sfc"
	"spatialtree/internal/tree"
	"spatialtree/internal/treefix"
	"spatialtree/internal/xstat"
)

func init() {
	register(Experiment{
		ID:    "E8",
		Title: "Lemma 10/11: COMPACT rounds and per-round energy",
		Claim: "Lemma 10: one COMPACT round costs O(n) energy; Lemma 11: O(log n) rounds contract the tree w.h.p.",
		Run:   runE8,
	})
}

func runE8(cfg Config) []*xstat.Table {
	ns := sizes(cfg, []int{10, 12}, []int{10, 12, 14, 16})
	r := rng.New(cfg.Seed)

	tb := &xstat.Table{
		Title:  "E8: contraction rounds and energy per round (Hilbert light-first)",
		Header: []string{"family", "n", "rounds", "log2(n)", "energy/(n·rounds)", "compress", "rake", "raked-leaves"},
	}
	for _, fam := range []string{"random-bin", "path", "preferential", "caterpillar"} {
		for _, n := range ns {
			var t *tree.Tree
			switch fam {
			case "random-bin":
				t = tree.RandomBoundedDegree(n, 2, r)
			case "path":
				t = tree.Path(n)
			case "preferential":
				t = tree.PreferentialAttachment(n, r)
			case "caterpillar":
				t = tree.Caterpillar(n)
			}
			rank := order.LightFirst(t).Rank
			s := machine.New(t.N(), sfc.Hilbert{})
			_, st := treefix.BottomUp(s, t, rank, make([]int64, t.N()), treefix.Add, rng.New(cfg.Seed+uint64(n)))
			logn := 0
			for m := 1; m < n; m *= 2 {
				logn++
			}
			perRound := float64(s.Energy()) / float64(t.N()) / float64(st.Rounds)
			tb.Add(fam, xstat.I(t.N()), xstat.I(st.Rounds), xstat.I(logn),
				xstat.F(perRound, 3), xstat.I(st.CompressOps), xstat.I(st.RakeOps),
				xstat.I(st.RakedLeaves))
		}
	}
	tb.Note("rounds track log2(n) (Lemma 11); energy/(n·rounds) flat confirms Lemma 10's O(n) per round")
	return []*xstat.Table{tb}
}
