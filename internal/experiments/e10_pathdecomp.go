package experiments

import (
	"spatialtree/internal/lca"
	"spatialtree/internal/machine"
	"spatialtree/internal/order"
	"spatialtree/internal/rng"
	"spatialtree/internal/sfc"
	"spatialtree/internal/tree"
	"spatialtree/internal/xstat"
)

func init() {
	register(Experiment{
		ID:    "E10",
		Title: "§VI-A: heavy-light path decomposition has O(log n) layers",
		Claim: "Connecting each vertex to its rightmost (heaviest) child in light-first order yields a path decomposition with O(log n) layers, computed by a top-down treefix",
		Run:   runE10,
	})
}

func runE10(cfg Config) []*xstat.Table {
	ns := sizes(cfg, []int{10, 12}, []int{10, 12, 14, 16})
	r := rng.New(cfg.Seed)

	tb := &xstat.Table{
		Title:  "E10: path-decomposition layers by family and size",
		Header: []string{"family", "n", "layers", "log2(n)", "height"},
	}
	for _, fam := range []string{"path", "random", "preferential", "caterpillar", "perfect-bin", "yule"} {
		for _, n := range ns {
			var t *tree.Tree
			switch fam {
			case "path":
				t = tree.Path(n)
			case "random":
				t = tree.RandomAttachment(n, r)
			case "preferential":
				t = tree.PreferentialAttachment(n, r)
			case "caterpillar":
				t = tree.Caterpillar(n)
			case "perfect-bin":
				levels := 1
				for (1<<levels)-1 < n {
					levels++
				}
				t = tree.PerfectBinary(levels)
			case "yule":
				t = tree.Yule(n/2, r)
			}
			rank := order.LightFirst(t).Rank
			// A tiny batch forces the full decomposition machinery.
			qs := []lca.Query{{U: 0, V: t.N() - 1}}
			s := machine.New(t.N(), sfc.Hilbert{})
			_, st := lca.Batched(s, t, rank, qs, rng.New(cfg.Seed))
			logn := 0
			for m := 1; m < t.N(); m *= 2 {
				logn++
			}
			tb.Add(fam, xstat.I(t.N()), xstat.I(st.Layers), xstat.I(logn), xstat.I(t.Height()))
		}
	}
	tb.Note("layers ≤ log2(n)+1 for every family — each path switch at least halves the subtree (§VI-A)")
	return []*xstat.Table{tb}
}
