package experiments

import (
	"math"

	"spatialtree/internal/eulertour"
	"spatialtree/internal/machine"
	"spatialtree/internal/pram"
	"spatialtree/internal/rng"
	"spatialtree/internal/sfc"
	"spatialtree/internal/tree"
	"spatialtree/internal/xstat"
)

func init() {
	register(Experiment{
		ID:    "E7",
		Title: "Theorem 4: layout creation in O(n^{3/2}) energy, low depth",
		Claim: "Theorem 4: computing light-first order takes O(n^{3/2}) energy (the permutation lower bound) and O(log n) depth w.h.p.; a PRAM simulation needs Θ(n^{3/2}) energy and Θ(log⁴ n) depth",
		Run:   runE7,
	})
}

func runE7(cfg Config) []*xstat.Table {
	ns := sizes(cfg, []int{9, 11}, []int{9, 11, 13, 15})
	r := rng.New(cfg.Seed)

	tb := &xstat.Table{
		Title:  "E7: layout creation cost vs the PRAM-simulation estimate",
		Header: []string{"n", "energy", "energy/n^1.5", "depth", "log2²(n)", "PRAM energy est", "PRAM depth est"},
	}
	var fns, es, ds []float64
	for _, n := range ns {
		t := tree.RandomAttachment(n, r)
		s := machine.New(2*n, sfc.Hilbert{})
		eulertour.LightFirstLayout(s, t, rng.New(cfg.Seed+uint64(n)))
		logn := 0
		for m := 1; m < n; m *= 2 {
			logn++
		}
		n15 := float64(n) * math.Sqrt(float64(n))
		tb.Add(xstat.I(n), xstat.I(s.Energy()),
			xstat.F(float64(s.Energy())/n15, 2),
			xstat.I(s.Depth()), xstat.I(logn*logn),
			xstat.F(pram.WorkOptimalTreefixEnergy(n), 0),
			xstat.F(pram.WorkOptimalTreefixDepth(n), 0))
		fns = append(fns, float64(n))
		es = append(es, float64(s.Energy()))
		ds = append(ds, float64(s.Depth()))
	}
	tb.Note("energy exponent: %.2f (Theorem 4: 1.5)", xstat.LogLogSlope(fns, es))
	tb.Note("depth exponent: %.2f (poly-logarithmic: near 0; our pipeline is O(log² n) due to the sorting network — the paper states O(log n))",
		xstat.LogLogSlope(fns, ds))

	stages := &xstat.Table{
		Title:  "E7b: per-stage cumulative cost (largest n)",
		Header: []string{"stage", "energy", "depth", "messages"},
	}
	n := ns[len(ns)-1]
	t := tree.RandomAttachment(n, r)
	s := machine.New(2*n, sfc.Hilbert{})
	res := eulertour.LightFirstLayout(s, t, rng.New(cfg.Seed))
	for _, st := range res.Stages {
		stages.Add(st.Name, xstat.I(st.Cost.Energy), xstat.I(st.Cost.Depth), xstat.I(st.Cost.Messages))
	}
	return []*xstat.Table{tb, stages}
}
