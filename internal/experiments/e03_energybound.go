package experiments

import (
	"spatialtree/internal/layout"
	"spatialtree/internal/rng"
	"spatialtree/internal/sfc"
	"spatialtree/internal/tree"
	"spatialtree/internal/xstat"
)

func init() {
	register(Experiment{
		ID:    "E3",
		Title: "Theorem 1: light-first order on distance-bound curves is energy-bound",
		Claim: "Theorem 1: total kernel energy ≤ ∆·8c·n; i.e. O(1) energy per vertex, for any bounded-degree tree on any distance-bound curve",
		Run:   runE3,
	})
}

// e3Families are the bounded-degree workloads of Theorem 1.
func e3Families(n int, r *rng.RNG) map[string]*tree.Tree {
	levels := 1
	for (1<<levels)-1 < n {
		levels++
	}
	return map[string]*tree.Tree{
		"path":        tree.Path(n),
		"perfect-bin": tree.PerfectBinary(levels),
		"caterpillar": tree.Caterpillar(n),
		"random-bin":  tree.RandomBoundedDegree(n, 2, r),
		"random-3ary": tree.RandomBoundedDegree(n, 3, r),
	}
}

func runE3(cfg Config) []*xstat.Table {
	ns := sizes(cfg, []int{10, 12}, []int{10, 12, 14, 16})
	curves := []sfc.Curve{sfc.Hilbert{}, sfc.Moore{}, sfc.Peano{}}
	r := rng.New(cfg.Seed)

	perVertex := &xstat.Table{
		Title:  "E3: light-first kernel energy per vertex (must stay O(1) as n grows)",
		Header: []string{"family", "curve", "n", "energy/vertex", "max-edge", "Thm1 bound/n", "ok"},
	}
	var famNames []string
	for name := range e3Families(4, rng.New(1)) {
		famNames = append(famNames, name)
	}
	// Deterministic order for stable output.
	sortStrings(famNames)
	for _, fam := range famNames {
		for _, c := range curves {
			for _, n := range ns {
				t := e3Families(n, r)[fam]
				p := layout.LightFirst(t, c)
				rep := layout.Measure(p)
				ok := "yes"
				if float64(rep.Kernel.Energy) > rep.Bound {
					ok = "VIOLATED"
				}
				perVertex.Add(fam, c.Name(), xstat.I(t.N()),
					xstat.F(rep.Kernel.PerVertex, 3), xstat.I(rep.Kernel.MaxDist),
					xstat.F(rep.Bound/float64(t.N()), 1), ok)
			}
		}
	}
	perVertex.Note("Theorem 1 bound is ∆·8c·n with c = α of the curve; 'ok' checks measured ≤ bound")
	return []*xstat.Table{perVertex}
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
