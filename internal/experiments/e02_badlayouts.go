package experiments

import (
	"spatialtree/internal/layout"
	"spatialtree/internal/order"
	"spatialtree/internal/sfc"
	"spatialtree/internal/tree"
	"spatialtree/internal/xstat"
)

func init() {
	register(Experiment{
		ID:    "E2",
		Title: "Naive layouts are polynomially worse (BFS on perfect binary trees, DFS on caterpillars)",
		Claim: "§III: a perfect binary tree in BFS layout has Ω(√n) average neighbor distance; DFS on a caterpillar is similarly poor; light-first is O(1)",
		Run:   runE2,
	})
}

func runE2(cfg Config) []*xstat.Table {
	levelsList := []int{10, 12, 14, 16}
	if cfg.Quick {
		levelsList = []int{8, 10}
	}
	curve := sfc.Hilbert{}

	bfs := &xstat.Table{
		Title:  "E2a: perfect binary tree — average parent-child distance by order (Hilbert curve)",
		Header: []string{"n", "side", "bfs", "dfs", "light-first", "bfs/lf"},
	}
	var ns, bfsAvg []float64
	for _, levels := range levelsList {
		t := tree.PerfectBinary(levels)
		pb := layout.New(t, order.BFS(t), curve)
		pd := layout.New(t, order.DFS(t), curve)
		pl := layout.LightFirst(t, curve)
		kb := layout.ParentChildEnergy(pb)
		kd := layout.ParentChildEnergy(pd)
		kl := layout.ParentChildEnergy(pl)
		bfs.Add(xstat.I(t.N()), xstat.I(pb.Side),
			xstat.F(kb.PerMessage, 2), xstat.F(kd.PerMessage, 2),
			xstat.F(kl.PerMessage, 2), xstat.F(kb.PerMessage/kl.PerMessage, 1))
		ns = append(ns, float64(t.N()))
		bfsAvg = append(bfsAvg, kb.PerMessage)
	}
	bfs.Note("BFS avg-distance growth exponent: %.2f (paper: 0.5 = Ω(√n)); light-first stays O(1)",
		xstat.LogLogSlope(ns, bfsAvg))

	cat := &xstat.Table{
		Title:  "E2b: caterpillar — average parent-child distance by order (Hilbert curve)",
		Header: []string{"n", "dfs(spine-first)", "bfs", "light-first", "dfs/lf"},
	}
	ns = ns[:0]
	var dfsAvg []float64
	for _, levels := range levelsList {
		n := 1 << levels
		t := tree.Caterpillar(n)
		pd := layout.New(t, order.DFS(t), curve)
		pb := layout.New(t, order.BFS(t), curve)
		pl := layout.LightFirst(t, curve)
		kd := layout.ParentChildEnergy(pd)
		kb := layout.ParentChildEnergy(pb)
		kl := layout.ParentChildEnergy(pl)
		cat.Add(xstat.I(n), xstat.F(kd.PerMessage, 2), xstat.F(kb.PerMessage, 2),
			xstat.F(kl.PerMessage, 2), xstat.F(kd.PerMessage/kl.PerMessage, 1))
		ns = append(ns, float64(n))
		dfsAvg = append(dfsAvg, kd.PerMessage)
	}
	cat.Note("DFS avg-distance growth exponent: %.2f (paper: polynomial); light-first stays O(1)",
		xstat.LogLogSlope(ns, dfsAvg))
	return []*xstat.Table{bfs, cat}
}
