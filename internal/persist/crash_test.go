package persist

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"spatialtree/internal/dynlayout"
	"spatialtree/internal/engine"
	"spatialtree/internal/lca"
	"spatialtree/internal/rng"
	"spatialtree/internal/sfc"
	"spatialtree/internal/tree"
	"spatialtree/internal/treefix"
)

// engineSnap captures a DynEngine's state as a DynSnapshot (the
// conversion internal/server performs in production).
func engineSnap(de *engine.DynEngine) DynSnapshot {
	st := de.State()
	return DynSnapshot{
		Parents: st.Parents, Curve: st.Curve, Side: st.Side, Ranks: st.Ranks,
		Epsilon: st.Epsilon, Epoch: st.Epoch, Drift: st.Drift,
		Inserts: st.Inserts, Deletes: st.Deletes, Rebuilds: st.Rebuilds,
		ParkEnergy: st.ParkEnergy, MigrateEnergy: st.MigrateEnergy,
	}
}

func snapState(snap DynSnapshot) engine.DynState {
	return engine.DynState{
		Parents: snap.Parents, Ranks: snap.Ranks, Side: snap.Side, Curve: snap.Curve,
		Epsilon: snap.Epsilon, Epoch: snap.Epoch, Drift: snap.Drift,
		Inserts: snap.Inserts, Deletes: snap.Deletes, Rebuilds: snap.Rebuilds,
		ParkEnergy: snap.ParkEnergy, MigrateEnergy: snap.MigrateEnergy,
	}
}

func toRecord(rec engine.MutationRecord) Record {
	r := Record{Epoch: rec.Epoch, Arg: rec.Arg, Result: rec.Result}
	if rec.Op == engine.MutInsert {
		r.Type = RecInsert
	} else {
		r.Type = RecDelete
	}
	return r
}

// randomMutation applies one random workload step: mostly inserts under
// a random vertex, sometimes the deletion of a random non-root leaf.
func randomMutation(t *testing.T, de *engine.DynEngine, r *rng.RNG) {
	t.Helper()
	n := de.N()
	if r.Intn(3) == 0 && n > 2 {
		// Collect the current deletable leaves and remove one.
		var leaves []int
		for v := 1; v < n; v++ {
			if de.IsLeaf(v) {
				leaves = append(leaves, v)
			}
		}
		if len(leaves) > 0 {
			if _, err := de.DeleteLeaf(leaves[r.Intn(len(leaves))]); err != nil {
				t.Fatal(err)
			}
			return
		}
	}
	if _, err := de.InsertLeaf(r.Intn(n)); err != nil {
		t.Fatal(err)
	}
}

// replay re-applies one record to a recovering engine, verifying the
// deterministic outcome against what the log recorded.
func replay(t *testing.T, de *engine.DynEngine, rec Record) {
	t.Helper()
	var got int
	var err error
	switch rec.Type {
	case RecInsert:
		got, err = de.InsertLeaf(rec.Arg)
	case RecDelete:
		got, err = de.DeleteLeaf(rec.Arg)
	default:
		t.Fatalf("unexpected record %+v", rec)
	}
	if err != nil {
		t.Fatalf("replaying %+v: %v", rec, err)
	}
	if got != rec.Result || de.Epoch() != rec.Epoch {
		t.Fatalf("replay diverged: %+v produced result %d at epoch %d", rec, got, de.Epoch())
	}
}

// TestCrashRecoveryProperty is the durability pin: a random
// mutate/query workload runs against a journaled dyn shard, the store
// is killed by truncating the WAL at a random byte (record boundaries
// and mid-record tears alike), and recovery must (a) never fail, (b)
// recover exactly a prefix of the journaled record stream, and (c)
// produce a shard whose tree and query answers match a sequential
// oracle replay of that surviving prefix.
func TestCrashRecoveryProperty(t *testing.T) {
	const (
		seeds     = 12
		mutations = 60
	)
	for seed := uint64(0); seed < seeds; seed++ {
		r := rng.New(seed + 1000)
		dir := t.TempDir()
		// Tiny segments force rotations mid-workload; every other seed
		// also compacts midway, so cuts land before, inside and after
		// snapshot boundaries.
		store := testStore(t, Options{Dir: dir, SegmentBytes: 200, CompactAfter: 1 << 30})

		base := tree.RandomAttachment(24+int(seed), rng.New(seed))
		de, err := engine.NewDyn(base, engine.DynOptions{Epsilon: 0.25})
		if err != nil {
			t.Fatal(err)
		}
		log, err := store.CreateShardLog("d1", engineSnap(de))
		if err != nil {
			t.Fatal(err)
		}
		var journaled []Record
		de.SetJournal(func(rec engine.MutationRecord) error {
			pr := toRecord(rec)
			if err := log.Append(pr); err != nil {
				return err
			}
			journaled = append(journaled, pr)
			return nil
		})

		for m := 0; m < mutations; m++ {
			randomMutation(t, de, r)
			if m == mutations/2 && seed%2 == 0 {
				if err := log.Compact(engineSnap(de)); err != nil {
					t.Fatal(err)
				}
			}
			// Interleave queries so mutations contend with batches the
			// way they do in production.
			if m%16 == 0 {
				vals := make([]int64, de.N())
				for i := range vals {
					vals[i] = int64(i)
				}
				if res := de.SubmitTreefix(vals, treefix.Add).Wait(); res.Err != nil {
					t.Fatal(res.Err)
				}
			}
		}
		if err := store.Close(); err != nil {
			t.Fatal(err)
		}

		// Crash: truncate the newest WAL segment at a random byte.
		segs, err := listSegments(filepath.Join(dir, "dyn", "d1"))
		if err != nil || len(segs) == 0 {
			t.Fatalf("segments: %v %v", segs, err)
		}
		seg := segPath(filepath.Join(dir, "dyn", "d1"), segs[len(segs)-1])
		info, err := os.Stat(seg)
		if err != nil {
			t.Fatal(err)
		}
		cut := int64(r.Intn(int(info.Size()) + 1))
		if err := os.Truncate(seg, cut); err != nil {
			t.Fatal(err)
		}

		// Recover.
		store2 := testStore(t, Options{Dir: dir})
		_, snap, recs, err := store2.OpenShardLog("d1")
		if err != nil {
			t.Fatalf("seed %d cut %d: recovery failed: %v", seed, cut, err)
		}

		// (b) The recovered records are exactly a prefix of the
		// journaled post-snapshot stream — and the whole stream when the
		// cut spared the file.
		var post []Record
		for _, rec := range journaled {
			if rec.Epoch > snap.Epoch {
				post = append(post, rec)
			}
		}
		if len(recs) > len(post) || !reflect.DeepEqual(recs, post[:len(recs)]) {
			t.Fatalf("seed %d cut %d: recovered records are not a journal prefix", seed, cut)
		}
		if cut == info.Size() && !reflect.DeepEqual(recs, post) {
			t.Fatalf("seed %d: clean shutdown lost records: %d of %d", seed, len(recs), len(post))
		}

		// (c) Engine recovery vs sequential oracle replay of the same
		// surviving prefix.
		de2, err := engine.RestoreDyn(snapState(snap), engine.Options{})
		if err != nil {
			t.Fatalf("seed %d cut %d: %v", seed, cut, err)
		}
		curve, err := sfc.ByName(snap.Curve)
		if err != nil {
			t.Fatal(err)
		}
		oracle, err := dynlayout.Restore(snap.Parents, snap.Ranks, snap.Side, curve, snap.Epsilon, snap.Drift)
		if err != nil {
			t.Fatalf("seed %d cut %d: oracle restore: %v", seed, cut, err)
		}
		for _, rec := range recs {
			replay(t, de2, rec)
			switch rec.Type {
			case RecInsert:
				if _, err := oracle.InsertLeaf(rec.Arg); err != nil {
					t.Fatal(err)
				}
			case RecDelete:
				if _, err := oracle.DeleteLeaf(rec.Arg); err != nil {
					t.Fatal(err)
				}
			}
		}
		ot, err := oracle.Tree()
		if err != nil {
			t.Fatal(err)
		}
		rt, err := de2.Tree()
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(rt.Parents(), ot.Parents()) {
			t.Fatalf("seed %d cut %d: recovered tree diverged from oracle", seed, cut)
		}

		// Query answers: treefix sums against the sequential reference,
		// LCA against the binary-lifting oracle.
		vals := make([]int64, ot.N())
		for i := range vals {
			vals[i] = int64(3*i + 1)
		}
		res := de2.SubmitTreefix(vals, treefix.Add).Wait()
		if res.Err != nil {
			t.Fatal(res.Err)
		}
		if want := treefix.SequentialBottomUp(ot, vals, treefix.Add); !reflect.DeepEqual(res.Sums, want) {
			t.Fatalf("seed %d cut %d: treefix sums diverged from oracle", seed, cut)
		}
		qs := make([]lca.Query, 8)
		for i := range qs {
			qs[i] = lca.Query{U: r.Intn(ot.N()), V: r.Intn(ot.N())}
		}
		lres := de2.SubmitLCA(qs).Wait()
		if lres.Err != nil {
			t.Fatal(lres.Err)
		}
		lo := lca.NewOracle(ot)
		for i, q := range qs {
			if want := lo.LCA(q.U, q.V); lres.Answers[i] != want {
				t.Fatalf("seed %d cut %d: LCA(%d,%d) = %d, oracle %d", seed, cut, q.U, q.V, lres.Answers[i], want)
			}
		}
	}
}
