package persist

import (
	"encoding/binary"
	"hash/crc32"
)

// WAL record frame layout (little-endian):
//
//	offset 0: payload length (uint32)
//	offset 4: CRC-32C of the payload (uint32)
//	offset 8: payload
//
// payload:
//
//	byte    record type (1 = insert, 2 = delete, 3 = fence)
//	uvarint epoch
//	varint  arg    (insert: parent; delete: leaf; fence: 0)
//	varint  result (insert: new vertex id; delete: moved id; fence: 0)
//
// Records are written with a single Write call each, so a crash can
// only ever produce a torn tail: a final frame whose length prefix,
// payload, or CRC is incomplete. Readers treat the first invalid frame
// as the end of the log and report everything before it — the
// "surviving prefix" the crash-recovery property test pins down.
const (
	recordHeaderLen  = 8
	maxRecordPayload = 64 // generous bound; real payloads are < 32 bytes
)

// RecordType discriminates WAL records.
type RecordType byte

// WAL record types. Insert and Delete mirror the two DynEngine
// mutations; Fence marks a segment boundary and carries the epoch the
// log had reached when the segment was created, letting replay verify
// continuity across rotation and compaction.
const (
	RecInsert RecordType = 1
	RecDelete RecordType = 2
	RecFence  RecordType = 3
)

// Record is one WAL entry. For mutations, Epoch is the shard epoch
// after applying the record — epochs advance by exactly one per applied
// mutation, which is what lets replay detect gaps.
type Record struct {
	Type   RecordType
	Epoch  uint64
	Arg    int
	Result int
}

// appendRecord appends the framed encoding of r to buf.
func appendRecord(buf []byte, r Record) []byte {
	var p []byte
	p = append(p, byte(r.Type))
	p = binary.AppendUvarint(p, r.Epoch)
	p = binary.AppendVarint(p, int64(r.Arg))
	p = binary.AppendVarint(p, int64(r.Result))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(p)))
	buf = binary.LittleEndian.AppendUint32(buf, crc32.Checksum(p, castagnoli))
	return append(buf, p...)
}

// scanRecords decodes consecutive record frames from data. It stops at
// the first frame that is truncated or fails its CRC and returns the
// records before it, each record's starting byte offset, and the offset
// where the valid prefix ends — the offset a recovering writer
// truncates to before appending. A scan that consumes all of data
// returns valid == len(data).
func scanRecords(data []byte) (recs []Record, starts []int, valid int) {
	off := 0
	for {
		if len(data)-off < recordHeaderLen {
			return recs, starts, off
		}
		plen := int(binary.LittleEndian.Uint32(data[off:]))
		sum := binary.LittleEndian.Uint32(data[off+4:])
		if plen == 0 || plen > maxRecordPayload || plen > len(data)-off-recordHeaderLen {
			return recs, starts, off
		}
		payload := data[off+recordHeaderLen : off+recordHeaderLen+plen]
		if crc32.Checksum(payload, castagnoli) != sum {
			return recs, starts, off
		}
		r, ok := decodeRecordPayload(payload)
		if !ok {
			return recs, starts, off
		}
		recs = append(recs, r)
		starts = append(starts, off)
		off += recordHeaderLen + plen
	}
}

func decodeRecordPayload(p []byte) (Record, bool) {
	if len(p) < 1 {
		return Record{}, false
	}
	r := Record{Type: RecordType(p[0])}
	if r.Type != RecInsert && r.Type != RecDelete && r.Type != RecFence {
		return Record{}, false
	}
	p = p[1:]
	epoch, n := binary.Uvarint(p)
	if n <= 0 {
		return Record{}, false
	}
	p = p[n:]
	arg, n := binary.Varint(p)
	if n <= 0 {
		return Record{}, false
	}
	p = p[n:]
	res, n := binary.Varint(p)
	if n <= 0 || len(p) != n {
		return Record{}, false
	}
	r.Epoch, r.Arg, r.Result = epoch, int(arg), int(res)
	return r, true
}
