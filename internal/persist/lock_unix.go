//go:build unix

package persist

import (
	"fmt"
	"os"
	"syscall"
)

// lockDir takes an exclusive, non-blocking flock on <dir>/LOCK and
// returns the held file. Two daemons pointed at one data directory
// would otherwise both recover, truncate and append the same WAL
// segments — interleaving records from two engines and guaranteeing an
// epoch gap (and therefore data loss) at the next recovery. flock is
// released automatically by the kernel when the process dies, so a
// crashed daemon never blocks its own restart the way a stale lock
// file would.
func lockDir(dir string) (*os.File, error) {
	f, err := os.OpenFile(dir+"/LOCK", os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("persist: %w", err)
	}
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		f.Close()
		return nil, fmt.Errorf("persist: data directory %s is locked by another process", dir)
	}
	return f, nil
}

func unlockDir(f *os.File) {
	if f != nil {
		_ = syscall.Flock(int(f.Fd()), syscall.LOCK_UN)
		_ = f.Close()
	}
}
