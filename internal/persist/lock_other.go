//go:build !unix

package persist

import "os"

// Non-unix platforms have no flock; the store runs unguarded there.
// Single-writer discipline is the operator's responsibility.
func lockDir(dir string) (*os.File, error) { return nil, nil }

func unlockDir(f *os.File) {}
