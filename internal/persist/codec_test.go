package persist

import (
	"errors"
	"reflect"
	"testing"
)

func samplePlacement() PlacementSnapshot {
	return PlacementSnapshot{
		Parents: []int{-1, 0, 0, 1, 1, 2, 2, 3},
		Curve:   "hilbert",
		Order:   "light-first",
		Side:    4,
		Ranks:   []int{0, 1, 4, 2, 3, 5, 6, 7},
	}
}

// sampleDyn deliberately uses an epsilon above 1 with a drift beyond
// the tree size — a state only large-epsilon shards reach, and exactly
// the one an over-tight decoder bound once rejected (which would have
// poisoned the data dir at the next boot).
func sampleDyn() DynSnapshot {
	return DynSnapshot{
		Parents:       []int{-1, 0, 0, 1},
		Curve:         "hilbert",
		Side:          4,
		Ranks:         []int{0, 2, 8, 4},
		Epsilon:       2.5,
		Epoch:         17,
		Drift:         9,
		Inserts:       11,
		Deletes:       6,
		Rebuilds:      2,
		ParkEnergy:    123,
		MigrateEnergy: -0 + 456,
	}
}

func TestPlacementRoundTrip(t *testing.T) {
	want := samplePlacement()
	got, err := DecodePlacement(EncodePlacement(want))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, want)
	}
}

func TestDynRoundTrip(t *testing.T) {
	want := sampleDyn()
	got, err := DecodeDyn(EncodeDyn(want))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, want)
	}
}

func TestDecodeKindMismatch(t *testing.T) {
	if _, err := DecodeDyn(EncodePlacement(samplePlacement())); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("DecodeDyn(placement frame) = %v, want ErrCorrupt", err)
	}
	if _, err := DecodePlacement(EncodeDyn(sampleDyn())); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("DecodePlacement(dyn frame) = %v, want ErrCorrupt", err)
	}
}

func TestDecodeCorruptions(t *testing.T) {
	base := EncodePlacement(samplePlacement())
	cases := map[string]func([]byte) []byte{
		"empty":          func(b []byte) []byte { return nil },
		"short header":   func(b []byte) []byte { return b[:10] },
		"bad magic":      func(b []byte) []byte { b[0] ^= 0xff; return b },
		"truncated":      func(b []byte) []byte { return b[:len(b)-3] },
		"extended":       func(b []byte) []byte { return append(b, 0) },
		"flipped crc":    func(b []byte) []byte { b[10] ^= 1; return b },
		"flipped body":   func(b []byte) []byte { b[len(b)-1] ^= 1; return b },
		"length too big": func(b []byte) []byte { b[6] ^= 0x40; return b },
	}
	for name, mutate := range cases {
		in := mutate(append([]byte(nil), base...))
		if _, err := Decode(in); !errors.Is(err, ErrCorrupt) {
			t.Errorf("%s: Decode = %v, want ErrCorrupt", name, err)
		}
	}
}

func TestDecodeVersionSkew(t *testing.T) {
	b := EncodePlacement(samplePlacement())
	b[4] = 99
	if _, err := Decode(b); !errors.Is(err, ErrVersion) {
		t.Fatalf("Decode(version 99) = %v, want ErrVersion", err)
	}
}

func TestDecodeRejectsHostileFields(t *testing.T) {
	// A frame whose payload claims far more vertices than it carries
	// bytes must fail fast, before allocating anything proportional to
	// the claim.
	var e encoder
	e.uvarint(1 << 40)
	hostile := frame(kindPlacement, e.buf)
	if _, err := Decode(hostile); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("huge count: %v, want ErrCorrupt", err)
	}

	// A side far out of proportion to the tree is rejected, so a tiny
	// frame cannot demand an O(side²) grid from its consumer.
	s := samplePlacement()
	s.Side = 1 << 19
	if _, err := Decode(EncodePlacement(s)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("oversized side: %v, want ErrCorrupt", err)
	}

	d := sampleDyn()
	d.Epsilon = -1
	if _, err := Decode(EncodeDyn(d)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("negative epsilon: %v, want ErrCorrupt", err)
	}

	// Drift beyond the rebuild threshold is unreachable: the layout
	// rebuilds (and resets drift) as soon as drift exceeds epsilon·n.
	d = sampleDyn()
	d.Epsilon = 0.2
	d.Drift = 3 // threshold for n=4 is 0.2·4+1
	if _, err := Decode(EncodeDyn(d)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("impossible drift: %v, want ErrCorrupt", err)
	}
}

func TestRecordRoundTrip(t *testing.T) {
	recs := []Record{
		{Type: RecFence, Epoch: 0},
		{Type: RecInsert, Epoch: 1, Arg: 0, Result: 4},
		{Type: RecDelete, Epoch: 2, Arg: 4, Result: 7},
		{Type: RecInsert, Epoch: 3, Arg: 2, Result: 8},
	}
	var buf []byte
	for _, r := range recs {
		buf = appendRecord(buf, r)
	}
	got, starts, valid := scanRecords(buf)
	if valid != len(buf) {
		t.Fatalf("valid = %d, want %d", valid, len(buf))
	}
	if !reflect.DeepEqual(got, recs) {
		t.Fatalf("records mismatch:\n got %+v\nwant %+v", got, recs)
	}
	if starts[0] != 0 || len(starts) != len(recs) {
		t.Fatalf("starts = %v", starts)
	}

	// Every truncation point recovers exactly the complete-record
	// prefix before it.
	ends := append(append([]int(nil), starts[1:]...), len(buf))
	for cut := 0; cut <= len(buf); cut++ {
		got, _, valid := scanRecords(buf[:cut])
		want := 0
		for want < len(ends) && ends[want] <= cut {
			want++
		}
		if len(got) != want {
			t.Fatalf("cut %d: recovered %d records, want %d", cut, len(got), want)
		}
		if valid > cut {
			t.Fatalf("cut %d: valid offset %d beyond input", cut, valid)
		}
	}
}

func TestScanRecordsStopsAtCorruption(t *testing.T) {
	var buf []byte
	buf = appendRecord(buf, Record{Type: RecInsert, Epoch: 1, Arg: 0, Result: 1})
	mark := len(buf)
	buf = appendRecord(buf, Record{Type: RecInsert, Epoch: 2, Arg: 1, Result: 2})
	buf[mark+recordHeaderLen] ^= 0xff // corrupt the second record's payload
	got, _, valid := scanRecords(buf)
	if len(got) != 1 || valid != mark {
		t.Fatalf("got %d records, valid %d; want 1 record, valid %d", len(got), valid, mark)
	}
}
