package persist

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

func testStore(t *testing.T, opts Options) *Store {
	t.Helper()
	if opts.Dir == "" {
		opts.Dir = t.TempDir()
	}
	s, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func TestSaveLoadTrees(t *testing.T) {
	s := testStore(t, Options{})
	a := samplePlacement()
	b := samplePlacement()
	b.Parents = []int{-1, 0, 1}
	b.Ranks = []int{0, 1, 2}
	b.Side = 2
	if err := s.SaveTree("t1", a); err != nil {
		t.Fatal(err)
	}
	if err := s.SaveTree("t2", b); err != nil {
		t.Fatal(err)
	}
	if err := s.SaveTree("t1", a); err != nil { // overwrite is idempotent
		t.Fatal(err)
	}
	saved, err := s.LoadTrees()
	if err != nil {
		t.Fatal(err)
	}
	if len(saved) != 2 || saved[0].ID != "t1" || saved[1].ID != "t2" {
		t.Fatalf("LoadTrees = %+v", saved)
	}
	if !reflect.DeepEqual(saved[0].Snap, a) || !reflect.DeepEqual(saved[1].Snap, b) {
		t.Fatalf("snapshot contents drifted")
	}
	if err := s.SaveTree("../evil", a); err == nil {
		t.Fatal("SaveTree accepted a path-traversal id")
	}
}

// mutationRecords fabricates a consecutive-epoch run of insert records
// starting after epoch from.
func mutationRecords(from uint64, n int) []Record {
	recs := make([]Record, n)
	for i := range recs {
		recs[i] = Record{Type: RecInsert, Epoch: from + 1 + uint64(i), Arg: i, Result: i + 1}
	}
	return recs
}

func TestShardLogAppendReopen(t *testing.T) {
	dir := t.TempDir()
	s := testStore(t, Options{Dir: dir})
	snap := sampleDyn()
	snap.Epoch = 0
	log, err := s.CreateShardLog("d1", snap)
	if err != nil {
		t.Fatal(err)
	}
	recs := mutationRecords(0, 10)
	for _, r := range recs {
		if err := log.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	// Out-of-order epochs are refused.
	if err := log.Append(Record{Type: RecInsert, Epoch: 99}); err == nil {
		t.Fatal("Append accepted an epoch gap")
	}
	if got := log.RecordsSinceSnapshot(); got != 10 {
		t.Fatalf("RecordsSinceSnapshot = %d, want 10", got)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2 := testStore(t, Options{Dir: dir})
	ids, err := s2.ShardIDs()
	if err != nil || len(ids) != 1 || ids[0] != "d1" {
		t.Fatalf("ShardIDs = %v, %v", ids, err)
	}
	log2, snap2, got, err := s2.OpenShardLog("d1")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(snap2, snap) {
		t.Fatalf("snapshot drifted: %+v", snap2)
	}
	if !reflect.DeepEqual(got, recs) {
		t.Fatalf("recovered records mismatch:\n got %+v\nwant %+v", got, recs)
	}
	// The reopened log appends where the old one left off.
	if err := log2.Append(Record{Type: RecInsert, Epoch: 11, Arg: 7, Result: 12}); err != nil {
		t.Fatal(err)
	}
}

func TestShardLogRotationAndCompaction(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments force rotation every few records.
	s := testStore(t, Options{Dir: dir, SegmentBytes: 64, CompactAfter: 1 << 30})
	snap := sampleDyn()
	snap.Epoch = 0
	log, err := s.CreateShardLog("d1", snap)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range mutationRecords(0, 40) {
		if err := log.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	segs, err := listSegments(filepath.Join(dir, "dyn", "d1"))
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 3 {
		t.Fatalf("expected rotation to produce several segments, got %v", segs)
	}

	// Compact at epoch 40: all closed segments are covered and deleted,
	// and recovery needs no records.
	after := snap
	after.Epoch = 40
	if err := log.Compact(after); err != nil {
		t.Fatal(err)
	}
	segs2, _ := listSegments(filepath.Join(dir, "dyn", "d1"))
	if len(segs2) != 1 {
		t.Fatalf("compaction left segments %v", segs2)
	}
	if got := log.RecordsSinceSnapshot(); got != 0 {
		t.Fatalf("RecordsSinceSnapshot after compact = %d", got)
	}

	// More records after compaction, then recover: only the new ones
	// replay, on top of the epoch-40 snapshot.
	for _, r := range mutationRecords(40, 5) {
		if err := log.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()
	s2 := testStore(t, Options{Dir: dir})
	_, snap2, recs, err := s2.OpenShardLog("d1")
	if err != nil {
		t.Fatal(err)
	}
	if snap2.Epoch != 40 {
		t.Fatalf("recovered snapshot epoch %d, want 40", snap2.Epoch)
	}
	if len(recs) != 5 || recs[0].Epoch != 41 || recs[4].Epoch != 45 {
		t.Fatalf("recovered records %+v", recs)
	}
}

// TestCompactKeepsRacingRecords pins the compaction/mutation race the
// server can produce: a record appended between the state capture and
// the Compact call is newer than the snapshot and must survive it.
func TestCompactKeepsRacingRecords(t *testing.T) {
	dir := t.TempDir()
	s := testStore(t, Options{Dir: dir, SegmentBytes: 1 << 20})
	snap := sampleDyn()
	snap.Epoch = 0
	log, err := s.CreateShardLog("d1", snap)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range mutationRecords(0, 3) {
		if err := log.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	// State captured at epoch 3... then a mutation lands at epoch 4
	// before Compact runs.
	captured := snap
	captured.Epoch = 3
	if err := log.Append(Record{Type: RecInsert, Epoch: 4, Arg: 0, Result: 5}); err != nil {
		t.Fatal(err)
	}
	if err := log.Compact(captured); err != nil {
		t.Fatal(err)
	}
	s.Close()

	s2 := testStore(t, Options{Dir: dir})
	_, snap2, recs, err := s2.OpenShardLog("d1")
	if err != nil {
		t.Fatal(err)
	}
	if snap2.Epoch != 3 {
		t.Fatalf("snapshot epoch %d, want 3", snap2.Epoch)
	}
	if len(recs) != 1 || recs[0].Epoch != 4 {
		t.Fatalf("racing record lost: recovered %+v", recs)
	}
}

func TestOpenShardLogTruncatesTornTail(t *testing.T) {
	dir := t.TempDir()
	s := testStore(t, Options{Dir: dir})
	snap := sampleDyn()
	snap.Epoch = 0
	log, err := s.CreateShardLog("d1", snap)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range mutationRecords(0, 5) {
		if err := log.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()

	// Tear the last record mid-frame.
	seg := segPath(filepath.Join(dir, "dyn", "d1"), 1)
	info, err := os.Stat(seg)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(seg, info.Size()-3); err != nil {
		t.Fatal(err)
	}

	s2 := testStore(t, Options{Dir: dir})
	log2, _, recs, err := s2.OpenShardLog("d1")
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 4 {
		t.Fatalf("recovered %d records, want 4 (torn fifth dropped)", len(recs))
	}
	// Appending continues cleanly at the surviving epoch, and the file
	// was truncated to the valid boundary (no garbage between records).
	if err := log2.Append(Record{Type: RecInsert, Epoch: 5, Arg: 1, Result: 6}); err != nil {
		t.Fatal(err)
	}
	s2.Close()
	s3 := testStore(t, Options{Dir: dir})
	_, _, recs3, err := s3.OpenShardLog("d1")
	if err != nil {
		t.Fatal(err)
	}
	if len(recs3) != 5 || recs3[4].Epoch != 5 {
		t.Fatalf("post-repair log inconsistent: %+v", recs3)
	}
}

func TestCreateShardLogRefusesExisting(t *testing.T) {
	s := testStore(t, Options{})
	if _, err := s.CreateShardLog("d1", sampleDyn()); err != nil {
		t.Fatal(err)
	}
	if _, err := s.CreateShardLog("d1", sampleDyn()); err == nil {
		t.Fatal("CreateShardLog accepted a duplicate id")
	}
}

// TestCompactResyncsAfterLostAppend pins the journal repair path: after
// a failed append the engine's epoch runs ahead of the log, the gap can
// never be filled, and a Compact at the engine's current state must
// bring the log back into service instead of wedging it (or
// underflowing the records-since-snapshot accounting).
func TestCompactResyncsAfterLostAppend(t *testing.T) {
	dir := t.TempDir()
	s := testStore(t, Options{Dir: dir})
	snap := sampleDyn()
	snap.Epoch = 0
	log, err := s.CreateShardLog("d1", snap)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range mutationRecords(0, 3) {
		if err := log.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	// Epoch 4's record was lost (its append failed); the engine moved on
	// to epoch 5. The strict continuity check must refuse epoch 5...
	if err := log.Append(Record{Type: RecInsert, Epoch: 5}); err == nil {
		t.Fatal("Append accepted a record across a gap")
	}
	// ...and a snapshot at the engine's current epoch 5 supersedes the
	// gap entirely.
	repaired := snap
	repaired.Epoch = 5
	if err := log.Compact(repaired); err != nil {
		t.Fatal(err)
	}
	if got := log.RecordsSinceSnapshot(); got != 0 {
		t.Fatalf("RecordsSinceSnapshot after repair = %d, want 0", got)
	}
	if got := log.LastEpoch(); got != 5 {
		t.Fatalf("LastEpoch after repair = %d, want 5", got)
	}
	if err := log.Append(Record{Type: RecInsert, Epoch: 6, Arg: 1, Result: 2}); err != nil {
		t.Fatalf("append after repair: %v", err)
	}
	s.Close()

	s2 := testStore(t, Options{Dir: dir})
	_, snap2, recs, err := s2.OpenShardLog("d1")
	if err != nil {
		t.Fatal(err)
	}
	if snap2.Epoch != 5 || len(recs) != 1 || recs[0].Epoch != 6 {
		t.Fatalf("recovered snap epoch %d, records %+v", snap2.Epoch, recs)
	}
}

// TestRecoveryRefusesCorruptNewestSnapshot: a shard whose newest
// snapshot fails its CRC must fail recovery loudly. Falling back to an
// older snapshot would hit the already-compacted WAL's epoch gap and
// destroy acknowledged records — silent rollback.
func TestRecoveryRefusesCorruptNewestSnapshot(t *testing.T) {
	dir := t.TempDir()
	s := testStore(t, Options{Dir: dir})
	snap := sampleDyn()
	snap.Epoch = 0
	log, err := s.CreateShardLog("d1", snap)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range mutationRecords(0, 4) {
		if err := log.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()
	snapFile := filepath.Join(dir, "dyn", "d1", "snap-00000000000000000000.snap")
	raw, err := os.ReadFile(snapFile)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 0xff
	if err := os.WriteFile(snapFile, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	s2 := testStore(t, Options{Dir: dir})
	if _, _, _, err := s2.OpenShardLog("d1"); err == nil {
		t.Fatal("recovery accepted a corrupt snapshot")
	}
}

// TestStoreLockExcludesSecondProcess: a second Open of the same data
// dir must fail while the first store holds it, and succeed after
// Close — the guard against two daemons interleaving one WAL.
func TestStoreLockExcludesSecondProcess(t *testing.T) {
	dir := t.TempDir()
	s1, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Open(Options{Dir: dir}); err == nil {
		s1.Close()
		t.Fatal("second Open of a held data dir succeeded")
	}
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}
	s3, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatalf("reopen after Close: %v", err)
	}
	s3.Close()
}
