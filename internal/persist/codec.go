// Package persist is the durability subsystem behind cmd/spatialtreed:
// a versioned binary snapshot codec for tree placements and dynamic-
// layout state, an append-only mutation WAL for mutable shards, and a
// directory Store tying the two together with atomic snapshot rotation
// and log compaction.
//
// The design separates the two things a serving process must not lose —
// the parked placement (expensive to recompute: the O(n log n)
// light-first pipeline) and the mutation stream since it was parked —
// the way dual-tree systems separate immutable reference structure from
// per-query state. A snapshot is one self-checking frame: magic,
// version, kind, a length prefix and a CRC-32C over the payload, so a
// decoder can reject truncation, bit rot and format drift with a typed
// error instead of a panic. The WAL is a sequence of the same kind of
// frame, one per applied mutation, with epochs that advance by exactly
// one per record; a torn tail (the only corruption a crash can produce
// under write-then-fsync) is detected by the CRC and cut off, so
// recovery always yields the longest surviving prefix.
//
// Decoders never trust a length field further than the bytes actually
// present: every count is validated against the remaining input before
// any allocation, so arbitrary (fuzzed or corrupt) bytes can neither
// panic nor over-allocate.
package persist

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
)

// Snapshot frame layout (all integers little-endian):
//
//	offset 0: magic "STSN" (4 bytes)
//	offset 4: format version (1 byte; currently 1)
//	offset 5: kind (1 byte; 1 = placement, 2 = dyn shard)
//	offset 6: payload length (uint32)
//	offset 10: CRC-32C (Castagnoli) of the payload (uint32)
//	offset 14: payload
const (
	snapshotVersion   = 1
	kindPlacement     = 1
	kindDyn           = 2
	headerLen         = 14
	maxNameLen        = 64 // curve / order name bound
	maxEpsilon        = 1e6
	maxSide           = 1 << 20 // absolute grid bound; also keeps side*side in uint64
	sideSlackFactor   = 128     // placement side*side must be <= 128*n + 64 (bounds consumer allocations to O(n))
	sideSlackConstant = 64
)

var snapshotMagic = [4]byte{'S', 'T', 'S', 'N'}

// castagnoli is the CRC-32C table shared by snapshots and WAL records.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrCorrupt reports a snapshot or WAL frame that failed structural
// validation: bad magic, a length prefix disagreeing with the bytes
// present, a CRC mismatch, or payload fields violating their invariants.
var ErrCorrupt = errors.New("persist: corrupt data")

// ErrVersion reports a frame written by an incompatible format version.
var ErrVersion = errors.New("persist: unsupported format version")

func corruptf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrCorrupt, fmt.Sprintf(format, args...))
}

// PlacementSnapshot is the durable form of a static placement: the tree
// (as its parent array), the curve and order names, and the per-vertex
// curve ranks on a side×side grid. Persisting the ranks is what makes a
// warm start cheap: recovery rebuilds the Placement in O(n) and seeds
// the layout cache instead of re-running the light-first pipeline.
type PlacementSnapshot struct {
	Parents []int
	Curve   string
	Order   string
	Side    int
	Ranks   []int
}

// DynSnapshot is the durable form of a mutable shard: the dynamic
// layout's full parked state (parents, sparse ranks, grid side, drift
// since the last rebuild), the shard's configuration (curve, epsilon),
// the serving epoch the snapshot captures, and the lifetime counters so
// restarts do not reset the maintenance-cost accounting.
type DynSnapshot struct {
	Parents       []int
	Curve         string
	Side          int
	Ranks         []int
	Epsilon       float64
	Epoch         uint64
	Drift         int
	Inserts       uint64
	Deletes       uint64
	Rebuilds      uint64
	ParkEnergy    int64
	MigrateEnergy int64
}

// EncodePlacement serializes s into one self-checking snapshot frame.
func EncodePlacement(s PlacementSnapshot) []byte {
	var e encoder
	e.uvarint(uint64(len(s.Parents)))
	for _, p := range s.Parents {
		e.varint(int64(p))
	}
	e.str(s.Curve)
	e.str(s.Order)
	e.uvarint(uint64(s.Side))
	for _, r := range s.Ranks {
		e.uvarint(uint64(r))
	}
	return frame(kindPlacement, e.buf)
}

// EncodeDyn serializes s into one self-checking snapshot frame.
func EncodeDyn(s DynSnapshot) []byte {
	var e encoder
	e.uvarint(uint64(len(s.Parents)))
	for _, p := range s.Parents {
		e.varint(int64(p))
	}
	e.str(s.Curve)
	e.uvarint(uint64(s.Side))
	for _, r := range s.Ranks {
		e.uvarint(uint64(r))
	}
	e.f64(s.Epsilon)
	e.uvarint(s.Epoch)
	e.uvarint(uint64(s.Drift))
	e.uvarint(s.Inserts)
	e.uvarint(s.Deletes)
	e.uvarint(s.Rebuilds)
	e.varint(s.ParkEnergy)
	e.varint(s.MigrateEnergy)
	return frame(kindDyn, e.buf)
}

// DecodePlacement decodes a placement snapshot frame. It returns
// ErrCorrupt (wrapped) on any structural violation and ErrVersion on a
// version it cannot read; it never panics on arbitrary input.
//
//spatialvet:errclass
func DecodePlacement(data []byte) (PlacementSnapshot, error) {
	v, err := Decode(data)
	if err != nil {
		return PlacementSnapshot{}, err
	}
	s, ok := v.(PlacementSnapshot)
	if !ok {
		return PlacementSnapshot{}, corruptf("frame holds a dyn snapshot, not a placement")
	}
	return s, nil
}

// DecodeDyn decodes a dyn-shard snapshot frame; error semantics as in
// DecodePlacement.
//
//spatialvet:errclass
func DecodeDyn(data []byte) (DynSnapshot, error) {
	v, err := Decode(data)
	if err != nil {
		return DynSnapshot{}, err
	}
	s, ok := v.(DynSnapshot)
	if !ok {
		return DynSnapshot{}, corruptf("frame holds a placement snapshot, not a dyn one")
	}
	return s, nil
}

// Decode decodes any snapshot frame, returning a PlacementSnapshot or a
// DynSnapshot. Arbitrary input bytes can neither panic nor allocate
// more than O(len(data)).
//
//spatialvet:errclass
func Decode(data []byte) (any, error) {
	kind, payload, err := openFrame(data)
	if err != nil {
		return nil, err
	}
	d := decoder{buf: payload}
	switch kind {
	case kindPlacement:
		s, err := decodePlacementPayload(&d)
		if err != nil {
			return nil, err
		}
		return s, nil
	case kindDyn:
		s, err := decodeDynPayload(&d)
		if err != nil {
			return nil, err
		}
		return s, nil
	default:
		return nil, corruptf("unknown snapshot kind %d", kind)
	}
}

func decodePlacementPayload(d *decoder) (PlacementSnapshot, error) {
	var s PlacementSnapshot
	n, err := d.count("vertex")
	if err != nil {
		return s, err
	}
	s.Parents = make([]int, n)
	for i := range s.Parents {
		p, err := d.varint()
		if err != nil {
			return s, err
		}
		if p < -1 || p >= int64(n) {
			return s, corruptf("vertex %d has parent %d outside [-1,%d)", i, p, n)
		}
		s.Parents[i] = int(p)
	}
	if s.Curve, err = d.str(); err != nil {
		return s, err
	}
	if s.Order, err = d.str(); err != nil {
		return s, err
	}
	if s.Side, err = d.side(n); err != nil {
		return s, err
	}
	if s.Ranks, err = d.ranks(n, s.Side); err != nil {
		return s, err
	}
	if err := d.drained(); err != nil {
		return s, err
	}
	return s, nil
}

func decodeDynPayload(d *decoder) (DynSnapshot, error) {
	var s DynSnapshot
	n, err := d.count("vertex")
	if err != nil {
		return s, err
	}
	s.Parents = make([]int, n)
	for i := range s.Parents {
		p, err := d.varint()
		if err != nil {
			return s, err
		}
		if p < -1 || p >= int64(n) {
			return s, corruptf("vertex %d has parent %d outside [-1,%d)", i, p, n)
		}
		s.Parents[i] = int(p)
	}
	if s.Curve, err = d.str(); err != nil {
		return s, err
	}
	// Unlike placements, a dyn grid is not derivable from n: large
	// epsilons let deletions shrink the tree far below the grid before
	// any rebuild, so only the absolute cap applies here. Decoding
	// itself still allocates O(n) regardless of side; the O(side²)
	// grids are built downstream, from CRC-validated local state only.
	side, err := d.uvarint()
	if err != nil {
		return s, err
	}
	if side > maxSide || side*side < uint64(n) {
		return s, corruptf("side %d is illegal for %d vertices", side, n)
	}
	s.Side = int(side)
	if s.Ranks, err = d.ranks(n, s.Side); err != nil {
		return s, err
	}
	if s.Epsilon, err = d.f64(); err != nil {
		return s, err
	}
	if !(s.Epsilon > 0) || s.Epsilon > maxEpsilon { // rejects NaN too
		return s, corruptf("epsilon %v outside (0,%v]", s.Epsilon, float64(maxEpsilon))
	}
	if s.Epoch, err = d.uvarint(); err != nil {
		return s, err
	}
	drift, err := d.uvarint()
	if err != nil {
		return s, err
	}
	// The layout rebuilds as soon as drift exceeds epsilon·n, so any
	// state a shard can actually persist satisfies this bound.
	if drift > uint64(maxEpsilon)*uint64(n)+1 || float64(drift) > s.Epsilon*float64(n)+1 {
		return s, corruptf("drift %d exceeds the epsilon %v rebuild threshold for %d vertices", drift, s.Epsilon, n)
	}
	s.Drift = int(drift)
	if s.Inserts, err = d.uvarint(); err != nil {
		return s, err
	}
	if s.Deletes, err = d.uvarint(); err != nil {
		return s, err
	}
	if s.Rebuilds, err = d.uvarint(); err != nil {
		return s, err
	}
	if s.ParkEnergy, err = d.varint(); err != nil {
		return s, err
	}
	if s.MigrateEnergy, err = d.varint(); err != nil {
		return s, err
	}
	if err := d.drained(); err != nil {
		return s, err
	}
	return s, nil
}

// frame wraps a payload in the snapshot header.
func frame(kind byte, payload []byte) []byte {
	out := make([]byte, headerLen+len(payload))
	copy(out, snapshotMagic[:])
	out[4] = snapshotVersion
	out[5] = kind
	binary.LittleEndian.PutUint32(out[6:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(out[10:], crc32.Checksum(payload, castagnoli))
	copy(out[headerLen:], payload)
	return out
}

// openFrame validates the header and CRC and returns the kind and
// payload slice (aliasing data).
func openFrame(data []byte) (kind byte, payload []byte, err error) {
	if len(data) < headerLen {
		return 0, nil, corruptf("truncated header: %d bytes", len(data))
	}
	if [4]byte(data[:4]) != snapshotMagic {
		return 0, nil, corruptf("bad magic %q", data[:4])
	}
	if data[4] != snapshotVersion {
		return 0, nil, fmt.Errorf("%w: version %d (supported: %d)", ErrVersion, data[4], snapshotVersion)
	}
	plen := binary.LittleEndian.Uint32(data[6:])
	if int64(plen) != int64(len(data)-headerLen) {
		return 0, nil, corruptf("payload length %d disagrees with %d bytes present", plen, len(data)-headerLen)
	}
	payload = data[headerLen:]
	if sum := crc32.Checksum(payload, castagnoli); sum != binary.LittleEndian.Uint32(data[10:]) {
		return 0, nil, corruptf("payload CRC mismatch")
	}
	return data[5], payload, nil
}

// encoder appends primitive values to a growing buffer.
type encoder struct{ buf []byte }

func (e *encoder) uvarint(v uint64) { e.buf = binary.AppendUvarint(e.buf, v) }
func (e *encoder) varint(v int64)   { e.buf = binary.AppendVarint(e.buf, v) }
func (e *encoder) f64(v float64) {
	e.buf = binary.LittleEndian.AppendUint64(e.buf, math.Float64bits(v))
}
func (e *encoder) str(s string) {
	e.uvarint(uint64(len(s)))
	e.buf = append(e.buf, s...)
}

// decoder consumes primitive values, validating every length against
// the bytes actually remaining before allocating anything.
type decoder struct{ buf []byte }

func (d *decoder) uvarint() (uint64, error) {
	v, n := binary.Uvarint(d.buf)
	if n <= 0 {
		return 0, corruptf("truncated or overlong uvarint")
	}
	d.buf = d.buf[n:]
	return v, nil
}

func (d *decoder) varint() (int64, error) {
	v, n := binary.Varint(d.buf)
	if n <= 0 {
		return 0, corruptf("truncated or overlong varint")
	}
	d.buf = d.buf[n:]
	return v, nil
}

func (d *decoder) f64() (float64, error) {
	if len(d.buf) < 8 {
		return 0, corruptf("truncated float64")
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(d.buf))
	d.buf = d.buf[8:]
	return v, nil
}

func (d *decoder) str() (string, error) {
	n, err := d.uvarint()
	if err != nil {
		return "", err
	}
	if n > maxNameLen {
		return "", corruptf("name length %d exceeds %d", n, maxNameLen)
	}
	if n > uint64(len(d.buf)) {
		return "", corruptf("name length %d exceeds %d remaining bytes", n, len(d.buf))
	}
	s := string(d.buf[:n])
	d.buf = d.buf[n:]
	return s, nil
}

// count reads a vertex count, bounded by the remaining payload (every
// encoded vertex costs at least one byte, so a count exceeding the
// bytes present is corrupt — and rejecting it here is what keeps
// allocations O(input)).
func (d *decoder) count(what string) (int, error) {
	n, err := d.uvarint()
	if err != nil {
		return 0, err
	}
	if n > uint64(len(d.buf)) {
		return 0, corruptf("%s count %d exceeds %d remaining bytes", what, n, len(d.buf))
	}
	return int(n), nil
}

// side reads a static placement's grid side and checks it against the
// vertex count: a placement's side is the curve's smallest legal side,
// so a side whose square exceeds sideSlackFactor·n is corrupt — and
// would otherwise let one frame demand an O(side²) allocation (e.g. in
// layout.FromRanks via the public LoadSnapshot) unrelated to its own
// size. Dyn snapshots use a looser rule; see decodeDynPayload.
func (d *decoder) side(n int) (int, error) {
	s, err := d.uvarint()
	if err != nil {
		return 0, err
	}
	if s > maxSide {
		return 0, corruptf("side %d is implausibly large", s)
	}
	if s*s < uint64(n) || s*s > sideSlackFactor*uint64(n)+sideSlackConstant {
		return 0, corruptf("side %d is illegal for %d vertices", s, n)
	}
	return int(s), nil
}

// ranks reads n curve ranks, each within the side×side grid.
func (d *decoder) ranks(n, side int) ([]int, error) {
	slots := uint64(side) * uint64(side)
	ranks := make([]int, n)
	for i := range ranks {
		r, err := d.uvarint()
		if err != nil {
			return nil, err
		}
		if r >= slots {
			return nil, corruptf("vertex %d at rank %d outside the %d×%d grid", i, r, side, side)
		}
		ranks[i] = int(r)
	}
	return ranks, nil
}

// drained asserts the payload was consumed exactly.
func (d *decoder) drained() error {
	if len(d.buf) != 0 {
		return corruptf("%d trailing payload bytes", len(d.buf))
	}
	return nil
}
