package persist

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Defaults used by Open when the corresponding Options field is zero.
const (
	// DefaultCompactAfter is the number of WAL records a dyn shard
	// accumulates past its snapshot before NeedsCompact reports true.
	DefaultCompactAfter = 4096
	// DefaultSegmentBytes is the segment size beyond which the WAL
	// rotates to a fresh file.
	DefaultSegmentBytes = 1 << 20
)

// Options configures a Store.
type Options struct {
	// Dir is the data directory. It is created if absent.
	Dir string
	// Fsync, when true, fsyncs the WAL after every appended record —
	// a crash then loses at most the record being written. When false,
	// appends reach the OS page cache only and a crash can lose the
	// un-flushed tail; recovery still yields a consistent prefix either
	// way, because records are CRC-framed. Snapshots are always fsynced
	// regardless of this knob: they are rare and load-bearing.
	Fsync bool
	// CompactAfter is the WAL length (records since the last snapshot)
	// beyond which a shard log reports NeedsCompact (0 means
	// DefaultCompactAfter).
	CompactAfter int
	// SegmentBytes is the WAL segment rotation threshold (0 means
	// DefaultSegmentBytes).
	SegmentBytes int64
}

// Store is a durable home for a server's shard table: registered trees
// as placement snapshots under trees/, and mutable shards as a
// snapshot plus an append-only WAL under dyn/<id>/. All methods are
// safe for concurrent use; per-shard ordering is the caller's (the
// engine journals under its own mutation lock).
type Store struct {
	opts Options
	lock *os.File // exclusive flock on Dir (nil on platforms without flock)

	mu   sync.Mutex
	logs map[string]*ShardLog
}

// Open creates or opens the store rooted at opts.Dir.
func Open(opts Options) (*Store, error) {
	if opts.Dir == "" {
		return nil, fmt.Errorf("persist: empty data directory")
	}
	if opts.CompactAfter <= 0 {
		opts.CompactAfter = DefaultCompactAfter
	}
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = DefaultSegmentBytes
	}
	for _, d := range []string{opts.Dir, filepath.Join(opts.Dir, "trees"), filepath.Join(opts.Dir, "dyn")} {
		if err := os.MkdirAll(d, 0o755); err != nil {
			return nil, fmt.Errorf("persist: %w", err)
		}
	}
	lock, err := lockDir(opts.Dir)
	if err != nil {
		return nil, err
	}
	return &Store{opts: opts, lock: lock, logs: make(map[string]*ShardLog)}, nil
}

// Dir returns the store's data directory.
func (s *Store) Dir() string { return s.opts.Dir }

// Close closes every open shard log, syncing their current segments.
func (s *Store) Close() error {
	s.mu.Lock()
	logs := make([]*ShardLog, 0, len(s.logs))
	for _, l := range s.logs {
		logs = append(logs, l)
	}
	s.logs = make(map[string]*ShardLog)
	s.mu.Unlock()
	var first error
	for _, l := range logs {
		if err := l.Close(); err != nil && first == nil {
			first = err
		}
	}
	unlockDir(s.lock)
	s.lock = nil
	return first
}

// SaveTree persists a registered tree's placement snapshot under id
// (atomic write; overwriting an existing id is idempotent).
func (s *Store) SaveTree(id string, snap PlacementSnapshot) error {
	if err := checkID(id); err != nil {
		return err
	}
	return writeFileAtomic(filepath.Join(s.opts.Dir, "trees", id+".snap"), EncodePlacement(snap))
}

// SavedTree is one recovered registered tree.
type SavedTree struct {
	ID   string
	Snap PlacementSnapshot
}

// LoadTrees decodes every registered-tree snapshot, sorted by id.
func (s *Store) LoadTrees() ([]SavedTree, error) {
	dir := filepath.Join(s.opts.Dir, "trees")
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("persist: %w", err)
	}
	var out []SavedTree
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".snap") {
			continue
		}
		raw, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			return nil, fmt.Errorf("persist: %w", err)
		}
		snap, err := DecodePlacement(raw)
		if err != nil {
			return nil, fmt.Errorf("persist: tree snapshot %s: %w", name, err)
		}
		out = append(out, SavedTree{ID: strings.TrimSuffix(name, ".snap"), Snap: snap})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out, nil
}

// ShardIDs lists the mutable shards present in the store, sorted.
func (s *Store) ShardIDs() ([]string, error) {
	entries, err := os.ReadDir(filepath.Join(s.opts.Dir, "dyn"))
	if err != nil {
		return nil, fmt.Errorf("persist: %w", err)
	}
	var ids []string
	for _, e := range entries {
		if e.IsDir() {
			ids = append(ids, e.Name())
		}
	}
	sort.Strings(ids)
	return ids, nil
}

// CreateShardLog initializes durability for a new mutable shard: its
// initial snapshot plus an empty WAL segment opened for appending.
func (s *Store) CreateShardLog(id string, snap DynSnapshot) (*ShardLog, error) {
	if err := checkID(id); err != nil {
		return nil, err
	}
	dir := filepath.Join(s.opts.Dir, "dyn", id)
	if _, err := os.Stat(dir); err == nil {
		return nil, fmt.Errorf("persist: shard %s already exists", id)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("persist: %w", err)
	}
	if err := writeFileAtomic(snapPath(dir, snap.Epoch), EncodeDyn(snap)); err != nil {
		// Leave nothing behind: a half-created shard directory would
		// otherwise resurrect as a routable ghost on the next recovery,
		// after the creator was told the shard does not exist.
		os.RemoveAll(dir)
		return nil, err
	}
	l := &ShardLog{
		dir:          dir,
		fsync:        s.opts.Fsync,
		segmentBytes: s.opts.SegmentBytes,
		compactAfter: s.opts.CompactAfter,
		snapEpoch:    snap.Epoch,
		lastEpoch:    snap.Epoch,
	}
	if err := l.openSegmentLocked(1); err != nil {
		os.RemoveAll(dir)
		return nil, err
	}
	s.track(id, l)
	return l, nil
}

// OpenShardLog recovers a mutable shard: it loads the newest readable
// snapshot, replays the WAL's surviving prefix (stopping at the first
// torn or inconsistent record, truncating the log there so appends
// resume on a clean boundary), and returns the snapshot together with
// the post-snapshot mutation records to re-apply, in order.
func (s *Store) OpenShardLog(id string) (*ShardLog, DynSnapshot, []Record, error) {
	dir := filepath.Join(s.opts.Dir, "dyn", id)
	snap, err := loadNewestSnapshot(dir)
	if err != nil {
		return nil, DynSnapshot{}, nil, err
	}
	l := &ShardLog{
		dir:          dir,
		fsync:        s.opts.Fsync,
		segmentBytes: s.opts.SegmentBytes,
		compactAfter: s.opts.CompactAfter,
		snapEpoch:    snap.Epoch,
		lastEpoch:    snap.Epoch,
	}
	recs, err := l.recoverSegments()
	if err != nil {
		return nil, DynSnapshot{}, nil, err
	}
	s.track(id, l)
	return l, snap, recs, nil
}

func (s *Store) track(id string, l *ShardLog) {
	s.mu.Lock()
	s.logs[id] = l
	s.mu.Unlock()
}

// DropShard removes a shard's durable state entirely, closing its open
// log first if the store is tracking one. The replication tier resets a
// diverged or superseded replica with it before re-creating the shard
// from a fresh snapshot; dropping an unknown id is a no-op.
func (s *Store) DropShard(id string) error {
	if err := checkID(id); err != nil {
		return err
	}
	s.mu.Lock()
	l := s.logs[id]
	delete(s.logs, id)
	s.mu.Unlock()
	if l != nil {
		_ = l.Close()
	}
	if err := os.RemoveAll(filepath.Join(s.opts.Dir, "dyn", id)); err != nil {
		return fmt.Errorf("persist: drop shard %s: %w", id, err)
	}
	return nil
}

// ShardLog is one mutable shard's durability state: the append-side of
// its WAL plus the bookkeeping that ties segments to snapshots. Safe
// for concurrent use, though mutation ordering is the caller's (the
// engine journals under its mutation lock, so records arrive in epoch
// order).
type ShardLog struct {
	mu           sync.Mutex
	dir          string
	fsync        bool
	segmentBytes int64
	compactAfter int

	f        *os.File
	seg      int
	segBytes int64

	lastEpoch uint64 // epoch of the newest appended (or recovered) record
	snapEpoch uint64 // epoch of the newest snapshot
	closed    []closedSegment
	scratch   []byte

	compactions uint64
}

// closedSegment remembers a rotated-out segment and the epoch of its
// last record, so compaction deletes exactly the segments a snapshot
// fully covers.
type closedSegment struct {
	seq  int
	last uint64
}

// Append journals one mutation record (RecInsert or RecDelete),
// rotating the segment when it outgrew the threshold and fsyncing per
// the store's policy. Records must arrive in epoch order, advancing by
// exactly one — the engine's mutation lock guarantees it.
func (l *ShardLog) Append(r Record) error {
	if r.Type != RecInsert && r.Type != RecDelete {
		return fmt.Errorf("persist: cannot append record type %d", r.Type)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return fmt.Errorf("persist: shard log is closed")
	}
	if r.Epoch != l.lastEpoch+1 {
		return fmt.Errorf("persist: record epoch %d does not follow %d", r.Epoch, l.lastEpoch)
	}
	if l.segBytes >= l.segmentBytes {
		if err := l.rotateLocked(); err != nil {
			return err
		}
	}
	if err := l.writeLocked(r); err != nil {
		return err
	}
	if l.fsync {
		if err := l.f.Sync(); err != nil {
			return fmt.Errorf("persist: %w", err)
		}
	}
	l.lastEpoch = r.Epoch
	return nil
}

// RecordsSinceSnapshot returns the WAL length past the newest snapshot.
// Epochs advance by one per record, so this is a subtraction, not a
// scan. (A snapshot can run ahead of the log after an append failure —
// see Compact — in which case there is nothing to replay and this is
// zero.)
func (l *ShardLog) RecordsSinceSnapshot() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.lastEpoch < l.snapEpoch {
		return 0
	}
	return l.lastEpoch - l.snapEpoch
}

// LastEpoch returns the epoch of the newest record the log holds (or
// the snapshot epoch when the snapshot is newer). A shard whose engine
// epoch is ahead of this has un-journaled mutations: its durability can
// only be restored by a Compact at the engine's current state.
func (l *ShardLog) LastEpoch() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.snapEpoch > l.lastEpoch {
		return l.snapEpoch
	}
	return l.lastEpoch
}

// NeedsCompact reports whether the WAL has outgrown the compaction
// threshold and the shard should be re-snapshotted via Compact.
func (l *ShardLog) NeedsCompact() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.lastEpoch >= l.snapEpoch && l.lastEpoch-l.snapEpoch >= uint64(l.compactAfter)
}

// Compactions returns how many times Compact succeeded.
func (l *ShardLog) Compactions() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.compactions
}

// Compact folds the WAL into a fresh snapshot: snap (the shard's state
// at snap.Epoch, captured by the caller) is written atomically, the
// current segment is rotated out, and every closed segment whose
// records the snapshot covers is deleted. Records newer than snap.Epoch
// — appended between the caller's state capture and this call — stay in
// place and replay on top of the snapshot, so Compact never needs to
// exclude the engine's mutation lock.
//
// Compact is also the log's repair path: after a failed Append the
// engine's epoch runs ahead of the log, the gap can never be filled
// (the WAL's replay contract is consecutive epochs), and Append
// rightly refuses everything that follows. A snapshot at the engine's
// current state supersedes the gap entirely, so a successful Compact
// advances the log to snap.Epoch and appends resume at snap.Epoch+1.
func (l *ShardLog) Compact(snap DynSnapshot) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return fmt.Errorf("persist: shard log is closed")
	}
	if snap.Epoch < l.snapEpoch {
		return fmt.Errorf("persist: compaction epoch %d behind snapshot epoch %d", snap.Epoch, l.snapEpoch)
	}
	if err := writeFileAtomic(snapPath(l.dir, snap.Epoch), EncodeDyn(snap)); err != nil {
		return err
	}
	l.snapEpoch = snap.Epoch
	if snap.Epoch > l.lastEpoch {
		// The snapshot covers mutations the log never received (a
		// prior Append failed); resync so appends resume after it.
		l.lastEpoch = snap.Epoch
	}
	// Older snapshots are now redundant; best-effort removal.
	removeOtherSnapshots(l.dir, snap.Epoch)
	if err := l.rotateLocked(); err != nil {
		return err
	}
	kept := l.closed[:0]
	for _, c := range l.closed {
		if c.last <= l.snapEpoch {
			_ = os.Remove(segPath(l.dir, c.seq))
		} else {
			kept = append(kept, c)
		}
	}
	l.closed = kept
	l.compactions++
	return nil
}

// ErrCompacted reports that the records a reader asked for are no
// longer in the WAL: a snapshot superseded them and compaction deleted
// their segments. The reader must resync from a snapshot instead.
var ErrCompacted = fmt.Errorf("persist: records compacted away")

// RecordsAfter returns the mutation records with epochs strictly after
// epoch, in order — the log-shipping read path: a replication owner
// ships exactly the records a follower's apply cursor is missing.
// Segments whose last record the cursor already covers are skipped
// without being read. ErrCompacted (wrapped) means the WAL no longer
// reaches back to epoch and the follower needs a snapshot.
//
// Reading happens on independent file handles against segments the
// holder of l.mu can see, so it is consistent with appends: a record is
// returned only once its single-call Write completed.
func (l *ShardLog) RecordsAfter(epoch uint64) ([]Record, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return nil, fmt.Errorf("persist: shard log is closed")
	}
	if epoch >= l.lastEpoch {
		return nil, nil
	}
	if epoch < l.snapEpoch {
		return nil, fmt.Errorf("%w: epoch %d predates snapshot %d", ErrCompacted, epoch, l.snapEpoch)
	}
	var out []Record
	read := func(seq int) error {
		raw, err := os.ReadFile(segPath(l.dir, seq))
		if err != nil {
			return fmt.Errorf("persist: %w", err)
		}
		recs, _, _ := scanRecords(raw)
		for _, r := range recs {
			if r.Type != RecFence && r.Epoch > epoch {
				out = append(out, r)
			}
		}
		return nil
	}
	for _, c := range l.closed {
		if c.last <= epoch {
			continue
		}
		if err := read(c.seq); err != nil {
			return nil, err
		}
	}
	if err := read(l.seg); err != nil {
		return nil, err
	}
	// The append path enforces consecutive epochs, so any discontinuity
	// here means the files under the log changed out from under it.
	for i, r := range out {
		if r.Epoch != epoch+1+uint64(i) {
			return nil, fmt.Errorf("persist: records after epoch %d are not consecutive (found %d at index %d)", epoch, r.Epoch, i)
		}
	}
	return out, nil
}

// Sync flushes the current segment to stable storage.
func (l *ShardLog) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return nil
	}
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("persist: %w", err)
	}
	return nil
}

// Close syncs and closes the current segment; the log is unusable
// afterwards.
func (l *ShardLog) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return nil
	}
	err := l.f.Sync()
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	l.f = nil
	if err != nil {
		return fmt.Errorf("persist: %w", err)
	}
	return nil
}

// writeLocked frames r and writes it with a single Write call, so a
// crash tears at most the final record.
func (l *ShardLog) writeLocked(r Record) error {
	l.scratch = appendRecord(l.scratch[:0], r)
	n, err := l.f.Write(l.scratch)
	l.segBytes += int64(n)
	if err != nil {
		return fmt.Errorf("persist: %w", err)
	}
	return nil
}

// rotateLocked closes the current segment and starts the next one,
// fencing it with the epoch the log has reached.
func (l *ShardLog) rotateLocked() error {
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("persist: %w", err)
	}
	if err := l.f.Close(); err != nil {
		return fmt.Errorf("persist: %w", err)
	}
	l.closed = append(l.closed, closedSegment{seq: l.seg, last: l.lastEpoch})
	return l.openSegmentLocked(l.seg + 1)
}

// openSegmentLocked creates segment seq and writes its fence record.
func (l *ShardLog) openSegmentLocked(seq int) error {
	f, err := os.OpenFile(segPath(l.dir, seq), os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("persist: %w", err)
	}
	l.f, l.seg, l.segBytes = f, seq, 0
	if err := l.writeLocked(Record{Type: RecFence, Epoch: l.lastEpoch}); err != nil {
		return err
	}
	if l.fsync {
		if err := l.f.Sync(); err != nil {
			return fmt.Errorf("persist: %w", err)
		}
	}
	return nil
}

// recoverSegments scans the shard's WAL segments in order, validates
// epoch continuity, truncates the log at the first torn or inconsistent
// record, deletes any segments beyond the cut, reopens the tail for
// appending, and returns the surviving post-snapshot mutation records.
func (l *ShardLog) recoverSegments() ([]Record, error) {
	seqs, err := listSegments(l.dir)
	if err != nil {
		return nil, err
	}
	if len(seqs) == 0 {
		// A shard with a snapshot but no WAL (e.g. a crash between
		// snapshot rename and segment creation): start a fresh log.
		return nil, l.openSegmentLocked(1)
	}

	var kept []Record
	cursor := uint64(0) // epoch of the last record seen
	haveCursor := false
	cut := -1 // index into seqs where the log was cut, -1 = clean
	cutOff := int64(0)
	segLast := make([]uint64, len(seqs)) // last record epoch per scanned segment

	for i, seq := range seqs {
		raw, err := os.ReadFile(segPath(l.dir, seq))
		if err != nil {
			return nil, fmt.Errorf("persist: %w", err)
		}
		recs, starts, valid := scanRecords(raw)
		for j, r := range recs {
			// Epoch continuity: a fence repeats the epoch the log had
			// reached when its segment was created; a mutation advances
			// it by exactly one. Anything else — like a gap between the
			// snapshot and the first surviving record — means the rest of
			// the log is unusable, so it is cut exactly like a torn tail.
			ok := !haveCursor || r.Epoch == cursor
			if r.Type != RecFence {
				ok = !haveCursor || r.Epoch == cursor+1
				if ok && r.Epoch > l.snapEpoch && r.Epoch != l.snapEpoch+1+uint64(len(kept)) {
					ok = false
				}
			}
			if !ok {
				cut, cutOff = i, int64(starts[j])
				break
			}
			cursor, haveCursor = r.Epoch, true
			segLast[i] = r.Epoch
			if r.Type != RecFence && r.Epoch > l.snapEpoch {
				kept = append(kept, r)
			}
		}
		if cut < 0 && valid < len(raw) {
			// Torn tail inside this segment.
			cut, cutOff = i, int64(valid)
		}
		if cut >= 0 {
			break
		}
	}

	last := len(seqs) - 1
	if cut >= 0 {
		if err := os.Truncate(segPath(l.dir, seqs[cut]), cutOff); err != nil {
			return nil, fmt.Errorf("persist: %w", err)
		}
		for _, seq := range seqs[cut+1:] {
			_ = os.Remove(segPath(l.dir, seq))
		}
		last = cut
	}
	if len(kept) > 0 {
		l.lastEpoch = kept[len(kept)-1].Epoch
	}
	for i, seq := range seqs[:last] {
		// segLast may read as 0 for a segment holding only a pre-cursor
		// fence; max with snapEpoch keeps the deletion rule conservative.
		lastEpoch := segLast[i]
		if lastEpoch < l.snapEpoch {
			lastEpoch = l.snapEpoch
		}
		l.closed = append(l.closed, closedSegment{seq: seq, last: lastEpoch})
	}
	// Reopen the surviving tail for appending.
	f, err := os.OpenFile(segPath(l.dir, seqs[last]), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("persist: %w", err)
	}
	info, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("persist: %w", err)
	}
	l.f, l.seg, l.segBytes = f, seqs[last], info.Size()
	return kept, nil
}

// --- file naming and helpers ---

func snapPath(dir string, epoch uint64) string {
	return filepath.Join(dir, fmt.Sprintf("snap-%020d.snap", epoch))
}

func segPath(dir string, seq int) string {
	return filepath.Join(dir, fmt.Sprintf("wal-%06d.log", seq))
}

// listSegments returns the WAL segment sequence numbers in dir, sorted.
func listSegments(dir string) ([]int, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("persist: %w", err)
	}
	var seqs []int
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasPrefix(name, "wal-") || !strings.HasSuffix(name, ".log") {
			continue
		}
		seq, err := strconv.Atoi(strings.TrimSuffix(strings.TrimPrefix(name, "wal-"), ".log"))
		if err != nil || seq <= 0 {
			continue
		}
		seqs = append(seqs, seq)
	}
	sort.Ints(seqs)
	return seqs, nil
}

// loadNewestSnapshot decodes the newest snapshot in dir. There is
// deliberately no fallback to an older snapshot: the WAL's segments
// may already have been compacted against the newest one, so recovering
// from an older snapshot would hit an epoch gap, cut the log there, and
// destroy fsync-acknowledged records — silent rollback. A newest
// snapshot that fails to read (unreachable short of disk corruption,
// given the atomic write) is a loud recovery error for the operator.
func loadNewestSnapshot(dir string) (DynSnapshot, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return DynSnapshot{}, fmt.Errorf("persist: %w", err)
	}
	var newest string
	for _, e := range entries {
		name := e.Name()
		if !e.IsDir() && strings.HasPrefix(name, "snap-") && strings.HasSuffix(name, ".snap") && name > newest {
			newest = name // zero-padded epochs sort lexicographically
		}
	}
	if newest == "" {
		return DynSnapshot{}, fmt.Errorf("persist: shard %s has no snapshot", filepath.Base(dir))
	}
	raw, err := os.ReadFile(filepath.Join(dir, newest))
	if err != nil {
		return DynSnapshot{}, fmt.Errorf("persist: %w", err)
	}
	snap, err := DecodeDyn(raw)
	if err != nil {
		return DynSnapshot{}, fmt.Errorf("persist: snapshot %s: %w", newest, err)
	}
	return snap, nil
}

func removeOtherSnapshots(dir string, keepEpoch uint64) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return
	}
	keep := filepath.Base(snapPath(dir, keepEpoch))
	for _, e := range entries {
		name := e.Name()
		if !e.IsDir() && strings.HasPrefix(name, "snap-") && strings.HasSuffix(name, ".snap") && name != keep {
			_ = os.Remove(filepath.Join(dir, name))
		}
	}
}

// writeFileAtomic writes data via a temp file, fsyncs it, renames it
// into place and best-effort-syncs the directory, so readers only ever
// observe complete files.
func writeFileAtomic(path string, data []byte) error {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("persist: %w", err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("persist: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("persist: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("persist: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("persist: %w", err)
	}
	if d, err := os.Open(filepath.Dir(path)); err == nil {
		_ = d.Sync()
		_ = d.Close()
	}
	return nil
}

func checkID(id string) error {
	if id == "" || strings.ContainsAny(id, "/\\") || strings.HasPrefix(id, ".") {
		return fmt.Errorf("persist: invalid id %q", id)
	}
	return nil
}
