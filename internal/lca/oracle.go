// Package lca implements the paper's batched lowest-common-ancestor
// algorithm (Section VI): given a tree stored in light-first order and a
// batch of queries, answer all of them with O(n log n) energy and
// O(log² n) depth w.h.p. using the treefix machinery, a heavy-light path
// decomposition derived from the light-first order (Section VI-A), and a
// subtree cover with per-layer range broadcasts (Sections VI-B/C).
//
// The package also provides a sequential binary-lifting oracle (the test
// reference) and a goroutine-parallel Euler-tour/sparse-table engine for
// wall-clock benchmarks.
package lca

import "spatialtree/internal/tree"

// Oracle answers single LCA queries in O(log n) time after O(n log n)
// preprocessing (binary lifting). It is the sequential reference the
// spatial algorithm is tested against.
type Oracle struct {
	t     *tree.Tree
	depth []int
	up    [][]int32 // up[k][v] = 2^k-th ancestor (or -1)
}

// NewOracle preprocesses t.
func NewOracle(t *tree.Tree) *Oracle {
	n := t.N()
	o := &Oracle{t: t, depth: t.Depths()}
	levels := 1
	for 1<<levels < n {
		levels++
	}
	if levels == 0 {
		levels = 1
	}
	o.up = make([][]int32, levels)
	o.up[0] = make([]int32, n)
	for v := 0; v < n; v++ {
		o.up[0][v] = int32(t.Parent(v))
	}
	for k := 1; k < levels; k++ {
		o.up[k] = make([]int32, n)
		for v := 0; v < n; v++ {
			mid := o.up[k-1][v]
			if mid == -1 {
				o.up[k][v] = -1
			} else {
				o.up[k][v] = o.up[k-1][mid]
			}
		}
	}
	return o
}

// LCA returns the lowest common ancestor of u and v.
func (o *Oracle) LCA(u, v int) int {
	if o.depth[u] < o.depth[v] {
		u, v = v, u
	}
	diff := o.depth[u] - o.depth[v]
	for k := 0; diff > 0; k++ {
		if diff&1 == 1 {
			u = int(o.up[k][u])
		}
		diff >>= 1
	}
	if u == v {
		return u
	}
	for k := len(o.up) - 1; k >= 0; k-- {
		if o.up[k][u] != o.up[k][v] {
			u = int(o.up[k][u])
			v = int(o.up[k][v])
		}
	}
	return int(o.up[0][u])
}
