package lca

import (
	"math"
	"testing"
	"testing/quick"

	"spatialtree/internal/machine"
	"spatialtree/internal/order"
	"spatialtree/internal/rng"
	"spatialtree/internal/sfc"
	"spatialtree/internal/tree"
)

func lfRanks(t *tree.Tree) []int { return order.LightFirst(t).Rank }

// naiveLCA walks parent pointers; the oracle's oracle.
func naiveLCA(t *tree.Tree, u, v int) int {
	seen := map[int]bool{}
	for x := u; x != -1; x = t.Parent(x) {
		seen[x] = true
	}
	for x := v; x != -1; x = t.Parent(x) {
		if seen[x] {
			return x
		}
	}
	return -1
}

func testTrees(r *rng.RNG) []*tree.Tree {
	return []*tree.Tree{
		tree.Path(25),
		tree.Star(30),
		tree.PerfectBinary(6),
		tree.Caterpillar(31),
		tree.Broom(24),
		tree.Comb(5, 4),
		tree.RandomAttachment(250, r),
		tree.PreferentialAttachment(200, r),
		tree.Yule(70, r),
	}
}

// disjointQueries builds queries in which every vertex appears at most
// once, the regime of Theorem 6.
func disjointQueries(n int, r *rng.RNG) []Query {
	perm := r.Perm(n)
	var qs []Query
	for i := 0; i+1 < n; i += 2 {
		qs = append(qs, Query{U: perm[i], V: perm[i+1]})
	}
	return qs
}

func TestOracleAgainstNaive(t *testing.T) {
	r := rng.New(1)
	for _, tr := range testTrees(r) {
		o := NewOracle(tr)
		for trial := 0; trial < 100; trial++ {
			u, v := r.Intn(tr.N()), r.Intn(tr.N())
			if got, want := o.LCA(u, v), naiveLCA(tr, u, v); got != want {
				t.Fatalf("n=%d: oracle LCA(%d,%d) = %d, want %d", tr.N(), u, v, got, want)
			}
		}
	}
}

func TestOracleEdgeCases(t *testing.T) {
	tr := tree.Path(10)
	o := NewOracle(tr)
	if o.LCA(5, 5) != 5 {
		t.Error("LCA(v,v) != v")
	}
	if o.LCA(0, 9) != 0 {
		t.Error("LCA(root, leaf) != root")
	}
	if o.LCA(3, 7) != 3 {
		t.Error("path LCA should be the shallower vertex")
	}
	single := tree.Path(1)
	if NewOracle(single).LCA(0, 0) != 0 {
		t.Error("single-vertex LCA")
	}
}

func TestBatchedMatchesOracle(t *testing.T) {
	r := rng.New(2)
	for _, tr := range testTrees(r) {
		o := NewOracle(tr)
		qs := disjointQueries(tr.N(), r)
		s := machine.New(tr.N(), sfc.Hilbert{})
		got, st := Batched(s, tr, lfRanks(tr), qs, rng.New(uint64(tr.N())))
		for i, q := range qs {
			want := o.LCA(q.U, q.V)
			if got[i] != want {
				t.Fatalf("n=%d: query %v = %d, want %d (stats %+v)", tr.N(), q, got[i], want, st)
			}
		}
		if st.AncestorAnswered+st.CoverAnswered != len(qs) {
			t.Fatalf("n=%d: answered %d+%d of %d", tr.N(), st.AncestorAnswered, st.CoverAnswered, len(qs))
		}
	}
}

func TestBatchedManySeeds(t *testing.T) {
	r := rng.New(3)
	tr := tree.PreferentialAttachment(300, r)
	o := NewOracle(tr)
	qs := disjointQueries(tr.N(), r)
	for seed := uint64(0); seed < 8; seed++ {
		s := machine.New(tr.N(), sfc.Hilbert{})
		got, _ := Batched(s, tr, lfRanks(tr), qs, rng.New(seed))
		for i, q := range qs {
			if got[i] != o.LCA(q.U, q.V) {
				t.Fatalf("seed %d: query %v wrong", seed, q)
			}
		}
	}
}

func TestBatchedQuick(t *testing.T) {
	f := func(seed uint64, rawN uint16) bool {
		n := 2 + int(rawN)%300
		r := rng.New(seed)
		tr := tree.RandomAttachment(n, r)
		o := NewOracle(tr)
		qs := disjointQueries(n, r)
		s := machine.New(n, sfc.Hilbert{})
		got, _ := Batched(s, tr, lfRanks(tr), qs, r)
		for i, q := range qs {
			if got[i] != o.LCA(q.U, q.V) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestBatchedRepeatedEndpoints(t *testing.T) {
	// Queries sharing vertices (beyond the O(1) assumption) must still
	// be answered correctly.
	r := rng.New(4)
	tr := tree.RandomAttachment(100, r)
	o := NewOracle(tr)
	var qs []Query
	for i := 0; i < 50; i++ {
		qs = append(qs, Query{U: r.Intn(100), V: r.Intn(100)})
	}
	s := machine.New(tr.N(), sfc.Hilbert{})
	got, _ := Batched(s, tr, lfRanks(tr), qs, r)
	for i, q := range qs {
		if got[i] != o.LCA(q.U, q.V) {
			t.Fatalf("query %v = %d, want %d", q, got[i], o.LCA(q.U, q.V))
		}
	}
}

func TestLayersLogarithmic(t *testing.T) {
	// Section VI-A: the heavy-light decomposition from light-first order
	// has O(log n) layers.
	for _, bits := range []int{10, 13} {
		n := 1 << bits
		tr := tree.RandomAttachment(n, rng.New(uint64(bits)))
		qs := disjointQueries(n, rng.New(1))
		s := machine.New(n, sfc.Hilbert{})
		_, st := Batched(s, tr, lfRanks(tr), qs, rng.New(2))
		if st.Layers > 2*bits+2 {
			t.Errorf("n=2^%d: %d layers, want <= 2·log2(n)", bits, st.Layers)
		}
	}
}

func TestTheorem6Costs(t *testing.T) {
	// Near-linear energy (slope about 1 in log-log) and O(log² n) depth.
	var ns, es []float64
	for _, bits := range []int{9, 11, 13} {
		n := 1 << bits
		tr := tree.RandomBoundedDegree(n, 2, rng.New(uint64(bits)))
		qs := disjointQueries(n, rng.New(3))
		s := machine.New(n, sfc.Hilbert{})
		Batched(s, tr, lfRanks(tr), qs, rng.New(4))
		ns = append(ns, float64(n))
		es = append(es, float64(s.Energy()))
		if d := float64(s.Depth()); d > 25*float64(bits*bits) {
			t.Errorf("n=2^%d: LCA depth %.0f above O(log² n) envelope", bits, d)
		}
	}
	slope := logLogSlope(ns, es)
	if slope > 1.35 {
		t.Errorf("LCA energy exponent %.3f, want near-linear", slope)
	}
}

func TestQueryLoad(t *testing.T) {
	qs := []Query{{0, 1}, {0, 2}, {3, 3}}
	if got := QueryLoad(5, qs); got != 2 {
		t.Fatalf("QueryLoad = %d, want 2", got)
	}
	if got := QueryLoad(5, nil); got != 0 {
		t.Fatalf("QueryLoad(empty) = %d", got)
	}
}

func TestEngineMatchesOracle(t *testing.T) {
	r := rng.New(5)
	for _, tr := range testTrees(r) {
		o := NewOracle(tr)
		e := NewEngine(tr, 4)
		var qs []Query
		for i := 0; i < 200; i++ {
			qs = append(qs, Query{U: r.Intn(tr.N()), V: r.Intn(tr.N())})
		}
		got := e.BatchLCA(qs)
		for i, q := range qs {
			if got[i] != o.LCA(q.U, q.V) {
				t.Fatalf("n=%d: engine LCA%v = %d, want %d", tr.N(), q, got[i], o.LCA(q.U, q.V))
			}
		}
	}
}

func TestEngineQuick(t *testing.T) {
	f := func(seed uint64, rawN uint16, a, b uint16) bool {
		n := 2 + int(rawN)%400
		r := rng.New(seed)
		tr := tree.PreferentialAttachment(n, r)
		e := NewEngine(tr, 2)
		u, v := int(a)%n, int(b)%n
		return e.BatchLCA([]Query{{u, v}})[0] == naiveLCA(tr, u, v)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestBatchedEmptyInputs(t *testing.T) {
	tr := tree.Path(5)
	s := machine.New(5, sfc.Hilbert{})
	ans, st := Batched(s, tr, lfRanks(tr), nil, rng.New(1))
	if len(ans) != 0 || st.Layers != 0 {
		t.Fatal("empty query batch should be a no-op")
	}
}

func logLogSlope(xs, ys []float64) float64 {
	n := float64(len(xs))
	var sx, sy, sxx, sxy float64
	for i := range xs {
		lx, ly := math.Log(xs[i]), math.Log(ys[i])
		sx += lx
		sy += ly
		sxx += lx * lx
		sxy += lx * ly
	}
	return (n*sxy - sx*sy) / (n*sxx - sx*sx)
}
