package lca

import (
	"fmt"

	"spatialtree/internal/eulertour"
	"spatialtree/internal/machine"
	"spatialtree/internal/rng"
	"spatialtree/internal/tree"
	"spatialtree/internal/treefix"
	"spatialtree/internal/vtree"
)

// Query asks for LCA(U, V).
type Query struct{ U, V int }

// Stats reports what the spatial LCA run did.
type Stats struct {
	// Layers is the number of path-decomposition layers (O(log n) by the
	// heavy-light argument of Section VI-A).
	Layers int
	// AncestorAnswered counts queries resolved in step 1 (one endpoint
	// an ancestor of the other); CoverAnswered counts those resolved by
	// the subtree-cover sweep.
	AncestorAnswered int
	CoverAnswered    int
	// Treefix carries the contraction stats of the underlying treefix
	// runs.
	Treefix treefix.Stats
}

// Batched answers all queries on a tree stored in light-first order:
// rank[v] must be the light-first position of v (the algorithm's
// correctness depends on subtrees being contiguous ranges, Section VI-C).
// For the paper's cost bounds every vertex should appear in O(1) queries
// (split query-heavy vertices beforehand; see QueryLoad).
//
// The returned slice holds one answer per query. Theorem 6: O(n log n)
// energy and O(log² n) depth with high probability.
func Batched(s *machine.Sim, t *tree.Tree, rank []int, queries []Query, r *rng.RNG) ([]int, Stats) {
	n := t.N()
	var st Stats
	answers := make([]int, len(queries))
	for i := range answers {
		answers[i] = -1
	}
	if n == 0 || len(queries) == 0 {
		return answers, st
	}
	for i, q := range queries {
		if q.U < 0 || q.U >= n || q.V < 0 || q.V >= n {
			panic(fmt.Sprintf("lca: query %d out of range: %+v", i, q))
		}
	}

	// --- Step 1: subtree sizes via treefix (value 1 at every vertex),
	// giving each vertex its range r(v) = [rank[v], rank[v]+size(v)-1].
	ones := make([]int64, n)
	for i := range ones {
		ones[i] = 1
	}
	sizes, tfStats := treefix.BottomUp(s, t, rank, ones, treefix.Add, r)
	st.Treefix = tfStats
	lo := make([]int, n)
	hi := make([]int, n)
	for v := 0; v < n; v++ {
		lo[v] = rank[v]
		hi[v] = rank[v] + int(sizes[v]) - 1
	}
	inRange := func(v, x int) bool { return rank[v] >= lo[x] && rank[v] <= hi[x] }

	// Query endpoints exchange positions (2 messages per query); then
	// ancestor queries are answered locally.
	pairs := make([][2]int, 0, 2*len(queries))
	for _, q := range queries {
		pairs = append(pairs, [2]int{rank[q.U], rank[q.V]}, [2]int{rank[q.V], rank[q.U]})
	}
	s.SendBatch(pairs)
	for i, q := range queries {
		switch {
		case inRange(q.V, q.U):
			answers[i] = q.U
			st.AncestorAnswered++
		case inRange(q.U, q.V):
			answers[i] = q.V
			st.AncestorAnswered++
		}
	}

	// --- Step 2: every vertex learns its parent's range via a local
	// broadcast on the virtual tree (two words; unbounded degree safe).
	intSizes := make([]int, n)
	for v := range intSizes {
		intSizes[v] = int(sizes[v])
	}
	vt := vtree.Build(t, eulertour.SortedChildrenBySize(t, intSizes))
	loV := make([]int64, n)
	hiV := make([]int64, n)
	for v := 0; v < n; v++ {
		loV[v] = int64(lo[v])
		hiV[v] = int64(hi[v])
	}
	parentLo := vtree.LocalBroadcast(s, vt, rank, loV)
	parentHi := vtree.LocalBroadcast(s, vt, rank, hiV)

	// --- Step 3: path decomposition layers via top-down treefix.
	// v continues its parent's path iff it is the rightmost (heaviest)
	// child in light-first order, which each vertex detects locally:
	// its range ends where its parent's range ends.
	switchVal := make([]int64, n)
	for v := 0; v < n; v++ {
		if v == t.Root() {
			continue
		}
		if int64(hi[v]) != parentHi[v] {
			switchVal[v] = 1
		}
	}
	layer64, _ := treefix.TopDown(s, t, rank, switchVal, treefix.Add, r)
	maxLayer := 0
	for v := 0; v < n; v++ {
		if int(layer64[v]) > maxLayer {
			maxLayer = int(layer64[v])
		}
	}
	st.Layers = maxLayer + 1

	// Per-vertex query lists (each vertex holds its O(1) query slots).
	queriesAt := make([][]int32, n)
	for i, q := range queries {
		queriesAt[q.U] = append(queriesAt[q.U], int32(i))
		if q.V != q.U {
			queriesAt[q.V] = append(queriesAt[q.V], int32(i))
		}
	}
	other := func(qi int, v int) int {
		q := queries[qi]
		if q.U == v {
			return q.V
		}
		return q.U
	}

	// --- Step 4: subtree cover sweep. The roots of the decomposition's
	// paths are exactly the non-rightmost children (switchVal = 1); the
	// subtree rooted at such an x is in layer layer(x). For each layer,
	// broadcast (r(w), r(x)) within r(x) (w = parent of x, Lemma 13) and
	// answer queries whose other endpoint lies in r(w)\r(x); then
	// barrier (an all-reduce) before the next layer.
	rootsByLayer := make([][]int, maxLayer+1)
	for v := 0; v < n; v++ {
		if v != t.Root() && switchVal[v] == 1 {
			rootsByLayer[layer64[v]] = append(rootsByLayer[layer64[v]], v)
		}
	}
	vertexAt := make([]int32, n) // light-first position -> vertex
	for v := 0; v < n; v++ {
		vertexAt[rank[v]] = int32(v)
	}
	for layer := 0; layer <= maxLayer; layer++ {
		for _, x := range rootsByLayer[layer] {
			w := t.Parent(x)
			wLo, wHi := int(parentLo[x]), int(parentHi[x])
			// Every processor in r(x) — exactly x's subtree, since
			// light-first subtrees are contiguous — receives
			// (w, r(w), r(x)) and checks its queries locally.
			machine.RangeBroadcast(s, lo[x], hi[x], func(procRank int) {
				u := int(vertexAt[procRank])
				for _, qi := range queriesAt[u] {
					if answers[qi] != -1 {
						continue
					}
					v := other(int(qi), u)
					rv := rank[v]
					if rv >= wLo && rv <= wHi && !(rv >= lo[x] && rv <= hi[x]) {
						answers[qi] = w
						st.CoverAnswered++
					}
				}
			})
		}
		machine.Barrier(s)
	}
	return answers, st
}

// QueryLoad returns the maximum number of queries any single vertex
// participates in. The paper's Theorem 6 assumes O(1); callers with
// hot vertices should split them (Section VI) or accept the extra
// energy.
func QueryLoad(n int, queries []Query) int {
	load := make([]int, n)
	max := 0
	for _, q := range queries {
		load[q.U]++
		if load[q.U] > max {
			max = load[q.U]
		}
		if q.V != q.U {
			load[q.V]++
			if load[q.V] > max {
				max = load[q.V]
			}
		}
	}
	return max
}
