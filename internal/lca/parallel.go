package lca

import (
	"spatialtree/internal/par"
	"spatialtree/internal/tree"
)

// Engine answers LCA query batches on the CPU with goroutine
// parallelism: an Euler vertex tour plus a sparse table over depths
// (O(n log n) construction parallelized over table rows, O(1) per
// query). Used by the wall-clock benchmarks (experiment E12) as the
// shared-memory counterpart of the spatial algorithm.
type Engine struct {
	first  []int32 // first occurrence of each vertex in the tour
	tourV  []int32 // tour vertex ids
	depths []int   // vertex depths
	table  [][]int32
	logs   []uint8
	work   int
}

// NewEngine preprocesses t with the given worker count.
func NewEngine(t *tree.Tree, workers int) *Engine {
	n := t.N()
	e := &Engine{work: workers}
	if n == 0 {
		return e
	}
	tour := t.EulerTour(nil) // 2n-1 vertex visits
	m := len(tour)
	e.tourV = make([]int32, m)
	e.first = make([]int32, n)
	for i := range e.first {
		e.first[i] = -1
	}
	depth := t.Depths()
	for i, v := range tour {
		e.tourV[i] = int32(v)
		if e.first[v] == -1 {
			e.first[v] = int32(i)
		}
	}
	// Sparse table of argmin-depth over tour windows.
	levels := 1
	for 1<<levels <= m {
		levels++
	}
	e.table = make([][]int32, levels)
	base := make([]int32, m)
	for i := 0; i < m; i++ {
		base[i] = int32(i)
	}
	e.table[0] = base
	for k := 1; k < levels; k++ {
		width := 1 << k
		rows := m - width + 1
		if rows <= 0 {
			e.table = e.table[:k]
			break
		}
		row := make([]int32, rows)
		prev := e.table[k-1]
		half := width / 2
		par.For(rows, workers, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				a, b := prev[i], prev[i+half]
				if depth[e.tourV[a]] <= depth[e.tourV[b]] {
					row[i] = a
				} else {
					row[i] = b
				}
			}
		})
		e.table[k] = row
	}
	e.logs = make([]uint8, m+1)
	for i := 2; i <= m; i++ {
		e.logs[i] = e.logs[i/2] + 1
	}
	e.depths = depth
	return e
}

func (e *Engine) query(u, v int) int {
	a, b := e.first[u], e.first[v]
	if a > b {
		a, b = b, a
	}
	k := e.logs[b-a+1]
	i, j := e.table[k][a], e.table[k][b-(1<<k)+1]
	if e.depths[e.tourV[i]] <= e.depths[e.tourV[j]] {
		return int(e.tourV[i])
	}
	return int(e.tourV[j])
}

// BatchLCA answers all queries in parallel.
func (e *Engine) BatchLCA(queries []Query) []int {
	out := make([]int, len(queries))
	par.For(len(queries), e.work, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i] = e.query(queries[i].U, queries[i].V)
		}
	})
	return out
}
