package lca

import (
	"testing"

	"spatialtree/internal/machine"
	"spatialtree/internal/rng"
	"spatialtree/internal/sfc"
	"spatialtree/internal/tree"
)

func TestSelfQueries(t *testing.T) {
	tr := tree.RandomAttachment(100, rng.New(50))
	qs := []Query{{U: 5, V: 5}, {U: 0, V: 0}, {U: 99, V: 99}}
	s := machine.New(tr.N(), sfc.Hilbert{})
	got, _ := Batched(s, tr, lfRanks(tr), qs, rng.New(1))
	for i, q := range qs {
		if got[i] != q.U {
			t.Fatalf("LCA(v,v) = %d, want %d", got[i], q.U)
		}
	}
}

func TestRootQueries(t *testing.T) {
	tr := tree.RandomAttachment(100, rng.New(51))
	qs := []Query{{U: tr.Root(), V: 42}, {U: 13, V: tr.Root()}}
	s := machine.New(tr.N(), sfc.Hilbert{})
	got, st := Batched(s, tr, lfRanks(tr), qs, rng.New(2))
	for i := range qs {
		if got[i] != tr.Root() {
			t.Fatalf("query %d: got %d, want root", i, got[i])
		}
	}
	if st.AncestorAnswered != 2 {
		t.Fatalf("root queries must resolve in step 1, stats %+v", st)
	}
}

func TestSiblingAndCousinQueries(t *testing.T) {
	// Perfect binary tree: LCAs at every level.
	tr := tree.PerfectBinary(8)
	o := NewOracle(tr)
	var qs []Query
	for v := 1; v < 100; v += 7 {
		qs = append(qs, Query{U: v, V: v + 1})
	}
	s := machine.New(tr.N(), sfc.Hilbert{})
	got, _ := Batched(s, tr, lfRanks(tr), qs, rng.New(3))
	for i, q := range qs {
		if got[i] != o.LCA(q.U, q.V) {
			t.Fatalf("query %v: got %d want %d", q, got[i], o.LCA(q.U, q.V))
		}
	}
}

func TestDeepPathQueries(t *testing.T) {
	// On a path every query is an ancestor query.
	tr := tree.Path(500)
	qs := []Query{{U: 10, V: 490}, {U: 499, V: 0}, {U: 250, V: 251}}
	s := machine.New(tr.N(), sfc.Hilbert{})
	got, st := Batched(s, tr, lfRanks(tr), qs, rng.New(4))
	want := []int{10, 0, 250}
	for i := range qs {
		if got[i] != want[i] {
			t.Fatalf("path query %d: got %d want %d", i, got[i], want[i])
		}
	}
	if st.CoverAnswered != 0 {
		t.Fatalf("path queries must all be ancestor queries, stats %+v", st)
	}
}

func TestStarQueries(t *testing.T) {
	// On a star every non-center pair meets at the center.
	tr := tree.Star(64)
	var qs []Query
	for v := 1; v+1 < 64; v += 2 {
		qs = append(qs, Query{U: v, V: v + 1})
	}
	s := machine.New(tr.N(), sfc.Hilbert{})
	got, _ := Batched(s, tr, lfRanks(tr), qs, rng.New(5))
	for i := range qs {
		if got[i] != 0 {
			t.Fatalf("star query %d: got %d, want center", i, got[i])
		}
	}
}

func TestHotVertexQueries(t *testing.T) {
	// One vertex in every query (violates the O(1) assumption;
	// correctness must hold regardless).
	tr := tree.RandomAttachment(200, rng.New(52))
	o := NewOracle(tr)
	var qs []Query
	for v := 1; v < 100; v++ {
		qs = append(qs, Query{U: 150, V: v})
	}
	if QueryLoad(tr.N(), qs) < 99 {
		t.Fatal("test setup: vertex 150 should be hot")
	}
	s := machine.New(tr.N(), sfc.Hilbert{})
	got, _ := Batched(s, tr, lfRanks(tr), qs, rng.New(6))
	for i, q := range qs {
		if got[i] != o.LCA(q.U, q.V) {
			t.Fatalf("hot query %v: got %d want %d", q, got[i], o.LCA(q.U, q.V))
		}
	}
}

func TestTwoVertexTree(t *testing.T) {
	tr := tree.Path(2)
	s := machine.New(2, sfc.Hilbert{})
	got, _ := Batched(s, tr, lfRanks(tr), []Query{{U: 0, V: 1}, {U: 1, V: 1}}, rng.New(7))
	if got[0] != 0 || got[1] != 1 {
		t.Fatalf("two-vertex answers = %v", got)
	}
}
