package engine

// Concurrency hammer for the batching and cache paths, meant to run
// under `go test -race`: 16 goroutines submit mixed request kinds to one
// shared engine while flushing concurrently, and every result is checked
// against the sequential oracles. Sizes are small so the test stays in
// short mode.

import (
	"sync"
	"testing"

	"spatialtree/internal/lca"
	"spatialtree/internal/mincut"
	"spatialtree/internal/rng"
	"spatialtree/internal/tree"
	"spatialtree/internal/treefix"
)

func TestEngineConcurrentHammer(t *testing.T) {
	const (
		goroutines = 16
		rounds     = 12
		n          = 256
	)
	tr := tree.RandomAttachment(n, rng.New(99))
	eng, err := New(tr, Options{Window: 5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	oracle := lca.NewOracle(tr)
	edges := mincut.RandomGraph(tr, n/2, 10, rng.New(100))
	wantCut := mincut.OneRespectingSequential(tr, edges)

	var wg sync.WaitGroup
	errs := make(chan string, goroutines*rounds)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			r := rng.New(uint64(1000 + g))
			for round := 0; round < rounds; round++ {
				switch (g + round) % 4 {
				case 0: // bottom-up treefix under a random op
					ops := []treefix.Op{treefix.Add, treefix.Max, treefix.Min, treefix.Xor}
					op := ops[r.Intn(len(ops))]
					vals := make([]int64, n)
					for i := range vals {
						vals[i] = int64(r.Intn(100)) - 50
					}
					want := treefix.SequentialBottomUp(tr, vals, op)
					res := eng.SubmitTreefix(vals, op).Wait()
					if res.Err != nil {
						errs <- res.Err.Error()
						return
					}
					for v := range want {
						if res.Sums[v] != want[v] {
							errs <- "bottom-up mismatch under concurrency"
							return
						}
					}
				case 1: // top-down treefix
					vals := make([]int64, n)
					for i := range vals {
						vals[i] = int64(r.Intn(100))
					}
					want := treefix.SequentialTopDown(tr, vals, treefix.Add)
					res := eng.SubmitTopDown(vals, treefix.Add).Wait()
					if res.Err != nil {
						errs <- res.Err.Error()
						return
					}
					for v := range want {
						if res.Sums[v] != want[v] {
							errs <- "top-down mismatch under concurrency"
							return
						}
					}
				case 2: // LCA batch (coalesces with other goroutines')
					qs := make([]lca.Query, 8)
					for i := range qs {
						qs[i] = lca.Query{U: r.Intn(n), V: r.Intn(n)}
					}
					res := eng.SubmitLCA(qs).Wait()
					if res.Err != nil {
						errs <- res.Err.Error()
						return
					}
					for i, q := range qs {
						if res.Answers[i] != oracle.LCA(q.U, q.V) {
							errs <- "lca mismatch under concurrency"
							return
						}
					}
				case 3: // min-cut plus a concurrent explicit Flush
					res := eng.SubmitMinCut(edges).Wait()
					if res.Err != nil {
						errs <- res.Err.Error()
						return
					}
					if res.MinCut.MinWeight != wantCut.MinWeight {
						errs <- "min-cut mismatch under concurrency"
						return
					}
					eng.Flush()
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for msg := range errs {
		t.Fatal(msg)
	}

	st := eng.Stats()
	if want := uint64(goroutines * rounds); st.Requests != want {
		t.Fatalf("Requests = %d, want %d", st.Requests, want)
	}
	if st.Batches == 0 || st.Batches > st.Requests {
		t.Fatalf("Batches = %d out of range (0, %d]", st.Batches, st.Requests)
	}
	if eng.Pending() != 0 {
		t.Fatalf("Pending = %d after all waits, want 0", eng.Pending())
	}
}

// TestDynEngineConcurrentHammer races mutators against submitters on
// one mutable engine. Mutations are confined to vertices ≥ stable, so
// ids below it are never renumbered and the base oracle stays valid for
// the query goroutines: leaf inserts/deletes elsewhere cannot change
// the LCA of two untouched vertices.
func TestDynEngineConcurrentHammer(t *testing.T) {
	const (
		n      = 200
		stable = 100
		rounds = 40
	)
	base := tree.RandomAttachment(n, rng.New(55))
	de, err := NewDyn(base, DynOptions{Options: Options{Window: 5, Seed: 2}, Epsilon: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	oracle := lca.NewOracle(base)

	var wg sync.WaitGroup
	errs := make(chan string, 64)

	// Inserter: parents drawn from the stable prefix are always valid.
	wg.Add(1)
	go func() {
		defer wg.Done()
		r := rng.New(7)
		for i := 0; i < rounds; i++ {
			if _, err := de.InsertLeaf(r.Intn(stable)); err != nil {
				errs <- "insert: " + err.Error()
				return
			}
		}
	}()
	// Deleter: only ids ≥ 150 are candidates, so renumbering never
	// touches the stable prefix. IsLeaf→DeleteLeaf is not atomic, so a
	// racing mutation may invalidate the pick — that error is expected.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < rounds/2; i++ {
			if de.N() <= 160 {
				continue
			}
			for v := de.N() - 1; v >= 150; v-- {
				if de.IsLeaf(v) {
					de.DeleteLeaf(v) // racing errors tolerated
					break
				}
			}
		}
	}()
	// Query goroutines: LCA over the stable prefix, checked against the
	// base oracle; treefix with a length snapshot, where a concurrent
	// mutation may legitimately reject the stale length.
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			r := rng.New(uint64(300 + g))
			for i := 0; i < rounds; i++ {
				if g%2 == 0 {
					qs := make([]lca.Query, 4)
					for j := range qs {
						qs[j] = lca.Query{U: r.Intn(stable), V: r.Intn(stable)}
					}
					res := de.SubmitLCA(qs).Wait()
					if res.Err != nil {
						errs <- "lca: " + res.Err.Error()
						return
					}
					for j, q := range qs {
						if res.Answers[j] != oracle.LCA(q.U, q.V) {
							errs <- "lca mismatch under concurrent mutation"
							return
						}
					}
				} else {
					vals := make([]int64, de.N())
					res := de.SubmitTreefix(vals, treefix.Add).Wait()
					if res.Err == nil && len(res.Sums) != len(vals) {
						errs <- "treefix length mismatch"
						return
					}
					de.Flush()
					_ = de.Stats()
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for msg := range errs {
		t.Fatal(msg)
	}

	if _, err := de.Tree(); err != nil {
		t.Fatal(err)
	}
	st := de.Stats()
	if st.Inserts != rounds {
		t.Fatalf("Inserts = %d, want %d", st.Inserts, rounds)
	}
	if st.Epoch != st.Inserts+st.Deletes {
		t.Fatalf("epoch %d != inserts %d + deletes %d", st.Epoch, st.Inserts, st.Deletes)
	}
	// Post-hammer differential: the final tree must serve like a fresh
	// static engine.
	cur, err := de.Tree()
	if err != nil {
		t.Fatal(err)
	}
	finalOracle := lca.NewOracle(cur)
	qs := make([]lca.Query, 16)
	r := rng.New(9)
	for i := range qs {
		qs[i] = lca.Query{U: r.Intn(cur.N()), V: r.Intn(cur.N())}
	}
	res := de.SubmitLCA(qs).Wait()
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	for i, q := range qs {
		if res.Answers[i] != finalOracle.LCA(q.U, q.V) {
			t.Fatalf("final lca mismatch at query %d", i)
		}
	}
}

func TestPoolConcurrentAcrossTrees(t *testing.T) {
	const clients = 8
	pool := NewPool(0, Options{Window: 4})
	trees := make([]*tree.Tree, 4)
	for i := range trees {
		trees[i] = tree.RandomAttachment(128, rng.New(uint64(200+i)))
	}
	var wg sync.WaitGroup
	errs := make(chan string, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			tr := trees[c%len(trees)]
			eng, err := pool.Engine(tr)
			if err != nil {
				errs <- err.Error()
				return
			}
			vals := make([]int64, tr.N())
			for i := range vals {
				vals[i] = int64((c + 1) * i)
			}
			want := treefix.SequentialBottomUp(tr, vals, treefix.Add)
			res := eng.SubmitTreefix(vals, treefix.Add).Wait()
			if res.Err != nil {
				errs <- res.Err.Error()
				return
			}
			for v := range want {
				if res.Sums[v] != want[v] {
					errs <- "pool shard mismatch under concurrency"
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for msg := range errs {
		t.Fatal(msg)
	}
	if pool.Size() != len(trees) {
		t.Fatalf("pool size = %d, want %d", pool.Size(), len(trees))
	}
}
