package engine

import (
	"errors"
	"testing"

	"spatialtree/internal/exec"
	"spatialtree/internal/exprtree"
	"spatialtree/internal/lca"
	"spatialtree/internal/mincut"
	"spatialtree/internal/rng"
	"spatialtree/internal/tree"
	"spatialtree/internal/treefix"
)

// TestLCACostApportioned pins the coalescing cost-attribution fix:
// per-request Energy/Messages shares of a coalesced LCA run must sum
// exactly to the shared run's cost (no over-counting by the coalescing
// factor), while Depth — the genuinely shared critical path — is
// reported in full on every future.
func TestLCACostApportioned(t *testing.T) {
	tr := tree.RandomAttachment(257, rng.New(1))
	n := tr.N()
	qr := rng.New(2)
	mkQueries := func(m int) []lca.Query {
		qs := make([]lca.Query, m)
		for i := range qs {
			qs[i] = lca.Query{U: qr.Intn(n), V: qr.Intn(n)}
		}
		return qs
	}
	qsets := [][]lca.Query{mkQueries(1), mkQueries(2), mkQueries(3)}
	var flat []lca.Query
	for _, qs := range qsets {
		flat = append(flat, qs...)
	}

	// Engine A: three requests coalesced into one batch (batch seq 0).
	a, err := New(tr, Options{Seed: 7, Window: 64})
	if err != nil {
		t.Fatal(err)
	}
	var futs []*Future
	for _, qs := range qsets {
		futs = append(futs, a.SubmitLCA(qs))
	}
	a.Flush()

	// Engine B: the same queries as one request — same seed and batch
	// index, so the simulator run is identical.
	b, err := New(tr, Options{Seed: 7, Window: 64})
	if err != nil {
		t.Fatal(err)
	}
	whole := b.SubmitLCA(flat).Wait()
	if whole.Err != nil {
		t.Fatal(whole.Err)
	}

	var sumEnergy, sumMessages int64
	for i, f := range futs {
		res := f.Wait()
		if res.Err != nil {
			t.Fatal(res.Err)
		}
		sumEnergy += res.Cost.Energy
		sumMessages += res.Cost.Messages
		if res.Cost.Depth != whole.Cost.Depth {
			t.Fatalf("request %d: depth %d, want shared run depth %d", i, res.Cost.Depth, whole.Cost.Depth)
		}
		if res.Cost.Energy <= 0 {
			t.Fatalf("request %d: non-positive energy share %d", i, res.Cost.Energy)
		}
	}
	if sumEnergy != whole.Cost.Energy || sumMessages != whole.Cost.Messages {
		t.Fatalf("apportioned shares sum to (E=%d, M=%d), run cost (E=%d, M=%d)",
			sumEnergy, sumMessages, whole.Cost.Energy, whole.Cost.Messages)
	}
}

// TestNativeBackendServing runs the full request surface on a native
// engine and checks results against oracles and the metering contract
// (no model cost without shadow sampling).
func TestNativeBackendServing(t *testing.T) {
	tr := tree.RandomAttachment(513, rng.New(3))
	n := tr.N()
	eng, err := New(tr, Options{Backend: exec.Native, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if eng.Backend() != exec.Native {
		t.Fatalf("backend = %q", eng.Backend())
	}
	vals := make([]int64, n)
	r := rng.New(4)
	for i := range vals {
		vals[i] = int64(r.Intn(1000)) - 500
	}
	queries := []lca.Query{{U: r.Intn(n), V: r.Intn(n)}, {U: r.Intn(n), V: r.Intn(n)}}
	edges := mincut.RandomGraph(tr, n/2, 9, rng.New(5))

	futTF := eng.SubmitTreefix(vals, treefix.Max)
	futTD := eng.SubmitTopDown(vals, treefix.Add)
	futLCA := eng.SubmitLCA(queries)
	futMC := eng.SubmitMinCut(edges)
	eng.Flush()

	wantTF := treefix.SequentialBottomUp(tr, vals, treefix.Max)
	wantTD := treefix.SequentialTopDown(tr, vals, treefix.Add)
	oracle := lca.NewOracle(tr)
	wantMC := mincut.OneRespectingSequential(tr, edges)

	resTF := futTF.Wait()
	resTD := futTD.Wait()
	resLCA := futLCA.Wait()
	resMC := futMC.Wait()
	for _, res := range []Result{resTF, resTD, resLCA, resMC} {
		if res.Err != nil {
			t.Fatal(res.Err)
		}
		if res.Cost != (Result{}.Cost) {
			t.Fatalf("native request reported model cost %+v", res.Cost)
		}
	}
	for v := 0; v < n; v++ {
		if resTF.Sums[v] != wantTF[v] || resTD.Sums[v] != wantTD[v] {
			t.Fatalf("vertex %d: treefix mismatch", v)
		}
	}
	for i, q := range queries {
		if resLCA.Answers[i] != oracle.LCA(q.U, q.V) {
			t.Fatalf("query %d: lca mismatch", i)
		}
	}
	if resMC.MinCut.MinWeight != wantMC.MinWeight {
		t.Fatalf("min-cut %d, want %d", resMC.MinCut.MinWeight, wantMC.MinWeight)
	}

	st := eng.Stats()
	if st.Cost.Energy != 0 || st.Cost.Messages != 0 {
		t.Fatalf("unmetered native engine accumulated cost %+v", st.Cost)
	}
	if st.Batches == 0 || st.Requests != 4 {
		t.Fatalf("stats: %+v", st)
	}

	// Expression evaluation via the native rake kernel.
	x := exprtree.Random(64, rng.New(6))
	xe, err := New(x.Tree, Options{Backend: exec.Native})
	if err != nil {
		t.Fatal(err)
	}
	res := xe.SubmitExpr(x).Wait()
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if want := x.EvalSequential()[x.Tree.Root()]; res.Value != want {
		t.Fatalf("expr %d, want %d", res.Value, want)
	}
}

// TestShadowMeter pins shadow sampling: with ShadowMeter=2, half the
// batches run through the sim shadow, model cost becomes observable,
// and — since both backends compute the same functions — zero
// mismatches are recorded.
func TestShadowMeter(t *testing.T) {
	tr := tree.RandomAttachment(128, rng.New(8))
	n := tr.N()
	eng, err := New(tr, Options{Backend: exec.Native, ShadowMeter: 2, Window: 4, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	vals := make([]int64, n)
	r := rng.New(9)
	for i := range vals {
		vals[i] = int64(r.Intn(100))
	}
	x := exprtree.Random((n+1)/2, rng.New(10))
	_ = x
	for batch := 0; batch < 4; batch++ {
		futs := []*Future{
			eng.SubmitTreefix(vals, treefix.Add),
			eng.SubmitTopDown(vals, treefix.Xor),
			eng.SubmitLCA([]lca.Query{{U: r.Intn(n), V: r.Intn(n)}}),
			eng.SubmitMinCut(mincut.RandomGraph(tr, 8, 5, rng.New(uint64(batch)))),
		}
		eng.Flush()
		for _, f := range futs {
			if res := f.Wait(); res.Err != nil {
				t.Fatal(res.Err)
			}
		}
	}
	st := eng.Stats()
	if st.Batches != 4 {
		t.Fatalf("batches = %d, want 4", st.Batches)
	}
	if st.ShadowBatches != 2 {
		t.Fatalf("shadow batches = %d, want 2 (1-in-2 of 4)", st.ShadowBatches)
	}
	if st.ShadowMismatches != 0 {
		t.Fatalf("shadow mismatches = %d: backends disagree", st.ShadowMismatches)
	}
	if st.Cost.Energy <= 0 || st.Cost.Depth <= 0 {
		t.Fatalf("shadow sampling recorded no model cost: %+v", st.Cost)
	}

	// A sim engine ignores the knob: no shadow accounting on top of full
	// metering.
	sim, err := New(tr, Options{Backend: exec.Sim, ShadowMeter: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res := sim.SubmitTreefix(vals, treefix.Add).Wait(); res.Err != nil {
		t.Fatal(res.Err)
	}
	if st := sim.Stats(); st.ShadowBatches != 0 {
		t.Fatalf("sim engine shadow batches = %d", st.ShadowBatches)
	}
}

// TestBackendErrors pins construction-time validation and the native
// typed-error path for malformed operators.
func TestBackendErrors(t *testing.T) {
	tr := tree.RandomAttachment(16, rng.New(11))
	if _, err := New(tr, Options{Backend: "warp"}); err == nil {
		t.Fatal("unknown backend accepted")
	}
	eng, err := New(tr, Options{Backend: exec.Native})
	if err != nil {
		t.Fatal(err)
	}
	res := eng.SubmitTreefix(make([]int64, tr.N()), treefix.Op{Name: "broken"}).Wait()
	if !errors.Is(res.Err, treefix.ErrUnsupportedOp) {
		t.Fatalf("broken op served: err = %v", res.Err)
	}
}

// TestPoolBackendSharding pins the pool key: the same tree on two
// backends is two shards; the same tree on one backend is one.
func TestPoolBackendSharding(t *testing.T) {
	tr := tree.RandomAttachment(64, rng.New(12))
	pool := NewPool(2, Options{Backend: exec.Native})
	a, err := pool.Engine(tr)
	if err != nil {
		t.Fatal(err)
	}
	b, err := pool.EngineBackend(tree.MustFromParents(tr.Parents()), exec.Native)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("same tree+backend produced distinct shards")
	}
	c, err := pool.EngineBackend(tr, exec.Sim)
	if err != nil {
		t.Fatal(err)
	}
	if c == a {
		t.Fatal("sim and native traffic share a shard")
	}
	if a.Backend() != exec.Native || c.Backend() != exec.Sim {
		t.Fatalf("shard backends: %q, %q", a.Backend(), c.Backend())
	}
	if pool.Size() != 2 {
		t.Fatalf("pool size = %d, want 2", pool.Size())
	}
	// The two shards share one placement build through the cache.
	if st := pool.Cache().Stats(); st.Builds != 1 {
		t.Fatalf("layout builds = %d, want 1 shared build", st.Builds)
	}
	// Dyn shards inherit or override the pool default.
	d1, err := pool.NewDynShard(tr, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if d1.Backend() != exec.Native {
		t.Fatalf("dyn default backend = %q", d1.Backend())
	}
	d2, err := pool.NewDynShardBackend(tree.MustFromParents(tr.Parents()), 0.2, exec.Sim)
	if err != nil {
		t.Fatal(err)
	}
	if d2.Backend() != exec.Sim {
		t.Fatalf("dyn explicit backend = %q", d2.Backend())
	}
}

// TestDynNativeBackend drives mutations through a native-backend
// DynEngine and checks the refreshed epochs keep serving correct
// results with zero model cost.
func TestDynNativeBackend(t *testing.T) {
	tr := tree.RandomAttachment(128, rng.New(13))
	de, err := NewDyn(tr, DynOptions{Options: Options{Backend: exec.Native, Seed: 2}, Epsilon: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(14)
	for i := 0; i < 20; i++ {
		if _, err := de.InsertLeaf(r.Intn(de.N())); err != nil {
			t.Fatal(err)
		}
		cur, err := de.Tree()
		if err != nil {
			t.Fatal(err)
		}
		vals := make([]int64, cur.N())
		for j := range vals {
			vals[j] = int64(r.Intn(50))
		}
		res := de.SubmitTreefix(vals, treefix.Add).Wait()
		if res.Err != nil {
			t.Fatal(res.Err)
		}
		want := treefix.SequentialBottomUp(cur, vals, treefix.Add)
		for v := range want {
			if res.Sums[v] != want[v] {
				t.Fatalf("mutation %d vertex %d: %d, want %d", i, v, res.Sums[v], want[v])
			}
		}
		qs := []lca.Query{{U: r.Intn(cur.N()), V: r.Intn(cur.N())}}
		lres := de.SubmitLCA(qs).Wait()
		if lres.Err != nil {
			t.Fatal(lres.Err)
		}
		if want := lca.NewOracle(cur).LCA(qs[0].U, qs[0].V); lres.Answers[0] != want {
			t.Fatalf("mutation %d: lca %d, want %d", i, lres.Answers[0], want)
		}
	}
	if st := de.Stats(); st.Engine.Cost.Energy != 0 {
		t.Fatalf("native dyn engine accumulated model cost: %+v", st.Engine.Cost)
	}
}
