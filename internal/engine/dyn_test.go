package engine

import (
	"strings"
	"testing"

	"spatialtree/internal/lca"
	"spatialtree/internal/mincut"
	"spatialtree/internal/rng"
	"spatialtree/internal/tree"
	"spatialtree/internal/treefix"
)

// mutate applies one random mutation to de (an insert, or a delete of a
// random leaf) and returns whether it succeeded.
func mutate(t *testing.T, de *DynEngine, r *rng.RNG) {
	t.Helper()
	if r.Intn(3) == 0 && de.N() > 2 {
		// Find a leaf to delete; renumbering keeps ids contiguous.
		for v := de.N() - 1; v > 0; v-- {
			if de.IsLeaf(v) {
				if _, err := de.DeleteLeaf(v); err != nil {
					t.Fatal(err)
				}
				return
			}
		}
	}
	if _, err := de.InsertLeaf(r.Intn(de.N())); err != nil {
		t.Fatal(err)
	}
}

// TestDynDifferential is the acceptance check of the mutable serving
// path: after every burst of random mutations, the DynEngine must return
// kernel results identical to a fresh static engine built from scratch
// on the post-mutation tree, across all request kinds.
func TestDynDifferential(t *testing.T) {
	r := rng.New(77)
	base := tree.RandomAttachment(180, r)
	de, err := NewDyn(base, DynOptions{Options: Options{Window: 64, Seed: 5}, Epsilon: 0.15})
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 8; round++ {
		for m := 0; m < 25; m++ {
			mutate(t, de, r)
		}
		cur, err := de.Tree()
		if err != nil {
			t.Fatal(err)
		}
		static, err := New(cur, Options{Window: 64, Seed: 5})
		if err != nil {
			t.Fatal(err)
		}

		n := cur.N()
		vals := make([]int64, n)
		for i := range vals {
			vals[i] = int64(r.Intn(1000)) - 500
		}
		queries := make([]lca.Query, 40)
		for i := range queries {
			queries[i] = lca.Query{U: r.Intn(n), V: r.Intn(n)}
		}
		edges := mincut.RandomGraph(cur, n/2, 10, rng.New(uint64(round)))

		type pair struct {
			name     string
			dyn, ref *Future
		}
		pairs := []pair{
			{"treefix", de.SubmitTreefix(vals, treefix.Add), static.SubmitTreefix(vals, treefix.Add)},
			{"topdown", de.SubmitTopDown(vals, treefix.Max), static.SubmitTopDown(vals, treefix.Max)},
			{"lca", de.SubmitLCA(queries), static.SubmitLCA(queries)},
			{"mincut", de.SubmitMinCut(edges), static.SubmitMinCut(edges)},
		}
		for _, p := range pairs {
			got, want := p.dyn.Wait(), p.ref.Wait()
			if got.Err != nil || want.Err != nil {
				t.Fatalf("round %d %s: errs %v / %v", round, p.name, got.Err, want.Err)
			}
			switch p.name {
			case "treefix", "topdown":
				for v := range want.Sums {
					if got.Sums[v] != want.Sums[v] {
						t.Fatalf("round %d %s: sum[%d] = %d, want %d", round, p.name, v, got.Sums[v], want.Sums[v])
					}
				}
			case "lca":
				for i := range want.Answers {
					if got.Answers[i] != want.Answers[i] {
						t.Fatalf("round %d lca: answer[%d] = %d, want %d", round, i, got.Answers[i], want.Answers[i])
					}
				}
			case "mincut":
				if got.MinCut.MinWeight != want.MinCut.MinWeight {
					t.Fatalf("round %d mincut: weight %d, want %d", round, got.MinCut.MinWeight, want.MinCut.MinWeight)
				}
			}
		}
	}
	st := de.Stats()
	if st.Epoch != 200 || st.Inserts+st.Deletes != 200 {
		t.Fatalf("epoch %d inserts %d deletes %d after 200 mutations", st.Epoch, st.Inserts, st.Deletes)
	}
	if st.Refreshes == 0 || st.Engine.Batches == 0 {
		t.Fatalf("no refreshes (%d) or batches (%d) recorded", st.Refreshes, st.Engine.Batches)
	}
}

// TestDynMutationDrainsPending asserts the documented ordering: futures
// submitted before a mutation resolve (against the pre-mutation tree)
// before the mutation is applied.
func TestDynMutationDrainsPending(t *testing.T) {
	tr := tree.RandomAttachment(64, rng.New(1))
	de, err := NewDyn(tr, DynOptions{Options: Options{Window: 1000}})
	if err != nil {
		t.Fatal(err)
	}
	vals := make([]int64, 64)
	for i := range vals {
		vals[i] = 1
	}
	fut := de.SubmitTreefix(vals, treefix.Add)
	if fut.Done() {
		t.Fatal("future resolved before any flush")
	}
	if _, err := de.InsertLeaf(0); err != nil {
		t.Fatal(err)
	}
	if !fut.Done() {
		t.Fatal("mutation did not drain the pending batch")
	}
	res := fut.Wait()
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if len(res.Sums) != 64 {
		t.Fatalf("pre-mutation request saw %d vertices, want 64", len(res.Sums))
	}
	if res.Sums[tr.Root()] != 64 {
		t.Fatalf("root sum %d on the pre-mutation tree, want 64", res.Sums[tr.Root()])
	}
	// The next request serves the mutated tree: old-length vals are now
	// rejected, new-length vals succeed.
	if res := de.SubmitTreefix(vals, treefix.Add).Wait(); res.Err == nil {
		t.Fatal("stale-length vals accepted after mutation")
	}
	vals = append(vals, 1)
	if res := de.SubmitTreefix(vals, treefix.Add).Wait(); res.Err != nil || res.Sums[tr.Root()] != 65 {
		t.Fatalf("post-mutation treefix: err=%v root sum=%v, want 65", res.Err, res.Sums[tr.Root()])
	}
}

// TestDynEpochKeysCache asserts the versioning scheme: placements are
// published under keys with the engine id and epoch folded in, every
// refresh invalidates the superseded entry (so a stale placement can
// never be served, even when a mutation sequence returns to a
// structurally identical tree), and fresh entries appear only at
// rebuild boundaries — dyn entries never churn the shared LRU.
func TestDynEpochKeysCache(t *testing.T) {
	cache := NewLayoutCache(8)
	tr := tree.RandomAttachment(50, rng.New(2))
	de, err := NewDyn(tr, DynOptions{Options: Options{Cache: cache}})
	if err != nil {
		t.Fatal(err)
	}
	key0 := de.CacheKey()
	if !strings.HasPrefix(key0.Order, "dyn@") {
		t.Fatalf("cache key order %q does not carry the epoch", key0.Order)
	}
	if _, ok := cache.Get(key0); !ok {
		t.Fatal("construction placement not published")
	}

	// Insert a leaf and delete it again: the parent array (and hence the
	// structural fingerprint) returns to its original value, but the
	// epoch advanced by 2 — the construction entry must not survive the
	// next refresh, or its stale parked positions could be mistaken for
	// current ones.
	v, err := de.InsertLeaf(0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := de.DeleteLeaf(v); err != nil {
		t.Fatal(err)
	}
	if res := de.SubmitLCA([]lca.Query{{U: 1, V: 2}}).Wait(); res.Err != nil {
		t.Fatal(res.Err)
	}
	if _, ok := cache.Get(key0); ok {
		t.Fatal("stale construction placement still served from the cache")
	}
	if de.Epoch() != 2 {
		t.Fatalf("epoch = %d, want 2", de.Epoch())
	}

	// Mutate past the drift budget (ε=0.2 of n≈50) to force a dynlayout
	// rebuild: the next refresh publishes a fresh entry under the new
	// epoch's key.
	for i := 0; i < 15; i++ {
		if _, err := de.InsertLeaf(0); err != nil {
			t.Fatal(err)
		}
	}
	if res := de.SubmitLCA([]lca.Query{{U: 1, V: 2}}).Wait(); res.Err != nil {
		t.Fatal(res.Err)
	}
	st := de.Stats()
	if st.Rebuilds == 0 {
		t.Fatal("expected a dynlayout rebuild past the drift budget")
	}
	keyR := de.CacheKey()
	if keyR == key0 {
		t.Fatal("rebuild did not republish under a fresh key")
	}
	if !strings.HasPrefix(keyR.Order, "dyn@") {
		t.Fatalf("rebuild key order %q", keyR.Order)
	}
	if _, ok := cache.Get(keyR); !ok {
		t.Fatal("rebuild placement not published")
	}
}

// TestDynLazyRefresh asserts mutations are O(1) on the serving side:
// a burst of mutations with no queries in between triggers at most one
// placement refresh, on the next submission.
func TestDynLazyRefresh(t *testing.T) {
	de, err := NewDyn(tree.RandomAttachment(100, rng.New(3)), DynOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if r := de.Stats().Refreshes; r != 1 {
		t.Fatalf("refreshes after construction = %d, want 1", r)
	}
	for i := 0; i < 30; i++ {
		if _, err := de.InsertLeaf(0); err != nil {
			t.Fatal(err)
		}
	}
	if r := de.Stats().Refreshes; r != 1 {
		t.Fatalf("refreshes after idle mutations = %d, want still 1", r)
	}
	if res := de.SubmitLCA([]lca.Query{{U: 0, V: 1}}).Wait(); res.Err != nil {
		t.Fatal(res.Err)
	}
	if r := de.Stats().Refreshes; r != 2 {
		t.Fatalf("refreshes after first post-mutation submit = %d, want 2", r)
	}
}

// TestDynInvalidInputs asserts user errors surface as errors, not
// panics, through the mutable engine.
func TestDynInvalidInputs(t *testing.T) {
	de, err := NewDyn(tree.Path(8), DynOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := de.InsertLeaf(-1); err == nil {
		t.Error("negative parent accepted")
	}
	if _, err := de.InsertLeaf(99); err == nil {
		t.Error("out-of-range parent accepted")
	}
	if _, err := de.DeleteLeaf(3); err == nil {
		t.Error("deleting an internal vertex accepted")
	}
	if _, err := de.DeleteLeaf(0); err == nil {
		t.Error("deleting the root accepted")
	}
	if res := de.SubmitTreefix(make([]int64, 3), treefix.Add).Wait(); res.Err == nil {
		t.Error("short vals accepted")
	}
	if res := de.SubmitLCA([]lca.Query{{U: -1, V: 0}}).Wait(); res.Err == nil {
		t.Error("out-of-range LCA query accepted")
	}
	if _, err := NewDyn(tree.MustFromParents(nil), DynOptions{}); err == nil {
		t.Error("empty tree accepted")
	}
	if _, err := NewDyn(tree.Path(4), DynOptions{Options: Options{Curve: "nope"}}); err == nil {
		t.Error("unknown curve accepted")
	}
}

// TestPoolDynShards asserts mutable shards are routed by identity and
// folded into FlushAll and Stats.
func TestPoolDynShards(t *testing.T) {
	pool := NewPool(2, Options{Window: 1000})
	tr := tree.RandomAttachment(60, rng.New(4))
	d1, err := pool.NewDynShard(tr, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	// Same structure, second shard: identity routing means a distinct
	// engine (unlike Pool.Engine, which would share by fingerprint).
	d2, err := pool.NewDynShard(tree.MustFromParents(tr.Parents()), 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if d1 == d2 {
		t.Fatal("dyn shards deduplicated by structure")
	}
	// Identity also separates their cache keys: structurally identical
	// shards at the same epoch must not clobber each other's entries.
	if d1.CacheKey() == d2.CacheKey() {
		t.Fatal("dyn shards share a cache key")
	}
	if pool.Size() != 2 {
		t.Fatalf("pool size %d, want 2", pool.Size())
	}
	if _, err := d1.InsertLeaf(0); err != nil {
		t.Fatal(err)
	}
	futs := []*Future{
		d1.SubmitLCA([]lca.Query{{U: 0, V: 1}}),
		d2.SubmitLCA([]lca.Query{{U: 0, V: 1}}),
	}
	pool.FlushAll()
	for _, f := range futs {
		if !f.Done() {
			t.Fatal("FlushAll left a dyn shard's future pending")
		}
		if res := f.Wait(); res.Err != nil {
			t.Fatal(res.Err)
		}
	}
	st := pool.Stats()
	if st.Requests != 2 || st.Batches != 2 {
		t.Fatalf("pool stats requests=%d batches=%d, want 2/2", st.Requests, st.Batches)
	}
}
