// Package engine serves the repository's batch kernels — bottom-up and
// top-down treefix sums under any Op, batched LCA, 1-respecting minimum
// cuts, and expression evaluation — from a long-lived, concurrency-safe
// SpatialEngine that amortizes layout construction across requests, the
// way the paper amortizes preprocessing across iterations (Section I-D)
// and dual-tree libraries amortize one built index across all lookups.
//
// # Usage
//
//	eng, _ := engine.New(t, engine.Options{Curve: "hilbert", Window: 16})
//	futA := eng.SubmitTreefix(valsA, treefix.Add) // queued, returns at once
//	futB := eng.SubmitLCA(queries)                // queued with futA
//	resB := futB.Wait()                           // flushes, then blocks
//	resA := futA.Wait()                           // already resolved
//
// # Batching semantics
//
// Submit* methods enqueue a request and return a Future without running
// any simulator work — except that the submission which fills the
// window (see below) flushes inline, so that Submit call returns only
// after the whole batch has run. A pending batch is executed
// ("flushed") when any of the following happens:
//
//   - the number of pending requests reaches Options.Window (the
//     filling submitter runs the batch on its own goroutine);
//   - the autoflush deadline expires (see below);
//   - a caller invokes Flush explicitly;
//   - a caller invokes Future.Wait on an unresolved future (Wait flushes
//     the engine so that waiting can never deadlock).
//
// # Autoflush scheduler
//
// StartAutoFlush (or Options.FlushDelay at construction) arms a
// background batch scheduler with two triggers: a batch is dispatched
// when it reaches maxBatch pending requests (the Window mechanism) or
// when its oldest request has waited maxDelay, whichever comes first.
// Under the scheduler, explicit Flush becomes optional: Future.Wait no
// longer forces an early flush — it simply blocks, because the deadline
// guarantees progress — so concurrently submitted requests keep
// coalescing into shared runs even while every submitter is already
// waiting. This adapts batch size to the arrival rate: under heavy
// traffic batches fill to maxBatch and the deadline never fires; under
// trickle traffic the deadline bounds latency at maxDelay.
// Stats.SizeFlushes and Stats.DeadlineFlushes count how often each
// trigger dispatched a batch.
//
// # Execution backends
//
// All requests of one flush run against a single execution-backend run
// (internal/exec) sharing the engine's placement, so per-run setup is
// paid once per batch instead of once per call. Options.Backend picks
// the backend: "sim" (the default here — the spatial-computer simulator
// with exact model-cost accounting, the metering and validation path)
// or "native" (goroutine-parallel kernels with zero simulator
// bookkeeping — the serving default in internal/server, typically an
// order of magnitude faster on wall clock). Both backends produce
// identical results; only the cost accounting differs. A native engine
// can additionally arm shadow metering (Options.ShadowMeter): every
// N-th batch also runs through a sim backend whose results are compared
// against the served ones (Stats.ShadowMismatches) and whose model cost
// feeds Stats.Cost, so sampled Energy/Depth stay observable without
// paying instrumentation on every batch.
//
// LCA requests in the same batch are additionally coalesced: their
// query slices are concatenated into one batched run (whose fixed cost
// — two treefix sums and the cover sweep — is independent of the query
// count) and the answers are demultiplexed back to the individual
// futures.
//
// # Blocking
//
// Flush blocks the calling goroutine until every request it picked up
// has resolved; submissions racing with a Flush land in the next batch.
// Future.Wait blocks until its own batch has run, triggering a flush if
// the batch is still pending. Concurrent Flush calls run disjoint
// batches in parallel on independent simulators.
//
// # Layout cache
//
// Placements are obtained from a LayoutCache keyed by (tree fingerprint,
// curve, order) — see Fingerprint. Engines created with a shared cache
// (directly via Options.Cache or through a Pool) skip the O(n log n)
// light-first pipeline whenever any engine has already laid out a
// structurally identical tree on the same curve. CacheStats reports
// hits, misses and evictions; Stats folds them into EngineStats.
package engine

import (
	"errors"
	"fmt"
	"slices"
	"sync"
	"sync/atomic"
	"time"

	"spatialtree/internal/exec"
	"spatialtree/internal/exprtree"
	"spatialtree/internal/layout"
	"spatialtree/internal/lca"
	"spatialtree/internal/machine"
	"spatialtree/internal/mincut"
	"spatialtree/internal/sfc"
	"spatialtree/internal/tree"
	"spatialtree/internal/treefix"
)

// Options configures an Engine.
type Options struct {
	// Curve names the space-filling curve of the placement ("" means
	// "hilbert").
	Curve string
	// Window is the pending-request count that triggers an automatic
	// flush (<= 0 means DefaultWindow).
	Window int
	// Seed drives the Las Vegas coins of the simulator runs; batches are
	// deterministic given (Seed, batch index).
	Seed uint64
	// Cache supplies the layout cache; nil means a fresh private cache
	// of DefaultCacheCapacity placements. Share one cache across engines
	// to amortize layouts across trees and engine lifetimes.
	Cache *LayoutCache
	// FlushDelay, when positive, arms the background autoflush
	// scheduler at construction, as if StartAutoFlush(Window, FlushDelay)
	// had been called: a pending batch is dispatched once its oldest
	// request has waited FlushDelay, even if nothing fills the window.
	// Zero leaves the scheduler off (explicit Flush/Wait semantics).
	FlushDelay time.Duration
	// Backend names the execution backend batches run on: exec.Sim
	// ("sim", exact model-cost metering — the default here) or
	// exec.Native ("native", goroutine-parallel kernels, no simulator
	// bookkeeping — the serving layer's default). See the package
	// documentation's "Execution backends" section.
	Backend string
	// ShadowMeter, when positive on a non-sim engine, shadow-runs every
	// ShadowMeter-th batch through a sim backend as well: served results
	// are validated against it (Stats.ShadowMismatches) and the shadow
	// run's model cost accumulates into Stats.Cost. Sampled batches pay
	// the simulator's wall-clock price — that is the sampling trade-off.
	// Ignored on sim engines, where every batch is already metered.
	ShadowMeter int
}

// DefaultWindow is the automatic-flush threshold used when
// Options.Window is not positive.
const DefaultWindow = 64

// DefaultFlushDelay is the deadline used by StartAutoFlush when its
// maxDelay argument is not positive.
const DefaultFlushDelay = 2 * time.Millisecond

// Stats is a snapshot of an engine's lifetime counters.
type Stats struct {
	// Batches counts simulator runs (flushes that had work).
	Batches uint64
	// Requests counts resolved submissions.
	Requests uint64
	// LCAQueries counts individual LCA queries answered.
	LCAQueries uint64
	// LCARuns counts coalesced lca.Batched invocations; LCARuns <
	// number of LCA requests means coalescing saved whole runs.
	LCARuns uint64
	// SizeFlushes counts batches dispatched because the pending count
	// reached the window (the scheduler's MaxBatch trigger).
	SizeFlushes uint64
	// DeadlineFlushes counts batches dispatched by the autoflusher's
	// MaxDelay deadline. Batches - SizeFlushes - DeadlineFlushes is the
	// number of explicit flushes (Flush, Wait, StopAutoFlush) that had
	// work.
	DeadlineFlushes uint64
	// ShadowBatches counts batches a non-sim engine additionally ran
	// through the shadow sim backend (Options.ShadowMeter sampling).
	ShadowBatches uint64
	// ShadowMismatches counts requests whose shadow-run result differed
	// from the served one. Always zero unless a backend is wrong: the
	// backends compute the same functions.
	ShadowMismatches uint64
	// Cost accumulates the exact spatial-model cost over batches that
	// ran on (or were shadow-sampled through) the simulator: every batch
	// for a sim engine, the ShadowBatches for a shadow-metered native
	// one, nothing for an unmetered native engine. Depths add as if the
	// metered batches ran back to back.
	Cost machine.Cost
	// Cache is the layout cache's traffic (shared counters if the cache
	// is shared).
	Cache CacheStats
}

// Add folds another engine's counters into s. Cost components sum via
// machine.Cost.Plus; the Cache field is left untouched, because cache
// counters live on the (usually shared) cache itself.
func (s *Stats) Add(o Stats) {
	s.Batches += o.Batches
	s.Requests += o.Requests
	s.LCAQueries += o.LCAQueries
	s.LCARuns += o.LCARuns
	s.SizeFlushes += o.SizeFlushes
	s.DeadlineFlushes += o.DeadlineFlushes
	s.ShadowBatches += o.ShadowBatches
	s.ShadowMismatches += o.ShadowMismatches
	s.Cost = s.Cost.Plus(o.Cost)
}

// BatchProfile describes one dispatched batch to an installed profile
// observer: the request mix, the serving run's wall-clock, and — when
// the batch was model-metered (every batch on a sim engine, the sampled
// batches on a shadow-metered native one) — the exact spatial-model
// cost. The tuning layer (internal/tune) folds these into per-shard
// workload profiles; the engine itself never interprets them.
type BatchProfile struct {
	// Requests is the batch size; the per-kind counts below sum to it.
	Requests int
	// BottomUp, TopDown, LCA, MinCut and Expr count requests by kind.
	BottomUp, TopDown, LCA, MinCut, Expr int
	// LCAQueries counts individual queries inside the batch's coalesced
	// LCA run.
	LCAQueries int
	// Elapsed is the serving run's wall-clock (excluding any shadow run).
	Elapsed time.Duration
	// Metered reports that Cost holds a real model-cost sample.
	Metered bool
	// Cost is the spatial-model cost of the metered run: the serving
	// run's own cost on a sim engine, the shadow run's on a sampled
	// native batch, zero otherwise.
	Cost machine.Cost
	// Mismatches counts shadow-validation failures in this batch.
	Mismatches uint64
}

// ProfileFunc observes dispatched batches. It is invoked after the
// batch's futures have resolved and its stats are recorded, outside any
// engine lock, from the goroutine that ran the batch — implementations
// must be safe for concurrent calls and should return quickly.
type ProfileFunc func(BatchProfile)

// Result is the outcome of one submitted request. Exactly the fields
// relevant to the request kind are populated.
type Result struct {
	// Sums holds treefix outputs (bottom-up or top-down).
	Sums []int64
	// Answers holds LCA answers, one per submitted query.
	Answers []int
	// MinCut holds the 1-respecting minimum-cut result.
	MinCut mincut.Result
	// Value holds the expression value.
	Value int64
	// Cost is the spatial-model cost attributed to this request: its
	// incremental share of the batch's metered run (identically zero on
	// an unmetered native engine). Coalesced LCA requests report a
	// per-query-proportional share of their shared run's Energy and
	// Messages — shares sum exactly to the run's totals, so summing
	// per-request costs never over-counts — and the full run Depth (the
	// critical path is genuinely shared, not divisible).
	Cost machine.Cost
	// Err reports validation or execution failure.
	Err error
}

// Future is the pending result of a submitted request.
type Future struct {
	e    *Engine
	done chan struct{}
	res  Result
}

// Done reports whether the result is available without blocking.
func (f *Future) Done() bool {
	select {
	case <-f.done:
		return true
	default:
		return false
	}
}

// Wait returns the result, flushing the engine first if this request's
// batch has not run yet (so Wait never deadlocks on an idle engine).
// When the engine's autoflush scheduler is armed, Wait does not flush —
// it just blocks, because the deadline guarantees progress and an eager
// flush here would defeat the scheduler's coalescing.
func (f *Future) Wait() Result {
	if !f.Done() {
		if f.e != nil && !f.e.scheduled() {
			f.e.Flush()
		}
		<-f.done
	}
	return f.res
}

func (f *Future) resolve(res Result) {
	f.res = res
	close(f.done)
}

// ErrInvalid marks request-validation failures: the submission itself
// was malformed (wrong vals length, out-of-range query, mismatched
// expression tree). Callers serving remote clients branch on it with
// errors.Is to separate client faults (HTTP 400) from engine-side
// failures (HTTP 500). Matching errors keep their original, specific
// messages — ErrInvalid is a classification, not a message.
var ErrInvalid = errors.New("engine: invalid request")

// invalidError classifies an error as ErrInvalid without changing its
// message (tests and clients rely on the exact validation text).
type invalidError struct{ error }

func (invalidError) Is(target error) bool { return target == ErrInvalid }

// invalid wraps a validation error so errors.Is(err, ErrInvalid) holds.
func invalid(err error) error { return invalidError{err} }

type kind uint8

const (
	kindBottomUp kind = iota
	kindTopDown
	kindLCA
	kindMinCut
	kindExpr
)

type request struct {
	kind    kind
	op      treefix.Op
	vals    []int64
	queries []lca.Query
	edges   []mincut.Edge
	expr    *exprtree.Expr
	fut     *Future
}

// Request structs and batch slices are pooled: the serving hot path
// submits thousands of short-lived requests per second, and their
// headers were the engine's dominant steady-state allocation. A request
// is recycled only at the very end of runBatch — after its future has
// resolved AND any shadow run has re-read its inputs — so no live
// reference survives the Put. The caller-owned payload slices (vals,
// queries, edges) are only unreferenced, never reused; on
// shadow-sampled batches they are swapped for engine-owned copies
// before any future resolves (copyShadowInputs), so a caller may reuse
// its buffers the moment its future resolves.
var requestPool = sync.Pool{New: func() any { return new(request) }}

func newRequest() *request { return requestPool.Get().(*request) }

// batchPool recycles the pending-batch slices detached by
// takeBatchLocked.
var batchPool = sync.Pool{New: func() any {
	s := make([]*request, 0, DefaultWindow)
	return &s
}}

// recycleBatch returns a finished batch's requests and backing slice to
// their pools; the batch must have no live references (futures resolved,
// shadow run complete).
func recycleBatch(batch []*request) {
	for i, req := range batch {
		*req = request{}
		requestPool.Put(req)
		batch[i] = nil
	}
	batch = batch[:0]
	batchPool.Put(&batch)
}

// Engine is a concurrency-safe batch server for one tree: it owns the
// tree and its light-first placement and coalesces submitted requests
// into shared simulator runs. See the package documentation for the
// batching semantics. The zero value is not usable; construct with New.
type Engine struct {
	t      *tree.Tree
	fp     uint64
	p      *layout.Placement
	window int
	seed   uint64
	cache  *LayoutCache

	// backend executes batches; shadow (nil unless shadow metering is
	// armed) is the sim backend that samples every shadowN-th batch of a
	// non-sim engine for model cost and result validation.
	backendName string
	backend     exec.Backend
	shadow      exec.Backend
	shadowN     int
	// shadowTick counts dispatched non-empty batches; every shadowN-th
	// one is shadow-sampled. A dedicated counter, not batchSeq: empty
	// flushes burn sequence numbers, which would skew the sampling rate.
	shadowTick atomic.Uint64

	// profileFn, when non-nil, observes every dispatched batch (see
	// ProfileFunc). Atomic so SetProfile never races runBatch.
	profileFn atomic.Pointer[ProfileFunc]

	// Order-dependent kernels (batched LCA and min-cut) require a dense
	// light-first rank — their correctness depends on subtrees being
	// contiguous ranges, which a dynamic layout's parked placement does
	// not guarantee. orderRankFn supplies that rank lazily on first
	// need; when nil the placement's own order is used (the static
	// case, where they coincide).
	orderRankFn func() []int
	orderOnce   sync.Once
	orderRanks  []int

	mu       sync.Mutex
	pending  []*request
	batchSeq uint64
	stats    Stats
	// running counts detached batches whose runBatch has not finished;
	// idle (on mu) is broadcast when it returns to zero. Quiesce waits
	// on it so callers can observe a moment with no simulator work in
	// flight — not just no pending requests.
	running int
	idle    sync.Cond
	// Autoflush scheduler state, all under mu. afDelay > 0 means the
	// scheduler is armed; afTimer is non-nil exactly while a pending
	// batch awaits its deadline.
	afDelay time.Duration
	afTimer *time.Timer
}

// New builds an engine for t. The placement comes from the layout cache
// (opts.Cache or a fresh private one), so constructing an engine for an
// already-seen tree×curve costs O(n) for the fingerprint instead of the
// full O(n log n) layout pipeline.
func New(t *tree.Tree, opts Options) (*Engine, error) {
	name := opts.Curve
	if name == "" {
		name = "hilbert"
	}
	c, err := sfc.ByName(name)
	if err != nil {
		return nil, err
	}
	cache := opts.Cache
	if cache == nil {
		cache = NewLayoutCache(DefaultCacheCapacity)
	}
	window := opts.Window
	if window <= 0 {
		window = DefaultWindow
	}
	fp := Fingerprint(t)
	e := &Engine{
		t:      t,
		fp:     fp,
		p:      cache.GetOrBuild(t, fp, c),
		window: window,
		seed:   opts.Seed,
		cache:  cache,
	}
	if opts.FlushDelay > 0 {
		e.afDelay = opts.FlushDelay
	}
	e.idle.L = &e.mu
	if err := e.initBackend(opts); err != nil {
		return nil, err
	}
	return e, nil
}

// initBackend resolves Options.Backend, builds the execution backend on
// the engine's placement, and arms shadow metering when requested. It
// must run after the placement and orderRank machinery are in place.
func (e *Engine) initBackend(opts Options) error {
	e.backendName = exec.Normalize(opts.Backend)
	cfg := exec.Config{Tree: e.t, Placement: e.p, OrderRank: e.orderRank}
	be, err := exec.New(e.backendName, cfg)
	if err != nil {
		return err
	}
	e.backend = be
	if opts.ShadowMeter > 0 && e.backendName != exec.Sim {
		sh, err := exec.New(exec.Sim, cfg)
		if err != nil {
			return err
		}
		e.shadow = sh
		e.shadowN = opts.ShadowMeter
	}
	return nil
}

// Backend returns the engine's resolved execution-backend name.
func (e *Engine) Backend() string { return e.backendName }

// SetProfile installs (or, with nil, removes) the batch profile
// observer. Safe to call concurrently with serving.
func (e *Engine) SetProfile(fn ProfileFunc) {
	if fn == nil {
		e.profileFn.Store(nil)
		return
	}
	e.profileFn.Store(&fn)
}

// newWithPlacement builds an engine serving t on an explicit placement
// (p.Tree must be t) instead of a cached light-first one. This is the
// constructor DynEngine uses: a dynamic layout's placement holds parked,
// spread-out positions that no cache key describes. Callers whose
// placement is not a light-first order must also set orderRankFn, or
// LCA and min-cut results are undefined. opts.Curve is ignored — the
// placement's curve governs; opts.Cache only feeds the Stats snapshot
// (nil means a fresh private cache, as in New).
func newWithPlacement(t *tree.Tree, p *layout.Placement, opts Options) (*Engine, error) {
	if p == nil || p.Tree != t {
		return nil, fmt.Errorf("engine: placement was not built for this tree")
	}
	cache := opts.Cache
	if cache == nil {
		cache = NewLayoutCache(DefaultCacheCapacity)
	}
	window := opts.Window
	if window <= 0 {
		window = DefaultWindow
	}
	e := &Engine{
		t:      t,
		fp:     Fingerprint(t),
		p:      p,
		window: window,
		seed:   opts.Seed,
		cache:  cache,
	}
	if opts.FlushDelay > 0 {
		e.afDelay = opts.FlushDelay
	}
	e.idle.L = &e.mu
	if err := e.initBackend(opts); err != nil {
		return nil, err
	}
	return e, nil
}

// Tree returns the engine's tree.
func (e *Engine) Tree() *tree.Tree { return e.t }

// Placement returns the engine's (cached) placement.
func (e *Engine) Placement() *layout.Placement { return e.p }

// Fingerprint returns the structural fingerprint of the engine's tree.
func (e *Engine) Fingerprint() uint64 { return e.fp }

// orderRank returns the dense light-first rank the order-dependent
// kernels run on, computing it at most once per engine.
func (e *Engine) orderRank() []int {
	e.orderOnce.Do(func() {
		if e.orderRankFn != nil {
			e.orderRanks = e.orderRankFn()
		} else {
			e.orderRanks = e.p.Order.Rank
		}
	})
	return e.orderRanks
}

// Stats returns a snapshot of the engine counters plus the layout
// cache's.
func (e *Engine) Stats() Stats {
	e.mu.Lock()
	st := e.stats
	e.mu.Unlock()
	st.Cache = e.cache.Stats()
	return st
}

// Pending returns the number of queued, unflushed requests.
func (e *Engine) Pending() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.pending)
}

// failedFuture returns an already-resolved future carrying err. Its
// engine pointer may be nil: Wait sees a closed done channel and never
// dereferences it.
func failedFuture(err error) *Future {
	f := &Future{done: make(chan struct{})}
	f.resolve(Result{Err: err})
	return f
}

// failed returns an already-resolved future carrying err.
func (e *Engine) failed(err error) *Future {
	f := failedFuture(err)
	f.e = e
	return f
}

// SubmitTreefix enqueues a bottom-up treefix sum of vals under op (the
// fold over every subtree). vals must have one entry per vertex and must
// not be mutated until the future resolves.
//
//spatialvet:errclass
func (e *Engine) SubmitTreefix(vals []int64, op treefix.Op) *Future {
	if len(vals) != e.t.N() {
		return e.failed(invalid(fmt.Errorf("engine: treefix vals has %d entries for %d vertices", len(vals), e.t.N())))
	}
	req := newRequest()
	req.kind, req.op, req.vals = kindBottomUp, op, vals
	return e.submit(req)
}

// SubmitTopDown enqueues a top-down treefix sum of vals under op (the
// fold along every root path).
//
//spatialvet:errclass
func (e *Engine) SubmitTopDown(vals []int64, op treefix.Op) *Future {
	if len(vals) != e.t.N() {
		return e.failed(invalid(fmt.Errorf("engine: treefix vals has %d entries for %d vertices", len(vals), e.t.N())))
	}
	req := newRequest()
	req.kind, req.op, req.vals = kindTopDown, op, vals
	return e.submit(req)
}

// SubmitLCA enqueues a batch of LCA queries. All LCA requests flushed
// together are coalesced into a single spatial run; answers come back in
// query order.
//
//spatialvet:errclass
func (e *Engine) SubmitLCA(queries []lca.Query) *Future {
	n := e.t.N()
	for i, q := range queries {
		if q.U < 0 || q.U >= n || q.V < 0 || q.V >= n {
			return e.failed(invalid(fmt.Errorf("engine: LCA query %d out of range: %+v", i, q)))
		}
	}
	req := newRequest()
	req.kind, req.queries = kindLCA, queries
	return e.submit(req)
}

// SubmitMinCut enqueues a 1-respecting minimum-cut computation of the
// given graph edges against the engine's tree.
//
//spatialvet:errclass
func (e *Engine) SubmitMinCut(edges []mincut.Edge) *Future {
	req := newRequest()
	req.kind, req.edges = kindMinCut, edges
	return e.submit(req)
}

// SubmitExpr enqueues evaluation of an expression whose tree is
// structurally identical to the engine's (same parent array), so the
// engine's placement is valid for it.
//
//spatialvet:errclass
func (e *Engine) SubmitExpr(x *exprtree.Expr) *Future {
	if x.Tree != e.t && !slices.Equal(x.Tree.Parents(), e.t.Parents()) {
		return e.failed(invalid(fmt.Errorf("engine: expression tree does not match engine tree")))
	}
	if err := x.Validate(); err != nil {
		return e.failed(invalid(err))
	}
	req := newRequest()
	req.kind, req.expr = kindExpr, x
	return e.submit(req)
}

func (e *Engine) submit(req *request) *Future {
	fut := &Future{e: e, done: make(chan struct{})}
	req.fut = fut
	var batch []*request
	var seq uint64
	e.mu.Lock()
	if e.pending == nil {
		//spatialvet:ignore poolescape -- pending is the batch accumulator by design; takeBatchLocked nils the field before recycleBatch returns the slice
		e.pending = *batchPool.Get().(*[]*request)
	}
	e.pending = append(e.pending, req)
	if len(e.pending) >= e.window {
		batch, seq = e.takeBatchLocked()
		e.stats.SizeFlushes++
	} else if e.afDelay > 0 && e.afTimer == nil {
		e.armTimerLocked()
	}
	e.mu.Unlock()
	if batch != nil {
		e.runBatch(batch, seq)
	}
	return fut
}

// takeBatchLocked detaches the pending batch and disarms the autoflush
// timer, if any; e.mu must be held. A non-empty batch is counted as
// running until runBatch retires it — every non-empty take must be
// followed by exactly one runBatch call.
func (e *Engine) takeBatchLocked() ([]*request, uint64) {
	if e.afTimer != nil {
		e.afTimer.Stop()
		e.afTimer = nil
	}
	batch := e.pending
	e.pending = nil
	seq := e.batchSeq
	e.batchSeq++
	if len(batch) > 0 {
		e.running++
	}
	return batch, seq
}

// armTimerLocked schedules a deadline flush for the batch currently
// accumulating (sequence e.batchSeq); e.mu must be held. The sequence
// guard in flushDeadline makes a stale timer — one whose batch was
// already taken by a size trigger or an explicit Flush — a no-op
// instead of an early flush of the next batch.
func (e *Engine) armTimerLocked() {
	seq := e.batchSeq
	e.afTimer = time.AfterFunc(e.afDelay, func() { e.flushDeadline(seq) })
}

// flushDeadline runs the batch with the given sequence if it is still
// pending; it is the autoflush timer's fire path.
func (e *Engine) flushDeadline(seq uint64) {
	e.mu.Lock()
	if e.batchSeq != seq || len(e.pending) == 0 {
		e.mu.Unlock()
		return
	}
	batch, s := e.takeBatchLocked()
	e.stats.DeadlineFlushes++
	e.mu.Unlock()
	e.runBatch(batch, s)
}

// scheduled reports whether the autoflush scheduler is armed.
func (e *Engine) scheduled() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.afDelay > 0
}

// StartAutoFlush arms the background batch scheduler: a pending batch
// is dispatched when it reaches maxBatch requests (maxBatch > 0 replaces
// the engine's window) or when its oldest request has waited maxDelay
// (<= 0 means DefaultFlushDelay), whichever comes first. With the
// scheduler armed, explicit Flush becomes optional and Future.Wait no
// longer forces an early flush. Restarting an armed scheduler just
// updates the parameters; requests already pending are rescheduled
// under them.
func (e *Engine) StartAutoFlush(maxBatch int, maxDelay time.Duration) {
	if maxDelay <= 0 {
		maxDelay = DefaultFlushDelay
	}
	var batch []*request
	var seq uint64
	e.mu.Lock()
	if maxBatch > 0 {
		e.window = maxBatch
	}
	e.afDelay = maxDelay
	if e.afTimer != nil {
		e.afTimer.Stop()
		e.afTimer = nil
	}
	if len(e.pending) >= e.window {
		batch, seq = e.takeBatchLocked()
		e.stats.SizeFlushes++
	} else if len(e.pending) > 0 {
		e.armTimerLocked()
	}
	e.mu.Unlock()
	if batch != nil {
		e.runBatch(batch, seq)
	}
}

// StopAutoFlush disarms the scheduler and flushes whatever is pending,
// so no future submitted under the scheduler is ever stranded waiting
// for a deadline that will no longer fire. The engine reverts to
// explicit Flush/Wait semantics.
func (e *Engine) StopAutoFlush() {
	e.mu.Lock()
	e.afDelay = 0
	batch, seq := e.takeBatchLocked()
	e.mu.Unlock()
	if len(batch) > 0 {
		e.runBatch(batch, seq)
	}
}

// Flush runs every pending request in one shared simulator run and
// blocks until all of their futures have resolved. Flushing an idle
// engine is a no-op.
func (e *Engine) Flush() {
	e.mu.Lock()
	batch, seq := e.takeBatchLocked()
	e.mu.Unlock()
	if len(batch) > 0 {
		e.runBatch(batch, seq)
	}
}

// Quiesce flushes pending work and then blocks until every in-flight
// batch — including ones another goroutine or the autoflush timer
// dispatched — has finished running and recorded its stats. After
// Quiesce returns (and absent concurrent submissions) the engine is
// fully idle; DynEngine uses this as its pre-mutation barrier so no
// batch counters are lost when an epoch's engine is retired.
func (e *Engine) Quiesce() {
	e.Flush()
	e.mu.Lock()
	for e.running > 0 {
		e.idle.Wait()
	}
	e.mu.Unlock()
}

// batchSeed derives the per-batch Las Vegas seed: deterministic per
// (engine seed, batch index), shared by the serving run and any shadow
// run of the same batch.
func (e *Engine) batchSeed(seq uint64) uint64 {
	return e.seed ^ (seq+1)*0x9e3779b97f4a7c15
}

// copyShadowInputs replaces the batch's caller-owned payload slices with
// engine-owned copies. It runs before any future resolves, while the
// submission contract still guarantees the inputs are stable, so that
// the shadow run's later re-read never touches caller memory: callers
// (notably the wire path's connection-local decode scratch) may reuse
// their buffers the moment their futures resolve, even on sampled
// batches.
func copyShadowInputs(batch []*request) {
	for _, req := range batch {
		req.vals = slices.Clone(req.vals)
		req.queries = slices.Clone(req.queries)
		req.edges = slices.Clone(req.edges)
		if req.expr != nil {
			cp := *req.expr
			cp.Kind = slices.Clone(cp.Kind)
			cp.Val = slices.Clone(cp.Val)
			req.expr = &cp
		}
	}
}

// runBatch executes one detached batch on a fresh backend run. It is
// called without e.mu held; distinct batches may run concurrently on
// independent runs.
func (e *Engine) runBatch(batch []*request, seq uint64) {
	// The shadow-sampling decision is taken before serving so a sampled
	// batch's inputs can be copied out while they are still stable.
	sampled := e.shadow != nil && (e.shadowTick.Add(1)-1)%uint64(e.shadowN) == 0
	if sampled {
		copyShadowInputs(batch)
	}
	pf := e.profileFn.Load()
	start := time.Now()
	run := e.backend.Run(e.batchSeed(seq))

	var prof BatchProfile
	var lcaReqs []*request
	var lcaRuns uint64
	var lcaQueries uint64
	for _, req := range batch {
		mark := run.Cost()
		switch req.kind {
		case kindBottomUp:
			prof.BottomUp++
			sums, err := run.BottomUp(req.vals, req.op)
			req.fut.resolve(Result{Sums: sums, Cost: run.Cost().Minus(mark), Err: err})
		case kindTopDown:
			prof.TopDown++
			sums, err := run.TopDown(req.vals, req.op)
			req.fut.resolve(Result{Sums: sums, Cost: run.Cost().Minus(mark), Err: err})
		case kindMinCut:
			prof.MinCut++
			res, err := run.MinCut(req.edges)
			req.fut.resolve(Result{MinCut: res, Cost: run.Cost().Minus(mark), Err: err})
		case kindExpr:
			prof.Expr++
			v, err := run.Expr(req.expr)
			req.fut.resolve(Result{Value: v, Cost: run.Cost().Minus(mark), Err: err})
		case kindLCA:
			prof.LCA++
			lcaReqs = append(lcaReqs, req) // coalesced below
		}
	}

	if len(lcaReqs) > 0 {
		total := 0
		for _, req := range lcaReqs {
			total += len(req.queries)
		}
		all := make([]lca.Query, 0, total)
		for _, req := range lcaReqs {
			all = append(all, req.queries...)
		}
		mark := run.Cost()
		answers, err := run.LCA(all)
		cost := run.Cost().Minus(mark)
		resolveLCA(lcaReqs, answers, cost, err)
		lcaRuns = 1
		lcaQueries = uint64(len(all))
	}
	prof.Requests = len(batch)
	prof.LCAQueries = int(lcaQueries)
	prof.Elapsed = time.Since(start)

	st := Stats{
		Batches:    1,
		Requests:   uint64(len(batch)),
		LCAQueries: lcaQueries,
		LCARuns:    lcaRuns,
		Cost:       run.Cost(),
	}
	if e.backendName == exec.Sim {
		// A sim engine meters every batch exactly.
		prof.Metered, prof.Cost = true, run.Cost()
	}
	if sampled {
		sb, mismatches, cost := e.runShadow(batch, seq)
		st.ShadowBatches = sb
		st.ShadowMismatches = mismatches
		st.Cost = st.Cost.Plus(cost)
		prof.Metered, prof.Cost, prof.Mismatches = true, cost, mismatches
	}

	e.mu.Lock()
	e.stats.Add(st)
	e.running--
	if e.running == 0 {
		e.idle.Broadcast()
	}
	e.mu.Unlock()

	if pf != nil {
		(*pf)(prof)
	}

	// Every future is resolved and the shadow run (if any) re-read only
	// the engine-owned input copies, so the batch can be recycled.
	recycleBatch(batch)
}

// resolveLCA demultiplexes a coalesced LCA run back to its futures,
// apportioning the run's Energy and Messages by each request's query
// share (cumulative rounding, so the shares sum exactly to the run's
// totals) while every request reports the full, genuinely shared Depth.
func resolveLCA(lcaReqs []*request, answers []int, cost machine.Cost, err error) {
	total := 0
	for _, req := range lcaReqs {
		total += len(req.queries)
	}
	off := 0
	var doneQ int
	var doneE, doneM int64
	for _, req := range lcaReqs {
		m := len(req.queries)
		share := machine.Cost{Depth: cost.Depth}
		if total > 0 {
			doneQ += m
			cumE := cost.Energy * int64(doneQ) / int64(total)
			cumM := cost.Messages * int64(doneQ) / int64(total)
			share.Energy, share.Messages = cumE-doneE, cumM-doneM
			doneE, doneM = cumE, cumM
		}
		res := Result{Cost: share, Err: err}
		if err == nil {
			res.Answers = answers[off : off+m : off+m]
		}
		req.fut.resolve(res)
		off += m
	}
}

// runShadow re-executes a served batch through the shadow sim backend
// with the batch's own seed: the model cost the sim backend would have
// recorded, plus validation of every served result against the
// simulator's. Futures are already resolved, so their results are
// stable reads here.
func (e *Engine) runShadow(batch []*request, seq uint64) (batches, mismatches uint64, cost machine.Cost) {
	run := e.shadow.Run(e.batchSeed(seq))
	var lcaReqs []*request
	for _, req := range batch {
		served := req.fut.res
		switch req.kind {
		case kindBottomUp:
			sums, err := run.BottomUp(req.vals, req.op)
			if bothOK(err, served.Err) && !slices.Equal(sums, served.Sums) {
				mismatches++
			}
		case kindTopDown:
			sums, err := run.TopDown(req.vals, req.op)
			if bothOK(err, served.Err) && !slices.Equal(sums, served.Sums) {
				mismatches++
			}
		case kindMinCut:
			res, err := run.MinCut(req.edges)
			if bothOK(err, served.Err) &&
				(res.MinWeight != served.MinCut.MinWeight || !slices.Equal(res.Cuts, served.MinCut.Cuts)) {
				mismatches++
			}
		case kindExpr:
			v, err := run.Expr(req.expr)
			if bothOK(err, served.Err) && v != served.Value {
				mismatches++
			}
		case kindLCA:
			lcaReqs = append(lcaReqs, req)
		}
	}
	if len(lcaReqs) > 0 {
		total := 0
		for _, req := range lcaReqs {
			total += len(req.queries)
		}
		all := make([]lca.Query, 0, total)
		for _, req := range lcaReqs {
			all = append(all, req.queries...)
		}
		answers, err := run.LCA(all)
		off := 0
		for _, req := range lcaReqs {
			m := len(req.queries)
			served := req.fut.res
			if bothOK(err, served.Err) && !slices.Equal(answers[off:off+m], served.Answers) {
				mismatches++
			}
			off += m
		}
	}
	return 1, mismatches, run.Cost()
}

// bothOK reports that neither the shadow run nor the served request
// failed, so their payloads are comparable.
func bothOK(shadowErr, servedErr error) bool {
	return shadowErr == nil && servedErr == nil
}
