package engine

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"spatialtree/internal/dynlayout"
	"spatialtree/internal/exec"
	"spatialtree/internal/exprtree"
	"spatialtree/internal/lca"
	"spatialtree/internal/mincut"
	"spatialtree/internal/order"
	"spatialtree/internal/sfc"
	"spatialtree/internal/tree"
	"spatialtree/internal/treefix"
)

// DynEngine is the mutable-tree counterpart of Engine: it owns a
// dynamically maintained layout (internal/dynlayout) and serves the same
// batched Submit*/Flush protocol, but additionally accepts InsertLeaf
// and DeleteLeaf between batches. Mutations never race with in-flight
// requests: applying one first drains the pending batch, so every future
// resolves against the tree as it stood when the request was submitted.
//
// Serving works through an inner Engine rebuilt lazily per placement
// version ("epoch"): each mutation bumps the epoch and marks the serving
// state dirty; the next submission refreshes it from the dynamic
// layout's current parked/spread positions — an O(n) copy, not the
// O(n log n) light-first pipeline a static engine would need to rebuild
// from scratch. Only when the dynamic layout itself rebuilds (every εn
// mutations) is the full pipeline paid, which is the whole amortization
// argument of the paper's §VII direction.
//
// Kernels split by what they require of the placement. Treefix sums,
// top-down sums and expression evaluation are order-agnostic — ranks are
// only message endpoints — so they run on the parked placement itself
// and their costs degrade gracefully with drift, exactly the trade-off
// dynlayout quantifies. Batched LCA and min-cut are order-dependent
// (correctness needs contiguous light-first subtree ranges, Section
// VI-C), so those requests run on a dense light-first rank of the
// current tree, computed lazily and memoized — at most once per epoch,
// and only for epochs that actually serve such a request.
//
// The placement is published in the LayoutCache at rebuild boundaries
// (construction, and the first refresh after each dynlayout rebuild —
// mutations parked since the rebuild are included) under a key with the
// engine id and epoch folded in (Order "dyn@<id>@<epoch>"; the id keeps
// shards on structurally identical trees from clobbering each other's
// entries).
// Every refresh first invalidates the previously published entry, so
// the cache never holds a placement for a superseded epoch and at most
// one entry per shard exists — a mutated tree can never be served from
// a stale fingerprint match, not even when a mutation sequence returns
// to an earlier parent array (same structural fingerprint, different
// parked positions). Requests themselves always route through the
// current epoch's inner engine.
//
// All methods are safe for concurrent use.
type DynEngine struct {
	id    uint64
	curve sfc.Curve
	opts  Options // resolved: Cache non-nil, Window positive

	mu        sync.Mutex
	dyn       *dynlayout.Dyn
	inner     *Engine
	key       CacheKey // published entry of the latest rebuild epoch
	published bool
	pubAt     int // dyn.Rebuilds value the published entry reflects
	epoch     uint64
	dirty     bool
	refreshes uint64
	retired   Stats       // folded counters of previous epochs' inner engines
	journal   JournalFunc // durability hook; nil = no journaling
	profile   ProfileFunc // batch observer, re-installed on every epoch's inner engine
	retunes   uint64      // successful Retune republishes
}

// MutationOp discriminates the two DynEngine mutations in a
// MutationRecord.
type MutationOp uint8

// Mutation kinds carried by MutationRecord.
const (
	MutInsert MutationOp = iota + 1
	MutDelete
)

// MutationRecord describes one applied mutation for durability hooks:
// the epoch the shard reached by applying it (epochs advance by exactly
// one per record), the operation, its argument (the parent for inserts,
// the leaf for deletes) and its result (the new vertex id for inserts,
// the renumbered id for deletes — enough to re-apply the record
// deterministically and to verify a replay).
type MutationRecord struct {
	Epoch  uint64
	Op     MutationOp
	Arg    int
	Result int
}

// JournalFunc persists one mutation record. It is invoked while the
// engine holds its mutation lock, after the pending batch has been
// drained through the Quiesce barrier and the mutation has been applied
// — so records are strictly ordered against both each other and batch
// dispatch, and a record is only ever written for a mutation that
// actually happened. An error fails the mutation call that produced the
// record; the in-memory mutation stands (the tree did change), but the
// caller knows it is not durable.
type JournalFunc func(MutationRecord) error

// SetJournal installs (or, with nil, removes) the durability hook.
// Install it after constructing or restoring the engine and before
// serving mutations; recovery installs it only after WAL replay, so
// replayed mutations are not journaled twice.
func (de *DynEngine) SetJournal(fn JournalFunc) {
	de.mu.Lock()
	de.journal = fn
	de.mu.Unlock()
}

// SetProfile installs (or, with nil, removes) the per-batch profile
// observer on the shard. The observer survives epoch refreshes: every
// future inner engine gets it re-installed, so the tuning layer sees an
// unbroken stream of batches across mutations and retunes.
func (de *DynEngine) SetProfile(fn ProfileFunc) {
	de.mu.Lock()
	de.profile = fn
	if de.inner != nil {
		de.inner.SetProfile(fn)
	}
	de.mu.Unlock()
}

// dynEngineIDs hands every DynEngine a process-unique id for its cache
// keys, so shards on structurally identical trees never collide.
var dynEngineIDs atomic.Uint64

// DefaultEpsilon is the dynamic layout drift budget used when
// DynOptions.Epsilon is not positive.
const DefaultEpsilon = 0.2

// DynOptions configures a DynEngine.
type DynOptions struct {
	Options
	// Epsilon is the dynamic layout's rebuild threshold: a full layout
	// rebuild triggers when mutations since the last rebuild exceed
	// Epsilon × current size (<= 0 means DefaultEpsilon).
	Epsilon float64
}

// DynStats snapshots a DynEngine's lifetime counters: the mutation side
// (epoch, inserts/deletes, layout rebuilds, parking and migration
// energy) plus the serving side (Engine folds the inner engines of all
// epochs, including the shared cache's counters).
type DynStats struct {
	// Epoch counts applied mutations; it versions the placement.
	Epoch uint64
	// N is the current vertex count.
	N int
	// Inserts and Deletes count successful mutations.
	Inserts, Deletes uint64
	// Rebuilds counts full light-first recomputations of the dynamic
	// layout (the amortized Θ(n^{3/2})-energy events).
	Rebuilds uint64
	// Refreshes counts serving-state rebuilds: placements derived from
	// the dynamic layout and republished (at most one per epoch, only
	// when a submission actually follows a mutation).
	Refreshes uint64
	// Retunes counts successful Retune republishes (layout
	// reconfigurations by the tuning layer).
	Retunes uint64
	// ParkEnergy and MigrateEnergy are the dynamic layout's maintenance
	// costs (see dynlayout.Dyn).
	ParkEnergy, MigrateEnergy int64
	// Engine aggregates the inner serving engines across epochs.
	Engine Stats
}

// NewDyn builds a mutable serving engine for t.
func NewDyn(t *tree.Tree, opts DynOptions) (*DynEngine, error) {
	name := opts.Curve
	if name == "" {
		name = "hilbert"
	}
	c, err := sfc.ByName(name)
	if err != nil {
		return nil, err
	}
	eps := opts.Epsilon
	if eps <= 0 {
		eps = DefaultEpsilon
	}
	d, err := dynlayout.New(t, c, eps)
	if err != nil {
		return nil, err
	}
	resolved := opts.Options
	resolved.Curve = name
	if resolved.Cache == nil {
		resolved.Cache = NewLayoutCache(DefaultCacheCapacity)
	}
	if resolved.Window <= 0 {
		resolved.Window = DefaultWindow
	}
	de := &DynEngine{id: dynEngineIDs.Add(1), curve: c, opts: resolved, dyn: d}
	de.mu.Lock()
	defer de.mu.Unlock()
	return de, de.refreshLocked()
}

// refreshLocked derives a fresh serving state from the dynamic layout:
// a placement snapshot of the current epoch, an inner engine on it, and
// the cache entry republished under the epoch-versioned key (the stale
// epoch's entry is invalidated first).
func (de *DynEngine) refreshLocked() error {
	p, err := de.dyn.Placement()
	if err != nil {
		return err
	}
	inner, err := newWithPlacement(p.Tree, p, de.opts)
	if err != nil {
		return err
	}
	// Order-dependent kernels get the dense light-first rank of this
	// epoch's tree, computed on first need (at most once per epoch —
	// the engine memoizes it). Deliberately NOT routed through the
	// shared cache: each mutated epoch has a fresh fingerprint, so
	// caching these would fill the LRU with one-shot entries and evict
	// the static placements it exists to reuse.
	inner.orderRankFn = func() []int {
		return order.LightFirst(p.Tree).Rank
	}
	// The profile observer is a per-shard installation, not per-epoch:
	// every refresh re-installs it so the tuning layer keeps seeing
	// batches across mutations and retunes.
	if de.profile != nil {
		inner.SetProfile(de.profile)
	}
	if de.inner != nil {
		st := de.inner.Stats()
		st.Cache = CacheStats{} // cache counters are global, not per-epoch
		de.retired.Add(st)
		// Shadow sampling is a per-shard rate, not per-epoch: carry the
		// tick across inner engines, or every post-mutation epoch would
		// sample its first batch and churny shards would shadow-run the
		// simulator on nearly every batch.
		inner.shadowTick.Store(de.inner.shadowTick.Load())
	}
	// Version the cache entry: every refresh invalidates the superseded
	// epoch's entry, but a fresh one is published only at rebuild
	// boundaries — construction, and the first refresh after each
	// dynlayout rebuild (the placement may include mutations parked
	// since that rebuild). At most one live entry per shard exists, so
	// dyn entries cannot churn the shared LRU out of its reusable
	// light-first placements.
	if de.published {
		de.opts.Cache.Invalidate(de.key)
		de.published = false
	}
	if de.refreshes == 0 || de.dyn.Rebuilds != de.pubAt {
		key := CacheKey{
			Fingerprint: inner.Fingerprint(),
			Curve:       de.curve.Name(),
			Order:       fmt.Sprintf("dyn@%d@%d", de.id, de.epoch),
		}
		de.opts.Cache.Put(key, p)
		de.key, de.published, de.pubAt = key, true, de.dyn.Rebuilds
	}
	de.inner = inner
	de.dirty = false
	de.refreshes++
	return nil
}

// engineLocked returns the inner engine for the current epoch,
// refreshing it first if a mutation has been applied since it was built.
func (de *DynEngine) engineLocked() (*Engine, error) {
	if de.dirty || de.inner == nil {
		if err := de.refreshLocked(); err != nil {
			return nil, err
		}
	}
	return de.inner, nil
}

// drainLocked quiesces the inner engine so that every already-submitted
// request resolves against the pre-mutation tree AND every in-flight
// batch — the autoflush timer may have dispatched one — has recorded
// its counters before the engine can be retired by a refresh.
func (de *DynEngine) drainLocked() {
	if de.inner != nil {
		de.inner.Quiesce()
	}
}

// InsertLeaf drains the pending batch, adds a new leaf under parent, and
// returns its vertex id. The next submission serves the mutated tree.
// When the mutation applied but something after it failed — the
// layout's post-mutation rebuild, or the durability journal — the
// vertex id is returned alongside the error, so the caller can still
// reconcile its id mapping with the shard's.
func (de *DynEngine) InsertLeaf(parent int) (int, error) {
	de.mu.Lock()
	defer de.mu.Unlock()
	//spatialvet:ignore waitunderlock -- the mutation barrier IS the design: in-flight queries must drain before the layout mutates, and Quiesce never takes de.mu
	de.drainLocked()
	before := de.dyn.Inserts
	v, err := de.dyn.InsertLeaf(parent)
	// Bump the epoch whenever the layout actually mutated — including
	// when a post-mutation rebuild failed — so the serving state can
	// never keep presenting the pre-mutation tree as current. The same
	// condition gates the journal: a record is written exactly when the
	// tree changed, keeping the WAL's epochs consecutive.
	if de.dyn.Inserts != before {
		de.epoch++
		de.dirty = true
		if jerr := de.journalLocked(MutationRecord{Epoch: de.epoch, Op: MutInsert, Arg: parent, Result: v}); err == nil {
			err = jerr
		}
		return v, err
	}
	if err != nil {
		return 0, err
	}
	return v, nil
}

// journalLocked invokes the durability hook, if any; de.mu must be held
// (which is also what orders records against batch dispatch — the
// caller drained the engine through Quiesce before mutating).
func (de *DynEngine) journalLocked(rec MutationRecord) error {
	if de.journal == nil {
		return nil
	}
	if err := de.journal(rec); err != nil {
		return fmt.Errorf("engine: mutation applied but not journaled: %w", err)
	}
	return nil
}

// DeleteLeaf drains the pending batch and removes leaf v. As in
// dynlayout.Dyn.DeleteLeaf, ids stay contiguous: the returned moved is
// the old id of the vertex renumbered into v (moved == v when v was the
// last id and nothing moved). As in InsertLeaf, an applied-but-degraded
// mutation (rebuild or journal failure) still returns moved with the
// error — losing the renumbering would silently desynchronize the
// caller's id mapping.
func (de *DynEngine) DeleteLeaf(v int) (moved int, err error) {
	de.mu.Lock()
	defer de.mu.Unlock()
	//spatialvet:ignore waitunderlock -- the mutation barrier IS the design: in-flight queries must drain before the layout mutates, and Quiesce never takes de.mu
	de.drainLocked()
	before := de.dyn.Deletes
	moved, err = de.dyn.DeleteLeaf(v)
	if de.dyn.Deletes != before {
		de.epoch++
		de.dirty = true
		if jerr := de.journalLocked(MutationRecord{Epoch: de.epoch, Op: MutDelete, Arg: v, Result: moved}); err == nil {
			err = jerr
		}
		return moved, err
	}
	if err != nil {
		return 0, err
	}
	return moved, nil
}

// RetuneSpec names a shard layout configuration for Retune. A zero
// field keeps the shard's current value, so partial retunes compose.
type RetuneSpec struct {
	// Curve names the space-filling curve ("" = keep).
	Curve string
	// Epsilon is the dynamic layout's rebuild threshold (<= 0 = keep).
	Epsilon float64
	// Backend names the execution backend ("" = keep).
	Backend string
}

// Retune republishes the shard on a new layout configuration: it drains
// in-flight batches through the same Quiesce barrier as a mutation,
// migrates every vertex to its light-first slot on the new curve's grid
// (a full dynlayout rebuild, charged to MigrateEnergy), and refreshes
// the serving state — the rebuild bumps dynlayout's rebuild counter, so
// the refresh republishes the placement in the layout cache exactly as
// any rebuild boundary does. The serving epoch is NOT advanced: epochs
// count applied mutations and must stay consecutive for WAL replay and
// record shipping, and a retune changes geometry, never the tree. The
// tuned curve and epsilon are part of DynState, so the next snapshot
// makes the choice durable; the backend remains non-durable
// configuration, as everywhere else. A spec that changes nothing
// returns immediately without draining.
//
// Retune holds only the shard's own mutation lock; callers driving it
// from a tuning loop must not hold any lock of their own across the
// call — the drain blocks until every in-flight batch resolves.
func (de *DynEngine) Retune(spec RetuneSpec) error {
	de.mu.Lock()
	defer de.mu.Unlock()
	c := de.curve
	if spec.Curve != "" && spec.Curve != de.curve.Name() {
		nc, err := sfc.ByName(spec.Curve)
		if err != nil {
			return err
		}
		c = nc
	}
	eps := de.dyn.Epsilon()
	if spec.Epsilon > 0 {
		eps = spec.Epsilon
	}
	backend := exec.Normalize(de.opts.Backend)
	if spec.Backend != "" {
		if !exec.Valid(spec.Backend) {
			return fmt.Errorf("engine: unknown backend %q", spec.Backend)
		}
		backend = exec.Normalize(spec.Backend)
	}
	if c.Name() == de.curve.Name() && eps == de.dyn.Epsilon() && backend == exec.Normalize(de.opts.Backend) {
		return nil
	}
	//spatialvet:ignore waitunderlock -- the republish barrier IS the design: in-flight batches must drain before the layout migrates, and Quiesce never takes de.mu
	de.drainLocked()
	if err := de.dyn.Retune(c, eps); err != nil {
		return err
	}
	de.curve = c
	de.opts.Curve = c.Name()
	de.opts.Backend = backend
	de.dirty = true
	if err := de.refreshLocked(); err != nil {
		return err
	}
	de.retunes++
	return nil
}

// LayoutConfig reports the shard's current layout configuration as a
// RetuneSpec — the identity spec: passing it back to Retune is a no-op.
func (de *DynEngine) LayoutConfig() RetuneSpec {
	de.mu.Lock()
	defer de.mu.Unlock()
	return RetuneSpec{
		Curve:   de.curve.Name(),
		Epsilon: de.dyn.Epsilon(),
		Backend: exec.Normalize(de.opts.Backend),
	}
}

// ErrReplicaGap reports a shipped record whose epoch does not follow
// the replica's apply cursor: the replica missed records and must
// resync from a snapshot.
var ErrReplicaGap = errors.New("engine: record epoch gap")

// ErrReplicaDiverged reports that re-applying a shipped record did not
// reproduce the owner's recorded outcome: the replica's state cannot be
// trusted and must be rebuilt from a snapshot.
var ErrReplicaDiverged = errors.New("engine: replica diverged from owner")

// ApplyRecord re-applies one journaled mutation to a replica engine —
// the follower half of log-shipping replication. The engine's epoch is
// the apply cursor: a record at or before it is a duplicate shipment
// and is skipped (idempotence under owner retries), one exactly at
// cursor+1 applies through the same Quiesce barrier as a local
// mutation, and anything further ahead is ErrReplicaGap. The applied
// result is verified against rec.Result; a mismatch is
// ErrReplicaDiverged. A successful apply journals rec through the
// installed hook, so a replica's own WAL tracks its cursor.
func (de *DynEngine) ApplyRecord(rec MutationRecord) error {
	if rec.Op != MutInsert && rec.Op != MutDelete {
		return fmt.Errorf("engine: cannot apply record op %d", rec.Op)
	}
	de.mu.Lock()
	defer de.mu.Unlock()
	if rec.Epoch <= de.epoch {
		return nil
	}
	if rec.Epoch != de.epoch+1 {
		return fmt.Errorf("%w: record epoch %d does not follow cursor %d", ErrReplicaGap, rec.Epoch, de.epoch)
	}
	//spatialvet:ignore waitunderlock -- the mutation barrier IS the design: in-flight queries must drain before the layout mutates, and Quiesce never takes de.mu
	de.drainLocked()
	var got int
	var err error
	var applied bool
	switch rec.Op {
	case MutInsert:
		before := de.dyn.Inserts
		got, err = de.dyn.InsertLeaf(rec.Arg)
		applied = de.dyn.Inserts != before
	case MutDelete:
		before := de.dyn.Deletes
		got, err = de.dyn.DeleteLeaf(rec.Arg)
		applied = de.dyn.Deletes != before
	}
	if !applied {
		// The owner applied this mutation; a replica that cannot is out
		// of step with it, whatever the proximate error says.
		if err == nil {
			err = errors.New("mutation did not apply")
		}
		return fmt.Errorf("%w: op %d arg %d at epoch %d: %v", ErrReplicaDiverged, rec.Op, rec.Arg, rec.Epoch, err)
	}
	de.epoch++
	de.dirty = true
	if got != rec.Result {
		return fmt.Errorf("%w: op %d arg %d at epoch %d produced %d, owner recorded %d", ErrReplicaDiverged, rec.Op, rec.Arg, rec.Epoch, got, rec.Result)
	}
	// A post-apply rebuild error degrades serving, not state: the epoch
	// advanced exactly as the owner's did, so the record still journals
	// and the error surfaces to the caller.
	if jerr := de.journalLocked(rec); err == nil {
		err = jerr
	}
	return err
}

// N returns the current vertex count.
func (de *DynEngine) N() int {
	de.mu.Lock()
	defer de.mu.Unlock()
	return de.dyn.N()
}

// Backend returns the shard's resolved execution-backend name. Every
// epoch's inner engine runs on it: the backend's per-tree preprocessing
// (Euler tour positions, lazily the LCA table) is rebuilt at each
// serving-state refresh, an O(n)-to-O(n log n) cost of the same class
// as the placement refresh it rides along with.
func (de *DynEngine) Backend() string { return exec.Normalize(de.opts.Backend) }

// Epoch returns the number of mutations applied so far; it versions the
// placement and is folded into the layout-cache key.
func (de *DynEngine) Epoch() uint64 {
	de.mu.Lock()
	defer de.mu.Unlock()
	return de.epoch
}

// IsLeaf reports whether v is a current vertex with no children (the
// precondition of DeleteLeaf).
func (de *DynEngine) IsLeaf(v int) bool {
	de.mu.Lock()
	defer de.mu.Unlock()
	return de.dyn.IsLeaf(v)
}

// Tree returns a validated snapshot of the current tree. A getter only:
// it never refreshes the serving state (the inner engine's tree is
// reused when it is current, otherwise a fresh snapshot is validated).
func (de *DynEngine) Tree() (*tree.Tree, error) {
	de.mu.Lock()
	defer de.mu.Unlock()
	if !de.dirty && de.inner != nil {
		return de.inner.Tree(), nil
	}
	return de.dyn.Tree()
}

// CacheKey returns the layout-cache key of the most recently published
// placement (construction or the latest rebuild boundary). The entry
// itself may have been invalidated since, if mutations superseded it.
func (de *DynEngine) CacheKey() CacheKey {
	de.mu.Lock()
	defer de.mu.Unlock()
	return de.key
}

// SubmitTreefix enqueues a bottom-up treefix sum on the current tree;
// see Engine.SubmitTreefix. vals must match the current vertex count.
func (de *DynEngine) SubmitTreefix(vals []int64, op treefix.Op) *Future {
	return de.submit(func(e *Engine) *Future { return e.SubmitTreefix(vals, op) })
}

// SubmitTopDown enqueues a top-down treefix sum on the current tree.
func (de *DynEngine) SubmitTopDown(vals []int64, op treefix.Op) *Future {
	return de.submit(func(e *Engine) *Future { return e.SubmitTopDown(vals, op) })
}

// SubmitLCA enqueues a batch of LCA queries on the current tree.
func (de *DynEngine) SubmitLCA(queries []lca.Query) *Future {
	return de.submit(func(e *Engine) *Future { return e.SubmitLCA(queries) })
}

// SubmitMinCut enqueues a 1-respecting minimum-cut computation against
// the current tree.
func (de *DynEngine) SubmitMinCut(edges []mincut.Edge) *Future {
	return de.submit(func(e *Engine) *Future { return e.SubmitMinCut(edges) })
}

// SubmitExpr enqueues evaluation of an expression whose tree matches the
// current tree structurally.
func (de *DynEngine) SubmitExpr(x *exprtree.Expr) *Future {
	return de.submit(func(e *Engine) *Future { return e.SubmitExpr(x) })
}

// submit routes one request to the current epoch's inner engine under
// the mutation lock, so a submission can never land on a retired epoch.
// A submission that fills the window runs its batch inline while holding
// the lock — mutations land between batches, as documented.
func (de *DynEngine) submit(f func(*Engine) *Future) *Future {
	de.mu.Lock()
	defer de.mu.Unlock()
	eng, err := de.engineLocked()
	if err != nil {
		return failedFuture(err)
	}
	return f(eng)
}

// Flush runs the pending batch, if any, and blocks until it resolves.
func (de *DynEngine) Flush() {
	de.mu.Lock()
	inner := de.inner
	de.mu.Unlock()
	if inner != nil {
		inner.Flush()
	}
}

// Pending returns the number of queued, unflushed requests.
func (de *DynEngine) Pending() int {
	de.mu.Lock()
	inner := de.inner
	de.mu.Unlock()
	if inner == nil {
		return 0
	}
	return inner.Pending()
}

// DynState is the complete durable state of a DynEngine: everything a
// snapshot must carry so that RestoreDyn yields a shard serving
// identical answers with identical accounting. Parents and Ranks are
// parallel to vertex ids; Ranks are the dynamic layout's sparse parked
// positions on a Side×Side grid (not a dense order).
type DynState struct {
	Parents []int
	Ranks   []int
	Side    int
	Curve   string
	Epsilon float64
	// Epoch is the serving epoch (applied mutation count); WAL records
	// continue from it.
	Epoch uint64
	// Drift is the dynamic layout's mutations-since-rebuild counter.
	Drift int
	// Lifetime counters, restored so restarts do not reset the
	// maintenance-cost accounting.
	Inserts, Deletes, Rebuilds uint64
	ParkEnergy, MigrateEnergy  int64
}

// State captures the engine's durable state under the mutation lock, so
// it is consistent with the epoch of the last journaled record — the
// invariant compaction relies on (a snapshot at epoch E supersedes
// exactly the WAL records with epoch <= E).
func (de *DynEngine) State() DynState {
	de.mu.Lock()
	defer de.mu.Unlock()
	return DynState{
		Parents:       de.dyn.Parents(),
		Ranks:         de.dyn.Ranks(),
		Side:          de.dyn.Side(),
		Curve:         de.curve.Name(),
		Epsilon:       de.dyn.Epsilon(),
		Epoch:         de.epoch,
		Drift:         de.dyn.Drift(),
		Inserts:       uint64(de.dyn.Inserts),
		Deletes:       uint64(de.dyn.Deletes),
		Rebuilds:      uint64(de.dyn.Rebuilds),
		ParkEnergy:    de.dyn.ParkEnergy,
		MigrateEnergy: de.dyn.MigrateEnergy,
	}
}

// RestoreDyn rebuilds a mutable engine from a State() capture (directly
// or decoded from a snapshot): the dynamic layout is reconstructed and
// invariant-checked, counters and epoch are restored, and the serving
// state is refreshed exactly as NewDyn would. WAL records newer than
// st.Epoch are the caller's to re-apply through InsertLeaf/DeleteLeaf
// before installing a journal with SetJournal.
func RestoreDyn(st DynState, opts Options) (*DynEngine, error) {
	name := st.Curve
	if name == "" {
		name = "hilbert"
	}
	c, err := sfc.ByName(name)
	if err != nil {
		return nil, err
	}
	d, err := dynlayout.Restore(st.Parents, st.Ranks, st.Side, c, st.Epsilon, st.Drift)
	if err != nil {
		return nil, err
	}
	d.Inserts = int(st.Inserts)
	d.Deletes = int(st.Deletes)
	d.Rebuilds = int(st.Rebuilds)
	d.ParkEnergy = st.ParkEnergy
	d.MigrateEnergy = st.MigrateEnergy
	resolved := opts
	resolved.Curve = name
	if resolved.Cache == nil {
		resolved.Cache = NewLayoutCache(DefaultCacheCapacity)
	}
	if resolved.Window <= 0 {
		resolved.Window = DefaultWindow
	}
	de := &DynEngine{id: dynEngineIDs.Add(1), curve: c, opts: resolved, dyn: d, epoch: st.Epoch}
	de.mu.Lock()
	defer de.mu.Unlock()
	return de, de.refreshLocked()
}

// Stats returns a snapshot of the engine's counters.
func (de *DynEngine) Stats() DynStats {
	de.mu.Lock()
	defer de.mu.Unlock()
	eng := de.retired
	if de.inner != nil {
		eng.Add(de.inner.Stats())
	}
	eng.Cache = de.opts.Cache.Stats()
	return DynStats{
		Epoch:         de.epoch,
		N:             de.dyn.N(),
		Inserts:       uint64(de.dyn.Inserts),
		Deletes:       uint64(de.dyn.Deletes),
		Rebuilds:      uint64(de.dyn.Rebuilds),
		Refreshes:     de.refreshes,
		Retunes:       de.retunes,
		ParkEnergy:    de.dyn.ParkEnergy,
		MigrateEnergy: de.dyn.MigrateEnergy,
		Engine:        eng,
	}
}
