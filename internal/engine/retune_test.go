package engine

import (
	"sync"
	"testing"

	"spatialtree/internal/exec"
	"spatialtree/internal/lca"
	"spatialtree/internal/rng"
	"spatialtree/internal/tree"
	"spatialtree/internal/treefix"
)

// TestDynRetune asserts the tuner-facing republish path: a retune
// switches curve/ε/backend, republishes through the epoch machinery
// WITHOUT advancing the epoch (epochs count mutations — the WAL and
// replication contracts depend on them staying consecutive), and the
// retuned shard keeps serving correct results.
func TestDynRetune(t *testing.T) {
	r := rng.New(21)
	base := tree.RandomAttachment(150, r)
	de, err := NewDyn(base, DynOptions{Options: Options{Window: 32, Seed: 3}, Epsilon: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		mutate(t, de, r)
	}
	epoch := de.Epoch()
	if got := de.LayoutConfig(); got.Curve != "hilbert" || got.Epsilon != 0.2 || got.Backend != exec.Sim {
		t.Fatalf("pre-retune LayoutConfig = %+v", got)
	}

	if err := de.Retune(RetuneSpec{Curve: "zorder", Epsilon: 0.35}); err != nil {
		t.Fatal(err)
	}
	if de.Epoch() != epoch {
		t.Fatalf("retune advanced the epoch %d -> %d; epochs must count mutations only", epoch, de.Epoch())
	}
	if got := de.LayoutConfig(); got.Curve != "zorder" || got.Epsilon != 0.35 {
		t.Fatalf("post-retune LayoutConfig = %+v", got)
	}
	if st := de.Stats(); st.Retunes != 1 {
		t.Fatalf("Retunes = %d, want 1", st.Retunes)
	}

	// Differential: the retuned shard answers exactly like a fresh
	// static engine on the same tree.
	cur, err := de.Tree()
	if err != nil {
		t.Fatal(err)
	}
	static, err := New(cur, Options{Window: 32, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	vals := make([]int64, cur.N())
	for i := range vals {
		vals[i] = int64(i%7) - 3
	}
	queries := make([]lca.Query, 30)
	for i := range queries {
		queries[i] = lca.Query{U: r.Intn(cur.N()), V: r.Intn(cur.N())}
	}
	got, want := de.SubmitTreefix(vals, treefix.Add).Wait(), static.SubmitTreefix(vals, treefix.Add).Wait()
	if got.Err != nil || want.Err != nil {
		t.Fatalf("treefix errs: %v / %v", got.Err, want.Err)
	}
	for v := range want.Sums {
		if got.Sums[v] != want.Sums[v] {
			t.Fatalf("sum[%d] = %d after retune, want %d", v, got.Sums[v], want.Sums[v])
		}
	}
	ga, wa := de.SubmitLCA(queries).Wait(), static.SubmitLCA(queries).Wait()
	if ga.Err != nil || wa.Err != nil {
		t.Fatalf("lca errs: %v / %v", ga.Err, wa.Err)
	}
	for i := range wa.Answers {
		if ga.Answers[i] != wa.Answers[i] {
			t.Fatalf("lca[%d] = %d after retune, want %d", i, ga.Answers[i], wa.Answers[i])
		}
	}

	// Mutations keep working after a retune, on the tuned curve.
	for i := 0; i < 20; i++ {
		mutate(t, de, r)
	}
	if got := de.LayoutConfig(); got.Curve != "zorder" {
		t.Fatalf("mutations reverted the tuned curve to %q", got.Curve)
	}
}

func TestDynRetuneNoopAndErrors(t *testing.T) {
	de, err := NewDyn(tree.RandomAttachment(40, rng.New(4)), DynOptions{Options: Options{}, Epsilon: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	// A spec matching the current configuration is a no-op: no drain, no
	// republish, no Retunes tick.
	if err := de.Retune(de.LayoutConfig()); err != nil {
		t.Fatal(err)
	}
	if st := de.Stats(); st.Retunes != 0 {
		t.Fatalf("no-op retune counted: Retunes = %d", st.Retunes)
	}
	if err := de.Retune(RetuneSpec{Curve: "no-such-curve"}); err == nil {
		t.Fatal("unknown curve accepted")
	}
	if err := de.Retune(RetuneSpec{Backend: "no-such-backend"}); err == nil {
		t.Fatal("unknown backend accepted")
	}
	if got := de.LayoutConfig(); got.Curve != "hilbert" {
		t.Fatalf("failed retunes mutated the config: %+v", got)
	}
}

func TestDynRetuneBackendSwitch(t *testing.T) {
	de, err := NewDyn(tree.RandomAttachment(60, rng.New(5)), DynOptions{Options: Options{Backend: exec.Sim}, Epsilon: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	if err := de.Retune(RetuneSpec{Backend: exec.Native}); err != nil {
		t.Fatal(err)
	}
	if de.Backend() != exec.Native {
		t.Fatalf("backend = %q after retune, want native", de.Backend())
	}
	vals := make([]int64, de.N())
	if res := de.SubmitTreefix(vals, treefix.Add).Wait(); res.Err != nil {
		t.Fatalf("serving after backend retune: %v", res.Err)
	}
}

// TestDynProfileHook asserts the tuner's observation channel: an
// installed ProfileFunc sees every dispatched batch with its kernel mix
// and timing, keeps reporting across mutation-driven engine refreshes,
// and a sim-backend shard's profiles carry metered model cost.
func TestDynProfileHook(t *testing.T) {
	r := rng.New(6)
	de, err := NewDyn(tree.RandomAttachment(80, r), DynOptions{Options: Options{Backend: exec.Sim, Window: 4}, Epsilon: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var got []BatchProfile
	de.SetProfile(func(bp BatchProfile) {
		mu.Lock()
		got = append(got, bp)
		mu.Unlock()
	})
	vals := make([]int64, de.N())
	if res := de.SubmitTreefix(vals, treefix.Add).Wait(); res.Err != nil {
		t.Fatal(res.Err)
	}
	// Force a refresh: the profile hook must ride onto the new inner
	// engine.
	if _, err := de.InsertLeaf(0); err != nil {
		t.Fatal(err)
	}
	vals = append(vals, 0)
	if res := de.SubmitLCA([]lca.Query{{U: 1, V: 2}, {U: 2, V: 3}}).Wait(); res.Err != nil {
		t.Fatal(res.Err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(got) < 2 {
		t.Fatalf("profile saw %d batches, want >= 2 (hook lost across refresh?)", len(got))
	}
	first, last := got[0], got[len(got)-1]
	if first.Requests != 1 || first.BottomUp != 1 {
		t.Fatalf("first batch profile = %+v, want 1 bottom-up request", first)
	}
	if last.LCA != 1 || last.LCAQueries != 2 {
		t.Fatalf("last batch profile = %+v, want 1 LCA request with 2 queries", last)
	}
	for i, bp := range got {
		if bp.Elapsed <= 0 {
			t.Fatalf("batch %d: no elapsed time recorded", i)
		}
		if !bp.Metered {
			t.Fatalf("batch %d: sim backend batch not metered", i)
		}
		if bp.Cost.Energy <= 0 {
			t.Fatalf("batch %d: metered batch has no energy", i)
		}
	}
	// Uninstall: no further observations.
	de.SetProfile(nil)
	n := len(got)
	mu.Unlock()
	if res := de.SubmitTreefix(vals, treefix.Add).Wait(); res.Err != nil {
		t.Fatal(res.Err)
	}
	mu.Lock()
	if len(got) != n {
		t.Fatal("profile hook still firing after SetProfile(nil)")
	}
}

// TestShadowMeterCallerBufferReuse pins the satellite contract behind
// the binary listener's scratch reuse: with shadow metering on, the
// engine copies a sampled batch's inputs out before the future
// resolves, so a caller may overwrite its slices the moment Wait
// returns. Run under -race this fails if the shadow run reads the
// caller's buffer after the reply.
func TestShadowMeterCallerBufferReuse(t *testing.T) {
	de, err := NewDyn(tree.RandomAttachment(64, rng.New(7)),
		DynOptions{Options: Options{Backend: exec.Native, ShadowMeter: 1, Window: 1}, Epsilon: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	vals := make([]int64, de.N())
	queries := make([]lca.Query, 8)
	for i := 0; i < 50; i++ {
		for j := range vals {
			vals[j] = int64(i + j)
		}
		if res := de.SubmitTreefix(vals, treefix.Add).Wait(); res.Err != nil {
			t.Fatal(res.Err)
		}
		for j := range queries {
			queries[j] = lca.Query{U: (i + j) % de.N(), V: j % de.N()}
		}
		if res := de.SubmitLCA(queries).Wait(); res.Err != nil {
			t.Fatal(res.Err)
		}
	}
	st := de.Stats()
	if st.Engine.ShadowBatches == 0 {
		t.Fatal("shadow meter sampled nothing; the reuse contract went untested")
	}
	if st.Engine.ShadowMismatches != 0 {
		t.Fatalf("%d shadow mismatches: the shadow run saw overwritten inputs", st.Engine.ShadowMismatches)
	}
}
