package engine

import (
	"fmt"
	"sync"

	"spatialtree/internal/exec"
	"spatialtree/internal/par"
	"spatialtree/internal/tree"
)

// Pool shards engines by tree: it keeps one Engine per distinct
// (tree fingerprint, execution backend) pair, all backed by one shared
// LayoutCache, and flushes the shards' independent batches in parallel
// on a worker pool. Use it when traffic spans many trees (e.g. a forest
// of per-tenant indexes): same tree and backend → same engine →
// coalesced batches; different trees → different shards → concurrent
// runs. Folding the backend into the key lets one pool serve the same
// structure natively and under the metering simulator side by side
// (registration APIs pick per tree); the placement behind both shards
// still comes from the one shared cache.
//
// Mutable trees cannot be routed structurally — every mutation changes
// the fingerprint — so the pool routes them by engine identity instead:
// NewDynShard registers a DynEngine and hands back the handle, which is
// the shard's only address. FlushAll and Stats cover both kinds.
type Pool struct {
	opts    Options
	workers int

	mu       sync.Mutex //spatialvet:lockclass routing
	engines  map[poolKey]*Engine
	building map[poolKey]*poolBuild
	shards   []*Engine    // stable insertion order for FlushAll and Stats
	dyns     []*DynEngine // mutable shards, routed by identity
}

// poolKey addresses an immutable shard: structural fingerprint plus the
// normalized execution backend serving it.
type poolKey struct {
	fp      uint64
	backend string
}

// poolBuild coalesces concurrent Engine calls for one unseen
// fingerprint: the first caller constructs the engine, the rest wait.
type poolBuild struct {
	done chan struct{}
	e    *Engine
	err  error
}

// NewPool returns a pool whose FlushAll uses at most workers goroutines
// (<= 0 means par.Workers()). opts applies to every engine the pool
// creates; a nil opts.Cache is replaced by one shared cache sized to
// hold DefaultCacheCapacity placements.
func NewPool(workers int, opts Options) *Pool {
	if workers <= 0 {
		workers = par.Workers()
	}
	if opts.Cache == nil {
		opts.Cache = NewLayoutCache(DefaultCacheCapacity)
	}
	return &Pool{
		opts:     opts,
		workers:  workers,
		engines:  make(map[poolKey]*Engine),
		building: make(map[poolKey]*poolBuild),
	}
}

// Engine returns the pool's engine for t on the pool's default backend,
// creating it on first sight. Structurally identical trees share a
// shard. Concurrent first sights of the same key coalesce onto one
// construction (and, through the shared cache, one layout build).
func (p *Pool) Engine(t *tree.Tree) (*Engine, error) {
	return p.EngineBackend(t, "")
}

// EngineBackend is Engine with an explicit execution backend; "" means
// the pool's default (Options.Backend). The same tree on different
// backends occupies distinct shards.
func (p *Pool) EngineBackend(t *tree.Tree, backend string) (*Engine, error) {
	if backend == "" {
		backend = p.opts.Backend
	}
	backend = exec.Normalize(backend)
	key := poolKey{fp: Fingerprint(t), backend: backend}
	p.mu.Lock()
	if e, ok := p.engines[key]; ok {
		p.mu.Unlock()
		return e, nil
	}
	if b, ok := p.building[key]; ok {
		p.mu.Unlock()
		<-b.done
		return b.e, b.err
	}
	b := &poolBuild{done: make(chan struct{})}
	p.building[key] = b
	p.mu.Unlock()

	// Build outside the lock: layout construction is the expensive part
	// and must not serialize unrelated shards. The deferred publish runs
	// even if the build panics, so waiters get an error instead of
	// blocking forever on a done channel that never closes.
	var e *Engine
	var err error
	defer func() {
		if e == nil && err == nil {
			err = fmt.Errorf("engine: pool build for fingerprint %x did not complete", key.fp)
		}
		p.mu.Lock()
		delete(p.building, key)
		if err == nil {
			p.engines[key] = e
			p.shards = append(p.shards, e)
		}
		b.e, b.err = e, err
		p.mu.Unlock()
		close(b.done)
	}()
	opts := p.opts
	opts.Backend = backend
	e, err = New(t, opts)
	return e, err
}

// NewDynShard creates a mutable shard for t on the pool's default
// backend, backed by the pool's options and shared cache, and registers
// it for FlushAll and Stats. The returned handle is the shard's address
// — the pool never routes mutable trees by fingerprint, because
// mutations change it.
func (p *Pool) NewDynShard(t *tree.Tree, epsilon float64) (*DynEngine, error) {
	return p.NewDynShardBackend(t, epsilon, "")
}

// NewDynShardBackend is NewDynShard with an explicit execution backend
// ("" means the pool's default).
func (p *Pool) NewDynShardBackend(t *tree.Tree, epsilon float64, backend string) (*DynEngine, error) {
	opts := p.opts
	if backend != "" {
		opts.Backend = backend
	}
	de, err := NewDyn(t, DynOptions{Options: opts, Epsilon: epsilon})
	if err != nil {
		return nil, err
	}
	p.mu.Lock()
	p.dyns = append(p.dyns, de)
	p.mu.Unlock()
	return de, nil
}

// RestoreDynShard adopts a recovered mutable shard: the engine is
// rebuilt from st (see RestoreDyn) with the pool's options and shared
// cache and registered for FlushAll and Stats, exactly like a shard
// created through NewDynShard.
func (p *Pool) RestoreDynShard(st DynState) (*DynEngine, error) {
	de, err := RestoreDyn(st, p.opts)
	if err != nil {
		return nil, err
	}
	p.mu.Lock()
	p.dyns = append(p.dyns, de)
	p.mu.Unlock()
	return de, nil
}

// AdoptDynShard registers an existing mutable engine for FlushAll and
// Stats — the failover path, where a cluster node promotes a replica
// engine (built with RestoreDyn on this pool's Options) into serving.
func (p *Pool) AdoptDynShard(de *DynEngine) {
	p.mu.Lock()
	p.dyns = append(p.dyns, de)
	p.mu.Unlock()
}

// ReleaseDynShard unregisters a mutable engine previously registered by
// NewDynShard, RestoreDynShard or AdoptDynShard, so FlushAll and Stats
// stop covering it — the cluster tier's ownership-handback step, where
// a served shard demotes back into a followed replica. Unregistered
// engines are a no-op.
func (p *Pool) ReleaseDynShard(de *DynEngine) {
	p.mu.Lock()
	for i, d := range p.dyns {
		if d == de {
			p.dyns = append(p.dyns[:i], p.dyns[i+1:]...)
			break
		}
	}
	p.mu.Unlock()
}

// Options returns the pool's resolved engine options (shared cache
// included), so callers can build engines that serve identically to the
// pool's own without registering them — replica engines, which only
// apply shipped records until a failover adopts them.
func (p *Pool) Options() Options { return p.opts }

// Cache returns the shared layout cache.
func (p *Pool) Cache() *LayoutCache { return p.opts.Cache }

// Size returns the number of shards (distinct immutable trees plus
// registered mutable shards).
func (p *Pool) Size() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.shards) + len(p.dyns)
}

// FlushAll flushes every shard — immutable and mutable — running
// independent shards' batches in parallel across the pool's workers,
// and blocks until all of them have resolved.
func (p *Pool) FlushAll() {
	p.mu.Lock()
	shards := append([]*Engine(nil), p.shards...)
	dyns := append([]*DynEngine(nil), p.dyns...)
	p.mu.Unlock()
	par.For(len(shards)+len(dyns), p.workers, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			if i < len(shards) {
				shards[i].Flush()
			} else {
				dyns[i-len(shards)].Flush()
			}
		}
	})
}

// Stats aggregates the counters of every shard, folding mutable shards'
// inner-engine counters in. The Cache field is the shared cache's (not
// a per-shard sum).
func (p *Pool) Stats() Stats {
	p.mu.Lock()
	shards := append([]*Engine(nil), p.shards...)
	dyns := append([]*DynEngine(nil), p.dyns...)
	p.mu.Unlock()
	var agg Stats
	for _, e := range shards {
		agg.Add(e.Stats())
	}
	for _, d := range dyns {
		agg.Add(d.Stats().Engine)
	}
	agg.Cache = p.opts.Cache.Stats()
	return agg
}
