package engine

import (
	"sync"

	"spatialtree/internal/par"
	"spatialtree/internal/tree"
)

// Pool shards engines by tree: it keeps one Engine per distinct tree
// fingerprint, all backed by one shared LayoutCache, and flushes the
// shards' independent batches in parallel on a worker pool. Use it when
// traffic spans many trees (e.g. a forest of per-tenant indexes): same
// tree → same engine → coalesced batches; different trees → different
// shards → concurrent simulator runs.
type Pool struct {
	opts    Options
	workers int

	mu      sync.Mutex
	engines map[uint64]*Engine
	shards  []*Engine // stable insertion order for FlushAll and Stats
}

// NewPool returns a pool whose FlushAll uses at most workers goroutines
// (<= 0 means par.Workers()). opts applies to every engine the pool
// creates; a nil opts.Cache is replaced by one shared cache sized to
// hold DefaultCacheCapacity placements.
func NewPool(workers int, opts Options) *Pool {
	if workers <= 0 {
		workers = par.Workers()
	}
	if opts.Cache == nil {
		opts.Cache = NewLayoutCache(DefaultCacheCapacity)
	}
	return &Pool{
		opts:    opts,
		workers: workers,
		engines: make(map[uint64]*Engine),
	}
}

// Engine returns the pool's engine for t, creating it on first sight of
// the tree's fingerprint. Structurally identical trees share a shard.
func (p *Pool) Engine(t *tree.Tree) (*Engine, error) {
	fp := Fingerprint(t)
	p.mu.Lock()
	if e, ok := p.engines[fp]; ok {
		p.mu.Unlock()
		return e, nil
	}
	p.mu.Unlock()
	// Build outside the lock: layout construction is the expensive part
	// and must not serialize unrelated shards.
	e, err := New(t, p.opts)
	if err != nil {
		return nil, err
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if prior, ok := p.engines[fp]; ok { // lost a build race; keep the first
		return prior, nil
	}
	p.engines[fp] = e
	p.shards = append(p.shards, e)
	return e, nil
}

// Cache returns the shared layout cache.
func (p *Pool) Cache() *LayoutCache { return p.opts.Cache }

// Size returns the number of shards (distinct trees seen).
func (p *Pool) Size() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.shards)
}

// FlushAll flushes every shard, running independent shards' batches in
// parallel across the pool's workers, and blocks until all of them have
// resolved.
func (p *Pool) FlushAll() {
	p.mu.Lock()
	shards := append([]*Engine(nil), p.shards...)
	p.mu.Unlock()
	par.For(len(shards), p.workers, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			shards[i].Flush()
		}
	})
}

// Stats aggregates the counters of every shard. The Cache field is the
// shared cache's (not a per-shard sum).
func (p *Pool) Stats() Stats {
	p.mu.Lock()
	shards := append([]*Engine(nil), p.shards...)
	p.mu.Unlock()
	var agg Stats
	for _, e := range shards {
		agg.Add(e.Stats())
	}
	agg.Cache = p.opts.Cache.Stats()
	return agg
}
