package engine

import (
	"container/list"
	"sync"

	"spatialtree/internal/layout"
	"spatialtree/internal/order"
	"spatialtree/internal/sfc"
	"spatialtree/internal/tree"
)

// Fingerprint returns a 64-bit structural hash of a tree: two trees with
// the same parent array have the same fingerprint. It is the tree
// component of layout-cache keys, so that a workload that rebuilds an
// identical tree (e.g. from the same on-disk dataset) still reuses the
// cached placement. Like any hash-keyed cache, distinct trees may
// collide (probability ~2^-64 per pair); callers needing an exact
// identity check must compare parent arrays.
func Fingerprint(t *tree.Tree) uint64 {
	h := uint64(t.N())*0x9e3779b97f4a7c15 + 0x2545f4914f6cdd1d
	for _, p := range t.Parents() {
		h ^= uint64(int64(p))
		h *= 0xbf58476d1ce4e5b9
		h ^= h >> 29
	}
	h ^= h >> 32
	return h
}

// CacheKey identifies one cached placement: the tree's structural
// fingerprint, the space-filling curve, and the vertex order.
type CacheKey struct {
	Fingerprint uint64
	Curve       string
	Order       string
}

// CacheStats reports layout-cache traffic. Hits counts lookups served
// without building (including coalesced waiters); Misses counts lookups
// that started a build; Coalesced counts lookups that piggybacked on a
// build already in flight (every coalesced lookup is also a hit);
// Builds counts layout pipelines actually run — with the in-flight
// coalescing of GetOrBuild, Builds == Misses no matter how many
// goroutines miss the same key concurrently. Evictions counts entries
// removed before natural replacement, whether by LRU pressure or by
// Invalidate.
type CacheStats struct {
	Hits      uint64
	Misses    uint64
	Evictions uint64
	Builds    uint64
	Coalesced uint64
	Size      int
	Capacity  int
}

// HitRate returns Hits / (Hits + Misses), or 0 before any lookup.
func (c CacheStats) HitRate() float64 {
	total := c.Hits + c.Misses
	if total == 0 {
		return 0
	}
	return float64(c.Hits) / float64(total)
}

// DefaultCacheCapacity is the placement capacity of caches created
// implicitly by New when Options.Cache is nil.
const DefaultCacheCapacity = 32

// LayoutCache is a concurrency-safe LRU cache of placements keyed by
// CacheKey. One cache can back many engines (see Pool); sharing it is
// what lets a fresh Engine on an already-seen tree skip the O(n log n)
// light-first layout pipeline entirely.
type LayoutCache struct {
	mu       sync.Mutex
	cap      int
	lru      list.List // front = most recently used; values are *cacheEntry
	entries  map[CacheKey]*list.Element
	building map[CacheKey]*buildCall

	hits, misses, evictions, builds, coalesced uint64
}

type cacheEntry struct {
	key CacheKey
	p   *layout.Placement
}

// buildCall is one in-flight GetOrBuild: the first miss on a key owns
// the build, later misses wait on done and share p.
type buildCall struct {
	done chan struct{}
	p    *layout.Placement
}

// NewLayoutCache returns a cache holding at most capacity placements
// (capacity <= 0 means DefaultCacheCapacity).
func NewLayoutCache(capacity int) *LayoutCache {
	if capacity <= 0 {
		capacity = DefaultCacheCapacity
	}
	c := &LayoutCache{
		cap:      capacity,
		entries:  make(map[CacheKey]*list.Element),
		building: make(map[CacheKey]*buildCall),
	}
	c.lru.Init()
	return c
}

// Get returns the cached placement for key, if present, marking it most
// recently used.
func (c *LayoutCache) Get(key CacheKey) (*layout.Placement, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		c.hits++
		c.lru.MoveToFront(el)
		return el.Value.(*cacheEntry).p, true
	}
	c.misses++
	return nil, false
}

// Put inserts a placement under key, evicting the least recently used
// entry if the cache is full. Re-inserting an existing key refreshes it.
func (c *LayoutCache) Put(key CacheKey, p *layout.Placement) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.putLocked(key, p)
}

func (c *LayoutCache) putLocked(key CacheKey, p *layout.Placement) {
	if el, ok := c.entries[key]; ok {
		el.Value.(*cacheEntry).p = p
		c.lru.MoveToFront(el)
		return
	}
	for c.lru.Len() >= c.cap {
		back := c.lru.Back()
		c.lru.Remove(back)
		delete(c.entries, back.Value.(*cacheEntry).key)
		c.evictions++
	}
	c.entries[key] = c.lru.PushFront(&cacheEntry{key: key, p: p})
}

// Invalidate removes the entry for key, if present, and reports whether
// an entry was removed. A dynamic engine calls this when it republishes
// a mutated tree's placement under a fresh epoch key, so the stale
// placement can never be served again. A removed entry counts as an
// eviction in Stats, exactly like an LRU eviction: either way a cached
// placement left the cache before natural replacement.
func (c *LayoutCache) Invalidate(key CacheKey) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		return false
	}
	c.lru.Remove(el)
	delete(c.entries, key)
	c.evictions++
	return true
}

// GetOrBuild returns the light-first placement of t on curve c, building
// and caching it on a miss. fp must be Fingerprint(t). Concurrent misses
// on the same key coalesce onto a single build (the first miss runs the
// O(n log n) layout pipeline, the rest wait for it), so a thundering
// herd of engines on one tree costs one build, not one per engine.
func (c *LayoutCache) GetOrBuild(t *tree.Tree, fp uint64, curve sfc.Curve) *layout.Placement {
	key := CacheKey{Fingerprint: fp, Curve: curve.Name(), Order: "light-first"}
	for {
		c.mu.Lock()
		if el, ok := c.entries[key]; ok {
			c.hits++
			c.lru.MoveToFront(el)
			p := el.Value.(*cacheEntry).p
			c.mu.Unlock()
			return p
		}
		if call, ok := c.building[key]; ok {
			c.hits++
			c.coalesced++
			c.mu.Unlock()
			<-call.done
			if call.p != nil {
				return call.p
			}
			// The owning build died (panicked) before publishing; loop
			// and take over the build rather than hand out nil.
			continue
		}
		c.misses++
		call := &buildCall{done: make(chan struct{})}
		c.building[key] = call
		c.mu.Unlock()

		// Build outside the lock: the layout pipeline is the expensive
		// part and must not serialize lookups of other keys. The
		// deferred publish runs even if the build panics, so waiters
		// never block forever.
		defer func() {
			c.mu.Lock()
			if call.p != nil {
				c.builds++
				c.putLocked(key, call.p)
			}
			delete(c.building, key)
			c.mu.Unlock()
			close(call.done)
		}()
		call.p = layout.New(t, order.LightFirst(t), curve)
		return call.p
	}
}

// Stats returns a snapshot of the cache counters.
func (c *LayoutCache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
		Builds:    c.builds,
		Coalesced: c.coalesced,
		Size:      c.lru.Len(),
		Capacity:  c.cap,
	}
}

// Len returns the number of cached placements.
func (c *LayoutCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}
