package engine

import (
	"sync"
	"testing"
	"time"

	"spatialtree/internal/lca"
	"spatialtree/internal/treefix"
)

// waitResolved fails the test if the future does not resolve within the
// deadline without anybody calling Flush or Wait (i.e. the scheduler
// alone must dispatch it).
func waitResolved(t *testing.T, f *Future, d time.Duration) Result {
	t.Helper()
	deadline := time.Now().Add(d)
	for !f.Done() {
		if time.Now().After(deadline) {
			t.Fatalf("future unresolved after %v without an explicit flush", d)
		}
		time.Sleep(time.Millisecond)
	}
	return f.Wait()
}

// TestAutoFlushDeadline: with a huge window, a lone submission must be
// dispatched by the MaxDelay deadline, and the flush must be counted as
// deadline-triggered.
func TestAutoFlushDeadline(t *testing.T) {
	tr := testTree(120, 1)
	eng, err := New(tr, Options{Window: 1 << 20, FlushDelay: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	vals := testVals(tr.N(), 2)
	res := waitResolved(t, eng.SubmitTreefix(vals, treefix.Add), 5*time.Second)
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	want := treefix.SequentialBottomUp(tr, vals, treefix.Add)
	for v := range want {
		if res.Sums[v] != want[v] {
			t.Fatalf("sum[%d] = %d, want %d", v, res.Sums[v], want[v])
		}
	}
	st := eng.Stats()
	if st.DeadlineFlushes != 1 || st.SizeFlushes != 0 {
		t.Fatalf("flush triggers = %+v, want exactly one deadline flush", st)
	}
}

// TestAutoFlushSize: submissions filling the window must be dispatched
// by the size trigger well before a (long) deadline fires.
func TestAutoFlushSize(t *testing.T) {
	tr := testTree(120, 3)
	eng, err := New(tr, Options{Window: 4, FlushDelay: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	futs := make([]*Future, 4)
	for i := range futs {
		futs[i] = eng.SubmitLCA([]lca.Query{{U: i, V: tr.N() - 1 - i}})
	}
	for _, f := range futs {
		if res := waitResolved(t, f, 5*time.Second); res.Err != nil {
			t.Fatal(res.Err)
		}
	}
	st := eng.Stats()
	if st.SizeFlushes != 1 || st.DeadlineFlushes != 0 {
		t.Fatalf("flush triggers = %+v, want exactly one size flush", st)
	}
	if st.Batches != 1 || st.Requests != 4 {
		t.Fatalf("batches=%d requests=%d, want one coalesced batch of 4", st.Batches, st.Requests)
	}
}

// TestAutoFlushWaitDoesNotForceFlush: under the scheduler, Wait must
// block for the deadline instead of flushing eagerly — that is what
// lets concurrent waiters keep coalescing.
func TestAutoFlushWaitDoesNotForceFlush(t *testing.T) {
	tr := testTree(120, 4)
	eng, err := New(tr, Options{Window: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	eng.StartAutoFlush(0, 40*time.Millisecond)
	const waiters = 8
	var wg sync.WaitGroup
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if res := eng.SubmitLCA([]lca.Query{{U: i, V: i + 1}}).Wait(); res.Err != nil {
				t.Error(res.Err)
			}
		}(i)
	}
	wg.Wait()
	st := eng.Stats()
	if st.DeadlineFlushes == 0 {
		t.Fatalf("stats = %+v, want at least one deadline flush", st)
	}
	if st.Batches >= waiters {
		t.Fatalf("batches = %d for %d concurrent waiters, want coalescing", st.Batches, waiters)
	}
}

// TestStopAutoFlushDrains: StopAutoFlush must dispatch the pending
// batch so no future waits for a deadline that will never fire, and the
// engine must revert to Wait-flushes semantics.
func TestStopAutoFlushDrains(t *testing.T) {
	tr := testTree(80, 5)
	eng, err := New(tr, Options{Window: 1 << 20, FlushDelay: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	fut := eng.SubmitLCA([]lca.Query{{U: 0, V: 1}})
	eng.StopAutoFlush()
	if !fut.Done() {
		t.Fatal("StopAutoFlush left a pending future unresolved")
	}
	if res := fut.Wait(); res.Err != nil {
		t.Fatal(res.Err)
	}
	// Scheduler off: a fresh submission resolves through Wait's own
	// flush, not a timer.
	if res := eng.SubmitLCA([]lca.Query{{U: 1, V: 2}}).Wait(); res.Err != nil {
		t.Fatal(res.Err)
	}
	if st := eng.Stats(); st.DeadlineFlushes != 0 {
		t.Fatalf("deadline flushes = %d, want 0", st.DeadlineFlushes)
	}
}

// TestAutoFlushStaleTimer: a timer armed for a batch that an explicit
// Flush already dispatched must not fire into the next batch early.
func TestAutoFlushStaleTimer(t *testing.T) {
	tr := testTree(80, 6)
	eng, err := New(tr, Options{Window: 1 << 20, FlushDelay: 30 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	f1 := eng.SubmitLCA([]lca.Query{{U: 0, V: 1}})
	eng.Flush() // takes batch 0, disarms its timer
	if !f1.Done() {
		t.Fatal("explicit Flush left future unresolved")
	}
	// Batch 1 starts its own deadline; it must still resolve (a stale
	// fire from batch 0 being a no-op, not a stolen flush).
	f2 := eng.SubmitLCA([]lca.Query{{U: 1, V: 2}})
	if res := waitResolved(t, f2, 5*time.Second); res.Err != nil {
		t.Fatal(res.Err)
	}
	st := eng.Stats()
	if st.Batches != 2 {
		t.Fatalf("batches = %d, want 2", st.Batches)
	}
}

// TestQuiesce: after Quiesce, every submission is resolved and counted,
// no matter which trigger dispatched its batch.
func TestQuiesce(t *testing.T) {
	tr := testTree(100, 9)
	eng, err := New(tr, Options{Window: 1 << 20, FlushDelay: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	const n = 8
	futs := make([]*Future, n)
	for i := range futs {
		futs[i] = eng.SubmitLCA([]lca.Query{{U: i, V: i + 1}})
		time.Sleep(time.Duration(i%3) * time.Millisecond) // let some deadlines fire mid-stream
	}
	eng.Quiesce()
	for i, f := range futs {
		if !f.Done() {
			t.Fatalf("future %d unresolved after Quiesce", i)
		}
	}
	if st := eng.Stats(); st.Requests != n {
		t.Fatalf("requests = %d after Quiesce, want %d", st.Requests, n)
	}
	if eng.Pending() != 0 {
		t.Fatalf("pending = %d after Quiesce", eng.Pending())
	}
}

// TestDynMutationKeepsSchedulerStats: a mutation's drain must wait for
// batches the deadline timer dispatched, so no request vanishes from
// the folded stats when the epoch's engine is retired. (The race is
// timing-dependent; the invariant is exact either way.)
func TestDynMutationKeepsSchedulerStats(t *testing.T) {
	// A tree big enough that an LCA batch takes real wall-clock time:
	// the loss window is "batch dispatched by the timer but its
	// runBatch not finished when the post-mutation refresh retires the
	// engine", so the batch must outlive the mutation.
	tr := testTree(4000, 10)
	de, err := NewDyn(tr, DynOptions{Options: Options{
		Window:     1 << 20,
		FlushDelay: 200 * time.Microsecond,
	}})
	if err != nil {
		t.Fatal(err)
	}
	const rounds = 24
	for i := 0; i < rounds; i++ {
		de.SubmitLCA([]lca.Query{{U: 0, V: 1}}) // deliberately not waited on
		// Sleep past the deadline so the timer dispatches the batch; the
		// mutation then races its still-running runBatch. With a plain
		// Flush drain (instead of Quiesce) the refresh would retire the
		// engine mid-batch and drop the batch's counters.
		time.Sleep(300 * time.Microsecond)
		if _, err := de.InsertLeaf(0); err != nil {
			t.Fatal(err)
		}
	}
	de.Flush()
	st := de.Stats()
	if st.Engine.Requests != rounds {
		t.Fatalf("requests = %d, want %d: batch counters lost across epoch retirement", st.Engine.Requests, rounds)
	}
}

// TestDynEngineAutoFlush: the scheduler must survive epoch refreshes —
// a mutation retires the inner engine, and the replacement inherits
// FlushDelay from the options.
func TestDynEngineAutoFlush(t *testing.T) {
	tr := testTree(150, 7)
	de, err := NewDyn(tr, DynOptions{Options: Options{
		Window:     1 << 20,
		FlushDelay: 5 * time.Millisecond,
	}})
	if err != nil {
		t.Fatal(err)
	}
	res := waitResolved(t, de.SubmitLCA([]lca.Query{{U: 3, V: 4}}), 5*time.Second)
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if _, err := de.InsertLeaf(0); err != nil {
		t.Fatal(err)
	}
	res = waitResolved(t, de.SubmitLCA([]lca.Query{{U: 3, V: tr.N()}}), 5*time.Second)
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if st := de.Stats(); st.Engine.DeadlineFlushes < 2 {
		t.Fatalf("deadline flushes across epochs = %d, want >= 2", st.Engine.DeadlineFlushes)
	}
}
