package engine

import (
	"sync"
	"testing"

	"spatialtree/internal/machine"
	"spatialtree/internal/rng"
	"spatialtree/internal/sfc"
	"spatialtree/internal/tree"
)

// TestGetOrBuildSingleFlight is the thundering-herd regression test:
// N concurrent misses on one key must run the layout pipeline exactly
// once, with every caller receiving the same placement.
func TestGetOrBuildSingleFlight(t *testing.T) {
	tr := tree.RandomAttachment(4000, rng.New(1))
	fp := Fingerprint(tr)
	c := NewLayoutCache(4)
	const goroutines = 32
	var (
		wg    sync.WaitGroup
		start = make(chan struct{})
		got   [goroutines]interface{}
	)
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			got[i] = c.GetOrBuild(tr, fp, sfc.Hilbert{})
		}(i)
	}
	close(start)
	wg.Wait()

	st := c.Stats()
	if st.Builds != 1 {
		t.Fatalf("builds = %d for %d concurrent misses, want exactly 1", st.Builds, goroutines)
	}
	if st.Misses != 1 {
		t.Fatalf("misses = %d, want 1 (only the building lookup)", st.Misses)
	}
	if st.Hits != goroutines-1 {
		t.Fatalf("hits = %d, want %d (coalesced waiters and late hits)", st.Hits, goroutines-1)
	}
	for i := 1; i < goroutines; i++ {
		if got[i] != got[0] {
			t.Fatal("concurrent callers received distinct placements")
		}
	}
	if st.Size != 1 {
		t.Fatalf("cache holds %d entries, want 1", st.Size)
	}
}

// TestPoolEngineSingleBuild closes the unlocked window in Pool.Engine:
// N concurrent first sights of one tree must construct one engine and
// one layout.
func TestPoolEngineSingleBuild(t *testing.T) {
	base := tree.RandomAttachment(4000, rng.New(2))
	pool := NewPool(4, Options{})
	const goroutines = 32
	var (
		wg      sync.WaitGroup
		start   = make(chan struct{})
		engines [goroutines]*Engine
	)
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			// Fresh Tree value per caller: routing is structural.
			e, err := pool.Engine(tree.MustFromParents(base.Parents()))
			if err != nil {
				t.Error(err)
				return
			}
			engines[i] = e
		}(i)
	}
	close(start)
	wg.Wait()

	for i := 1; i < goroutines; i++ {
		if engines[i] != engines[0] {
			t.Fatal("concurrent callers received distinct engines for one fingerprint")
		}
	}
	if pool.Size() != 1 {
		t.Fatalf("pool size = %d, want 1", pool.Size())
	}
	if st := pool.Cache().Stats(); st.Builds != 1 {
		t.Fatalf("layout builds = %d, want exactly 1", st.Builds)
	}
}

func TestCacheInvalidate(t *testing.T) {
	tr := tree.RandomAttachment(50, rng.New(3))
	c := NewLayoutCache(4)
	p := c.GetOrBuild(tr, Fingerprint(tr), sfc.Hilbert{})
	key := CacheKey{Fingerprint: Fingerprint(tr), Curve: "hilbert", Order: "light-first"}
	if _, ok := c.Get(key); !ok {
		t.Fatal("entry missing after GetOrBuild")
	}
	if !c.Invalidate(key) {
		t.Fatal("Invalidate found nothing")
	}
	// Regression: an invalidated entry left the cache and must count as
	// an eviction — it used to vanish without touching the counter.
	if st := c.Stats(); st.Evictions != 1 {
		t.Fatalf("evictions after Invalidate = %d, want 1", st.Evictions)
	}
	if c.Invalidate(key) {
		t.Fatal("Invalidate removed a second time")
	}
	if st := c.Stats(); st.Evictions != 1 {
		t.Fatalf("evictions after no-op Invalidate = %d, want still 1", st.Evictions)
	}
	if _, ok := c.Get(key); ok {
		t.Fatal("entry served after invalidation")
	}
	if c.Len() != 0 {
		t.Fatalf("cache len %d after invalidation", c.Len())
	}
	// Rebuilding after invalidation works and is a fresh build.
	if q := c.GetOrBuild(tr, Fingerprint(tr), sfc.Hilbert{}); q == nil {
		t.Fatal("rebuild after invalidation failed")
	}
	if st := c.Stats(); st.Builds != 2 {
		t.Fatalf("builds = %d, want 2", st.Builds)
	}
	_ = p
}

// TestCacheStatsEdges pins the divide-by-zero edges of the stats
// surface in a table.
func TestCacheStatsEdges(t *testing.T) {
	for _, tc := range []struct {
		name string
		s    CacheStats
		want float64
	}{
		{"zero lookups", CacheStats{}, 0},
		{"only misses", CacheStats{Misses: 7}, 0},
		{"only hits", CacheStats{Hits: 5}, 1},
		{"mixed", CacheStats{Hits: 3, Misses: 1}, 0.75},
	} {
		if got := tc.s.HitRate(); got != tc.want {
			t.Errorf("%s: HitRate() = %v, want %v", tc.name, got, tc.want)
		}
	}
	// A fresh cache's snapshot must be all-zero and HitRate-safe.
	st := NewLayoutCache(0).Stats()
	if st.Hits != 0 || st.Misses != 0 || st.Builds != 0 || st.HitRate() != 0 {
		t.Errorf("fresh cache stats not zero: %+v", st)
	}
	if st.Capacity != DefaultCacheCapacity {
		t.Errorf("capacity %d, want default %d", st.Capacity, DefaultCacheCapacity)
	}
}

// TestStatsAddFolding pins Stats.Add: counters sum, costs fold
// component-wise, and the Cache field is deliberately untouched
// (cache counters live on the shared cache, not per engine).
func TestStatsAddFolding(t *testing.T) {
	for _, tc := range []struct {
		name string
		a, b Stats
		want Stats
	}{
		{"zero plus zero", Stats{}, Stats{}, Stats{}},
		{
			"zero absorbs",
			Stats{},
			Stats{Batches: 2, Requests: 5, LCAQueries: 7, LCARuns: 1, Cost: machine.Cost{Energy: 10, Messages: 3, Depth: 4}},
			Stats{Batches: 2, Requests: 5, LCAQueries: 7, LCARuns: 1, Cost: machine.Cost{Energy: 10, Messages: 3, Depth: 4}},
		},
		{
			"components sum",
			Stats{Batches: 1, Requests: 2, LCAQueries: 3, LCARuns: 1, Cost: machine.Cost{Energy: 5, Messages: 2, Depth: 7}},
			Stats{Batches: 4, Requests: 8, LCAQueries: 1, LCARuns: 2, Cost: machine.Cost{Energy: 1, Messages: 1, Depth: 1}},
			Stats{Batches: 5, Requests: 10, LCAQueries: 4, LCARuns: 3, Cost: machine.Cost{Energy: 6, Messages: 3, Depth: 8}},
		},
	} {
		got := tc.a
		got.Add(tc.b)
		if got != tc.want {
			t.Errorf("%s: Add => %+v, want %+v", tc.name, got, tc.want)
		}
	}
	// Cache counters must not fold: they are shared-cache globals and
	// summing them per shard would double count.
	a := Stats{Cache: CacheStats{Hits: 9}}
	a.Add(Stats{Cache: CacheStats{Hits: 5, Misses: 2}})
	if a.Cache.Hits != 9 || a.Cache.Misses != 0 {
		t.Errorf("Add folded cache counters: %+v", a.Cache)
	}
}
