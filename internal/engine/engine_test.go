package engine

import (
	"testing"

	"spatialtree/internal/exprtree"
	"spatialtree/internal/lca"
	"spatialtree/internal/mincut"
	"spatialtree/internal/rng"
	"spatialtree/internal/sfc"
	"spatialtree/internal/tree"
	"spatialtree/internal/treefix"
)

func testTree(n int, seed uint64) *tree.Tree {
	return tree.RandomAttachment(n, rng.New(seed))
}

func testVals(n int, seed uint64) []int64 {
	r := rng.New(seed)
	vals := make([]int64, n)
	for i := range vals {
		vals[i] = int64(r.Intn(1000)) - 500
	}
	return vals
}

func TestEngineMatchesDirectCalls(t *testing.T) {
	tr := testTree(300, 1)
	eng, err := New(tr, Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	vals := testVals(tr.N(), 2)

	futBU := eng.SubmitTreefix(vals, treefix.Add)
	futTD := eng.SubmitTopDown(vals, treefix.Max)

	qr := rng.New(3)
	queries := make([]lca.Query, 50)
	for i := range queries {
		queries[i] = lca.Query{U: qr.Intn(tr.N()), V: qr.Intn(tr.N())}
	}
	futLCA := eng.SubmitLCA(queries)

	edges := mincut.RandomGraph(tr, 100, 10, rng.New(4))
	futCut := eng.SubmitMinCut(edges)

	if eng.Pending() != 4 {
		t.Fatalf("Pending = %d, want 4", eng.Pending())
	}
	eng.Flush()

	wantBU := treefix.SequentialBottomUp(tr, vals, treefix.Add)
	resBU := futBU.Wait()
	if resBU.Err != nil {
		t.Fatal(resBU.Err)
	}
	for v, want := range wantBU {
		if resBU.Sums[v] != want {
			t.Fatalf("bottom-up sum[%d] = %d, want %d", v, resBU.Sums[v], want)
		}
	}

	wantTD := treefix.SequentialTopDown(tr, vals, treefix.Max)
	resTD := futTD.Wait()
	for v, want := range wantTD {
		if resTD.Sums[v] != want {
			t.Fatalf("top-down max[%d] = %d, want %d", v, resTD.Sums[v], want)
		}
	}

	oracle := lca.NewOracle(tr)
	resLCA := futLCA.Wait()
	for i, q := range queries {
		if want := oracle.LCA(q.U, q.V); resLCA.Answers[i] != want {
			t.Fatalf("lca(%d,%d) = %d, want %d", q.U, q.V, resLCA.Answers[i], want)
		}
	}

	wantCut := mincut.OneRespectingSequential(tr, edges)
	resCut := futCut.Wait()
	if resCut.Err != nil {
		t.Fatal(resCut.Err)
	}
	if resCut.MinCut.MinWeight != wantCut.MinWeight {
		t.Fatalf("min cut = %d, want %d", resCut.MinCut.MinWeight, wantCut.MinWeight)
	}

	st := eng.Stats()
	if st.Batches != 1 {
		t.Fatalf("Batches = %d, want 1 (all four requests coalesced)", st.Batches)
	}
	if st.Requests != 4 {
		t.Fatalf("Requests = %d, want 4", st.Requests)
	}
	if st.Cost.Energy <= 0 || st.Cost.Messages <= 0 {
		t.Fatalf("batch cost not recorded: %+v", st.Cost)
	}
}

func TestEngineExprEval(t *testing.T) {
	x := exprtree.Random(64, rng.New(9))
	eng, err := New(x.Tree, Options{})
	if err != nil {
		t.Fatal(err)
	}
	res := eng.SubmitExpr(x).Wait()
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if want := x.EvalSequential()[x.Tree.Root()]; res.Value != want {
		t.Fatalf("expr value = %d, want %d", res.Value, want)
	}
}

func TestEngineLCACoalescing(t *testing.T) {
	tr := testTree(200, 5)
	eng, err := New(tr, Options{})
	if err != nil {
		t.Fatal(err)
	}
	oracle := lca.NewOracle(tr)
	qr := rng.New(6)
	var futs []*Future
	var allQueries [][]lca.Query
	for b := 0; b < 8; b++ {
		qs := make([]lca.Query, 10)
		for i := range qs {
			qs[i] = lca.Query{U: qr.Intn(tr.N()), V: qr.Intn(tr.N())}
		}
		allQueries = append(allQueries, qs)
		futs = append(futs, eng.SubmitLCA(qs))
	}
	eng.Flush()
	for b, fut := range futs {
		res := fut.Wait()
		for i, q := range allQueries[b] {
			if want := oracle.LCA(q.U, q.V); res.Answers[i] != want {
				t.Fatalf("batch %d lca(%d,%d) = %d, want %d", b, q.U, q.V, res.Answers[i], want)
			}
		}
	}
	st := eng.Stats()
	if st.LCARuns != 1 {
		t.Fatalf("LCARuns = %d, want 1 (8 sub-batches coalesced into one run)", st.LCARuns)
	}
	if st.LCAQueries != 80 {
		t.Fatalf("LCAQueries = %d, want 80", st.LCAQueries)
	}
}

func TestEngineWindowAutoFlush(t *testing.T) {
	tr := testTree(100, 7)
	eng, err := New(tr, Options{Window: 3})
	if err != nil {
		t.Fatal(err)
	}
	vals := testVals(tr.N(), 8)
	f1 := eng.SubmitTreefix(vals, treefix.Add)
	f2 := eng.SubmitTreefix(vals, treefix.Xor)
	if f1.Done() || f2.Done() {
		t.Fatal("futures resolved before the window filled")
	}
	f3 := eng.SubmitTreefix(vals, treefix.Min)
	// The third submission fills the window; it flushes inline, so all
	// three futures must be resolved without any explicit Flush.
	for i, f := range []*Future{f1, f2, f3} {
		if !f.Done() {
			t.Fatalf("future %d unresolved after window auto-flush", i)
		}
	}
	if st := eng.Stats(); st.Batches != 1 || st.Requests != 3 {
		t.Fatalf("stats = %+v, want 1 batch / 3 requests", st)
	}
}

func TestFutureWaitFlushes(t *testing.T) {
	tr := testTree(100, 9)
	eng, err := New(tr, Options{})
	if err != nil {
		t.Fatal(err)
	}
	vals := testVals(tr.N(), 10)
	fut := eng.SubmitTreefix(vals, treefix.Add)
	// No Flush call: Wait itself must trigger one instead of hanging.
	res := fut.Wait()
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if eng.Pending() != 0 {
		t.Fatalf("Pending = %d after Wait, want 0", eng.Pending())
	}
}

func TestSubmitValidation(t *testing.T) {
	tr := testTree(50, 11)
	eng, err := New(tr, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res := eng.SubmitTreefix(make([]int64, 7), treefix.Add).Wait(); res.Err == nil {
		t.Fatal("short vals accepted")
	}
	if res := eng.SubmitLCA([]lca.Query{{U: -1, V: 0}}).Wait(); res.Err == nil {
		t.Fatal("out-of-range query accepted")
	}
	other := exprtree.Random(8, rng.New(1))
	if res := eng.SubmitExpr(other).Wait(); res.Err == nil {
		t.Fatal("mismatched expression tree accepted")
	}
	if res := eng.SubmitMinCut(
		[]mincut.Edge{{U: 0, V: tr.N() + 5, W: 1}},
	).Wait(); res.Err == nil {
		t.Fatal("out-of-range edge accepted")
	}
}

func TestLayoutCacheLRU(t *testing.T) {
	cache := NewLayoutCache(2)
	curve := sfc.Hilbert{}
	t1, t2, t3 := testTree(60, 1), testTree(60, 2), testTree(60, 3)

	p1 := cache.GetOrBuild(t1, Fingerprint(t1), curve)
	cache.GetOrBuild(t2, Fingerprint(t2), curve)
	if got := cache.GetOrBuild(t1, Fingerprint(t1), curve); got != p1 {
		t.Fatal("re-lookup of t1 did not hit the cache")
	}
	// t1 is now most recent; inserting t3 must evict t2.
	cache.GetOrBuild(t3, Fingerprint(t3), curve)
	st := cache.Stats()
	if st.Evictions != 1 || st.Size != 2 {
		t.Fatalf("cache stats = %+v, want 1 eviction at size 2", st)
	}
	if _, ok := cache.Get(CacheKey{Fingerprint: Fingerprint(t2), Curve: "hilbert", Order: "light-first"}); ok {
		t.Fatal("t2 should have been evicted (LRU)")
	}
	if _, ok := cache.Get(CacheKey{Fingerprint: Fingerprint(t1), Curve: "hilbert", Order: "light-first"}); !ok {
		t.Fatal("t1 should have survived (recently used)")
	}
	if st.Hits < 1 {
		t.Fatalf("hits = %d, want >= 1", st.Hits)
	}
}

func TestEngineSharedCacheHit(t *testing.T) {
	cache := NewLayoutCache(8)
	tr := testTree(200, 13)
	if _, err := New(tr, Options{Cache: cache}); err != nil {
		t.Fatal(err)
	}
	// A structurally identical tree (same parents, distinct object) must
	// hit the cache on engine construction.
	clone := tree.MustFromParents(tr.Parents())
	eng2, err := New(clone, Options{Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	st := eng2.Stats().Cache
	if st.Hits == 0 {
		t.Fatalf("cache stats = %+v, want a hit for the cloned tree", st)
	}
	if st.Size != 1 {
		t.Fatalf("cache size = %d, want 1 (one layout shared)", st.Size)
	}
}

func TestFingerprintDistinguishesTrees(t *testing.T) {
	a, b := testTree(500, 1), testTree(500, 2)
	if Fingerprint(a) == Fingerprint(b) {
		t.Fatal("distinct random trees collided")
	}
	if Fingerprint(a) != Fingerprint(tree.MustFromParents(a.Parents())) {
		t.Fatal("identical parent arrays fingerprint differently")
	}
}

func TestPoolShardsByTree(t *testing.T) {
	pool := NewPool(4, Options{Seed: 3})
	trees := []*tree.Tree{testTree(120, 1), testTree(120, 2), testTree(120, 3)}
	type job struct {
		fut  *Future
		want []int64
	}
	var jobs []job
	for i, tr := range trees {
		e, err := pool.Engine(tr)
		if err != nil {
			t.Fatal(err)
		}
		vals := testVals(tr.N(), uint64(20+i))
		jobs = append(jobs, job{
			fut:  e.SubmitTreefix(vals, treefix.Add),
			want: treefix.SequentialBottomUp(tr, vals, treefix.Add),
		})
	}
	if pool.Size() != 3 {
		t.Fatalf("pool size = %d, want 3", pool.Size())
	}
	pool.FlushAll()
	for i, j := range jobs {
		res := j.fut.Wait()
		if res.Err != nil {
			t.Fatal(res.Err)
		}
		for v, want := range j.want {
			if res.Sums[v] != want {
				t.Fatalf("tree %d sum[%d] = %d, want %d", i, v, res.Sums[v], want)
			}
		}
	}
	// Same tree again routes to the same shard.
	e1a, _ := pool.Engine(trees[0])
	e1b, _ := pool.Engine(tree.MustFromParents(trees[0].Parents()))
	if e1a != e1b {
		t.Fatal("structurally identical trees landed on different shards")
	}
	st := pool.Stats()
	if st.Batches != 3 || st.Requests != 3 {
		t.Fatalf("pool stats = %+v, want 3 batches / 3 requests", st)
	}
}

func TestEngineDeterministicPerBatchSeed(t *testing.T) {
	tr := testTree(150, 17)
	vals := testVals(tr.N(), 18)
	run := func() (sums []int64, energy int64) {
		eng, err := New(tr, Options{Seed: 42})
		if err != nil {
			t.Fatal(err)
		}
		res := eng.SubmitTreefix(vals, treefix.Add).Wait()
		return res.Sums, res.Cost.Energy
	}
	s1, c1 := run()
	s2, c2 := run()
	if c1 != c2 {
		t.Fatalf("same seed produced different batch costs: %d vs %d", c1, c2)
	}
	for v := range s1 {
		if s1[v] != s2[v] {
			t.Fatalf("same seed produced different sums at %d", v)
		}
	}
}
