package engine

import (
	"errors"
	"reflect"
	"testing"

	"spatialtree/internal/rng"
	"spatialtree/internal/tree"
	"spatialtree/internal/treefix"
)

// TestDynStateRestoreRoundTrip: State → RestoreDyn must reproduce the
// shard exactly — tree, epoch, counters, and served answers.
func TestDynStateRestoreRoundTrip(t *testing.T) {
	base := tree.RandomAttachment(120, rng.New(3))
	de, err := NewDyn(base, DynOptions{Epsilon: 0.15})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 45; i++ {
		if _, err := de.InsertLeaf(i % 120); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := de.DeleteLeaf(120); err != nil { // first inserted leaf
		t.Fatal(err)
	}
	st := de.State()

	de2, err := RestoreDyn(st, Options{})
	if err != nil {
		t.Fatal(err)
	}
	s1, s2 := de.Stats(), de2.Stats()
	if s1.Epoch != s2.Epoch || s1.N != s2.N || s1.Inserts != s2.Inserts ||
		s1.Deletes != s2.Deletes || s1.Rebuilds != s2.Rebuilds ||
		s1.ParkEnergy != s2.ParkEnergy || s1.MigrateEnergy != s2.MigrateEnergy {
		t.Fatalf("restored stats diverge:\n%+v\n%+v", s1, s2)
	}
	t1, err := de.Tree()
	if err != nil {
		t.Fatal(err)
	}
	t2, err := de2.Tree()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(t1.Parents(), t2.Parents()) {
		t.Fatal("restored tree differs")
	}
	vals := make([]int64, t1.N())
	for i := range vals {
		vals[i] = int64(i * 7)
	}
	r1 := de.SubmitTreefix(vals, treefix.Add).Wait()
	r2 := de2.SubmitTreefix(vals, treefix.Add).Wait()
	if r1.Err != nil || r2.Err != nil {
		t.Fatal(r1.Err, r2.Err)
	}
	if !reflect.DeepEqual(r1.Sums, r2.Sums) {
		t.Fatal("restored shard serves different sums")
	}

	// Mutations continue cleanly from the restored epoch.
	if _, err := de2.InsertLeaf(0); err != nil {
		t.Fatal(err)
	}
	if de2.Epoch() != st.Epoch+1 {
		t.Fatalf("epoch after restored mutation = %d, want %d", de2.Epoch(), st.Epoch+1)
	}
}

// TestJournalOrdering: the hook sees every applied mutation exactly
// once, with epochs advancing by exactly one, and inserts/deletes that
// failed validation never journal.
func TestJournalOrdering(t *testing.T) {
	base := tree.RandomAttachment(40, rng.New(5))
	de, err := NewDyn(base, DynOptions{Epsilon: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	var recs []MutationRecord
	de.SetJournal(func(rec MutationRecord) error {
		recs = append(recs, rec)
		return nil
	})
	v, err := de.InsertLeaf(7)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := de.InsertLeaf(-1); err == nil { // invalid: must not journal
		t.Fatal("insert under invalid parent succeeded")
	}
	if _, err := de.DeleteLeaf(0); err == nil { // root: must not journal
		t.Fatal("root delete succeeded")
	}
	moved, err := de.DeleteLeaf(v)
	if err != nil {
		t.Fatal(err)
	}
	want := []MutationRecord{
		{Epoch: 1, Op: MutInsert, Arg: 7, Result: v},
		{Epoch: 2, Op: MutDelete, Arg: v, Result: moved},
	}
	if !reflect.DeepEqual(recs, want) {
		t.Fatalf("journal = %+v, want %+v", recs, want)
	}
}

// TestJournalFailureSurfaces: a failing hook fails the mutation call,
// and the caller can tell the mutation itself still applied (the tree
// changed; durability did not).
func TestJournalFailureSurfaces(t *testing.T) {
	base := tree.RandomAttachment(20, rng.New(6))
	de, err := NewDyn(base, DynOptions{Epsilon: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	sentinel := errors.New("disk full")
	de.SetJournal(func(MutationRecord) error { return sentinel })
	nBefore := de.N()
	v, err := de.InsertLeaf(0)
	if !errors.Is(err, sentinel) {
		t.Fatalf("InsertLeaf = %v, want wrapped sentinel", err)
	}
	// The mutation applied, so its result must come back with the
	// error — the caller still needs the new id to reconcile.
	if v != nBefore {
		t.Fatalf("InsertLeaf returned id %d with the journal error, want %d", v, nBefore)
	}
	if de.N() != nBefore+1 || de.Epoch() != 1 {
		t.Fatalf("in-memory mutation should stand: n=%d epoch=%d", de.N(), de.Epoch())
	}
	de.SetJournal(func(MutationRecord) error { return sentinel })
	moved, err := de.DeleteLeaf(v)
	if !errors.Is(err, sentinel) {
		t.Fatalf("DeleteLeaf = %v, want wrapped sentinel", err)
	}
	if moved != v {
		t.Fatalf("DeleteLeaf returned moved %d with the journal error, want %d (last id)", moved, v)
	}
}
