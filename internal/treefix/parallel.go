package treefix

import (
	"errors"
	"fmt"
	"sync"

	"spatialtree/internal/par"
	"spatialtree/internal/tree"
)

// ErrUnsupportedOp reports an operator the goroutine-parallel Engine
// cannot execute (no Combine function). Before the op generalization the
// engine silently computed + whatever the caller asked for; now a
// malformed operator is a typed error instead of wrong sums.
var ErrUnsupportedOp = errors.New("treefix: operator not executable by the parallel engine")

// ErrInvalid marks caller mistakes — a request the engine rejects on
// its face (unknown operator name, vals length mismatch) rather than an
// execution failure. The serving layer maps it to HTTP 400 / wire
// status invalid, the same contract as engine.ErrInvalid.
var ErrInvalid = errors.New("treefix: invalid request")

type invalidError struct{ error }

func (e invalidError) Is(target error) bool { return target == ErrInvalid }
func (e invalidError) Unwrap() error        { return e.error }

// invalid classifies err as a caller mistake (errors.Is(..., ErrInvalid)
// holds) while preserving its message verbatim.
func invalid(err error) error { return invalidError{err} }

// Engine is the goroutine-parallel treefix executor: the native serving
// backend's treefix kernel (and the wall-clock arm of experiment E12).
// It precomputes the Euler tour positions of the tree once (the paper
// amortizes layout/preprocessing across iterations, Section I-D) and
// then answers bottom-up and top-down treefix sums with parallel passes
// over the edge tour.
//
// BottomUp and TopDown accept any registered operator and dispatch on
// its capabilities: invertible operators (add, xor) run as prefix-scan
// differences over the tour; idempotent operators (max, min) answer
// subtree folds from a sparse range table and root-path folds by
// parent-pointer doubling; any other commutative operator falls back to
// the host rake/compress contraction (the sequential oracle). The
// *Sum methods remain the specialized + fast paths.
type Engine struct {
	t *tree.Tree
	// downPos[v], upPos[v]: positions of v's down/up edge in the Euler
	// edge tour (root: virtual positions -1 and 2(n-1)).
	downPos, upPos []int32
	// maxDepth is the deepest vertex's depth, recorded during the tour
	// DFS so topDownDoubling knows its round count without re-walking
	// the tree per request.
	maxDepth int
	workers  int
	// scratch recycles the 2(n-1)+1-sized tour contribution arrays the
	// prefix-scan kernels build per call: on the serving hot path these
	// were the engine's dominant per-request allocation (256 KiB per
	// treefix call at n = 2^14). Contents of a pooled array are stale —
	// every kernel fills (zero or identity) before scattering.
	scratch sync.Pool
}

// getContrib returns a scratch array of the given length with
// unspecified contents; return it with putContrib after the last read.
func (e *Engine) getContrib(size int) []int64 {
	if p, ok := e.scratch.Get().(*[]int64); ok && cap(*p) >= size {
		return (*p)[:size]
	}
	return make([]int64, size)
}

// getContribZero is getContrib with the array zero-filled.
func (e *Engine) getContribZero(size int) []int64 {
	s := e.getContrib(size)
	par.For(size, e.workers, func(lo, hi int) {
		clear(s[lo:hi])
	})
	return s
}

func (e *Engine) putContrib(s []int64) { e.scratch.Put(&s) }

// NewEngine builds the tour positions with a host DFS.
func NewEngine(t *tree.Tree, workers int) *Engine {
	n := t.N()
	e := &Engine{
		t:       t,
		downPos: make([]int32, n),
		upPos:   make([]int32, n),
		workers: workers,
	}
	if n == 0 {
		return e
	}
	pos := int32(0)
	root := t.Root()
	e.downPos[root] = -1
	e.upPos[root] = int32(2 * (n - 1))
	type frame struct {
		v    int
		next int
	}
	stack := []frame{{root, 0}}
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		ch := t.Children(f.v)
		if f.next < len(ch) {
			c := ch[f.next]
			f.next++
			e.downPos[c] = pos
			pos++
			stack = append(stack, frame{c, 0})
			if d := len(stack) - 1; d > e.maxDepth {
				e.maxDepth = d
			}
			continue
		}
		if f.v != root {
			e.upPos[f.v] = pos
			pos++
		}
		stack = stack[:len(stack)-1]
	}
	return e
}

// BottomUpSum returns the subtree sums of vals under + using parallel
// prefix sums over the Euler tour: the down edges of v's subtree occupy
// the contiguous tour range (downPos[v], upPos[v]), so the subtree sum is
// a prefix-sum difference plus v's own value... realized by scattering
// each non-root vertex's value to its down-edge position.
func (e *Engine) BottomUpSum(vals []int64) []int64 {
	n := e.t.N()
	out := make([]int64, n)
	if n == 0 {
		return out
	}
	if n == 1 {
		out[0] = vals[0]
		return out
	}
	L := 2 * (n - 1)
	contrib := e.getContribZero(L + 1) // shifted by one: prefix[0] = 0
	root := e.t.Root()
	par.For(n, e.workers, func(lo, hi int) {
		for v := lo; v < hi; v++ {
			if v != root {
				contrib[e.downPos[v]+1] = vals[v]
			}
		}
	})
	par.PrefixSumInt64(contrib, e.workers)
	par.For(n, e.workers, func(lo, hi int) {
		for v := lo; v < hi; v++ {
			// Down edges inside v's subtree span positions
			// [downPos[v]+1, upPos[v]-1]; with the +1 shift the sum is
			// contrib[upPos[v]] - contrib[downPos[v]+1] plus v's value.
			out[v] = vals[v] + contrib[e.upPos[v]] - contrib[e.downPos[v]+1]
		}
	})
	e.putContrib(contrib)
	return out
}

// BottomUp returns the subtree folds of vals under op. op must be
// commutative (as everywhere in this package); a nil Combine or a vals
// slice of the wrong length returns an error (wrapping ErrUnsupportedOp
// for the former) instead of wrong sums.
//
//spatialvet:errclass
func (e *Engine) BottomUp(vals []int64, op Op) ([]int64, error) {
	n := e.t.N()
	if len(vals) != n {
		return nil, invalid(fmt.Errorf("treefix: vals has %d entries for %d vertices", len(vals), n))
	}
	switch {
	case op.Combine == nil:
		return nil, fmt.Errorf("%w: op %q has no Combine", ErrUnsupportedOp, op.Name)
	case op.Name == Add.Name:
		return e.BottomUpSum(vals), nil
	case op.Invert != nil:
		return e.bottomUpInvertible(vals, op), nil
	case op.Idempotent:
		return e.bottomUpIdempotent(vals, op), nil
	default:
		// Host rake/compress fallback: the sequential contraction
		// handles any commutative operator, and for a single core it is
		// also the fastest executor the repository ships.
		return SequentialBottomUp(e.t, vals, op), nil
	}
}

// TopDown returns the root-path folds of vals under op (associative;
// folded in root-to-vertex order). Same error contract as BottomUp.
//
//spatialvet:errclass
func (e *Engine) TopDown(vals []int64, op Op) ([]int64, error) {
	n := e.t.N()
	if len(vals) != n {
		return nil, invalid(fmt.Errorf("treefix: vals has %d entries for %d vertices", len(vals), n))
	}
	switch {
	case op.Combine == nil:
		return nil, fmt.Errorf("%w: op %q has no Combine", ErrUnsupportedOp, op.Name)
	case op.Name == Add.Name:
		return e.TopDownSum(vals), nil
	case op.Invert != nil:
		return e.topDownInvertible(vals, op), nil
	default:
		// Parent-pointer doubling computes root-path prefixes for any
		// associative operator in O(log depth) rounds of O(n) work.
		return e.topDownDoubling(vals, op), nil
	}
}

// bottomUpInvertible generalizes BottomUpSum to any group operator: the
// down edges of v's subtree occupy a contiguous tour range, so the
// subtree fold is prefix(upPos[v]) ⊕ Invert(prefix(downPos[v]+1]) —
// exactly the prefix-sum difference, spelled with Combine/Invert.
func (e *Engine) bottomUpInvertible(vals []int64, op Op) []int64 {
	n := e.t.N()
	out := make([]int64, n)
	if n == 0 {
		return out
	}
	if n == 1 {
		out[0] = vals[0]
		return out
	}
	L := 2 * (n - 1)
	contrib := e.getContrib(L + 1) // shifted by one: prefix[0] = Identity
	root := e.t.Root()
	par.For(L+1, e.workers, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			contrib[i] = op.Identity
		}
	})
	par.For(n, e.workers, func(lo, hi int) {
		for v := lo; v < hi; v++ {
			if v != root {
				contrib[e.downPos[v]+1] = vals[v]
			}
		}
	})
	par.ScanInt64(contrib, op.Identity, op.Combine, e.workers)
	par.For(n, e.workers, func(lo, hi int) {
		for v := lo; v < hi; v++ {
			below := op.Combine(contrib[e.upPos[v]], op.Invert(contrib[e.downPos[v]+1]))
			out[v] = op.Combine(vals[v], below)
		}
	})
	e.putContrib(contrib)
	return out
}

// bottomUpIdempotent answers subtree folds of a non-invertible
// idempotent operator (max, min) from a sparse table over the edge
// tour: overlapping power-of-two windows are harmless exactly because
// the operator is idempotent. O(n log n) build (parallel over rows),
// O(1) per vertex.
func (e *Engine) bottomUpIdempotent(vals []int64, op Op) []int64 {
	n := e.t.N()
	out := make([]int64, n)
	if n == 0 {
		return out
	}
	if n == 1 {
		out[0] = vals[0]
		return out
	}
	L := 2 * (n - 1)
	contrib := e.getContrib(L)
	root := e.t.Root()
	par.For(L, e.workers, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			contrib[i] = op.Identity
		}
	})
	par.For(n, e.workers, func(lo, hi int) {
		for v := lo; v < hi; v++ {
			if v != root {
				contrib[e.downPos[v]] = vals[v]
			}
		}
	})
	fold := newRangeTable(contrib, op, e.workers)
	par.For(n, e.workers, func(lo, hi int) {
		for v := lo; v < hi; v++ {
			// Down edges strictly inside v's subtree span tour positions
			// [downPos[v]+1, upPos[v]-1] (empty for leaves).
			out[v] = op.Combine(vals[v], fold(int(e.downPos[v])+1, int(e.upPos[v])-1))
		}
	})
	e.putContrib(contrib)
	return out
}

// newRangeTable builds a sparse table over contrib and returns an
// inclusive range-fold function; ranges outside or empty fold to the
// identity. Requires an idempotent op.
func newRangeTable(contrib []int64, op Op, workers int) func(lo, hi int) int64 {
	m := len(contrib)
	levels := 1
	for 1<<levels <= m {
		levels++
	}
	table := make([][]int64, 0, levels)
	table = append(table, contrib)
	for k := 1; k < levels; k++ {
		width := 1 << k
		rows := m - width + 1
		if rows <= 0 {
			break
		}
		row := make([]int64, rows)
		prev := table[k-1]
		half := width / 2
		par.For(rows, workers, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				row[i] = op.Combine(prev[i], prev[i+half])
			}
		})
		table = append(table, row)
	}
	logs := make([]uint8, m+1)
	for i := 2; i <= m; i++ {
		logs[i] = logs[i/2] + 1
	}
	return func(lo, hi int) int64 {
		if lo < 0 {
			lo = 0
		}
		if hi >= m {
			hi = m - 1
		}
		if lo > hi {
			return op.Identity
		}
		k := logs[hi-lo+1]
		return op.Combine(table[k][lo], table[k][hi-(1<<k)+1])
	}
}

// topDownInvertible generalizes TopDownSum: each vertex deposits its
// value at its down edge and the inverse at its up edge, so the scan
// prefix at downPos[v] is exactly the fold over v's root path below the
// root (entering a subtree adds the value, leaving cancels it).
func (e *Engine) topDownInvertible(vals []int64, op Op) []int64 {
	n := e.t.N()
	out := make([]int64, n)
	if n == 0 {
		return out
	}
	root := e.t.Root()
	if n == 1 {
		out[root] = vals[root]
		return out
	}
	L := 2 * (n - 1)
	contrib := e.getContrib(L)
	par.For(L, e.workers, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			contrib[i] = op.Identity
		}
	})
	par.For(n, e.workers, func(lo, hi int) {
		for v := lo; v < hi; v++ {
			if v != root {
				contrib[e.downPos[v]] = vals[v]
				contrib[e.upPos[v]] = op.Invert(vals[v])
			}
		}
	})
	par.ScanInt64(contrib, op.Identity, op.Combine, e.workers)
	par.For(n, e.workers, func(lo, hi int) {
		for v := lo; v < hi; v++ {
			if v == root {
				out[v] = vals[root]
			} else {
				out[v] = op.Combine(vals[root], contrib[e.downPos[v]])
			}
		}
	})
	e.putContrib(contrib)
	return out
}

// topDownDoubling computes root-path folds for any associative operator
// by parent-pointer doubling: after round k, out[v] folds vals over the
// path segment of length min(2^k, depth(v)+1) ending at v, and jump[v]
// points 2^k ancestors up (or -1 past the root). O(log depth) rounds,
// double-buffered so each round is a race-free parallel map.
func (e *Engine) topDownDoubling(vals []int64, op Op) []int64 {
	n := e.t.N()
	out := make([]int64, n)
	if n == 0 {
		return out
	}
	maxDepth := e.maxDepth
	jump := make([]int32, n)
	par.For(n, e.workers, func(lo, hi int) {
		for v := lo; v < hi; v++ {
			out[v] = vals[v]
			jump[v] = int32(e.t.Parent(v))
		}
	})
	nout := make([]int64, n)
	njump := make([]int32, n)
	for span := 1; span <= maxDepth; span *= 2 {
		par.For(n, e.workers, func(lo, hi int) {
			for v := lo; v < hi; v++ {
				if j := jump[v]; j >= 0 {
					// out[j]'s segment ends just above out[v]'s: prepend.
					nout[v] = op.Combine(out[j], out[v])
					njump[v] = jump[j]
				} else {
					nout[v] = out[v]
					njump[v] = -1
				}
			}
		})
		out, nout = nout, out
		jump, njump = njump, jump
	}
	return out
}

// TopDownSum returns the root-path sums of vals under +: each vertex's
// down edge contributes +val, its up edge -val, and the prefix at
// downPos[v] (inclusive) plus the root's value is the path sum.
func (e *Engine) TopDownSum(vals []int64) []int64 {
	n := e.t.N()
	out := make([]int64, n)
	if n == 0 {
		return out
	}
	root := e.t.Root()
	if n == 1 {
		out[root] = vals[root]
		return out
	}
	L := 2 * (n - 1)
	contrib := e.getContribZero(L)
	par.For(n, e.workers, func(lo, hi int) {
		for v := lo; v < hi; v++ {
			if v != root {
				contrib[e.downPos[v]] += vals[v]
				contrib[e.upPos[v]] -= vals[v]
			}
		}
	})
	par.PrefixSumInt64(contrib, e.workers)
	par.For(n, e.workers, func(lo, hi int) {
		for v := lo; v < hi; v++ {
			if v == root {
				out[v] = vals[root]
			} else {
				out[v] = vals[root] + contrib[e.downPos[v]]
			}
		}
	})
	e.putContrib(contrib)
	return out
}
