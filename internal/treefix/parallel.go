package treefix

import (
	"spatialtree/internal/par"
	"spatialtree/internal/tree"
)

// Engine is the goroutine-parallel treefix executor used for wall-clock
// benchmarks (experiment E12). It precomputes the Euler tour positions of
// the tree once (the paper amortizes layout/preprocessing across
// iterations, Section I-D) and then answers bottom-up and top-down
// treefix sums under + with two parallel passes: a scatter of per-vertex
// contributions into tour positions and a parallel prefix sum.
//
// The + operator covers the paper's headline uses (subtree sizes, path
// counters); the contraction-based executors handle general operators.
type Engine struct {
	t *tree.Tree
	// downPos[v], upPos[v]: positions of v's down/up edge in the Euler
	// edge tour (root: virtual positions -1 and 2(n-1)).
	downPos, upPos []int32
	workers        int
}

// NewEngine builds the tour positions with a host DFS.
func NewEngine(t *tree.Tree, workers int) *Engine {
	n := t.N()
	e := &Engine{
		t:       t,
		downPos: make([]int32, n),
		upPos:   make([]int32, n),
		workers: workers,
	}
	if n == 0 {
		return e
	}
	pos := int32(0)
	root := t.Root()
	e.downPos[root] = -1
	e.upPos[root] = int32(2 * (n - 1))
	type frame struct {
		v    int
		next int
	}
	stack := []frame{{root, 0}}
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		ch := t.Children(f.v)
		if f.next < len(ch) {
			c := ch[f.next]
			f.next++
			e.downPos[c] = pos
			pos++
			stack = append(stack, frame{c, 0})
			continue
		}
		if f.v != root {
			e.upPos[f.v] = pos
			pos++
		}
		stack = stack[:len(stack)-1]
	}
	return e
}

// BottomUpSum returns the subtree sums of vals under + using parallel
// prefix sums over the Euler tour: the down edges of v's subtree occupy
// the contiguous tour range (downPos[v], upPos[v]), so the subtree sum is
// a prefix-sum difference plus v's own value... realized by scattering
// each non-root vertex's value to its down-edge position.
func (e *Engine) BottomUpSum(vals []int64) []int64 {
	n := e.t.N()
	out := make([]int64, n)
	if n == 0 {
		return out
	}
	if n == 1 {
		out[0] = vals[0]
		return out
	}
	L := 2 * (n - 1)
	contrib := make([]int64, L+1) // shifted by one: prefix[0] = 0
	root := e.t.Root()
	par.For(n, e.workers, func(lo, hi int) {
		for v := lo; v < hi; v++ {
			if v != root {
				contrib[e.downPos[v]+1] = vals[v]
			}
		}
	})
	par.PrefixSumInt64(contrib, e.workers)
	par.For(n, e.workers, func(lo, hi int) {
		for v := lo; v < hi; v++ {
			// Down edges inside v's subtree span positions
			// [downPos[v]+1, upPos[v]-1]; with the +1 shift the sum is
			// contrib[upPos[v]] - contrib[downPos[v]+1] plus v's value.
			out[v] = vals[v] + contrib[e.upPos[v]] - contrib[e.downPos[v]+1]
		}
	})
	return out
}

// TopDownSum returns the root-path sums of vals under +: each vertex's
// down edge contributes +val, its up edge -val, and the prefix at
// downPos[v] (inclusive) plus the root's value is the path sum.
func (e *Engine) TopDownSum(vals []int64) []int64 {
	n := e.t.N()
	out := make([]int64, n)
	if n == 0 {
		return out
	}
	root := e.t.Root()
	if n == 1 {
		out[root] = vals[root]
		return out
	}
	L := 2 * (n - 1)
	contrib := make([]int64, L)
	par.For(n, e.workers, func(lo, hi int) {
		for v := lo; v < hi; v++ {
			if v != root {
				contrib[e.downPos[v]] += vals[v]
				contrib[e.upPos[v]] -= vals[v]
			}
		}
	})
	par.PrefixSumInt64(contrib, e.workers)
	par.For(n, e.workers, func(lo, hi int) {
		for v := lo; v < hi; v++ {
			if v == root {
				out[v] = vals[root]
			} else {
				out[v] = vals[root] + contrib[e.downPos[v]]
			}
		}
	})
	return out
}
