// Package treefix implements the paper's treefix sum algorithms
// (Section V): given a rooted tree with a value per vertex, compute for
// every vertex the fold of the values in its subtree (bottom-up treefix)
// or along its root path (top-down treefix, Section V-D), under any
// associative operator.
//
// Three executors share the same semantics:
//
//   - SequentialBottomUp / SequentialTopDown: host oracles.
//   - BottomUp / TopDown / Both: the paper's Las Vegas rake-and-compress
//     supervertex contraction on the spatial computer simulator, with
//     O(1) algorithm state per processor and every message charged
//     (Lemmas 10-12: O(n log n) energy; O(log n) depth for bounded
//     degree, O(log² n) otherwise, with high probability).
//   - Engine.BottomUp / TopDown: goroutine-parallel executors under any
//     registered operator (Euler-tour scans, range tables and pointer
//     doubling chosen by the operator's capabilities) — the native
//     serving backend's treefix kernel. BottomUpSum / TopDownSum remain
//     the specialized + fast paths.
package treefix

import "fmt"

// Op is the associative operator of a treefix sum. Bottom-up treefix
// folds children in unspecified order, so Combine must be commutative
// (the paper's examples: sum, maximum). Identity must satisfy
// Combine(Identity, x) == x.
//
// The optional capability fields drive the goroutine-parallel Engine's
// dispatch: an invertible operator (a group, like add or xor) is
// executed as a prefix-scan difference over the Euler tour, an
// idempotent one (max, min) as a sparse range table; operators with
// neither capability still execute through slower generic paths. The
// spatial-simulator executors ignore both fields — contraction only
// needs Combine.
type Op struct {
	Name     string
	Identity int64
	Combine  func(a, b int64) int64
	// Invert, when non-nil, returns the group inverse of x under
	// Combine: Combine(x, Invert(x)) == Identity. Only meaningful for
	// commutative operators.
	Invert func(x int64) int64
	// Idempotent reports Combine(x, x) == x.
	Idempotent bool
}

// Add is the + operator (the paper's subtree-size and prefix use cases).
var Add = Op{Name: "add", Identity: 0,
	Combine: func(a, b int64) int64 { return a + b },
	Invert:  func(x int64) int64 { return -x },
}

// Max folds to the maximum value.
var Max = Op{Name: "max", Identity: -1 << 62, Idempotent: true, Combine: func(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}}

// Min folds to the minimum value.
var Min = Op{Name: "min", Identity: 1 << 62, Idempotent: true, Combine: func(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}}

// Xor folds with exclusive-or; useful in tests because it is its own
// inverse.
var Xor = Op{Name: "xor", Identity: 0,
	Combine: func(a, b int64) int64 { return a ^ b },
	Invert:  func(x int64) int64 { return x },
}

// OpByName returns a registered operator. An unknown name is a caller
// mistake: the error satisfies errors.Is(err, ErrInvalid) so the
// serving layer can map it to HTTP 400 / wire status invalid.
//
//spatialvet:errclass
func OpByName(name string) (Op, error) {
	switch name {
	case "add":
		return Add, nil
	case "max":
		return Max, nil
	case "min":
		return Min, nil
	case "xor":
		return Xor, nil
	}
	return Op{}, invalid(fmt.Errorf("treefix: unknown op %q", name))
}
