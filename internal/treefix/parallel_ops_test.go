package treefix

import (
	"errors"
	"testing"

	"spatialtree/internal/rng"
	"spatialtree/internal/tree"
)

// opsTestTrees yields the shapes that stress each dispatch path: deep
// paths (pointer doubling rounds), stars (wide rake groups), random
// attachment (mixed), bounded degree, and delete-renumbered id orders
// (parent ids above child ids).
func opsTestTrees(t *testing.T, n int, seed uint64) []*tree.Tree {
	t.Helper()
	r := rng.New(seed)
	path := make([]int, n)
	for i := range path {
		path[i] = i - 1
	}
	star := make([]int, n)
	star[0] = -1
	perm := r.Perm(n) // relabeled random tree: parents may exceed children
	inv := make([]int, n)
	for i, p := range perm {
		inv[p] = i
	}
	base := tree.RandomAttachment(n, r)
	relabeled := make([]int, n)
	for v := 0; v < n; v++ {
		if p := base.Parent(v); p == -1 {
			relabeled[perm[v]] = -1
		} else {
			relabeled[perm[v]] = perm[p]
		}
	}
	return []*tree.Tree{
		tree.MustFromParents(path),
		tree.MustFromParents(star),
		tree.RandomAttachment(n, rng.New(seed+1)),
		tree.RandomBoundedDegree(n, 2, rng.New(seed+2)),
		tree.MustFromParents(relabeled),
	}
}

func TestEngineGeneralOps(t *testing.T) {
	ops := []Op{Add, Max, Min, Xor}
	for _, n := range []int{1, 2, 7, 64, 513} {
		for ti, tr := range opsTestTrees(t, n, uint64(n)) {
			vals := make([]int64, n)
			r := rng.New(uint64(ti + n))
			for i := range vals {
				vals[i] = int64(r.Intn(2001)) - 1000
			}
			for _, workers := range []int{1, 4} {
				e := NewEngine(tr, workers)
				for _, op := range ops {
					gotBU, err := e.BottomUp(vals, op)
					if err != nil {
						t.Fatal(err)
					}
					wantBU := SequentialBottomUp(tr, vals, op)
					gotTD, err := e.TopDown(vals, op)
					if err != nil {
						t.Fatal(err)
					}
					wantTD := SequentialTopDown(tr, vals, op)
					for v := 0; v < n; v++ {
						if gotBU[v] != wantBU[v] {
							t.Fatalf("n=%d tree=%d w=%d op=%s: bottom-up[%d] = %d, want %d",
								n, ti, workers, op.Name, v, gotBU[v], wantBU[v])
						}
						if gotTD[v] != wantTD[v] {
							t.Fatalf("n=%d tree=%d w=%d op=%s: top-down[%d] = %d, want %d",
								n, ti, workers, op.Name, v, gotTD[v], wantTD[v])
						}
					}
				}
			}
		}
	}
}

// TestEngineNonCapabilityOp exercises the fallback paths: a commutative
// operator with neither Invert nor Idempotent set must still compute
// correct folds (bottom-up through the host contraction, top-down
// through pointer doubling).
func TestEngineNonCapabilityOp(t *testing.T) {
	// Saturating add: commutative and associative, not a group, not
	// idempotent.
	sat := Op{Name: "satadd", Identity: 0, Combine: func(a, b int64) int64 {
		s := a + b
		if s > 1000 {
			return 1000
		}
		return s
	}}
	tr := tree.RandomAttachment(257, rng.New(5))
	vals := make([]int64, tr.N())
	r := rng.New(6)
	for i := range vals {
		vals[i] = int64(r.Intn(90))
	}
	e := NewEngine(tr, 4)
	gotBU, err := e.BottomUp(vals, sat)
	if err != nil {
		t.Fatal(err)
	}
	gotTD, err := e.TopDown(vals, sat)
	if err != nil {
		t.Fatal(err)
	}
	wantBU := SequentialBottomUp(tr, vals, sat)
	wantTD := SequentialTopDown(tr, vals, sat)
	for v := 0; v < tr.N(); v++ {
		if gotBU[v] != wantBU[v] || gotTD[v] != wantTD[v] {
			t.Fatalf("vertex %d: got (%d, %d), want (%d, %d)", v, gotBU[v], gotTD[v], wantBU[v], wantTD[v])
		}
	}
}

// TestEngineUnsupportedOp pins the doc/behavior fix: an operator the
// engine cannot execute is a typed error, never a silent + sum.
func TestEngineUnsupportedOp(t *testing.T) {
	tr := tree.RandomAttachment(16, rng.New(7))
	e := NewEngine(tr, 2)
	vals := make([]int64, tr.N())
	if _, err := e.BottomUp(vals, Op{Name: "broken"}); !errors.Is(err, ErrUnsupportedOp) {
		t.Fatalf("bottom-up with nil Combine: err = %v, want ErrUnsupportedOp", err)
	}
	if _, err := e.TopDown(vals, Op{Name: "broken"}); !errors.Is(err, ErrUnsupportedOp) {
		t.Fatalf("top-down with nil Combine: err = %v, want ErrUnsupportedOp", err)
	}
	if _, err := e.BottomUp(vals[:4], Add); err == nil {
		t.Fatal("bottom-up with short vals: err = nil, want length error")
	}
	if _, err := e.TopDown(vals[:4], Add); err == nil {
		t.Fatal("top-down with short vals: err = nil, want length error")
	}
}

// TestOpCapabilities pins the registered operators' capability claims,
// which the parallel dispatch relies on for correctness.
func TestOpCapabilities(t *testing.T) {
	r := rng.New(8)
	for i := 0; i < 1000; i++ {
		x := int64(r.Intn(1 << 20))
		if got := Add.Combine(x, Add.Invert(x)); got != Add.Identity {
			t.Fatalf("add: x + (-x) = %d", got)
		}
		if got := Xor.Combine(x, Xor.Invert(x)); got != Xor.Identity {
			t.Fatalf("xor: x ^ x = %d", got)
		}
		if Max.Combine(x, x) != x || Min.Combine(x, x) != x {
			t.Fatal("max/min not idempotent")
		}
	}
	if !Max.Idempotent || !Min.Idempotent || Add.Invert == nil || Xor.Invert == nil {
		t.Fatal("capability fields missing on registered ops")
	}
}
