package treefix

import (
	"testing"

	"spatialtree/internal/machine"
	"spatialtree/internal/rng"
	"spatialtree/internal/sfc"
	"spatialtree/internal/tree"
)

func TestContractionAccounting(t *testing.T) {
	// Every non-root vertex deactivates exactly once:
	// compress ops + raked leaves == n - 1.
	r := rng.New(40)
	for _, tr := range testTrees(r) {
		if tr.N() < 2 {
			continue
		}
		s := machine.New(tr.N(), sfc.Hilbert{})
		_, st := BottomUp(s, tr, lfRanks(tr), make([]int64, tr.N()), Add, r)
		if st.CompressOps+st.RakedLeaves != tr.N()-1 {
			t.Errorf("n=%d: %d compresses + %d raked leaves != n-1",
				tr.N(), st.CompressOps, st.RakedLeaves)
		}
	}
}

func TestInputValuesNotMutated(t *testing.T) {
	r := rng.New(41)
	tr := tree.RandomAttachment(200, r)
	vals := randomVals(tr.N(), r)
	orig := append([]int64(nil), vals...)
	s := machine.New(tr.N(), sfc.Hilbert{})
	Both(s, tr, lfRanks(tr), vals, Add, r)
	for i := range vals {
		if vals[i] != orig[i] {
			t.Fatalf("input vals mutated at %d", i)
		}
	}
}

func TestAdversarialShapes(t *testing.T) {
	// Shapes chosen to stress one operation exclusively.
	shapes := map[string]*tree.Tree{
		"pure-compress (path)":      tree.Path(513),
		"pure-rake (star)":          tree.Star(513),
		"alternating (caterpillar)": tree.Caterpillar(513),
		"two-level (broom)":         tree.Broom(513),
		"deep-comb":                 tree.Comb(16, 31),
	}
	for name, tr := range shapes {
		vals := make([]int64, tr.N())
		for i := range vals {
			vals[i] = int64(i + 1)
		}
		for seed := uint64(0); seed < 5; seed++ {
			s := machine.New(tr.N(), sfc.Hilbert{})
			bu, td, _ := Both(s, tr, lfRanks(tr), vals, Add, rng.New(seed))
			wantBU := SequentialBottomUp(tr, vals, Add)
			wantTD := SequentialTopDown(tr, vals, Add)
			for v := 0; v < tr.N(); v++ {
				if bu[v] != wantBU[v] || td[v] != wantTD[v] {
					t.Fatalf("%s seed %d: mismatch at %d", name, seed, v)
				}
			}
		}
	}
}

func TestNonLightFirstPlacementStillCorrect(t *testing.T) {
	// The energy bound needs the layout; correctness must not.
	r := rng.New(42)
	tr := tree.RandomAttachment(300, r)
	vals := randomVals(tr.N(), r)
	rank := r.Perm(tr.N()) // arbitrary placement
	s := machine.New(tr.N(), sfc.Hilbert{})
	bu, _ := BottomUp(s, tr, rank, vals, Add, r)
	want := SequentialBottomUp(tr, vals, Add)
	for v := range want {
		if bu[v] != want[v] {
			t.Fatalf("random placement broke correctness at %d", v)
		}
	}
}

func TestTopDownOnlyRunSharesContraction(t *testing.T) {
	// TopDown alone must agree with the TopDown half of Both under the
	// same seed (same coin stream => same contraction).
	r1, r2 := rng.New(7), rng.New(7)
	tr := tree.PreferentialAttachment(200, rng.New(43))
	vals := randomVals(tr.N(), rng.New(44))
	s1 := machine.New(tr.N(), sfc.Hilbert{})
	td1, _ := TopDown(s1, tr, lfRanks(tr), vals, Add, r1)
	s2 := machine.New(tr.N(), sfc.Hilbert{})
	_, td2, _ := Both(s2, tr, lfRanks(tr), vals, Add, r2)
	for v := range td1 {
		if td1[v] != td2[v] {
			t.Fatalf("TopDown and Both disagree at %d", v)
		}
	}
}

func TestDeterministicPerSeed(t *testing.T) {
	tr := tree.RandomAttachment(300, rng.New(45))
	vals := randomVals(tr.N(), rng.New(46))
	run := func() (machine.Cost, Stats) {
		s := machine.New(tr.N(), sfc.Hilbert{})
		_, st := BottomUp(s, tr, lfRanks(tr), vals, Add, rng.New(99))
		return s.Cost(), st
	}
	c1, st1 := run()
	c2, st2 := run()
	if c1 != c2 || st1 != st2 {
		t.Fatalf("same seed produced different runs: %+v/%+v vs %+v/%+v", c1, st1, c2, st2)
	}
}
