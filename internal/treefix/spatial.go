package treefix

import (
	"spatialtree/internal/machine"
	"spatialtree/internal/rng"
	"spatialtree/internal/tree"
)

// This file implements the paper's spatial treefix algorithm
// (Section V): Las Vegas tree contraction with RAKE and COMPRESS over
// supervertices, followed by uncontraction.
//
// Supervertices are identified with their representative R(u) — the
// vertex closest to the root (Section V-A) — and each representative's
// processor holds the supervertex's partial sums. All algorithm state is
// O(1) words per processor: partial sums P (bottom-up) and P' (top-down
// spine fold), the A accumulators of the uncontraction, the supervertex
// parent pointer, and per-inactive-vertex undo words. The contraction
// log itself is distributed: every vertex becomes inactive at most once
// and stores only its own undo record (the role the paper's
// last_contracted / saved_state chains play).
//
// COMPRESS merges a viable supervertex v (only child of a non-branching
// parent, exactly one child itself) into its parent when v's random-mate
// coin is heads and the parent's is tails. RAKE folds all leaf children
// of a supervertex u into u when u has at most one non-leaf child.
// As in the paper, no global barrier separates rounds: every message is
// scheduled against per-processor clocks only, so the measured depth
// reflects the asynchronous execution the paper argues for
// (Section V-C).

// Stats reports what the contraction did.
type Stats struct {
	// Rounds is the number of COMPACT rounds until one supervertex
	// remained (O(log n) w.h.p., Lemma 11).
	Rounds int
	// CompressOps and RakeOps count contraction operations.
	CompressOps int
	// RakedLeaves counts leaves folded by all rakes combined.
	RakeOps     int
	RakedLeaves int
}

// undoKind discriminates the per-vertex undo records.
type undoKind uint8

const (
	undoNone undoKind = iota
	undoCompress
	undoRake
)

// undoRecord is the O(1)-word state an inactive vertex keeps so the
// uncontraction can replay its merge. For a compress, v stores the
// parent representative and the parent's pre-merge partial sums. For a
// rake, every raked leaf stores its parent representative and the
// parent's pre-rake P (the same value; conceptually only the group head
// needs it).
type undoRecord struct {
	kind  undoKind
	round int32
	u     int32 // parent representative at contraction time
	// pbuU / ptdU: parent's partial sums before the merge.
	pbuU, ptdU int64
}

// contraction holds the shared state of one spatial treefix run.
type contraction struct {
	t    *tree.Tree
	s    *machine.Sim
	rank []int
	op   Op

	active   []bool
	svp      []int   // supervertex parent representative (-1 for root sv)
	children [][]int // supervertex child representatives
	pbu, ptd []int64
	undo     []undoRecord
	// rounds[i] lists the vertices deactivated in round i+1, in
	// deactivation order (used to drive the uncontraction).
	rounds [][]int

	stats Stats
}

// BottomUp runs the spatial treefix sum: out[v] = op over the values of
// v's descendants. rank maps vertices to processor ranks (the tree's
// placement; use the light-first layout for the paper's bounds). The
// random-mate coins come from r.
func BottomUp(s *machine.Sim, t *tree.Tree, rank []int, vals []int64, op Op, r *rng.RNG) ([]int64, Stats) {
	bu, _, st := run(s, t, rank, vals, op, r, true, false)
	return bu, st
}

// TopDown runs the spatial top-down treefix (Section V-D): out[v] = op
// along the root-to-v path.
func TopDown(s *machine.Sim, t *tree.Tree, rank []int, vals []int64, op Op, r *rng.RNG) ([]int64, Stats) {
	_, td, st := run(s, t, rank, vals, op, r, false, true)
	return td, st
}

// Both runs one contraction and extracts both treefix directions from
// it; the two results share all structural messages.
func Both(s *machine.Sim, t *tree.Tree, rank []int, vals []int64, op Op, r *rng.RNG) (bottomUp, topDown []int64, st Stats) {
	return run(s, t, rank, vals, op, r, true, true)
}

func run(s *machine.Sim, t *tree.Tree, rank []int, vals []int64, op Op, r *rng.RNG, wantBU, wantTD bool) ([]int64, []int64, Stats) {
	n := t.N()
	c := &contraction{
		t: t, s: s, rank: rank, op: op,
		active:   make([]bool, n),
		svp:      make([]int, n),
		children: make([][]int, n),
		pbu:      make([]int64, n),
		ptd:      make([]int64, n),
		undo:     make([]undoRecord, n),
	}
	if n == 0 {
		return nil, nil, c.stats
	}
	if len(rank) != n || len(vals) != n {
		panic("treefix: rank/vals length mismatch")
	}
	for v := 0; v < n; v++ {
		c.active[v] = true
		c.svp[v] = t.Parent(v)
		c.children[v] = append([]int(nil), t.Children(v)...)
		c.pbu[v] = vals[v]
		c.ptd[v] = vals[v]
	}
	c.contract(r)
	abu, atd := c.uncontract()

	var bu, td []int64
	if wantBU {
		bu = make([]int64, n)
		for v := 0; v < n; v++ {
			bu[v] = op.Combine(c.pbu[v], abu[v])
		}
	}
	if wantTD {
		td = make([]int64, n)
		for v := 0; v < n; v++ {
			td[v] = op.Combine(atd[v], vals[v])
		}
	}
	return bu, td, c.stats
}

// infoPhase charges the messages of one parent-to-children notification
// over the supervertex tree: every supervertex delivers O(1) words to
// each child via binary splitting of its child list (the local-messaging
// discipline of Theorem 3, O(log deg) depth). All supervertices notify
// simultaneously, so the sends are issued in waves — wave k across all
// supervertices forms one oblivious batch; only the forwarding within a
// child list creates genuine dependencies. The information itself
// (branching bit, coin) is read from shared state.
func (c *contraction) infoPhase(svs []int) {
	type task struct {
		sender int
		list   []int
	}
	cur := make([]task, 0, len(svs))
	for _, u := range svs {
		if len(c.children[u]) > 0 {
			cur = append(cur, task{u, c.children[u]})
		}
	}
	var pairs [][2]int
	for len(cur) > 0 {
		pairs = pairs[:0]
		next := cur[:0:0]
		for _, tk := range cur {
			l := tk.list
			pairs = append(pairs, [2]int{c.rank[tk.sender], c.rank[l[0]]})
			if len(l) > 1 {
				m := len(l) / 2
				pairs = append(pairs, [2]int{c.rank[tk.sender], c.rank[l[m]]})
				if m > 1 {
					next = append(next, task{l[0], l[1:m]})
				}
				if m+1 < len(l) {
					next = append(next, task{l[m], l[m+1:]})
				}
			}
		}
		c.s.SendBatch(pairs)
		cur = next
	}
}

// splitCast charges a binary fan-out from u over list.
func (c *contraction) splitCast(u int, list []int) {
	if len(list) == 0 {
		return
	}
	c.s.Send(c.rank[u], c.rank[list[0]])
	if len(list) > 1 {
		m := len(list) / 2
		if m == 0 {
			m = 1
		}
		c.s.Send(c.rank[u], c.rank[list[m]])
		c.splitCast(list[0], list[1:m])
		c.splitCast(list[m], list[m+1:])
	}
}

// splitReduce charges a binary fan-in from list into u and returns the
// op-fold of get over the list.
func (c *contraction) splitReduce(u int, list []int, get func(v int) int64) int64 {
	if len(list) == 0 {
		return c.op.Identity
	}
	var rec func(owner int, l []int) int64
	rec = func(owner int, l []int) int64 {
		acc := get(l[0])
		if len(l) > 1 {
			m := len(l) / 2
			if m == 0 {
				m = 1
			}
			if m > 1 {
				acc = c.op.Combine(acc, rec(l[0], l[1:m]))
			}
			sub := get(l[m])
			if m+1 < len(l) {
				sub = c.op.Combine(sub, rec(l[m], l[m+1:]))
			}
			c.s.Send(c.rank[l[m]], c.rank[l[0]])
			acc = c.op.Combine(acc, sub)
		}
		c.s.Send(c.rank[l[0]], c.rank[owner])
		return acc
	}
	return rec(u, list)
}

// contract runs COMPACT rounds until one supervertex remains.
func (c *contraction) contract(r *rng.RNG) {
	n := c.t.N()
	activeList := make([]int, 0, n)
	for v := 0; v < n; v++ {
		activeList = append(activeList, v)
	}
	coin := make([]bool, n)
	leafNow := make([]bool, n)
	for len(activeList) > 1 {
		c.stats.Rounds++
		round := int32(c.stats.Rounds)
		var deactivated []int

		// Step 1+2 of COMPACT: coins and branching notification.
		for _, v := range activeList {
			coin[v] = r.Bool()
		}
		c.infoPhase(activeList)

		// Step 3: compress the random-mate independent set.
		for _, v := range activeList {
			u := c.svp[v]
			if u == -1 || len(c.children[v]) != 1 {
				continue
			}
			if len(c.children[u]) != 1 {
				continue // parent branching
			}
			if !coin[v] || coin[u] {
				continue
			}
			w := c.children[v][0]
			// v ships its partial sums up; u ships its pre-merge sums
			// down for v's undo record; v points w at its new parent.
			c.s.SendBatch([][2]int{
				{c.rank[v], c.rank[u]},
				{c.rank[u], c.rank[v]},
				{c.rank[v], c.rank[w]},
			})
			c.undo[v] = undoRecord{kind: undoCompress, round: round, u: int32(u), pbuU: c.pbu[u], ptdU: c.ptd[u]}
			c.pbu[u] = c.op.Combine(c.pbu[u], c.pbu[v])
			c.ptd[u] = c.op.Combine(c.ptd[u], c.ptd[v])
			c.children[u][0] = w
			c.svp[w] = u
			c.active[v] = false
			deactivated = append(deactivated, v)
			c.stats.CompressOps++
		}

		// Step 4: refresh leaf knowledge (second notification phase).
		live := activeList[:0]
		for _, v := range activeList {
			if c.active[v] {
				live = append(live, v)
			}
		}
		activeList = live
		c.infoPhase(activeList)

		// Step 5: rake. u may rake all its leaf children when at most
		// one non-leaf child remains. Leaf status is the snapshot the
		// step-4 notification delivered: a vertex whose children were
		// raked away earlier in this same pass is not yet known to its
		// parent as a leaf, so it cannot cascade into a second rake
		// this round. (Cascading is not just unfaithful to the message
		// discipline — it corrupts the undo log: the intermediate's
		// partial sum would be restored by its own group's undo before
		// its parent's undo reads it, silently dropping the raked
		// values. Reachable only when a parent's id exceeds a child's,
		// which delete-renumbered dynamic trees produce routinely.)
		for _, v := range activeList {
			leafNow[v] = len(c.children[v]) == 0
		}
		for _, u := range activeList {
			if !c.active[u] || len(c.children[u]) == 0 {
				continue
			}
			var leaves, rest []int
			for _, v := range c.children[u] {
				if leafNow[v] {
					leaves = append(leaves, v)
				} else {
					rest = append(rest, v)
				}
			}
			if len(leaves) == 0 || len(rest) > 1 {
				continue
			}
			// Leaves fold their P into u (local reduce, Section V-A.2).
			sum := c.splitReduce(u, leaves, func(v int) int64 { return c.pbu[v] })
			preBU, preTD := c.pbu[u], c.ptd[u]
			c.pbu[u] = c.op.Combine(c.pbu[u], sum)
			// Top-down P is the spine fold; rakes do not extend the
			// spine, so ptd[u] is untouched.
			for _, v := range leaves {
				c.undo[v] = undoRecord{kind: undoRake, round: round, u: int32(u), pbuU: preBU, ptdU: preTD}
				c.active[v] = false
				deactivated = append(deactivated, v)
			}
			c.children[u] = rest
			c.stats.RakeOps++
			c.stats.RakedLeaves += len(leaves)
		}
		live = activeList[:0]
		for _, v := range activeList {
			if c.active[v] {
				live = append(live, v)
			}
		}
		activeList = live
		c.rounds = append(c.rounds, deactivated)
	}
}

// uncontract replays the contraction backwards, maintaining the paper's
// invariants: for bottom-up, sum(u) = P_u ⊕ A_u where A_u folds the
// values below u's current supervertex; for top-down, sum'(u) =
// A'_u ⊕ val(u) where A'_u folds the values strictly above u's
// supervertex spine.
func (c *contraction) uncontract() (abu, atd []int64) {
	n := c.t.N()
	abu = make([]int64, n)
	atd = make([]int64, n)
	for v := 0; v < n; v++ {
		abu[v] = c.op.Identity
		atd[v] = c.op.Identity
	}
	for round := len(c.rounds) - 1; round >= 0; round-- {
		batch := c.rounds[round]
		// Undo rakes first (they were applied after the compresses in
		// the forward round), then compresses. Group raked leaves by
		// parent so each group is undone with one broadcast + one
		// reduce over the group (O(log k) depth, as in the forward
		// direction).
		groupOf := make(map[int][]int)
		var rakeParents []int
		var compresses []int
		for _, v := range batch {
			rec := &c.undo[v]
			if rec.kind == undoRake {
				u := int(rec.u)
				if len(groupOf[u]) == 0 {
					rakeParents = append(rakeParents, u)
				}
				groupOf[u] = append(groupOf[u], v)
			} else {
				compresses = append(compresses, v)
			}
		}
		for _, u := range rakeParents {
			leaves := groupOf[u]
			// u rebroadcasts its A' and spine fold to the raked leaves
			// (paper: a local broadcast omitting the kept child), and
			// the group refolds its retained P values back into A_u —
			// avoiding inverses, as the leaves kept their P.
			c.splitCast(u, leaves)
			for _, v := range leaves {
				atd[v] = c.op.Combine(atd[u], c.ptd[u])
			}
			sum := c.splitReduce(u, leaves, func(v int) int64 { return c.pbu[v] })
			abu[u] = c.op.Combine(abu[u], sum)
			c.pbu[u] = c.undo[leaves[0]].pbuU
		}
		for i := len(compresses) - 1; i >= 0; i-- {
			v := compresses[i]
			rec := &c.undo[v]
			u := int(rec.u)
			c.s.SendBatch([][2]int{{c.rank[u], c.rank[v]}, {c.rank[v], c.rank[u]}})
			abu[v] = abu[u]
			abu[u] = c.op.Combine(abu[u], c.pbu[v])
			atd[v] = c.op.Combine(atd[u], rec.ptdU)
			c.pbu[u] = rec.pbuU
			c.ptd[u] = rec.ptdU
		}
	}
	return abu, atd
}
