package treefix

import "spatialtree/internal/tree"

// SequentialBottomUp returns, for every vertex v, op folded over the
// values of v's descendants (including v): the treefix sum of Section V.
// Host oracle (iterative post-order).
func SequentialBottomUp(t *tree.Tree, vals []int64, op Op) []int64 {
	n := t.N()
	out := make([]int64, n)
	for _, v := range t.PostOrder() {
		acc := vals[v]
		for _, c := range t.Children(v) {
			acc = op.Combine(acc, out[c])
		}
		out[v] = acc
	}
	return out
}

// SequentialTopDown returns, for every vertex v, op folded along the
// root-to-v path (inclusive): the top-down treefix of Section V-D.
// Host oracle (pre-order).
func SequentialTopDown(t *tree.Tree, vals []int64, op Op) []int64 {
	n := t.N()
	out := make([]int64, n)
	for _, v := range t.PreOrder() {
		if p := t.Parent(v); p == -1 {
			out[v] = vals[v]
		} else {
			out[v] = op.Combine(out[p], vals[v])
		}
	}
	return out
}
