package treefix

import (
	"math"
	"testing"
	"testing/quick"

	"spatialtree/internal/machine"
	"spatialtree/internal/order"
	"spatialtree/internal/rng"
	"spatialtree/internal/sfc"
	"spatialtree/internal/tree"
)

func testTrees(r *rng.RNG) []*tree.Tree {
	return []*tree.Tree{
		tree.Path(1),
		tree.Path(2),
		tree.Path(30),
		tree.Star(40),
		tree.PerfectBinary(6),
		tree.PerfectKAry(4, 4),
		tree.Caterpillar(33),
		tree.Broom(28),
		tree.Comb(6, 5),
		tree.RandomAttachment(300, r),
		tree.PreferentialAttachment(250, r),
		tree.RandomBoundedDegree(200, 2, r),
		tree.Yule(80, r),
		tree.DecisionTree(500, 5, r),
	}
}

func randomVals(n int, r *rng.RNG) []int64 {
	vals := make([]int64, n)
	for i := range vals {
		vals[i] = int64(r.Intn(2000)) - 1000
	}
	return vals
}

func lfRanks(t *tree.Tree) []int { return order.LightFirst(t).Rank }

func TestSequentialBottomUpKnown(t *testing.T) {
	tr := tree.MustFromParents([]int{-1, 0, 0, 1, 1, 2})
	vals := []int64{1, 2, 3, 4, 5, 6}
	got := SequentialBottomUp(tr, vals, Add)
	want := []int64{21, 11, 9, 4, 5, 6}
	for v := range want {
		if got[v] != want[v] {
			t.Fatalf("bu[%d] = %d, want %d", v, got[v], want[v])
		}
	}
}

func TestSequentialTopDownKnown(t *testing.T) {
	tr := tree.MustFromParents([]int{-1, 0, 0, 1, 1, 2})
	vals := []int64{1, 2, 3, 4, 5, 6}
	got := SequentialTopDown(tr, vals, Add)
	want := []int64{1, 3, 4, 7, 8, 10}
	for v := range want {
		if got[v] != want[v] {
			t.Fatalf("td[%d] = %d, want %d", v, got[v], want[v])
		}
	}
}

func TestSpatialMatchesSequentialAdd(t *testing.T) {
	r := rng.New(1)
	for _, tr := range testTrees(r) {
		vals := randomVals(tr.N(), r)
		s := machine.New(tr.N(), sfc.Hilbert{})
		bu, td, st := Both(s, tr, lfRanks(tr), vals, Add, rng.New(uint64(tr.N())))
		wantBU := SequentialBottomUp(tr, vals, Add)
		wantTD := SequentialTopDown(tr, vals, Add)
		for v := 0; v < tr.N(); v++ {
			if bu[v] != wantBU[v] {
				t.Fatalf("n=%d: bu[%d] = %d, want %d (stats %+v)", tr.N(), v, bu[v], wantBU[v], st)
			}
			if td[v] != wantTD[v] {
				t.Fatalf("n=%d: td[%d] = %d, want %d (stats %+v)", tr.N(), v, td[v], wantTD[v], st)
			}
		}
	}
}

func TestSpatialMatchesSequentialMaxXor(t *testing.T) {
	r := rng.New(2)
	for _, op := range []Op{Max, Min, Xor} {
		for _, tr := range testTrees(r) {
			vals := randomVals(tr.N(), r)
			s := machine.New(tr.N(), sfc.Hilbert{})
			bu, td, _ := Both(s, tr, lfRanks(tr), vals, op, rng.New(7))
			wantBU := SequentialBottomUp(tr, vals, op)
			wantTD := SequentialTopDown(tr, vals, op)
			for v := 0; v < tr.N(); v++ {
				if bu[v] != wantBU[v] {
					t.Fatalf("op=%s n=%d: bu[%d] = %d, want %d", op.Name, tr.N(), v, bu[v], wantBU[v])
				}
				if td[v] != wantTD[v] {
					t.Fatalf("op=%s n=%d: td[%d] = %d, want %d", op.Name, tr.N(), v, td[v], wantTD[v])
				}
			}
		}
	}
}

func TestSpatialManySeeds(t *testing.T) {
	// Las Vegas: every coin stream yields correct results.
	r := rng.New(3)
	tr := tree.PreferentialAttachment(400, r)
	vals := randomVals(tr.N(), r)
	wantBU := SequentialBottomUp(tr, vals, Add)
	for seed := uint64(0); seed < 12; seed++ {
		s := machine.New(tr.N(), sfc.Hilbert{})
		bu, st := BottomUp(s, tr, lfRanks(tr), vals, Add, rng.New(seed))
		for v := range wantBU {
			if bu[v] != wantBU[v] {
				t.Fatalf("seed %d: bu[%d] = %d, want %d (stats %+v)", seed, v, bu[v], wantBU[v], st)
			}
		}
	}
}

func TestSpatialQuick(t *testing.T) {
	f := func(seed uint64, rawN uint16) bool {
		n := 1 + int(rawN)%300
		r := rng.New(seed)
		tr := tree.PreferentialAttachment(n, r)
		vals := randomVals(n, r)
		s := machine.New(n, sfc.Hilbert{})
		bu, td, _ := Both(s, tr, lfRanks(tr), vals, Add, r)
		wantBU := SequentialBottomUp(tr, vals, Add)
		wantTD := SequentialTopDown(tr, vals, Add)
		for v := 0; v < n; v++ {
			if bu[v] != wantBU[v] || td[v] != wantTD[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestSubtreeSizesViaTreefix(t *testing.T) {
	// The LCA algorithm's first step: treefix with all-ones values gives
	// subtree sizes.
	r := rng.New(4)
	tr := tree.RandomAttachment(200, r)
	ones := make([]int64, tr.N())
	for i := range ones {
		ones[i] = 1
	}
	s := machine.New(tr.N(), sfc.Hilbert{})
	bu, _ := BottomUp(s, tr, lfRanks(tr), ones, Add, r)
	sizes := tr.SubtreeSizes()
	for v := range sizes {
		if bu[v] != int64(sizes[v]) {
			t.Fatalf("size[%d] = %d, want %d", v, bu[v], sizes[v])
		}
	}
}

func TestRoundsLogarithmic(t *testing.T) {
	// Lemma 11: O(log n) COMPACT rounds w.h.p.
	for _, bits := range []int{10, 12, 14} {
		n := 1 << bits
		tr := tree.RandomBoundedDegree(n, 2, rng.New(uint64(bits)))
		s := machine.New(n, sfc.Hilbert{})
		_, st := BottomUp(s, tr, lfRanks(tr), make([]int64, n), Add, rng.New(5))
		if st.Rounds > 6*bits {
			t.Errorf("n=2^%d: %d rounds, want O(log n)", bits, st.Rounds)
		}
	}
}

func TestPathNeedsCompress(t *testing.T) {
	// A path cannot be contracted by rakes alone: compress must fire.
	n := 1 << 10
	tr := tree.Path(n)
	s := machine.New(n, sfc.Hilbert{})
	_, st := BottomUp(s, tr, lfRanks(tr), make([]int64, n), Add, rng.New(6))
	if st.CompressOps < n/4 {
		t.Errorf("path: only %d compress ops for n=%d", st.CompressOps, n)
	}
}

func TestStarRakesInOneRound(t *testing.T) {
	n := 1 << 10
	tr := tree.Star(n)
	s := machine.New(n, sfc.Hilbert{})
	_, st := BottomUp(s, tr, lfRanks(tr), make([]int64, n), Add, rng.New(7))
	if st.Rounds != 1 || st.RakeOps != 1 || st.RakedLeaves != n-1 {
		t.Errorf("star stats = %+v, want 1 round / 1 rake / %d leaves", st, n-1)
	}
}

func TestLemma11EnergyNearLinear(t *testing.T) {
	// Energy O(n log n) on light-first placements: the log-log slope of
	// energy vs n should be close to 1 (allowing the log factor).
	var ns, es []float64
	for _, bits := range []int{10, 12, 14} {
		n := 1 << bits
		tr := tree.RandomBoundedDegree(n, 2, rng.New(uint64(bits)))
		s := machine.New(n, sfc.Hilbert{})
		BottomUp(s, tr, lfRanks(tr), make([]int64, n), Add, rng.New(8))
		ns = append(ns, float64(n))
		es = append(es, float64(s.Energy()))
	}
	slope := logLogSlope(ns, es)
	if slope > 1.3 {
		t.Errorf("treefix energy exponent %.3f, want about 1 (near-linear)", slope)
	}
}

func TestLemma11DepthBoundedDegree(t *testing.T) {
	// O(log n) depth for bounded-degree trees.
	for _, bits := range []int{10, 13} {
		n := 1 << bits
		tr := tree.RandomBoundedDegree(n, 2, rng.New(uint64(bits)))
		s := machine.New(n, sfc.Hilbert{})
		BottomUp(s, tr, lfRanks(tr), make([]int64, n), Add, rng.New(9))
		if d := s.Depth(); d > int64(40*bits) {
			t.Errorf("n=2^%d: depth %d above O(log n) envelope", bits, d)
		}
	}
}

func TestPathDepthLogarithmic(t *testing.T) {
	// Regression: the per-round notification phase must not thread a
	// dependency chain down the path (all supervertices notify
	// simultaneously). A path's treefix depth is O(log n), not Θ(n).
	for _, bits := range []int{10, 12} {
		n := 1 << bits
		tr := tree.Path(n)
		s := machine.New(n, sfc.Hilbert{})
		BottomUp(s, tr, lfRanks(tr), make([]int64, n), Add, rng.New(3))
		if d := s.Depth(); d > int64(30*bits) {
			t.Errorf("path n=2^%d: depth %d, want O(log n)", bits, d)
		}
	}
}

func TestLemma12DepthUnbounded(t *testing.T) {
	// O(log² n) depth for unbounded degree.
	n := 1 << 13
	tr := tree.PreferentialAttachment(n, rng.New(11))
	s := machine.New(n, sfc.Hilbert{})
	BottomUp(s, tr, lfRanks(tr), make([]int64, n), Add, rng.New(12))
	if d := float64(s.Depth()); d > 15*13*13 {
		t.Errorf("unbounded-degree treefix depth %.0f above O(log² n) envelope", d)
	}
}

func TestScatterPlacementCostsMore(t *testing.T) {
	// The same algorithm on a scattered placement must burn far more
	// energy — the reason the layout matters.
	n := 1 << 12
	tr := tree.RandomBoundedDegree(n, 2, rng.New(13))
	vals := make([]int64, n)

	lf := machine.New(n, sfc.Hilbert{})
	BottomUp(lf, tr, lfRanks(tr), vals, Add, rng.New(14))

	sc := machine.New(n, sfc.Scatter{})
	BottomUp(sc, tr, lfRanks(tr), vals, Add, rng.New(14))

	if sc.Energy() < 4*lf.Energy() {
		t.Errorf("scatter energy %d not clearly above light-first %d", sc.Energy(), lf.Energy())
	}
}

func TestEngineMatchesSequential(t *testing.T) {
	r := rng.New(15)
	for _, tr := range testTrees(r) {
		vals := randomVals(tr.N(), r)
		for _, workers := range []int{1, 4} {
			e := NewEngine(tr, workers)
			bu := e.BottomUpSum(vals)
			td := e.TopDownSum(vals)
			wantBU := SequentialBottomUp(tr, vals, Add)
			wantTD := SequentialTopDown(tr, vals, Add)
			for v := 0; v < tr.N(); v++ {
				if bu[v] != wantBU[v] {
					t.Fatalf("w=%d n=%d: engine bu[%d] = %d, want %d", workers, tr.N(), v, bu[v], wantBU[v])
				}
				if td[v] != wantTD[v] {
					t.Fatalf("w=%d n=%d: engine td[%d] = %d, want %d", workers, tr.N(), v, td[v], wantTD[v])
				}
			}
		}
	}
}

func TestEngineQuick(t *testing.T) {
	f := func(seed uint64, rawN uint16) bool {
		n := 1 + int(rawN)%500
		r := rng.New(seed)
		tr := tree.RandomAttachment(n, r)
		vals := randomVals(n, r)
		e := NewEngine(tr, 4)
		bu := e.BottomUpSum(vals)
		want := SequentialBottomUp(tr, vals, Add)
		for v := 0; v < n; v++ {
			if bu[v] != want[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestOpByName(t *testing.T) {
	for _, name := range []string{"add", "max", "min", "xor"} {
		op, err := OpByName(name)
		if err != nil || op.Name != name {
			t.Fatalf("OpByName(%q) = %v, %v", name, op.Name, err)
		}
	}
	if _, err := OpByName("mul"); err == nil {
		t.Fatal("expected error for unknown op")
	}
}

func TestOpsAlgebra(t *testing.T) {
	for _, op := range []Op{Add, Max, Min, Xor} {
		vals := []int64{5, -3, 7, 0, 7}
		for _, v := range vals {
			if op.Combine(op.Identity, v) != v {
				t.Errorf("%s: identity law broken for %d", op.Name, v)
			}
			for _, w := range vals {
				if op.Combine(v, w) != op.Combine(w, v) {
					t.Errorf("%s: not commutative on (%d,%d)", op.Name, v, w)
				}
			}
		}
	}
}

func TestEmptyTree(t *testing.T) {
	empty := tree.MustFromParents(nil)
	s := machine.New(1, sfc.Hilbert{})
	bu, st := BottomUp(s, empty, nil, nil, Add, rng.New(1))
	if bu != nil || st.Rounds != 0 {
		t.Fatal("empty tree should be a no-op")
	}
}

func logLogSlope(xs, ys []float64) float64 {
	n := float64(len(xs))
	var sx, sy, sxx, sxy float64
	for i := range xs {
		lx, ly := math.Log(xs[i]), math.Log(ys[i])
		sx += lx
		sy += ly
		sxx += lx * lx
		sxy += lx * ly
	}
	return (n*sxy - sx*sy) / (n*sxx - sx*sx)
}
