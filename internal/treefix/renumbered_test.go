package treefix

import (
	"reflect"
	"testing"

	"spatialtree/internal/layout"
	"spatialtree/internal/machine"
	"spatialtree/internal/rng"
	"spatialtree/internal/sfc"
	"spatialtree/internal/tree"
)

// TestRenumberedTreeRegression pins the rake-cascade bug: on trees
// where a parent's id exceeds a child's — which the standard generators
// never produce but dynamic delete-renumbering produces routinely — a
// vertex whose children were raked away could itself be raked by its
// parent in the same COMPACT pass, and the uncontraction then restored
// its partial sum before the parent's undo read it, silently dropping
// the raked values. The minimal shape is parents [1 3 1 -1]: vertex 1
// rakes leaves 0 and 2, and vertex 3 (its parent, visited later in the
// same pass) must NOT rake vertex 1 until the next round.
func TestRenumberedTreeRegression(t *testing.T) {
	minimal := []int{1, 3, 1, -1}
	checkTreeAllOps(t, tree.MustFromParents(minimal), 0)

	// Random permutation-labeled trees: every parent/child id order is
	// exercised, unlike RandomAttachment's strictly increasing ids.
	r := rng.New(99)
	for n := 4; n <= 48; n += 11 {
		for trial := 0; trial < 25; trial++ {
			parents := make([]int, n)
			perm := r.Perm(n)
			parents[perm[0]] = -1
			for i := 1; i < n; i++ {
				parents[perm[i]] = perm[r.Intn(i)]
			}
			checkTreeAllOps(t, tree.MustFromParents(parents), uint64(n*1000+trial))
		}
	}
}

func checkTreeAllOps(t *testing.T, tr *tree.Tree, seed uint64) {
	t.Helper()
	n := tr.N()
	vals := make([]int64, n)
	for i := range vals {
		vals[i] = int64(5*i + 3)
	}
	p := layout.LightFirst(tr, sfc.Hilbert{})
	s := machine.New(n, p.Curve)
	bu, td, _ := Both(s, tr, p.Order.Rank, vals, Add, rng.New(seed))
	if want := SequentialBottomUp(tr, vals, Add); !reflect.DeepEqual(bu, want) {
		t.Fatalf("seed %d parents %v:\nbottom-up %v\nwant      %v", seed, tr.Parents(), bu, want)
	}
	if want := SequentialTopDown(tr, vals, Add); !reflect.DeepEqual(td, want) {
		t.Fatalf("seed %d parents %v:\ntop-down %v\nwant     %v", seed, tr.Parents(), td, want)
	}
}
