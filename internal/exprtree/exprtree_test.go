package exprtree

import (
	"testing"
	"testing/quick"

	"spatialtree/internal/machine"
	"spatialtree/internal/order"
	"spatialtree/internal/rng"
	"spatialtree/internal/sfc"
	"spatialtree/internal/tree"
)

func lfRanks(t *tree.Tree) []int { return order.LightFirst(t).Rank }

func TestValidate(t *testing.T) {
	r := rng.New(1)
	e := Random(50, r)
	if err := e.Validate(); err != nil {
		t.Fatal(err)
	}
	// Corrupt: operator on a leaf.
	bad := Random(10, r)
	for v := 0; v < bad.Tree.N(); v++ {
		if bad.Tree.IsLeaf(v) {
			bad.Kind[v] = Add
			break
		}
	}
	if err := bad.Validate(); err == nil {
		t.Fatal("expected validation error")
	}
}

func TestEvalSequentialKnown(t *testing.T) {
	// (2 + 3) * 4 = 20. Tree: root 0 = Mul, children 1 (Add), 2 (leaf 4);
	// 1's children 3 (leaf 2), 4 (leaf 3).
	tr := tree.MustFromParents([]int{-1, 0, 0, 1, 1})
	e := &Expr{
		Tree: tr,
		Kind: []NodeKind{Mul, Add, Leaf, Leaf, Leaf},
		Val:  []int64{0, 0, 4, 2, 3},
	}
	if err := e.Validate(); err != nil {
		t.Fatal(err)
	}
	vals := e.EvalSequential()
	if vals[1] != 5 || vals[0] != 20 {
		t.Fatalf("sequential eval = %v", vals)
	}
}

func TestSpatialMatchesSequential(t *testing.T) {
	for _, leaves := range []int{1, 2, 3, 5, 17, 100, 1000} {
		r := rng.New(uint64(leaves))
		e := Random(leaves, r)
		want := e.EvalSequential()[e.Tree.Root()]
		s := machine.New(e.Tree.N(), sfc.Hilbert{})
		got, st := EvalSpatial(s, e, lfRanks(e.Tree))
		if got != want {
			t.Fatalf("leaves=%d: spatial = %d, want %d (stats %+v)", leaves, got, want, st)
		}
	}
}

func TestSpatialQuick(t *testing.T) {
	f := func(seed uint64, rawLeaves uint16) bool {
		leaves := 1 + int(rawLeaves)%300
		r := rng.New(seed)
		e := Random(leaves, r)
		want := e.EvalSequential()[e.Tree.Root()]
		s := machine.New(e.Tree.N(), sfc.Hilbert{})
		got, _ := EvalSpatial(s, e, lfRanks(e.Tree))
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestDeepSkewedTree(t *testing.T) {
	// A maximally skewed expression (caterpillar-like full binary tree):
	// stresses long product chains and the rake schedule.
	const depth = 2000
	parent := []int{-1}
	kind := []NodeKind{Mul}
	val := []int64{0}
	cur := 0
	for i := 0; i < depth; i++ {
		l := len(parent)
		parent = append(parent, cur, cur) // leaf, next internal (or final leaf)
		kind = append(kind, Leaf, Mul)
		val = append(val, int64(i%7+2), 0)
		cur = l + 1
	}
	kind[cur] = Leaf
	val[cur] = 3
	tr := tree.MustFromParents(parent)
	e := &Expr{Tree: tr, Kind: kind, Val: val}
	if err := e.Validate(); err != nil {
		t.Fatal(err)
	}
	want := e.EvalSequential()[tr.Root()]
	s := machine.New(tr.N(), sfc.Hilbert{})
	got, st := EvalSpatial(s, e, lfRanks(tr))
	if got != want {
		t.Fatalf("skewed: got %d want %d", got, want)
	}
	// Rounds must be logarithmic even for this linear-depth tree.
	if st.Rounds > 40 {
		t.Errorf("skewed tree: %d rounds, want O(log n)", st.Rounds)
	}
}

func TestRoundsLogarithmic(t *testing.T) {
	for _, bits := range []int{10, 13} {
		leaves := 1 << bits
		e := Random(leaves, rng.New(uint64(bits)))
		s := machine.New(e.Tree.N(), sfc.Hilbert{})
		_, st := EvalSpatial(s, e, lfRanks(e.Tree))
		if st.Rounds > 3*bits {
			t.Errorf("leaves=2^%d: %d rounds, want O(log n)", bits, st.Rounds)
		}
		if st.Rakes != leaves-1 {
			t.Errorf("leaves=2^%d: %d rakes, want %d", bits, st.Rakes, leaves-1)
		}
	}
}

func TestSpatialCosts(t *testing.T) {
	// Near-linear energy on light-first placements; depth O(log n)-ish
	// (each round is a constant number of oblivious waves).
	perVertex := func(bits int) (float64, int64) {
		leaves := 1 << bits
		e := Random(leaves, rng.New(uint64(bits)))
		s := machine.New(e.Tree.N(), sfc.Hilbert{})
		EvalSpatial(s, e, lfRanks(e.Tree))
		return float64(s.Energy()) / float64(e.Tree.N()), s.Depth()
	}
	small, _ := perVertex(10)
	large, depth := perVertex(14)
	if large > 2.5*small+2 {
		t.Errorf("expression eval energy/vertex grew: %.2f -> %.2f", small, large)
	}
	if depth > 20*14 {
		t.Errorf("expression eval depth %d above O(log n) envelope", depth)
	}
}

func TestOnlyAddAndOnlyMul(t *testing.T) {
	for _, k := range []NodeKind{Add, Mul} {
		r := rng.New(9)
		e := Random(64, r)
		for v := range e.Kind {
			if e.Kind[v] != Leaf {
				e.Kind[v] = k
			}
		}
		want := e.EvalSequential()[e.Tree.Root()]
		s := machine.New(e.Tree.N(), sfc.Hilbert{})
		got, _ := EvalSpatial(s, e, lfRanks(e.Tree))
		if got != want {
			t.Fatalf("uniform op %d: got %d want %d", k, got, want)
		}
	}
}

func TestAffineAlgebra(t *testing.T) {
	f := affine{a: 3, b: 5}
	if f.apply(7) != 26 {
		t.Fatal("apply")
	}
	if g := f.thenAddConst(4); g.apply(7) != 30 {
		t.Fatal("thenAddConst")
	}
	if g := f.thenMulConst(2); g.apply(7) != 52 {
		t.Fatal("thenMulConst")
	}
	h := affine{a: 2, b: 1}
	// h∘f (x) = 2(3x+5)+1 = 6x+11.
	if c := h.composeAfter(f); c.a != 6 || c.b != 11 {
		t.Fatalf("compose = %+v", c)
	}
}
