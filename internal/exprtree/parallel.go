package exprtree

import (
	"spatialtree/internal/par"
)

// EvalParallel evaluates the expression's root on the host with
// goroutine parallelism: the same Miller-Reif rake schedule as
// EvalSpatial (leaves numbered left to right; each round rakes the
// odd-numbered left-child leaves, then the odd-numbered right-child
// leaves), carrying partial results as affine functions a·x + b. It is
// the native serving backend's expression kernel.
//
// Each wave's rakes are mutually independent by the parity argument
// (sibling leaves are consecutive in leaf order, so no two raked leaves
// share a parent, and a raked leaf's parent is never another rake's
// surviving sibling). The wave still runs in two parallel passes — a
// read-only planning pass, then a disjoint-write commit pass — because
// two rakes under one grandparent would otherwise race a child-slot
// read against the other's write.
//
// e must satisfy Validate; the result equals EvalSequential's root
// value. workers <= 0 means par.Workers().
func EvalParallel(e *Expr, workers int) (int64, Stats) {
	t := e.Tree
	n := t.N()
	var st Stats
	if n == 0 {
		return 0, st
	}
	root := t.Root()
	if n == 1 {
		return e.Val[root] % Mod, st
	}

	// Live binary-tree state, as in EvalSpatial.
	parent := append([]int(nil), t.Parents()...)
	left := make([]int, n)
	right := make([]int, n)
	fn := make([]affine, n)
	val := make([]int64, n)
	kind := e.Kind
	for v := 0; v < n; v++ {
		fn[v] = identityFn()
		val[v] = e.Val[v] % Mod
		left[v], right[v] = -1, -1
		if kind[v] != Leaf {
			ch := t.Children(v)
			left[v], right[v] = ch[0], ch[1]
		}
	}

	leaves := make([]int, 0, (n+1)/2)
	for _, v := range t.PreOrder() {
		if kind[v] == Leaf {
			leaves = append(leaves, v)
		}
	}
	alive := make([]bool, n)
	for v := range alive {
		alive[v] = true
	}

	// rakePlan is one rake's commit set, computed read-only in pass 1:
	// the raked leaf u, its parent p, the surviving sibling, the
	// grandparent slot (gp, isLeft) the sibling moves into, and the
	// sibling's composed function.
	type rakePlan struct {
		u, p, sib, gp int
		isLeft        bool
		newFn         affine
	}
	plans := make([]rakePlan, 0, len(leaves))
	rakeWave := func(wave []int) {
		if len(wave) == 0 {
			return
		}
		plans = plans[:0]
		for range wave {
			plans = append(plans, rakePlan{})
		}
		par.For(len(wave), workers, func(lo, hi int) { // pass 1: plan (reads only)
			for i := lo; i < hi; i++ {
				u := wave[i]
				p := parent[u]
				var sib int
				if left[p] == u {
					sib = right[p]
				} else {
					sib = left[p]
				}
				k := fn[u].apply(val[u])
				var withSibling affine
				switch kind[p] {
				case Add:
					withSibling = fn[sib].thenAddConst(k)
				case Mul:
					withSibling = fn[sib].thenMulConst(k)
				default:
					panic("exprtree: rake under a leaf")
				}
				gp := parent[p]
				plans[i] = rakePlan{
					u: u, p: p, sib: sib, gp: gp,
					isLeft: gp != -1 && left[gp] == p,
					newFn:  fn[p].composeAfter(withSibling),
				}
			}
		})
		par.For(len(plans), workers, func(lo, hi int) { // pass 2: commit (disjoint writes)
			for i := lo; i < hi; i++ {
				pl := plans[i]
				fn[pl.sib] = pl.newFn
				parent[pl.sib] = pl.gp
				if pl.gp != -1 {
					if pl.isLeft {
						left[pl.gp] = pl.sib
					} else {
						right[pl.gp] = pl.sib
					}
				}
				alive[pl.u] = false
				alive[pl.p] = false
			}
		})
		st.Rakes += len(wave)
	}

	pSnap := make([]int, n)
	for len(leaves) > 1 {
		st.Rounds++
		var lefts, rights []int
		for i, u := range leaves {
			if i%2 == 0 && parent[u] != -1 { // odd in 1-based counting
				pSnap[u] = parent[u]
				if left[parent[u]] == u {
					lefts = append(lefts, u)
				} else {
					rights = append(rights, u)
				}
			}
		}
		rakeWave(lefts)
		// Same guard as EvalSpatial: a right leaf whose parent edge
		// changed this round waits for the next one.
		pending := rights[:0]
		for _, u := range rights {
			if alive[parent[u]] && parent[u] == pSnap[u] {
				pending = append(pending, u)
			}
		}
		rakeWave(pending)
		next := leaves[:0]
		for _, u := range leaves {
			if alive[u] {
				next = append(next, u)
			}
		}
		leaves = next
	}
	r := leaves[0]
	return fn[r].apply(val[r]), st
}
