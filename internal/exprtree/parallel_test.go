package exprtree

import (
	"testing"

	"spatialtree/internal/rng"
	"spatialtree/internal/tree"
)

// TestEvalParallelAgainstSequential pins the goroutine evaluator to the
// host oracle across sizes, seeds and worker counts.
func TestEvalParallelAgainstSequential(t *testing.T) {
	for _, leaves := range []int{1, 2, 3, 8, 33, 129, 512, 1000} {
		for _, seed := range []uint64{1, 2, 3} {
			e := Random(leaves, rng.New(seed))
			want := e.EvalSequential()[e.Tree.Root()]
			for _, workers := range []int{1, 4, 16} {
				got, st := EvalParallel(e, workers)
				if got != want {
					t.Fatalf("leaves=%d seed=%d w=%d: parallel %d, sequential %d", leaves, seed, workers, got, want)
				}
				if leaves > 1 && st.Rakes != leaves-1 {
					t.Fatalf("leaves=%d seed=%d w=%d: %d rakes, want %d", leaves, seed, workers, st.Rakes, leaves-1)
				}
			}
		}
	}
}

// TestEvalParallelDeepChain exercises the worst rake schedule: a
// left-leaning caterpillar, where every round retires only a couple of
// leaves.
func TestEvalParallelDeepChain(t *testing.T) {
	const leaves = 400
	n := 2*leaves - 1
	parents := make([]int, n)
	kind := make([]NodeKind, n)
	val := make([]int64, n)
	// Vertex 0 is the root; internal vertices 0..leaves-2 form a left
	// spine: internal i has children (i+1 = next internal or the last
	// leaf) and (leaf leaves-1+i).
	parents[0] = -1
	for i := 0; i < leaves-1; i++ {
		kind[i] = Mul
		if i%3 == 0 {
			kind[i] = Add
		}
		if i+1 < leaves-1 {
			parents[i+1] = i
		}
		parents[leaves-1+i] = i
	}
	parents[n-1] = leaves - 2
	for v := leaves - 1; v < n; v++ {
		kind[v] = Leaf
		val[v] = int64(v * 37 % Mod)
	}
	e := &Expr{Tree: tree.MustFromParents(parents), Kind: kind, Val: val}
	if err := e.Validate(); err != nil {
		t.Fatal(err)
	}
	want := e.EvalSequential()[e.Tree.Root()]
	for _, workers := range []int{1, 8} {
		if got, _ := EvalParallel(e, workers); got != want {
			t.Fatalf("w=%d: parallel %d, sequential %d", workers, got, want)
		}
	}
}
