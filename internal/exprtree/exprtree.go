// Package exprtree implements parallel expression tree evaluation, the
// classic application of tree contraction that Section V of the paper
// ties its treefix framework to ("this problem ... is related to the
// parallel evaluation of arithmetic expressions [Miller & Reif]").
//
// An expression tree is a full binary tree whose leaves hold constants
// and whose internal nodes hold + or ×. The spatial evaluator contracts
// the tree with the Miller-Reif rake-only schedule: leaves are numbered
// left to right, and each round rakes first the odd-numbered leaves that
// are left children, then the odd-numbered leaves that are right
// children — no two raked leaves share a parent, so all rakes of a wave
// are independent. Partial results are carried as affine functions
// a·x + b, which are closed under composition with + and × by a
// constant; each rake therefore needs O(1) words and O(1) messages.
// The leaf count halves every round: O(log n) rounds, and on a
// light-first layout the messages stay local (near-linear energy).
//
// Arithmetic is modular (a fixed prime) so the evaluation is exact for
// arbitrarily deep products.
package exprtree

import (
	"fmt"

	"spatialtree/internal/machine"
	"spatialtree/internal/rng"
	"spatialtree/internal/tree"
)

// Mod is the arithmetic modulus (a prime < 2^31, so products of two
// residues fit in int64).
const Mod = 1_000_000_007

// NodeKind labels expression nodes.
type NodeKind uint8

// Node kinds.
const (
	Leaf NodeKind = iota // holds a constant
	Add                  // x + y
	Mul                  // x · y
)

// Expr is an expression over a full binary tree: every internal node has
// exactly two children.
type Expr struct {
	Tree *tree.Tree
	// Kind[v] labels vertex v; Val[v] is meaningful for leaves.
	Kind []NodeKind
	Val  []int64
}

// Validate checks the full-binary and labeling invariants.
func (e *Expr) Validate() error {
	t := e.Tree
	if len(e.Kind) != t.N() || len(e.Val) != t.N() {
		return fmt.Errorf("exprtree: label arrays do not match tree size")
	}
	for v := 0; v < t.N(); v++ {
		nc := t.NumChildren(v)
		switch e.Kind[v] {
		case Leaf:
			if nc != 0 {
				return fmt.Errorf("exprtree: leaf %d has %d children", v, nc)
			}
		case Add, Mul:
			if nc != 2 {
				return fmt.Errorf("exprtree: operator %d has %d children", v, nc)
			}
		default:
			return fmt.Errorf("exprtree: vertex %d has unknown kind", v)
		}
	}
	return nil
}

// Random returns a random expression with the given number of leaves
// (2·leaves-1 vertices): a Yule-shaped full binary tree with uniform
// leaf constants and operators.
func Random(leaves int, r *rng.RNG) *Expr {
	t := tree.Yule(leaves, r)
	e := &Expr{Tree: t, Kind: make([]NodeKind, t.N()), Val: make([]int64, t.N())}
	for v := 0; v < t.N(); v++ {
		if t.IsLeaf(v) {
			e.Kind[v] = Leaf
			e.Val[v] = int64(r.Intn(Mod))
		} else if r.Bool() {
			e.Kind[v] = Add
		} else {
			e.Kind[v] = Mul
		}
	}
	return e
}

// EvalSequential returns the value of every subtree, mod Mod. Host
// oracle.
func (e *Expr) EvalSequential() []int64 {
	t := e.Tree
	out := make([]int64, t.N())
	for _, v := range t.PostOrder() {
		switch e.Kind[v] {
		case Leaf:
			out[v] = e.Val[v] % Mod
		case Add:
			ch := t.Children(v)
			out[v] = (out[ch[0]] + out[ch[1]]) % Mod
		case Mul:
			ch := t.Children(v)
			out[v] = out[ch[0]] * out[ch[1]] % Mod
		}
	}
	return out
}

// affine is the O(1)-word partial result f(x) = (A·x + B) mod Mod.
type affine struct{ a, b int64 }

func identityFn() affine { return affine{a: 1, b: 0} }

// apply evaluates f(x).
func (f affine) apply(x int64) int64 { return (f.a*x%Mod + f.b) % Mod }

// thenAddConst returns g(x) = f(x) + k (the parent op was +, sibling k).
func (f affine) thenAddConst(k int64) affine {
	return affine{a: f.a, b: (f.b + k) % Mod}
}

// thenMulConst returns g(x) = f(x) · k.
func (f affine) thenMulConst(k int64) affine {
	return affine{a: f.a * k % Mod, b: f.b * k % Mod}
}

// compose returns g∘f: first f (inner), then g (outer).
func (g affine) composeAfter(f affine) affine {
	return affine{a: g.a * f.a % Mod, b: (g.a*f.b%Mod + g.b) % Mod}
}

// Stats reports the contraction schedule.
type Stats struct {
	// Rounds is the number of rake rounds (O(log n)).
	Rounds int
	// Rakes counts raked leaves.
	Rakes int
}

// EvalSpatial evaluates the expression's root on the spatial computer:
// rank maps vertices to processor ranks (use a light-first placement for
// local messaging). Every rake exchanges O(1) messages between the
// leaf, its parent and its sibling; all rakes of a wave are issued as
// one oblivious batch.
func EvalSpatial(s *machine.Sim, e *Expr, rank []int) (int64, Stats) {
	t := e.Tree
	n := t.N()
	var st Stats
	if n == 0 {
		return 0, st
	}
	if n == 1 {
		return e.Val[t.Root()] % Mod, st
	}

	// Live binary-tree state, O(1) words per vertex.
	parent := append([]int(nil), t.Parents()...)
	left := make([]int, n)
	right := make([]int, n)
	fn := make([]affine, n)
	kind := append([]NodeKind(nil), e.Kind...)
	val := make([]int64, n)
	for v := 0; v < n; v++ {
		fn[v] = identityFn()
		val[v] = e.Val[v] % Mod
		left[v], right[v] = -1, -1
		if kind[v] != Leaf {
			ch := t.Children(v)
			left[v], right[v] = ch[0], ch[1]
		}
	}

	// Leaves in left-to-right (in-order) sequence.
	leaves := make([]int, 0, (n+1)/2)
	for _, v := range t.PreOrder() {
		if kind[v] == Leaf {
			leaves = append(leaves, v)
		}
	}

	pairs := make([][2]int, 0, n)
	// rakeWave rakes the given leaves (no two sharing a parent).
	rakeWave := func(wave []int, alive map[int]bool) {
		pairs = pairs[:0]
		for _, u := range wave {
			p := parent[u]
			// u ships f_u(c_u) to p; p composes and ships the combined
			// function to the sibling s.
			var sib int
			if left[p] == u {
				sib = right[p]
			} else {
				sib = left[p]
			}
			pairs = append(pairs, [2]int{rank[u], rank[p]}, [2]int{rank[p], rank[sib]})
		}
		s.SendBatch(pairs)
		for _, u := range wave {
			p := parent[u]
			var sib int
			if left[p] == u {
				sib = right[p]
			} else {
				sib = left[p]
			}
			k := fn[u].apply(val[u])
			var withSibling affine
			switch kind[p] {
			case Add:
				withSibling = fn[sib].thenAddConst(k)
			case Mul:
				withSibling = fn[sib].thenMulConst(k)
			default:
				panic("exprtree: rake under a leaf")
			}
			// value(p) = f_p(k ∘ raw(sib-subtree)) — the sibling now
			// stands for p.
			fn[sib] = fn[p].composeAfter(withSibling)
			gp := parent[p]
			parent[sib] = gp
			if gp != -1 {
				if left[gp] == p {
					left[gp] = sib
				} else {
					right[gp] = sib
				}
			}
			delete(alive, u)
			delete(alive, p)
			st.Rakes++
		}
	}

	alive := make(map[int]bool, n)
	for v := 0; v < n; v++ {
		alive[v] = true
	}
	for len(leaves) > 1 {
		st.Rounds++
		// Split the odd-numbered leaves by child side; rake the two
		// sides as separate waves (Miller-Reif schedule). No two
		// odd-numbered leaves share a parent — sibling leaves are
		// consecutive in the left-to-right leaf order, so one of them
		// is even — which makes each wave conflict-free.
		var lefts, rights []int
		pSnap := make(map[int]int, len(leaves)/2)
		for i, u := range leaves {
			if i%2 == 0 && parent[u] != -1 { // odd in 1-based counting
				pSnap[u] = parent[u]
				if left[parent[u]] == u {
					lefts = append(lefts, u)
				} else {
					rights = append(rights, u)
				}
			}
		}
		rakeWave(lefts, alive)
		// Guard (never triggered by the parity argument, but cheap): a
		// right leaf whose parent edge changed this round waits.
		pending := rights[:0]
		for _, u := range rights {
			if alive[parent[u]] && parent[u] == pSnap[u] {
				pending = append(pending, u)
			}
		}
		rakeWave(pending, alive)
		// Surviving leaves keep their relative order.
		next := leaves[:0]
		for _, u := range leaves {
			if alive[u] {
				next = append(next, u)
			}
		}
		leaves = next
	}
	root := leaves[0]
	return fn[root].apply(val[root]), st
}
