package listrank

import (
	"math"
	"testing"
	"testing/quick"

	"spatialtree/internal/machine"
	"spatialtree/internal/rng"
	"spatialtree/internal/sfc"
)

// randomList returns a next array describing a uniformly random
// arrangement of n nodes into one list.
func randomList(n int, r *rng.RNG) []int {
	next := make([]int, n)
	perm := r.Perm(n)
	for i := 0; i+1 < n; i++ {
		next[perm[i]] = perm[i+1]
	}
	if n > 0 {
		next[perm[n-1]] = -1
	}
	return next
}

// identityList is the list 0 -> 1 -> ... -> n-1.
func identityList(n int) []int {
	next := make([]int, n)
	for i := range next {
		next[i] = i + 1
	}
	if n > 0 {
		next[n-1] = -1
	}
	return next
}

func TestValidate(t *testing.T) {
	if err := Validate(identityList(10)); err != nil {
		t.Fatalf("valid list rejected: %v", err)
	}
	if err := Validate(randomList(100, rng.New(1))); err != nil {
		t.Fatalf("valid random list rejected: %v", err)
	}
	bad := [][]int{
		{-1, -1},   // two tails
		{1, 0},     // cycle
		{0, -1},    // self loop
		{2, -1, 1}, // 2 -> 1 and 0 -> 2: ok? indeg(1)=2? next[0]=2,next[1]=-1,next[2]=1: head 0, 0->2->1 covers all: valid!
	}
	for _, nx := range bad[:3] {
		if err := Validate(nx); err == nil {
			t.Errorf("Validate(%v): expected error", nx)
		}
	}
	if err := Validate(bad[3]); err != nil {
		t.Errorf("Validate(%v): unexpected error %v", bad[3], err)
	}
}

func TestSequentialKnown(t *testing.T) {
	ranks := Sequential(identityList(5))
	want := []int64{4, 3, 2, 1, 0}
	for i := range want {
		if ranks[i] != want[i] {
			t.Fatalf("rank[%d] = %d, want %d", i, ranks[i], want[i])
		}
	}
	if got := Sequential([]int{}); len(got) != 0 {
		t.Fatal("empty list")
	}
	if got := Sequential([]int{-1}); got[0] != 0 {
		t.Fatal("singleton rank")
	}
}

func TestSpatialMatchesSequential(t *testing.T) {
	r := rng.New(2)
	for _, n := range []int{1, 2, 3, 17, 100, 1000, 4096} {
		next := randomList(n, r)
		want := Sequential(next)
		s := machine.New(n, sfc.Hilbert{})
		got := Spatial(s, next, nil, rng.New(uint64(n)))
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("n=%d: rank[%d] = %d, want %d", n, i, got[i], want[i])
			}
		}
	}
}

func TestSpatialManySeeds(t *testing.T) {
	// Las Vegas: different coin seeds must all give the correct answer.
	r := rng.New(3)
	next := randomList(500, r)
	want := Sequential(next)
	for seed := uint64(0); seed < 10; seed++ {
		s := machine.New(500, sfc.Hilbert{})
		got := Spatial(s, next, nil, rng.New(seed))
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("seed %d: rank[%d] = %d, want %d", seed, i, got[i], want[i])
			}
		}
	}
}

func TestSpatialQuick(t *testing.T) {
	f := func(seed uint64, rawN uint16) bool {
		n := 1 + int(rawN)%400
		r := rng.New(seed)
		next := randomList(n, r)
		want := Sequential(next)
		s := machine.New(n, sfc.Hilbert{})
		got := Spatial(s, next, nil, r)
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestWyllieMatchesSequential(t *testing.T) {
	r := rng.New(4)
	for _, n := range []int{1, 2, 10, 257, 1024} {
		next := randomList(n, r)
		want := Sequential(next)
		s := machine.New(n, sfc.Hilbert{})
		got := Wyllie(s, next, nil)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("n=%d: rank[%d] = %d, want %d", n, i, got[i], want[i])
			}
		}
	}
}

func TestSpatialWithExplicitPlacement(t *testing.T) {
	// Nodes placed at scattered processors: still correct.
	r := rng.New(5)
	n := 300
	next := randomList(n, r)
	s := machine.New(2*n, sfc.Hilbert{})
	proc := r.Perm(2 * n)[:n]
	want := Sequential(next)
	got := Spatial(s, next, proc, r)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("rank[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestTheorem5Costs(t *testing.T) {
	// Energy exponent about 1.5, depth O(log n).
	var ns, es []float64
	for _, bits := range []int{10, 12, 14} {
		n := 1 << bits
		next := randomList(n, rng.New(uint64(bits)))
		s := machine.New(n, sfc.Hilbert{})
		Spatial(s, next, nil, rng.New(99))
		ns = append(ns, float64(n))
		es = append(es, float64(s.Energy()))
		if d := s.Depth(); d > int64(25*bits) {
			t.Errorf("n=2^%d: spatial list-rank depth %d above O(log n) envelope", bits, d)
		}
	}
	slope := logLogSlope(ns, es)
	if slope < 1.25 || slope > 1.75 {
		t.Errorf("spatial list-rank energy exponent %.3f, want about 1.5", slope)
	}
}

func TestWyllieCostlierThanSpatial(t *testing.T) {
	// The PRAM baseline spends more energy and messages (log-factor).
	n := 1 << 12
	next := randomList(n, rng.New(7))
	sw := machine.New(n, sfc.Hilbert{})
	Wyllie(sw, next, nil)
	ss := machine.New(n, sfc.Hilbert{})
	Spatial(ss, next, nil, rng.New(8))
	if sw.Energy() < 2*ss.Energy() {
		t.Errorf("Wyllie energy %d not clearly above spatial %d", sw.Energy(), ss.Energy())
	}
	if sw.Messages() < 2*ss.Messages() {
		t.Errorf("Wyllie messages %d not clearly above spatial %d", sw.Messages(), ss.Messages())
	}
}

func TestSpatialMessageCountLinear(t *testing.T) {
	// O(n) messages in total (geometric contraction), unlike Wyllie.
	for _, bits := range []int{10, 13} {
		n := 1 << bits
		next := randomList(n, rng.New(uint64(bits)))
		s := machine.New(n, sfc.Hilbert{})
		Spatial(s, next, nil, rng.New(1))
		if s.Messages() > int64(16*n) {
			t.Errorf("n=2^%d: %d messages, want O(n)", bits, s.Messages())
		}
	}
}

func logLogSlope(xs, ys []float64) float64 {
	n := float64(len(xs))
	var sx, sy, sxx, sxy float64
	for i := range xs {
		lx, ly := math.Log(xs[i]), math.Log(ys[i])
		sx += lx
		sy += ly
		sxx += lx * lx
		sxy += lx * ly
	}
	return (n*sxy - sx*sy) / (n*sxx - sx*sx)
}
