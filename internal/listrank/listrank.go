// Package listrank solves list ranking on the spatial computer: given a
// linked list, compute for every node its distance to the tail. List
// ranking is the engine of the paper's layout construction (Section IV):
// ranking the Euler tour of a tree yields tour positions, from which
// subtree sizes and light-first ranks follow.
//
// Three implementations are provided:
//
//   - Sequential: host oracle.
//   - Spatial: the paper's adaptation of the random-mate contraction
//     algorithm (Anderson & Miller) — Theorem 5: O(n^{3/2}) energy and
//     O(log n) depth with high probability.
//   - Wyllie: the classic PRAM pointer-jumping algorithm executed on the
//     grid as a baseline; it performs Θ(n log n) messages over
//     Θ(√n)-distance pointers, i.e. Θ(n^{3/2} log n) energy — the
//     polylogarithmic-factor energy penalty of ignoring locality.
package listrank

import (
	"fmt"

	"spatialtree/internal/machine"
	"spatialtree/internal/rng"
)

// Validate checks that next encodes a single linked list covering all n
// nodes: exactly one tail (next = -1), no node pointed to twice, and one
// head reaching all nodes.
func Validate(next []int) error {
	n := len(next)
	indeg := make([]int, n)
	tail := -1
	for v, w := range next {
		if w == -1 {
			if tail != -1 {
				return fmt.Errorf("listrank: two tails (%d, %d)", tail, v)
			}
			tail = v
			continue
		}
		if w < 0 || w >= n {
			return fmt.Errorf("listrank: node %d points out of range (%d)", v, w)
		}
		if w == v {
			return fmt.Errorf("listrank: node %d points to itself", v)
		}
		indeg[w]++
	}
	if n > 0 && tail == -1 {
		return fmt.Errorf("listrank: no tail")
	}
	head := -1
	for v, d := range indeg {
		if d > 1 {
			return fmt.Errorf("listrank: node %d has %d predecessors", v, d)
		}
		if d == 0 {
			if head != -1 {
				return fmt.Errorf("listrank: two heads (%d, %d)", head, v)
			}
			head = v
		}
	}
	if n > 0 && head == -1 {
		return fmt.Errorf("listrank: no head (cycle)")
	}
	count := 0
	for v := head; v != -1; v = next[v] {
		count++
		if count > n {
			return fmt.Errorf("listrank: cycle detected")
		}
	}
	if count != n {
		return fmt.Errorf("listrank: head reaches %d of %d nodes", count, n)
	}
	return nil
}

// Sequential returns rank[v] = number of links from v to the tail
// (tail = 0). Host oracle; panics on malformed lists.
func Sequential(next []int) []int64 {
	n := len(next)
	rank := make([]int64, n)
	prev := make([]int, n)
	for i := range prev {
		prev[i] = -1
	}
	tail := -1
	for v, w := range next {
		if w == -1 {
			tail = v
		} else {
			prev[w] = v
		}
	}
	if n == 0 {
		return rank
	}
	if tail == -1 {
		panic("listrank: no tail")
	}
	var r int64
	for v := tail; v != -1; v = prev[v] {
		rank[v] = r
		r++
	}
	if r != int64(n) {
		panic("listrank: list does not cover all nodes")
	}
	return rank
}

// spliceRecord remembers one removed node for the uncontraction pass.
// Conceptually it lives in the removed node's processor: O(1) words.
type spliceRecord struct {
	v    int   // the spliced node
	w    int   // next[v] at splice time
	val  int64 // link weight v->w at splice time
	iter int   // contraction round
}

// Spatial computes list ranks with the random-mate contraction algorithm
// of Theorem 5, recording every message in s. proc[i] gives the processor
// rank of node i (nil means node i sits at processor rank i). The returned
// ranks count links to the tail.
func Spatial(s *machine.Sim, next []int, proc []int, r *rng.RNG) []int64 {
	n := len(next)
	rank := make([]int64, n)
	if n == 0 {
		return rank
	}
	if proc == nil {
		proc = make([]int, n)
		for i := range proc {
			proc[i] = i
		}
	}

	// Per-node O(1) state.
	nxt := append([]int(nil), next...)
	prv := make([]int, n)
	val := make([]int64, n) // weight of the link v -> nxt[v]
	for i := range prv {
		prv[i] = -1
	}
	pairs := make([][2]int, 0, n)
	for v, w := range nxt {
		if w != -1 {
			val[v] = 1
			prv[w] = v
			pairs = append(pairs, [2]int{proc[v], proc[w]}) // announce prev
		}
	}
	s.SendBatch(pairs)

	active := make([]int, 0, n)
	for v := 0; v < n; v++ {
		active = append(active, v)
	}
	isActive := make([]bool, n)
	for _, v := range active {
		isActive[v] = true
	}

	base := 32
	for b := n; b > 1; b /= 2 {
		base++ // base threshold ~ 32 + log2 n
	}

	var history []spliceRecord
	coin := make([]bool, n)
	iter := 0
	for len(active) > base {
		iter++
		// Everyone flips; each node tells its successor its coin so the
		// successor can test "predecessor chose tails".
		pairs = pairs[:0]
		for _, v := range active {
			coin[v] = r.Bool()
			if nxt[v] != -1 {
				pairs = append(pairs, [2]int{proc[v], proc[nxt[v]]})
			}
		}
		s.SendBatch(pairs)

		// Select the independent set: interior nodes that chose heads
		// whose predecessor chose tails.
		selected := make([]int, 0, len(active)/4)
		for _, v := range active {
			if prv[v] != -1 && nxt[v] != -1 && coin[v] && !coin[prv[v]] {
				selected = append(selected, v)
			}
		}
		// Splice each selected v out: v tells u=prev its (w, val), and
		// tells w its new predecessor.
		pairs = pairs[:0]
		for _, v := range selected {
			pairs = append(pairs, [2]int{proc[v], proc[prv[v]]}, [2]int{proc[v], proc[nxt[v]]})
		}
		s.SendBatch(pairs)
		for _, v := range selected {
			u, w := prv[v], nxt[v]
			history = append(history, spliceRecord{v: v, w: w, val: val[v], iter: iter})
			nxt[u] = w
			val[u] += val[v]
			prv[w] = u
			isActive[v] = false
		}
		compact := active[:0]
		for _, v := range active {
			if isActive[v] {
				compact = append(compact, v)
			}
		}
		active = compact
	}

	// Base case: solve the short remaining list sequentially. The walk
	// tail -> head is a chain of messages (each node passes the running
	// rank to its predecessor): O(base) messages, O(base) = O(log n)
	// depth.
	tail := -1
	for _, v := range active {
		if nxt[v] == -1 {
			tail = v
		}
	}
	if tail == -1 {
		panic("listrank: contracted list lost its tail")
	}
	var run int64
	for v := tail; v != -1; {
		rank[v] = run
		u := prv[v]
		if u != -1 {
			s.Send(proc[v], proc[u])
			run += val[u] // weight of the link u -> v
		}
		v = u
	}

	// Uncontraction: reverse iteration order; each spliced node fetches
	// the rank of its at-splice successor (request + reply).
	for end := len(history); end > 0; {
		it := history[end-1].iter
		start := end
		for start > 0 && history[start-1].iter == it {
			start--
		}
		batch := history[start:end]
		pairs = pairs[:0]
		for _, rec := range batch {
			pairs = append(pairs, [2]int{proc[rec.v], proc[rec.w]}, [2]int{proc[rec.w], proc[rec.v]})
		}
		s.SendBatch(pairs)
		for _, rec := range batch {
			rank[rec.v] = rank[rec.w] + rec.val
		}
		end = start
	}
	return rank
}

// Wyllie computes list ranks by PRAM pointer jumping on the grid: every
// round, each unfinished node asks its current successor for its value
// and pointer (request + reply messages) and jumps. Θ(log n) rounds,
// Θ(n) messages per round, message distances growing to Θ(√n):
// Θ(n^{3/2} log n) energy.
func Wyllie(s *machine.Sim, next []int, proc []int) []int64 {
	n := len(next)
	if proc == nil {
		proc = make([]int, n)
		for i := range proc {
			proc[i] = i
		}
	}
	val := make([]int64, n)
	nxt := append([]int(nil), next...)
	for v, w := range nxt {
		if w != -1 {
			val[v] = 1
		}
	}
	pairs := make([][2]int, 0, 2*n)
	for {
		done := true
		pairs = pairs[:0]
		for v := 0; v < n; v++ {
			if nxt[v] != -1 {
				done = false
				pairs = append(pairs, [2]int{proc[v], proc[nxt[v]]}, [2]int{proc[nxt[v]], proc[v]})
			}
		}
		if done {
			break
		}
		s.SendBatch(pairs)
		// All jumps use the pre-round state (synchronous PRAM step).
		newVal := append([]int64(nil), val...)
		newNxt := append([]int(nil), nxt...)
		for v := 0; v < n; v++ {
			if nxt[v] != -1 {
				newVal[v] = val[v] + val[nxt[v]]
				newNxt[v] = nxt[nxt[v]]
			}
		}
		val, nxt = newVal, newNxt
	}
	return val
}
