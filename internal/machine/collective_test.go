package machine

import (
	"math"
	"testing"

	"spatialtree/internal/rng"
	"spatialtree/internal/sfc"
)

func add(a, b int64) int64 { return a + b }

func TestReduceGridCorrect(t *testing.T) {
	for _, n := range []int{4, 16, 64, 256, 1024} {
		s := New(n, sfc.Hilbert{})
		vals := make([]int64, s.Procs())
		var want int64
		r := rng.New(uint64(n))
		for i := range vals {
			vals[i] = int64(r.Intn(1000))
			want += vals[i]
		}
		root := ReduceGrid(s, vals, add)
		if vals[root] != want {
			t.Fatalf("n=%d: reduce = %d, want %d", n, vals[root], want)
		}
	}
}

func TestReduceGridCosts(t *testing.T) {
	// O(n) energy, O(log n) depth: compare n=1024 against n=4096.
	e := map[int]int64{}
	d := map[int]int64{}
	for _, n := range []int{1024, 4096} {
		s := New(n, sfc.Hilbert{})
		vals := make([]int64, s.Procs())
		ReduceGrid(s, vals, add)
		e[n], d[n] = s.Energy(), s.Depth()
	}
	if ratio := float64(e[4096]) / float64(e[1024]); ratio > 5.5 {
		t.Errorf("reduce energy grew superlinearly: ratio %.2f for 4x data", ratio)
	}
	if d[4096] > d[1024]+10 {
		t.Errorf("reduce depth not logarithmic: %d -> %d", d[1024], d[4096])
	}
}

func TestBroadcastGridCorrect(t *testing.T) {
	s := New(256, sfc.ZOrder{})
	vals := make([]int64, s.Procs())
	root := s.rankAt(0, 0)
	vals[root] = 77
	BroadcastGrid(s, vals)
	for i, v := range vals {
		if v != 77 {
			t.Fatalf("rank %d did not receive broadcast: %d", i, v)
		}
	}
}

func TestAllReduceGrid(t *testing.T) {
	s := New(64, sfc.Hilbert{})
	vals := make([]int64, s.Procs())
	for i := range vals {
		vals[i] = 1
	}
	got := AllReduceGrid(s, vals, add)
	if got != int64(s.Procs()) {
		t.Fatalf("allreduce = %d, want %d", got, s.Procs())
	}
	for i, v := range vals {
		if v != got {
			t.Fatalf("rank %d has %d after allreduce", i, v)
		}
	}
}

func TestBarrierOnAllCurves(t *testing.T) {
	for _, c := range []sfc.Curve{sfc.Hilbert{}, sfc.ZOrder{}, sfc.Peano{}} {
		s := New(81, c)
		Barrier(s)
		if s.Energy() == 0 || s.Depth() == 0 {
			t.Errorf("%s: barrier cost zero", c.Name())
		}
		// Depth must be logarithmic-ish, not linear.
		if s.Depth() > 200 {
			t.Errorf("%s: barrier depth %d too deep for n=81", c.Name(), s.Depth())
		}
	}
}

func TestPrefixSumCorrect(t *testing.T) {
	r := rng.New(9)
	for _, m := range []int{1, 2, 3, 7, 8, 100, 255, 256, 1000} {
		s := New(m, sfc.Hilbert{})
		vals := make([]int64, m)
		want := make([]int64, m)
		var run int64
		for i := range vals {
			vals[i] = int64(r.Intn(100)) - 50
			run += vals[i]
			want[i] = run
		}
		PrefixSum(s, vals, add)
		for i := range vals {
			if vals[i] != want[i] {
				t.Fatalf("m=%d: prefix[%d] = %d, want %d", m, i, vals[i], want[i])
			}
		}
	}
}

func TestPrefixSumWithMax(t *testing.T) {
	s := New(10, sfc.Hilbert{})
	vals := []int64{3, 1, 4, 1, 5, 9, 2, 6, 5, 3}
	maxOp := func(a, b int64) int64 {
		if a > b {
			return a
		}
		return b
	}
	PrefixSum(s, vals, maxOp)
	want := []int64{3, 3, 4, 4, 5, 9, 9, 9, 9, 9}
	for i := range want {
		if vals[i] != want[i] {
			t.Fatalf("running max[%d] = %d, want %d", i, vals[i], want[i])
		}
	}
}

func TestExclusivePrefixSum(t *testing.T) {
	s := New(5, sfc.Hilbert{})
	vals := []int64{2, 3, 5, 7, 11}
	ExclusivePrefixSum(s, vals)
	want := []int64{0, 2, 5, 10, 17}
	for i := range want {
		if vals[i] != want[i] {
			t.Fatalf("exclusive[%d] = %d, want %d", i, vals[i], want[i])
		}
	}
}

func TestPrefixSumCosts(t *testing.T) {
	// Linear energy, logarithmic depth on the Hilbert curve.
	costs := map[int]Cost{}
	for _, m := range []int{1 << 10, 1 << 14} {
		s := New(m, sfc.Hilbert{})
		vals := make([]int64, m)
		PrefixSum(s, vals, add)
		costs[m] = s.Cost()
	}
	ratio := float64(costs[1<<14].Energy) / float64(costs[1<<10].Energy)
	if ratio > 16*1.6 { // 16x data: allow modest slack over exactly linear
		t.Errorf("prefix energy ratio %.1f for 16x data (superlinear)", ratio)
	}
	if d := costs[1<<14].Depth; d > 6*14 {
		t.Errorf("prefix depth %d not O(log n) for n=2^14", d)
	}
}

func TestRangeBroadcastVisitsAll(t *testing.T) {
	s := New(256, sfc.Hilbert{})
	for _, span := range [][2]int{{0, 0}, {5, 5}, {0, 255}, {17, 93}} {
		seen := map[int]bool{}
		RangeBroadcast(s, span[0], span[1], func(r int) { seen[r] = true })
		for r := span[0]; r <= span[1]; r++ {
			if !seen[r] {
				t.Fatalf("range [%d,%d]: rank %d missed", span[0], span[1], r)
			}
		}
		if len(seen) != span[1]-span[0]+1 {
			t.Fatalf("range [%d,%d]: visited %d ranks", span[0], span[1], len(seen))
		}
	}
}

func TestRangeBroadcastCosts(t *testing.T) {
	// Lemma 13: O(b-a) energy, O(log(b-a)) depth on a distance-bound
	// curve.
	s := New(1<<14, sfc.Hilbert{})
	mark := s.Cost()
	RangeBroadcast(s, 100, 100+(1<<12), func(int) {})
	d := s.Since(mark)
	m := 1 << 12
	if d.Energy > int64(20*m) {
		t.Errorf("range broadcast energy %d for %d ranks (super-linear)", d.Energy, m)
	}
	if d.Depth > 4*13 {
		t.Errorf("range broadcast depth %d not O(log m)", d.Depth)
	}
}

func TestRangeReduceCorrect(t *testing.T) {
	s := New(128, sfc.Hilbert{})
	vals := make([]int64, 128)
	for i := range vals {
		vals[i] = int64(i)
	}
	got := RangeReduce(s, 10, 20, func(r int) int64 { return vals[r] }, add)
	var want int64
	for i := 10; i <= 20; i++ {
		want += int64(i)
	}
	if got != want {
		t.Fatalf("range reduce = %d, want %d", got, want)
	}
	single := RangeReduce(s, 5, 5, func(r int) int64 { return vals[r] }, add)
	if single != 5 {
		t.Fatalf("singleton range reduce = %d", single)
	}
}

func TestRangeBroadcastEmptyRange(t *testing.T) {
	s := New(16, sfc.Hilbert{})
	calls := 0
	RangeBroadcast(s, 5, 4, func(int) { calls++ })
	if calls != 0 || s.Messages() != 0 {
		t.Fatal("empty range broadcast did something")
	}
}

func TestCollectiveEnergyScalesLinearly(t *testing.T) {
	// Log-log slope of reduce energy vs n should be about 1.
	var ns, es []float64
	for _, bits := range []int{8, 10, 12, 14} {
		n := 1 << bits
		s := New(n, sfc.Hilbert{})
		vals := make([]int64, s.Procs())
		ReduceGrid(s, vals, add)
		ns = append(ns, float64(n))
		es = append(es, float64(s.Energy()))
	}
	slope := logLogSlope(ns, es)
	if slope < 0.85 || slope > 1.15 {
		t.Errorf("reduce energy exponent %.3f, want about 1", slope)
	}
}

// logLogSlope fits log(y) = a + b log(x) and returns b.
func logLogSlope(xs, ys []float64) float64 {
	n := float64(len(xs))
	var sx, sy, sxx, sxy float64
	for i := range xs {
		lx, ly := math.Log(xs[i]), math.Log(ys[i])
		sx += lx
		sy += ly
		sxx += lx * lx
		sxy += lx * ly
	}
	return (n*sxy - sx*sy) / (n*sxx - sx*sx)
}
