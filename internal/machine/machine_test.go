package machine

import (
	"testing"

	"spatialtree/internal/sfc"
)

func TestNewGridGeometry(t *testing.T) {
	s := New(100, sfc.Hilbert{})
	if s.Side() != 16 || s.Procs() != 256 {
		t.Fatalf("side=%d procs=%d, want 16/256", s.Side(), s.Procs())
	}
	if s.Curve().Name() != "hilbert" {
		t.Fatal("curve accessor broken")
	}
	p := New(10, sfc.Peano{})
	if p.Side() != 9 || p.Procs() != 81 {
		t.Fatalf("peano side=%d procs=%d, want 9/81", p.Side(), p.Procs())
	}
}

func TestSendEnergyIsManhattan(t *testing.T) {
	s := New(16, sfc.RowMajor{})
	// Rank 0 at (0,0), rank 5 at (1,1): distance 2.
	s.Send(0, 5)
	if s.Energy() != 2 || s.Messages() != 1 {
		t.Fatalf("energy=%d messages=%d", s.Energy(), s.Messages())
	}
	// Self-send is free.
	s.Send(3, 3)
	if s.Energy() != 2 || s.Messages() != 1 {
		t.Fatal("self-send must be free")
	}
}

func TestDepthChains(t *testing.T) {
	s := New(64, sfc.RowMajor{})
	// A chain 0 -> 1 -> 2 -> 3: depth grows by one per hop plus the
	// initial send slot.
	s.Send(0, 1)
	s.Send(1, 2)
	s.Send(2, 3)
	if d := s.Depth(); d != 4 {
		// hop i departs after receive of hop i-1: depths 1,2,3 for
		// arrivals, each send occupies the sender first: chain = send(1)
		// +arrive(1)... measured: 0 sends at t0, arrives t1; 1 sends t1,
		// arrives t2; 2 sends t2 arrives t3... depth 3? Let me assert
		// the exact behavior below instead.
		t.Logf("chain depth = %d", d)
	}
}

func TestDepthSemantics(t *testing.T) {
	// Pin down the exact schedule semantics.
	s := New(64, sfc.RowMajor{})
	s.Send(0, 1) // departs at 0, arrives 1: clock[1] = 1
	if s.Depth() != 1 {
		t.Fatalf("one hop depth = %d, want 1", s.Depth())
	}
	s.Send(1, 2) // departs at 1 (after receive), arrives 2
	if s.Depth() != 2 {
		t.Fatalf("two chained hops depth = %d, want 2", s.Depth())
	}
	// Independent message elsewhere does not deepen the schedule.
	s.Send(10, 11)
	if s.Depth() != 2 {
		t.Fatalf("independent send changed depth to %d", s.Depth())
	}
}

func TestFanOutSerializes(t *testing.T) {
	// One processor sending k messages occupies k send slots: the model
	// reason unbounded-degree trees need the virtual-tree transform.
	s := New(64, sfc.RowMajor{})
	const k = 10
	for i := 1; i <= k; i++ {
		s.Send(0, i)
	}
	if d := s.Depth(); d < k {
		t.Fatalf("fan-out of %d has depth %d; sends must serialize", k, d)
	}
}

func TestFanInSerializes(t *testing.T) {
	s := New(64, sfc.RowMajor{})
	const k = 10
	for i := 1; i <= k; i++ {
		s.Send(i, 0)
	}
	if d := s.Depth(); d < k {
		t.Fatalf("fan-in of %d has depth %d; receives must serialize", k, d)
	}
}

func TestTreeFanOutLogDepth(t *testing.T) {
	// Binary-tree fan-out over 2^10 processors must have Θ(log n) depth.
	s := New(1024, sfc.Hilbert{})
	levels := 0
	for width := 1; width < 1024; width *= 2 {
		for i := 0; i < width; i++ {
			s.Send(i, width+i)
		}
		levels++
	}
	d := s.Depth()
	if d < int64(levels) || d > int64(3*levels) {
		t.Fatalf("binary fan-out depth = %d over %d levels", d, levels)
	}
}

func TestCostSnapshots(t *testing.T) {
	s := New(16, sfc.RowMajor{})
	s.Send(0, 1)
	mark := s.Cost()
	s.Send(1, 2)
	s.Send(2, 3)
	d := s.Since(mark)
	if d.Messages != 2 || d.Energy != 2 {
		t.Fatalf("delta = %+v", d)
	}
	s.Reset()
	if s.Energy() != 0 || s.Depth() != 0 || s.Messages() != 0 {
		t.Fatal("reset failed")
	}
}

func TestDistMatchesCurve(t *testing.T) {
	s := New(256, sfc.Hilbert{})
	for i := 0; i < 255; i += 7 {
		if got, want := s.Dist(i, i+1), sfc.Dist(sfc.Hilbert{}, i, i+1, 16); got != want {
			t.Fatalf("Dist(%d,%d) = %d, want %d", i, i+1, got, want)
		}
	}
}

func TestStringer(t *testing.T) {
	s := New(4, sfc.Hilbert{})
	if s.String() == "" {
		t.Fatal("empty String()")
	}
}
