// Package machine simulates the spatial computer model of Gianinazzi et
// al. that the paper analyzes its algorithms in (Section II-A): a
// √n × √n grid of processors with O(1) words of memory each, where
// sending a message between processors costs energy equal to their
// Manhattan distance, and the depth of a computation is the longest chain
// of dependent messages (with each processor able to send and receive a
// constant number of messages per time step).
//
// The simulator is a cost recorder: algorithms perform their actual data
// manipulation on host slices indexed by processor rank (respecting the
// O(1)-words-per-processor discipline) and report every message through
// Send. The simulator charges exact energy and maintains per-processor
// dependency clocks, so Energy() and Depth() are exact model costs of the
// executed message schedule, not analytic estimates.
//
// Collectives (broadcast, reduce, all-reduce, prefix sum, range
// broadcast, sorting, permutation) are implemented as explicit message
// patterns on the grid, so their measured costs are emergent.
package machine

import (
	"fmt"

	"spatialtree/internal/sfc"
)

// Sim is a spatial computer: a side×side grid of processors. Processors
// are identified by their rank along a space-filling curve; rank r sits
// at grid point curve.XY(r, side).
type Sim struct {
	curve sfc.Curve
	side  int
	procs int
	x, y  []int16 // grid coordinates per rank
	clock []int64 // per-processor dependency clock (schedule time)

	energy   int64
	messages int64
	maxClock int64

	// Link-congestion counters (nil unless EnableCongestion was called):
	// hload[y*(side-1)+x] counts messages crossing the horizontal link
	// (x,y)-(x+1,y); vload[x*(side-1)+y] the vertical link (x,y)-(x,y+1).
	// Messages are routed dimension-ordered (X then Y), the standard
	// mesh routing the model's energy metric proxies for (Section II-A:
	// longer distances "indicate potential congestion").
	hload, vload []int64
}

// New returns a simulator whose grid is the smallest legal grid for the
// curve holding at least n processors. All side×side processors exist;
// ranks beyond n are usable (e.g. as scratch for collectives).
func New(n int, curve sfc.Curve) *Sim {
	side := curve.Side(n)
	procs := side * side
	s := &Sim{
		curve: curve,
		side:  side,
		procs: procs,
		x:     make([]int16, procs),
		y:     make([]int16, procs),
		clock: make([]int64, procs),
	}
	for r := 0; r < procs; r++ {
		x, y := curve.XY(r, side)
		s.x[r], s.y[r] = int16(x), int16(y)
	}
	return s
}

// Side returns the grid side length.
func (s *Sim) Side() int { return s.side }

// Procs returns the total number of processors (side²).
func (s *Sim) Procs() int { return s.procs }

// Curve returns the placement curve.
func (s *Sim) Curve() sfc.Curve { return s.curve }

// Dist returns the Manhattan distance between the processors of ranks i
// and j.
func (s *Sim) Dist(i, j int) int {
	return sfc.Manhattan(int(s.x[i]), int(s.y[i]), int(s.x[j]), int(s.y[j]))
}

// EnableCongestion turns on per-link traffic counters. Each subsequent
// message increments every mesh link on its dimension-ordered (X-then-Y)
// route. Adds O(distance) bookkeeping per message.
func (s *Sim) EnableCongestion() {
	if s.hload == nil {
		s.hload = make([]int64, s.side*(s.side-1))
		s.vload = make([]int64, s.side*(s.side-1))
	}
}

// route charges the links of the X-then-Y path from src to dst.
func (s *Sim) route(src, dst int) {
	x, y := int(s.x[src]), int(s.y[src])
	tx, ty := int(s.x[dst]), int(s.y[dst])
	for x < tx {
		s.hload[y*(s.side-1)+x]++
		x++
	}
	for x > tx {
		x--
		s.hload[y*(s.side-1)+x]++
	}
	for y < ty {
		s.vload[x*(s.side-1)+y]++
		y++
	}
	for y > ty {
		y--
		s.vload[x*(s.side-1)+y]++
	}
}

// MaxLinkLoad returns the largest per-link message count (0 when
// congestion tracking is off or no messages were sent). A layout with
// the same energy but higher maximum load concentrates traffic and
// would congest a real mesh.
func (s *Sim) MaxLinkLoad() int64 {
	var max int64
	for _, l := range s.hload {
		if l > max {
			max = l
		}
	}
	for _, l := range s.vload {
		if l > max {
			max = l
		}
	}
	return max
}

// Send records one message from rank src to rank dst. Energy grows by
// their Manhattan distance. The schedule is updated per the model: the
// send occupies one time unit at src, the message arrives one unit after
// departure, and the receive occupies one unit at dst — so both fan-out
// and fan-in at a single processor serialize, exactly the constraint that
// makes unbounded-degree trees non-trivial (Section III-D).
func (s *Sim) Send(src, dst int) {
	if src == dst {
		return // local work is free in the model
	}
	s.energy += int64(s.Dist(src, dst))
	s.messages++
	if s.hload != nil {
		s.route(src, dst)
	}
	depart := s.clock[src]
	s.clock[src] = depart + 1
	arrive := depart + 1
	recv := s.clock[dst]
	if arrive > recv {
		recv = arrive
	} else {
		recv++ // dst busy: receive serializes after its last action
	}
	s.clock[dst] = recv
	if recv > s.maxClock {
		s.maxClock = recv
	}
}

// SendBatch records a set of messages forming one oblivious
// communication phase: no send in the batch depends on a receive in the
// same batch, so all departures are scheduled against the clocks as they
// stood when the batch began. Receives still serialize per destination.
// Use this for data-independent patterns (permutation routing, the
// compare-exchange pairs of a sorting network); plain Send would thread
// false dependencies through the issue order.
func (s *Sim) SendBatch(pairs [][2]int) {
	departs := make([]int64, len(pairs))
	for i, p := range pairs {
		if p[0] == p[1] {
			departs[i] = -1
			continue
		}
		departs[i] = s.clock[p[0]]
		s.clock[p[0]]++
	}
	for i, p := range pairs {
		if departs[i] < 0 {
			continue
		}
		src, dst := p[0], p[1]
		s.energy += int64(s.Dist(src, dst))
		s.messages++
		if s.hload != nil {
			s.route(src, dst)
		}
		arrive := departs[i] + 1
		recv := s.clock[dst]
		if arrive > recv {
			recv = arrive
		} else {
			recv++
		}
		s.clock[dst] = recv
		if recv > s.maxClock {
			s.maxClock = recv
		}
	}
}

// Energy returns the total Manhattan distance of all messages so far.
func (s *Sim) Energy() int64 { return s.energy }

// Messages returns the number of messages sent so far.
func (s *Sim) Messages() int64 { return s.messages }

// Depth returns the makespan of the recorded message schedule: the
// longest chain of dependent message steps, including send/receive
// serialization at processors. For the constant-degree message patterns
// the paper designs, this matches its depth measure up to constants.
func (s *Sim) Depth() int64 { return s.maxClock }

// Cost is a snapshot of the simulator's counters.
type Cost struct {
	Energy   int64
	Messages int64
	Depth    int64
}

// Plus returns the component-wise sum of two cost snapshots; depths add
// as if the two runs happened back to back.
func (c Cost) Plus(d Cost) Cost {
	return Cost{
		Energy:   c.Energy + d.Energy,
		Messages: c.Messages + d.Messages,
		Depth:    c.Depth + d.Depth,
	}
}

// Minus returns the component-wise difference c - d: the growth from an
// earlier snapshot d to c (the snapshot-to-snapshot form of Sim.Since,
// usable without the simulator in hand).
func (c Cost) Minus(d Cost) Cost {
	return Cost{
		Energy:   c.Energy - d.Energy,
		Messages: c.Messages - d.Messages,
		Depth:    c.Depth - d.Depth,
	}
}

// Cost returns the current counters.
func (s *Sim) Cost() Cost {
	return Cost{Energy: s.energy, Messages: s.messages, Depth: s.maxClock}
}

// Since returns the counter growth since an earlier snapshot.
func (s *Sim) Since(mark Cost) Cost {
	return Cost{
		Energy:   s.energy - mark.Energy,
		Messages: s.messages - mark.Messages,
		Depth:    s.maxClock - mark.Depth,
	}
}

// Reset clears all counters and clocks.
func (s *Sim) Reset() {
	s.energy, s.messages, s.maxClock = 0, 0, 0
	for i := range s.clock {
		s.clock[i] = 0
	}
}

// String summarizes the simulator state.
func (s *Sim) String() string {
	return fmt.Sprintf("machine.Sim{side=%d curve=%s energy=%d msgs=%d depth=%d}",
		s.side, s.curve.Name(), s.energy, s.messages, s.maxClock)
}
