package machine

import (
	"testing"

	"spatialtree/internal/rng"
	"spatialtree/internal/sfc"
)

func TestCongestionOffByDefault(t *testing.T) {
	s := New(64, sfc.Hilbert{})
	s.Send(0, 40)
	if s.MaxLinkLoad() != 0 {
		t.Fatal("congestion counted without EnableCongestion")
	}
}

func TestCongestionSingleMessage(t *testing.T) {
	s := New(16, sfc.RowMajor{})
	s.EnableCongestion()
	// Rank 0 at (0,0) to rank 15 at (3,3): X-then-Y route crosses 3
	// horizontal + 3 vertical links, each once.
	s.Send(0, 15)
	if s.MaxLinkLoad() != 1 {
		t.Fatalf("max link load = %d, want 1", s.MaxLinkLoad())
	}
	var total int64
	for _, l := range s.hload {
		total += l
	}
	for _, l := range s.vload {
		total += l
	}
	if total != 6 {
		t.Fatalf("total link crossings = %d, want 6 (= Manhattan distance)", total)
	}
}

func TestCongestionMatchesEnergy(t *testing.T) {
	// Total link crossings must equal total energy (each message crosses
	// exactly dist links).
	s := New(256, sfc.Hilbert{})
	s.EnableCongestion()
	r := rng.New(1)
	for i := 0; i < 500; i++ {
		s.Send(r.Intn(256), r.Intn(256))
	}
	var total int64
	for _, l := range s.hload {
		total += l
	}
	for _, l := range s.vload {
		total += l
	}
	if total != s.Energy() {
		t.Fatalf("link crossings %d != energy %d", total, s.Energy())
	}
}

func TestCongestionHotLink(t *testing.T) {
	// Everyone messaging one corner concentrates load; scattered local
	// messages do not.
	hot := New(256, sfc.RowMajor{})
	hot.EnableCongestion()
	for i := 1; i < 256; i++ {
		hot.Send(i, 0)
	}
	local := New(256, sfc.RowMajor{})
	local.EnableCongestion()
	for i := 0; i < 255; i++ {
		local.Send(i, i+1)
	}
	if hot.MaxLinkLoad() < 8*local.MaxLinkLoad() {
		t.Fatalf("hot-spot load %d not clearly above local load %d",
			hot.MaxLinkLoad(), local.MaxLinkLoad())
	}
}

func TestCongestionSendBatch(t *testing.T) {
	a := New(64, sfc.Hilbert{})
	a.EnableCongestion()
	b := New(64, sfc.Hilbert{})
	b.EnableCongestion()
	pairs := [][2]int{{0, 10}, {20, 30}, {5, 5}}
	for _, p := range pairs {
		a.Send(p[0], p[1])
	}
	b.SendBatch(pairs)
	if a.MaxLinkLoad() != b.MaxLinkLoad() {
		t.Fatalf("batch congestion %d != serial %d", b.MaxLinkLoad(), a.MaxLinkLoad())
	}
}
