package machine

// Sorting and permutation routing (Section II-A): sorting n words on the
// spatial computer takes Θ(n^{3/2}) energy, matching the Ω(n^{3/2})
// lower bound for a global permutation on a √n × √n grid. We implement
// sorting as Batcher's odd-even merge sorting network over curve ranks:
// all comparators are ascending, so ranks beyond the data (holding +∞)
// never receive finite values and their comparators can be skipped. The
// dominant comparator strides are Θ(n), giving Θ(√n)-distance messages
// for Θ(n) comparators — Θ(n^{3/2}) energy — with O(log² n) depth.

// CompareExchange swaps the values at ranks i < j so that keys[i] <=
// keys[j], moving payloads along. Both processors exchange their words
// simultaneously (2 messages, one oblivious phase); ties keep the lower
// rank's element in place, making the sort stable-ish for distinct
// (key, payload) pairs.
func CompareExchange(s *Sim, keys, payload []int64, i, j int) {
	s.SendBatch([][2]int{{i, j}, {j, i}})
	if keys[i] > keys[j] {
		keys[i], keys[j] = keys[j], keys[i]
		if payload != nil {
			payload[i], payload[j] = payload[j], payload[i]
		}
	}
}

// SortByKey sorts the first m entries of keys (with payload words moved
// alongside, if non-nil) in ascending key order using Batcher's odd-even
// merge sorting network on the grid (the classic iterative formulation,
// which is a valid network for arbitrary m). Entries beyond m are
// untouched. keys and payload are rank-indexed; m may be any value up to
// Procs().
func SortByKey(s *Sim, keys, payload []int64, m int) {
	for p := 1; p < m; p *= 2 {
		for k := p; k >= 1; k /= 2 {
			for j := k % p; j+k < m; j += 2 * k {
				for i := 0; i < k && i+j+k < m; i++ {
					lo := i + j
					hi := i + j + k
					if lo/(2*p) == hi/(2*p) {
						CompareExchange(s, keys, payload, lo, hi)
					}
				}
			}
		}
	}
}

// Permute routes one word from every rank i in [0, m) to rank dest[i]
// directly (depth O(1), energy the sum of distances ≤ 2·side per word,
// so O(n^{3/2}) in the worst case — the permutation lower bound is
// tight). dest must be a bijection on [0, m); vals is permuted in place.
func Permute(s *Sim, vals []int64, dest []int) {
	m := len(dest)
	out := make([]int64, m)
	seen := make([]bool, m)
	pairs := make([][2]int, m)
	for i, d := range dest {
		if d < 0 || d >= m || seen[d] {
			panic("machine: Permute destination is not a bijection")
		}
		seen[d] = true
		pairs[i] = [2]int{i, d}
		out[d] = vals[i]
	}
	s.SendBatch(pairs)
	copy(vals[:m], out)
}

// PermuteInts is Permute for int slices (convenience for rank
// permutations).
func PermuteInts(s *Sim, vals []int, dest []int) {
	m := len(dest)
	out := make([]int, m)
	seen := make([]bool, m)
	pairs := make([][2]int, m)
	for i, d := range dest {
		if d < 0 || d >= m || seen[d] {
			panic("machine: PermuteInts destination is not a bijection")
		}
		seen[d] = true
		pairs[i] = [2]int{i, d}
		out[d] = vals[i]
	}
	s.SendBatch(pairs)
	copy(vals[:m], out)
}
