package machine

import (
	"testing"
	"testing/quick"

	"spatialtree/internal/rng"
	"spatialtree/internal/sfc"
)

func TestSendBatchMatchesSendCosts(t *testing.T) {
	// Energy and message counts must be identical between Send and
	// SendBatch; only the schedule (depth) may differ.
	r := rng.New(20)
	pairs := make([][2]int, 200)
	for i := range pairs {
		pairs[i] = [2]int{r.Intn(256), r.Intn(256)}
	}
	a := New(256, sfc.Hilbert{})
	for _, p := range pairs {
		a.Send(p[0], p[1])
	}
	b := New(256, sfc.Hilbert{})
	b.SendBatch(pairs)
	if a.Energy() != b.Energy() || a.Messages() != b.Messages() {
		t.Fatalf("cost mismatch: send %d/%d batch %d/%d",
			a.Energy(), a.Messages(), b.Energy(), b.Messages())
	}
	if b.Depth() > a.Depth() {
		t.Fatalf("batch depth %d exceeds serial depth %d", b.Depth(), a.Depth())
	}
}

func TestSendBatchSelfSendsFree(t *testing.T) {
	s := New(16, sfc.Hilbert{})
	s.SendBatch([][2]int{{3, 3}, {4, 4}})
	if s.Energy() != 0 || s.Messages() != 0 || s.Depth() != 0 {
		t.Fatal("self-sends in a batch must be free")
	}
}

func TestSendBatchReceiveSerialization(t *testing.T) {
	// k simultaneous messages into one rank must still serialize.
	s := New(64, sfc.RowMajor{})
	var pairs [][2]int
	for i := 1; i <= 10; i++ {
		pairs = append(pairs, [2]int{i, 0})
	}
	s.SendBatch(pairs)
	if s.Depth() < 10 {
		t.Fatalf("batched fan-in depth %d, want >= 10", s.Depth())
	}
}

func TestPrefixSumQuick(t *testing.T) {
	f := func(seed uint64, rawM uint16) bool {
		m := 1 + int(rawM)%600
		r := rng.New(seed)
		s := New(m, sfc.Hilbert{})
		vals := make([]int64, m)
		want := make([]int64, m)
		var run int64
		for i := range vals {
			vals[i] = int64(r.Intn(2001)) - 1000
			run += vals[i]
			want[i] = run
		}
		PrefixSum(s, vals, func(a, b int64) int64 { return a + b })
		for i := range vals {
			if vals[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestReduceGridOnZOrder(t *testing.T) {
	// Collectives must be curve-agnostic (coordinate quadtree).
	for _, c := range []sfc.Curve{sfc.ZOrder{}, sfc.Scatter{}, sfc.Snake{}} {
		s := New(64, c)
		if s.Side()&(s.Side()-1) != 0 {
			continue
		}
		vals := make([]int64, s.Procs())
		for i := range vals {
			vals[i] = 2
		}
		root := ReduceGrid(s, vals, func(a, b int64) int64 { return a + b })
		if vals[root] != int64(2*s.Procs()) {
			t.Errorf("%s: reduce = %d", c.Name(), vals[root])
		}
	}
}

func TestRangeReduceDepthLogarithmic(t *testing.T) {
	s := New(1<<14, sfc.Hilbert{})
	RangeReduce(s, 0, (1<<14)-1, func(int) int64 { return 1 },
		func(a, b int64) int64 { return a + b })
	if s.Depth() > 4*14 {
		t.Errorf("range reduce depth %d, want O(log n)", s.Depth())
	}
}

func TestSortByKeyAlreadySortedAndReversed(t *testing.T) {
	for _, m := range []int{64, 100} {
		asc := New(m, sfc.Hilbert{})
		keys := make([]int64, asc.Procs())
		for i := 0; i < m; i++ {
			keys[i] = int64(i)
		}
		SortByKey(asc, keys, nil, m)
		for i := 0; i < m; i++ {
			if keys[i] != int64(i) {
				t.Fatalf("sorted input broken at %d", i)
			}
		}
		desc := New(m, sfc.Hilbert{})
		for i := 0; i < m; i++ {
			keys[i] = int64(m - i)
		}
		SortByKey(desc, keys, nil, m)
		for i := 0; i < m; i++ {
			if keys[i] != int64(i+1) {
				t.Fatalf("reversed input broken at %d", i)
			}
		}
	}
}

func TestSortByKeyDuplicates(t *testing.T) {
	m := 200
	s := New(m, sfc.Hilbert{})
	keys := make([]int64, s.Procs())
	r := rng.New(30)
	count := map[int64]int{}
	for i := 0; i < m; i++ {
		keys[i] = int64(r.Intn(5))
		count[keys[i]]++
	}
	SortByKey(s, keys, nil, m)
	for i := 1; i < m; i++ {
		if keys[i] < keys[i-1] {
			t.Fatal("not sorted with duplicates")
		}
	}
	for i := 0; i < m; i++ {
		count[keys[i]]--
	}
	for k, c := range count {
		if c != 0 {
			t.Fatalf("multiset changed for key %d", k)
		}
	}
}
