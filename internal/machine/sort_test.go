package machine

import (
	"sort"
	"testing"

	"spatialtree/internal/rng"
	"spatialtree/internal/sfc"
)

func TestSortByKeyExhaustiveSmall(t *testing.T) {
	// Validate the sorting network on every permutation of sizes 1..7.
	var perms func(a []int64, k int, emit func([]int64))
	perms = func(a []int64, k int, emit func([]int64)) {
		if k == len(a) {
			emit(a)
			return
		}
		for i := k; i < len(a); i++ {
			a[k], a[i] = a[i], a[k]
			perms(a, k+1, emit)
			a[k], a[i] = a[i], a[k]
		}
	}
	for m := 1; m <= 7; m++ {
		base := make([]int64, m)
		for i := range base {
			base[i] = int64(i)
		}
		perms(base, 0, func(p []int64) {
			s := New(m, sfc.Hilbert{})
			keys := make([]int64, s.Procs())
			copy(keys, p)
			SortByKey(s, keys, nil, m)
			for i := 0; i < m; i++ {
				if keys[i] != int64(i) {
					t.Fatalf("m=%d input %v: sorted to %v", m, p, keys[:m])
				}
			}
		})
	}
}

func TestSortByKeyRandomLarge(t *testing.T) {
	r := rng.New(10)
	for _, m := range []int{100, 255, 256, 1000, 4096} {
		s := New(m, sfc.Hilbert{})
		keys := make([]int64, s.Procs())
		payload := make([]int64, s.Procs())
		want := make([]int64, m)
		for i := 0; i < m; i++ {
			keys[i] = int64(r.Intn(1 << 20))
			payload[i] = keys[i] * 10 // payload tied to key
			want[i] = keys[i]
		}
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		SortByKey(s, keys, payload, m)
		for i := 0; i < m; i++ {
			if keys[i] != want[i] {
				t.Fatalf("m=%d: keys[%d] = %d, want %d", m, i, keys[i], want[i])
			}
			if payload[i] != keys[i]*10 {
				t.Fatalf("m=%d: payload decoupled from key at %d", m, i)
			}
		}
	}
}

func TestSortCostsMatchTheory(t *testing.T) {
	// Θ(n^{3/2}) energy, O(log² n) depth (Section II-A).
	var ns, es []float64
	for _, bits := range []int{8, 10, 12} {
		n := 1 << bits
		s := New(n, sfc.Hilbert{})
		keys := make([]int64, s.Procs())
		r := rng.New(uint64(bits))
		for i := 0; i < n; i++ {
			keys[i] = int64(r.Intn(1 << 30))
		}
		SortByKey(s, keys, nil, n)
		ns = append(ns, float64(n))
		es = append(es, float64(s.Energy()))
		logn := float64(bits)
		if d := float64(s.Depth()); d > 8*logn*logn {
			t.Errorf("n=2^%d: sort depth %.0f above O(log² n) envelope", bits, d)
		}
	}
	slope := logLogSlope(ns, es)
	if slope < 1.3 || slope > 1.7 {
		t.Errorf("sort energy exponent %.3f, want about 1.5", slope)
	}
}

func TestPermuteCorrect(t *testing.T) {
	r := rng.New(11)
	for _, m := range []int{1, 2, 10, 256, 1000} {
		s := New(m, sfc.Hilbert{})
		vals := make([]int64, m)
		for i := range vals {
			vals[i] = int64(i) * 3
		}
		dest := r.Perm(m)
		Permute(s, vals, dest)
		for i := 0; i < m; i++ {
			if vals[dest[i]] != int64(i)*3 {
				t.Fatalf("m=%d: vals[dest[%d]] = %d, want %d", m, i, vals[dest[i]], i*3)
			}
		}
	}
}

func TestPermuteDepthConstant(t *testing.T) {
	s := New(1<<12, sfc.Hilbert{})
	r := rng.New(12)
	vals := make([]int64, 1<<12)
	Permute(s, vals, r.Perm(1<<12))
	if s.Depth() > 4 {
		t.Errorf("direct permutation depth = %d, want O(1)", s.Depth())
	}
}

func TestPermuteEnergyWithinLowerBoundRegime(t *testing.T) {
	// A random permutation costs Θ(n^{3/2}) — matching the Ω(n^{3/2})
	// lower bound of the model. Check energy / n^{3/2} sits in a sane
	// constant band.
	for _, bits := range []int{10, 12, 14} {
		n := 1 << bits
		s := New(n, sfc.Hilbert{})
		r := rng.New(uint64(bits))
		vals := make([]int64, n)
		Permute(s, vals, r.Perm(n))
		norm := float64(s.Energy()) / (float64(n) * float64(int(1)<<(bits/2)))
		if norm < 0.2 || norm > 3 {
			t.Errorf("n=2^%d: permutation energy normalization %.3f out of band", bits, norm)
		}
	}
}

func TestPermutePanicsOnNonBijection(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	s := New(4, sfc.Hilbert{})
	Permute(s, make([]int64, 4), []int{0, 0, 1, 2})
}

func TestPermuteIntsMatchesPermute(t *testing.T) {
	r := rng.New(13)
	m := 100
	s1 := New(m, sfc.Hilbert{})
	s2 := New(m, sfc.Hilbert{})
	a := make([]int64, m)
	b := make([]int, m)
	for i := 0; i < m; i++ {
		a[i], b[i] = int64(i), i
	}
	dest := r.Perm(m)
	Permute(s1, a, dest)
	PermuteInts(s2, b, dest)
	for i := 0; i < m; i++ {
		if int(a[i]) != b[i] {
			t.Fatalf("divergence at %d", i)
		}
	}
	if s1.Energy() != s2.Energy() {
		t.Fatal("cost divergence between Permute and PermuteInts")
	}
}

func TestCompareExchangeCost(t *testing.T) {
	s := New(16, sfc.RowMajor{})
	keys := make([]int64, s.Procs())
	keys[0], keys[3] = 9, 1
	CompareExchange(s, keys, nil, 0, 3)
	if keys[0] != 1 || keys[3] != 9 {
		t.Fatal("compare-exchange did not order")
	}
	if s.Messages() != 2 || s.Energy() != 6 {
		t.Fatalf("messages=%d energy=%d, want 2/6", s.Messages(), s.Energy())
	}
}
