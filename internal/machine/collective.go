package machine

// Foundational spatial collectives (Section II-A of the paper):
// broadcast, reduce and all-reduce take O(n) energy and O(log n) depth;
// parallel prefix sum takes O(n) energy and poly-logarithmic depth on a
// distance-bound curve. They are implemented as explicit message
// patterns so the simulator's measured costs are emergent.

// quadRep returns the rank of the representative of the 2^k-aligned block
// containing rank r: the processor at the block's low corner.
func (s *Sim) quadRep(r, blockSide int) int {
	x := int(s.x[r]) &^ (blockSide - 1)
	y := int(s.y[r]) &^ (blockSide - 1)
	return s.curve.Index(x, y, s.side)
}

// rankAt returns the rank of the processor at grid coordinates (x, y).
func (s *Sim) rankAt(x, y int) int { return s.curve.Index(x, y, s.side) }

// ReduceGrid reduces the values held by all processors into the
// representative of the whole grid (the processor at (0,0)'s block
// corner) using a coordinate quadtree: at level k, the representatives of
// the four 2^k-side sub-blocks of each 2^{k+1}-side block send to the
// block representative. Energy Θ(n), depth Θ(log n) on any curve.
//
// vals is rank-indexed and is folded in place with op at the receiving
// representatives; the grand total ends at the returned root rank.
// The grid side must be a power of two (all pow-2 curves; use
// ReduceRange for arbitrary prefixes on distance-bound curves).
func ReduceGrid(s *Sim, vals []int64, op func(a, b int64) int64) (root int) {
	if len(vals) != s.procs {
		panic("machine: ReduceGrid needs one value per processor")
	}
	if s.side&(s.side-1) != 0 {
		panic("machine: ReduceGrid requires a power-of-two grid side")
	}
	for block := 2; block <= s.side; block *= 2 {
		half := block / 2
		for by := 0; by < s.side; by += block {
			for bx := 0; bx < s.side; bx += block {
				rep := s.rankAt(bx, by)
				for _, d := range [3][2]int{{half, 0}, {0, half}, {half, half}} {
					src := s.rankAt(bx+d[0], by+d[1])
					s.Send(src, rep)
					vals[rep] = op(vals[rep], vals[src])
				}
			}
		}
	}
	return s.rankAt(0, 0)
}

// BroadcastGrid delivers the value at the grid representative to every
// processor via the reverse quadtree. Energy Θ(n), depth Θ(log n).
func BroadcastGrid(s *Sim, vals []int64) {
	if len(vals) != s.procs {
		panic("machine: BroadcastGrid needs one value per processor")
	}
	if s.side&(s.side-1) != 0 {
		panic("machine: BroadcastGrid requires a power-of-two grid side")
	}
	for block := s.side; block >= 2; block /= 2 {
		half := block / 2
		for by := 0; by < s.side; by += block {
			for bx := 0; bx < s.side; bx += block {
				rep := s.rankAt(bx, by)
				for _, d := range [3][2]int{{half, 0}, {0, half}, {half, half}} {
					dst := s.rankAt(bx+d[0], by+d[1])
					s.Send(rep, dst)
					vals[dst] = vals[rep]
				}
			}
		}
	}
}

// AllReduceGrid folds all values with op and delivers the result to every
// processor (reduce followed by broadcast). Returns the folded value.
func AllReduceGrid(s *Sim, vals []int64, op func(a, b int64) int64) int64 {
	root := ReduceGrid(s, vals, op)
	BroadcastGrid(s, vals)
	return vals[root]
}

// Barrier synchronizes all processors with an all-reduce, the mechanism
// the paper's LCA algorithm uses between subtree-cover layers
// (Section VI-C). Costs Θ(n) energy and Θ(log n) depth. On grids whose
// side is not a power of two (Peano) it falls back to a reduce+broadcast
// along the curve range, which has the same bounds on distance-bound
// curves.
func Barrier(s *Sim) {
	if s.side&(s.side-1) == 0 {
		vals := make([]int64, s.procs)
		AllReduceGrid(s, vals, func(a, b int64) int64 { return a + b })
		return
	}
	RangeReduce(s, 0, s.procs-1, func(int) int64 { return 0 },
		func(a, b int64) int64 { return a + b })
	RangeBroadcast(s, 0, s.procs-1, func(int) {})
}

// PrefixSum replaces vals[0:m] (rank-indexed along the curve) with its
// inclusive prefix sums under op, using the work-efficient recursive
// pairing scheme: combine adjacent pairs, recursively scan the pair
// sums, then fix up the even positions. On a distance-bound curve the
// level-k messages span 2^k curve positions and cost O(√(2^k)) each, so
// the total energy is O(m) and the depth O(log m). Works for any m.
func PrefixSum(s *Sim, vals []int64, op func(a, b int64) int64) {
	m := len(vals)
	ranks := make([]int, m)
	for i := range ranks {
		ranks[i] = i
	}
	scanRec(s, vals, ranks, op)
}

func scanRec(s *Sim, vals []int64, ranks []int, op func(a, b int64) int64) {
	m := len(ranks)
	if m <= 1 {
		return
	}
	comb := make([]int, 0, (m+1)/2)
	for i := 0; i+1 < m; i += 2 {
		s.Send(ranks[i], ranks[i+1])
		vals[ranks[i+1]] = op(vals[ranks[i]], vals[ranks[i+1]])
		comb = append(comb, ranks[i+1])
	}
	if m%2 == 1 {
		comb = append(comb, ranks[m-1])
	}
	scanRec(s, vals, comb, op)
	// Fix even positions (they missed the recursive prefixes). Position 0
	// is already its own inclusive prefix; an odd-m leftover was fixed by
	// the recursion.
	limit := m
	if m%2 == 1 {
		limit = m - 1
	}
	for i := 2; i < limit; i += 2 {
		s.Send(ranks[i-1], ranks[i])
		vals[ranks[i]] = op(vals[ranks[i-1]], vals[ranks[i]])
	}
}

// ExclusivePrefixSum computes exclusive prefix sums of vals[0:m] under
// addition: out[i] = Σ_{j<i} vals[j]. Each processor derives its
// exclusive value locally from the inclusive scan (no extra messages).
func ExclusivePrefixSum(s *Sim, vals []int64) {
	own := make([]int64, len(vals))
	copy(own, vals)
	PrefixSum(s, vals, func(a, b int64) int64 { return a + b })
	for i := range vals {
		vals[i] -= own[i]
	}
}

// RangeBroadcast delivers a message from the processor at curve rank lo
// to every rank in [lo, hi] along a virtual complete binary tree over the
// contiguous range, realizing Lemma 13: O(hi-lo) energy and
// O(log(hi-lo)) depth on a distance-bound curve. visit is called for
// every rank in delivery order (including lo itself) so callers can
// deposit the broadcast value.
func RangeBroadcast(s *Sim, lo, hi int, visit func(rank int)) {
	if lo > hi {
		return
	}
	visit(lo)
	var rec func(root, a, b int)
	rec = func(root, a, b int) {
		if a > b {
			return
		}
		mid := (a + b) / 2
		s.Send(root, mid)
		visit(mid)
		rec(mid, a, mid-1)
		rec(mid, mid+1, b)
	}
	rec(lo, lo+1, hi)
}

// RangeReduce folds the values at ranks [lo, hi] into rank lo along the
// reverse of RangeBroadcast's virtual tree: O(hi-lo) energy and
// O(log(hi-lo)) depth on a distance-bound curve. value(rank) supplies
// each processor's contribution; the folded result is returned (and
// conceptually held at lo).
func RangeReduce(s *Sim, lo, hi int, value func(rank int) int64, op func(a, b int64) int64) int64 {
	if lo > hi {
		panic("machine: empty RangeReduce")
	}
	var rec func(root, a, b int) (int64, bool)
	rec = func(root, a, b int) (int64, bool) {
		if a > b {
			return 0, false
		}
		mid := (a + b) / 2
		acc := value(mid)
		if l, ok := rec(mid, a, mid-1); ok {
			acc = op(acc, l)
		}
		if r, ok := rec(mid, mid+1, b); ok {
			acc = op(acc, r)
		}
		s.Send(mid, root)
		return acc, true
	}
	acc := value(lo)
	if sub, ok := rec(lo, lo+1, hi); ok {
		acc = op(acc, sub)
	}
	return acc
}
