package cluster

// The routing half of the node: every dyn-shard request lands here via
// server.ClusterHooks and is resolved against the ring. Owner requests
// run the local core and the replication pipeline; non-owner requests
// either proxy to the owner over the binary protocol or return a
// redirect carrying the owner's address (server.Cluster.Redirect).
//
// Each entry point retries across the peer list: a transport failure
// quarantines the peer (markDown) and recomputes the ring walk, so one
// dead owner converges to its successor within a single client call.

import (
	"fmt"

	"spatialtree/internal/engine"
	"spatialtree/internal/server"
	"spatialtree/internal/tree"
	"spatialtree/internal/wire"
)

// DynCreate implements server.ClusterHooks: hash the tree, create the
// shard at its owner, and ship the initial snapshot to the followers.
func (n *Node) DynCreate(parents []int, epsilon float64, backend string) (server.DynCreateResult, error) {
	t, err := tree.FromParents(parents)
	if err != nil {
		return server.DynCreateResult{}, server.Err(server.StatusBadRequest, err)
	}
	key := engine.Fingerprint(t)
	for attempt := 0; attempt <= len(n.peers); attempt++ {
		owner, ok := n.ring.Owner(key, n.alive)
		if !ok {
			break
		}
		if owner == n.cfg.Self {
			return n.ownerCreate(key, parents, epsilon, backend)
		}
		if n.cfg.Redirect {
			return server.DynCreateResult{}, server.RedirectTo(owner)
		}
		c, err := n.client(owner)
		if err != nil {
			continue // client() quarantined the owner; re-walk the ring
		}
		dc, err := c.DynCreate(&wire.DynCreate{Parents: parents, Epsilon: epsilon, Backend: backend})
		if err != nil {
			if serr := fromWireError(err); serr != nil {
				return server.DynCreateResult{}, serr
			}
			n.markDown(owner)
			continue
		}
		return server.DynCreateResult{ID: dc.ShardID, N: dc.N, Backend: dc.Backend}, nil
	}
	return server.DynCreateResult{}, server.Errf(server.StatusUnavailable,
		"cluster: no live owner for tree fingerprint %016x", key)
}

// ownerCreate creates a shard this node owns and replicates its initial
// snapshot, so a shard is recoverable from the moment it is routable.
func (n *Node) ownerCreate(key uint64, parents []int, epsilon float64, backend string) (server.DynCreateResult, error) {
	id := n.nextShardID(key)
	res, err := n.srv.DynCreateLocal(id, parents, epsilon, backend)
	if err != nil {
		return res, err
	}
	sh := n.ownedShardState(id, key)
	sh.mu.Lock()
	n.replicate(id, key, nil)
	sh.mu.Unlock()
	return res, nil
}

// Mutate implements server.ClusterHooks. At the owner the response is
// gated on follower acks: it returns only after the shipped record (or
// a superseding snapshot) is acknowledged by every follower the ring
// currently lists live, up to Replicas of them.
func (n *Node) Mutate(id string, op uint8, arg int) (server.MutateResult, error) {
	key, ok := shardKey(id)
	if !ok {
		// Not a cluster id: a node-local shard from single-node
		// operation. Served where it lives, never routed.
		return n.srv.DynMutate(id, op, arg)
	}
	if hb := n.handbackFor(id); hb != nil {
		// Mid-rejoin: the local copy is not authoritative yet. Proxy to
		// the serving successor or park until the handback completes.
		return n.handbackMutate(hb, id, key, op, arg)
	}
	if _, served := n.srv.DynShard(id); served {
		// Served here — as ring owner, or as the surrogate successor
		// still covering a shard whose restarted ring owner has not
		// claimed it back. Serving locally keeps the surrogate
		// authoritative (and keeps the rejoiner's proxied requests from
		// bouncing) until a handback moves ownership explicitly.
		return n.ownerMutate(id, key, op, arg)
	}
	for attempt := 0; attempt <= len(n.peers); attempt++ {
		owner, ok := n.ring.Owner(key, n.alive)
		if !ok {
			break
		}
		if owner == n.cfg.Self {
			if err := n.promote(id); err != nil {
				return server.MutateResult{}, err
			}
			return n.ownerMutate(id, key, op, arg)
		}
		if n.cfg.Redirect {
			return server.MutateResult{}, server.RedirectTo(owner)
		}
		c, err := n.client(owner)
		if err != nil {
			continue
		}
		m, err := c.Mutate(&wire.Mutate{ShardID: id, Op: op, Arg: arg})
		if err != nil {
			if serr := fromWireError(err); serr != nil {
				return server.MutateResult{}, serr
			}
			n.markDown(owner)
			continue
		}
		return server.MutateResult{Vertex: m.Vertex, Moved: m.Moved, Epoch: m.Epoch, N: m.N}, nil
	}
	return server.MutateResult{}, server.Errf(server.StatusUnavailable,
		"cluster: no live owner for shard %s", id)
}

// ownerMutate applies one mutation locally and ships it. The per-shard
// cluster lock is held across apply and ship, so records reach each
// follower in epoch order and the ack gate covers exactly this record.
// It is also the handback fence: a grant releases the shard under this
// same lock, so the served re-check below refuses any mutation that
// routed here before the fence but acquired the lock after it — no
// apply ever lands past the fence epoch stamped into the grant.
func (n *Node) ownerMutate(id string, key uint64, op uint8, arg int) (server.MutateResult, error) {
	sh := n.ownedShardState(id, key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if _, served := n.srv.DynShard(id); !served {
		return server.MutateResult{}, server.Errf(server.StatusUnavailable,
			"cluster: shard %s ownership was handed back mid-request", id)
	}
	res, err := n.srv.DynMutate(id, op, arg)
	if err != nil {
		return res, err
	}
	result := res.Vertex
	if op == wire.OpDelete {
		result = res.Moved
	}
	n.replicate(id, key, []wire.RepRecord{{
		Type:   op,
		Epoch:  res.Epoch,
		Arg:    int64(arg),
		Result: int64(result),
	}})
	return res, nil
}

// replicate ships recs (or, with nil recs, the current snapshot) to up
// to Replicas live followers, walking the ring past failures. It
// returns once every shipped follower acked — the mutation response
// gate. Fewer than Replicas acks means the live cluster is smaller than
// Replicas+1; the effective guarantee is always min(Replicas, live-1)
// copies beyond the owner.
func (n *Node) replicate(id string, key uint64, recs []wire.RepRecord) int {
	need := n.cfg.Replicas
	if need <= 0 {
		return 0
	}
	acked := 0
	for _, cand := range n.ring.Successors(key, len(n.ring.nodes), n.alive) {
		if acked >= need {
			break
		}
		if cand == n.cfg.Self || n.conflicted(id, cand) {
			// Conflicted pairs are terminal until a handback or liveness
			// transition clears them; re-shipping would refuse forever.
			continue
		}
		var err error
		if len(recs) == 0 {
			err = n.shipSnapshot(cand, id)
		} else {
			err = n.shipRecords(cand, id, recs)
		}
		if err != nil {
			continue
		}
		acked++
	}
	return acked
}

// shipRecords ships WAL records to one follower. A follower that is
// merely behind (AckNeedSync with a cursor) is first offered the WAL
// tail it is missing — the cheap resync, straight out of the owner's
// shard log. A follower with no usable replica (cursor 0, AckRefused,
// or a tail the log already compacted away) is rebuilt with a full
// snapshot, captured now so it covers every record being shipped. A
// refused snapshot is terminal (see shipSnapshot); a refused record
// ship still gets the one snapshot attempt first, because refusal is
// also how a follower reports a diverged replica it just discarded —
// the case a rebuild genuinely fixes.
func (n *Node) shipRecords(addr, id string, recs []wire.RepRecord) error {
	c, err := n.client(addr)
	if err != nil {
		return err
	}
	ack, err := c.ShipRecords(&wire.RepRecords{ShardID: id, Recs: recs})
	if err != nil {
		if serr := fromWireError(err); serr != nil {
			return serr
		}
		n.markDown(addr)
		return err
	}
	if ack.Code == wire.AckOK {
		return nil
	}
	if ack.Code == wire.AckNeedSync && ack.Cursor > 0 {
		if err := n.shipTail(addr, id, ack.Cursor); err == nil {
			return nil
		}
	}
	return n.shipSnapshot(addr, id)
}

// shipTail ships the owner's WAL records after the follower's cursor —
// one shot, no retry: any failure (records compacted away, no local
// log, still out of sync) falls back to the snapshot path.
func (n *Node) shipTail(addr, id string, cursor uint64) error {
	log, ok := n.srv.DynShardLog(id)
	if !ok {
		return fmt.Errorf("cluster: no local log for %s", id)
	}
	recs, err := log.RecordsAfter(cursor)
	if err != nil || len(recs) == 0 {
		if err == nil {
			err = fmt.Errorf("cluster: no records after epoch %d for %s", cursor, id)
		}
		return err
	}
	wrecs := wireRecords(recs)
	c, err := n.client(addr)
	if err != nil {
		return err
	}
	ack, err := c.ShipRecords(&wire.RepRecords{ShardID: id, Recs: wrecs})
	if err != nil {
		if serr := fromWireError(err); serr != nil {
			return serr
		}
		n.markDown(addr)
		return err
	}
	if ack.Code != wire.AckOK {
		return fmt.Errorf("cluster: tail resync of %s at %s did not converge: %s", id, addr, ack.Msg)
	}
	return nil
}

// shipSnapshot ships the shard's current snapshot to one follower. A
// refusal here is terminal for the (shard, follower) pair: the snapshot
// is the replication ladder's last rung, and the canonical refusal —
// the follower serves the shard itself (conflicting ownership views) —
// cannot resolve by shipping the same thing again. The pair is recorded
// as a conflict (surfaced in /v1/cluster/status) and skipped by the
// ship loop until a handback or a liveness transition of the follower
// clears it; previously this was treated as transient and re-shipped on
// every mutation, forever.
func (n *Node) shipSnapshot(addr, id string) error {
	blob, epoch, err := n.srv.SnapshotDyn(id)
	if err != nil {
		return err
	}
	c, err := n.client(addr)
	if err != nil {
		return err
	}
	ack, err := c.ShipSnapshot(&wire.RepSnapshot{ShardID: id, Blob: blob})
	if err != nil {
		if serr := fromWireError(err); serr != nil {
			return serr
		}
		n.markDown(addr)
		return err
	}
	if ack.Code != wire.AckOK {
		n.markConflict(id, addr, ack.Msg)
		return fmt.Errorf("cluster: follower %s refused snapshot of %s at epoch %d: %s",
			addr, id, epoch, ack.Msg)
	}
	return nil
}

// ShardQuery implements server.ClusterHooks. handled == false hands the
// query back to the server's local zero-conversion path — the shard is
// (possibly just promoted to be) served here, or is a node-local
// non-cluster id.
func (n *Node) ShardQuery(id string, req *server.QueryRequest) (*server.QueryResponse, bool, error) {
	key, ok := shardKey(id)
	if !ok {
		return nil, false, nil
	}
	if hb := n.handbackFor(id); hb != nil {
		return n.handbackQuery(hb, id, req)
	}
	if _, served := n.srv.DynShard(id); served {
		return nil, false, nil // served here (owner or surrogate): local fast path
	}
	for attempt := 0; attempt <= len(n.peers); attempt++ {
		owner, ok := n.ring.Owner(key, n.alive)
		if !ok {
			break
		}
		if owner == n.cfg.Self {
			if err := n.promote(id); err != nil {
				return nil, true, err
			}
			return nil, false, nil
		}
		if n.cfg.Redirect {
			return nil, true, server.RedirectTo(owner)
		}
		c, err := n.client(owner)
		if err != nil {
			continue
		}
		q, err := server.WireQueryFromRequest(0, id, req)
		if err != nil {
			return nil, true, err
		}
		res, err := c.Do(q)
		if err != nil {
			if serr := fromWireError(err); serr != nil {
				return nil, true, serr
			}
			n.markDown(owner)
			continue
		}
		return server.QueryResponseFromWire(res), true, nil
	}
	return nil, true, server.Errf(server.StatusUnavailable,
		"cluster: no live owner for shard %s", id)
}

// promote makes an owned-by-ring shard locally served: a no-op when it
// already is, otherwise the failover step — the replica this node was
// following is adopted into the serving table, journal and all, at
// exactly its apply cursor. Requests for a shard this node neither
// serves nor follows fail NotFound (the id may be stale, or the shard
// lost more nodes than it had replicas).
func (n *Node) promote(id string) error {
	if _, ok := n.srv.DynShard(id); ok {
		return nil
	}
	n.mu.Lock()
	rep := n.reps[id]
	n.mu.Unlock()
	if rep == nil {
		return server.Errf(server.StatusNotFound, "unknown shard_id %s", id)
	}
	rep.mu.Lock()
	defer rep.mu.Unlock()
	if rep.de == nil {
		return server.Errf(server.StatusNotFound, "unknown shard_id %s", id)
	}
	if err := n.srv.AdoptDynShard(id, rep.de, rep.log); err != nil {
		if _, ok := n.srv.DynShard(id); ok {
			return nil // lost a promotion race; the shard is served
		}
		return err
	}
	rep.de, rep.log = nil, nil // the engine and log live on in the serving table
	n.mu.Lock()
	delete(n.reps, id)
	n.mu.Unlock()
	return nil
}
