package cluster

// Rejoin-handback tests: the deterministic owner-restart path, the
// chaos variant (restart mid-churn with the epoch-arithmetic oracle),
// and regression tests for the liveness half-open probe, the dial/close
// race, and terminal conflict classification.

import (
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"spatialtree/internal/server"
	"spatialtree/internal/wire"
)

// restartMember kills tn and boots a fresh member on the same address
// and directories — the crash-restart of a real deployment.
func restartMember(t *testing.T, nodes []*testNode, tn *testNode, replicas int) *testNode {
	t.Helper()
	idx := -1
	addrs := make([]string, len(nodes))
	for i, m := range nodes {
		addrs[i] = m.addr
		if m == tn {
			idx = i
		}
	}
	if idx < 0 {
		t.Fatalf("restartMember: %s not in cluster", tn.addr)
	}
	tn.kill()
	ln, err := net.Listen("tcp", tn.addr)
	if err != nil {
		t.Fatalf("rebind %s: %v", tn.addr, err)
	}
	fresh := startMember(t, ln, addrs, idx, tn.dir, replicas)
	nodes[idx] = fresh
	return fresh
}

// waitHandback blocks until tn serves id with no pending handback, or
// fails the test.
func waitHandback(t *testing.T, tn *testNode, id string) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for {
		_, served := tn.srv.DynShard(id)
		if served && len(tn.node.Status().Handbacks) == 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("handback of %s at %s did not complete (served=%v, pending=%v)",
				id, tn.addr, served, tn.node.Status().Handbacks)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// mutateRetry mutates through tn, riding out the transient
// unavailability of routing convergence.
func mutateRetry(t *testing.T, tn *testNode, id string) server.MutateResult {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		r, err := tn.node.Mutate(id, wire.OpInsert, 0)
		if err == nil {
			return r
		}
		if time.Now().After(deadline) {
			t.Fatalf("mutate %s via %s: %v", id, tn.addr, err)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestRejoinHandbackQuiescent is the deterministic rejoin story: the
// owner dies, the successor promotes and absorbs more acked mutations,
// the owner restarts — and gets its shard back automatically, at the
// successor's cursor, with the successor released. No operator steps.
func TestRejoinHandbackQuiescent(t *testing.T) {
	nodes := startCluster(t, 3, 2)
	res, err := nodes[0].node.DynCreate(chainParents(8), 0, "")
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	id, n0 := res.ID, res.N
	walk := ownerAndSuccessors(t, nodes[0], id)
	owner, succ := byAddr(t, nodes, walk[0]), byAddr(t, nodes, walk[1])

	const preKill, postKill = 5, 5
	var last server.MutateResult
	for i := 0; i < preKill; i++ {
		last = mutateRetry(t, owner, id)
	}
	owner.kill()
	// The successor promotes its replica and absorbs further history the
	// dead owner never saw.
	for i := 0; i < postKill; i++ {
		last = mutateRetry(t, succ, id)
	}
	if want := uint64(preKill + postKill); last.Epoch != want {
		t.Fatalf("pre-rejoin epoch %d, want %d", last.Epoch, want)
	}

	rejoined := restartMember(t, nodes, owner, 2)
	waitHandback(t, rejoined, id)

	// Ownership moved back whole: the rejoiner serves at the fence (the
	// successor's full acked history), and the successor released.
	de, ok := rejoined.srv.DynShard(id)
	if !ok {
		t.Fatalf("rejoined owner does not serve %s", id)
	}
	if got := de.Epoch(); got != last.Epoch {
		t.Fatalf("rejoined shard at epoch %d, want %d — acked history lost in handback", got, last.Epoch)
	}
	if _, also := succ.srv.DynShard(id); also {
		t.Fatalf("successor %s still serves %s after handback", succ.addr, id)
	}
	// Writes flow through every member again, epochs gapless, and the
	// leaf count accounts for exactly every applied insert.
	for _, tn := range nodes {
		r := mutateRetry(t, tn, id)
		if r.Epoch != last.Epoch+1 {
			t.Fatalf("post-handback epoch via %s: %d, want %d", tn.addr, r.Epoch, last.Epoch+1)
		}
		last = r
	}
	if want := n0 + int(last.Epoch); last.N != want {
		t.Fatalf("post-handback leaf count %d, want %d", last.N, want)
	}
}

// TestClusterRejoinHandback is the rejoin chaos test: the owner dies
// mid-churn, the successor promotes and keeps acking, the owner
// restarts mid-churn — and the handback must converge while writes keep
// flowing. Oracles, all epoch arithmetic: acked epochs are unique
// (two nodes accepting writes for the shard at once would ack the same
// epoch twice), the final copy contains every acked epoch, and the
// leaf count matches the epoch exactly.
func TestClusterRejoinHandback(t *testing.T) {
	nodes := startCluster(t, 3, 2)
	res, err := nodes[0].node.DynCreate(chainParents(8), 0, "")
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	id, n0 := res.ID, res.N
	walk := ownerAndSuccessors(t, nodes[0], id)
	owner := byAddr(t, nodes, walk[0])
	var survivors []*testNode
	for _, tn := range nodes {
		if tn != owner {
			survivors = append(survivors, tn)
		}
	}

	var mu sync.Mutex
	var ackedEpochs []uint64
	killed := make(chan struct{})
	restart := make(chan struct{})
	done := make(chan struct{})
	var churn sync.WaitGroup
	const preKill, midKill, postRejoin = 15, 25, 40
	total := preKill + midKill + postRejoin

	for _, tn := range survivors {
		churn.Add(1)
		go func(tn *testNode) {
			defer churn.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				r, err := tn.node.Mutate(id, wire.OpInsert, 0)
				if err != nil {
					// Unavailability while routing or the handback
					// converges is the allowed failure mode; an unacked
					// mutation carries no guarantee either way.
					time.Sleep(5 * time.Millisecond)
					continue
				}
				mu.Lock()
				ackedEpochs = append(ackedEpochs, r.Epoch)
				n := len(ackedEpochs)
				mu.Unlock()
				switch n {
				case preKill:
					close(killed)
				case preKill + midKill:
					close(restart)
				}
				if n >= total {
					select {
					case <-done:
					default:
						close(done)
					}
					return
				}
			}
		}(tn)
	}

	<-killed
	owner.kill() // chaos event one: the owner dies mid-churn

	<-restart // the successor has absorbed acked history meanwhile
	rejoined := restartMember(t, nodes, owner, 2)

	select {
	case <-done:
	case <-time.After(60 * time.Second):
		close(done)
		churn.Wait()
		mu.Lock()
		defer mu.Unlock()
		t.Fatalf("churn stalled: %d/%d mutations acked", len(ackedEpochs), total)
	}
	churn.Wait()

	// Single writer at every instant: each acked epoch was issued by
	// exactly one serving copy. A handback that let the rejoiner and the
	// successor serve concurrently would ack one epoch from both.
	seen := make(map[uint64]bool, len(ackedEpochs))
	var maxAcked uint64
	for _, e := range ackedEpochs {
		if seen[e] {
			t.Fatalf("epoch %d acked twice — two nodes accepted writes for %s concurrently", e, id)
		}
		seen[e] = true
		if e > maxAcked {
			maxAcked = e
		}
	}

	// The handback converges with churn still running, and ownership
	// lands back at the ring owner — with everyone else released.
	waitHandback(t, rejoined, id)
	de, ok := rejoined.srv.DynShard(id)
	if !ok {
		t.Fatalf("rejoined owner does not serve %s", id)
	}
	for _, tn := range survivors {
		if _, also := tn.srv.DynShard(id); also {
			t.Fatalf("%s still serves %s after the owner rejoined", tn.addr, id)
		}
	}

	// Zero acked loss in either direction: epochs are sequential per
	// shard, so holding epoch maxAcked means holding every acked epoch —
	// those absorbed by the successor while the owner was down included.
	if got := de.Epoch(); got < maxAcked {
		t.Fatalf("rejoined shard at epoch %d, but epoch %d was acked — acked mutations lost", got, maxAcked)
	}
	if got, want := de.N(), n0+int(de.Epoch()); got != want {
		t.Fatalf("rejoined shard has %d leaves, want %d (n0 %d + %d applied mutations)", got, want, n0, de.Epoch())
	}

	// The cluster still takes writes through every member, including the
	// rejoined owner, and the followers' cursors agree with the owner's
	// epoch once the in-flight churn has fully drained (R=2 acks are
	// synchronous, so the last ack implies both followers applied).
	for _, tn := range nodes {
		r := mutateRetry(t, tn, id)
		if r.Epoch <= maxAcked {
			t.Fatalf("post-rejoin epoch %d did not advance past %d", r.Epoch, maxAcked)
		}
		maxAcked = r.Epoch
	}
	for _, tn := range survivors {
		if cur := tn.node.Status().ReplicaCursors[id]; cur != maxAcked {
			t.Fatalf("follower %s cursor %d, want %d — cursors disagree after rejoin", tn.addr, cur, maxAcked)
		}
	}
}

// TestAliveHalfOpenProbe pins the liveness re-admission protocol: when
// a quarantine expires, exactly one caller per DownFor window gets the
// peer reported live (the half-open probe); the rest keep routing
// around. Previously every caller flipped live at once — a thundering
// herd of dials against a peer that had just failed.
func TestAliveHalfOpenProbe(t *testing.T) {
	nodes := startCluster(t, 2, 1)
	n, addr := nodes[0].node, nodes[1].addr

	n.markDown(addr)
	if n.alive(addr) {
		t.Fatal("peer reported live inside quarantine")
	}
	time.Sleep(150 * time.Millisecond) // DownFor is 100ms in tests

	var admitted int32
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if n.alive(addr) {
				atomic.AddInt32(&admitted, 1)
			}
		}()
	}
	wg.Wait()
	if admitted != 1 {
		t.Fatalf("%d callers admitted past the expired quarantine, want exactly 1 (half-open probe)", admitted)
	}

	// The probe token ages out if its holder never resolves it: the next
	// window admits one more probe, still never a stampede.
	time.Sleep(120 * time.Millisecond)
	if !n.alive(addr) {
		t.Fatal("no probe admitted after the previous token expired")
	}
	if n.alive(addr) {
		t.Fatal("second caller admitted within one probe window")
	}

	// A successful dial resolves the probe: quarantine clears and every
	// caller sees the peer live again.
	if _, err := n.client(addr); err != nil {
		t.Fatalf("probe dial: %v", err)
	}
	for i := 0; i < 3; i++ {
		if !n.alive(addr) {
			t.Fatal("peer not live after successful probe dial")
		}
	}

	// A failed probe re-quarantines (markDown path) and the cycle
	// repeats — again with a single probe per window.
	n.markDown(addr)
	if n.alive(addr) {
		t.Fatal("peer reported live inside re-quarantine")
	}
}

// TestClientDialCloseRace hammers client/markDown concurrently with a
// node Close and pins the registration re-check: no dial may strand a
// client in a peer after Close, and no registration may erase a fresher
// quarantine (run under -race).
func TestClientDialCloseRace(t *testing.T) {
	nodes := startCluster(t, 2, 1)
	n, addr := nodes[0].node, nodes[1].addr
	p := n.peers[addr]

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				_, _ = n.client(addr)
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			n.markDown(addr)
			time.Sleep(time.Millisecond)
		}
	}()

	time.Sleep(50 * time.Millisecond)
	nodes[0].kill() // Close races the dials still in flight
	close(stop)
	wg.Wait()

	p.mu.Lock()
	stranded, closed := p.c, p.closed
	p.mu.Unlock()
	if !closed {
		t.Fatal("peer not marked closed after node Close")
	}
	if stranded != nil {
		t.Fatalf("a dial registered client %p after Close — stranded open connection", stranded)
	}
	if _, err := n.client(addr); err == nil {
		t.Fatal("client() succeeded after Close")
	}
}

// TestConflictingFollowerTerminal pins the satellite bugfix: a follower
// that refuses applies because it serves the shard itself (conflicting
// ownership views) is classified terminal — recorded in cluster status
// and skipped by the ship loop — instead of being re-shipped a snapshot
// on every mutation forever. A liveness transition of the peer clears
// the classification.
func TestConflictingFollowerTerminal(t *testing.T) {
	nodes := startCluster(t, 3, 1)
	res, err := nodes[0].node.DynCreate(chainParents(5), 0, "")
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	id := res.ID
	walk := ownerAndSuccessors(t, nodes[0], id)
	owner, follower := byAddr(t, nodes, walk[0]), byAddr(t, nodes, walk[1])

	if _, err := owner.node.Mutate(id, wire.OpInsert, 0); err != nil {
		t.Fatalf("mutate: %v", err)
	}
	// Force the conflicting ownership view: the follower adopts its
	// replica into serving while the real owner is alive and serving.
	if err := follower.node.promote(id); err != nil {
		t.Fatalf("force-promote at follower: %v", err)
	}

	// The owner's next mutation must still ack (the ring walks past the
	// conflicted follower to the bystander) and the pair must surface as
	// a terminal conflict, not retry forever.
	if _, err := owner.node.Mutate(id, wire.OpInsert, 0); err != nil {
		t.Fatalf("mutate with conflicted follower: %v", err)
	}
	st := owner.node.Status()
	if len(st.Conflicts) != 1 || st.Conflicts[0].Shard != id || st.Conflicts[0].Peer != follower.addr {
		t.Fatalf("conflicts = %+v, want exactly [{%s %s}]", st.Conflicts, id, follower.addr)
	}
	if !owner.node.conflicted(id, follower.addr) {
		t.Fatal("ship loop does not skip the conflicted pair")
	}
	// Still conflicted after more traffic: the classification is sticky,
	// and mutations keep acking without the follower.
	if _, err := owner.node.Mutate(id, wire.OpInsert, 0); err != nil {
		t.Fatalf("mutate: %v", err)
	}
	if got := len(owner.node.Status().Conflicts); got != 1 {
		t.Fatalf("%d conflicts after more traffic, want 1", got)
	}

	// A liveness transition of the follower voids the classification —
	// a restart is exactly what resolves conflicting ownership views.
	owner.node.markDown(follower.addr)
	if got := len(owner.node.Status().Conflicts); got != 0 {
		t.Fatalf("%d conflicts after the peer's liveness transition, want 0", got)
	}
}
