package cluster

// The follower half of replication: applying shipped snapshots and WAL
// records for shards other nodes own, and recovering those replicas at
// boot. A replica is a live DynEngine held outside the serving table —
// it answers nothing until a failover promotes it (route.go) — plus,
// when the node has a replica store, its own snapshot+WAL under
// <ReplicaDir>/dyn/<id>, kept by the same journal discipline as an
// owned shard's.

import (
	"errors"
	"fmt"
	"sync"

	"spatialtree/internal/engine"
	"spatialtree/internal/persist"
	"spatialtree/internal/server"
	"spatialtree/internal/wire"
)

// replica is one followed shard. The mutex serializes applies against
// promotion and against snapshot replacement; de == nil means the
// replica was discarded (or promoted) and needs a snapshot resync.
type replica struct {
	mu  sync.Mutex //spatialvet:lockclass cluster
	de  *engine.DynEngine
	log *persist.ShardLog
}

// cursor returns the replica's apply cursor: the epoch of the last
// record it holds. Idempotency pivot for the owner's shipping.
func (rep *replica) cursor() uint64 {
	rep.mu.Lock()
	defer rep.mu.Unlock()
	if rep.de == nil {
		return 0
	}
	return rep.de.Epoch()
}

// replicaEntry returns (creating if needed) the replica slot for id.
func (n *Node) replicaEntry(id string) *replica {
	n.bumpSeq(id)
	n.mu.Lock()
	defer n.mu.Unlock()
	rep := n.reps[id]
	if rep == nil {
		rep = &replica{}
		n.reps[id] = rep
	}
	return rep
}

// ApplySnapshot implements server.ClusterHooks: replace this node's
// replica of id wholesale with the shipped snapshot. The cursor moves
// to the snapshot's epoch regardless of where the old replica stood —
// a snapshot is always the owner's present, never a rewind below it.
func (n *Node) ApplySnapshot(id string, blob []byte) (uint64, uint8, string) {
	if _, served := n.srv.DynShard(id); served {
		// Both sides believe they own the shard — conflicting liveness
		// views. Refusing keeps this node's served copy authoritative
		// here; see docs/cluster.md on static-membership split-brain.
		return 0, wire.AckRefused, "shard " + id + " is served here (conflicting ownership views)"
	}
	snap, err := persist.DecodeDyn(blob)
	if err != nil {
		return 0, wire.AckRefused, "decode: " + err.Error()
	}
	de, err := engine.RestoreDyn(server.DynStateFromSnapshot(snap), n.srv.EngineOptions())
	if err != nil {
		return 0, wire.AckRefused, "restore: " + err.Error()
	}
	rep := n.replicaEntry(id)
	rep.mu.Lock()
	defer rep.mu.Unlock()
	// A replica demoted at boot (rejoin handback) journals into the
	// server store; once the snapshot supersedes it, that copy is stale
	// on both counts — drop it so a later restart cannot resurrect it.
	// For ordinary followers the server store holds nothing and this is
	// a no-op.
	_ = n.srv.DropDynState(id)
	var log *persist.ShardLog
	if n.store != nil {
		// Reset the durable copy to match: the old log (if any) is
		// superseded by the snapshot being newer than anything in it.
		if err := n.store.DropShard(id); err != nil {
			return 0, wire.AckRefused, err.Error()
		}
		log, err = n.store.CreateShardLog(id, snap)
		if err != nil {
			return 0, wire.AckRefused, err.Error()
		}
		de.SetJournal(replicaJournal(log))
	}
	rep.de, rep.log = de, log
	return snap.Epoch, wire.AckOK, ""
}

// ApplyRecords implements server.ClusterHooks: apply shipped WAL
// records against the replica's cursor. Records at or below the cursor
// are duplicates and skip (idempotent re-delivery); a record further
// ahead than cursor+1 is a gap and asks the owner for a snapshot
// resync; a record that applies with a different result than the owner
// recorded means the copies diverged — the replica is discarded so the
// owner rebuilds it from a snapshot.
func (n *Node) ApplyRecords(id string, recs []wire.RepRecord) (uint64, uint8, string) {
	if _, served := n.srv.DynShard(id); served {
		return 0, wire.AckRefused, "shard " + id + " is served here (conflicting ownership views)"
	}
	n.mu.Lock()
	rep := n.reps[id]
	n.mu.Unlock()
	if rep == nil {
		return 0, wire.AckNeedSync, "no replica of " + id
	}
	rep.mu.Lock()
	defer rep.mu.Unlock()
	if rep.de == nil {
		return 0, wire.AckNeedSync, "replica of " + id + " was discarded"
	}
	for _, r := range recs {
		err := rep.de.ApplyRecord(engine.MutationRecord{
			Epoch:  r.Epoch,
			Op:     engine.MutationOp(r.Type),
			Arg:    int(r.Arg),
			Result: int(r.Result),
		})
		switch {
		case err == nil:
		case errors.Is(err, engine.ErrReplicaGap):
			return rep.de.Epoch(), wire.AckNeedSync, err.Error()
		default:
			n.discardReplicaLocked(id, rep)
			return 0, wire.AckRefused, err.Error()
		}
	}
	if rep.log != nil && rep.log.NeedsCompact() {
		if err := rep.log.Compact(server.DynSnapshotFromState(rep.de.State())); err != nil {
			// The replica itself is intact; only its durable form is in
			// question. Discarding forces a clean snapshot resync.
			n.discardReplicaLocked(id, rep)
			return 0, wire.AckRefused, "compact: " + err.Error()
		}
	}
	return rep.de.Epoch(), wire.AckOK, ""
}

// discardReplicaLocked abandons a replica (caller holds rep.mu): the
// engine and the durable copy are dropped — from the server store too,
// for a copy demoted at boot by the rejoin path — and the next shipment
// gets AckNeedSync, prompting the owner to rebuild from a snapshot.
func (n *Node) discardReplicaLocked(id string, rep *replica) {
	rep.de, rep.log = nil, nil
	if n.store != nil {
		_ = n.store.DropShard(id)
	}
	_ = n.srv.DropDynState(id)
}

// recoverReplicas rebuilds the replica table from the replica store at
// boot: snapshot restore, WAL replay through the same idempotent apply
// the live path uses, then journal installation (after replay, so
// replayed records are not re-journaled).
func (n *Node) recoverReplicas() error {
	ids, err := n.store.ShardIDs()
	if err != nil {
		return fmt.Errorf("cluster: replica recovery: %w", err)
	}
	for _, id := range ids {
		log, snap, recs, err := n.store.OpenShardLog(id)
		if err != nil {
			return fmt.Errorf("cluster: replica %s: %w", id, err)
		}
		de, err := engine.RestoreDyn(server.DynStateFromSnapshot(snap), n.srv.EngineOptions())
		if err != nil {
			return fmt.Errorf("cluster: replica %s: %w", id, err)
		}
		for _, r := range recs {
			if r.Type == persist.RecFence {
				continue
			}
			if err := de.ApplyRecord(engine.MutationRecord{
				Epoch:  r.Epoch,
				Op:     engine.MutationOp(r.Type),
				Arg:    r.Arg,
				Result: r.Result,
			}); err != nil {
				return fmt.Errorf("cluster: replica %s replay epoch %d: %w", id, r.Epoch, err)
			}
		}
		de.SetJournal(replicaJournal(log))
		n.reps[id] = &replica{de: de, log: log}
		n.bumpSeq(id)
	}
	return nil
}

// replicaJournal adapts a replica's shard log into the engine's journal
// hook, mirroring the server's journaling of owned shards.
func replicaJournal(log *persist.ShardLog) engine.JournalFunc {
	return func(rec engine.MutationRecord) error {
		r := persist.Record{Epoch: rec.Epoch, Arg: rec.Arg, Result: rec.Result}
		if rec.Op == engine.MutInsert {
			r.Type = persist.RecInsert
		} else {
			r.Type = persist.RecDelete
		}
		return log.Append(r)
	}
}
