// Package cluster is the multi-node serving tier: a static peer list, a
// consistent-hash ring that assigns every mutable shard an owner, and
// log-shipping replication from each owner to its ring successors. The
// package plugs into the serving core through server.ClusterHooks — the
// server never imports it — and speaks to peers over the binary wire
// protocol (frames FrameDynCreate..FrameRepAck). See docs/cluster.md.
package cluster

import (
	"hash/fnv"
	"sort"
	"strconv"
)

// Ring is a consistent-hash ring over a static node list. Each node
// contributes vnodes points (hashes of "addr#i"), so ownership spreads
// evenly and the loss of one node redistributes only that node's keys.
// A Ring is immutable after NewRing — liveness is the caller's,
// supplied per lookup — so lookups need no locking.
type Ring struct {
	nodes  []string // sorted, deduplicated addresses
	points []ringPoint
}

// ringPoint is one virtual node: a position on the hash circle and the
// index (into Ring.nodes) of the node it belongs to.
type ringPoint struct {
	hash uint64
	node int32
}

// NewRing builds the ring for the given peer addresses with vnodes
// virtual nodes per peer. Order and duplicates in peers do not matter:
// the ring hashes addresses, so every node builds the identical ring
// from the same (even differently ordered) peer list.
func NewRing(peers []string, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = 1
	}
	seen := make(map[string]bool, len(peers))
	nodes := make([]string, 0, len(peers))
	for _, p := range peers {
		if p == "" || seen[p] {
			continue
		}
		seen[p] = true
		nodes = append(nodes, p)
	}
	sort.Strings(nodes)
	r := &Ring{nodes: nodes, points: make([]ringPoint, 0, len(nodes)*vnodes)}
	for i, addr := range nodes {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{hash: vnodeHash(addr, v), node: int32(i)})
		}
	}
	sort.Slice(r.points, func(a, b int) bool {
		if r.points[a].hash != r.points[b].hash {
			return r.points[a].hash < r.points[b].hash
		}
		// Hash ties (vanishingly rare) break by node index so every
		// peer still sorts the identical ring.
		return r.points[a].node < r.points[b].node
	})
	return r
}

// Nodes returns the ring's member addresses, sorted.
func (r *Ring) Nodes() []string {
	return append([]string(nil), r.nodes...)
}

// Successors walks the ring clockwise from key's position and returns
// up to max distinct live node addresses in preference order: the first
// is the key's owner, the rest are its replica followers. A nil alive
// treats every node as live. A dead node is skipped but still consumes
// its ring positions, so one node's death only remaps keys that node
// owned — everyone else's walk is unchanged.
func (r *Ring) Successors(key uint64, max int, alive func(addr string) bool) []string {
	if len(r.points) == 0 || max <= 0 {
		return nil
	}
	h := mix64(key)
	i := sort.Search(len(r.points), func(j int) bool { return r.points[j].hash >= h })
	out := make([]string, 0, max)
	seen := make([]bool, len(r.nodes))
	for step := 0; step < len(r.points) && len(out) < max; step++ {
		p := r.points[(i+step)%len(r.points)]
		if seen[p.node] {
			continue
		}
		seen[p.node] = true
		if addr := r.nodes[p.node]; alive == nil || alive(addr) {
			out = append(out, addr)
		}
	}
	return out
}

// Owner returns the live node owning key, or ok == false when no node
// is live.
func (r *Ring) Owner(key uint64, alive func(addr string) bool) (string, bool) {
	s := r.Successors(key, len(r.nodes), alive)
	if len(s) == 0 {
		return "", false
	}
	return s[0], true
}

// vnodeHash positions virtual node v of addr on the circle: FNV-1a 64
// over "addr#v", finalized with mix64. The finalizer matters — peer
// addresses differ in a byte or two, and FNV-1a's upper bits avalanche
// too weakly over such near-identical inputs to spread vnode points
// evenly (without it, one node in an 8-node ring can own 2x its share).
func vnodeHash(addr string, v int) uint64 {
	h := fnv.New64a()
	h.Write([]byte(addr))
	h.Write([]byte{'#'})
	h.Write(strconv.AppendInt(nil, int64(v), 10))
	return mix64(h.Sum64())
}

// mix64 finalizes a key before ring lookup (the splitmix64 finalizer).
// Shard keys are tree fingerprints, which are already hashes, but the
// extra avalanche keeps lookup uniform for any caller-chosen keys too.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
