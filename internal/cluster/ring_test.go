package cluster

import (
	"fmt"
	"reflect"
	"testing"
)

// testKeys yields n deterministic well-mixed keys (splitmix64 stream).
func testKeys(n int) []uint64 {
	keys := make([]uint64, n)
	var x uint64 = 0x9e3779b97f4a7c15
	for i := range keys {
		x += 0x9e3779b97f4a7c15
		keys[i] = mix64(x)
	}
	return keys
}

func testPeers(n int) []string {
	peers := make([]string, n)
	for i := range peers {
		peers[i] = fmt.Sprintf("10.0.0.%d:9372", i+1)
	}
	return peers
}

// TestRingBalance: with enough virtual nodes, ownership spreads evenly —
// no node owns more than twice nor less than half its fair share.
func TestRingBalance(t *testing.T) {
	cases := []struct {
		nodes, vnodes int
	}{
		{2, 64}, {3, 64}, {3, 128}, {5, 128}, {8, 128}, {16, 64},
	}
	keys := testKeys(20000)
	for _, tc := range cases {
		t.Run(fmt.Sprintf("%dnodes_%dvnodes", tc.nodes, tc.vnodes), func(t *testing.T) {
			r := NewRing(testPeers(tc.nodes), tc.vnodes)
			counts := make(map[string]int, tc.nodes)
			for _, k := range keys {
				owner, ok := r.Owner(k, nil)
				if !ok {
					t.Fatalf("no owner for key %016x", k)
				}
				counts[owner]++
			}
			if len(counts) != tc.nodes {
				t.Fatalf("only %d of %d nodes own keys: %v", len(counts), tc.nodes, counts)
			}
			fair := float64(len(keys)) / float64(tc.nodes)
			for addr, c := range counts {
				if load := float64(c) / fair; load < 0.5 || load > 2.0 {
					t.Errorf("%s owns %d keys (%.2fx fair share %0.f)", addr, c, load, fair)
				}
			}
		})
	}
}

// TestRingStability: a node's death remaps only the keys it owned.
// Every other key keeps its owner, and the remapped keys land on nodes
// that were already in the key's successor list (so a follower that
// holds the replica becomes the new owner).
func TestRingStability(t *testing.T) {
	for _, nNodes := range []int{3, 5, 8} {
		t.Run(fmt.Sprintf("%dnodes", nNodes), func(t *testing.T) {
			peers := testPeers(nNodes)
			r := NewRing(peers, 128)
			keys := testKeys(5000)
			dead := peers[nNodes/2]
			alive := func(addr string) bool { return addr != dead }
			remapped := 0
			for _, k := range keys {
				before, _ := r.Owner(k, nil)
				after, ok := r.Owner(k, alive)
				if !ok {
					t.Fatalf("no owner for key %016x after one death", k)
				}
				if before != dead {
					if after != before {
						t.Fatalf("key %016x moved %s -> %s though %s did not die",
							k, before, after, before)
					}
					continue
				}
				remapped++
				if after == dead {
					t.Fatalf("key %016x still owned by dead node", k)
				}
				// The new owner must be the dead owner's ring successor for
				// this key — the node failover promotes from.
				succ := r.Successors(k, 2, nil)
				if len(succ) < 2 || succ[1] != after {
					t.Fatalf("key %016x remapped to %s, want ring successor %v", k, after, succ)
				}
			}
			if remapped == 0 {
				t.Fatalf("dead node %s owned no keys; balance is broken", dead)
			}
		})
	}
}

// TestRingDeterminism: every peer builds the identical ring from the
// same membership, regardless of list order or duplicates.
func TestRingDeterminism(t *testing.T) {
	base := testPeers(5)
	shuffled := []string{base[3], base[0], base[4], base[0], base[2], base[1], ""}
	a, b := NewRing(base, 64), NewRing(shuffled, 64)
	if !reflect.DeepEqual(a.Nodes(), b.Nodes()) {
		t.Fatalf("node lists differ: %v vs %v", a.Nodes(), b.Nodes())
	}
	for _, k := range testKeys(1000) {
		sa := a.Successors(k, 3, nil)
		sb := b.Successors(k, 3, nil)
		if !reflect.DeepEqual(sa, sb) {
			t.Fatalf("key %016x: successor lists differ: %v vs %v", k, sa, sb)
		}
	}
}

// TestRingSuccessorsDistinct: successor lists never repeat a node and
// honor max.
func TestRingSuccessorsDistinct(t *testing.T) {
	r := NewRing(testPeers(4), 64)
	for _, k := range testKeys(500) {
		for max := 0; max <= 6; max++ {
			s := r.Successors(k, max, nil)
			want := max
			if want > 4 {
				want = 4
			}
			if len(s) != want {
				t.Fatalf("key %016x max %d: got %d successors %v", k, max, len(s), s)
			}
			seen := map[string]bool{}
			for _, addr := range s {
				if seen[addr] {
					t.Fatalf("key %016x: duplicate successor %s in %v", k, addr, s)
				}
				seen[addr] = true
			}
		}
	}
}

// TestRingAllDead: no live nodes means no owner, not a panic or a dead
// owner.
func TestRingAllDead(t *testing.T) {
	r := NewRing(testPeers(3), 16)
	if addr, ok := r.Owner(42, func(string) bool { return false }); ok {
		t.Fatalf("owner %q returned with every node dead", addr)
	}
	if s := r.Successors(42, 3, func(string) bool { return false }); len(s) != 0 {
		t.Fatalf("successors %v returned with every node dead", s)
	}
}
