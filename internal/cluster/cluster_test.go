package cluster

// In-process cluster tests: real servers, real binary-protocol
// listeners, real replication — only the processes are shared. The
// chaos test is the tentpole guarantee: killing a shard's owner
// mid-churn loses zero acked mutations.

import (
	"net"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"spatialtree/internal/persist"
	"spatialtree/internal/server"
	"spatialtree/internal/wire"
)

// testNode is one in-process cluster member.
type testNode struct {
	addr string
	dir  string
	ln   net.Listener
	st   *persist.Store
	srv  *server.Server
	node *Node

	closeOnce sync.Once
}

// kill tears the member down the way a crash would be observed by its
// peers: listener and connections die, then local state is released.
func (tn *testNode) kill() {
	tn.closeOnce.Do(func() {
		tn.srv.CloseBinary()
		_ = tn.node.Close()
		_ = tn.st.Close()
	})
}

// startMember boots one member of the cluster on a pre-bound listener
// (so every member knows the full address list before any one starts).
func startMember(t *testing.T, ln net.Listener, addrs []string, self int, dir string, replicas int) *testNode {
	t.Helper()
	st, err := persist.Open(persist.Options{Dir: filepath.Join(dir, "data")})
	if err != nil {
		t.Fatalf("open store: %v", err)
	}
	srv := server.New(server.Config{
		Durability: server.Durability{Store: st},
		Timeouts:   server.Timeouts{TCPIdle: -1},
		Cluster: server.Cluster{
			Self:     addrs[self],
			Peers:    addrs,
			Replicas: replicas,
		},
	})
	if _, err := srv.Recover(); err != nil {
		t.Fatalf("recover: %v", err)
	}
	n, err := New(srv, Options{
		ReplicaDir: filepath.Join(dir, "replicas"),
		DownFor:    100 * time.Millisecond,
		Dial:       wire.DialOptions{DialTimeout: time.Second},
	})
	if err != nil {
		t.Fatalf("cluster.New: %v", err)
	}
	go srv.ServeBinary(ln)
	tn := &testNode{addr: addrs[self], dir: dir, ln: ln, st: st, srv: srv, node: n}
	t.Cleanup(tn.kill)
	return tn
}

// startCluster boots size members with fresh stores and tempdirs.
func startCluster(t *testing.T, size, replicas int) []*testNode {
	t.Helper()
	lns := make([]net.Listener, size)
	addrs := make([]string, size)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatalf("listen: %v", err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	nodes := make([]*testNode, size)
	for i := range nodes {
		nodes[i] = startMember(t, lns[i], addrs, i, t.TempDir(), replicas)
	}
	return nodes
}

// chainParents builds an n-leaf chain tree (distinct n ⇒ distinct
// fingerprint ⇒ different ring position).
func chainParents(n int) []int {
	p := make([]int, n)
	p[0] = -1
	for i := 1; i < n; i++ {
		p[i] = i - 1
	}
	return p
}

// byAddr finds the member serving addr.
func byAddr(t *testing.T, nodes []*testNode, addr string) *testNode {
	t.Helper()
	for _, tn := range nodes {
		if tn.addr == addr {
			return tn
		}
	}
	t.Fatalf("no member at %s", addr)
	return nil
}

// ownerAndSuccessors resolves a cluster shard id to its ring walk.
func ownerAndSuccessors(t *testing.T, tn *testNode, id string) []string {
	t.Helper()
	key, ok := shardKey(id)
	if !ok {
		t.Fatalf("shard id %q is not a cluster id", id)
	}
	return tn.node.ring.Successors(key, len(tn.node.ring.nodes), nil)
}

// TestClusterFailoverNoAckedLoss is the chaos test: three members,
// full replication, concurrent mutation churn through both non-owners,
// and the owner killed mid-churn. Every acked mutation must survive
// into the promoted copy, and churn must keep acking after the kill.
func TestClusterFailoverNoAckedLoss(t *testing.T) {
	nodes := startCluster(t, 3, 2)

	res, err := nodes[0].node.DynCreate(chainParents(8), 0, "")
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	id, n0 := res.ID, res.N
	walk := ownerAndSuccessors(t, nodes[0], id)
	owner := byAddr(t, nodes, walk[0])
	var survivors []*testNode
	for _, tn := range nodes {
		if tn != owner {
			survivors = append(survivors, tn)
		}
	}

	var mu sync.Mutex
	var ackedEpochs []uint64
	killed := make(chan struct{})
	done := make(chan struct{})
	var churn sync.WaitGroup
	const preKill, postKill = 20, 40

	for _, tn := range survivors {
		churn.Add(1)
		go func(tn *testNode) {
			defer churn.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				r, err := tn.node.Mutate(id, wire.OpInsert, 0)
				if err != nil {
					// Unavailability while routing converges on the
					// successor is the allowed failure mode. An unacked
					// mutation carries no guarantee either way.
					time.Sleep(5 * time.Millisecond)
					continue
				}
				mu.Lock()
				ackedEpochs = append(ackedEpochs, r.Epoch)
				n := len(ackedEpochs)
				mu.Unlock()
				if n == preKill {
					close(killed)
				}
				if n >= preKill+postKill {
					select {
					case <-done:
					default:
						close(done)
					}
					return
				}
			}
		}(tn)
	}

	<-killed
	owner.kill() // the chaos event: the shard's owner dies mid-churn

	select {
	case <-done:
	case <-time.After(30 * time.Second):
		close(done)
		churn.Wait()
		mu.Lock()
		defer mu.Unlock()
		t.Fatalf("churn stalled after owner kill: %d/%d mutations acked", len(ackedEpochs), preKill+postKill)
	}
	churn.Wait()

	var maxAcked uint64
	for _, e := range ackedEpochs {
		if e > maxAcked {
			maxAcked = e
		}
	}

	// Exactly one survivor — the ring successor — now serves the shard.
	succ := byAddr(t, nodes, walk[1])
	de, ok := succ.srv.DynShard(id)
	if !ok {
		t.Fatalf("ring successor %s does not serve %s after owner death", succ.addr, id)
	}
	for _, tn := range survivors {
		if tn != succ {
			if _, also := tn.srv.DynShard(id); also {
				t.Fatalf("both survivors serve %s", id)
			}
		}
	}

	// Zero acked loss: epochs are sequential per shard, so the promoted
	// copy containing epoch maxAcked contains every acked mutation.
	if got := de.Epoch(); got < maxAcked {
		t.Fatalf("promoted shard at epoch %d, but epoch %d was acked — acked mutations lost", got, maxAcked)
	}
	// Inserts only: the leaf count must account for exactly every
	// applied mutation (acked or in-flight at the kill), no more.
	if got, want := de.N(), n0+int(de.Epoch()); got != want {
		t.Fatalf("promoted shard has %d leaves, want %d (n0 %d + %d applied mutations)", got, want, n0, de.Epoch())
	}
	mu.Lock()
	acked := len(ackedEpochs)
	mu.Unlock()
	if int(de.Epoch()) < acked {
		t.Fatalf("promoted shard applied %d mutations, but %d were acked", de.Epoch(), acked)
	}

	// The cluster still takes writes for the shard through any survivor.
	for _, tn := range survivors {
		r, err := tn.node.Mutate(id, wire.OpInsert, 0)
		if err != nil {
			t.Fatalf("post-failover mutate via %s: %v", tn.addr, err)
		}
		if r.Epoch <= maxAcked {
			t.Fatalf("post-failover epoch %d did not advance past %d", r.Epoch, maxAcked)
		}
		maxAcked = r.Epoch
	}
}

// TestReplicationTargetsRingSuccessors: with R = 1 on three members,
// the shard's one replica lives exactly at the ring successor — the
// node a failover would promote — and nowhere else.
func TestReplicationTargetsRingSuccessors(t *testing.T) {
	nodes := startCluster(t, 3, 1)
	res, err := nodes[0].node.DynCreate(chainParents(5), 0, "")
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	id := res.ID
	walk := ownerAndSuccessors(t, nodes[0], id)
	ownerTN, follower, bystander := byAddr(t, nodes, walk[0]), byAddr(t, nodes, walk[1]), byAddr(t, nodes, walk[2])

	const muts = 5
	var last server.MutateResult
	for i := 0; i < muts; i++ {
		if last, err = ownerTN.node.Mutate(id, wire.OpInsert, 0); err != nil {
			t.Fatalf("mutate %d: %v", i, err)
		}
	}
	if cur := follower.node.Status().ReplicaCursors[id]; cur != last.Epoch {
		t.Fatalf("follower cursor %d, want %d", cur, last.Epoch)
	}
	if cur, has := bystander.node.Status().ReplicaCursors[id]; has {
		t.Fatalf("bystander %s holds a replica at cursor %d; R=1 should ship only to the successor", bystander.addr, cur)
	}
}

// TestReplicaBootRecovery: a follower restarted from disk comes back
// with its replica cursor intact, and can still be promoted — the
// restart loses nothing the owner acked.
func TestReplicaBootRecovery(t *testing.T) {
	nodes := startCluster(t, 3, 1)
	res, err := nodes[0].node.DynCreate(chainParents(4), 0, "")
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	id, n0 := res.ID, res.N
	walk := ownerAndSuccessors(t, nodes[0], id)
	ownerTN, follower := byAddr(t, nodes, walk[0]), byAddr(t, nodes, walk[1])

	const muts = 5
	var last server.MutateResult
	for i := 0; i < muts; i++ {
		if last, err = ownerTN.node.Mutate(id, wire.OpInsert, 0); err != nil {
			t.Fatalf("mutate %d: %v", i, err)
		}
	}
	if cur := follower.node.Status().ReplicaCursors[id]; cur != last.Epoch {
		t.Fatalf("follower cursor %d before restart, want %d", cur, last.Epoch)
	}

	// Restart the follower on the same directories and address.
	idx := -1
	addrs := make([]string, len(nodes))
	for i, tn := range nodes {
		addrs[i] = tn.addr
		if tn == follower {
			idx = i
		}
	}
	follower.kill()
	ln, err := net.Listen("tcp", follower.addr)
	if err != nil {
		t.Fatalf("rebind %s: %v", follower.addr, err)
	}
	follower = startMember(t, ln, addrs, idx, follower.dir, 1)
	nodes[idx] = follower

	if cur := follower.node.Status().ReplicaCursors[id]; cur != last.Epoch {
		t.Fatalf("follower cursor %d after restart, want %d", cur, last.Epoch)
	}

	// Kill the owner; the restarted follower must promote its recovered
	// replica and continue the epoch sequence without a gap.
	ownerTN.kill()
	r, err := follower.node.Mutate(id, wire.OpInsert, 0)
	if err != nil {
		t.Fatalf("post-restart failover mutate: %v", err)
	}
	if r.Epoch != last.Epoch+1 {
		t.Fatalf("failover epoch %d, want %d", r.Epoch, last.Epoch+1)
	}
	if want := n0 + int(r.Epoch); r.N != want {
		t.Fatalf("failover leaf count %d, want %d", r.N, want)
	}
}

// TestRoutedCreateAndQuery: creations route to the hash-chosen owner no
// matter which member takes the request, and every member answers
// queries for every shard (proxying when it is not the owner).
func TestRoutedCreateAndQuery(t *testing.T) {
	nodes := startCluster(t, 3, 1)
	// Create via every member; ownership must follow the ring, not the
	// receiving member.
	for i, tn := range nodes {
		res, err := tn.node.DynCreate(chainParents(6+i), 0, "")
		if err != nil {
			t.Fatalf("create via %s: %v", tn.addr, err)
		}
		walk := ownerAndSuccessors(t, tn, res.ID)
		ownerTN := byAddr(t, nodes, walk[0])
		if _, ok := ownerTN.srv.DynShard(res.ID); !ok {
			t.Fatalf("shard %s not served by its ring owner %s", res.ID, ownerTN.addr)
		}
		for _, other := range nodes {
			if other != ownerTN {
				if _, ok := other.srv.DynShard(res.ID); ok {
					t.Fatalf("shard %s also served by non-owner %s", res.ID, other.addr)
				}
			}
		}
		// A mutation through each member lands on the same single copy.
		for j, via := range nodes {
			r, err := via.node.Mutate(res.ID, wire.OpInsert, 0)
			if err != nil {
				t.Fatalf("mutate %s via %s: %v", res.ID, via.addr, err)
			}
			if r.Epoch != uint64(j+1) {
				t.Fatalf("mutate %s via %s: epoch %d, want %d", res.ID, via.addr, r.Epoch, j+1)
			}
		}
	}
}

// TestNonClusterIDsStayLocal: ids without the cluster prefix never
// route — each member serves (and fails) them locally.
func TestNonClusterIDsStayLocal(t *testing.T) {
	nodes := startCluster(t, 2, 1)
	if _, err := nodes[0].node.Mutate("d1", wire.OpInsert, 0); err == nil {
		t.Fatal("mutate of unknown local id succeeded")
	} else if server.Classify(err) != server.StatusNotFound {
		t.Fatalf("unknown local id classified %v, want %v", server.Classify(err), server.StatusNotFound)
	}
}
