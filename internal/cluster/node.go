package cluster

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"spatialtree/internal/persist"
	"spatialtree/internal/server"
	"spatialtree/internal/wire"
)

// DefaultDownFor is how long a peer stays quarantined after a failed
// dial or call before routing optimistically retries it.
const DefaultDownFor = 500 * time.Millisecond

// Options configures a Node beyond what server.Cluster carries.
type Options struct {
	// ReplicaDir, when non-empty, roots a persist.Store for the replicas
	// this node follows for other owners — separate from the server's
	// own store, so boot recovery never confuses a followed copy with an
	// owned shard. Empty keeps replicas in memory only (they survive
	// owner failover, not a restart of this node).
	ReplicaDir string
	// DownFor is the liveness quarantine after a failed dial or call
	// (0 means DefaultDownFor).
	DownFor time.Duration
	// Dial configures the peer connections (zero takes the package's
	// defaults: bounded dial/read/write, no redirect-following — hops
	// are the ring's business, not the transport's).
	Dial wire.DialOptions
}

// Node is one member of the cluster: it routes dyn-shard requests by
// consistent hash over the peer list, replicates the shards it owns to
// its ring successors, and follows replicas for the owners it succeeds.
// Install it with server.SetCluster (New does so); all methods are safe
// for concurrent use.
type Node struct {
	srv   *server.Server
	cfg   server.Cluster
	ring  *Ring
	store *persist.Store // replica store; nil = in-memory replicas
	opts  Options

	peers map[string]*peer // fixed at New; the *peer values self-lock

	stop     chan struct{} // closed by Close; unblocks workers and waiters
	stopOnce sync.Once
	wg       sync.WaitGroup

	mu        sync.Mutex //spatialvet:lockclass routing
	reps      map[string]*replica
	owned     map[string]*ownedShard
	pending   map[string]*handback         // shards mid-rejoin-handback
	conflicts map[string]map[string]string // shard → follower → refusal (terminal ship suspensions)
	seq       uint64
}

// peer tracks one remote member: its client connection and its
// liveness quarantine. The zero downUntil means "assumed live".
type peer struct {
	addr string

	mu        sync.Mutex //spatialvet:lockclass routing
	c         *wire.Client
	downUntil time.Time
	// probeStart is when the current half-open probe was granted: after
	// downUntil expires, exactly one alive() caller per DownFor window
	// reports the peer live (and so dials it); everyone else keeps
	// routing around until the probe resolves. Zero means no probe out.
	probeStart time.Time
	// gen counts liveness transitions (markDown). A dial that started
	// before a markDown must not register its connection and erase the
	// fresher quarantine.
	gen uint64
	// closed refuses further client registrations after Close, so a
	// dial racing shutdown cannot strand an open connection in c.
	closed bool
}

// ownedShard serializes one owned shard's mutate→ship→ack pipeline.
type ownedShard struct {
	key uint64
	mu  sync.Mutex //spatialvet:lockclass cluster
}

// New builds the cluster tier for srv's Cluster configuration, recovers
// any replicas found under opts.ReplicaDir, and installs the node as
// srv's cluster hooks. Call after server recovery (so owned shards are
// back before routing starts) and before serving traffic.
func New(srv *server.Server, opts Options) (*Node, error) {
	cfg := srv.ClusterConfig()
	if !cfg.Enabled() {
		return nil, fmt.Errorf("cluster: no peers configured")
	}
	self := false
	for _, p := range cfg.Peers {
		if p == cfg.Self {
			self = true
			break
		}
	}
	if cfg.Self == "" || !self {
		return nil, fmt.Errorf("cluster: self address %q must appear in the peer list", cfg.Self)
	}
	if opts.DownFor <= 0 {
		opts.DownFor = DefaultDownFor
	}
	n := &Node{
		srv:       srv,
		cfg:       cfg,
		ring:      NewRing(cfg.Peers, cfg.VirtualNodes),
		opts:      opts,
		peers:     make(map[string]*peer),
		stop:      make(chan struct{}),
		reps:      make(map[string]*replica),
		owned:     make(map[string]*ownedShard),
		pending:   make(map[string]*handback),
		conflicts: make(map[string]map[string]string),
	}
	for _, addr := range n.ring.Nodes() {
		if addr != cfg.Self {
			n.peers[addr] = &peer{addr: addr}
		}
	}
	if opts.ReplicaDir != "" {
		st, err := persist.Open(persist.Options{Dir: opts.ReplicaDir})
		if err != nil {
			return nil, fmt.Errorf("cluster: replica store: %w", err)
		}
		n.store = st
		if err := n.recoverReplicas(); err != nil {
			_ = st.Close()
			return nil, err
		}
	}
	// Seed the shard-id sequence past everything already on disk, so a
	// restarted (or failed-over) owner never re-issues a taken id.
	for _, id := range srv.DynShardIDs() {
		n.bumpSeq(id)
	}
	// Recovered shards this node owns by ring enter handback instead of
	// serving: a successor may have moved their history on while this
	// node was down (see handback.go).
	n.detectRejoins()
	srv.SetCluster(n)
	if len(n.pending) > 0 {
		n.wg.Add(1)
		go n.runHandbacks()
	}
	return n, nil
}

// Close tears down peer connections and the replica store. The node
// stays installed in the server (hooks have no un-install); Close is
// for process shutdown. Clients close before the workers are awaited,
// so a handback round blocked in a call fails over to the stop signal
// instead of running out its read timeout.
func (n *Node) Close() error {
	for _, p := range n.peers {
		p.mu.Lock()
		c := p.c
		p.c = nil
		p.closed = true
		p.mu.Unlock()
		if c != nil {
			_ = c.Close()
		}
	}
	n.stopOnce.Do(func() { close(n.stop) })
	n.wg.Wait()
	if n.store != nil {
		return n.store.Close()
	}
	return nil
}

// Self returns this node's advertise address.
func (n *Node) Self() string { return n.cfg.Self }

// alive reports the routing view of addr: self is always live, a
// remote peer is live when connected or never quarantined. An expired
// quarantine does not flip the peer live for everyone at once — that
// would stampede every routing loop into dialing a possibly-still-dead
// peer in the same instant. Instead the first caller per DownFor window
// takes a half-open probe token (its dial revalidates the peer: success
// clears the quarantine, failure re-quarantines) and the rest keep
// routing around until the probe resolves.
func (n *Node) alive(addr string) bool {
	if addr == n.cfg.Self {
		return true
	}
	p := n.peers[addr]
	if p == nil {
		return false
	}
	now := time.Now()
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.c != nil {
		return true
	}
	if p.downUntil.IsZero() {
		return true
	}
	if now.Before(p.downUntil) {
		return false
	}
	if !p.probeStart.IsZero() && now.Sub(p.probeStart) < n.opts.DownFor {
		return false // another caller holds the half-open probe
	}
	p.probeStart = now
	return true
}

// aliveObserved is alive without the probe-token side effect — the
// status view, which reports liveness but must not consume half-open
// probe slots routing would otherwise use.
func (n *Node) aliveObserved(addr string) bool {
	if addr == n.cfg.Self {
		return true
	}
	p := n.peers[addr]
	if p == nil {
		return false
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.c != nil {
		return true
	}
	return p.downUntil.IsZero() || !time.Now().Before(p.downUntil)
}

// client returns a connected client for addr, dialing if needed. A
// failed dial quarantines the peer and reports it unavailable. The
// registration re-checks the peer's state after the (unlocked) dial:
// a markDown or Close that landed while the dial was in flight is
// fresher than the new connection, which is closed instead of
// registered — otherwise a slow dial could erase a newer quarantine,
// or strand an open client in a peer the node already tore down.
func (n *Node) client(addr string) (*wire.Client, error) {
	p := n.peers[addr]
	if p == nil {
		return nil, server.Errf(server.StatusInternal, "cluster: %s is not a peer", addr)
	}
	p.mu.Lock()
	c := p.c
	down := !p.downUntil.IsZero() && time.Now().Before(p.downUntil)
	gen := p.gen
	p.mu.Unlock()
	if c != nil {
		return c, nil
	}
	if down {
		return nil, server.Errf(server.StatusUnavailable, "cluster: peer %s is down", addr)
	}
	cc, err := wire.Dial(addr, n.dialOpts())
	if err != nil {
		n.markDown(addr)
		return nil, server.Err(server.StatusUnavailable, fmt.Errorf("cluster: dial %s: %w", addr, err))
	}
	p.mu.Lock()
	switch {
	case p.closed:
		p.mu.Unlock()
		_ = cc.Close()
		return nil, server.Errf(server.StatusUnavailable, "cluster: node is shut down")
	case p.c != nil:
		prior := p.c
		p.mu.Unlock()
		_ = cc.Close() // lost a dial race; keep the registered client
		return prior, nil
	case p.gen != gen:
		p.mu.Unlock()
		_ = cc.Close() // a markDown outran this dial; honor its quarantine
		return nil, server.Errf(server.StatusUnavailable, "cluster: peer %s is down", addr)
	}
	p.c = cc
	p.downUntil, p.probeStart = time.Time{}, time.Time{}
	p.mu.Unlock()
	return cc, nil
}

// markDown quarantines addr for DownFor and drops its client, failing
// that client's in-flight calls. A liveness transition also voids any
// terminal conflict classifications for the peer — a restart is exactly
// what resolves conflicting ownership views, so the next successful
// ship re-evaluates from scratch.
func (n *Node) markDown(addr string) {
	p := n.peers[addr]
	if p == nil {
		return
	}
	p.mu.Lock()
	c := p.c
	p.c = nil
	p.downUntil = time.Now().Add(n.opts.DownFor)
	p.probeStart = time.Time{}
	p.gen++
	p.mu.Unlock()
	if c != nil {
		_ = c.Close()
	}
	n.clearPeerConflicts(addr)
}

// markLive clears addr's quarantine on direct evidence the peer is up —
// an inbound handback claim from it — which is fresher than whatever
// failed dial quarantined it.
func (n *Node) markLive(addr string) {
	p := n.peers[addr]
	if p == nil {
		return
	}
	p.mu.Lock()
	p.downUntil, p.probeStart = time.Time{}, time.Time{}
	p.mu.Unlock()
}

// markConflict records a terminal replication suspension: follower addr
// refuses applies for shard id and re-shipping cannot fix it (it serves
// the shard itself — conflicting ownership views). The owner's ship
// loop skips the pair until a handback or liveness transition clears
// it, and /v1/cluster/status surfaces it.
func (n *Node) markConflict(id, addr, msg string) {
	if msg == "" {
		msg = "refused"
	}
	n.mu.Lock()
	m := n.conflicts[id]
	if m == nil {
		m = make(map[string]string)
		n.conflicts[id] = m
	}
	m[addr] = msg
	n.mu.Unlock()
}

// conflicted reports whether shipping id to addr is suspended.
func (n *Node) conflicted(id, addr string) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.conflicts[id][addr] != ""
}

// clearPeerConflicts voids every suspension involving addr.
func (n *Node) clearPeerConflicts(addr string) {
	n.mu.Lock()
	for id, m := range n.conflicts {
		delete(m, addr)
		if len(m) == 0 {
			delete(n.conflicts, id)
		}
	}
	n.mu.Unlock()
}

func (n *Node) dialOpts() wire.DialOptions {
	o := n.opts.Dial
	if o.DialTimeout <= 0 {
		o.DialTimeout = 2 * time.Second
	}
	if o.ReadTimeout <= 0 {
		o.ReadTimeout = 30 * time.Second
	}
	if o.WriteTimeout <= 0 {
		o.WriteTimeout = 10 * time.Second
	}
	o.FollowRedirects = 0 // routing hops are the ring's, not the transport's
	return o
}

// fromWireError converts a peer's protocol-level error into the local
// status vocabulary, so a proxied error re-renders at this edge exactly
// as the owner classified it. Returns nil for transport errors — those
// are liveness events, handled by the caller's retry loop.
func fromWireError(err error) error {
	var we *wire.Error
	if !errors.As(err, &we) {
		return nil
	}
	if we.Status == wire.StatusRedirect {
		return server.RedirectTo(we.Msg)
	}
	return server.Err(server.StatusFromWire(we.Status), errors.New(we.Msg))
}

// Shard ids. Cluster-created dyn shards embed their ring key so any
// node can route them without a directory: "c<16-hex key>-<seq>". Ids
// without the prefix (the single-node "d<n>" ids) are node-local and
// never routed.

// shardKey extracts the ring key from a cluster shard id.
func shardKey(id string) (uint64, bool) {
	rest, ok := strings.CutPrefix(id, "c")
	if !ok {
		return 0, false
	}
	hexKey, seq, ok := strings.Cut(rest, "-")
	if !ok || len(hexKey) != 16 || seq == "" {
		return 0, false
	}
	key, err := strconv.ParseUint(hexKey, 16, 64)
	if err != nil {
		return 0, false
	}
	if _, err := strconv.ParseUint(seq, 10, 64); err != nil {
		return 0, false
	}
	return key, true
}

// shardSeq extracts the sequence component of a cluster shard id.
func shardSeq(id string) (uint64, bool) {
	if _, ok := shardKey(id); !ok {
		return 0, false
	}
	seq, err := strconv.ParseUint(id[strings.LastIndexByte(id, '-')+1:], 10, 64)
	if err != nil {
		return 0, false
	}
	return seq, true
}

// nextShardID issues a fresh cluster shard id for key.
func (n *Node) nextShardID(key uint64) string {
	n.mu.Lock()
	n.seq++
	s := n.seq
	n.mu.Unlock()
	return fmt.Sprintf("c%016x-%d", key, s)
}

// bumpSeq advances the id sequence past an observed shard id, keeping
// ids unique across restarts and failovers.
func (n *Node) bumpSeq(id string) {
	seq, ok := shardSeq(id)
	if !ok {
		return
	}
	n.mu.Lock()
	if seq > n.seq {
		n.seq = seq
	}
	n.mu.Unlock()
}

// ownedShardState returns (creating if needed) the replication pipeline
// state for an owned shard.
func (n *Node) ownedShardState(id string, key uint64) *ownedShard {
	n.mu.Lock()
	defer n.mu.Unlock()
	sh := n.owned[id]
	if sh == nil {
		sh = &ownedShard{key: key}
		n.owned[id] = sh
	}
	return sh
}

// Status implements server.ClusterHooks.
func (n *Node) Status() server.ClusterStatus {
	st := server.ClusterStatus{
		Self:         n.cfg.Self,
		Replicas:     n.cfg.Replicas,
		VirtualNodes: n.cfg.VirtualNodes,
		Redirect:     n.cfg.Redirect,
	}
	for _, addr := range n.ring.Nodes() {
		st.Peers = append(st.Peers, server.ClusterPeer{
			Addr:  addr,
			Alive: n.aliveObserved(addr), // observation only: status must not consume probe tokens
			Self:  addr == n.cfg.Self,
		})
	}
	st.Owned = n.srv.DynShardIDs()
	sort.Strings(st.Owned)
	// Copy the replica table out, then read cursors lock-free of n.mu:
	// cursor() takes per-replica and engine locks, which never nest
	// under a routing-class lock.
	n.mu.Lock()
	reps := make(map[string]*replica, len(n.reps))
	for id, rep := range n.reps {
		reps[id] = rep
	}
	for id := range n.pending {
		st.Handbacks = append(st.Handbacks, id)
	}
	for id, m := range n.conflicts {
		for addr, msg := range m {
			st.Conflicts = append(st.Conflicts, server.ClusterConflict{Shard: id, Peer: addr, Msg: msg})
		}
	}
	n.mu.Unlock()
	sort.Strings(st.Handbacks)
	sort.Slice(st.Conflicts, func(i, j int) bool {
		a, b := st.Conflicts[i], st.Conflicts[j]
		if a.Shard != b.Shard {
			return a.Shard < b.Shard
		}
		return a.Peer < b.Peer
	})
	if len(reps) > 0 {
		st.ReplicaCursors = make(map[string]uint64, len(reps))
		for id, rep := range reps {
			st.ReplicaCursors[id] = rep.cursor()
		}
	}
	return st
}
