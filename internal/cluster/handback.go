package cluster

// Rejoin reconciliation: the automated ownership handback for a
// restarted owner. A node that boots and finds durable state for shards
// the ring says it owns must assume the cluster moved on while it was
// away — a successor may have promoted its replica and absorbed acked
// mutations the rejoiner never saw. Serving the local copy immediately
// would fork history, so instead each such shard enters handback:
//
//  1. The rejoiner demotes its recovered copy from serving to a
//     followed replica and registers the shard as pending. Requests
//     proxy to the serving successor (or wait briefly) — the stale
//     copy answers nothing.
//  2. A worker probes the ring successors for the shard and claims it
//     from whichever node serves it (falling back to the furthest-ahead
//     replica): the claim carries the rejoiner's cursor and recent WAL
//     tail.
//  3. The successor, under the shard's pipeline lock (so no mutation is
//     in flight — the Quiesce barrier), stamps the fence epoch, diffs
//     the offered history against its own log, releases the shard from
//     serving, and answers with whatever brings the rejoiner to the
//     fence: a record tail, a full snapshot, or nothing. From that
//     instant the successor refuses to apply mutations for the shard
//     (ownerMutate re-checks the serving table under the lock); its
//     demoted copy lives on as the shard's ring-follower replica, so
//     the granted state stays replicated throughout.
//  4. The rejoiner applies the grant, verifies its cursor reached the
//     fence, and only then starts serving. At no instant do two nodes
//     accept writes for the shard, and no acked mutation is lost in
//     either direction.
//
// While the rejoiner waits, the successor keeps serving as a surrogate
// (route.go serves any locally-served shard regardless of the ring
// walk) and its replication ladder ships every new mutation to the
// rejoiner's demoted replica — so by claim time the diff is usually
// empty and the handback is a cursor handshake.

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"spatialtree/internal/engine"
	"spatialtree/internal/persist"
	"spatialtree/internal/server"
	"spatialtree/internal/wire"
)

// handbackWait bounds how long a request for a shard mid-handback waits
// for the handback to complete before reporting unavailable.
const handbackWait = 3 * time.Second

// handbackRetry is the worker's initial backoff between handback
// rounds; it doubles up to handbackRetryMax while no round progresses.
const (
	handbackRetry    = 50 * time.Millisecond
	handbackRetryMax = 2 * time.Second
)

// handbackClaimWindow caps how many WAL records a claim ships for the
// successor's shared-prefix check; older overlap is trusted to the
// apply-time divergence detection instead of re-verified.
const handbackClaimWindow = 256

// handback tracks one shard this node owns by ring but is still
// reconciling after a restart.
type handback struct {
	key uint64

	mu   sync.Mutex //spatialvet:lockclass routing
	succ string     // serving successor to proxy to pre-claim ("" = none known)

	done chan struct{} // closed when the shard enters the serving table
}

func (hb *handback) successor() string {
	hb.mu.Lock()
	defer hb.mu.Unlock()
	return hb.succ
}

func (hb *handback) setSuccessor(addr string) {
	hb.mu.Lock()
	hb.succ = addr
	hb.mu.Unlock()
}

// handbackFor returns the pending handback for id, or nil.
func (n *Node) handbackFor(id string) *handback {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.pending[id]
}

// detectRejoins finds served shards whose ring owner is this node —
// after a restart that is exactly the set a successor may have taken
// over — and moves each from serving into a pending handback. Runs at
// New, single-threaded, before the node is installed as the server's
// cluster hooks.
func (n *Node) detectRejoins() {
	for _, id := range n.srv.DynShardIDs() {
		key, ok := shardKey(id)
		if !ok {
			continue // node-local id: never replicated, nothing to reconcile
		}
		if owner, ok := n.ring.Owner(key, nil); !ok || owner != n.cfg.Self {
			continue
		}
		de, log, ok := n.srv.ReleaseDynShard(id)
		if !ok {
			continue
		}
		rep := n.replicaEntry(id)
		rep.mu.Lock()
		if rep.de != nil && rep.de.Epoch() >= de.Epoch() {
			// The replica store also holds this shard — an earlier run of
			// this node followed it — and is at least as far along: keep
			// that copy and drop the stale server-store one.
			_ = n.srv.DropDynState(id)
		} else {
			if rep.de != nil && n.store != nil {
				_ = n.store.DropShard(id) // the replica-store copy is the staler one
			}
			// The demoted engine keeps journaling into its server-store
			// log; promote re-adopts both once the handback completes.
			rep.de, rep.log = de, log
		}
		rep.mu.Unlock()
		n.pending[id] = &handback{key: key, done: make(chan struct{})}
	}
}

// runHandbacks drives every pending handback to completion, retrying
// with backoff until each shard is adopted into the serving table. One
// goroutine covers all shards: handback is boot-time reconciliation,
// not a hot path, and serializing keeps the claim ordering trivial.
func (n *Node) runHandbacks() {
	defer n.wg.Done()
	backoff := handbackRetry
	for {
		n.mu.Lock()
		ids := make([]string, 0, len(n.pending))
		for id := range n.pending {
			ids = append(ids, id)
		}
		n.mu.Unlock()
		if len(ids) == 0 {
			return
		}
		sort.Strings(ids)
		progress := false
		remaining := 0
		for _, id := range ids {
			done, err := n.handbackShard(id)
			if done {
				progress = true
				continue
			}
			remaining++
			if err == nil {
				progress = true
			}
		}
		if remaining == 0 {
			return
		}
		if progress {
			backoff = handbackRetry
		} else if backoff < handbackRetryMax {
			backoff *= 2
		}
		select {
		case <-n.stop:
			return
		case <-time.After(backoff):
		}
	}
}

// handbackShard runs one offer round for id: probe the successors,
// claim the shard from the authoritative one, apply the granted diff,
// and promote once the cursor reaches the fence. done reports the shard
// is serving locally; err == nil without done means a clean retriable
// round (the successor asked us to back off).
func (n *Node) handbackShard(id string) (done bool, err error) {
	hb := n.handbackFor(id)
	if hb == nil {
		return true, nil
	}
	// Probe every other live member. The claim must go to the node that
	// actually serves the shard — or, when none does, to the
	// furthest-ahead replica: claiming from a lagging follower while
	// another node serves would fork history exactly the way this
	// protocol exists to prevent.
	var (
		best      string
		bestFence uint64
		serving   bool
		reached   bool
	)
	for _, cand := range n.ring.Successors(hb.key, len(n.ring.nodes), n.alive) {
		if cand == n.cfg.Self {
			continue
		}
		c, err := n.client(cand)
		if err != nil {
			continue
		}
		g, err := c.Handback(&wire.HandbackOffer{
			ShardID: id,
			Phase:   wire.HandbackProbe,
			Cursor:  n.handbackCursor(id),
		})
		if err != nil {
			if fromWireError(err) == nil {
				n.markDown(cand)
			}
			continue
		}
		reached = true
		switch g.Mode {
		case wire.GrantServing:
			if !serving || g.Fence > bestFence {
				best, bestFence, serving = cand, g.Fence, true
			}
		case wire.GrantOwn:
			if !serving && (best == "" || g.Fence > bestFence) {
				best, bestFence = cand, g.Fence
			}
		}
	}
	if len(n.peers) == 0 {
		// Single-member ring: no successor can have moved on.
		return n.adoptHandback(id, hb)
	}
	if !reached {
		return false, fmt.Errorf("cluster: no reachable successor for %s", id)
	}
	if best == "" {
		return false, nil // every successor asked for a retry
	}
	if serving {
		// Route requests to the serving successor while the claim is
		// prepared — but clear it before the claim goes out: from the
		// successor's fence onward a proxied request would bounce back
		// here, and parking on hb.done is the loop-free way to wait.
		hb.setSuccessor(best)
	}
	cursor, recs := n.handbackClaimState(id)
	hb.setSuccessor("")
	c, err := n.client(best)
	if err != nil {
		return false, err
	}
	g, err := c.Handback(&wire.HandbackOffer{
		ShardID: id,
		Phase:   wire.HandbackClaim,
		Cursor:  cursor,
		Recs:    recs,
	})
	if err != nil {
		if fromWireError(err) == nil {
			n.markDown(best)
		}
		return false, err
	}
	switch g.Mode {
	case wire.GrantRetry:
		if serving {
			hb.setSuccessor(best) // not fenced yet; keep proxying
		}
		return false, nil
	case wire.GrantOwn, wire.GrantServing:
		// Nothing newer anywhere (GrantServing cannot answer a claim;
		// treat it as a retry misfire only if the modes ever cross).
		if g.Mode == wire.GrantServing {
			return false, fmt.Errorf("cluster: claim of %s answered with a probe grant", id)
		}
	case wire.GrantTail:
		if len(g.Recs) > 0 {
			if cur, code, msg := n.ApplyRecords(id, g.Recs); code != wire.AckOK {
				return false, fmt.Errorf("cluster: handback tail for %s stopped at cursor %d: %s", id, cur, msg)
			}
		}
	case wire.GrantSnapshot:
		if _, code, msg := n.ApplySnapshot(id, g.Blob); code != wire.AckOK {
			return false, fmt.Errorf("cluster: handback snapshot for %s refused: %s", id, msg)
		}
	}
	if cur := n.handbackCursor(id); cur < g.Fence {
		// The grant did not reach the fence (the successor compacted the
		// tail mid-flight, or our replica was discarded as divergent).
		// Re-offer: the next claim's cursor reflects the discard and the
		// successor answers from its demoted replica, snapshot included.
		return false, fmt.Errorf("cluster: handback of %s stopped at cursor %d below fence %d", id, cur, g.Fence)
	}
	return n.adoptHandback(id, hb)
}

// adoptHandback promotes the reconciled replica into serving and clears
// the pending state, waking every request parked on the handback.
func (n *Node) adoptHandback(id string, hb *handback) (bool, error) {
	if err := n.promote(id); err != nil {
		return false, err
	}
	n.mu.Lock()
	delete(n.pending, id)
	delete(n.conflicts, id) // ours again; stale pairings are moot
	n.mu.Unlock()
	close(hb.done)
	return true, nil
}

// handbackCursor is this node's current apply cursor for id: its
// replica's epoch (0 when the replica was discarded or never existed).
func (n *Node) handbackCursor(id string) uint64 {
	n.mu.Lock()
	rep := n.reps[id]
	n.mu.Unlock()
	if rep == nil {
		return 0
	}
	return rep.cursor()
}

// handbackClaimState captures a claim's payload: the cursor plus the
// replica's recent WAL tail, so the successor can verify the shared
// history below the fence record by record instead of trusting the
// cursor alone. Best effort — a claim without records still reconciles,
// through apply-time divergence detection instead.
func (n *Node) handbackClaimState(id string) (uint64, []wire.RepRecord) {
	n.mu.Lock()
	rep := n.reps[id]
	n.mu.Unlock()
	if rep == nil {
		return 0, nil
	}
	rep.mu.Lock()
	defer rep.mu.Unlock()
	if rep.de == nil {
		return 0, nil
	}
	cursor := rep.de.Epoch()
	if rep.log == nil {
		return cursor, nil
	}
	start := uint64(0)
	if cursor > handbackClaimWindow {
		start = cursor - handbackClaimWindow
	}
	if snapEpoch := rep.log.LastEpoch() - rep.log.RecordsSinceSnapshot(); start < snapEpoch {
		start = snapEpoch // the WAL reaches back no further
	}
	recs, err := rep.log.RecordsAfter(start)
	if err != nil {
		return cursor, nil
	}
	return cursor, wireRecords(recs)
}

// Handback implements server.ClusterHooks: the successor half of rejoin
// reconciliation. Probes answer with this node's standing for the shard
// (serving, or a follower at some cursor); claims hand ownership back.
// The grant's ID and ShardID are the transport's to fill.
func (n *Node) Handback(o *wire.HandbackOffer) *wire.HandbackGrant {
	key, ok := shardKey(o.ShardID)
	if !ok {
		return &wire.HandbackGrant{Mode: wire.GrantRetry, Msg: "not a cluster shard id"}
	}
	switch o.Phase {
	case wire.HandbackProbe:
		if de, served := n.srv.DynShard(o.ShardID); served {
			return &wire.HandbackGrant{Mode: wire.GrantServing, Fence: de.Epoch()}
		}
		return &wire.HandbackGrant{Mode: wire.GrantOwn, Fence: n.handbackCursor(o.ShardID)}
	case wire.HandbackClaim:
		return n.grantClaim(o.ShardID, key, o)
	}
	return &wire.HandbackGrant{Mode: wire.GrantRetry, Msg: fmt.Sprintf("unknown handback phase %d", o.Phase)}
}

// grantClaim hands a shard back to its claiming ring owner. For a shard
// this node serves, the fence and release happen under the shard's
// pipeline lock — the same lock every mutate→ship→ack round holds — so
// the fence epoch is a true quiesce barrier: no mutation is in flight
// at it, none can start past it (ownerMutate re-checks the serving
// table under the lock and refuses once the shard is released).
func (n *Node) grantClaim(id string, key uint64, o *wire.HandbackOffer) *wire.HandbackGrant {
	sh := n.ownedShardState(id, key)
	sh.mu.Lock()
	de, served := n.srv.DynShard(id)
	if !served {
		sh.mu.Unlock()
		return n.grantFromReplica(id, o)
	}
	g, ok := n.buildServedGrant(id, de, o)
	if !ok {
		sh.mu.Unlock()
		return g
	}
	rel, log, _ := n.srv.ReleaseDynShard(id)
	sh.mu.Unlock()
	// Demote outside the pipeline lock (cluster-class locks are
	// acquired holding nothing, so rep.mu never nests under sh.mu).
	// The released engine becomes the replica this node keeps as the
	// shard's ring follower: the granted state stays replicated even if
	// the rejoiner dies right after this reply, and the rejoiner's own
	// shipping finds a follower already at the fence. The window where
	// the shard is in neither table is safe — only the single claiming
	// owner converses with this node about it.
	if rel != nil {
		rep := n.replicaEntry(id)
		rep.mu.Lock()
		if rep.de == nil {
			rep.de, rep.log = rel, log
		}
		rep.mu.Unlock()
	}
	n.mu.Lock()
	delete(n.conflicts, id) // this node no longer ships the shard
	n.mu.Unlock()
	// The claim is direct evidence the ring owner is up: clear any stale
	// quarantine so the post-release ring walk routes to it instead of
	// re-promoting the copy just demoted.
	if owner, ok := n.ring.Owner(key, nil); ok {
		n.markLive(owner)
	}
	return g
}

// buildServedGrant computes a served shard's grant under the pipeline
// lock: the fence is the quiesced epoch, and the payload is chosen by
// diffing the offer against it. ok == false means the grant is a retry
// (snapshot capture failed) and nothing was released.
func (n *Node) buildServedGrant(id string, de *engine.DynEngine, o *wire.HandbackOffer) (*wire.HandbackGrant, bool) {
	fence := de.Epoch()
	snapshot := func() (*wire.HandbackGrant, bool) {
		blob, epoch, err := n.srv.SnapshotDyn(id)
		if err != nil {
			return &wire.HandbackGrant{Mode: wire.GrantRetry, Msg: "snapshot: " + err.Error()}, false
		}
		return &wire.HandbackGrant{Mode: wire.GrantSnapshot, Fence: epoch, Blob: blob}, true
	}
	if o.Cursor > fence {
		// The rejoiner ran ahead of the last ack before it crashed; that
		// tail was never acknowledged and this node's acked history has
		// moved on underneath it. Only a rebuild discards it safely.
		return snapshot()
	}
	if n.handbackDiverged(id, fence, o) {
		return snapshot()
	}
	if o.Cursor == fence {
		return &wire.HandbackGrant{Mode: wire.GrantTail, Fence: fence}, true
	}
	log, ok := n.srv.DynShardLog(id)
	if !ok {
		return snapshot()
	}
	recs, err := log.RecordsAfter(o.Cursor)
	if err != nil {
		return snapshot() // tail compacted away: rebuild
	}
	wrecs := wireRecords(recs)
	if len(wrecs) == 0 || wrecs[len(wrecs)-1].Epoch != fence {
		return snapshot()
	}
	return &wire.HandbackGrant{Mode: wire.GrantTail, Fence: fence, Recs: wrecs}, true
}

// grantFromReplica answers a claim for a shard this node does not
// serve. A replica ahead of the offer holds acked history the rejoiner
// must not lose — typically because this node already released the
// shard on an earlier claim whose grant the rejoiner never finished
// applying — so the diff comes from the replica, fenced at its cursor.
// At or below the offered cursor, the rejoiner's own copy wins.
func (n *Node) grantFromReplica(id string, o *wire.HandbackOffer) *wire.HandbackGrant {
	n.mu.Lock()
	rep := n.reps[id]
	n.mu.Unlock()
	if rep == nil {
		return &wire.HandbackGrant{Mode: wire.GrantOwn, Fence: o.Cursor}
	}
	rep.mu.Lock()
	defer rep.mu.Unlock()
	if rep.de == nil {
		return &wire.HandbackGrant{Mode: wire.GrantOwn, Fence: o.Cursor}
	}
	fence := rep.de.Epoch()
	if fence <= o.Cursor {
		return &wire.HandbackGrant{Mode: wire.GrantOwn, Fence: o.Cursor}
	}
	if rep.log != nil {
		if recs, err := rep.log.RecordsAfter(o.Cursor); err == nil {
			if wrecs := wireRecords(recs); len(wrecs) > 0 && wrecs[len(wrecs)-1].Epoch == fence {
				return &wire.HandbackGrant{Mode: wire.GrantTail, Fence: fence, Recs: wrecs}
			}
		}
	}
	blob := persist.EncodeDyn(server.DynSnapshotFromState(rep.de.State()))
	return &wire.HandbackGrant{Mode: wire.GrantSnapshot, Fence: fence, Blob: blob}
}

// handbackDiverged compares the offered records against the served
// shard's log over their epoch overlap (at or below the fence). A
// mismatch — or an overlap the log can no longer produce — means the
// histories forked below the fence and only a snapshot rebuild is safe.
func (n *Node) handbackDiverged(id string, fence uint64, o *wire.HandbackOffer) bool {
	if len(o.Recs) == 0 {
		return false // nothing to compare; apply-time verification still guards
	}
	first := o.Recs[0].Epoch
	if first == 0 || first > fence {
		return first == 0
	}
	log, ok := n.srv.DynShardLog(id)
	if !ok {
		return false
	}
	ours, err := log.RecordsAfter(first - 1)
	if err != nil {
		return true // overlap compacted away: the shared prefix is unverifiable
	}
	byEpoch := make(map[uint64]persist.Record, len(ours))
	for _, r := range ours {
		byEpoch[r.Epoch] = r
	}
	for _, r := range o.Recs {
		if r.Epoch > fence {
			break
		}
		our, ok := byEpoch[r.Epoch]
		if !ok {
			return true
		}
		typ := uint8(wire.OpInsert)
		if our.Type == persist.RecDelete {
			typ = wire.OpDelete
		}
		if r.Type != typ || int64(our.Arg) != r.Arg || int64(our.Result) != r.Result {
			return true
		}
	}
	return false
}

// wireRecords converts persisted WAL records (already fence-filtered
// and contiguity-checked by RecordsAfter) to their wire form.
func wireRecords(recs []persist.Record) []wire.RepRecord {
	out := make([]wire.RepRecord, 0, len(recs))
	for _, r := range recs {
		if r.Type == persist.RecFence {
			continue
		}
		op := uint8(wire.OpInsert)
		if r.Type == persist.RecDelete {
			op = wire.OpDelete
		}
		out = append(out, wire.RepRecord{Type: op, Epoch: r.Epoch, Arg: int64(r.Arg), Result: int64(r.Result)})
	}
	return out
}

// handbackMutate serves a mutation for a shard still being reconciled:
// proxy to the serving successor while one is known, otherwise park
// until the handback completes — the stale local copy never answers.
func (n *Node) handbackMutate(hb *handback, id string, key uint64, op uint8, arg int) (server.MutateResult, error) {
	if addr := hb.successor(); addr != "" {
		if c, err := n.client(addr); err == nil {
			m, err := c.Mutate(&wire.Mutate{ShardID: id, Op: op, Arg: arg})
			if err == nil {
				return server.MutateResult{Vertex: m.Vertex, Moved: m.Moved, Epoch: m.Epoch, N: m.N}, nil
			}
			if serr := fromWireError(err); serr != nil {
				if server.Classify(serr) != server.StatusNotFound {
					return server.MutateResult{}, serr
				}
				// NotFound: the successor released the shard mid-claim.
				// Fall through and wait for our own adoption.
			} else {
				n.markDown(addr)
			}
		}
	}
	select {
	case <-hb.done:
		return n.ownerMutate(id, key, op, arg)
	case <-n.stop:
		return server.MutateResult{}, server.Errf(server.StatusUnavailable, "cluster: node shutting down")
	case <-time.After(handbackWait):
		return server.MutateResult{}, server.Errf(server.StatusUnavailable,
			"cluster: shard %s is reconciling ownership after a restart (handback in progress)", id)
	}
}

// handbackQuery is handbackMutate's read-side twin. handled == false
// hands the (now reconciled) query to the server's local path.
func (n *Node) handbackQuery(hb *handback, id string, req *server.QueryRequest) (*server.QueryResponse, bool, error) {
	if addr := hb.successor(); addr != "" {
		if c, err := n.client(addr); err == nil {
			q, qerr := server.WireQueryFromRequest(0, id, req)
			if qerr != nil {
				return nil, true, qerr
			}
			res, err := c.Do(q)
			if err == nil {
				return server.QueryResponseFromWire(res), true, nil
			}
			if serr := fromWireError(err); serr != nil {
				if server.Classify(serr) != server.StatusNotFound {
					return nil, true, serr
				}
			} else {
				n.markDown(addr)
			}
		}
	}
	select {
	case <-hb.done:
		return nil, false, nil
	case <-n.stop:
		return nil, true, server.Errf(server.StatusUnavailable, "cluster: node shutting down")
	case <-time.After(handbackWait):
		return nil, true, server.Errf(server.StatusUnavailable,
			"cluster: shard %s is reconciling ownership after a restart (handback in progress)", id)
	}
}
