package analysis

// WaitUnderLock flags blocking work done while holding any
// sync.Mutex/RWMutex: calls that resolve batch futures
// (Future.Wait / Flush / FlushAll / Quiesce on module types, directly
// or transitively) and network I/O (Read/Write on a net.Conn). Holding
// a lock across a batch barrier is the DynEngine mutation-barrier
// class: everything routed through that lock stalls behind kernel
// execution. The two sanctioned exceptions in the tree carry justified
// //spatialvet:ignore directives — the DynEngine mutation barrier
// (the drain IS the design) and the wire client's write serialization.
//
// Cluster-class locks (//spatialvet:lockclass cluster) are exempt by
// class, not by site: the replication pipeline holds a per-shard
// cluster lock across the mutate → ship → ack round trip because the
// ack gate IS the mutation contract. Lockorder compensates with the
// inverse rule — nothing may be held when a cluster lock is taken, so
// the blocking never propagates to another lock's waiters.

import "go/ast"

var WaitUnderLock = &Analyzer{
	Name: "waitunderlock",
	Doc: "calling a blocking engine API (Wait/Flush/Quiesce) or doing " +
		"net.Conn I/O while holding a mutex stalls every goroutine behind that lock",
	Run: runWaitUnderLock,
}

func runWaitUnderLock(pass *Pass) error {
	funcDecls(pass.Pkg, func(decl *ast.FuncDecl) {
		walkLockState(pass.Prog, pass.Pkg, decl, func(ev lockEvent) {
			if ev.acquired != nil {
				return
			}
			var held []heldLock
			for _, h := range ev.held {
				if h.class != clusterClass {
					held = append(held, h)
				}
			}
			if len(held) == 0 {
				return
			}
			why, blocking := pass.Prog.baseBlockingCall(pass.Pkg, ev.call)
			if !blocking {
				fn := calleeOf(pass.Pkg, ev.call)
				if s := pass.Prog.summaryOf(fn); s != nil && s.blocks != "" {
					why, blocking = objectString(fn)+" (blocks in "+s.blocks+")", true
				}
			}
			if !blocking {
				return
			}
			pass.Reportf(ev.call.Pos(), "call to blocking %s while holding %s",
				why, objectString(held[len(held)-1].obj))
		})
	})
	return nil
}
