package analysis

// Loading: package discovery through `go list -json` (the one part of
// the toolchain a vet-style tool may assume), parsing with comments
// (directives live there), and type-checking every module package in
// import order against a chain importer — module packages resolve to
// the packages just checked, standard-library imports resolve through
// go/importer's source importer, which works offline from GOROOT.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os/exec"
	"path/filepath"
	"sort"
)

// listedPackage is the subset of `go list -json` output the loader
// consumes.
type listedPackage struct {
	Dir        string
	ImportPath string
	Name       string
	Standard   bool
	GoFiles    []string
	Imports    []string

	// DirFiles, when set, lists resolved file paths directly and
	// bypasses Dir+GoFiles joining — the LoadDir fixture entry point.
	DirFiles []string `json:"-"`
}

// Load discovers the packages matching patterns (relative to dir, e.g.
// "./..."), parses and type-checks them, and returns the program view
// the analyzers run over. Module dependencies of the matched packages
// are loaded too — a partial pattern like ./internal/server/... still
// type-checks against the one true copy of the packages it imports —
// but findings are reported only for the packages the patterns named,
// go vet's semantics. Test files are not loaded — like go vet's
// default surface, spatialvet checks the shipped code.
func Load(dir string, patterns ...string) (*Program, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	requested, err := goList(dir, patterns, false)
	if err != nil {
		return nil, err
	}
	roots := make(map[string]bool, len(requested))
	for _, p := range requested {
		roots[p.ImportPath] = true
	}
	withDeps, err := goList(dir, patterns, true)
	if err != nil {
		return nil, err
	}
	var listed []listedPackage
	for _, p := range withDeps {
		if !p.Standard && len(p.GoFiles) > 0 {
			listed = append(listed, p)
		}
	}
	return load(listed, roots)
}

func goList(dir string, patterns []string, deps bool) ([]listedPackage, error) {
	args := []string{"list", "-json"}
	if deps {
		args = append(args, "-deps")
	}
	args = append(args, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var out, errb bytes.Buffer
	cmd.Stdout, cmd.Stderr = &out, &errb
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("analysis: go list %v: %v\n%s", patterns, err, errb.String())
	}
	var listed []listedPackage
	dec := json.NewDecoder(&out)
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("analysis: decoding go list output: %v", err)
		}
		listed = append(listed, p)
	}
	return listed, nil
}

// LoadDir loads one directory of Go files as a single package named by
// importPath — the analysistest fixture loader. Imports must resolve
// within the standard library.
func LoadDir(dir, importPath string) (*Program, error) {
	files, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil || len(files) == 0 {
		return nil, fmt.Errorf("analysis: no Go files in %s", dir)
	}
	sort.Strings(files)
	return load([]listedPackage{{Dir: dir, ImportPath: importPath, DirFiles: files}}, nil)
}

// load parses and type-checks the listed packages in dependency order.
// roots, when non-nil, restricts reporting to those import paths (the
// rest are loaded for type identity and summaries only).
func load(listed []listedPackage, roots map[string]bool) (*Program, error) {
	fset := token.NewFileSet()
	std := importer.ForCompiler(fset, "source", nil)
	prog := &Program{
		Fset:     fset,
		roots:    roots,
		byPath:   make(map[string]*Package),
		stdCache: make(map[string]*types.Package),
		netConn:  netConnSentinel,
	}
	prog.stdImports = func(path string) (*types.Package, error) { return std.Import(path) }

	byPath := make(map[string]listedPackage, len(listed))
	for _, p := range listed {
		byPath[p.ImportPath] = p
	}
	order := topoOrder(listed, byPath)

	checked := make(map[string]*types.Package)
	imp := chainImporter{module: checked, std: std, cache: prog.stdCache}
	for _, lp := range order {
		var files []*ast.File
		names := lp.DirFiles
		if names == nil {
			names = make([]string, len(lp.GoFiles))
			for i, f := range lp.GoFiles {
				names[i] = filepath.Join(lp.Dir, f)
			}
		}
		for _, name := range names {
			f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				return nil, fmt.Errorf("analysis: %v", err)
			}
			files = append(files, f)
		}
		info := &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
			Implicits:  make(map[ast.Node]types.Object),
		}
		var terrs []error
		conf := types.Config{
			Importer: imp,
			Error:    func(err error) { terrs = append(terrs, err) },
		}
		tpkg, _ := conf.Check(lp.ImportPath, fset, files, info)
		if len(terrs) > 0 {
			return nil, fmt.Errorf("analysis: type-checking %s: %v", lp.ImportPath, terrs[0])
		}
		checked[lp.ImportPath] = tpkg
		pkg := &Package{Path: lp.ImportPath, Files: files, Types: tpkg, Info: info}
		prog.Packages = append(prog.Packages, pkg)
		prog.byPath[lp.ImportPath] = pkg
	}

	prog.directives = collectDirectives(prog)
	prog.summaries = computeSummaries(prog)
	return prog, nil
}

// topoOrder sorts packages so every module import precedes its
// importer (imports outside the listed set — the standard library —
// are the chain importer's business).
func topoOrder(listed []listedPackage, byPath map[string]listedPackage) []listedPackage {
	var order []listedPackage
	state := make(map[string]int) // 0 unvisited, 1 visiting, 2 done
	var visit func(p listedPackage)
	visit = func(p listedPackage) {
		if state[p.ImportPath] != 0 {
			return
		}
		state[p.ImportPath] = 1
		for _, imp := range p.Imports {
			if dep, ok := byPath[imp]; ok {
				visit(dep)
			}
		}
		state[p.ImportPath] = 2
		order = append(order, p)
	}
	// Deterministic root order.
	sorted := append([]listedPackage(nil), listed...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].ImportPath < sorted[j].ImportPath })
	for _, p := range sorted {
		visit(p)
	}
	return order
}

// chainImporter resolves module packages from the in-progress check
// and everything else from the source importer, caching stdlib
// packages so analyzers can look types up later (net.Conn).
type chainImporter struct {
	module map[string]*types.Package
	std    types.Importer
	cache  map[string]*types.Package
}

func (c chainImporter) Import(path string) (*types.Package, error) {
	if p, ok := c.module[path]; ok {
		return p, nil
	}
	if p, ok := c.cache[path]; ok && p != nil {
		return p, nil
	}
	p, err := c.std.Import(path)
	if err != nil {
		return nil, err
	}
	c.cache[path] = p
	return p, nil
}
