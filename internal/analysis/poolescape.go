package analysis

// PoolEscape checks the sync.Pool buffer discipline the wire/persist
// hot paths depend on: a pooled value may be used locally and returned
// by a lender (wire.GetBuf, treefix getContrib, engine newRequest are
// all sanctioned lenders), but it must not
//
//   - be stored into a struct field (a long-lived owner outliving the
//     frame the value was borrowed for),
//   - be referenced after it was Put back (the next Get may hand the
//     same memory to a concurrent frame), or
//   - be captured by a goroutine closure (the goroutine's lifetime is
//     unknowable to the borrower).
//
// The walk is source-order within one function: a use positioned after
// the Put of the same variable is a use-after-put; a Put registered by
// a defer runs at return and sanctions nothing before it.

import (
	"go/ast"
	"go/token"
	"go/types"
)

var PoolEscape = &Analyzer{
	Name: "poolescape",
	Doc: "sync.Pool-sourced values must not be stored in struct fields, " +
		"used after Put, or captured by goroutine closures",
	Run: runPoolEscape,
}

func runPoolEscape(pass *Pass) error {
	funcDecls(pass.Pkg, func(decl *ast.FuncDecl) {
		w := &poolWalker{pass: pass,
			pooled: make(map[types.Object]bool),
			putAt:  make(map[types.Object]token.Pos)}
		ast.Inspect(decl.Body, w.visit)
		// Second pass: uses positioned after a (non-deferred) Put.
		if len(w.putAt) > 0 {
			ast.Inspect(decl.Body, func(n ast.Node) bool {
				id, ok := n.(*ast.Ident)
				if !ok {
					return true
				}
				obj := pass.Pkg.Info.Uses[id]
				if obj == nil {
					return true
				}
				if at, put := w.putAt[obj]; put && id.Pos() > at && !w.putArg[id] {
					pass.Reportf(id.Pos(), "pooled value %s used after Put", obj.Name())
				}
				return true
			})
		}
	})
	return nil
}

type poolWalker struct {
	pass   *Pass
	pooled map[types.Object]bool
	putAt  map[types.Object]token.Pos
	putArg map[*ast.Ident]bool // the idents inside Put calls themselves
	// deferred marks Put calls under defer: they release at return, so
	// they must not start a use-after-Put region at their lexical spot.
	deferred map[*ast.CallExpr]bool
}

func (w *poolWalker) visit(n ast.Node) bool {
	switch n := n.(type) {
	case *ast.DeferStmt:
		// defer pool.Put(x) runs at return; it cannot precede any use.
		if w.isPoolPut(n.Call) {
			w.markPutArgs(n.Call)
			if w.deferred == nil {
				w.deferred = make(map[*ast.CallExpr]bool)
			}
			w.deferred[n.Call] = true
			return true
		}
	case *ast.AssignStmt:
		for i, lhs := range n.Lhs {
			if i >= len(n.Rhs) && len(n.Rhs) == 1 {
				break
			}
			rhs := n.Rhs[min(i, len(n.Rhs)-1)]
			if !w.pooledExpr(rhs) {
				continue
			}
			switch l := ast.Unparen(lhs).(type) {
			case *ast.Ident:
				if obj := objOf(w.pass.Pkg, l); obj != nil {
					w.pooled[obj] = true
				}
			case *ast.SelectorExpr:
				pos := n.Pos()
				w.pass.Reportf(pos, "sync.Pool-sourced value stored in field %s",
					fieldName(w.pass.Pkg, l))
			}
		}
	case *ast.CallExpr:
		if w.isPoolPut(n) && !w.deferred[n] {
			w.markPutArgs(n)
			for _, arg := range n.Args {
				if obj := identObj(w.pass.Pkg, arg); obj != nil {
					if _, seen := w.putAt[obj]; !seen {
						w.putAt[obj] = n.End()
					}
				}
			}
		}
	case *ast.GoStmt:
		if lit, ok := n.Call.Fun.(*ast.FuncLit); ok {
			ast.Inspect(lit.Body, func(m ast.Node) bool {
				id, ok := m.(*ast.Ident)
				if !ok {
					return true
				}
				if obj := w.pass.Pkg.Info.Uses[id]; obj != nil && w.pooled[obj] {
					w.pass.Reportf(n.Pos(), "pooled value %s captured by goroutine closure", obj.Name())
					return false
				}
				return true
			})
		}
	}
	return true
}

// pooledExpr reports whether e yields a pooled value: a
// (*sync.Pool).Get result, a call to a module lender (a function whose
// return derives from a Get), or a value derived from a pooled
// variable by dereference/slicing/assertion.
func (w *poolWalker) pooledExpr(e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj := w.pass.Pkg.Info.Uses[e]
		return obj != nil && w.pooled[obj]
	case *ast.StarExpr:
		return w.pooledExpr(e.X)
	case *ast.TypeAssertExpr:
		return w.pooledExpr(e.X)
	case *ast.SliceExpr:
		return w.pooledExpr(e.X)
	case *ast.CallExpr:
		if isPoolMethod(w.pass.Pkg, e, "Get") {
			return true
		}
		if s := w.pass.Prog.summaryOf(calleeOf(w.pass.Pkg, e)); s != nil && isLender(w.pass.Prog, s) {
			return true
		}
	}
	return false
}

func (w *poolWalker) isPoolPut(call *ast.CallExpr) bool {
	return isPoolMethod(w.pass.Pkg, call, "Put")
}

func (w *poolWalker) markPutArgs(call *ast.CallExpr) {
	if w.putArg == nil {
		w.putArg = make(map[*ast.Ident]bool)
	}
	ast.Inspect(call, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			w.putArg[id] = true
		}
		return true
	})
}

// isPoolMethod matches name called on a sync.Pool value (any selector
// depth: bufPool.Get, e.scratch.Get).
func isPoolMethod(pkg *Package, call *ast.CallExpr, name string) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return false
	}
	tv, ok := pkg.Info.Types[sel.X]
	if !ok {
		return false
	}
	t := tv.Type
	if p, isPtr := t.Underlying().(*types.Pointer); isPtr {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Pkg() != nil &&
		named.Obj().Pkg().Path() == "sync" && named.Obj().Name() == "Pool"
}

// lenderCache avoids re-deriving lender-ness; a lender is a function
// with a return statement whose expression is directly pool-derived
// (Get call, or a local that a Get flowed into).
func isLender(prog *Program, s *funcSummary) bool {
	if s.lender != nil {
		return *s.lender
	}
	// Seed pessimistically before walking so recursive call chains
	// terminate (a function is not a lender by virtue of calling
	// itself).
	seed := false
	s.lender = &seed
	discard := &Analyzer{Name: "poolescape"}
	local := &poolWalker{pass: &Pass{Pkg: s.pkg, Prog: prog, Analyzer: discard, diags: &[]Diagnostic{}},
		pooled: make(map[types.Object]bool),
		putAt:  make(map[types.Object]token.Pos)}
	result := false
	ast.Inspect(s.decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			local.visit(n)
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				if local.pooledExpr(res) || local.pooledExpr(addrOperand(res)) {
					result = true
				}
			}
		}
		return true
	})
	s.lender = &result
	return result
}

// addrOperand unwraps &x so `return &s` lenders resolve.
func addrOperand(e ast.Expr) ast.Expr {
	if u, ok := ast.Unparen(e).(*ast.UnaryExpr); ok && u.Op == token.AND {
		return u.X
	}
	return e
}

func objOf(pkg *Package, id *ast.Ident) types.Object {
	if obj := pkg.Info.Defs[id]; obj != nil {
		return obj
	}
	return pkg.Info.Uses[id]
}

func identObj(pkg *Package, e ast.Expr) types.Object {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return pkg.Info.Uses[e]
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			return identObj(pkg, e.X)
		}
	}
	return nil
}

func fieldName(pkg *Package, sel *ast.SelectorExpr) string {
	if obj := pkg.Info.Uses[sel.Sel]; obj != nil {
		return objectString(obj)
	}
	return sel.Sel.Name
}
