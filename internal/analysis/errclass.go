package analysis

// ErrClass checks the error-classification contract behind the HTTP
// 400-vs-500 split and the binary protocol's wire status (the PR 6
// contract): a function marked //spatialvet:errclass sits on a
// classification boundary, so every error it constructs must be
// classified — a package sentinel, an Is-method wrapper type, a %w
// wrap of a classified value, or a call to a classifying constructor
// (server.badRequest, engine.invalid, wire.corruptf, …). A bare
// fmt.Errorf or errors.New in such a function is exactly the bug that
// made valid-but-unknown register requests come back as 500s:
// errStatus cannot classify what carries no type.

import "go/ast"

var ErrClass = &Analyzer{
	Name: "errclass",
	Doc: "functions marked //spatialvet:errclass must classify every error " +
		"they construct (sentinel, Is-method wrapper, or %w wrap thereof)",
	Run: runErrClass,
}

func runErrClass(pass *Pass) error {
	funcDecls(pass.Pkg, func(decl *ast.FuncDecl) {
		fnObj := pass.Pkg.Info.Defs[decl.Name]
		if fnObj == nil || !pass.Prog.directives.errclassFns[fnObj] {
			return
		}
		checkErrClass(pass, decl.Body, false, fnObj.Name())
	})
	return nil
}

// checkErrClass walks a body looking for raw error constructors.
// sanctioned is true inside the arguments of a classifying constructor
// — badRequest(fmt.Errorf(...)) is the approved wrapping idiom.
func checkErrClass(pass *Pass, n ast.Node, sanctioned bool, fname string) {
	ast.Inspect(n, func(m ast.Node) bool {
		call, ok := m.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeOf(pass.Pkg, call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		path, name := fn.Pkg().Path(), fn.Name()
		rawErrorf := path == "fmt" && name == "Errorf"
		rawNew := path == "errors" && name == "New"
		if rawErrorf || rawNew {
			if !sanctioned && !pass.Prog.classifiedExpr(pass.Pkg, call) {
				pass.Reportf(call.Pos(),
					"unclassified %s.%s in classification boundary %s (wrap with a "+
						"classified sentinel or constructor so errStatus/wireStatus can map it)",
					path, name, fname)
			}
			return true
		}
		if s := pass.Prog.summaryOf(fn); s != nil && s.classifies {
			// Everything under a classifying constructor is sanctioned;
			// recurse manually and prune this subtree.
			for _, arg := range call.Args {
				checkErrClass(pass, arg, true, fname)
			}
			return false
		}
		return true
	})
}
