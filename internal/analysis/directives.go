package analysis

// Directive comments tie the analyzers to the code they check:
//
//	//spatialvet:lockclass <class>
//	    On a sync.Mutex/RWMutex field or package variable. Names the
//	    lock's class in the repo's lock order. The only ordered class
//	    today is "routing" (server/pool routing tables): while a
//	    routing lock is held, no other lock may be acquired — the
//	    PR 3 /metrics deadlock class. Other classes ("shard", …) are
//	    documentation; lockorder leaves them unconstrained.
//
//	//spatialvet:errclass
//	    On a function declaration. Marks a classification boundary:
//	    errors this function constructs must be classified (a typed
//	    sentinel, a sentinel-wrapping %w Errorf, or a classifying
//	    constructor), because they decide a client-visible status
//	    (HTTP 400-vs-500, wire status).
//
//	//spatialvet:ignore <analyzer> -- <justification>
//	    On (or immediately above) the offending line. Suppresses that
//	    analyzer's findings there. The justification is mandatory —
//	    an ignore without one is itself a finding.

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

const directivePrefix = "//spatialvet:"

type ignoreKey struct {
	file     string
	line     int
	analyzer string
}

type directiveSet struct {
	lockClass   map[types.Object]string // mutex field/var -> lock class
	errclassFns map[types.Object]bool   // functions marked as classification boundaries
	ignores     map[ignoreKey]string    // suppression -> justification
	malformed   []Diagnostic
}

// suppressed reports whether d carries an ignore directive for its
// analyzer on its own line or the line above.
func (ds *directiveSet) suppressed(fset *token.FileSet, d Diagnostic) bool {
	pos := fset.Position(d.Pos)
	for _, line := range []int{pos.Line, pos.Line - 1} {
		if _, ok := ds.ignores[ignoreKey{pos.Filename, line, d.Analyzer}]; ok {
			return true
		}
	}
	return false
}

func collectDirectives(prog *Program) *directiveSet {
	ds := &directiveSet{
		lockClass:   make(map[types.Object]string),
		errclassFns: make(map[types.Object]bool),
		ignores:     make(map[ignoreKey]string),
	}
	for _, pkg := range prog.Packages {
		for _, file := range pkg.Files {
			ds.collectIgnores(prog.Fset, file, prog.isRoot(pkg.Path))
			ds.collectDecls(pkg, file)
		}
	}
	return ds
}

// collectIgnores scans every comment in the file for ignore
// directives; they attach by line, not by declaration. Malformed
// directives are reported only for root packages — dependency-only
// packages are not vetted.
func (ds *directiveSet) collectIgnores(fset *token.FileSet, file *ast.File, reportMalformed bool) {
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			rest, ok := strings.CutPrefix(c.Text, directivePrefix+"ignore")
			if !ok {
				continue
			}
			pos := fset.Position(c.Pos())
			name, why, found := strings.Cut(strings.TrimSpace(rest), "--")
			name = strings.TrimSpace(name)
			why = strings.TrimSpace(why)
			if name == "" || !found || why == "" {
				if !reportMalformed {
					continue
				}
				ds.malformed = append(ds.malformed, Diagnostic{
					Pos:      c.Pos(),
					Analyzer: "spatialvet",
					Message:  "spatialvet: ignore directive requires an analyzer name and a justification: //spatialvet:ignore <analyzer> -- <why>",
				})
				continue
			}
			ds.ignores[ignoreKey{pos.Filename, pos.Line, name}] = why
		}
	}
}

// collectDecls walks declarations for lockclass and errclass
// directives, which attach to the declared object.
func (ds *directiveSet) collectDecls(pkg *Package, file *ast.File) {
	bind := func(names []*ast.Ident, class string) {
		for _, name := range names {
			if obj := pkg.Info.Defs[name]; obj != nil {
				ds.lockClass[obj] = class
			}
		}
	}
	ast.Inspect(file, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.StructType:
			for _, f := range n.Fields.List {
				if class, ok := directiveArg(f.Doc, f.Comment, "lockclass"); ok {
					bind(f.Names, class)
				}
			}
		case *ast.GenDecl:
			if n.Tok != token.VAR {
				return true
			}
			for _, spec := range n.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				if class, ok := directiveArg(n.Doc, vs.Comment, "lockclass"); ok {
					bind(vs.Names, class)
				} else if class, ok := directiveArg(vs.Doc, vs.Comment, "lockclass"); ok {
					bind(vs.Names, class)
				}
			}
		case *ast.FuncDecl:
			if _, ok := directiveArg(n.Doc, nil, "errclass"); ok {
				if obj := pkg.Info.Defs[n.Name]; obj != nil {
					ds.errclassFns[obj] = true
				}
			}
		}
		return true
	})
}

// directiveArg finds "//spatialvet:<verb> [arg]" in either comment
// group and returns the trimmed argument.
func directiveArg(doc, comment *ast.CommentGroup, verb string) (string, bool) {
	for _, cg := range []*ast.CommentGroup{doc, comment} {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			if rest, ok := strings.CutPrefix(c.Text, directivePrefix+verb); ok {
				return strings.TrimSpace(rest), true
			}
		}
	}
	return "", false
}

// objectString names an object for diagnostics: Pkg.Type.field or
// Pkg.Func, short enough to read in one line.
func objectString(obj types.Object) string {
	if obj == nil {
		return "<unknown>"
	}
	name := obj.Name()
	if pkg := obj.Pkg(); pkg != nil {
		name = pkg.Name() + "." + name
	}
	return name
}
