package analysis

// The fixture harness: an analysistest-style runner over
// testdata/src/<name>. Each fixture line may carry `// want "regex"`
// markers; the runner demands a finding on that line matching the
// pattern, and rejects findings on unmarked lines — so every analyzer
// is proven to fire AND to stay quiet on the deliberately-similar
// clean cases beside each flagged one.

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

var wantRe = regexp.MustCompile(`// want "((?:[^"\\]|\\.)*)"`)

func runFixture(t *testing.T, name string, analyzers ...*Analyzer) {
	t.Helper()
	dir := filepath.Join("testdata", "src", name)
	prog, err := LoadDir(dir, name)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", name, err)
	}
	diags, err := prog.Run(analyzers)
	if err != nil {
		t.Fatal(err)
	}

	type key struct {
		file string
		line int
	}
	wants := make(map[key][]*regexp.Regexp)
	files, _ := filepath.Glob(filepath.Join(dir, "*.go"))
	for _, f := range files {
		data, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			for _, m := range wantRe.FindAllStringSubmatch(line, -1) {
				re, err := regexp.Compile(m[1])
				if err != nil {
					t.Fatalf("%s:%d: bad want pattern %q: %v", f, i+1, m[1], err)
				}
				k := key{f, i + 1}
				wants[k] = append(wants[k], re)
			}
		}
	}

	matched := make(map[*regexp.Regexp]bool)
	for _, d := range diags {
		pos := prog.Fset.Position(d.Pos)
		k := key{pos.Filename, pos.Line}
		found := false
		for _, re := range wants[k] {
			if !matched[re] && re.MatchString(d.Message) {
				matched[re] = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s: unexpected finding: %s", pos, d.Message)
		}
	}
	for k, res := range wants {
		for _, re := range res {
			if !matched[re] {
				t.Errorf("%s:%d: expected a finding matching %q, got none", k.file, k.line, re)
			}
		}
	}
}

func TestLockOrder(t *testing.T)     { runFixture(t, "lockorder", LockOrder) }
func TestWaitUnderLock(t *testing.T) { runFixture(t, "waitunderlock", WaitUnderLock) }
func TestPoolEscape(t *testing.T)    { runFixture(t, "poolescape", PoolEscape) }
func TestErrClass(t *testing.T)      { runFixture(t, "errclass", ErrClass) }
func TestBoundedAlloc(t *testing.T)  { runFixture(t, "boundedalloc", BoundedAlloc) }

// TestIgnoreDirectives pins the suppression contract: a justified
// //spatialvet:ignore silences exactly its line, and an ignore without
// a justification is itself reported while the finding survives.
func TestIgnoreDirectives(t *testing.T) { runFixture(t, "ignore", WaitUnderLock) }

// TestModuleClean is the end-to-end gate the CI step mirrors: the
// repository's own tree must pass every analyzer with zero findings.
func TestModuleClean(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-module typecheck is slow; run without -short")
	}
	prog, err := Load("../..", "./...")
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	diags, err := prog.Run(All())
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("%s: %s", prog.Fset.Position(d.Pos), d.Message)
	}
}
