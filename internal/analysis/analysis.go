// Package analysis is spatialvet's analyzer framework: a small,
// dependency-free reimplementation of the golang.org/x/tools/go/analysis
// surface (Analyzer / Pass / Diagnostic) on top of the standard
// library's go/ast, go/types and go/importer.
//
// Why not x/tools itself: the module is deliberately zero-dependency
// (see go.mod), and the build environments this repo targets cannot
// assume network access to fetch golang.org/x/tools. The framework
// below keeps the same shape as x/tools — an Analyzer is a named Run
// function over a typed package, diagnostics carry positions — so the
// analyzers in this package port mechanically if the module ever takes
// the dependency. One deliberate difference: a Pass here can see the
// whole Program (every module package, loaded and type-checked
// together), which replaces x/tools' Facts mechanism for the
// cross-package function summaries in summary.go.
//
// The analyzers themselves encode this repo's proven-expensive bug
// classes; see docs/analysis.md for the invariant and the historical
// bug behind each one, and for the //spatialvet: directive syntax
// (lock classes, classification boundaries, justified suppressions).
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// An Analyzer is one named invariant check. Run is invoked once per
// loaded package and reports findings through the Pass.
type Analyzer struct {
	Name string // short lower-case identifier, used in messages and //spatialvet:ignore
	Doc  string // one-paragraph description of the invariant
	Run  func(*Pass) error
}

// A Diagnostic is one finding, anchored to a source position.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Message  string
}

// A Package is one type-checked package of the loaded program.
type Package struct {
	Path  string
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// A Pass carries one analyzer's run over one package. Prog exposes the
// whole module (shared FileSet, every package, function summaries) for
// cross-package reasoning.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package
	Prog     *Program

	diags *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      pos,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf("%s: %s", p.Analyzer.Name, fmt.Sprintf(format, args...)),
	})
}

// A Program is a loaded, type-checked view of one module (or one
// fixture package): every package shares one FileSet and one stdlib
// importer, so types and positions are comparable across packages.
type Program struct {
	Fset     *token.FileSet
	Packages []*Package

	roots      map[string]bool // nil = report everywhere; else only these import paths
	byPath     map[string]*Package
	stdImports func(path string) (*types.Package, error)
	stdCache   map[string]*types.Package
	netConn    *types.Interface // lazily resolved net.Conn; netConnSentinel until looked up

	directives *directiveSet
	summaries  map[*types.Func]*funcSummary
}

// isRoot reports whether findings in the package should be reported —
// packages loaded only as dependencies of the requested patterns are
// type-checked and summarized but not vetted, go vet's semantics.
func (prog *Program) isRoot(path string) bool {
	return prog.roots == nil || prog.roots[path]
}

// Vetted returns how many loaded packages are actually analyzed (the
// requested patterns, not their dependencies).
func (prog *Program) Vetted() int {
	n := 0
	for _, pkg := range prog.Packages {
		if prog.isRoot(pkg.Path) {
			n++
		}
	}
	return n
}

// pkgOf returns the loaded Package owning pkg, or nil for packages
// outside the program (the standard library).
func (prog *Program) pkgOf(pkg *types.Package) *Package {
	if pkg == nil {
		return nil
	}
	return prog.byPath[pkg.Path()]
}

// stdPackage resolves a standard-library package by import path,
// importing it on demand (from source, offline). It returns nil if the
// program never needs it and it cannot be loaded.
func (prog *Program) stdPackage(path string) *types.Package {
	if p, ok := prog.stdCache[path]; ok {
		return p
	}
	p, err := prog.stdImports(path)
	if err != nil {
		p = nil
	}
	prog.stdCache[path] = p
	return p
}

// Run executes the analyzers over every package and returns the
// surviving findings in file/position order. Findings carrying a
// justified //spatialvet:ignore directive (same or preceding line) are
// dropped; malformed directives — an ignore with no justification —
// are themselves reported, so a suppression can never silently decay
// into a blanket waiver.
func (prog *Program) Run(analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		for _, pkg := range prog.Packages {
			if !prog.isRoot(pkg.Path) {
				continue
			}
			pass := &Pass{Analyzer: a, Pkg: pkg, Prog: prog, diags: &diags}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("analysis: %s on %s: %w", a.Name, pkg.Path, err)
			}
		}
	}
	kept := diags[:0]
	for _, d := range diags {
		if !prog.directives.suppressed(prog.Fset, d) {
			kept = append(kept, d)
		}
	}
	kept = append(kept, prog.directives.malformed...)
	sort.Slice(kept, func(i, j int) bool {
		pi, pj := prog.Fset.Position(kept[i].Pos), prog.Fset.Position(kept[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		return kept[i].Message < kept[j].Message
	})
	return kept, nil
}

// All returns the spatialvet analyzer suite.
func All() []*Analyzer {
	return []*Analyzer{
		LockOrder,
		WaitUnderLock,
		PoolEscape,
		ErrClass,
		BoundedAlloc,
	}
}
