package analysis

// BoundedAlloc checks the "allocation bounded by payload" invariant of
// the wire and persist decode paths: a length decoded from network or
// disk bytes (binary.Uvarint, byte-order reads, or a module function
// summarized as an unbounded decode source) must be compared against
// something — the remaining payload, a configured limit — before it
// sizes a make. decoder.count is the sanctioned pattern and is proven
// bounded by its own body, so values it returns are never tainted; the
// raw decoder.uvarint is a source. A miss here is the classic
// length-prefix bomb: a 5-byte frame declaring a 2^60 element count
// allocates unbounded memory before validation fails.

import (
	"go/ast"
	"go/token"
)

var BoundedAlloc = &Analyzer{
	Name: "boundedalloc",
	Doc: "make/append sized by a value decoded from input bytes requires a " +
		"preceding bound check",
	Run: runBoundedAlloc,
}

func runBoundedAlloc(pass *Pass) error {
	funcDecls(pass.Pkg, func(decl *ast.FuncDecl) {
		runTaint(pass.Prog, pass.Pkg, decl, func(pos token.Pos, what string) {
			pass.Reportf(pos,
				"allocation sized by %s, decoded from input bytes with no preceding bound check",
				what)
		})
	})
	return nil
}
