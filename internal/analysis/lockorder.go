package analysis

// LockOrder enforces the repo's lock order, now three levels deep.
//
// Routing-class locks (server.Server.mu, engine.Pool.mu — the locks
// that gate shard lookup) admit nothing beneath them: while one is
// held, acquiring any other lock — directly or through a callee — is
// the PR 3 deadlock class: /metrics once held the routing lock across
// per-shard stat locks while a slow mutation held a stat lock and
// waited for routing. The fix pattern the analyzer pins: copy what you
// need under the routing lock, release it, then touch shards.
//
// Cluster-class locks (the PR 8 replication pipeline locks —
// cluster.ownedShard.mu, cluster.replica.mu) are the opposite extreme:
// they are sanctioned to block on network and disk, which is exactly
// why nothing may be held when one is taken. A goroutine that holds
// any other lock and then waits for a cluster lock is transitively
// waiting on a peer's round trip; the cluster tier's rule is
// cluster → (routing | anything else), never the reverse.

import "go/ast"

const (
	routingClass = "routing"
	clusterClass = "cluster"
)

var LockOrder = &Analyzer{
	Name: "lockorder",
	Doc: "acquiring another lock while holding a routing-class lock " +
		"(//spatialvet:lockclass routing) inverts the shard/routing lock order; " +
		"acquiring a cluster-class lock (//spatialvet:lockclass cluster) while " +
		"holding any lock nests a network-blocking lock inside it",
	Run: runLockOrder,
}

func runLockOrder(pass *Pass) error {
	funcDecls(pass.Pkg, func(decl *ast.FuncDecl) {
		walkLockState(pass.Prog, pass.Pkg, decl, func(ev lockEvent) {
			routing := ""
			for _, h := range ev.held {
				if h.class == routingClass {
					routing = objectString(h.obj)
					break
				}
			}
			if routing != "" {
				if ev.acquired != nil {
					pass.Reportf(ev.call.Pos(),
						"%s acquired while holding routing-class lock %s",
						objectString(ev.acquired.obj), routing)
					return
				}
				fn := calleeOf(pass.Pkg, ev.call)
				if s := pass.Prog.summaryOf(fn); s != nil && s.acquires != "" {
					pass.Reportf(ev.call.Pos(),
						"call to %s (acquires %s) while holding routing-class lock %s",
						objectString(fn), s.acquires, routing)
					return
				}
			}
			// Cluster-class locks must be outermost: they block on peer
			// round trips, so anything already held would wait on the
			// network through them.
			if len(ev.held) == 0 {
				return
			}
			outer := objectString(ev.held[len(ev.held)-1].obj)
			if ev.acquired != nil {
				if ev.acquired.class == clusterClass {
					pass.Reportf(ev.call.Pos(),
						"cluster-class lock %s acquired while holding %s (cluster locks block on the network and must be outermost)",
						objectString(ev.acquired.obj), outer)
				}
				return
			}
			fn := calleeOf(pass.Pkg, ev.call)
			if s := pass.Prog.summaryOf(fn); s != nil && s.acquiresCluster != "" {
				pass.Reportf(ev.call.Pos(),
					"call to %s (acquires cluster-class %s) while holding %s",
					objectString(fn), s.acquiresCluster, outer)
			}
		})
	})
	return nil
}
