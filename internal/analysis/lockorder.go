package analysis

// LockOrder enforces the repo's two-level lock order: a routing-class
// lock (server.Server.mu, engine.Pool.mu — the locks that gate shard
// lookup) is the outermost lock. While one is held, acquiring any
// other lock — directly or through a callee — is the PR 3 deadlock
// class: /metrics once held the routing lock across per-shard stat
// locks while a slow mutation held a stat lock and waited for routing.
// The fix pattern the analyzer pins: copy what you need under the
// routing lock, release it, then touch shards.

import "go/ast"

const routingClass = "routing"

var LockOrder = &Analyzer{
	Name: "lockorder",
	Doc: "acquiring another lock while holding a routing-class lock " +
		"(//spatialvet:lockclass routing) inverts the shard/routing lock order",
	Run: runLockOrder,
}

func runLockOrder(pass *Pass) error {
	funcDecls(pass.Pkg, func(decl *ast.FuncDecl) {
		walkLockState(pass.Prog, pass.Pkg, decl, func(ev lockEvent) {
			routing := ""
			for _, h := range ev.held {
				if h.class == routingClass {
					routing = objectString(h.obj)
					break
				}
			}
			if routing == "" {
				return
			}
			if ev.acquired != nil {
				pass.Reportf(ev.call.Pos(),
					"%s acquired while holding routing-class lock %s",
					objectString(ev.acquired.obj), routing)
				return
			}
			fn := calleeOf(pass.Pkg, ev.call)
			if s := pass.Prog.summaryOf(fn); s != nil && s.acquires != "" {
				pass.Reportf(ev.call.Pos(),
					"call to %s (acquires %s) while holding routing-class lock %s",
					objectString(fn), s.acquires, routing)
			}
		})
	})
	return nil
}
