// Package ignore exercises the //spatialvet:ignore directive contract:
// a justified suppression silences exactly its line, while an ignore
// without a justification is itself reported and suppresses nothing.
package ignore

import "sync"

// Future mimics the engine's batch future.
type Future struct{ done chan struct{} }

// Wait blocks until the future resolves.
func (f *Future) Wait() { <-f.done }

// Engine mimics a shard with a state lock.
type Engine struct {
	mu   sync.Mutex
	last *Future
}

// Suppressed carries a justified ignore: no finding survives.
func (e *Engine) Suppressed() {
	e.mu.Lock()
	defer e.mu.Unlock()
	//spatialvet:ignore waitunderlock -- fixture: the barrier is the design here
	e.last.Wait()
}

// Unjustified carries an ignore without a justification: the directive
// is malformed (reported), and the finding it meant to cover survives.
func (e *Engine) Unjustified() {
	e.mu.Lock()
	defer e.mu.Unlock()
	//spatialvet:ignore waitunderlock // want "ignore directive requires an analyzer name and a justification"
	e.last.Wait() // want "call to blocking ignore.Wait while holding ignore.mu"
}
