// Package boundedalloc exercises the decoded-length taint analyzer:
// counts read from input bytes must be bound-checked before they size
// an allocation; checked counts and internally-bounded decoders are
// clean.
package boundedalloc

import "encoding/binary"

// BrokenDirect allocates straight from the decoded count: the classic
// length-prefix bomb.
func BrokenDirect(p []byte) []byte {
	n, _ := binary.Uvarint(p)
	return make([]byte, n) // want "allocation sized by n, decoded from input bytes"
}

// CleanChecked compares the count against the payload first.
func CleanChecked(p []byte) []byte {
	n, _ := binary.Uvarint(p)
	if n > uint64(len(p)) {
		return nil
	}
	return make([]byte, n)
}

// grow sizes an allocation from its parameter; bounding is the
// caller's job, so a tainted argument taints the allocation.
func grow(n int) []int64 { return make([]int64, n) }

// BrokenHelper funnels an unchecked count through the alloc helper.
func BrokenHelper(p []byte) []int64 {
	n, _ := binary.Uvarint(p)
	return grow(int(n)) // want "sizes an allocation in boundedalloc.grow"
}

// readLen decodes without checking: an unbounded source, so callers
// inherit the taint through the function summary.
func readLen(p []byte) uint64 {
	n, _ := binary.Uvarint(p)
	return n
}

// BrokenSummary taints through the module source summary.
func BrokenSummary(p []byte) []byte {
	m := readLen(p)
	return make([]byte, m) // want "allocation sized by m, decoded from input bytes"
}

// count decodes and bounds internally — the sanctioned decoder.count
// pattern; its result carries no taint.
func count(p []byte, max int) (int, bool) {
	n, _ := binary.Uvarint(p)
	if n > uint64(max) {
		return 0, false
	}
	return int(n), true
}

// CleanBoundedSource trusts the internally-bounded decoder.
func CleanBoundedSource(p []byte) []byte {
	m, ok := count(p, len(p))
	if !ok {
		return nil
	}
	return make([]byte, m)
}
