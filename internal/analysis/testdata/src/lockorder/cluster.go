package lockorder

// Cluster-class cases: a cluster lock (sanctioned to block on the
// network while held) must be outermost — taking one with anything
// already held is flagged, directly and transitively. The sanctioned
// shape beside each: take the cluster lock first, then whatever nests
// under it.

import "sync"

// Owner mirrors the replication pipeline's per-shard state.
type Owner struct {
	cmu sync.Mutex //spatialvet:lockclass cluster
	n   int
}

func (o *Owner) ship() {
	o.cmu.Lock()
	defer o.cmu.Unlock()
	o.n++
}

// Table mirrors an unclassified bookkeeping lock.
type Table struct {
	tmu   sync.Mutex
	owner *Owner
}

// BrokenClusterUnderLock takes the cluster lock with another held.
func (t *Table) BrokenClusterUnderLock() {
	t.tmu.Lock()
	defer t.tmu.Unlock()
	t.owner.cmu.Lock() // want "cluster-class lock lockorder.cmu acquired while holding lockorder.tmu"
	t.owner.n++
	t.owner.cmu.Unlock()
}

// BrokenClusterTransitive reaches the cluster lock through a callee.
func (t *Table) BrokenClusterTransitive() {
	t.tmu.Lock()
	defer t.tmu.Unlock()
	t.owner.ship() // want "call to lockorder.ship .acquires cluster-class lockorder.cmu. while holding lockorder.tmu"
}

// BrokenClusterUnderRouting nests the cluster lock under routing: the
// routing rule fires (one report per site; it subsumes the cluster one).
func (p *Pool) BrokenClusterUnderRouting(o *Owner) {
	p.mu.Lock()
	defer p.mu.Unlock()
	o.cmu.Lock() // want "lockorder.cmu acquired while holding routing-class lock lockorder.mu"
	o.n++
	o.cmu.Unlock()
}

// CleanClusterFirst is the sanctioned order: cluster lock outermost,
// bookkeeping nested under it.
func (t *Table) CleanClusterFirst() {
	t.owner.cmu.Lock()
	defer t.owner.cmu.Unlock()
	t.tmu.Lock()
	t.tmu.Unlock()
}

// CleanCopyThenShip copies under the table lock, releases it, then
// takes the cluster lock.
func (t *Table) CleanCopyThenShip() {
	t.tmu.Lock()
	o := t.owner
	t.tmu.Unlock()
	o.ship()
}
