package lockorder

// Tuner-class cases mirror internal/tune's adoption discipline: Adopt
// installs the shard's profile observer under the shard's own lock, so
// calling it while the routing table is locked inverts the shard/
// routing order — the server publishes the shard, releases the routing
// lock, and only then hands the shard to the tuner.

import "sync"

// Tuner mimics internal/tune: adopt touches per-shard state under the
// shard's own lock.
type Tuner struct{ adopted int }

func (t *Tuner) adopt(sh *Shard) {
	sh.smu.Lock()
	t.adopted++
	sh.smu.Unlock()
}

// Registry mirrors the server's shard table gated by a routing lock.
type Registry struct {
	rmu   sync.Mutex //spatialvet:lockclass routing
	tuner *Tuner
	byID  map[string]*Shard
}

// BrokenAdoptUnderRouting registers and adopts in one critical section.
func (r *Registry) BrokenAdoptUnderRouting(id string, sh *Shard) {
	r.rmu.Lock()
	defer r.rmu.Unlock()
	r.byID[id] = sh
	r.tuner.adopt(sh) // want "call to lockorder.adopt .acquires lockorder.smu. while holding routing-class lock lockorder.rmu"
}

// CleanRegisterThenAdopt is the server's real shape: publish the shard
// under the routing lock, release it, then let the tuner take the
// shard's own lock.
func (r *Registry) CleanRegisterThenAdopt(id string, sh *Shard) {
	r.rmu.Lock()
	r.byID[id] = sh
	r.rmu.Unlock()
	r.tuner.adopt(sh)
}
