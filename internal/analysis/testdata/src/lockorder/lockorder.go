// Package lockorder exercises the routing/shard lock-order analyzer:
// inversions under a routing-class lock are flagged, the sanctioned
// copy-then-touch pattern beside them is not.
package lockorder

import "sync"

// Pool mirrors the repo's routing tables: mu gates shard lookup and is
// the outermost lock in the order.
type Pool struct {
	mu     sync.Mutex //spatialvet:lockclass routing
	shards []*Shard
}

// Shard mirrors a per-shard stat lock, inner in the order.
type Shard struct {
	smu  sync.Mutex //spatialvet:lockclass shard
	hits int
}

func (s *Shard) stats() int {
	s.smu.Lock()
	defer s.smu.Unlock()
	return s.hits
}

// BrokenDirect acquires a shard lock while routing is held.
func (p *Pool) BrokenDirect() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	total := 0
	for _, sh := range p.shards {
		sh.smu.Lock() // want "lockorder.smu acquired while holding routing-class lock lockorder.mu"
		total += sh.hits
		sh.smu.Unlock()
	}
	return total
}

// BrokenTransitive reaches the shard lock through a callee.
func (p *Pool) BrokenTransitive() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	total := 0
	for _, sh := range p.shards {
		total += sh.stats() // want "call to lockorder.stats .acquires lockorder.smu. while holding routing-class lock lockorder.mu"
	}
	return total
}

// CleanCopyThenTouch is the sanctioned pattern: copy the routing slice
// under mu, release it, then take the per-shard locks.
func (p *Pool) CleanCopyThenTouch() int {
	p.mu.Lock()
	shards := append([]*Shard(nil), p.shards...)
	p.mu.Unlock()
	total := 0
	for _, sh := range shards {
		total += sh.stats()
	}
	return total
}

// CleanInnerOnly holds only the shard lock: the order constrains what
// nests under routing, not the shard lock on its own.
func (s *Shard) CleanInnerOnly() int {
	return s.stats()
}
