// Package poolescape exercises the sync.Pool discipline analyzer:
// field stores, use-after-Put and goroutine capture are flagged; the
// lender idiom and defer-Put borrowing beside them are sanctioned.
package poolescape

import "sync"

var bufPool = sync.Pool{New: func() any { b := make([]byte, 0, 64); return &b }}

type server struct {
	scratch *[]byte
}

// BrokenFieldStore parks a pooled buffer in a long-lived struct field:
// the owner outlives the frame the buffer was borrowed for.
func (s *server) BrokenFieldStore() {
	s.scratch = bufPool.Get().(*[]byte) // want "sync.Pool-sourced value stored in field poolescape.scratch"
}

// BrokenUseAfterPut touches the buffer after returning it: the next
// Get may already have handed the memory to a concurrent frame.
func BrokenUseAfterPut() int {
	b := bufPool.Get().(*[]byte)
	bufPool.Put(b)
	return len(*b) // want "pooled value b used after Put"
}

// BrokenGoCapture hands the buffer to a goroutine whose lifetime the
// borrower cannot know.
func BrokenGoCapture() {
	b := bufPool.Get().(*[]byte)
	go func() { // want "pooled value b captured by goroutine closure"
		_ = len(*b)
	}()
	bufPool.Put(b)
}

// getBuf is a lender: returning the pooled value is the sanctioned way
// to hand a borrow to the caller's frame.
func getBuf() *[]byte { return bufPool.Get().(*[]byte) }

// CleanLenderUse borrows through the lender, uses the buffer locally,
// and returns it at frame exit.
func CleanLenderUse() int {
	b := getBuf()
	defer bufPool.Put(b)
	return cap(*b)
}

// CleanDeferPut releases at return: every lexically-later use is still
// before the Put actually runs.
func CleanDeferPut() int {
	b := bufPool.Get().(*[]byte)
	defer bufPool.Put(b)
	*b = append((*b)[:0], 1)
	return len(*b)
}
