package waitunderlock

// Tuner-class cases mirror internal/tune's republish discipline: a
// retune reuses the engine's Quiesce barrier, which blocks until every
// in-flight batch resolves, so Retune must never run with a tuner lock
// held. The sanctioned shape plans under the lock, releases it, and
// only then republishes.

import "sync"

// Target mimics a dyn shard: Retune drains the in-flight batch (a
// transitive Wait) before republishing the layout.
type Target struct{ last *Future }

// Retune quiesces, then installs the new layout.
func (d *Target) Retune() {
	if d.last != nil {
		d.last.Wait()
	}
}

// Tuner mirrors the per-shard tuner state lock.
type Tuner struct {
	tmu    sync.Mutex
	target *Target
}

// BrokenRepublishUnderLock holds the tuner lock across the quiesce:
// every serving batch on the shard would stall behind the tuner.
func (t *Tuner) BrokenRepublishUnderLock() {
	t.tmu.Lock()
	defer t.tmu.Unlock()
	t.target.Retune() // want "call to blocking waitunderlock.Retune .blocks in waitunderlock.Wait. while holding waitunderlock.tmu"
}

// CleanPlanThenRepublish is the tuner's real shape: snapshot the plan
// under the lock, release it, then let Retune quiesce on its own.
func (t *Tuner) CleanPlanThenRepublish() {
	t.tmu.Lock()
	tgt := t.target
	t.tmu.Unlock()
	if tgt != nil {
		tgt.Retune()
	}
}
