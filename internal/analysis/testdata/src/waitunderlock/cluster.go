package waitunderlock

// Cluster-class cases: blocking while holding a cluster-class lock is
// the replication design (the ack gate spans a network round trip), so
// it is exempt by class. Blocking with a cluster lock AND an ordinary
// lock held still reports — on the ordinary lock.

import "sync"

// Shard mirrors the replication pipeline's per-shard pipeline lock.
type Shard struct {
	cmu  sync.Mutex //spatialvet:lockclass cluster
	bmu  sync.Mutex
	last *Future
}

// CleanAckGateUnderClusterLock blocks while holding only the cluster
// lock: the sanctioned replication shape, no finding.
func (s *Shard) CleanAckGateUnderClusterLock() {
	s.cmu.Lock()
	defer s.cmu.Unlock()
	if s.last != nil {
		s.last.Wait()
	}
}

// BrokenOrdinaryLockInside still reports: the exemption covers the
// cluster lock, not the ordinary lock waiting behind the same block.
func (s *Shard) BrokenOrdinaryLockInside() {
	s.cmu.Lock()
	defer s.cmu.Unlock()
	s.bmu.Lock()
	defer s.bmu.Unlock()
	if s.last != nil {
		s.last.Wait() // want "call to blocking waitunderlock.Wait while holding waitunderlock.bmu"
	}
}
