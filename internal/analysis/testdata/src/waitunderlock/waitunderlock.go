// Package waitunderlock exercises the blocking-under-mutex analyzer:
// engine-style Wait calls (direct and transitive) and net.Conn I/O
// under a held sync.Mutex are flagged; the copy-then-wait pattern is
// not.
package waitunderlock

import (
	"net"
	"sync"
)

// Future mimics the engine's batch future: Wait blocks until the batch
// runs, so it must never be called with a lock held.
type Future struct{ done chan struct{} }

// Wait blocks until the future resolves.
func (f *Future) Wait() { <-f.done }

// Engine mimics a shard with a routing/state lock.
type Engine struct {
	mu   sync.Mutex
	last *Future
}

func (e *Engine) submit() *Future { return &Future{done: make(chan struct{})} }

// drain blocks transitively, through Wait.
func (e *Engine) drain() {
	if e.last != nil {
		e.last.Wait()
	}
}

// BrokenWait resolves a future while holding the lock.
func (e *Engine) BrokenWait() {
	e.mu.Lock()
	defer e.mu.Unlock()
	f := e.submit()
	f.Wait() // want "call to blocking waitunderlock.Wait while holding waitunderlock.mu"
}

// BrokenTransitive blocks through a callee that waits.
func (e *Engine) BrokenTransitive() {
	e.mu.Lock()
	e.drain() // want "call to blocking waitunderlock.drain .blocks in waitunderlock.Wait. while holding waitunderlock.mu"
	e.mu.Unlock()
}

type client struct {
	wmu  sync.Mutex
	conn net.Conn
	buf  []byte
}

// BrokenWrite does network I/O under the write lock.
func (c *client) BrokenWrite() {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	c.conn.Write(c.buf) // want "call to blocking net.Conn.Write while holding waitunderlock.wmu"
}

// CleanCopyThenWait is the sanctioned shape: snapshot under the lock,
// release it, then block.
func (e *Engine) CleanCopyThenWait() {
	e.mu.Lock()
	f := e.last
	e.mu.Unlock()
	if f != nil {
		f.Wait()
	}
}
