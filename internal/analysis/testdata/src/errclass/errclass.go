// Package errclass exercises the error-classification analyzer: a
// function marked //spatialvet:errclass sits on a status-mapping
// boundary and must construct only classified errors.
package errclass

import (
	"errors"
	"fmt"
)

// ErrBad is the package's classification sentinel.
var ErrBad = errors.New("errclass: bad request")

type badErr struct{ error }

func (badErr) Is(target error) bool { return target == ErrBad }

// classify is the sanctioned constructor: anything wrapped in it maps
// to the sentinel.
func classify(err error) error { return badErr{err} }

// BrokenRaw returns an untyped error from a boundary: errStatus-style
// mapping cannot classify it.
//
//spatialvet:errclass
func BrokenRaw(kind string) error {
	return fmt.Errorf("unknown kind %q", kind) // want "unclassified fmt.Errorf in classification boundary BrokenRaw"
}

// BrokenNew shows errors.New is just as untyped.
//
//spatialvet:errclass
func BrokenNew() error {
	return errors.New("nope") // want "unclassified errors.New in classification boundary BrokenNew"
}

// CleanConstructor wraps through the sanctioned constructor.
//
//spatialvet:errclass
func CleanConstructor(kind string) error {
	return classify(fmt.Errorf("unknown kind %q", kind))
}

// CleanWrap carries the sentinel via %w.
//
//spatialvet:errclass
func CleanWrap(kind string) error {
	return fmt.Errorf("%w: unknown kind %q", ErrBad, kind)
}

// CleanUnmarked is not a boundary: raw errors are fine off the
// classification surface.
func CleanUnmarked() error {
	return fmt.Errorf("internal detail")
}
