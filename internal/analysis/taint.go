package analysis

// The decode-taint walk behind boundedalloc and the unboundedSource
// summary. A value is tainted when it was decoded from raw input bytes
// (binary.Uvarint and friends, or a module function summarized as an
// unbounded source) and has not yet appeared in a comparison. Any
// comparison mentioning the value counts as its bound check — the walk
// is branch-insensitive (statements are processed in source order, not
// control-flow order), so this deliberately over-trusts checks to keep
// false positives near zero on real decode loops.

import (
	"go/ast"
	"go/token"
	"go/types"
)

type taintInfo struct {
	taintedReturn bool
}

// runTaint walks one function. When report is non-nil it is invoked at
// every allocation sized by a tainted value.
func runTaint(prog *Program, pkg *Package, decl *ast.FuncDecl, report func(pos token.Pos, what string)) taintInfo {
	w := &taintWalker{prog: prog, pkg: pkg, report: report,
		tainted: make(map[types.Object]bool), done: make(map[ast.Node]bool)}
	ast.Inspect(decl.Body, w.visit)
	return w.info
}

type taintWalker struct {
	prog    *Program
	pkg     *Package
	report  func(pos token.Pos, what string)
	tainted map[types.Object]bool
	done    map[ast.Node]bool
	info    taintInfo
}

func (w *taintWalker) visit(n ast.Node) bool {
	if n == nil || w.done[n] {
		return !w.done[n]
	}
	switch n := n.(type) {
	case *ast.AssignStmt:
		w.assign(n)
	case *ast.IfStmt:
		// Process the init statement before the condition clears
		// anything: `if n, _ := decode(p); n > lim {` must taint n
		// first, then sanitize it.
		if a, ok := n.Init.(*ast.AssignStmt); ok {
			w.assign(a)
			w.done[a] = true
		}
		w.clearComparisons(n.Cond)
	case *ast.ForStmt:
		w.clearComparisons(n.Cond)
	case *ast.SwitchStmt:
		w.clearIdents(n.Tag)
	case *ast.CallExpr:
		w.checkAlloc(n)
	case *ast.ReturnStmt:
		for _, res := range n.Results {
			if w.taintedExpr(res) {
				w.info.taintedReturn = true
			}
		}
	}
	return true
}

func (w *taintWalker) assign(a *ast.AssignStmt) {
	set := func(lhs ast.Expr, tainted bool) {
		id, ok := ast.Unparen(lhs).(*ast.Ident)
		if !ok {
			return
		}
		obj := w.pkg.Info.Defs[id]
		if obj == nil {
			obj = w.pkg.Info.Uses[id]
		}
		if obj == nil {
			return
		}
		if tainted {
			w.tainted[obj] = true
		} else {
			delete(w.tainted, obj)
		}
	}
	if len(a.Rhs) == 1 && len(a.Lhs) > 1 {
		// Multi-value call: only result 0 of a source carries taint.
		call, _ := ast.Unparen(a.Rhs[0]).(*ast.CallExpr)
		src := call != nil && w.sourceCall(call)
		for i, lhs := range a.Lhs {
			set(lhs, src && i == 0)
		}
		return
	}
	for i, lhs := range a.Lhs {
		if i < len(a.Rhs) {
			set(lhs, w.taintedExpr(a.Rhs[i]))
		}
	}
}

// sourceCall reports whether call's first result is a value decoded
// from raw input without an internal bound check.
func (w *taintWalker) sourceCall(call *ast.CallExpr) bool {
	fn := calleeOf(w.pkg, call)
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	if fn.Pkg().Path() == "encoding/binary" {
		switch fn.Name() {
		case "Uvarint", "Varint", "ReadUvarint", "ReadVarint",
			"Uint16", "Uint32", "Uint64":
			return true
		}
		return false
	}
	s := w.prog.summaryOf(fn)
	return s != nil && s.unboundedSource
}

func (w *taintWalker) taintedExpr(e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj := w.pkg.Info.Uses[e]
		return obj != nil && w.tainted[obj]
	case *ast.CallExpr:
		if tv, ok := w.pkg.Info.Types[e.Fun]; ok && tv.IsType() && len(e.Args) == 1 {
			return w.taintedExpr(e.Args[0]) // conversion: int(n)
		}
		return w.sourceCall(e)
	case *ast.BinaryExpr:
		switch e.Op {
		case token.ADD, token.SUB, token.MUL, token.QUO, token.REM,
			token.SHL, token.SHR, token.AND, token.OR, token.XOR:
			return w.taintedExpr(e.X) || w.taintedExpr(e.Y)
		}
	case *ast.UnaryExpr:
		return w.taintedExpr(e.X)
	}
	return false
}

// clearComparisons sanitizes every identifier that appears inside a
// comparison in cond.
func (w *taintWalker) clearComparisons(cond ast.Expr) {
	if cond == nil {
		return
	}
	ast.Inspect(cond, func(n ast.Node) bool {
		be, ok := n.(*ast.BinaryExpr)
		if !ok {
			return true
		}
		switch be.Op {
		case token.EQL, token.NEQ, token.LSS, token.LEQ, token.GTR, token.GEQ:
			w.clearIdents(be.X)
			w.clearIdents(be.Y)
		}
		return true
	})
}

func (w *taintWalker) clearIdents(e ast.Expr) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := w.pkg.Info.Uses[id]; obj != nil {
				delete(w.tainted, obj)
			}
		}
		return true
	})
}

// checkAlloc reports allocations sized by tainted values: the make
// builtin, and calls whose callee passes a parameter straight into a
// make (allocParams).
func (w *taintWalker) checkAlloc(call *ast.CallExpr) {
	if w.report == nil {
		return
	}
	if isBuiltinMake(w.pkg, call) {
		for _, sz := range call.Args[1:] {
			if w.taintedExpr(sz) {
				w.report(sz.Pos(), types.ExprString(sz))
			}
		}
		return
	}
	fn := calleeOf(w.pkg, call)
	if s := w.prog.summaryOf(fn); s != nil {
		for i := range s.allocParams {
			if i < len(call.Args) && w.taintedExpr(call.Args[i]) {
				w.report(call.Args[i].Pos(), types.ExprString(call.Args[i])+" (sizes an allocation in "+objectString(fn)+")")
			}
		}
	}
}
