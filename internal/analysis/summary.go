package analysis

// Whole-program function summaries. The analyzers are intra-procedural
// walks, but the invariants are not: "Flush under a lock" must see
// through drainLocked to the Quiesce inside it, "unclassified error"
// must know that badRequest classifies, "unbounded make" must know
// that decoder.count bound-checks what decoder.uvarint does not. The
// summaries below are computed once per load by monotone fixpoint over
// the static call graph (direct calls resolved through go/types; calls
// through interface values, function values and closures passed as
// arguments are not followed — see docs/analysis.md for what that
// means for each analyzer).

import (
	"go/ast"
	"go/token"
	"go/types"
)

type funcSummary struct {
	fn   *types.Func
	decl *ast.FuncDecl
	pkg  *Package

	callees []*types.Func

	// blocks / acquires: non-empty means the function may, directly or
	// transitively, do the named thing. The string names the root cause
	// for diagnostics ("(*Engine).Quiesce", "net.Conn.Write", …).
	blocks   string
	acquires string
	// acquiresCluster names a cluster-class lock the function may take,
	// directly or transitively. Cluster locks block on network round
	// trips, so lockorder holds them to a stricter rule: they must be
	// outermost, never taken while anything else is held.
	acquiresCluster string

	// classifies: every error this function returns is classified (a
	// sentinel, an Is-method wrapper, or a %w wrap of one) — calling it
	// is a sanctioned way to construct an error in an errclass zone.
	classifies bool
	returnsErr bool

	// unboundedSource: result 0 carries a value decoded from raw input
	// bytes that the function did not bound-check before returning.
	unboundedSource bool

	// allocParams: indices of parameters that directly size a make (or
	// flow into a callee's allocParams position) with no intervening
	// bound enforced by the function itself — bounding is the caller's
	// job, so a tainted argument here is a tainted allocation.
	allocParams map[int]bool

	// lender caches poolescape's "returns a pooled value" derivation
	// (nil until first queried).
	lender *bool
}

func computeSummaries(prog *Program) map[*types.Func]*funcSummary {
	sums := make(map[*types.Func]*funcSummary)
	for _, pkg := range prog.Packages {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				s := &funcSummary{fn: fn, decl: fd, pkg: pkg, allocParams: make(map[int]bool)}
				s.callees = collectCallees(pkg, fd)
				sig := fn.Type().(*types.Signature)
				if res := sig.Results(); res != nil {
					for i := 0; i < res.Len(); i++ {
						if isErrorType(res.At(i).Type()) {
							s.returnsErr = true
						}
					}
				}
				sums[fn] = s
			}
		}
	}
	prog.summaries = sums // visible to the helpers below during fixpoint

	// blocks / acquires: seed with direct evidence, propagate over
	// static calls until stable.
	for _, s := range sums {
		ast.Inspect(s.decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if why, ok := prog.baseBlockingCall(s.pkg, call); ok && s.blocks == "" {
				s.blocks = why
			}
			if obj, op := lockOp(s.pkg, call); obj != nil && op == opLock {
				if s.acquires == "" {
					s.acquires = objectString(obj)
				}
				if s.acquiresCluster == "" && prog.directives.lockClass[obj] == clusterClass {
					s.acquiresCluster = objectString(obj)
				}
			}
			return true
		})
	}
	propagate(sums, func(s *funcSummary) string { return s.blocks },
		func(s *funcSummary, why string) { s.blocks = why })
	propagate(sums, func(s *funcSummary) string { return s.acquires },
		func(s *funcSummary, why string) { s.acquires = why })
	propagate(sums, func(s *funcSummary) string { return s.acquiresCluster },
		func(s *funcSummary, why string) { s.acquiresCluster = why })

	// classifies: grows monotonically — a round may discover that a
	// function only returns wrappers the previous round proved.
	for changed := true; changed; {
		changed = false
		for _, s := range sums {
			if s.classifies || !s.returnsErr {
				continue
			}
			if classifyingConstructor(prog, s) {
				s.classifies = true
				changed = true
			}
		}
	}

	// unboundedSource and allocParams: also monotone (more sources =>
	// more taint => more tainted returns).
	for changed := true; changed; {
		changed = false
		for _, s := range sums {
			if !s.unboundedSource {
				ti := runTaint(prog, s.pkg, s.decl, nil)
				if ti.taintedReturn {
					s.unboundedSource = true
					changed = true
				}
			}
			if updateAllocParams(prog, s) {
				changed = true
			}
		}
	}
	return sums
}

// propagate runs the transitive-closure fixpoint for one string-valued
// property over the call graph.
func propagate(sums map[*types.Func]*funcSummary, get func(*funcSummary) string, set func(*funcSummary, string)) {
	for changed := true; changed; {
		changed = false
		for _, s := range sums {
			if get(s) != "" {
				continue
			}
			for _, callee := range s.callees {
				cs := sums[callee]
				if cs == nil || get(cs) == "" {
					continue
				}
				set(s, get(cs))
				changed = true
				break
			}
		}
	}
}

func collectCallees(pkg *Package, fd *ast.FuncDecl) []*types.Func {
	var out []*types.Func
	seen := make(map[*types.Func]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if fn := calleeOf(pkg, call); fn != nil && !seen[fn] {
			seen[fn] = true
			out = append(out, fn)
		}
		return true
	})
	return out
}

// calleeOf resolves a call's static callee, or nil for calls through
// function values, closures, and conversions.
func calleeOf(pkg *Package, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := pkg.Info.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if f, ok := pkg.Info.Uses[fun.Sel].(*types.Func); ok {
			return f
		}
	}
	return nil
}

const (
	opNone = iota
	opLock
	opUnlock
)

// lockOp classifies a call as a mutex acquire or release and resolves
// the lock's identity (the field or package variable holding it).
func lockOp(pkg *Package, call *ast.CallExpr) (types.Object, int) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil, opNone
	}
	var op int
	switch sel.Sel.Name {
	case "Lock", "RLock":
		op = opLock
	case "Unlock", "RUnlock":
		op = opUnlock
	default:
		return nil, opNone
	}
	tv, ok := pkg.Info.Types[sel.X]
	if !ok || !isSyncLocker(tv.Type) {
		return nil, opNone
	}
	switch recv := ast.Unparen(sel.X).(type) {
	case *ast.SelectorExpr:
		return pkg.Info.Uses[recv.Sel], op
	case *ast.Ident:
		return pkg.Info.Uses[recv], op
	}
	return nil, op
}

// isSyncLocker reports whether t is sync.Mutex or sync.RWMutex
// (possibly behind a pointer).
func isSyncLocker(t types.Type) bool {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

// blockingMethodNames are the engine-API method names whose callees
// block until batch work resolves: the DynEngine mutation-barrier
// class. sync.Cond.Wait and sync.WaitGroup.Wait are excluded by the
// module-receiver requirement — the par fork-join idiom is pervasive
// and safe.
var blockingMethodNames = map[string]bool{
	"Wait": true, "Flush": true, "FlushAll": true, "Quiesce": true,
}

// baseBlockingCall reports whether call is directly blocking: a
// blocking-named method on a module type, or Read/Write on a value
// implementing net.Conn.
func (prog *Program) baseBlockingCall(pkg *Package, call *ast.CallExpr) (string, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	fn, _ := pkg.Info.Uses[sel.Sel].(*types.Func)
	if fn == nil {
		return "", false
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil {
		return "", false
	}
	name := sel.Sel.Name
	if blockingMethodNames[name] && fn.Pkg() != nil && prog.byPath[fn.Pkg().Path()] != nil {
		return objectString(fn), true
	}
	if name == "Read" || name == "Write" {
		if tv, ok := pkg.Info.Types[sel.X]; ok && prog.implementsNetConn(tv.Type) {
			return "net.Conn." + name, true
		}
	}
	return "", false
}

// implementsNetConn reports whether t (or *t) implements net.Conn.
func (prog *Program) implementsNetConn(t types.Type) bool {
	conn := prog.netConnType()
	if conn == nil || t == nil {
		return false
	}
	if types.Implements(t, conn) {
		return true
	}
	if _, isPtr := t.Underlying().(*types.Pointer); !isPtr {
		return types.Implements(types.NewPointer(t), conn)
	}
	return false
}

var netConnSentinel = new(types.Interface) // distinguishes "not looked up" from "unavailable"

func (prog *Program) netConnType() *types.Interface {
	if prog.netConn == netConnSentinel {
		netPkg := prog.stdPackage("net")
		prog.netConn = nil
		if netPkg != nil {
			if obj := netPkg.Scope().Lookup("Conn"); obj != nil {
				if iface, ok := obj.Type().Underlying().(*types.Interface); ok {
					prog.netConn = iface
				}
			}
		}
	}
	return prog.netConn
}

// summaryOf returns the summary for a resolved callee, if it is a
// function the program defines.
func (prog *Program) summaryOf(fn *types.Func) *funcSummary {
	if fn == nil {
		return nil
	}
	return prog.summaries[fn]
}

func isErrorType(t types.Type) bool {
	return types.Identical(t, types.Universe.Lookup("error").Type())
}

// classifyingConstructor reports whether every error s returns is a
// classified expression — making s itself a sanctioned constructor.
// Error positions are read from the declared signature, not the
// returned expression's type: `return invalidError{err}` fills an
// error result with a concrete struct type.
func classifyingConstructor(prog *Program, s *funcSummary) bool {
	sig := s.fn.Type().(*types.Signature)
	results := sig.Results()
	errAt := make(map[int]bool)
	for i := 0; i < results.Len(); i++ {
		if isErrorType(results.At(i).Type()) {
			errAt[i] = true
		}
	}
	ok := true
	sawReturn := false
	ast.Inspect(s.decl.Body, func(n ast.Node) bool {
		if !ok {
			return false
		}
		ret, isRet := n.(*ast.ReturnStmt)
		if !isRet {
			return true
		}
		if len(ret.Results) != results.Len() {
			// Naked return or single multi-value call: can't match
			// positions, so don't certify the function.
			ok = false
			return true
		}
		for i, res := range ret.Results {
			if !errAt[i] {
				continue
			}
			sawReturn = true
			if !prog.classifiedExpr(s.pkg, res) {
				ok = false
			}
		}
		return true
	})
	return ok && sawReturn
}

// classifiedExpr reports whether e constructs (or names) a classified
// error: nil, a package-level sentinel, a composite literal of a type
// with an Is method, a %w wrap of a classified value, or a call to a
// classifying constructor.
func (prog *Program) classifiedExpr(pkg *Package, e ast.Expr) bool {
	e = ast.Unparen(e)
	if tv, ok := pkg.Info.Types[e]; ok && tv.IsNil() {
		return true
	}
	switch e := e.(type) {
	case *ast.Ident:
		return isSentinelVar(pkg.Info.Uses[e])
	case *ast.SelectorExpr:
		return isSentinelVar(pkg.Info.Uses[e.Sel])
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			return prog.classifiedExpr(pkg, e.X)
		}
	case *ast.CompositeLit:
		if tv, ok := pkg.Info.Types[e]; ok {
			return hasIsMethod(tv.Type, pkg.Types)
		}
	case *ast.CallExpr:
		fn := calleeOf(pkg, e)
		if fn == nil {
			return false
		}
		if fn.Pkg() != nil && fn.Pkg().Path() == "fmt" && fn.Name() == "Errorf" {
			return errorfWrapsClassified(prog, pkg, e)
		}
		if s := prog.summaryOf(fn); s != nil && s.classifies {
			return true
		}
	}
	return false
}

// isSentinelVar reports whether obj is a package-level error variable
// — the ErrInvalid/ErrCorrupt sentinel pattern.
func isSentinelVar(obj types.Object) bool {
	v, ok := obj.(*types.Var)
	if !ok || v.Pkg() == nil {
		return false
	}
	return v.Parent() == v.Pkg().Scope() && isErrorType(v.Type())
}

// hasIsMethod reports whether t (or *t) defines Is(error) bool — the
// invalidError/badRequestError classification-wrapper pattern.
func hasIsMethod(t types.Type, from *types.Package) bool {
	for _, typ := range []types.Type{t, types.NewPointer(t)} {
		if obj, _, _ := types.LookupFieldOrMethod(typ, true, from, "Is"); obj != nil {
			if _, isFn := obj.(*types.Func); isFn {
				return true
			}
		}
	}
	return false
}

// errorfWrapsClassified reports whether a fmt.Errorf call both uses %w
// in its format and wraps at least one classified value (searching the
// argument trees, so append([]any{ErrCorrupt}, …) counts).
func errorfWrapsClassified(prog *Program, pkg *Package, call *ast.CallExpr) bool {
	if len(call.Args) == 0 || !formatHasWrapVerb(call.Args[0]) {
		return false
	}
	for _, arg := range call.Args[1:] {
		found := false
		ast.Inspect(arg, func(n ast.Node) bool {
			if found {
				return false
			}
			if e, ok := n.(ast.Expr); ok && prog.classifiedExpr(pkg, e) {
				found = true
				return false
			}
			return true
		})
		if found {
			return true
		}
	}
	return false
}

// formatHasWrapVerb scans a format expression (string literals, possibly
// concatenated) for %w.
func formatHasWrapVerb(e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.BasicLit:
		return containsWrapVerb(e.Value)
	case *ast.BinaryExpr:
		return formatHasWrapVerb(e.X) || formatHasWrapVerb(e.Y)
	}
	return false
}

func containsWrapVerb(lit string) bool {
	for i := 0; i+1 < len(lit); i++ {
		if lit[i] == '%' && lit[i+1] == 'w' {
			return true
		}
	}
	return false
}

// updateAllocParams re-derives which of s's parameters size an
// allocation; reports whether the set grew.
func updateAllocParams(prog *Program, s *funcSummary) bool {
	params := make(map[types.Object]int)
	sig := s.fn.Type().(*types.Signature)
	tparams := sig.Params()
	for i := 0; i < tparams.Len(); i++ {
		params[tparams.At(i)] = i
	}
	grew := false
	mark := func(e ast.Expr) {
		id, ok := ast.Unparen(e).(*ast.Ident)
		if !ok {
			return
		}
		if i, ok := params[s.pkg.Info.Uses[id]]; ok && !s.allocParams[i] {
			s.allocParams[i] = true
			grew = true
		}
	}
	ast.Inspect(s.decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if isBuiltinMake(s.pkg, call) {
			for _, sz := range call.Args[1:] {
				mark(sz)
			}
			return true
		}
		if cs := prog.summaryOf(calleeOf(s.pkg, call)); cs != nil {
			for i := range cs.allocParams {
				if i < len(call.Args) {
					mark(call.Args[i])
				}
			}
		}
		return true
	})
	return grew
}

// isBuiltinMake reports whether call invokes the make builtin with a
// size argument.
func isBuiltinMake(pkg *Package, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "make" || len(call.Args) < 2 {
		return false
	}
	_, isBuiltin := pkg.Info.Uses[id].(*types.Builtin)
	return isBuiltin
}
