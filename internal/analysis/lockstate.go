package analysis

// The shared intra-procedural lock tracker behind lockorder and
// waitunderlock. The walk is source-order and branch-insensitive: a
// Lock pushes, an Unlock pops its lock, a deferred Unlock holds to the
// end of the function. The early-unlock-and-return idiom
// (`if x { mu.Unlock(); return }`) therefore under-approximates the
// held set for the fall-through path — the safe direction for a vet
// tool. Function literals are walked inline at their definition point:
// the balanced Lock/Unlock bodies of deferred publish closures cancel
// out, and their lock usage still contributes to the enclosing
// function's summary.

import (
	"go/ast"
	"go/types"
)

type heldLock struct {
	obj   types.Object // the mutex field or package variable
	class string       // its //spatialvet:lockclass, "" if unclassified
}

// lockEvent is one call site presented to an analyzer together with
// the locks held when control reaches it. acquired is non-nil when the
// call itself is a Lock/RLock (held excludes it at that point).
type lockEvent struct {
	call     *ast.CallExpr
	acquired *heldLock
	held     []heldLock
}

// walkLockState drives visit over every call in decl with the tracked
// lock state.
func walkLockState(prog *Program, pkg *Package, decl *ast.FuncDecl, visit func(ev lockEvent)) {
	var held []heldLock
	skip := make(map[ast.Node]bool)
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeferStmt:
			// A deferred Unlock releases at return: the lock stays held
			// for the rest of the walk, so the release is dropped.
			if obj, op := lockOp(pkg, n.Call); obj != nil && op == opUnlock {
				skip[n.Call] = true
			}
		case *ast.CallExpr:
			if skip[n] {
				return true
			}
			obj, op := lockOp(pkg, n)
			switch op {
			case opLock:
				hl := heldLock{obj: obj, class: prog.directives.lockClass[obj]}
				visit(lockEvent{call: n, acquired: &hl, held: held})
				held = append(held, hl)
			case opUnlock:
				for i := len(held) - 1; i >= 0; i-- {
					if held[i].obj == obj {
						held = append(held[:i], held[i+1:]...)
						break
					}
				}
			default:
				visit(lockEvent{call: n, held: held})
			}
		}
		return true
	})
}

// funcDecls iterates the package's function declarations with bodies.
func funcDecls(pkg *Package, fn func(decl *ast.FuncDecl)) {
	for _, file := range pkg.Files {
		for _, d := range file.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				fn(fd)
			}
		}
	}
}
