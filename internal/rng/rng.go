// Package rng provides a small, fast, deterministic random number
// generator (SplitMix64) used throughout the repository. Determinism
// matters twice here: the paper's algorithms are Las Vegas (random-mate
// coin flips), so experiments must be re-runnable bit-for-bit from a seed,
// and the benchmark harness compares algorithm variants on identical
// random inputs.
package rng

// RNG is a SplitMix64 pseudo-random generator. The zero value is a valid
// generator seeded with 0; use New to seed explicitly.
type RNG struct {
	state uint64
}

// New returns a generator seeded with seed.
func New(seed uint64) *RNG {
	return &RNG{state: seed}
}

// Uint64 returns the next pseudo-random 64-bit value.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a pseudo-random int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Int63 returns a non-negative pseudo-random 63-bit integer.
func (r *RNG) Int63() int64 {
	return int64(r.Uint64() >> 1)
}

// Float64 returns a pseudo-random float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / float64(1<<53)
}

// Bool returns a fair pseudo-random coin flip. The paper's random-mate
// step (Section IV and V, COMPACT step 2) flips exactly such coins.
func (r *RNG) Bool() bool {
	return r.Uint64()&1 == 1
}

// Perm returns a pseudo-random permutation of [0, n) as a slice.
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.Shuffle(len(p), func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

// Shuffle performs a Fisher-Yates shuffle of n elements using swap.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		swap(i, r.Intn(i+1))
	}
}

// Split returns a new generator seeded from this one's stream, for
// handing independent deterministic streams to parallel workers.
func (r *RNG) Split() *RNG {
	return &RNG{state: r.Uint64()}
}
