package rng

import (
	"math"
	"testing"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
	c := New(43)
	same := 0
	a = New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical values", same)
	}
}

func TestIntnRange(t *testing.T) {
	r := New(1)
	for n := 1; n < 50; n++ {
		for i := 0; i < 100; i++ {
			if v := r.Intn(n); v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestFloat64Range(t *testing.T) {
	r := New(7)
	sum := 0.0
	const trials = 100000
	for i := 0; i < trials; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", v)
		}
		sum += v
	}
	if mean := sum / trials; math.Abs(mean-0.5) > 0.01 {
		t.Errorf("Float64 mean = %.4f, want about 0.5", mean)
	}
}

func TestBoolFair(t *testing.T) {
	r := New(99)
	heads := 0
	const trials = 100000
	for i := 0; i < trials; i++ {
		if r.Bool() {
			heads++
		}
	}
	if ratio := float64(heads) / trials; math.Abs(ratio-0.5) > 0.01 {
		t.Errorf("Bool heads ratio = %.4f, want about 0.5", ratio)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(5)
	for _, n := range []int{0, 1, 2, 10, 1000} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d): invalid or duplicate value %d", n, v)
			}
			seen[v] = true
		}
	}
}

func TestPermUniformish(t *testing.T) {
	// Position of element 0 should be roughly uniform.
	r := New(11)
	const n, trials = 8, 20000
	counts := make([]int, n)
	for i := 0; i < trials; i++ {
		p := r.Perm(n)
		for pos, v := range p {
			if v == 0 {
				counts[pos]++
			}
		}
	}
	want := float64(trials) / n
	for pos, c := range counts {
		if math.Abs(float64(c)-want) > want*0.15 {
			t.Errorf("element 0 at position %d: %d times, want about %.0f", pos, c, want)
		}
	}
}

func TestSplitIndependence(t *testing.T) {
	r := New(3)
	a := r.Split()
	b := r.Split()
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("split streams collided %d times", same)
	}
}

func TestZeroValueUsable(t *testing.T) {
	var r RNG
	if v := r.Intn(10); v < 0 || v >= 10 {
		t.Fatalf("zero-value RNG Intn out of range: %d", v)
	}
}
