// Package xstat provides the small statistics and table-formatting
// helpers used by the experiment harness: growth-exponent fits on
// log-log data (the tool for checking the paper's asymptotic claims
// empirically) and aligned plain-text tables.
package xstat

import (
	"fmt"
	"math"
	"strings"
)

// Mean returns the arithmetic mean (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation.
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)))
}

// LogLogSlope fits log(y) = a + b·log(x) by least squares and returns b:
// the empirical growth exponent of y in x. NaN for fewer than two
// points or non-positive data.
func LogLogSlope(xs, ys []float64) float64 {
	if len(xs) != len(ys) || len(xs) < 2 {
		return math.NaN()
	}
	n := float64(len(xs))
	var sx, sy, sxx, sxy float64
	for i := range xs {
		if xs[i] <= 0 || ys[i] <= 0 {
			return math.NaN()
		}
		lx, ly := math.Log(xs[i]), math.Log(ys[i])
		sx += lx
		sy += ly
		sxx += lx * lx
		sxy += lx * ly
	}
	return (n*sxy - sx*sy) / (n*sxx - sx*sx)
}

// Table is an aligned plain-text table for experiment output.
type Table struct {
	Title  string
	Notes  []string
	Header []string
	Rows   [][]string
}

// Add appends a row.
func (t *Table) Add(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Note appends a free-text note printed under the table.
func (t *Table) Note(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.Title)
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[min(i, len(widths)-1)], c)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// CSV renders the table as comma-separated values (header row first,
// then data rows; title and notes become comment lines starting with #).
func (t *Table) CSV() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "# %s\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"\n") {
				c = "\"" + strings.ReplaceAll(c, "\"", "\"\"") + "\""
			}
			b.WriteString(c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "# %s\n", n)
	}
	return b.String()
}

// F formats a float with the given precision.
func F(v float64, prec int) string { return fmt.Sprintf("%.*f", prec, v) }

// I formats an integer.
func I[T ~int | ~int32 | ~int64](v T) string { return fmt.Sprintf("%d", v) }

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
