package xstat

import (
	"math"
	"strings"
	"testing"
)

func TestMeanStdDev(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("empty mean")
	}
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Errorf("mean = %v", got)
	}
	if got := StdDev([]float64{2, 2, 2}); got != 0 {
		t.Errorf("stddev of constant = %v", got)
	}
	if got := StdDev([]float64{0, 2}); got != 1 {
		t.Errorf("stddev = %v", got)
	}
}

func TestLogLogSlope(t *testing.T) {
	// y = x^1.5 exactly.
	var xs, ys []float64
	for _, x := range []float64{4, 16, 64, 256} {
		xs = append(xs, x)
		ys = append(ys, math.Pow(x, 1.5))
	}
	if got := LogLogSlope(xs, ys); math.Abs(got-1.5) > 1e-9 {
		t.Errorf("slope = %v, want 1.5", got)
	}
	if !math.IsNaN(LogLogSlope([]float64{1}, []float64{1})) {
		t.Error("single point should be NaN")
	}
	if !math.IsNaN(LogLogSlope([]float64{1, -2}, []float64{1, 2})) {
		t.Error("negative data should be NaN")
	}
}

func TestTableRendering(t *testing.T) {
	tb := &Table{Title: "demo", Header: []string{"n", "energy"}}
	tb.Add("16", "123")
	tb.Add("1024", "9")
	tb.Note("slope %.2f", 1.5)
	out := tb.String()
	for _, want := range []string{"== demo ==", "n", "energy", "1024", "note: slope 1.50"} {
		if !strings.Contains(out, want) {
			t.Errorf("table output missing %q:\n%s", want, out)
		}
	}
	// Columns aligned: header width respects widest cell.
	lines := strings.Split(out, "\n")
	if len(lines) < 5 {
		t.Fatalf("unexpected line count: %v", lines)
	}
}

func TestCSVRendering(t *testing.T) {
	tb := &Table{Title: "demo", Header: []string{"a", "b"}}
	tb.Add("1", "x,y")
	tb.Note("hello")
	out := tb.CSV()
	for _, want := range []string{"# demo", "a,b", "1,\"x,y\"", "# hello"} {
		if !strings.Contains(out, want) {
			t.Errorf("CSV missing %q:\n%s", want, out)
		}
	}
	quoted := &Table{Header: []string{"q"}}
	quoted.Add(`say "hi"`)
	if !strings.Contains(quoted.CSV(), `"say ""hi"""`) {
		t.Errorf("CSV quote escaping broken: %s", quoted.CSV())
	}
}

func TestFormatters(t *testing.T) {
	if F(1.23456, 2) != "1.23" {
		t.Error("F")
	}
	if I(42) != "42" {
		t.Error("I int")
	}
	if I(int64(7)) != "7" {
		t.Error("I int64")
	}
}
