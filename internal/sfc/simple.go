package sfc

// RowMajor visits the grid row by row, each row left to right. It is the
// natural "flat array" layout and the paper's implicit strawman: stepping
// from the end of one row to the start of the next costs side-1 energy, so
// the curve is not distance-bound and long-range structure in an order is
// punished with Θ(√n)-distance hops.
type RowMajor struct{}

// Name implements Curve.
func (RowMajor) Name() string { return "rowmajor" }

// Side implements Curve: any positive side is legal.
func (RowMajor) Side(n int) int { return anySide(n) }

// XY implements Curve.
func (RowMajor) XY(i, side int) (x, y int) {
	checkIndex(i, side, "rowmajor")
	return i % side, i / side
}

// Index implements Curve.
func (RowMajor) Index(x, y, side int) int {
	checkPoint(x, y, side, "rowmajor")
	return y*side + x
}

// Snake visits the grid row by row in boustrophedon order: even rows left
// to right, odd rows right to left. Consecutive indices are always grid
// neighbors, but the curve is still not distance-bound: indices one row
// apart can be nearly 2·side steps apart along the curve yet the reverse
// map spreads j consecutive elements over only Θ(j/side) rows, giving
// dist(i, i+j) = Θ(min(j, side)) rather than O(√j).
type Snake struct{}

// Name implements Curve.
func (Snake) Name() string { return "snake" }

// Side implements Curve: any positive side is legal.
func (Snake) Side(n int) int { return anySide(n) }

// XY implements Curve.
func (Snake) XY(i, side int) (x, y int) {
	checkIndex(i, side, "snake")
	y = i / side
	x = i % side
	if y%2 == 1 {
		x = side - 1 - x
	}
	return x, y
}

// Index implements Curve.
func (Snake) Index(x, y, side int) int {
	checkPoint(x, y, side, "snake")
	if y%2 == 1 {
		x = side - 1 - x
	}
	return y*side + x
}
