package sfc

import (
	"math"
	"testing"
)

// TestMeasurePinnedAcrossCurves pins the measured predictor values —
// exact distance-bound constant, alignment factor and continuity — for
// every tuner-candidate curve at several legal sides. These are the
// numbers the online tuner ranks layouts by (internal/tune), so they
// are pinned exactly: a drift here silently reorders every tuning
// decision. The values themselves tell the paper's story — Hilbert and
// Moore hold α < 3 and stay 2-aligned at every side, Peano's constant
// is slightly worse on its 3^k grids, the snake's α grows like √side,
// and the Z curve's α and alignment blow up linearly (not
// distance-bound, which is why Theorem 2 treats it separately).
func TestMeasurePinnedAcrossCurves(t *testing.T) {
	if testing.Short() {
		t.Skip("quadratic exact scans")
	}
	cases := []struct {
		c          Curve
		side       int
		alpha      float64
		align      float64
		continuous bool
	}{
		{Hilbert{}, 8, 2.5, 2, true},
		{Hilbert{}, 16, 2.75, 2, true},
		{Hilbert{}, 32, 2.875, 2, true},
		{Moore{}, 8, 2.5, 2, true},
		{Moore{}, 16, 2.75, 2, true},
		{Moore{}, 32, 2.875, 2, true},
		{Peano{}, 9, 2.672612, 2.25, true},
		{Peano{}, 27, 3.078215, 2.25, true},
		{ZOrder{}, 8, 8, 4, false},
		{ZOrder{}, 16, 16, 8, false},
		{ZOrder{}, 32, 32, 16, false},
		{Snake{}, 8, 3, 2, true},
		{Snake{}, 16, 4.123106, 4, true},
		{Snake{}, 32, 5.744563, 4, true},
	}
	const tol = 1e-5
	for _, tc := range cases {
		db := MeasureDistanceBound(tc.c, tc.side)
		if math.Abs(db.Alpha-tc.alpha) > tol {
			t.Errorf("%s side %d: alpha = %.6f, pinned %.6f (witness i=%d j=%d)",
				tc.c.Name(), tc.side, db.Alpha, tc.alpha, db.ArgI, db.ArgJ)
		}
		if db.Curve != tc.c.Name() || db.Side != tc.side {
			t.Errorf("%s side %d: bound labeled %s/%d", tc.c.Name(), tc.side, db.Curve, db.Side)
		}
		if got := AlignmentFactor(tc.c, tc.side); math.Abs(got-tc.align) > tol {
			t.Errorf("%s side %d: alignment factor = %.6f, pinned %.6f", tc.c.Name(), tc.side, got, tc.align)
		}
		if got := IsContinuous(tc.c, tc.side); got != tc.continuous {
			t.Errorf("%s side %d: IsContinuous = %v, pinned %v", tc.c.Name(), tc.side, got, tc.continuous)
		}
	}
}

// TestMeasureTunerRankingStable pins the relative order the tuner
// depends on: at every probe side, quality (sampled α × alignment) must
// rank hilbert/moore ahead of peano ahead of snake ahead of zorder.
func TestMeasureTunerRankingStable(t *testing.T) {
	quality := func(c Curve, pts int) float64 {
		side := c.Side(pts)
		return MeasureDistanceBoundSampled(c, side).Alpha * AlignmentFactor(c, side)
	}
	for _, pts := range []int{256, 1024, 4096} {
		h, m := quality(Hilbert{}, pts), quality(Moore{}, pts)
		p, s, z := quality(Peano{}, pts), quality(Snake{}, pts), quality(ZOrder{}, pts)
		if h > p || m > p {
			t.Errorf("%d pts: hilbert %.3f / moore %.3f not ahead of peano %.3f", pts, h, m, p)
		}
		if p > s {
			t.Errorf("%d pts: peano %.3f not ahead of snake %.3f", pts, p, s)
		}
		if s > z {
			t.Errorf("%d pts: snake %.3f not ahead of zorder %.3f", pts, s, z)
		}
	}
}
