package sfc

// Scatter is a pseudo-random placement: a fixed Feistel-network bijection
// on [0, side²) composed with row-major placement. It models the complete
// absence of locality — the expected distance between any two indices is
// Θ(side) — and serves as the PRAM-style baseline: a PRAM algorithm's
// memory has no spatial structure, so simulating it on the grid behaves
// like messaging between scattered cells (Section I-B, "PRAM").
//
// The permutation is deterministic (fixed keys), so Scatter is a Curve in
// the full sense: a bijection with a computable inverse.
type Scatter struct{}

// Name implements Curve.
func (Scatter) Name() string { return "scatter" }

// Side implements Curve: the Feistel construction needs an even number of
// index bits, so the side must be a power of two.
func (Scatter) Side(n int) int { return pow2Side(n) }

// feistelKeys are arbitrary fixed round keys; four rounds of a balanced
// Feistel network yield a well-mixed bijection.
var feistelKeys = [4]uint64{0x9e3779b97f4a7c15, 0xbf58476d1ce4e5b9, 0x94d049bb133111eb, 0xd6e8feb86659fd93}

// feistelRound mixes a half-index with a round key.
func feistelRound(half, key uint64, bits uint) uint64 {
	x := half*0x2545f4914f6cdd1d + key
	x ^= x >> 29
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 32
	return x & ((1 << bits) - 1)
}

// permute applies the Feistel permutation on b-bit halves (2b-bit domain).
func permute(i uint64, bits uint, inverse bool) uint64 {
	mask := uint64(1)<<bits - 1
	l, r := i>>bits, i&mask
	if !inverse {
		for _, k := range feistelKeys {
			l, r = r, l^feistelRound(r, k, bits)
		}
	} else {
		for j := len(feistelKeys) - 1; j >= 0; j-- {
			l, r = r^feistelRound(l, feistelKeys[j], bits), l
		}
	}
	return l<<bits | r
}

// halfBits returns b such that side*side == 1<<(2b).
func halfBits(side int) uint {
	b := uint(0)
	for s := 1; s < side; s *= 2 {
		b++
	}
	return b
}

// XY implements Curve.
func (Scatter) XY(i, side int) (x, y int) {
	if !isPow2(side) {
		panic("sfc: scatter side must be a power of two")
	}
	checkIndex(i, side, "scatter")
	p := int(permute(uint64(i), halfBits(side), false))
	return p % side, p / side
}

// Index implements Curve.
func (Scatter) Index(x, y, side int) int {
	if !isPow2(side) {
		panic("sfc: scatter side must be a power of two")
	}
	checkPoint(x, y, side, "scatter")
	return int(permute(uint64(y*side+x), halfBits(side), true))
}
