// Package sfc implements the discrete space-filling curves used by the
// spatial tree layouts of Baumann et al., "Low-Depth Spatial Tree
// Algorithms" (IPDPS 2024): the Hilbert, Moore, Peano and Z (Morton)
// curves, plus row-major, boustrophedon and pseudo-random scatter
// baselines.
//
// A discrete space-filling curve maps a linear index i onto a point of a
// side×side grid. The paper's layouts store the i-th vertex of a linear
// tree order at the i-th point of a curve; the curve's locality then
// determines the energy (total Manhattan distance) of tree messaging.
//
// Curves differ in which grid sides they are defined on: the Hilbert,
// Moore, Z and scatter curves require side = 2^k, the Peano curve requires
// side = 3^k, and the trivial row-major/snake orders accept any side.
// Side(n) reports the smallest legal side whose grid holds n points.
package sfc

import "fmt"

// Curve maps linear indices onto points of a side×side grid.
//
// Implementations must be bijections: for every legal side s and every
// i in [0, s*s), Index(XY(i, s)) == i.
type Curve interface {
	// Name returns the canonical lower-case name of the curve.
	Name() string

	// Side returns the smallest side length s legal for this curve with
	// s*s >= n. It panics if n is negative.
	Side(n int) int

	// XY returns the grid coordinates of the i-th point along the curve
	// on a side×side grid. It panics if i is out of [0, side*side) or if
	// side is not legal for the curve.
	XY(i, side int) (x, y int)

	// Index returns the position of grid point (x, y) along the curve.
	// It is the inverse of XY.
	Index(x, y, side int) int
}

// Manhattan returns the Manhattan (L1) distance |x1-x2| + |y1-y2|,
// the energy cost of one message in the spatial computer model.
func Manhattan(x1, y1, x2, y2 int) int {
	dx := x1 - x2
	if dx < 0 {
		dx = -dx
	}
	dy := y1 - y2
	if dy < 0 {
		dy = -dy
	}
	return dx + dy
}

// Dist returns the Manhattan distance between the i-th and j-th points of
// curve c on a side×side grid.
func Dist(c Curve, i, j, side int) int {
	x1, y1 := c.XY(i, side)
	x2, y2 := c.XY(j, side)
	return Manhattan(x1, y1, x2, y2)
}

// pow2Side returns the smallest power of two s with s*s >= n.
func pow2Side(n int) int {
	if n < 0 {
		panic("sfc: negative point count")
	}
	s := 1
	for s*s < n {
		s *= 2
	}
	return s
}

// pow3Side returns the smallest power of three s with s*s >= n.
func pow3Side(n int) int {
	if n < 0 {
		panic("sfc: negative point count")
	}
	s := 1
	for s*s < n {
		s *= 3
	}
	return s
}

// anySide returns the smallest s with s*s >= n (no structural constraint).
func anySide(n int) int {
	if n < 0 {
		panic("sfc: negative point count")
	}
	s := 0
	for s*s < n {
		s++
	}
	if s == 0 {
		s = 1
	}
	return s
}

func isPow2(s int) bool {
	return s > 0 && s&(s-1) == 0
}

func isPow3(s int) bool {
	if s <= 0 {
		return false
	}
	for s%3 == 0 {
		s /= 3
	}
	return s == 1
}

func checkIndex(i, side int, name string) {
	if i < 0 || i >= side*side {
		panic(fmt.Sprintf("sfc: %s index %d out of range for side %d", name, i, side))
	}
}

func checkPoint(x, y, side int, name string) {
	if x < 0 || x >= side || y < 0 || y >= side {
		panic(fmt.Sprintf("sfc: %s point (%d,%d) out of range for side %d", name, x, y, side))
	}
}

// Registry lists every curve shipped by this package, in a stable order
// suitable for experiment tables: the distance-bound curves first, then the
// Z curve (energy-bound but not distance-bound, Theorem 2), then the
// baselines.
func Registry() []Curve {
	return []Curve{
		Hilbert{},
		Moore{},
		Peano{},
		ZOrder{},
		Snake{},
		RowMajor{},
		Scatter{},
	}
}

// ByName returns the registered curve with the given name.
func ByName(name string) (Curve, error) {
	for _, c := range Registry() {
		if c.Name() == name {
			return c, nil
		}
	}
	return nil, fmt.Errorf("sfc: unknown curve %q", name)
}
