package sfc

// Peano is the classic Peano curve on 3^k × 3^k grids (Section II-B). It
// is distance-bound with constant α = sqrt(10+2/3) ≈ 3.266 (Bader,
// "Space-Filling Curves"). The curve serpentines through 3×3 blocks:
// within a block, columns are walked bottom-to-top, top-to-bottom,
// bottom-to-top; sub-blocks are reflected so that the walk stays
// continuous.
//
// The implementation uses the digit formulation: write i in base 3 with
// 2k digits d1 d2 … d2k (most significant first). The odd-position digits
// form x and the even-position digits form y, where a digit is
// complemented (d → 2-d) iff the running sum of the digits assigned to
// the *other* coordinate so far is odd.
type Peano struct{}

// Name implements Curve.
func (Peano) Name() string { return "peano" }

// Side implements Curve: the Peano curve requires a power-of-three side.
func (Peano) Side(n int) int { return pow3Side(n) }

// XY implements Curve.
func (Peano) XY(i, side int) (x, y int) {
	if !isPow3(side) {
		panic("sfc: peano side must be a power of three")
	}
	checkIndex(i, side, "peano")
	// Extract base-3 digits of i, most significant first, 2k of them.
	k := 0
	for s := 1; s < side; s *= 3 {
		k++
	}
	digits := make([]int, 2*k)
	for p := 2*k - 1; p >= 0; p-- {
		digits[p] = i % 3
		i /= 3
	}
	sumX, sumY := 0, 0 // running digit sums per coordinate
	for p, d := range digits {
		if p%2 == 0 { // x digit; complement if y-digit sum so far is odd
			if sumY%2 == 1 {
				d = 2 - d
			}
			x = x*3 + d
			sumX += digits[p]
		} else { // y digit; complement if x-digit sum so far is odd
			if sumX%2 == 1 {
				d = 2 - d
			}
			y = y*3 + d
			sumY += digits[p]
		}
	}
	return x, y
}

// Index implements Curve; it is the inverse of XY.
func (Peano) Index(x, y, side int) int {
	if !isPow3(side) {
		panic("sfc: peano side must be a power of three")
	}
	checkPoint(x, y, side, "peano")
	k := 0
	for s := 1; s < side; s *= 3 {
		k++
	}
	xd := make([]int, k)
	yd := make([]int, k)
	for p := k - 1; p >= 0; p-- {
		xd[p] = x % 3
		x /= 3
		yd[p] = y % 3
		y /= 3
	}
	i := 0
	sumX, sumY := 0, 0
	for p := 0; p < k; p++ {
		// Undo the x-digit complement: the output digit xd[p] equals the
		// original digit complemented iff sumY is odd.
		dx := xd[p]
		if sumY%2 == 1 {
			dx = 2 - dx
		}
		i = i*3 + dx
		sumX += dx
		dy := yd[p]
		if sumX%2 == 1 {
			dy = 2 - dy
		}
		i = i*3 + dy
		sumY += dy
	}
	return i
}
