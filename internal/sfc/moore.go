package sfc

// Moore is the Moore curve: a closed variant of the Hilbert curve built
// from four rotated Hilbert curves of half the side, forming a cycle. Like
// the Hilbert curve it is distance-bound and aligned, so light-first
// layouts on it are energy-bound (Theorem 1). Its closure makes it a
// convenient curve for ring-style collectives on the same placement.
//
// Construction (side = 2s): the two left quadrants hold clockwise-rotated
// Hilbert curves traversed bottom-to-top along the shared column x = s-1,
// and the two right quadrants hold counter-clockwise-rotated curves
// traversed top-to-bottom along the column x = s. The walk
// (s-1,0) … (s-1,2s-1), (s,2s-1) … (s,0) closes back to the start.
type Moore struct{}

// Name implements Curve.
func (Moore) Name() string { return "moore" }

// Side implements Curve: the Moore curve requires a power-of-two side >= 2.
func (Moore) Side(n int) int {
	s := pow2Side(n)
	if s < 2 {
		s = 2
	}
	return s
}

// XY implements Curve.
func (Moore) XY(i, side int) (x, y int) {
	if !isPow2(side) || side < 2 {
		panic("sfc: moore side must be a power of two >= 2")
	}
	checkIndex(i, side, "moore")
	s := side / 2
	q := i / (s * s)
	j := i % (s * s)
	hx, hy := Hilbert{}.XY(j, s)
	switch q {
	case 0: // lower-left, clockwise rotation: (x,y) -> (s-1-y, x)
		return s - 1 - hy, hx
	case 1: // upper-left, clockwise rotation, shifted up
		return s - 1 - hy, hx + s
	case 2: // upper-right, counter-clockwise rotation: (x,y) -> (y, s-1-x)
		return hy + s, s - 1 - hx + s
	default: // lower-right, counter-clockwise rotation
		return hy + s, s - 1 - hx
	}
}

// Index implements Curve; it is the inverse of XY.
func (Moore) Index(x, y, side int) int {
	if !isPow2(side) || side < 2 {
		panic("sfc: moore side must be a power of two >= 2")
	}
	checkPoint(x, y, side, "moore")
	s := side / 2
	var q, hx, hy int
	switch {
	case x < s && y < s: // lower-left: invert (s-1-hy, hx)
		q, hx, hy = 0, y, s-1-x
	case x < s: // upper-left
		q, hx, hy = 1, y-s, s-1-x
	case y >= s: // upper-right: invert (hy+s, 2s-1-hx)
		q, hx, hy = 2, s-1-(y-s), x-s
	default: // lower-right
		q, hx, hy = 3, s-1-y, x-s
	}
	return q*s*s + Hilbert{}.Index(hx, hy, s)
}
