package sfc

// ZOrder is the Z (Morton) curve of Section II-B: the grid is split into
// four quadrants visited recursively in the order upper-left, upper-right,
// lower-left, lower-right. Unlike the Hilbert curve the Z curve is NOT
// distance-bound — consecutive points can be a full diagonal apart — yet
// Theorem 2 of the paper shows Z-light-first order is still energy-bound,
// because each diagonal is the longest crossing only O(log) many times
// (Lemmas 5–7). DiagonalLength exposes the diagonal structure used by that
// analysis.
type ZOrder struct{}

// Name implements Curve.
func (ZOrder) Name() string { return "zorder" }

// Side implements Curve: the Z curve requires a power-of-two side.
func (ZOrder) Side(n int) int { return pow2Side(n) }

// XY implements Curve by de-interleaving the bits of i. The even bits give
// the column x; the odd bits select the quadrant row from the top, matching
// the paper's upper-left-first visiting order (Figure 2).
func (ZOrder) XY(i, side int) (x, y int) {
	if !isPow2(side) {
		panic("sfc: zorder side must be a power of two")
	}
	checkIndex(i, side, "zorder")
	var row int
	for b := 0; (1 << b) < side; b++ {
		x |= (i >> (2 * b) & 1) << b
		row |= (i >> (2*b + 1) & 1) << b
	}
	// Row 0 is the top of the grid; grid coordinates grow upward.
	return x, side - 1 - row
}

// Index implements Curve; it is the inverse of XY.
func (ZOrder) Index(x, y, side int) int {
	if !isPow2(side) {
		panic("sfc: zorder side must be a power of two")
	}
	checkPoint(x, y, side, "zorder")
	row := side - 1 - y
	i := 0
	for b := 0; (1 << b) < side; b++ {
		i |= (x >> b & 1) << (2 * b)
		i |= (row >> b & 1) << (2*b + 1)
	}
	return i
}

// DiagonalLength returns the length of the longest diagonal crossed when
// stepping from point i to point j of the Z curve, in the sense of
// Lemma 3: the side length of the smallest power-of-two-aligned square
// subgrid containing both indices. (The paper defines a diagonal's length
// as one less than its Manhattan distance; the Manhattan length of a
// diagonal is one larger than the side of that subgrid.) Indices in the
// same cell return 0.
func (ZOrder) DiagonalLength(i, j int) int {
	if i == j {
		return 0
	}
	if j < i {
		i, j = j, i
	}
	// The smallest aligned block containing both i and j has 4^k cells
	// where k is the position of the highest differing bit pair.
	diff := i ^ j
	k := 0
	for diff > 3 {
		diff >>= 2
		k++
	}
	// Block of 4^(k+1) cells has side 2^(k+1); diagonal length is its side.
	side := 1 << (k + 1)
	return side
}
