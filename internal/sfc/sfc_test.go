package sfc

import (
	"math"
	"testing"
	"testing/quick"
)

// sidesFor returns a few legal sides for the curve, small enough for
// exhaustive checks.
func sidesFor(c Curve) []int {
	switch c.(type) {
	case Peano:
		return []int{1, 3, 9, 27}
	case Moore:
		return []int{2, 4, 8, 16, 32}
	default:
		return []int{1, 2, 4, 8, 16, 32}
	}
}

func TestBijectionExhaustive(t *testing.T) {
	for _, c := range Registry() {
		for _, side := range sidesFor(c) {
			n := side * side
			seen := make(map[[2]int]bool, n)
			for i := 0; i < n; i++ {
				x, y := c.XY(i, side)
				if x < 0 || x >= side || y < 0 || y >= side {
					t.Fatalf("%s side %d: XY(%d) = (%d,%d) out of grid", c.Name(), side, i, x, y)
				}
				if seen[[2]int{x, y}] {
					t.Fatalf("%s side %d: point (%d,%d) visited twice", c.Name(), side, x, y)
				}
				seen[[2]int{x, y}] = true
				if got := c.Index(x, y, side); got != i {
					t.Fatalf("%s side %d: Index(XY(%d)) = %d", c.Name(), side, i, got)
				}
			}
			if len(seen) != n {
				t.Fatalf("%s side %d: covered %d of %d points", c.Name(), side, len(seen), n)
			}
		}
	}
}

func TestBijectionQuick(t *testing.T) {
	for _, c := range Registry() {
		c := c
		side := c.Side(1 << 12)
		f := func(raw uint32) bool {
			i := int(raw) % (side * side)
			x, y := c.XY(i, side)
			return c.Index(x, y, side) == i
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
			t.Errorf("%s: round-trip failed: %v", c.Name(), err)
		}
	}
}

func TestSideLegality(t *testing.T) {
	cases := []struct {
		c    Curve
		n    int
		want int
	}{
		{Hilbert{}, 1, 1},
		{Hilbert{}, 2, 2},
		{Hilbert{}, 5, 4},
		{Hilbert{}, 16, 4},
		{Hilbert{}, 17, 8},
		{ZOrder{}, 100, 16},
		{Peano{}, 2, 3},
		{Peano{}, 9, 3},
		{Peano{}, 10, 9},
		{Peano{}, 82, 27},
		{Moore{}, 1, 2},
		{RowMajor{}, 10, 4},
		{RowMajor{}, 17, 5},
		{Snake{}, 1, 1},
		{Scatter{}, 3, 2},
	}
	for _, tc := range cases {
		if got := tc.c.Side(tc.n); got != tc.want {
			t.Errorf("%s.Side(%d) = %d, want %d", tc.c.Name(), tc.n, got, tc.want)
		}
	}
}

func TestContinuity(t *testing.T) {
	continuous := map[string]bool{
		"hilbert": true, "moore": true, "peano": true, "snake": true,
		"zorder": false, "rowmajor": false, "scatter": false,
	}
	for _, c := range Registry() {
		side := c.Side(64)
		if side < 2 {
			side = c.Side(4)
		}
		got := IsContinuous(c, side)
		if want := continuous[c.Name()]; got != want {
			t.Errorf("%s side %d: IsContinuous = %v, want %v", c.Name(), side, got, want)
		}
	}
}

func TestMooreClosed(t *testing.T) {
	for _, side := range []int{2, 4, 8, 16} {
		if !IsClosed(Moore{}, side) {
			t.Errorf("moore side %d: curve is not closed", side)
		}
	}
	if IsClosed(Hilbert{}, 8) {
		t.Error("hilbert side 8: unexpectedly closed")
	}
}

func TestHilbertKnownValues(t *testing.T) {
	// Order-1 Hilbert curve (side 2) in the paper's orientation:
	// starts at (0,0), ends at (1,0).
	want := [][2]int{{0, 0}, {0, 1}, {1, 1}, {1, 0}}
	for i, w := range want {
		x, y := (Hilbert{}).XY(i, 2)
		if x != w[0] || y != w[1] {
			t.Errorf("hilbert side 2: XY(%d) = (%d,%d), want (%d,%d)", i, x, y, w[0], w[1])
		}
	}
	// The endpoints of any order: (0,0) and (side-1, 0).
	for _, side := range []int{2, 4, 8, 16, 32} {
		if x, y := (Hilbert{}).XY(0, side); x != 0 || y != 0 {
			t.Errorf("hilbert side %d: start (%d,%d), want (0,0)", side, x, y)
		}
		if x, y := (Hilbert{}).XY(side*side-1, side); x != side-1 || y != 0 {
			t.Errorf("hilbert side %d: end (%d,%d), want (%d,0)", side, x, y, side-1)
		}
	}
}

func TestZOrderKnownValues(t *testing.T) {
	// Figure 2 of the paper: 16 elements, upper-left quadrant first.
	// Index 0 is the upper-left cell; in grid coordinates with y growing
	// upward that is (0, 3).
	z := ZOrder{}
	wantTop := [][2]int{{0, 3}, {1, 3}, {0, 2}, {1, 2}}
	for i, w := range wantTop {
		x, y := z.XY(i, 4)
		if x != w[0] || y != w[1] {
			t.Errorf("zorder side 4: XY(%d) = (%d,%d), want (%d,%d)", i, x, y, w[0], w[1])
		}
	}
	// Figure 2 also fixes indices 6 and 10 on opposite sides of the long
	// diagonal: 6 is in the upper-right quadrant, 10 in the lower-left.
	x6, _ := z.XY(6, 4)
	x10, _ := z.XY(10, 4)
	if x6 < 2 {
		t.Errorf("zorder: index 6 should be in the right half, got x=%d", x6)
	}
	if x10 >= 2 {
		t.Errorf("zorder: index 10 should be in the left half, got x=%d", x10)
	}
	// Ed(6, 10) = 4 in the paper's example: Manhattan length of the
	// longest diagonal is one larger than the subgrid side... the longest
	// diagonal between 6 and 10 spans the full 4x4 block.
	if got := z.DiagonalLength(6, 10); got != 4 {
		t.Errorf("zorder: DiagonalLength(6,10) = %d, want 4", got)
	}
	if got := z.DiagonalLength(4, 5); got != 2 {
		t.Errorf("zorder: DiagonalLength(4,5) = %d, want 2", got)
	}
	if got := z.DiagonalLength(3, 3); got != 0 {
		t.Errorf("zorder: DiagonalLength(3,3) = %d, want 0", got)
	}
}

func TestPeanoKnownValues(t *testing.T) {
	// Base 3x3 Peano block: serpentine columns starting up the x=0 column.
	want := [][2]int{{0, 0}, {0, 1}, {0, 2}, {1, 2}, {1, 1}, {1, 0}, {2, 0}, {2, 1}, {2, 2}}
	for i, w := range want {
		x, y := (Peano{}).XY(i, 3)
		if x != w[0] || y != w[1] {
			t.Errorf("peano side 3: XY(%d) = (%d,%d), want (%d,%d)", i, x, y, w[0], w[1])
		}
	}
}

func TestSnakeRowMajorKnownValues(t *testing.T) {
	if x, y := (RowMajor{}).XY(5, 4); x != 1 || y != 1 {
		t.Errorf("rowmajor: XY(5) = (%d,%d), want (1,1)", x, y)
	}
	if x, y := (Snake{}).XY(5, 4); x != 2 || y != 1 {
		t.Errorf("snake: XY(5) = (%d,%d), want (2,1)", x, y)
	}
}

func TestDistanceBoundConstants(t *testing.T) {
	// Exact scan on a side-32 grid: the distance-bound curves must stay
	// below their literature constants (+ small lower-order slack); the
	// Z curve must exceed them.
	if testing.Short() {
		t.Skip("quadratic scan")
	}
	cases := []struct {
		c     Curve
		side  int
		limit float64
	}{
		{Hilbert{}, 32, 3.001},
		{Moore{}, 32, 3.001},
		{Peano{}, 27, 3.267},
	}
	for _, tc := range cases {
		got := MeasureDistanceBound(tc.c, tc.side)
		if got.Alpha > tc.limit {
			t.Errorf("%s side %d: alpha = %.4f > %.4f (at i=%d j=%d)",
				tc.c.Name(), tc.side, got.Alpha, tc.limit, got.ArgI, got.ArgJ)
		}
		if got.Alpha < 1.0 {
			t.Errorf("%s side %d: alpha = %.4f implausibly small", tc.c.Name(), tc.side, got.Alpha)
		}
	}
	z := MeasureDistanceBound(ZOrder{}, 32)
	if z.Alpha < 5 {
		t.Errorf("zorder side 32: alpha = %.4f, expected large (not distance-bound)", z.Alpha)
	}
}

func TestZOrderAlphaGrows(t *testing.T) {
	// Not distance-bound: the measured alpha must grow with the side.
	a8 := MeasureDistanceBoundSampled(ZOrder{}, 8).Alpha
	a64 := MeasureDistanceBoundSampled(ZOrder{}, 64).Alpha
	if a64 <= a8*1.5 {
		t.Errorf("zorder alpha did not grow: side 8 -> %.3f, side 64 -> %.3f", a8, a64)
	}
	// Distance-bound: Hilbert's alpha must be stable.
	h8 := MeasureDistanceBoundSampled(Hilbert{}, 8).Alpha
	h64 := MeasureDistanceBoundSampled(Hilbert{}, 64).Alpha
	if h64 > h8*1.5 {
		t.Errorf("hilbert alpha grew: side 8 -> %.3f, side 64 -> %.3f", h8, h64)
	}
}

func TestAlignmentFactor(t *testing.T) {
	// Lemma 4: Hilbert and Moore are aligned (factor <= 2 over ALL runs).
	for _, c := range []Curve{Hilbert{}, Moore{}} {
		if f := AlignmentFactor(c, 32); f > 2.0+1e-9 {
			t.Errorf("%s side 32: alignment factor %.3f > 2", c.Name(), f)
		}
	}
	// The Z curve is NOT aligned over arbitrary runs: misaligned windows
	// straddle diagonals (this is why Theorem 2 needs Lemmas 5-7).
	if f := AlignmentFactor(ZOrder{}, 32); f <= 2.0 {
		t.Errorf("zorder side 32: alignment factor %.3f, expected > 2 for misaligned runs", f)
	}
	// ... but aligned Z runs of 4^k elements occupy exactly a 2^k box
	// (Lemma 3, first claim).
	if f := AlignedWindowFactor(ZOrder{}, 32); f != 1.0 {
		t.Errorf("zorder side 32: aligned-window factor %.3f, want exactly 1", f)
	}
	// Row-major is badly unaligned: 4 consecutive cells span 4 columns.
	if f := AlignmentFactor(RowMajor{}, 32); f < 1.9 {
		t.Errorf("rowmajor side 32: alignment factor %.3f, expected about side/√block", f)
	}
}

func TestTotalAdjacentDistance(t *testing.T) {
	for _, c := range []Curve{Hilbert{}, Moore{}, Snake{}} {
		side := c.Side(256)
		want := side*side - 1
		if got := TotalAdjacentDistance(c, side); got != want {
			t.Errorf("%s: total adjacent distance %d, want %d", c.Name(), got, want)
		}
	}
	// Scatter should be near the random expectation ~ 2/3·side per hop.
	side := 32
	total := TotalAdjacentDistance(Scatter{}, side)
	perHop := float64(total) / float64(side*side-1)
	if perHop < float64(side)/3 {
		t.Errorf("scatter: per-hop distance %.2f suspiciously local", perHop)
	}
}

func TestManhattan(t *testing.T) {
	cases := []struct{ x1, y1, x2, y2, want int }{
		{0, 0, 0, 0, 0},
		{0, 0, 3, 4, 7},
		{3, 4, 0, 0, 7},
		{-2, 5, 1, -1, 9},
	}
	for _, tc := range cases {
		if got := Manhattan(tc.x1, tc.y1, tc.x2, tc.y2); got != tc.want {
			t.Errorf("Manhattan(%d,%d,%d,%d) = %d, want %d", tc.x1, tc.y1, tc.x2, tc.y2, got, tc.want)
		}
	}
}

func TestDistSymmetric(t *testing.T) {
	f := func(a, b uint16) bool {
		side := 64
		i := int(a) % (side * side)
		j := int(b) % (side * side)
		return Dist(Hilbert{}, i, j, side) == Dist(Hilbert{}, j, i, side)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestByName(t *testing.T) {
	for _, c := range Registry() {
		got, err := ByName(c.Name())
		if err != nil {
			t.Fatalf("ByName(%q): %v", c.Name(), err)
		}
		if got.Name() != c.Name() {
			t.Fatalf("ByName(%q) returned %q", c.Name(), got.Name())
		}
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("ByName(nope): expected error")
	}
}

func TestScatterPermutationProperties(t *testing.T) {
	// The Feistel permutation must be a bijection on every pow-2 domain.
	for _, side := range []int{2, 4, 8, 16} {
		n := side * side
		seen := make([]bool, n)
		for i := 0; i < n; i++ {
			p := int(permute(uint64(i), halfBits(side), false))
			if p < 0 || p >= n {
				t.Fatalf("side %d: permute(%d) = %d out of range", side, i, p)
			}
			if seen[p] {
				t.Fatalf("side %d: permute collision at %d", side, i)
			}
			seen[p] = true
			if back := int(permute(uint64(p), halfBits(side), true)); back != i {
				t.Fatalf("side %d: inverse(permute(%d)) = %d", side, i, back)
			}
		}
	}
}

func TestDiagonalLengthPowers(t *testing.T) {
	z := ZOrder{}
	// Crossing between the first and second half of a 4^k block has
	// diagonal length 2^k.
	for k := 1; k <= 8; k++ {
		block := 1 << (2 * k)
		got := z.DiagonalLength(block/2-1, block/2)
		want := 1 << k
		if got != want {
			t.Errorf("DiagonalLength(%d,%d) = %d, want %d", block/2-1, block/2, got, want)
		}
	}
}

func TestMeasureSampledAgreesWithExact(t *testing.T) {
	if testing.Short() {
		t.Skip("quadratic scan")
	}
	for _, c := range []Curve{Hilbert{}, ZOrder{}} {
		exact := MeasureDistanceBound(c, 16).Alpha
		sampled := MeasureDistanceBoundSampled(c, 16).Alpha
		if sampled > exact+1e-9 {
			t.Errorf("%s: sampled %.4f exceeds exact %.4f", c.Name(), sampled, exact)
		}
		if sampled < exact*0.7 {
			t.Errorf("%s: sampled %.4f far below exact %.4f", c.Name(), sampled, exact)
		}
	}
}

func TestHilbertLocalityMatchesTheory(t *testing.T) {
	// Spot-check dist(i, i+j) <= 3*sqrt(j) + 3 on a big grid for random i
	// and all power-of-two j (Section III-B cites alpha = 3 for Hilbert).
	side := 256
	n := side * side
	rng := uint64(12345)
	next := func() uint64 {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		return rng
	}
	for trial := 0; trial < 500; trial++ {
		i := int(next() % uint64(n))
		for j := 1; i+j < n; j *= 2 {
			d := Dist(Hilbert{}, i, i+j, side)
			if float64(d) > 3*math.Sqrt(float64(j))+3 {
				t.Fatalf("hilbert: dist(%d,%d) = %d > 3·√%d + 3", i, i+j, d, j)
			}
		}
	}
}
