package sfc

// Hilbert is the Hilbert curve of Section II-B. It is distance-bound with
// constant α = 3 (Niedermeier & Sanders): sending a message from the i-th
// to the (i+j)-th point costs at most 3·√j + o(√j) energy. It is also
// "aligned" in the sense of Lemma 3: every 4^k consecutive elements lie in
// a subgrid of side at most 2·2^k.
//
// The orientation follows the paper's Figure 1: the curve of order 0 is a
// single cell; order k is built from four order-(k-1) curves with the two
// lower ones flipped across the diagonals. With this construction the
// curve starts at (0,0) and ends at (side-1, 0).
type Hilbert struct{}

// Name implements Curve.
func (Hilbert) Name() string { return "hilbert" }

// Side implements Curve: the Hilbert curve requires a power-of-two side.
func (Hilbert) Side(n int) int { return pow2Side(n) }

// XY implements Curve using the classic bit-twiddling conversion
// (iterating from the least-significant quadrant upward and undoing the
// per-level reflections).
func (Hilbert) XY(i, side int) (x, y int) {
	if !isPow2(side) {
		panic("sfc: hilbert side must be a power of two")
	}
	checkIndex(i, side, "hilbert")
	t := i
	for s := 1; s < side; s *= 2 {
		rx := 1 & (t / 2)
		ry := 1 & (t ^ rx)
		x, y = hilbertRot(s, x, y, rx, ry)
		x += s * rx
		y += s * ry
		t /= 4
	}
	return x, y
}

// Index implements Curve; it is the inverse of XY.
func (Hilbert) Index(x, y, side int) int {
	if !isPow2(side) {
		panic("sfc: hilbert side must be a power of two")
	}
	checkPoint(x, y, side, "hilbert")
	d := 0
	for s := side / 2; s > 0; s /= 2 {
		rx := 0
		if x&s > 0 {
			rx = 1
		}
		ry := 0
		if y&s > 0 {
			ry = 1
		}
		d += s * s * ((3 * rx) ^ ry)
		x, y = hilbertRot(s, x, y, rx, ry)
	}
	return d
}

// hilbertRot applies the reflection/rotation for one recursion level.
func hilbertRot(s, x, y, rx, ry int) (int, int) {
	if ry == 0 {
		if rx == 1 {
			x = s - 1 - x
			y = s - 1 - y
		}
		x, y = y, x
	}
	return x, y
}
