package sfc

import "math"

// DistanceBound holds the result of measuring how close a curve comes to
// the distance-bound property of Section III-B: dist(i, i+j) <= α·√j.
type DistanceBound struct {
	Curve string
	Side  int
	// Alpha is the measured maximum of dist(i, i+j)/√j over the sampled
	// index pairs. For a distance-bound curve it converges to the curve's
	// constant (e.g. 3 for Hilbert); for the Z curve it grows with the
	// side because of the unbounded diagonals.
	Alpha float64
	// ArgI, ArgJ record the pair attaining Alpha.
	ArgI, ArgJ int
}

// MeasureDistanceBound computes the exact maximum of dist(i, i+j)/√j over
// all pairs 0 <= i < i+j < side². Quadratic in the number of grid points;
// intended for sides up to a few dozen.
func MeasureDistanceBound(c Curve, side int) DistanceBound {
	n := side * side
	xs := make([]int, n)
	ys := make([]int, n)
	for i := 0; i < n; i++ {
		xs[i], ys[i] = c.XY(i, side)
	}
	best := DistanceBound{Curve: c.Name(), Side: side}
	for i := 0; i < n; i++ {
		for j := 1; i+j < n; j++ {
			d := Manhattan(xs[i], ys[i], xs[i+j], ys[i+j])
			r := float64(d) / math.Sqrt(float64(j))
			if r > best.Alpha {
				best.Alpha = r
				best.ArgI, best.ArgJ = i, j
			}
		}
	}
	return best
}

// MeasureDistanceBoundSampled estimates the distance-bound constant by
// scanning all start points i but only gap values j that are powers of two
// and neighbors thereof, which is where the extrema of the classic curves
// occur. Runs in O(n log n); suitable for large sides.
func MeasureDistanceBoundSampled(c Curve, side int) DistanceBound {
	n := side * side
	xs := make([]int, n)
	ys := make([]int, n)
	for i := 0; i < n; i++ {
		xs[i], ys[i] = c.XY(i, side)
	}
	best := DistanceBound{Curve: c.Name(), Side: side}
	consider := func(i, j int) {
		if j <= 0 || i+j >= n {
			return
		}
		d := Manhattan(xs[i], ys[i], xs[i+j], ys[i+j])
		r := float64(d) / math.Sqrt(float64(j))
		if r > best.Alpha {
			best.Alpha = r
			best.ArgI, best.ArgJ = i, j
		}
	}
	for i := 0; i < n; i++ {
		for j := 1; i+j < n; j *= 2 {
			consider(i, j-1)
			consider(i, j)
			consider(i, j+1)
		}
	}
	return best
}

// IsContinuous reports whether consecutive points of the curve are always
// grid neighbors (Manhattan distance 1). The Hilbert, Moore, Peano and
// Snake curves are continuous; Z-order and row-major are not.
func IsContinuous(c Curve, side int) bool {
	n := side * side
	px, py := c.XY(0, side)
	for i := 1; i < n; i++ {
		x, y := c.XY(i, side)
		if Manhattan(px, py, x, y) != 1 {
			return false
		}
		px, py = x, y
	}
	return true
}

// IsClosed reports whether the curve's last point neighbors its first
// (true for the Moore curve).
func IsClosed(c Curve, side int) bool {
	n := side * side
	x0, y0 := c.XY(0, side)
	x1, y1 := c.XY(n-1, side)
	return Manhattan(x0, y0, x1, y1) == 1
}

// AlignmentFactor measures the "aligned" property of Lemma 3: for each
// power-of-four block size 4^k it computes the maximum, over all runs of
// 4^k consecutive indices, of the bounding-box side divided by 2^k, and
// returns the overall maximum. A curve is aligned (Lemma 4) when the
// result is at most 2. The Hilbert and Moore curves are aligned; the Z
// curve is not — misaligned runs can straddle a long diagonal, which is
// precisely why Theorem 2 needs the separate diagonal-energy argument.
func AlignmentFactor(c Curve, side int) float64 {
	n := side * side
	xs := make([]int, n)
	ys := make([]int, n)
	for i := 0; i < n; i++ {
		xs[i], ys[i] = c.XY(i, side)
	}
	worst := 0.0
	for block := 4; block <= n; block *= 4 {
		root := int(math.Round(math.Sqrt(float64(block))))
		// Slide a window of length `block` using a monotone deque-free
		// approach: recompute box per aligned and misaligned starts at a
		// stride that still catches the worst case (stride block/4 keeps
		// the scan near-linear while covering every alignment class used
		// in Lemma 3's argument).
		stride := block / 4
		if stride == 0 {
			stride = 1
		}
		for start := 0; start+block <= n; start += stride {
			minX, maxX := xs[start], xs[start]
			minY, maxY := ys[start], ys[start]
			for i := start + 1; i < start+block; i++ {
				if xs[i] < minX {
					minX = xs[i]
				}
				if xs[i] > maxX {
					maxX = xs[i]
				}
				if ys[i] < minY {
					minY = ys[i]
				}
				if ys[i] > maxY {
					maxY = ys[i]
				}
			}
			w := maxX - minX + 1
			if h := maxY - minY + 1; h > w {
				w = h
			}
			if f := float64(w) / float64(root); f > worst {
				worst = f
			}
		}
	}
	return worst
}

// AlignedWindowFactor is like AlignmentFactor but only considers windows
// whose start is a multiple of the block size. Lemma 3's first claim:
// on the Z curve every *aligned* run of 4^k elements occupies exactly a
// 2^k × 2^k subgrid, so the result is 1 for Z (and at most 2 for any
// aligned curve).
func AlignedWindowFactor(c Curve, side int) float64 {
	n := side * side
	xs := make([]int, n)
	ys := make([]int, n)
	for i := 0; i < n; i++ {
		xs[i], ys[i] = c.XY(i, side)
	}
	worst := 0.0
	for block := 4; block <= n; block *= 4 {
		root := int(math.Round(math.Sqrt(float64(block))))
		for start := 0; start+block <= n; start += block {
			minX, maxX := xs[start], xs[start]
			minY, maxY := ys[start], ys[start]
			for i := start + 1; i < start+block; i++ {
				if xs[i] < minX {
					minX = xs[i]
				}
				if xs[i] > maxX {
					maxX = xs[i]
				}
				if ys[i] < minY {
					minY = ys[i]
				}
				if ys[i] > maxY {
					maxY = ys[i]
				}
			}
			w := maxX - minX + 1
			if h := maxY - minY + 1; h > w {
				w = h
			}
			if f := float64(w) / float64(root); f > worst {
				worst = f
			}
		}
	}
	return worst
}

// TotalAdjacentDistance returns the sum of Manhattan distances between
// consecutive curve points — the energy of walking the whole curve. For a
// continuous curve this is exactly side²-1.
func TotalAdjacentDistance(c Curve, side int) int {
	n := side * side
	total := 0
	px, py := c.XY(0, side)
	for i := 1; i < n; i++ {
		x, y := c.XY(i, side)
		total += Manhattan(px, py, x, y)
		px, py = x, y
	}
	return total
}
