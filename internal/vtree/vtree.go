// Package vtree implements the paper's unbounded-degree machinery
// (Section III-D): processors have O(1) memory, so a vertex with many
// children cannot even store its child list, let alone message every
// child directly (fan-out serializes). The TRANSFORM procedure
// conceptually rewires an unbounded-degree tree T into a binary virtual
// tree T̂ of degree at most 4 — every vertex keeps at most two "current"
// children and at most two "appended" children (siblings adopted from
// its parent's child list) — without moving any vertex (Lemma 8: if T is
// light-first, T̂ is still light-first).
//
// On T̂ the two local messaging operations the tree algorithms need run
// in O(n) energy and O(log n) depth (Theorem 3):
//
//   - local broadcast: every vertex delivers one message to all its real
//     children (each child receives its parent's message);
//   - local reduce: every vertex receives the op-fold of its real
//     children's messages.
package vtree

import (
	"spatialtree/internal/machine"
	"spatialtree/internal/tree"
)

// none marks an empty virtual child slot.
const none int32 = -1

// VTree is the binary virtual tree T̂ over a rooted tree T.
type VTree struct {
	t *tree.Tree
	// cur and app are the ≤2 current and ≤2 appended virtual children
	// per vertex — the O(1) per-processor state.
	cur, app [][2]int32
	// wave[v] is the app-chain depth of v: 0 if v receives its parent's
	// message directly over a cur edge (or is the root), otherwise one
	// more than its virtual parent's wave. Messages propagate in waves;
	// the number of waves is O(log ∆).
	wave []int32
	// maxWave is the largest wave index.
	maxWave int32
}

// Build constructs T̂ from the given per-vertex child lists (usually the
// light-first, size-ascending lists; Lemma 8's order preservation assumes
// size-sorted lists). childOrder[v] must be a permutation of
// t.Children(v).
func Build(t *tree.Tree, childOrder [][]int) *VTree {
	n := t.N()
	vt := &VTree{
		t:    t,
		cur:  make([][2]int32, n),
		app:  make([][2]int32, n),
		wave: make([]int32, n),
	}
	for v := 0; v < n; v++ {
		vt.cur[v] = [2]int32{none, none}
		vt.app[v] = [2]int32{none, none}
	}

	// splitTask assigns the heads of a sibling list to an owner's slot
	// and queues the sub-lists for the heads.
	type task struct {
		owner int
		list  []int
		isApp bool
	}
	var queue []task
	for v := 0; v < n; v++ {
		var list []int
		if childOrder != nil {
			list = childOrder[v]
		} else {
			list = t.Children(v)
		}
		if len(list) > 0 {
			queue = append(queue, task{owner: v, list: list, isApp: false})
		}
	}
	for len(queue) > 0 {
		tk := queue[0]
		queue = queue[1:]
		d := len(tk.list)
		if d == 0 {
			continue
		}
		m := d / 2
		first := tk.list[0]
		slot := &vt.cur[tk.owner]
		if tk.isApp {
			slot = &vt.app[tk.owner]
		}
		slot[0] = int32(first)
		vt.assignWave(first, tk.owner, tk.isApp)
		if d > 1 {
			second := tk.list[m]
			slot[1] = int32(second)
			vt.assignWave(second, tk.owner, tk.isApp)
			if m > 1 {
				queue = append(queue, task{owner: first, list: tk.list[1:m], isApp: true})
			}
			if m+1 < d {
				queue = append(queue, task{owner: second, list: tk.list[m+1:], isApp: true})
			}
		}
	}
	return vt
}

// assignWave sets the propagation wave of child given its virtual parent
// owner: cur children receive in wave 0, app children one wave after
// their owner.
func (vt *VTree) assignWave(child, owner int, isApp bool) {
	if !isApp {
		vt.wave[child] = 0
		return
	}
	vt.wave[child] = vt.wave[owner] + 1
	if vt.wave[child] > vt.maxWave {
		vt.maxWave = vt.wave[child]
	}
}

// Tree returns the underlying real tree.
func (vt *VTree) Tree() *tree.Tree { return vt.t }

// Cur returns the current virtual children of v (0-2 entries).
func (vt *VTree) Cur(v int) []int { return slotSlice(vt.cur[v]) }

// App returns the appended virtual children of v (0-2 entries).
func (vt *VTree) App(v int) []int { return slotSlice(vt.app[v]) }

func slotSlice(s [2]int32) []int {
	out := make([]int, 0, 2)
	for _, c := range s {
		if c != none {
			out = append(out, int(c))
		}
	}
	return out
}

// VirtualDegree returns the number of virtual children of v.
func (vt *VTree) VirtualDegree(v int) int {
	return len(vt.Cur(v)) + len(vt.App(v))
}

// MaxVirtualDegree returns the largest virtual child count; the
// transform guarantees it is at most 4.
func (vt *VTree) MaxVirtualDegree() int {
	max := 0
	for v := 0; v < vt.t.N(); v++ {
		if d := vt.VirtualDegree(v); d > max {
			max = d
		}
	}
	return max
}

// Waves returns the number of propagation waves (O(log ∆)).
func (vt *VTree) Waves() int { return int(vt.maxWave) + 1 }

// appEdgesByWave groups appended edges (owner -> child) by the child's
// wave, 1-based.
func (vt *VTree) appEdgesByWave() [][][2]int {
	waves := make([][][2]int, vt.maxWave+1)
	for v := 0; v < vt.t.N(); v++ {
		for _, a := range vt.App(v) {
			w := vt.wave[a]
			waves[w-1] = append(waves[w-1], [2]int{v, a})
		}
	}
	return waves
}

// LocalBroadcast performs the paper's local broadcast on T̂: every vertex
// v conceptually sends vals[v] to all its real children; the returned
// slice holds, for every non-root vertex, its real parent's value
// (received[root] = vals[root]). rank maps vertices to processor ranks.
//
// Wave 0 delivers over all cur edges simultaneously; wave k forwards over
// appended edges whose child is at app-chain depth k. On a light-first
// placement this costs O(n) energy and O(log n) depth (Theorem 3).
func LocalBroadcast(s *machine.Sim, vt *VTree, rank []int, vals []int64) []int64 {
	n := vt.t.N()
	received := make([]int64, n)
	if n == 0 {
		return received
	}
	received[vt.t.Root()] = vals[vt.t.Root()]
	// Wave 0: cur edges carry the sender's own value.
	pairs := make([][2]int, 0, n)
	for v := 0; v < n; v++ {
		for _, c := range vt.Cur(v) {
			pairs = append(pairs, [2]int{rank[v], rank[c]})
			received[c] = vals[v]
		}
	}
	s.SendBatch(pairs)
	// Waves 1..: appended edges forward the value the owner received
	// (the owner's real parent is the child's real parent too).
	for _, edges := range vt.appEdgesByWave() {
		pairs = pairs[:0]
		for _, e := range edges {
			pairs = append(pairs, [2]int{rank[e[0]], rank[e[1]]})
			received[e[1]] = received[e[0]]
		}
		s.SendBatch(pairs)
	}
	return received
}

// LocalReduce performs the paper's local reduce on T̂: every vertex
// receives op folded over its real children's vals (id for leaves).
// Appended children fold into their owners innermost-wave first; finally
// the cur children deliver to the real parent. Costs O(n) energy and
// O(log n) depth on a light-first placement (Theorem 3).
func LocalReduce(s *machine.Sim, vt *VTree, rank []int, vals []int64, id int64, op func(a, b int64) int64) []int64 {
	n := vt.t.N()
	result := make([]int64, n)
	for v := range result {
		result[v] = id
	}
	if n == 0 {
		return result
	}
	// acc[v] = vals[v] folded with the accumulators of v's appended
	// children (v's adopted sibling group).
	acc := append([]int64(nil), vals...)
	waves := vt.appEdgesByWave()
	pairs := make([][2]int, 0, n)
	for w := len(waves) - 1; w >= 0; w-- {
		pairs = pairs[:0]
		for _, e := range waves[w] {
			pairs = append(pairs, [2]int{rank[e[1]], rank[e[0]]})
			acc[e[0]] = op(acc[e[0]], acc[e[1]])
		}
		s.SendBatch(pairs)
	}
	pairs = pairs[:0]
	for v := 0; v < n; v++ {
		for _, c := range vt.Cur(v) {
			pairs = append(pairs, [2]int{rank[c], rank[v]})
			result[v] = op(result[v], acc[c])
		}
	}
	s.SendBatch(pairs)
	return result
}
