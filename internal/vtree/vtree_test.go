package vtree

import (
	"testing"

	"spatialtree/internal/eulertour"
	"spatialtree/internal/layout"
	"spatialtree/internal/machine"
	"spatialtree/internal/order"
	"spatialtree/internal/rng"
	"spatialtree/internal/sfc"
	"spatialtree/internal/tree"
)

func lightFirstRanks(t *tree.Tree) []int {
	return order.LightFirst(t).Rank
}

func buildLF(t *tree.Tree) *VTree {
	return Build(t, eulertour.SortedChildrenBySize(t, t.SubtreeSizes()))
}

func testTrees(r *rng.RNG) []*tree.Tree {
	return []*tree.Tree{
		tree.Path(20),
		tree.Star(50),
		tree.PerfectBinary(5),
		tree.PerfectKAry(5, 3),
		tree.Caterpillar(21),
		tree.Broom(30),
		tree.RandomAttachment(200, r),
		tree.PreferentialAttachment(200, r),
		tree.Yule(60, r),
	}
}

func TestVirtualDegreeAtMostFour(t *testing.T) {
	r := rng.New(1)
	for _, tr := range testTrees(r) {
		vt := buildLF(tr)
		if d := vt.MaxVirtualDegree(); d > 4 {
			t.Errorf("n=%d: virtual degree %d > 4", tr.N(), d)
		}
	}
}

func TestVirtualTreeSpansAllVertices(t *testing.T) {
	// Every non-root vertex must have exactly one virtual parent.
	r := rng.New(2)
	for _, tr := range testTrees(r) {
		vt := buildLF(tr)
		vparent := make([]int, tr.N())
		for i := range vparent {
			vparent[i] = -1
		}
		for v := 0; v < tr.N(); v++ {
			for _, c := range append(vt.Cur(v), vt.App(v)...) {
				if vparent[c] != -1 {
					t.Fatalf("n=%d: vertex %d has two virtual parents (%d, %d)",
						tr.N(), c, vparent[c], v)
				}
				vparent[c] = v
			}
		}
		for v := 0; v < tr.N(); v++ {
			if v != tr.Root() && vparent[v] == -1 {
				t.Fatalf("n=%d: vertex %d unreachable in T̂", tr.N(), v)
			}
		}
		if vparent[tr.Root()] != -1 {
			t.Fatalf("n=%d: root has a virtual parent", tr.N())
		}
	}
}

func TestAppendedChildrenAreSiblings(t *testing.T) {
	// An appended child of x must be a real sibling of x (same real
	// parent) — the invariant that makes forwarding correct.
	r := rng.New(3)
	for _, tr := range testTrees(r) {
		vt := buildLF(tr)
		for v := 0; v < tr.N(); v++ {
			for _, a := range vt.App(v) {
				if tr.Parent(a) != tr.Parent(v) {
					t.Fatalf("n=%d: appended child %d of %d is not a sibling", tr.N(), a, v)
				}
			}
			for _, c := range vt.Cur(v) {
				if tr.Parent(c) != v {
					t.Fatalf("n=%d: cur child %d of %d is not a real child", tr.N(), c, v)
				}
			}
		}
	}
}

func TestWavesLogarithmic(t *testing.T) {
	star := tree.Star(1 << 12)
	vt := buildLF(star)
	if w := vt.Waves(); w > 14 {
		t.Errorf("star 2^12: %d waves, want about log2(n)", w)
	}
	if w := buildLF(tree.Path(1 << 12)).Waves(); w > 2 {
		t.Errorf("path: %d waves, want 1", w)
	}
}

func TestLocalBroadcastDeliversParentValues(t *testing.T) {
	r := rng.New(4)
	for _, tr := range testTrees(r) {
		vt := buildLF(tr)
		rank := lightFirstRanks(tr)
		s := machine.New(tr.N(), sfc.Hilbert{})
		vals := make([]int64, tr.N())
		for v := range vals {
			vals[v] = int64(v * 31)
		}
		got := LocalBroadcast(s, vt, rank, vals)
		for v := 0; v < tr.N(); v++ {
			want := vals[v]
			if p := tr.Parent(v); p != -1 {
				want = vals[p]
			}
			if got[v] != want {
				t.Fatalf("n=%d: received[%d] = %d, want %d", tr.N(), v, got[v], want)
			}
		}
	}
}

func TestLocalReduceFoldsChildren(t *testing.T) {
	r := rng.New(5)
	add := func(a, b int64) int64 { return a + b }
	for _, tr := range testTrees(r) {
		vt := buildLF(tr)
		rank := lightFirstRanks(tr)
		s := machine.New(tr.N(), sfc.Hilbert{})
		vals := make([]int64, tr.N())
		for v := range vals {
			vals[v] = int64(v + 1)
		}
		got := LocalReduce(s, vt, rank, vals, 0, add)
		for v := 0; v < tr.N(); v++ {
			var want int64
			for _, c := range tr.Children(v) {
				want += vals[c]
			}
			if got[v] != want {
				t.Fatalf("n=%d: reduce[%d] = %d, want %d", tr.N(), v, got[v], want)
			}
		}
	}
}

func TestLocalReduceMax(t *testing.T) {
	tr := tree.Star(100)
	vt := buildLF(tr)
	rank := lightFirstRanks(tr)
	s := machine.New(tr.N(), sfc.Hilbert{})
	vals := make([]int64, tr.N())
	for v := range vals {
		vals[v] = int64((v * 37) % 101)
	}
	maxOp := func(a, b int64) int64 {
		if a > b {
			return a
		}
		return b
	}
	got := LocalReduce(s, vt, rank, vals, -1<<62, maxOp)
	var want int64 = -1 << 62
	for v := 1; v < tr.N(); v++ {
		want = maxOp(want, vals[v])
	}
	if got[0] != want {
		t.Fatalf("star max reduce = %d, want %d", got[0], want)
	}
}

func TestTheorem3StarDepthLogarithmic(t *testing.T) {
	// Star broadcast through T̂: depth O(log n), versus Θ(n) for naive
	// direct fan-out.
	n := 1 << 12
	star := tree.Star(n)
	vt := buildLF(star)
	rank := lightFirstRanks(star)
	s := machine.New(n, sfc.Hilbert{})
	LocalBroadcast(s, vt, rank, make([]int64, n))
	if d := s.Depth(); d > 4*12 {
		t.Errorf("star local broadcast depth %d, want O(log n = 12)", d)
	}
	// Naive direct fan-out for contrast.
	naive := machine.New(n, sfc.Hilbert{})
	for c := 1; c < n; c++ {
		naive.Send(rank[0], rank[c])
	}
	if naive.Depth() < int64(n-1) {
		t.Errorf("naive fan-out depth %d, expected Θ(n)", naive.Depth())
	}
}

func TestTheorem3EnergyLinear(t *testing.T) {
	// Per-vertex local-broadcast energy must stay bounded as n grows
	// (tested on unbounded-degree preferential trees in light-first
	// placement).
	perVertex := func(bits int) float64 {
		n := 1 << bits
		tr := tree.PreferentialAttachment(n, rng.New(uint64(bits)))
		vt := buildLF(tr)
		rank := lightFirstRanks(tr)
		s := machine.New(n, sfc.Hilbert{})
		LocalBroadcast(s, vt, rank, make([]int64, n))
		return float64(s.Energy()) / float64(n)
	}
	small, large := perVertex(10), perVertex(14)
	if large > 2*small+2 {
		t.Errorf("virtual-tree broadcast energy/vertex grew: %.2f -> %.2f", small, large)
	}
}

func TestVirtualEdgesStayLocal(t *testing.T) {
	// Lemma 8 consequence: virtual-tree edges on a light-first placement
	// have O(n) total energy, like real edges (Theorem 1). Compare the
	// virtual kernel against the real kernel within a constant factor.
	n := 1 << 12
	tr := tree.PreferentialAttachment(n, rng.New(7))
	vt := buildLF(tr)
	rank := lightFirstRanks(tr)
	s := machine.New(n, sfc.Hilbert{})
	LocalBroadcast(s, vt, rank, make([]int64, n))
	virtual := s.Energy()

	p := layout.LightFirst(tr, sfc.Hilbert{})
	real := layout.ParentChildEnergy(p).Energy
	if virtual > 4*real+int64(n) {
		t.Errorf("virtual kernel energy %d far above real kernel %d", virtual, real)
	}
}

func TestBuildWithNilChildOrder(t *testing.T) {
	tr := tree.Star(10)
	vt := Build(tr, nil) // CSR order
	if vt.MaxVirtualDegree() > 4 {
		t.Fatal("degree bound broken with CSR order")
	}
	s := machine.New(10, sfc.Hilbert{})
	rank := lightFirstRanks(tr)
	got := LocalBroadcast(s, vt, rank, []int64{5, 0, 0, 0, 0, 0, 0, 0, 0, 0})
	for v := 1; v < 10; v++ {
		if got[v] != 5 {
			t.Fatalf("vertex %d missed broadcast", v)
		}
	}
}

func TestEmptyAndSingle(t *testing.T) {
	single := tree.Path(1)
	vt := buildLF(single)
	s := machine.New(1, sfc.Hilbert{})
	got := LocalBroadcast(s, vt, []int{0}, []int64{42})
	if got[0] != 42 {
		t.Fatal("single-vertex broadcast")
	}
	red := LocalReduce(s, vt, []int{0}, []int64{42}, 0, func(a, b int64) int64 { return a + b })
	if red[0] != 0 {
		t.Fatal("single-vertex reduce should be identity")
	}
}
