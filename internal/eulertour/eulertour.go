// Package eulertour implements the paper's layout construction
// (Section IV, Theorem 4): computing the light-first order of a tree on
// the spatial computer in O(n^{3/2}) energy — matching the permutation
// lower bound — and low depth, using Euler tours ranked by the
// random-mate list-ranking algorithm of Theorem 5.
//
// Pipeline (following the paper's four steps):
//
//  1. Build the Euler tour of the tree with arbitrary child order and
//     rank it; the positions of a vertex's down- and up-edge give its
//     subtree size locally (step 1 of the paper).
//  2. Re-build the tour visiting children in increasing subtree-size
//     order (step 2). The required sibling reordering is charged as one
//     global sort of the (parent, size, id) keys.
//  3. Rank the new tour, keep each vertex's first occurrence, and count
//     preceding first-occurrences with a parallel prefix sum (step 3) —
//     this is the light-first rank.
//  4. Permute the vertices to their new positions (step 4).
//
// Note on depth: the paper states O(log n) depth for layout creation; our
// pipeline's sorting step (Batcher network) has Θ(log² n) depth, so the
// measured depth is O(log² n). The energy bound O(n^{3/2}) — the claim
// that separates the approach from PRAM simulation — is unaffected.
package eulertour

import (
	"sort"

	"spatialtree/internal/listrank"
	"spatialtree/internal/machine"
	"spatialtree/internal/order"
	"spatialtree/internal/rng"
	"spatialtree/internal/tree"
)

// Result is the outcome of the spatial layout construction.
type Result struct {
	// Order is the computed light-first order (vertex -> rank).
	Order order.Order
	// Sizes are the subtree sizes recovered from the first Euler tour.
	Sizes []int
	// Stages records the cumulative simulator cost after each pipeline
	// stage, for the experiment tables.
	Stages []StageCost
}

// StageCost names the simulator cost consumed up to the end of a stage.
type StageCost struct {
	Name string
	Cost machine.Cost
}

// edge ids: down(v) = 2v, up(v) = 2v+1, defined for v != root.
func down(v int) int { return 2 * v }
func up(v int) int   { return 2*v + 1 }

// buildTourNext returns the successor array of the Euler tour edge list
// under the given child order, plus the head edge. Slots of the root are
// unused (-2). The tour is the standard one: next(down(v)) enters v's
// first child or returns up; next(up(v)) proceeds to v's next sibling or
// returns up from the parent.
func buildTourNext(t *tree.Tree, childOf func(v int) []int) (next []int, head int) {
	n := t.N()
	next = make([]int, 2*n)
	for i := range next {
		next[i] = -2
	}
	head = -1
	root := t.Root()
	rootCh := childOf(root)
	if len(rootCh) > 0 {
		head = down(rootCh[0])
	}
	for v := 0; v < n; v++ {
		ch := childOf(v)
		if v != root {
			if len(ch) > 0 {
				next[down(v)] = down(ch[0])
			} else {
				next[down(v)] = up(v)
			}
		}
		// Successor of each child's up-edge: next sibling's down-edge,
		// or v's own up-edge (or end of tour at the root).
		for i, c := range ch {
			if i+1 < len(ch) {
				next[up(c)] = down(ch[i+1])
			} else if v == root {
				next[up(c)] = -1
			} else {
				next[up(c)] = up(v)
			}
		}
	}
	return next, head
}

// LightFirstLayout computes the light-first order of t on the simulator,
// charging every message. Vertex v initially resides at processor rank v
// (the "input layout"); edge nodes of the tour are co-located with their
// vertex, respecting O(1) words per processor. The grid must hold at
// least 2n processors (positions for the 2(n-1) tour edges); callers
// should create the sim with machine.New(2*n, curve).
func LightFirstLayout(s *machine.Sim, t *tree.Tree, r *rng.RNG) Result {
	n := t.N()
	res := Result{Sizes: make([]int, n)}
	if n == 0 {
		res.Order = order.Order{Name: "light-first"}
		return res
	}
	if s.Procs() < 2*n {
		panic("eulertour: simulator grid too small; create with machine.New(2*n, curve)")
	}
	if n == 1 {
		res.Order = order.Order{Name: "light-first", Rank: []int{0}}
		res.Sizes[0] = 1
		res.Stages = append(res.Stages, StageCost{"total", s.Cost()})
		return res
	}
	root := t.Root()
	stage := func(name string) { res.Stages = append(res.Stages, StageCost{name, s.Cost()}) }

	// Processor of each tour edge: its vertex's home.
	eproc := make([]int, 2*n)
	for v := 0; v < n; v++ {
		eproc[down(v)] = v
		eproc[up(v)] = v
	}

	// --- Stage 1: first tour (arbitrary child order) + ranking.
	// Charge the sibling-successor wiring: the parent tells each child
	// its tour successors (one message per tree edge).
	pairs := make([][2]int, 0, n-1)
	for v := 0; v < n; v++ {
		if v != root {
			pairs = append(pairs, [2]int{t.Parent(v), v})
		}
	}
	s.SendBatch(pairs)
	next1, _ := buildTourNext(t, t.Children)
	ranks1 := rankTour(s, next1, eproc, r, root)
	L := 2 * (n - 1)
	idx1 := make([]int, 2*n)
	for e := 0; e < 2*n; e++ {
		if next1[e] != -2 {
			idx1[e] = (L - 1) - int(ranks1[e])
		}
	}
	stage("tour1+rank")

	// --- Subtree sizes from first/last tour positions (local: both
	// edges of v live at v's processor).
	for v := 0; v < n; v++ {
		if v == root {
			res.Sizes[v] = n
		} else {
			res.Sizes[v] = (idx1[up(v)]-idx1[down(v)]+1)/2 + 0
		}
	}
	stage("sizes")

	// --- Stage 2: sort children by (parent, size, id). Charged as one
	// global sort of n-1 keys on the grid.
	if n >= 1<<20 {
		panic("eulertour: key packing supports n < 2^20")
	}
	keys := make([]int64, s.Procs())
	payload := make([]int64, s.Procs())
	i := 0
	for v := 0; v < n; v++ {
		if v == root {
			continue
		}
		keys[i] = ((int64(t.Parent(v))<<21)|int64(res.Sizes[v]))<<21 | int64(v)
		payload[i] = int64(v)
		i++
	}
	machine.SortByKey(s, keys, payload, n-1)
	sortedChildren := make([][]int, n)
	for j := 0; j < n-1; j++ {
		v := int(payload[j])
		p := t.Parent(v)
		sortedChildren[p] = append(sortedChildren[p], v)
	}
	stage("sort")

	// --- Stage 3: second tour in light-first child order + ranking.
	next2, _ := buildTourNext(t, func(v int) []int { return sortedChildren[v] })
	ranks2 := rankTour(s, next2, eproc, r, root)
	idx2 := make([]int, 2*n)
	for e := 0; e < 2*n; e++ {
		if next2[e] != -2 {
			idx2[e] = (L - 1) - int(ranks2[e])
		}
	}
	stage("tour2+rank")

	// --- Stage 4: compact first occurrences with a prefix sum over tour
	// positions. Each down-edge ships an indicator to the processor at
	// its tour position; the inclusive prefix sum of indicators at
	// position idx2[down(v)] is v's light-first rank (the root is rank 0).
	ind := make([]int64, s.Procs())
	pairs = pairs[:0]
	for v := 0; v < n; v++ {
		if v != root {
			pairs = append(pairs, [2]int{v, idx2[down(v)]})
			ind[idx2[down(v)]] = 1
		}
	}
	s.SendBatch(pairs)
	machine.PrefixSum(s, ind[:L], func(a, b int64) int64 { return a + b })
	// Ship each vertex's rank back to its home processor.
	rank := make([]int, n)
	rank[root] = 0
	pairs = pairs[:0]
	for v := 0; v < n; v++ {
		if v != root {
			pairs = append(pairs, [2]int{idx2[down(v)], v})
			rank[v] = int(ind[idx2[down(v)]])
		}
	}
	s.SendBatch(pairs)
	stage("compact")

	// --- Stage 5: physically permute the vertex payloads into their
	// light-first positions (the Θ(n^{3/2}) global permutation).
	payloadV := make([]int, n)
	for v := range payloadV {
		payloadV[v] = v
	}
	machine.PermuteInts(s, payloadV, rank)
	stage("permute")

	res.Order = order.Order{Name: "light-first", Rank: rank}
	return res
}

// rankTour runs the spatial list-ranking algorithm on the tour edge
// array, skipping the root's unused slots. Returns distance-to-tail per
// edge id (unused slots hold 0).
func rankTour(s *machine.Sim, next []int, eproc []int, r *rng.RNG, root int) []int64 {
	// Compact the edge array: listrank wants nodes 0..m-1.
	m := 0
	id := make([]int, len(next)) // edge id -> compact id
	back := make([]int, 0, len(next))
	for e, nx := range next {
		if nx != -2 {
			id[e] = m
			back = append(back, e)
			m++
		} else {
			id[e] = -1
		}
	}
	cnext := make([]int, m)
	cproc := make([]int, m)
	for e, nx := range next {
		if nx == -2 {
			continue
		}
		if nx == -1 {
			cnext[id[e]] = -1
		} else {
			cnext[id[e]] = id[nx]
		}
		cproc[id[e]] = eproc[e]
	}
	cr := listrank.Spatial(s, cnext, cproc, r)
	out := make([]int64, len(next))
	for ci, e := range back {
		out[e] = cr[ci]
	}
	return out
}

// SortedChildrenBySize is a host helper mirroring stage 2, used by tests
// and the virtual-tree builder: children of every vertex ordered by
// ascending (subtree size, id).
func SortedChildrenBySize(t *tree.Tree, sizes []int) [][]int {
	out := make([][]int, t.N())
	for v := 0; v < t.N(); v++ {
		ch := append([]int(nil), t.Children(v)...)
		sort.Slice(ch, func(i, j int) bool {
			if sizes[ch[i]] != sizes[ch[j]] {
				return sizes[ch[i]] < sizes[ch[j]]
			}
			return ch[i] < ch[j]
		})
		out[v] = ch
	}
	return out
}
