package eulertour

import (
	"math"
	"testing"

	"spatialtree/internal/machine"
	"spatialtree/internal/order"
	"spatialtree/internal/rng"
	"spatialtree/internal/sfc"
	"spatialtree/internal/tree"
)

func newSim(n int) *machine.Sim { return machine.New(2*n+2, sfc.Hilbert{}) }

func TestBuildTourNextPath(t *testing.T) {
	tr := tree.Path(3) // 0 -> 1 -> 2
	next, head := buildTourNext(tr, tr.Children)
	// Tour: down(1) down(2) up(2) up(1).
	if head != down(1) {
		t.Fatalf("head = %d, want down(1)=%d", head, down(1))
	}
	want := map[int]int{down(1): down(2), down(2): up(2), up(2): up(1), up(1): -1}
	for e, w := range want {
		if next[e] != w {
			t.Fatalf("next[%d] = %d, want %d", e, next[e], w)
		}
	}
	// Root slots unused.
	if next[down(0)] != -2 || next[up(0)] != -2 {
		t.Fatal("root edge slots must be unused")
	}
}

func TestBuildTourNextIsValidList(t *testing.T) {
	r := rng.New(1)
	trees := []*tree.Tree{
		tree.Path(10), tree.Star(10), tree.PerfectBinary(4),
		tree.Caterpillar(11), tree.RandomAttachment(60, r),
		tree.PreferentialAttachment(50, r),
	}
	for _, tr := range trees {
		next, head := buildTourNext(tr, tr.Children)
		count := 0
		seen := make(map[int]bool)
		for e := head; e != -1; e = next[e] {
			if seen[e] {
				t.Fatalf("n=%d: tour revisits edge %d", tr.N(), e)
			}
			seen[e] = true
			count++
			if count > 2*tr.N() {
				t.Fatalf("n=%d: tour cycles", tr.N())
			}
		}
		if count != 2*(tr.N()-1) {
			t.Fatalf("n=%d: tour has %d edges, want %d", tr.N(), count, 2*(tr.N()-1))
		}
	}
}

func TestLayoutMatchesHostLightFirst(t *testing.T) {
	r := rng.New(2)
	trees := []*tree.Tree{
		tree.Path(8), tree.Star(9), tree.PerfectBinary(5),
		tree.Caterpillar(17), tree.Broom(14), tree.Comb(4, 3),
		tree.RandomAttachment(150, r), tree.PreferentialAttachment(120, r),
		tree.Yule(60, r),
	}
	for _, tr := range trees {
		s := newSim(tr.N())
		res := LightFirstLayout(s, tr, rng.New(uint64(tr.N())))
		host := order.LightFirst(tr)
		for v := 0; v < tr.N(); v++ {
			if res.Order.Rank[v] != host.Rank[v] {
				t.Fatalf("n=%d: rank[%d] = %d, host says %d",
					tr.N(), v, res.Order.Rank[v], host.Rank[v])
			}
		}
		if !order.IsLightFirst(tr, res.Order) {
			t.Fatalf("n=%d: pipeline order fails light-first validation", tr.N())
		}
	}
}

func TestLayoutSubtreeSizes(t *testing.T) {
	r := rng.New(3)
	tr := tree.RandomAttachment(200, r)
	s := newSim(tr.N())
	res := LightFirstLayout(s, tr, r)
	want := tr.SubtreeSizes()
	for v := range want {
		if res.Sizes[v] != want[v] {
			t.Fatalf("size[%d] = %d, want %d", v, res.Sizes[v], want[v])
		}
	}
}

func TestLayoutSmallCases(t *testing.T) {
	// n = 1 and n = 2.
	one := tree.Path(1)
	s := newSim(1)
	res := LightFirstLayout(s, one, rng.New(1))
	if len(res.Order.Rank) != 1 || res.Order.Rank[0] != 0 || res.Sizes[0] != 1 {
		t.Fatalf("n=1 result: %+v", res)
	}
	two := tree.Path(2)
	s = newSim(2)
	res = LightFirstLayout(s, two, rng.New(1))
	if res.Order.Rank[0] != 0 || res.Order.Rank[1] != 1 {
		t.Fatalf("n=2 ranks: %v", res.Order.Rank)
	}
}

func TestLayoutManySeeds(t *testing.T) {
	// Las Vegas: any seed gives the same (correct) order.
	r := rng.New(4)
	tr := tree.PreferentialAttachment(300, r)
	host := order.LightFirst(tr)
	for seed := uint64(0); seed < 8; seed++ {
		s := newSim(tr.N())
		res := LightFirstLayout(s, tr, rng.New(seed))
		for v := range host.Rank {
			if res.Order.Rank[v] != host.Rank[v] {
				t.Fatalf("seed %d: rank mismatch at %d", seed, v)
			}
		}
	}
}

func TestTheorem4EnergyExponent(t *testing.T) {
	// Energy should scale like n^{3/2}.
	var ns, es []float64
	for _, bits := range []int{9, 11, 13} {
		n := 1 << bits
		tr := tree.RandomAttachment(n, rng.New(uint64(bits)))
		s := newSim(n)
		LightFirstLayout(s, tr, rng.New(7))
		ns = append(ns, float64(n))
		es = append(es, float64(s.Energy()))
	}
	slope := logLogSlope(ns, es)
	if slope < 1.3 || slope > 1.75 {
		t.Errorf("layout energy exponent %.3f, want about 1.5", slope)
	}
}

func TestLayoutDepthPolylog(t *testing.T) {
	n := 1 << 13
	tr := tree.RandomAttachment(n, rng.New(5))
	s := newSim(n)
	LightFirstLayout(s, tr, rng.New(6))
	logn := 13.0
	if d := float64(s.Depth()); d > 10*logn*logn {
		t.Errorf("layout depth %.0f above O(log² n) envelope (%0.f)", d, 10*logn*logn)
	}
}

func TestStagesRecorded(t *testing.T) {
	tr := tree.PerfectBinary(6)
	s := newSim(tr.N())
	res := LightFirstLayout(s, tr, rng.New(8))
	wantStages := []string{"tour1+rank", "sizes", "sort", "tour2+rank", "compact", "permute"}
	if len(res.Stages) != len(wantStages) {
		t.Fatalf("stages = %d, want %d", len(res.Stages), len(wantStages))
	}
	var prev machine.Cost
	for i, st := range res.Stages {
		if st.Name != wantStages[i] {
			t.Fatalf("stage %d = %q, want %q", i, st.Name, wantStages[i])
		}
		if st.Cost.Energy < prev.Energy || st.Cost.Depth < prev.Depth {
			t.Fatalf("stage %q: cumulative cost decreased", st.Name)
		}
		prev = st.Cost
	}
}

func TestSortedChildrenBySize(t *testing.T) {
	tr := tree.MustFromParents([]int{-1, 0, 0, 0, 1, 1, 3})
	sizes := tr.SubtreeSizes()
	sc := SortedChildrenBySize(tr, sizes)
	// Root's children: 2 (size 1), 3 (size 2), 1 (size 3).
	want := []int{2, 3, 1}
	for i, c := range want {
		if sc[0][i] != c {
			t.Fatalf("sorted children = %v, want %v", sc[0], want)
		}
	}
}

func TestPanicsOnSmallGrid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for undersized grid")
		}
	}()
	tr := tree.Path(200)
	s := machine.New(200, sfc.Hilbert{}) // 256 procs; needs 400
	LightFirstLayout(s, tr, rng.New(1))
}

func logLogSlope(xs, ys []float64) float64 {
	n := float64(len(xs))
	var sx, sy, sxx, sxy float64
	for i := range xs {
		lx, ly := math.Log(xs[i]), math.Log(ys[i])
		sx += lx
		sy += ly
		sxx += lx * lx
		sxy += lx * ly
	}
	return (n*sxy - sx*sy) / (n*sxx - sx*sx)
}
