// Package dynlayout implements the future-work direction the paper's
// conclusion names explicitly: "Future exploration of layouts supporting
// dynamic updates may enhance the real-time adaptability of our
// framework. Not only could this address current limitations that
// require layouts to be precomputed..." (Section VII).
//
// The maintained structure is a practical amortized scheme, not a new
// theory: vertices keep their light-first × curve placement, but spread
// by a factor 2 along the curve (packed-memory-array style), so every
// other curve slot is free after a rebuild. A newly inserted leaf is
// parked on the free slot closest in curve order to its parent — with
// gaps everywhere, that is O(1) ranks away until a region crowds up.
// Once the number of mutations since the last rebuild exceeds an ε
// fraction of the tree, the layout is recomputed and every vertex
// migrates to its fresh spread-out light-first position. The spreading
// costs a constant factor in kernel energy (distances grow like √2 on a
// distance-bound curve); rebuild cost is the Θ(n^{3/2})-energy
// permutation of Theorem 4, amortized over εn mutations — O(√n/ε)
// energy per mutation, which is unavoidable up to the ε factor given
// the model's permutation lower bound.
//
// Deletions remove leaves: the freed slot becomes parking space and the
// last vertex id is compacted into the hole (see DeleteLeaf), so the
// vertex set stays 0..n-1 and snapshots remain valid trees. Rebuilds
// shrink the grid again (with a factor-two hysteresis against
// thrashing) once deletions have emptied it out.
//
// The package tracks both costs explicitly (parking energy and migration
// energy) so the experiment harness can report the quality/maintenance
// trade-off as a function of ε.
//
// Methods reachable from the public API return errors rather than
// panicking; CheckInvariants is the checked guard that test harnesses
// (and the fuzz target) run to assert the internal accounting — an
// invariant violation surfaces as an error, never as a panic.
package dynlayout

import (
	"fmt"

	"spatialtree/internal/layout"
	"spatialtree/internal/order"
	"spatialtree/internal/sfc"
	"spatialtree/internal/tree"
)

// Dyn is a dynamically maintained tree layout. Not safe for concurrent
// use.
type Dyn struct {
	curve   sfc.Curve
	side    int
	epsilon float64

	parent   []int
	children [][]int
	pos      []int  // vertex -> curve rank
	used     []bool // rank occupied

	mutationsSinceRebuild int

	// Rebuilds counts full layout recomputations.
	Rebuilds int
	// Inserts and Deletes count successful mutations.
	Inserts, Deletes int
	// ParkEnergy is the total Manhattan distance of shipping new leaves
	// to their parked positions (charged from the parent's processor).
	ParkEnergy int64
	// MigrateEnergy is the total Manhattan distance moved by vertices
	// during rebuilds.
	MigrateEnergy int64
}

// New creates a dynamic layout for t on the given curve. epsilon is the
// rebuild threshold: a rebuild triggers when mutations since the last
// rebuild exceed epsilon × current size (0 < epsilon; typical 0.05-0.5).
func New(t *tree.Tree, curve sfc.Curve, epsilon float64) (*Dyn, error) {
	if t.N() == 0 {
		return nil, fmt.Errorf("dynlayout: empty tree")
	}
	if epsilon <= 0 {
		return nil, fmt.Errorf("dynlayout: epsilon must be positive")
	}
	d := &Dyn{curve: curve, epsilon: epsilon}
	d.parent = append(d.parent, t.Parents()...)
	d.children = make([][]int, t.N())
	for v := 0; v < t.N(); v++ {
		d.children[v] = append([]int(nil), t.Children(v)...)
	}
	d.pos = make([]int, t.N())
	if err := d.rebuildInPlace(false); err != nil {
		return nil, err
	}
	return d, nil
}

// Restore rebuilds a dynamic layout from persisted state: the parent
// array, the sparse vertex→rank assignment on a side×side grid, the
// drift (mutations applied since the last rebuild) and the rebuild
// threshold. The children and occupancy arrays are re-derived and the
// full invariant suite is checked, so corrupt or mismatched state comes
// back as an error, never as a later panic. Lifetime counters (Inserts,
// Deletes, Rebuilds, ParkEnergy, MigrateEnergy) are exported fields and
// are the caller's to restore.
func Restore(parents, ranks []int, side int, curve sfc.Curve, epsilon float64, drift int) (*Dyn, error) {
	n := len(parents)
	switch {
	case n == 0:
		return nil, fmt.Errorf("dynlayout: empty tree")
	case epsilon <= 0:
		return nil, fmt.Errorf("dynlayout: epsilon must be positive")
	case len(ranks) != n:
		return nil, fmt.Errorf("dynlayout: %d ranks for %d vertices", len(ranks), n)
	case side <= 0 || spread*n > side*side:
		return nil, fmt.Errorf("dynlayout: %d vertices do not fit a %d×%d grid at spread %d", n, side, side, spread)
	case drift < 0:
		return nil, fmt.Errorf("dynlayout: negative drift %d", drift)
	}
	d := &Dyn{curve: curve, side: side, epsilon: epsilon, mutationsSinceRebuild: drift}
	d.parent = append(d.parent, parents...)
	d.pos = append(d.pos, ranks...)
	d.children = make([][]int, n)
	for v, p := range parents {
		if p < -1 || p >= n || p == v {
			return nil, fmt.Errorf("dynlayout: vertex %d has invalid parent %d", v, p)
		}
		if p != -1 {
			d.children[p] = append(d.children[p], v)
		}
	}
	d.used = make([]bool, side*side)
	for v, r := range d.pos {
		if r < 0 || r >= len(d.used) {
			return nil, fmt.Errorf("dynlayout: vertex %d at rank %d outside the %d×%d grid", v, r, side, side)
		}
		if d.used[r] {
			return nil, fmt.Errorf("dynlayout: two vertices at rank %d", r)
		}
		d.used[r] = true
	}
	if err := d.CheckInvariants(); err != nil {
		return nil, err
	}
	return d, nil
}

// N returns the current vertex count.
func (d *Dyn) N() int { return len(d.parent) }

// Epsilon returns the rebuild threshold the layout was created with.
func (d *Dyn) Epsilon() float64 { return d.epsilon }

// Curve returns the space-filling curve the layout currently lives on.
func (d *Dyn) Curve() sfc.Curve { return d.curve }

// Drift returns the number of mutations applied since the last rebuild
// — the quantity the epsilon threshold is compared against, and part of
// the state a snapshot must carry for a faithful restore.
func (d *Dyn) Drift() int { return d.mutationsSinceRebuild }

// Parents returns a copy of the current parent array.
func (d *Dyn) Parents() []int { return append([]int(nil), d.parent...) }

// Side returns the current grid side.
func (d *Dyn) Side() int { return d.side }

// Pos returns the grid coordinates of vertex v.
func (d *Dyn) Pos(v int) (x, y int) { return d.curve.XY(d.pos[v], d.side) }

// IsLeaf reports whether v is a current vertex with no children.
func (d *Dyn) IsLeaf(v int) bool {
	return v >= 0 && v < d.N() && len(d.children[v]) == 0
}

// Ranks returns a copy of the vertex → curve-rank assignment. Ranks are
// sparse: they live in [0, Side()²), not [0, N()).
func (d *Dyn) Ranks() []int { return append([]int(nil), d.pos...) }

// Tree returns a validated snapshot of the current tree. An error means
// an internal invariant was broken; it is not reachable through the
// mutation API on valid inputs.
func (d *Dyn) Tree() (*tree.Tree, error) {
	t, err := tree.FromParents(d.parent)
	if err != nil {
		return nil, fmt.Errorf("dynlayout: internal tree corrupt: %w", err)
	}
	return t, nil
}

// Placement returns the current sparse placement — the dynamic layout's
// parked/spread positions as a layout.Placement, usable by every kernel
// that consumes per-vertex curve ranks.
func (d *Dyn) Placement() (*layout.Placement, error) {
	t, err := d.Tree()
	if err != nil {
		return nil, err
	}
	return layout.FromRanks(t, "dyn-light-first", d.pos, d.curve, d.side)
}

// InsertLeaf adds a new leaf under parent and returns its vertex id. The
// leaf is parked on the nearest free curve rank to the parent; a rebuild
// triggers when the drift budget is exhausted.
func (d *Dyn) InsertLeaf(parent int) (int, error) {
	if parent < 0 || parent >= d.N() {
		return 0, fmt.Errorf("dynlayout: parent %d out of range", parent)
	}
	v := d.N()
	d.parent = append(d.parent, parent)
	d.children = append(d.children, nil)
	d.children[parent] = append(d.children[parent], v)
	d.pos = append(d.pos, -1)
	d.Inserts++

	if spread*d.N() > d.side*d.side {
		// Grid near capacity: grow and rebuild (places v too).
		return v, d.rebuildInPlace(true)
	}
	rank, ok := d.nearestFree(d.pos[parent])
	if !ok {
		// Free-slot accounting drifted (spread·n ≤ side² guarantees a
		// free slot exists): recover by rebuilding, which re-derives
		// used[] from scratch and places v, instead of panicking.
		return v, d.rebuildInPlace(true)
	}
	d.pos[v] = rank
	d.used[rank] = true
	px, py := d.curve.XY(d.pos[parent], d.side)
	x, y := d.curve.XY(rank, d.side)
	d.ParkEnergy += int64(sfc.Manhattan(px, py, x, y))

	d.mutationsSinceRebuild++
	if float64(d.mutationsSinceRebuild) > d.epsilon*float64(d.N()) {
		return v, d.rebuildInPlace(true)
	}
	return v, nil
}

// DeleteLeaf removes leaf v and returns the id that was renumbered into
// the hole: vertex ids stay the contiguous range 0..N()-1, so the vertex
// previously known as N()-1 takes over id v (moved == old id N()-1;
// moved == v when v already was the last id, i.e. nothing else moved).
// Renumbering changes ids only, never grid positions. Deleting a
// non-leaf, the root, or an out-of-range id is an error.
func (d *Dyn) DeleteLeaf(v int) (moved int, err error) {
	switch {
	case v < 0 || v >= d.N():
		return 0, fmt.Errorf("dynlayout: vertex %d out of range", v)
	case len(d.children[v]) != 0:
		return 0, fmt.Errorf("dynlayout: vertex %d is not a leaf (%d children)", v, len(d.children[v]))
	case d.parent[v] == -1:
		return 0, fmt.Errorf("dynlayout: cannot delete the root")
	}

	d.used[d.pos[v]] = false
	p := d.parent[v]
	d.children[p] = removeChild(d.children[p], v)

	last := d.N() - 1
	if v != last {
		// Compact: relabel vertex `last` as v. Its parent's child list
		// and its own children's parent pointers must follow.
		d.parent[v] = d.parent[last]
		d.children[v] = d.children[last]
		d.pos[v] = d.pos[last]
		if lp := d.parent[last]; lp != -1 {
			d.children[lp] = replaceChild(d.children[lp], last, v)
		}
		for _, c := range d.children[v] {
			d.parent[c] = v
		}
	}
	d.parent = d.parent[:last]
	d.children = d.children[:last]
	d.pos = d.pos[:last]
	d.Deletes++

	d.mutationsSinceRebuild++
	if float64(d.mutationsSinceRebuild) > d.epsilon*float64(d.N()) {
		return last, d.rebuildInPlace(true)
	}
	return last, nil
}

func removeChild(ch []int, v int) []int {
	for i, c := range ch {
		if c == v {
			ch[i] = ch[len(ch)-1]
			return ch[:len(ch)-1]
		}
	}
	return ch
}

func replaceChild(ch []int, from, to int) []int {
	for i, c := range ch {
		if c == from {
			ch[i] = to
			break
		}
	}
	return ch
}

// nearestFree scans curve ranks outward from r and returns the first
// free one, or ok == false if every rank is occupied (which the
// spread-factor capacity check rules out unless accounting broke). On a
// distance-bound curve, rank proximity implies grid proximity
// (dist ≤ α√gap), so the scan is a good parking heuristic.
func (d *Dyn) nearestFree(r int) (rank int, ok bool) {
	limit := d.side * d.side
	for delta := 0; delta < limit; delta++ {
		if a := r - delta; a >= 0 && !d.used[a] {
			return a, true
		}
		if b := r + delta; b < limit && !d.used[b] {
			return b, true
		}
	}
	return -1, false
}

// spread is the gap factor: vertex with light-first rank r is placed at
// curve slot spread·r, leaving spread-1 free slots between neighbors.
const spread = 2

// rebuildInPlace recomputes the spread-out light-first placement; when
// migrate is true the movement energy of every vertex is charged. The
// grid grows to fit spread·n slots and shrinks again once the fresh side
// is at most half the current one (hysteresis against grow/shrink
// thrashing around a boundary).
func (d *Dyn) rebuildInPlace(migrate bool) error {
	t, err := d.Tree()
	if err != nil {
		return err
	}
	side := d.curve.Side(spread * t.N())
	if side < d.side && 2*side > d.side {
		side = d.side
	}
	o := order.LightFirst(t)
	newPos := make([]int, t.N())
	for v, r := range o.Rank {
		newPos[v] = spread * r
	}
	if migrate {
		for v := 0; v < t.N(); v++ {
			if d.pos[v] < 0 {
				continue // vertex not yet placed (triggering insert)
			}
			ox, oy := d.curve.XY(d.pos[v], d.side)
			nx, ny := d.curve.XY(newPos[v], side)
			d.MigrateEnergy += int64(sfc.Manhattan(ox, oy, nx, ny))
		}
		d.Rebuilds++
	}
	d.side = side
	d.pos = append(d.pos[:0], newPos...)
	d.used = make([]bool, side*side)
	for _, r := range d.pos {
		d.used[r] = true
	}
	d.mutationsSinceRebuild = 0
	return nil
}

// Retune moves the layout onto a new curve and rebuild threshold and
// rebuilds immediately: every vertex migrates to its fresh spread-out
// light-first slot on the new curve's grid (charged to MigrateEnergy,
// with the old geometry pricing the departure side). The shrink
// hysteresis of rebuildInPlace applies only when the curve is unchanged
// — a retained old side can be illegal for the new curve (Hilbert wants
// 2^k sides, Peano 3^k), so a curve change always takes the new curve's
// own minimal side.
func (d *Dyn) Retune(curve sfc.Curve, epsilon float64) error {
	if epsilon <= 0 {
		return fmt.Errorf("dynlayout: epsilon must be positive")
	}
	t, err := d.Tree()
	if err != nil {
		return err
	}
	side := curve.Side(spread * t.N())
	if curve.Name() == d.curve.Name() && side < d.side && 2*side > d.side {
		side = d.side
	}
	o := order.LightFirst(t)
	newPos := make([]int, t.N())
	for v, r := range o.Rank {
		newPos[v] = spread * r
	}
	for v := 0; v < t.N(); v++ {
		ox, oy := d.curve.XY(d.pos[v], d.side)
		nx, ny := curve.XY(newPos[v], side)
		d.MigrateEnergy += int64(sfc.Manhattan(ox, oy, nx, ny))
	}
	d.Rebuilds++
	d.curve = curve
	d.epsilon = epsilon
	d.side = side
	d.pos = append(d.pos[:0], newPos...)
	d.used = make([]bool, side*side)
	for _, r := range d.pos {
		d.used[r] = true
	}
	d.mutationsSinceRebuild = 0
	return nil
}

// KernelCost measures the current parent→children messaging kernel — the
// quantity Theorem 1 bounds for a fresh layout; the dynamic guarantee is
// staying within a modest factor of it between rebuilds.
func (d *Dyn) KernelCost() layout.KernelCost {
	var k layout.KernelCost
	for v := 0; v < d.N(); v++ {
		px, py := d.Pos(v)
		for _, c := range d.children[v] {
			cx, cy := d.Pos(c)
			dist := sfc.Manhattan(px, py, cx, cy)
			k.Messages++
			k.Energy += int64(dist)
			if dist > k.MaxDist {
				k.MaxDist = dist
			}
		}
	}
	if k.Messages > 0 {
		k.PerMessage = float64(k.Energy) / float64(k.Messages)
	}
	if d.N() > 0 {
		k.PerVertex = float64(k.Energy) / float64(d.N())
	}
	return k
}

// FreshKernelCost measures the kernel of a from-scratch light-first
// layout of the current tree — the static optimum the dynamic layout is
// compared against.
func (d *Dyn) FreshKernelCost() (layout.KernelCost, error) {
	t, err := d.Tree()
	if err != nil {
		return layout.KernelCost{}, err
	}
	return layout.ParentChildEnergy(layout.LightFirst(t, d.curve)), nil
}

// CheckInvariants verifies the internal accounting: contiguous vertex
// ids forming a valid tree, an injective position assignment inside the
// grid, used[] marking exactly the occupied ranks, and parent/children
// arrays that mirror each other. It returns an error describing the
// first violation — this is the checked guard that replaces internal
// "accounting bug" panics.
func (d *Dyn) CheckInvariants() error {
	n := d.N()
	if len(d.children) != n || len(d.pos) != n {
		return fmt.Errorf("dynlayout: ragged state: n=%d children=%d pos=%d", n, len(d.children), len(d.pos))
	}
	slots := d.side * d.side
	if len(d.used) != slots {
		return fmt.Errorf("dynlayout: used has %d slots for side %d", len(d.used), d.side)
	}
	if spread*n > slots {
		return fmt.Errorf("dynlayout: %d vertices overflow %d slots at spread %d", n, slots, spread)
	}
	at := make([]int, slots)
	for i := range at {
		at[i] = -1
	}
	for v, r := range d.pos {
		if r < 0 || r >= slots {
			return fmt.Errorf("dynlayout: vertex %d at rank %d outside [0,%d)", v, r, slots)
		}
		if at[r] != -1 {
			return fmt.Errorf("dynlayout: vertices %d and %d share rank %d", at[r], v, r)
		}
		at[r] = v
	}
	for r, u := range d.used {
		if u != (at[r] != -1) {
			return fmt.Errorf("dynlayout: used[%d]=%v but occupancy is %v", r, u, at[r] != -1)
		}
	}
	for v := 0; v < n; v++ {
		for _, c := range d.children[v] {
			if c < 0 || c >= n || d.parent[c] != v {
				return fmt.Errorf("dynlayout: child list of %d names %d whose parent is not %d", v, c, v)
			}
		}
	}
	childCount := make([]int, n)
	for v, p := range d.parent {
		if p == -1 {
			continue
		}
		if p < 0 || p >= n {
			return fmt.Errorf("dynlayout: vertex %d has out-of-range parent %d", v, p)
		}
		childCount[p]++
	}
	for v := 0; v < n; v++ {
		if childCount[v] != len(d.children[v]) {
			return fmt.Errorf("dynlayout: vertex %d has %d children by parent array, %d by child list", v, childCount[v], len(d.children[v]))
		}
	}
	if _, err := d.Tree(); err != nil {
		return err
	}
	return nil
}
