// Package dynlayout implements the future-work direction the paper's
// conclusion names explicitly: "Future exploration of layouts supporting
// dynamic updates may enhance the real-time adaptability of our
// framework. Not only could this address current limitations that
// require layouts to be precomputed..." (Section VII).
//
// The maintained structure is a practical amortized scheme, not a new
// theory: vertices keep their light-first × curve placement, but spread
// by a factor 2 along the curve (packed-memory-array style), so every
// other curve slot is free after a rebuild. A newly inserted leaf is
// parked on the free slot closest in curve order to its parent — with
// gaps everywhere, that is O(1) ranks away until a region crowds up.
// Once the number of insertions since the last rebuild exceeds an ε
// fraction of the tree, the layout is recomputed and every vertex
// migrates to its fresh spread-out light-first position. The spreading
// costs a constant factor in kernel energy (distances grow like √2 on a
// distance-bound curve); rebuild cost is the Θ(n^{3/2})-energy
// permutation of Theorem 4, amortized over εn insertions — O(√n/ε)
// energy per insertion, which is unavoidable up to the ε factor given
// the model's permutation lower bound.
//
// The package tracks both costs explicitly (parking energy and migration
// energy) so the experiment harness can report the quality/maintenance
// trade-off as a function of ε.
package dynlayout

import (
	"fmt"

	"spatialtree/internal/layout"
	"spatialtree/internal/order"
	"spatialtree/internal/sfc"
	"spatialtree/internal/tree"
)

// Dyn is a dynamically maintained tree layout. Not safe for concurrent
// use.
type Dyn struct {
	curve   sfc.Curve
	side    int
	epsilon float64

	parent   []int
	children [][]int
	pos      []int  // vertex -> curve rank
	used     []bool // rank occupied

	insertsSinceRebuild int

	// Rebuilds counts full layout recomputations.
	Rebuilds int
	// ParkEnergy is the total Manhattan distance of shipping new leaves
	// to their parked positions (charged from the parent's processor).
	ParkEnergy int64
	// MigrateEnergy is the total Manhattan distance moved by vertices
	// during rebuilds.
	MigrateEnergy int64
}

// New creates a dynamic layout for t on the given curve. epsilon is the
// rebuild threshold: a rebuild triggers when insertions since the last
// rebuild exceed epsilon × current size (0 < epsilon; typical 0.05-0.5).
func New(t *tree.Tree, curve sfc.Curve, epsilon float64) (*Dyn, error) {
	if t.N() == 0 {
		return nil, fmt.Errorf("dynlayout: empty tree")
	}
	if epsilon <= 0 {
		return nil, fmt.Errorf("dynlayout: epsilon must be positive")
	}
	d := &Dyn{curve: curve, epsilon: epsilon}
	d.parent = append(d.parent, t.Parents()...)
	d.children = make([][]int, t.N())
	for v := 0; v < t.N(); v++ {
		d.children[v] = append([]int(nil), t.Children(v)...)
	}
	d.pos = make([]int, t.N())
	d.rebuildInPlace(false)
	return d, nil
}

// N returns the current vertex count.
func (d *Dyn) N() int { return len(d.parent) }

// Side returns the current grid side.
func (d *Dyn) Side() int { return d.side }

// Pos returns the grid coordinates of vertex v.
func (d *Dyn) Pos(v int) (x, y int) { return d.curve.XY(d.pos[v], d.side) }

// Tree returns a snapshot of the current tree.
func (d *Dyn) Tree() *tree.Tree { return tree.MustFromParents(d.parent) }

// InsertLeaf adds a new leaf under parent and returns its vertex id. The
// leaf is parked on the nearest free curve rank to the parent; a rebuild
// triggers when the drift budget is exhausted.
func (d *Dyn) InsertLeaf(parent int) (int, error) {
	if parent < 0 || parent >= d.N() {
		return 0, fmt.Errorf("dynlayout: parent %d out of range", parent)
	}
	v := d.N()
	d.parent = append(d.parent, parent)
	d.children = append(d.children, nil)
	d.children[parent] = append(d.children[parent], v)
	d.pos = append(d.pos, -1)

	if spread*d.N() > d.side*d.side {
		// Grid near capacity: grow and rebuild (places v too).
		d.rebuildInPlace(true)
		return v, nil
	}
	rank := d.nearestFree(d.pos[parent])
	d.pos[v] = rank
	d.used[rank] = true
	px, py := d.curve.XY(d.pos[parent], d.side)
	x, y := d.curve.XY(rank, d.side)
	d.ParkEnergy += int64(sfc.Manhattan(px, py, x, y))

	d.insertsSinceRebuild++
	if float64(d.insertsSinceRebuild) > d.epsilon*float64(d.N()) {
		d.rebuildInPlace(true)
	}
	return v, nil
}

// nearestFree scans curve ranks outward from r and returns the first
// free one. On a distance-bound curve, rank proximity implies grid
// proximity (dist ≤ α√gap), so the scan is a good parking heuristic.
func (d *Dyn) nearestFree(r int) int {
	limit := d.side * d.side
	for delta := 0; delta < limit; delta++ {
		if a := r - delta; a >= 0 && !d.used[a] {
			return a
		}
		if b := r + delta; b < limit && !d.used[b] {
			return b
		}
	}
	panic("dynlayout: no free processor (grid accounting bug)")
}

// spread is the gap factor: vertex with light-first rank r is placed at
// curve slot spread·r, leaving spread-1 free slots between neighbors.
const spread = 2

// rebuildInPlace recomputes the spread-out light-first placement; when
// migrate is true the movement energy of every vertex is charged.
func (d *Dyn) rebuildInPlace(migrate bool) {
	t := d.Tree()
	side := d.curve.Side(spread * t.N())
	if side < d.side {
		side = d.side // never shrink (avoids thrashing)
	}
	o := order.LightFirst(t)
	newPos := make([]int, t.N())
	for v, r := range o.Rank {
		newPos[v] = spread * r
	}
	if migrate {
		for v := 0; v < t.N(); v++ {
			if d.pos[v] < 0 {
				continue // vertex not yet placed (triggering insert)
			}
			ox, oy := d.curve.XY(d.pos[v], d.side)
			nx, ny := d.curve.XY(newPos[v], side)
			d.MigrateEnergy += int64(sfc.Manhattan(ox, oy, nx, ny))
		}
		d.Rebuilds++
	}
	d.side = side
	d.pos = append(d.pos[:0], newPos...)
	d.used = make([]bool, side*side)
	for _, r := range d.pos {
		d.used[r] = true
	}
	d.insertsSinceRebuild = 0
}

// KernelCost measures the current parent→children messaging kernel — the
// quantity Theorem 1 bounds for a fresh layout; the dynamic guarantee is
// staying within a modest factor of it between rebuilds.
func (d *Dyn) KernelCost() layout.KernelCost {
	var k layout.KernelCost
	for v := 0; v < d.N(); v++ {
		px, py := d.Pos(v)
		for _, c := range d.children[v] {
			cx, cy := d.Pos(c)
			dist := sfc.Manhattan(px, py, cx, cy)
			k.Messages++
			k.Energy += int64(dist)
			if dist > k.MaxDist {
				k.MaxDist = dist
			}
		}
	}
	if k.Messages > 0 {
		k.PerMessage = float64(k.Energy) / float64(k.Messages)
	}
	if d.N() > 0 {
		k.PerVertex = float64(k.Energy) / float64(d.N())
	}
	return k
}

// FreshKernelCost measures the kernel of a from-scratch light-first
// layout of the current tree — the static optimum the dynamic layout is
// compared against.
func (d *Dyn) FreshKernelCost() layout.KernelCost {
	return layout.ParentChildEnergy(layout.LightFirst(d.Tree(), d.curve))
}
