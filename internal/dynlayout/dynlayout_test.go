package dynlayout

import (
	"testing"

	"spatialtree/internal/rng"
	"spatialtree/internal/sfc"
	"spatialtree/internal/tree"
)

func freshEnergy(t *testing.T, d *Dyn) int64 {
	t.Helper()
	k, err := d.FreshKernelCost()
	if err != nil {
		t.Fatal(err)
	}
	return k.Energy
}

func snapshot(t *testing.T, d *Dyn) *tree.Tree {
	t.Helper()
	tr, err := d.Tree()
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestNewNearStaticLayout(t *testing.T) {
	// The spread-out layout pays at most a constant factor (≈√2 on a
	// distance-bound curve) over the dense light-first optimum.
	tr := tree.RandomAttachment(200, rng.New(1))
	d, err := New(tr, sfc.Hilbert{}, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	got, fresh := d.KernelCost().Energy, freshEnergy(t, d)
	if got < fresh {
		t.Fatalf("spread kernel %d beats dense optimum %d (impossible)", got, fresh)
	}
	if float64(got) > 2.5*float64(fresh) {
		t.Fatalf("spread kernel %d more than 2.5x dense optimum %d", got, fresh)
	}
	if d.Rebuilds != 0 {
		t.Fatal("construction must not count as a rebuild")
	}
}

func TestErrors(t *testing.T) {
	if _, err := New(tree.MustFromParents(nil), sfc.Hilbert{}, 0.1); err == nil {
		t.Error("empty tree accepted")
	}
	tr := tree.Path(4)
	if _, err := New(tr, sfc.Hilbert{}, 0); err == nil {
		t.Error("zero epsilon accepted")
	}
	d, _ := New(tr, sfc.Hilbert{}, 0.5)
	if _, err := d.InsertLeaf(99); err == nil {
		t.Error("out-of-range parent accepted")
	}
	if _, err := d.DeleteLeaf(-1); err == nil {
		t.Error("negative delete accepted")
	}
	if _, err := d.DeleteLeaf(99); err == nil {
		t.Error("out-of-range delete accepted")
	}
	if _, err := d.DeleteLeaf(0); err == nil {
		t.Error("deleting the root accepted")
	}
	if _, err := d.DeleteLeaf(1); err == nil {
		t.Error("deleting an internal vertex accepted") // Path: 1 has child 2
	}
}

func TestPositionsStayInjective(t *testing.T) {
	r := rng.New(2)
	d, _ := New(tree.RandomAttachment(50, r), sfc.Hilbert{}, 0.2)
	for i := 0; i < 2000; i++ {
		if _, err := d.InsertLeaf(r.Intn(d.N())); err != nil {
			t.Fatal(err)
		}
	}
	seen := make(map[int]bool, d.N())
	for v := 0; v < d.N(); v++ {
		x, y := d.Pos(v)
		key := y*d.Side() + x
		if seen[key] {
			t.Fatalf("two vertices share processor (%d,%d)", x, y)
		}
		seen[key] = true
	}
	if d.N() != 2050 {
		t.Fatalf("n = %d, want 2050", d.N())
	}
	if err := d.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestTreeStructureMaintained(t *testing.T) {
	r := rng.New(3)
	d, _ := New(tree.Path(10), sfc.Hilbert{}, 0.3)
	for i := 0; i < 500; i++ {
		if _, err := d.InsertLeaf(r.Intn(d.N())); err != nil {
			t.Fatal(err)
		}
	}
	// Tree() must validate and have the right size.
	if snapshot(t, d).N() != 510 {
		t.Fatalf("tree n = %d", snapshot(t, d).N())
	}
}

func TestKernelStaysNearOptimal(t *testing.T) {
	// Between rebuilds the kernel must stay within a modest factor of
	// the fresh layout; right after a rebuild they coincide.
	r := rng.New(4)
	d, _ := New(tree.RandomAttachment(512, r), sfc.Hilbert{}, 0.2)
	worst := 1.0
	for i := 0; i < 3000; i++ {
		if _, err := d.InsertLeaf(r.Intn(d.N())); err != nil {
			t.Fatal(err)
		}
		if i%250 == 0 {
			ratio := float64(d.KernelCost().Energy) / float64(freshEnergy(t, d))
			if ratio > worst {
				worst = ratio
			}
		}
	}
	if worst > 4.0 {
		t.Errorf("dynamic kernel drifted to %.2fx the fresh layout", worst)
	}
	if d.Rebuilds == 0 {
		t.Error("expected rebuilds over 3000 inserts with epsilon 0.2")
	}
}

func TestRebuildCountMatchesEpsilon(t *testing.T) {
	// Mutations between rebuilds ≈ ε·n, so the count over a doubling
	// should be around ln(2)/ε plus grid-growth rebuilds.
	r := rng.New(5)
	eps := 0.25
	d, _ := New(tree.RandomAttachment(1000, r), sfc.Hilbert{}, eps)
	for i := 0; i < 1000; i++ {
		d.InsertLeaf(r.Intn(d.N()))
	}
	if d.Rebuilds < 2 || d.Rebuilds > 8 {
		t.Errorf("rebuilds = %d over a doubling with eps=%.2f, want a handful", d.Rebuilds, eps)
	}
}

func TestGridGrowth(t *testing.T) {
	// Start at capacity; every insert must still succeed.
	d, _ := New(tree.Path(16), sfc.Hilbert{}, 10 /* effectively never rebuild by drift */)
	if d.Side() != 8 { // spread factor 2: needs 32 slots
		t.Fatalf("side = %d, want 8", d.Side())
	}
	r := rng.New(6)
	for i := 0; i < 100; i++ {
		if _, err := d.InsertLeaf(r.Intn(d.N())); err != nil {
			t.Fatal(err)
		}
	}
	if d.Side() < 16 { // 116 vertices × spread 2 = 232 slots
		t.Fatalf("grid did not grow: side %d for n=%d", d.Side(), d.N())
	}
	if d.N() != 116 {
		t.Fatalf("n = %d", d.N())
	}
}

func TestCostAccounting(t *testing.T) {
	r := rng.New(7)
	d, _ := New(tree.RandomAttachment(256, r), sfc.Hilbert{}, 0.1)
	for i := 0; i < 600; i++ {
		d.InsertLeaf(r.Intn(d.N()))
	}
	if d.ParkEnergy <= 0 {
		t.Error("parking energy not charged")
	}
	if d.Rebuilds > 0 && d.MigrateEnergy <= 0 {
		t.Error("migration energy not charged despite rebuilds")
	}
	if d.Inserts != 600 {
		t.Errorf("Inserts = %d, want 600", d.Inserts)
	}
	// Amortized: migration energy per insert should be O(√n/ε)-ish, not
	// O(n). With n≈856 and ε=0.1, allow a generous constant.
	perInsert := float64(d.MigrateEnergy) / 600
	if perInsert > 40*29/0.1 {
		t.Errorf("amortized migration energy %.1f per insert looks unbounded", perInsert)
	}
}

func TestParkingStaysLocal(t *testing.T) {
	// With few inserts and a sparse grid, parked leaves should sit very
	// close to their parents.
	d, _ := New(tree.Path(100), sfc.Hilbert{}, 100)
	v, err := d.InsertLeaf(50)
	if err != nil {
		t.Fatal(err)
	}
	px, py := d.Pos(50)
	vx, vy := d.Pos(v)
	if dist := abs(px-vx) + abs(py-vy); dist > 2*d.Side() {
		t.Errorf("parked leaf %d away from parent", dist)
	}
	if d.ParkEnergy == 0 {
		t.Error("no parking energy charged")
	}
}

func TestDeleteLeafRenumbers(t *testing.T) {
	// Path 0→1→2→3 plus two extra leaves under 1: deleting a middle
	// leaf must relabel the last vertex into the hole and keep the
	// structure valid.
	d, err := New(tree.Path(4), sfc.Hilbert{}, 100)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := d.InsertLeaf(1) // id 4
	b, _ := d.InsertLeaf(1) // id 5
	if a != 4 || b != 5 {
		t.Fatalf("insert ids %d, %d", a, b)
	}
	moved, err := d.DeleteLeaf(a)
	if err != nil {
		t.Fatal(err)
	}
	if moved != b {
		t.Fatalf("moved = %d, want %d (last id takes the hole)", moved, b)
	}
	if d.N() != 5 {
		t.Fatalf("n = %d, want 5", d.N())
	}
	tr := snapshot(t, d)
	if tr.Parent(4) != 1 { // old vertex 5, now id 4, still hangs off 1
		t.Fatalf("renumbered leaf has parent %d, want 1", tr.Parent(4))
	}
	if err := d.CheckInvariants(); err != nil {
		t.Fatal(err)
	}

	// Deleting the current last id moves nothing.
	moved, err = d.DeleteLeaf(4)
	if err != nil {
		t.Fatal(err)
	}
	if moved != 4 {
		t.Fatalf("moved = %d, want 4 (nothing renumbered)", moved)
	}
	if err := d.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestDeleteLeafParentIsLast(t *testing.T) {
	// Relabeling edge case: the deleted leaf's parent is itself the
	// last id. parents {-1,0,1,1,3}: deleting leaf 2 relabels 4→2 (its
	// parent 3 keeps its id); the new leaf 2 then hangs off vertex 3,
	// which IS the last id, so deleting it renumbers its own parent.
	d, err := New(tree.MustFromParents([]int{-1, 0, 1, 1, 3}), sfc.Hilbert{}, 100)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.DeleteLeaf(2); err != nil { // relabels 4→2
		t.Fatal(err)
	}
	if err := d.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if p := snapshot(t, d).Parent(2); p != 3 {
		t.Fatalf("renumbered leaf has parent %d, want 3", p)
	}
	if _, err := d.DeleteLeaf(2); err != nil { // parent 3 == last id moves
		t.Fatal(err)
	}
	if err := d.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if n := snapshot(t, d).N(); n != 3 {
		t.Fatalf("n = %d, want 3", n)
	}
}

func TestDeleteTriggersRebuildAndShrink(t *testing.T) {
	// Grow a tree to inflate the grid, then delete most of it: rebuilds
	// must fire on the deletion budget and the grid must shrink once the
	// fresh side is at most half the current one.
	r := rng.New(8)
	d, _ := New(tree.RandomAttachment(64, r), sfc.Hilbert{}, 0.2)
	for i := 0; i < 1000; i++ {
		if _, err := d.InsertLeaf(r.Intn(d.N())); err != nil {
			t.Fatal(err)
		}
	}
	grown := d.Side()
	if grown < 32 { // 1064 vertices × spread 2 > 1024
		t.Fatalf("side = %d after growth, want ≥ 32", grown)
	}
	rebuildsBefore := d.Rebuilds
	deleted := 0
	for deleted < 950 {
		v := d.N() - 1 // renumbering keeps ids contiguous; scan for a leaf
		for v > 0 && !d.IsLeaf(v) {
			v--
		}
		if v == 0 {
			t.Fatal("no deletable leaf found")
		}
		if _, err := d.DeleteLeaf(v); err != nil {
			t.Fatal(err)
		}
		deleted++
	}
	if d.Rebuilds == rebuildsBefore {
		t.Error("deletions never triggered a rebuild")
	}
	if d.Side() >= grown {
		t.Errorf("grid did not shrink: side %d for n=%d (was %d)", d.Side(), d.N(), grown)
	}
	if d.Deletes != deleted {
		t.Errorf("Deletes = %d, want %d", d.Deletes, deleted)
	}
	if err := d.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestShrinkHysteresis(t *testing.T) {
	// A fresh side within a factor two of the current one must be kept.
	r := rng.New(9)
	d, _ := New(tree.RandomAttachment(120, r), sfc.Hilbert{}, 0.05)
	side := d.Side() // 240 slots → side 16
	if side != 16 {
		t.Fatalf("side = %d, want 16", side)
	}
	// Delete a handful of leaves — enough for several rebuilds at
	// ε=0.05 but nowhere near a halving.
	deleted := 0
	for v := d.N() - 1; v >= 0 && deleted < 20; v-- {
		if d.IsLeaf(v) {
			if _, err := d.DeleteLeaf(v); err != nil {
				t.Fatal(err)
			}
			deleted++
		}
	}
	if d.Rebuilds == 0 {
		t.Fatal("expected rebuilds at ε=0.05")
	}
	if d.Side() != side {
		t.Errorf("side shrank to %d on a small deletion wave (hysteresis broken)", d.Side())
	}
}

func TestPlacementMatchesPositions(t *testing.T) {
	r := rng.New(10)
	d, _ := New(tree.RandomAttachment(100, r), sfc.Hilbert{}, 0.3)
	for i := 0; i < 50; i++ {
		d.InsertLeaf(r.Intn(d.N()))
	}
	p, err := d.Placement()
	if err != nil {
		t.Fatal(err)
	}
	if p.Side != d.Side() || p.Tree.N() != d.N() {
		t.Fatalf("placement side %d n %d vs dyn side %d n %d", p.Side, p.Tree.N(), d.Side(), d.N())
	}
	for v := 0; v < d.N(); v++ {
		dx, dy := d.Pos(v)
		px, py := p.Pos(v)
		if dx != px || dy != py {
			t.Fatalf("vertex %d at (%d,%d) in dyn, (%d,%d) in placement", v, dx, dy, px, py)
		}
	}
	ranks := d.Ranks()
	if len(ranks) != d.N() {
		t.Fatalf("Ranks() has %d entries", len(ranks))
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func TestKernelCostSingleVertex(t *testing.T) {
	d, err := New(tree.MustFromParents([]int{-1}), sfc.Hilbert{}, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	k := d.KernelCost()
	if k.Messages != 0 || k.Energy != 0 || k.PerMessage != 0 || k.PerVertex != 0 {
		t.Fatalf("single-vertex kernel = %+v, want zeros (no NaN)", k)
	}
	fresh, err := d.FreshKernelCost()
	if err != nil {
		t.Fatal(err)
	}
	if fresh.Energy != 0 || fresh.PerMessage != 0 {
		t.Fatalf("single-vertex fresh kernel = %+v", fresh)
	}
	if err := d.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestRetuneSwitchesCurveAndEpsilon(t *testing.T) {
	r := rng.New(11)
	d, _ := New(tree.RandomAttachment(150, r), sfc.Scatter{}, 0.4)
	for i := 0; i < 50; i++ {
		if _, err := d.InsertLeaf(r.Intn(d.N())); err != nil {
			t.Fatal(err)
		}
	}
	before := snapshot(t, d)
	rebuilds, migrated := d.Rebuilds, d.MigrateEnergy
	if err := d.Retune(sfc.Hilbert{}, 0.1); err != nil {
		t.Fatal(err)
	}
	if got := d.Curve().Name(); got != "hilbert" {
		t.Fatalf("curve = %q after retune, want hilbert", got)
	}
	if d.Epsilon() != 0.1 {
		t.Fatalf("epsilon = %v after retune, want 0.1", d.Epsilon())
	}
	if d.Rebuilds != rebuilds+1 {
		t.Fatalf("Rebuilds = %d, want %d (a retune is a rebuild)", d.Rebuilds, rebuilds+1)
	}
	if d.MigrateEnergy <= migrated {
		t.Fatal("retune moved every vertex but charged no migration energy")
	}
	if err := d.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	after := snapshot(t, d)
	if after.N() != before.N() {
		t.Fatalf("retune changed n: %d -> %d", before.N(), after.N())
	}
	for v := 1; v < after.N(); v++ {
		if after.Parent(v) != before.Parent(v) {
			t.Fatalf("retune changed parent of %d: %d -> %d", v, before.Parent(v), after.Parent(v))
		}
	}
}

func TestRetuneCurveChangePicksLegalSide(t *testing.T) {
	// Peano sides are powers of 3, Hilbert powers of 2: the shrink
	// hysteresis that keeps an old (larger) side across same-curve
	// rebuilds must not retain a side the new curve cannot address.
	r := rng.New(12)
	d, _ := New(tree.RandomAttachment(300, r), sfc.Peano{}, 0.3)
	if err := d.Retune(sfc.Hilbert{}, 0.3); err != nil {
		t.Fatal(err)
	}
	want := sfc.Hilbert{}.Side(2 * d.N())
	if d.Side() != want {
		t.Fatalf("side = %d after peano->hilbert retune, want hilbert-legal %d", d.Side(), want)
	}
	if err := d.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// And back: hilbert -> peano must land on a power of 3.
	if err := d.Retune(sfc.Peano{}, 0.3); err != nil {
		t.Fatal(err)
	}
	if want := (sfc.Peano{}).Side(2 * d.N()); d.Side() != want {
		t.Fatalf("side = %d after hilbert->peano retune, want peano-legal %d", d.Side(), want)
	}
	if err := d.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestRetuneRejectsBadEpsilon(t *testing.T) {
	d, _ := New(tree.Path(8), sfc.Hilbert{}, 0.2)
	if err := d.Retune(sfc.Moore{}, 0); err == nil {
		t.Fatal("zero epsilon accepted by Retune")
	}
	if d.Curve().Name() != "hilbert" || d.Epsilon() != 0.2 {
		t.Fatal("failed retune mutated the layout config")
	}
}
