package dynlayout

import (
	"testing"

	"spatialtree/internal/rng"
	"spatialtree/internal/sfc"
	"spatialtree/internal/tree"
)

func TestNewNearStaticLayout(t *testing.T) {
	// The spread-out layout pays at most a constant factor (≈√2 on a
	// distance-bound curve) over the dense light-first optimum.
	tr := tree.RandomAttachment(200, rng.New(1))
	d, err := New(tr, sfc.Hilbert{}, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	got, fresh := d.KernelCost().Energy, d.FreshKernelCost().Energy
	if got < fresh {
		t.Fatalf("spread kernel %d beats dense optimum %d (impossible)", got, fresh)
	}
	if float64(got) > 2.5*float64(fresh) {
		t.Fatalf("spread kernel %d more than 2.5x dense optimum %d", got, fresh)
	}
	if d.Rebuilds != 0 {
		t.Fatal("construction must not count as a rebuild")
	}
}

func TestErrors(t *testing.T) {
	if _, err := New(tree.MustFromParents(nil), sfc.Hilbert{}, 0.1); err == nil {
		t.Error("empty tree accepted")
	}
	tr := tree.Path(4)
	if _, err := New(tr, sfc.Hilbert{}, 0); err == nil {
		t.Error("zero epsilon accepted")
	}
	d, _ := New(tr, sfc.Hilbert{}, 0.5)
	if _, err := d.InsertLeaf(99); err == nil {
		t.Error("out-of-range parent accepted")
	}
}

func TestPositionsStayInjective(t *testing.T) {
	r := rng.New(2)
	d, _ := New(tree.RandomAttachment(50, r), sfc.Hilbert{}, 0.2)
	for i := 0; i < 2000; i++ {
		if _, err := d.InsertLeaf(r.Intn(d.N())); err != nil {
			t.Fatal(err)
		}
	}
	seen := make(map[int]bool, d.N())
	for v := 0; v < d.N(); v++ {
		x, y := d.Pos(v)
		key := y*d.Side() + x
		if seen[key] {
			t.Fatalf("two vertices share processor (%d,%d)", x, y)
		}
		seen[key] = true
	}
	if d.N() != 2050 {
		t.Fatalf("n = %d, want 2050", d.N())
	}
}

func TestTreeStructureMaintained(t *testing.T) {
	r := rng.New(3)
	d, _ := New(tree.Path(10), sfc.Hilbert{}, 0.3)
	for i := 0; i < 500; i++ {
		if _, err := d.InsertLeaf(r.Intn(d.N())); err != nil {
			t.Fatal(err)
		}
	}
	// Tree() must validate (MustFromParents would panic otherwise) and
	// have the right size.
	if d.Tree().N() != 510 {
		t.Fatalf("tree n = %d", d.Tree().N())
	}
}

func TestKernelStaysNearOptimal(t *testing.T) {
	// Between rebuilds the kernel must stay within a modest factor of
	// the fresh layout; right after a rebuild they coincide.
	r := rng.New(4)
	d, _ := New(tree.RandomAttachment(512, r), sfc.Hilbert{}, 0.2)
	worst := 1.0
	for i := 0; i < 3000; i++ {
		if _, err := d.InsertLeaf(r.Intn(d.N())); err != nil {
			t.Fatal(err)
		}
		if i%250 == 0 {
			ratio := float64(d.KernelCost().Energy) / float64(d.FreshKernelCost().Energy)
			if ratio > worst {
				worst = ratio
			}
		}
	}
	if worst > 4.0 {
		t.Errorf("dynamic kernel drifted to %.2fx the fresh layout", worst)
	}
	if d.Rebuilds == 0 {
		t.Error("expected rebuilds over 3000 inserts with epsilon 0.2")
	}
}

func TestRebuildCountMatchesEpsilon(t *testing.T) {
	// Inserts between rebuilds ≈ ε·n, so the count over a doubling
	// should be around ln(2)/ε plus grid-growth rebuilds.
	r := rng.New(5)
	eps := 0.25
	d, _ := New(tree.RandomAttachment(1000, r), sfc.Hilbert{}, eps)
	for i := 0; i < 1000; i++ {
		d.InsertLeaf(r.Intn(d.N()))
	}
	if d.Rebuilds < 2 || d.Rebuilds > 8 {
		t.Errorf("rebuilds = %d over a doubling with eps=%.2f, want a handful", d.Rebuilds, eps)
	}
}

func TestGridGrowth(t *testing.T) {
	// Start at capacity; every insert must still succeed.
	d, _ := New(tree.Path(16), sfc.Hilbert{}, 10 /* effectively never rebuild by drift */)
	if d.Side() != 8 { // spread factor 2: needs 32 slots
		t.Fatalf("side = %d, want 8", d.Side())
	}
	r := rng.New(6)
	for i := 0; i < 100; i++ {
		if _, err := d.InsertLeaf(r.Intn(d.N())); err != nil {
			t.Fatal(err)
		}
	}
	if d.Side() < 16 { // 116 vertices × spread 2 = 232 slots
		t.Fatalf("grid did not grow: side %d for n=%d", d.Side(), d.N())
	}
	if d.N() != 116 {
		t.Fatalf("n = %d", d.N())
	}
}

func TestCostAccounting(t *testing.T) {
	r := rng.New(7)
	d, _ := New(tree.RandomAttachment(256, r), sfc.Hilbert{}, 0.1)
	for i := 0; i < 600; i++ {
		d.InsertLeaf(r.Intn(d.N()))
	}
	if d.ParkEnergy <= 0 {
		t.Error("parking energy not charged")
	}
	if d.Rebuilds > 0 && d.MigrateEnergy <= 0 {
		t.Error("migration energy not charged despite rebuilds")
	}
	// Amortized: migration energy per insert should be O(√n/ε)-ish, not
	// O(n). With n≈856 and ε=0.1, allow a generous constant.
	perInsert := float64(d.MigrateEnergy) / 600
	if perInsert > 40*29/0.1 {
		t.Errorf("amortized migration energy %.1f per insert looks unbounded", perInsert)
	}
}

func TestParkingStaysLocal(t *testing.T) {
	// With few inserts and a sparse grid, parked leaves should sit very
	// close to their parents.
	d, _ := New(tree.Path(100), sfc.Hilbert{}, 100)
	v, err := d.InsertLeaf(50)
	if err != nil {
		t.Fatal(err)
	}
	px, py := d.Pos(50)
	vx, vy := d.Pos(v)
	if dist := abs(px-vx) + abs(py-vy); dist > 2*d.Side() {
		t.Errorf("parked leaf %d away from parent", dist)
	}
	if d.ParkEnergy == 0 {
		t.Error("no parking energy charged")
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
