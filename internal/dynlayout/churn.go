package dynlayout

// MutTree is the mutation surface shared by *Dyn and the engine's
// DynEngine: just enough to drive a churn schedule against either, so
// the acceptance benchmark and the serving load generator exercise one
// and the same workload shape.
type MutTree interface {
	N() int
	IsLeaf(v int) bool
	InsertLeaf(parent int) (int, error)
	DeleteLeaf(v int) (int, error)
}

// DeleteYoungestLeaf removes the highest-id leaf whose id is ≥ floor
// and reports whether one existed. With floor set to a churn workload's
// original vertex count, only previously inserted leaves are ever
// deleted, so DeleteLeaf's swap-last renumbering can never touch an
// original id — queries addressed to the original vertices stay valid
// for the whole run. BenchmarkE14DynChurn and spatialserve's churn mode
// both build their delete steps on exactly this invariant.
func DeleteYoungestLeaf(mt MutTree, floor int) (bool, error) {
	for v := mt.N() - 1; v >= floor; v-- {
		if mt.IsLeaf(v) {
			if _, err := mt.DeleteLeaf(v); err != nil {
				return false, err
			}
			return true, nil
		}
	}
	return false, nil
}
