package exec

import (
	"sync"
	"testing"

	"spatialtree/internal/exprtree"
	"spatialtree/internal/layout"
	"spatialtree/internal/lca"
	"spatialtree/internal/machine"
	"spatialtree/internal/mincut"
	"spatialtree/internal/rng"
	"spatialtree/internal/sfc"
	"spatialtree/internal/tree"
	"spatialtree/internal/treefix"
)

func testConfig(t *testing.T, tr *tree.Tree) Config {
	t.Helper()
	return Config{
		Tree:      tr,
		Placement: layout.LightFirst(tr, sfc.Hilbert{}),
		Workers:   4,
	}
}

func TestNamesAndNormalize(t *testing.T) {
	if Normalize("") != Sim {
		t.Fatal("empty backend must normalize to sim")
	}
	for _, name := range Names() {
		if !Valid(name) {
			t.Fatalf("registered backend %q invalid", name)
		}
	}
	if Valid("warp") {
		t.Fatal("unknown backend accepted")
	}
	if _, err := New("warp", Config{Tree: tree.MustFromParents([]int{-1})}); err == nil {
		t.Fatal("New accepted unknown backend")
	}
	if _, err := New(Native, Config{}); err == nil {
		t.Fatal("New accepted nil tree")
	}
	if _, err := New(Sim, Config{Tree: tree.MustFromParents([]int{-1})}); err == nil {
		t.Fatal("sim backend accepted nil placement")
	}
}

// TestBackendsAgree runs every kernel through both backends and the
// host oracles on shared inputs: the differential core of the layer.
func TestBackendsAgree(t *testing.T) {
	for _, n := range []int{2, 16, 257} {
		tr := tree.RandomAttachment(n, rng.New(uint64(n)))
		cfg := testConfig(t, tr)
		simB, err := New(Sim, cfg)
		if err != nil {
			t.Fatal(err)
		}
		natB, err := New(Native, cfg)
		if err != nil {
			t.Fatal(err)
		}
		vals := make([]int64, n)
		r := rng.New(uint64(n) + 1)
		for i := range vals {
			vals[i] = int64(r.Intn(999)) - 499
		}
		for _, op := range []treefix.Op{treefix.Add, treefix.Max, treefix.Min, treefix.Xor} {
			wantBU := treefix.SequentialBottomUp(tr, vals, op)
			wantTD := treefix.SequentialTopDown(tr, vals, op)
			for _, be := range []Backend{simB, natB} {
				run := be.Run(7)
				gotBU, err := run.BottomUp(vals, op)
				if err != nil {
					t.Fatal(err)
				}
				gotTD, err := run.TopDown(vals, op)
				if err != nil {
					t.Fatal(err)
				}
				for v := 0; v < n; v++ {
					if gotBU[v] != wantBU[v] || gotTD[v] != wantTD[v] {
						t.Fatalf("n=%d backend=%s op=%s vertex %d: (%d,%d), want (%d,%d)",
							n, be.Name(), op.Name, v, gotBU[v], gotTD[v], wantBU[v], wantTD[v])
					}
				}
			}
		}
		queries := make([]lca.Query, n/2+1)
		for i := range queries {
			queries[i] = lca.Query{U: r.Intn(n), V: r.Intn(n)}
		}
		oracle := lca.NewOracle(tr)
		edges := mincut.RandomGraph(tr, n/2, 9, rng.New(uint64(n)+2))
		wantCut := mincut.OneRespectingSequential(tr, edges)
		for _, be := range []Backend{simB, natB} {
			run := be.Run(8)
			answers, err := run.LCA(queries)
			if err != nil {
				t.Fatal(err)
			}
			for i, q := range queries {
				if want := oracle.LCA(q.U, q.V); answers[i] != want {
					t.Fatalf("n=%d backend=%s query %d: %d, want %d", n, be.Name(), i, answers[i], want)
				}
			}
			cut, err := run.MinCut(edges)
			if err != nil {
				t.Fatal(err)
			}
			if cut.MinWeight != wantCut.MinWeight || cut.ArgVertex != wantCut.ArgVertex {
				t.Fatalf("n=%d backend=%s: cut (%d, v%d), want (%d, v%d)",
					n, be.Name(), cut.MinWeight, cut.ArgVertex, wantCut.MinWeight, wantCut.ArgVertex)
			}
		}
	}
	// Expression kernel (its own tree shape: full binary).
	x := exprtree.Random(64, rng.New(9))
	want := x.EvalSequential()[x.Tree.Root()]
	cfg := testConfig(t, x.Tree)
	for _, name := range Names() {
		be, err := New(name, cfg)
		if err != nil {
			t.Fatal(err)
		}
		got, err := be.Run(3).Expr(x)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("backend=%s: expr %d, want %d", name, got, want)
		}
	}
}

// TestCostContract pins the metering split: sim runs meter every
// message, native runs meter nothing.
func TestCostContract(t *testing.T) {
	tr := tree.RandomAttachment(64, rng.New(3))
	cfg := testConfig(t, tr)
	vals := make([]int64, tr.N())
	simB, err := New(Sim, cfg)
	if err != nil {
		t.Fatal(err)
	}
	run := simB.Run(1)
	if _, err := run.BottomUp(vals, treefix.Add); err != nil {
		t.Fatal(err)
	}
	if c := run.Cost(); c.Energy <= 0 || c.Messages <= 0 || c.Depth <= 0 {
		t.Fatalf("sim run metered nothing: %+v", c)
	}
	natB, err := New(Native, cfg)
	if err != nil {
		t.Fatal(err)
	}
	nrun := natB.Run(1)
	if _, err := nrun.BottomUp(vals, treefix.Add); err != nil {
		t.Fatal(err)
	}
	if c := nrun.Cost(); c != (machine.Cost{}) {
		t.Fatalf("native run metered: %+v", c)
	}
}

// TestNativeHammer is the race-detector hammer over the native kernels:
// one shared backend, many goroutines issuing mixed concurrent runs
// (the engine runs distinct batches concurrently on one backend, so the
// shared preprocessed state must be race-free under load).
func TestNativeHammer(t *testing.T) {
	tr := tree.RandomAttachment(512, rng.New(11))
	be, err := New(Native, testConfig(t, tr))
	if err != nil {
		t.Fatal(err)
	}
	n := tr.N()
	oracle := lca.NewOracle(tr)
	edges := mincut.RandomGraph(tr, n/2, 7, rng.New(12))
	wantCut := mincut.OneRespectingSequential(tr, edges)
	x := exprtree.Random(128, rng.New(13))
	wantExpr := x.EvalSequential()[x.Tree.Root()]
	exprBE, err := New(Native, testConfig(t, x.Tree))
	if err != nil {
		t.Fatal(err)
	}
	const goroutines = 16
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			r := rng.New(uint64(g) + 100)
			vals := make([]int64, n)
			for i := range vals {
				vals[i] = int64(r.Intn(1000))
			}
			for iter := 0; iter < 8; iter++ {
				run := be.Run(uint64(iter))
				switch (g + iter) % 4 {
				case 0:
					op := []treefix.Op{treefix.Add, treefix.Max, treefix.Min, treefix.Xor}[iter%4]
					want := treefix.SequentialBottomUp(tr, vals, op)
					got, err := run.BottomUp(vals, op)
					if err != nil {
						t.Error(err)
						return
					}
					for v := range want {
						if got[v] != want[v] {
							t.Errorf("hammer bottom-up mismatch at %d", v)
							return
						}
					}
				case 1:
					qs := []lca.Query{{U: r.Intn(n), V: r.Intn(n)}, {U: r.Intn(n), V: r.Intn(n)}}
					got, err := run.LCA(qs)
					if err != nil {
						t.Error(err)
						return
					}
					for i, q := range qs {
						if got[i] != oracle.LCA(q.U, q.V) {
							t.Errorf("hammer LCA mismatch")
							return
						}
					}
				case 2:
					got, err := run.MinCut(edges)
					if err != nil {
						t.Error(err)
						return
					}
					if got.MinWeight != wantCut.MinWeight {
						t.Errorf("hammer min-cut mismatch")
						return
					}
				case 3:
					got, err := exprBE.Run(uint64(iter)).Expr(x)
					if err != nil {
						t.Error(err)
						return
					}
					if got != wantExpr {
						t.Errorf("hammer expr mismatch")
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
}
