package exec

import (
	"sync"

	"spatialtree/internal/exprtree"
	"spatialtree/internal/lca"
	"spatialtree/internal/machine"
	"spatialtree/internal/mincut"
	"spatialtree/internal/tree"
	"spatialtree/internal/treefix"
)

// nativeBackend is the goroutine-parallel backend: per-tree
// preprocessing built once and shared by every batch, kernels executed
// with fork-join parallelism (internal/par) and no simulator
// bookkeeping. The treefix tour positions are built eagerly (O(n), and
// nearly every workload needs them); the LCA sparse table and the
// min-cut executor are built on first use — an LCA-free shard never
// pays the O(n log n) table.
type nativeBackend struct {
	t       *tree.Tree
	workers int
	tf      *treefix.Engine
	// run is the pre-boxed Run value: Run() sits on the per-batch hot
	// path and reboxing nativeRun into the interface there would cost an
	// allocation per batch.
	run Run

	lcaOnce sync.Once
	lcaEng  *lca.Engine
	mcOnce  sync.Once
	mc      *mincut.Parallel
}

func newNative(cfg Config) *nativeBackend {
	b := &nativeBackend{
		t:       cfg.Tree,
		workers: cfg.Workers,
		tf:      treefix.NewEngine(cfg.Tree, cfg.Workers),
	}
	b.run = nativeRun{b}
	return b
}

func (b *nativeBackend) Name() string { return Native }

func (b *nativeBackend) lca() *lca.Engine {
	b.lcaOnce.Do(func() { b.lcaEng = lca.NewEngine(b.t, b.workers) })
	return b.lcaEng
}

func (b *nativeBackend) mincut() *mincut.Parallel {
	b.mcOnce.Do(func() { b.mc = mincut.NewParallel(b.t, b.tf, b.lca(), b.workers) })
	return b.mc
}

// Run opens a batch context. Native kernels are deterministic, so the
// seed is ignored and the "run" is just a view of the shared
// preprocessed state — safe for concurrent batches, since kernels only
// read it and allocate their own (exactly pre-sized) outputs.
func (b *nativeBackend) Run(uint64) Run { return b.run }

type nativeRun struct{ b *nativeBackend }

func (run nativeRun) BottomUp(vals []int64, op treefix.Op) ([]int64, error) {
	return run.b.tf.BottomUp(vals, op)
}

func (run nativeRun) TopDown(vals []int64, op treefix.Op) ([]int64, error) {
	return run.b.tf.TopDown(vals, op)
}

func (run nativeRun) LCA(queries []lca.Query) ([]int, error) {
	return run.b.lca().BatchLCA(queries), nil
}

func (run nativeRun) MinCut(edges []mincut.Edge) (mincut.Result, error) {
	return run.b.mincut().OneRespecting(edges)
}

func (run nativeRun) Expr(x *exprtree.Expr) (int64, error) {
	v, _ := exprtree.EvalParallel(x, run.b.workers)
	return v, nil
}

// Cost is identically zero: native execution does no model accounting.
// Engines that still want sampled model costs arm shadow metering,
// which runs 1-in-N batches through a sim Run as well.
func (nativeRun) Cost() machine.Cost { return machine.Cost{} }
