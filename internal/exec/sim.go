package exec

import (
	"fmt"

	"spatialtree/internal/exprtree"
	"spatialtree/internal/layout"
	"spatialtree/internal/lca"
	"spatialtree/internal/machine"
	"spatialtree/internal/mincut"
	"spatialtree/internal/rng"
	"spatialtree/internal/tree"
	"spatialtree/internal/treefix"
)

// simBackend is the spatial-computer simulator backend: the engine's
// historical serving path, preserved exactly — a fresh simulator per
// batch sized by the placement's grid, the placement's ranks as message
// endpoints, and the dense light-first rank for the order-dependent
// kernels. Its Runs record the exact model cost of every message.
type simBackend struct {
	t         *tree.Tree
	p         *layout.Placement
	orderRank func() []int
}

func newSim(cfg Config) (Backend, error) {
	if cfg.Placement == nil {
		return nil, fmt.Errorf("exec: sim backend requires a placement")
	}
	orderRank := cfg.OrderRank
	if orderRank == nil {
		orderRank = func() []int { return cfg.Placement.Order.Rank }
	}
	return &simBackend{t: cfg.Tree, p: cfg.Placement, orderRank: orderRank}, nil
}

func (b *simBackend) Name() string { return Sim }

// Run opens a batch context on a fresh simulator. The simulator is
// sized by the placement's grid, not the vertex count: for standard
// placements these coincide (Side == Curve.Side(n)), but a dynamic
// layout's spread positions occupy ranks up to Side².
func (b *simBackend) Run(seed uint64) Run {
	return &simRun{
		b: b,
		s: machine.New(b.p.Side*b.p.Side, b.p.Curve),
		r: rng.New(seed),
	}
}

// simRun executes one batch's kernels against a shared simulator, so
// per-run setup is paid once per batch and requests' costs accumulate
// on one set of counters.
type simRun struct {
	b *simBackend
	s *machine.Sim
	r *rng.RNG
}

func (run *simRun) BottomUp(vals []int64, op treefix.Op) ([]int64, error) {
	sums, _ := treefix.BottomUp(run.s, run.b.t, run.b.p.Order.Rank, vals, op, run.r)
	return sums, nil
}

func (run *simRun) TopDown(vals []int64, op treefix.Op) ([]int64, error) {
	sums, _ := treefix.TopDown(run.s, run.b.t, run.b.p.Order.Rank, vals, op, run.r)
	return sums, nil
}

func (run *simRun) LCA(queries []lca.Query) ([]int, error) {
	answers, _ := lca.Batched(run.s, run.b.t, run.b.orderRank(), queries, run.r)
	return answers, nil
}

func (run *simRun) MinCut(edges []mincut.Edge) (mincut.Result, error) {
	return mincut.OneRespecting(run.s, run.b.t, run.b.orderRank(), edges, run.r)
}

func (run *simRun) Expr(x *exprtree.Expr) (int64, error) {
	v, _ := exprtree.EvalSpatial(run.s, x, run.b.p.Order.Rank)
	return v, nil
}

func (run *simRun) Cost() machine.Cost { return run.s.Cost() }
