// Package exec is the execution-backend layer between the batch engine
// and the kernels: one batch-serving abstraction, many pluggable
// executors — the shape of Curtin et al.'s tree-independent dual-tree
// framework (one traversal, many kernels), applied to the serving path.
//
// A Backend serves one tree and hands out per-batch Runs. Two
// implementations ship:
//
//   - Sim ("sim"): the spatial-computer simulator. Every kernel runs
//     through machine.Sim with exact Energy/Messages/Depth accounting
//     and per-processor dependency clocks — the paper's cost model,
//     byte-for-byte the engine's historical serving path. This is the
//     metering and validation backend: use it when the model costs ARE
//     the product (experiments, /metrics energy accounting, shadow
//     validation), not for wall-clock throughput.
//
//   - Native ("native"): goroutine-parallel kernels with zero simulator
//     bookkeeping — treefix via Euler-tour scans (internal/treefix
//     Engine, any registered operator), LCA via the sparse-table engine,
//     min-cut via the parallel D−2I decomposition, expression evaluation
//     via parallel Miller-Reif rakes. Per-tree preprocessing is built
//     once per backend and amortized across batches, the way the paper
//     amortizes layout construction (Section I-D). This is the serving
//     default: as fast as the hardware allows.
//
// Both backends compute identical results on identical inputs (the
// backend-differential suite pins this); they differ only in cost —
// wall-clock versus model. Run.Cost reports the model counters consumed
// so far in the batch: exact for sim, zero for native (the engine's
// shadow-metering mode samples batches through a sim run when model
// costs are still wanted on a native engine).
package exec

import (
	"fmt"

	"spatialtree/internal/exprtree"
	"spatialtree/internal/layout"
	"spatialtree/internal/lca"
	"spatialtree/internal/machine"
	"spatialtree/internal/mincut"
	"spatialtree/internal/tree"
	"spatialtree/internal/treefix"
)

// Backend names.
const (
	// Sim is the spatial-computer simulator backend: exact model-cost
	// metering, validation oracle.
	Sim = "sim"
	// Native is the goroutine-parallel backend: no simulator
	// bookkeeping, wall-clock serving speed.
	Native = "native"
)

// Names lists the registered backends, serving default first.
func Names() []string { return []string{Native, Sim} }

// Normalize resolves the empty backend name to Sim (the conservative,
// fully-metered default for direct engine users; the serving layer
// passes Native explicitly).
func Normalize(name string) string {
	if name == "" {
		return Sim
	}
	return name
}

// Valid reports whether name (after Normalize) is a registered backend.
func Valid(name string) bool {
	switch Normalize(name) {
	case Sim, Native:
		return true
	}
	return false
}

// Config carries what a backend needs to serve one tree.
type Config struct {
	// Tree is the served tree (required).
	Tree *tree.Tree
	// Placement is the tree's grid placement. Required by the sim
	// backend (simulator sizing, message endpoints); ignored by native.
	Placement *layout.Placement
	// OrderRank supplies the dense light-first rank the sim backend's
	// order-dependent kernels (LCA, min-cut) run on; nil means the
	// placement's own order. Called lazily, on first need. Ignored by
	// native, whose LCA/min-cut kernels are order-free.
	OrderRank func() []int
	// Workers bounds the native backend's goroutine parallelism
	// (<= 0 means GOMAXPROCS). Ignored by sim.
	Workers int
}

// Backend serves one tree through per-batch Runs. Implementations are
// safe for concurrent use; distinct Runs may execute concurrently.
type Backend interface {
	// Name returns the backend's registered name.
	Name() string
	// Run opens an execution context for one batch. seed drives any Las
	// Vegas coins (the sim contraction's random mates); native kernels
	// are deterministic and ignore it.
	Run(seed uint64) Run
}

// Run executes one batch's requests. Methods are called sequentially by
// one goroutine (the engine's batch runner); Cost reports the model
// counters the run has consumed so far, so callers can attribute
// per-request shares by differencing snapshots (zero throughout for
// native runs).
type Run interface {
	BottomUp(vals []int64, op treefix.Op) ([]int64, error)
	TopDown(vals []int64, op treefix.Op) ([]int64, error)
	LCA(queries []lca.Query) ([]int, error)
	MinCut(edges []mincut.Edge) (mincut.Result, error)
	Expr(x *exprtree.Expr) (int64, error)
	Cost() machine.Cost
}

// New builds the named backend ("" means Sim, see Normalize).
func New(name string, cfg Config) (Backend, error) {
	if cfg.Tree == nil {
		return nil, fmt.Errorf("exec: nil tree")
	}
	switch Normalize(name) {
	case Sim:
		return newSim(cfg)
	case Native:
		return newNative(cfg), nil
	}
	return nil, fmt.Errorf("exec: unknown backend %q (want %q or %q)", name, Native, Sim)
}
