package server

// Durability wiring: when Config.Store is set, the server persists its
// shard table — registered trees as placement snapshots, mutable shards
// as a snapshot plus a mutation WAL — and Recover rebuilds all of it on
// boot. Registered trees warm-start through the layout cache: their
// snapshots carry the light-first ranks, so recovery seeds the cache
// with an O(n) reconstruction and the subsequent pool registration is a
// cache hit instead of a fresh O(n log n) layout pipeline run per
// shard. Dyn shards replay their WAL's surviving records through the
// normal mutation path, verifying each record's result against the log.

import (
	"fmt"
	"strconv"
	"strings"

	"spatialtree/internal/engine"
	"spatialtree/internal/layout"
	"spatialtree/internal/order"
	"spatialtree/internal/persist"
	"spatialtree/internal/sfc"
	"spatialtree/internal/tree"
)

// RecoveryStats reports what a Recover call rebuilt.
type RecoveryStats struct {
	// Trees is the number of registered trees restored.
	Trees int
	// DynShards is the number of mutable shards restored.
	DynShards int
	// Records is the number of WAL records replayed across all shards.
	Records int
}

// Recover rebuilds the server's shard table from Config.Store: every
// persisted tree is re-registered (with its placement seeded into the
// layout cache, so no layout pipeline runs), every dyn shard is
// restored from its snapshot and its WAL's surviving records are
// replayed, and journaling is re-armed so new mutations append where
// the log left off. Call it once, after New and before serving; with no
// Store configured it is a no-op. Recovery does not count against
// MaxShards — the persisted state was admitted when it was created.
func (s *Server) Recover() (RecoveryStats, error) {
	var rs RecoveryStats
	if s.cfg.Durability.Store == nil {
		return rs, nil
	}
	saved, err := s.cfg.Durability.Store.LoadTrees()
	if err != nil {
		return rs, err
	}
	for _, st := range saved {
		if err := s.recoverTree(st); err != nil {
			return rs, fmt.Errorf("server: recovering tree %s: %w", st.ID, err)
		}
		rs.Trees++
	}
	ids, err := s.cfg.Durability.Store.ShardIDs()
	if err != nil {
		return rs, err
	}
	for _, id := range ids {
		replayed, err := s.recoverDynShard(id)
		if err != nil {
			return rs, fmt.Errorf("server: recovering shard %s: %w", id, err)
		}
		rs.DynShards++
		rs.Records += replayed
	}
	s.mu.Lock()
	s.recovered = rs
	s.mu.Unlock()
	return rs, nil
}

// recoverTree re-registers one persisted tree, seeding the layout cache
// with the snapshot's placement so the registration is a cache hit.
func (s *Server) recoverTree(st persist.SavedTree) error {
	t, err := tree.FromParents(st.Snap.Parents)
	if err != nil {
		return err
	}
	fp := engine.Fingerprint(t)
	if got := treeID(fp); got != st.ID {
		return fmt.Errorf("snapshot decodes to tree %s, not %s", got, st.ID)
	}
	c, err := sfc.ByName(st.Snap.Curve)
	if err != nil {
		return err
	}
	// Seed the cache only with a faithful static placement: the ranks
	// must be a dense permutation (the image of an order) on the side
	// the engine itself would choose, or the engine's simulators and
	// kernels would disagree with a freshly built shard.
	if st.Snap.Side != c.Side(t.N()) {
		return fmt.Errorf("snapshot side %d is not the curve's side for %d vertices", st.Snap.Side, t.N())
	}
	if !(order.Order{Rank: st.Snap.Ranks}).IsPermutation() {
		return fmt.Errorf("snapshot ranks are not a permutation")
	}
	p, err := layout.FromRanks(t, st.Snap.Order, st.Snap.Ranks, c, st.Snap.Side)
	if err != nil {
		return err
	}
	s.pool.Cache().Put(engine.CacheKey{Fingerprint: fp, Curve: st.Snap.Curve, Order: st.Snap.Order}, p)
	// Recovered trees come back on the server's default backend: the
	// backend is a serving-time knob, not durable state.
	_, err = s.registerTree(t, false, "")
	return err
}

// recoverDynShard restores one mutable shard: snapshot, WAL replay with
// per-record verification, journal re-arming, and a catch-up compaction
// when the surviving log already exceeds the threshold.
func (s *Server) recoverDynShard(id string) (replayed int, err error) {
	log, snap, recs, err := s.cfg.Durability.Store.OpenShardLog(id)
	if err != nil {
		return 0, err
	}
	de, err := s.pool.RestoreDynShard(dynStateFromSnap(snap))
	if err != nil {
		return 0, err
	}
	for _, r := range recs {
		if err := replayRecord(de, r); err != nil {
			return replayed, err
		}
		replayed++
	}
	de.SetJournal(s.journalFunc(log))
	s.mu.Lock()
	s.dyns[id] = de
	s.logs[id] = log
	s.backends[id] = de.Backend()
	if k, ok := dynSeq(id); ok && k > s.nextDyn {
		s.nextDyn = k
	}
	s.mu.Unlock()
	if log.NeedsCompact() {
		// Catch-up compaction is an optimization, exactly like the
		// runtime one in maybeCompact: a shard that recovered cleanly
		// must not fail the whole boot because folding its long-but-
		// valid log into a snapshot did not succeed.
		_ = log.Compact(dynSnapFromState(de.State()))
	}
	// A recovered shard rejoins the tuning loop; its snapshot already
	// carries any tuned curve/ε, so it warm-starts tuned and the tuner
	// only re-profiles from here.
	if s.tuner != nil {
		s.tuner.Adopt(id, de)
	}
	return replayed, nil
}

// replayRecord re-applies one WAL record through the engine's normal
// mutation path and verifies the outcome against what the log recorded
// when the mutation originally ran — replay is deterministic, so any
// disagreement means the snapshot and log do not belong together.
func replayRecord(de *engine.DynEngine, r persist.Record) error {
	var got int
	var err error
	switch r.Type {
	case persist.RecInsert:
		got, err = de.InsertLeaf(r.Arg)
	case persist.RecDelete:
		got, err = de.DeleteLeaf(r.Arg)
	default:
		return fmt.Errorf("unexpected WAL record type %d", r.Type)
	}
	if err != nil {
		return fmt.Errorf("replaying record at epoch %d: %w", r.Epoch, err)
	}
	if got != r.Result || de.Epoch() != r.Epoch {
		return fmt.Errorf("replay diverged at epoch %d: got result %d epoch %d, log says %d", r.Epoch, got, de.Epoch(), r.Result)
	}
	return nil
}

// journalFunc adapts a shard log into the engine's durability hook.
func (s *Server) journalFunc(log *persist.ShardLog) engine.JournalFunc {
	return func(rec engine.MutationRecord) error {
		if err := log.Append(persistRecord(rec)); err != nil {
			return err
		}
		s.journaled.Add(1)
		return nil
	}
}

// persistDynCreate initializes durability for a freshly created shard
// and arms its journal; called from handleDynCreate after the id is
// assigned. On failure the shard is served memory-only for this
// process's lifetime but reported as an error to the creator.
func (s *Server) persistDynCreate(id string, de *engine.DynEngine) error {
	if s.cfg.Durability.Store == nil {
		return nil
	}
	log, err := s.cfg.Durability.Store.CreateShardLog(id, dynSnapFromState(de.State()))
	if err != nil {
		return err
	}
	de.SetJournal(s.journalFunc(log))
	s.mu.Lock()
	s.logs[id] = log
	s.mu.Unlock()
	return nil
}

// maybeCompact folds a shard's WAL into a fresh snapshot once it
// outgrows the threshold. Best-effort: a failed compaction leaves the
// longer log in place, and the next mutation retries.
func (s *Server) maybeCompact(id string, de *engine.DynEngine) {
	s.mu.Lock()
	log := s.logs[id]
	s.mu.Unlock()
	if log == nil || !log.NeedsCompact() {
		return
	}
	_ = log.Compact(dynSnapFromState(de.State()))
}

// repairJournal restores a shard's durability after a failed append:
// the engine's epoch has run ahead of the log (the mutation applied in
// memory but its record was lost), the WAL's consecutive-epoch contract
// means the gap can never be filled, so the only way back is a fresh
// snapshot at the engine's current state — after which appends resume.
// Best-effort: while the disk stays broken this fails too, mutations
// keep returning 500, and every failure retries the repair.
func (s *Server) repairJournal(id string, de *engine.DynEngine) {
	s.mu.Lock()
	log := s.logs[id]
	s.mu.Unlock()
	if log == nil {
		return
	}
	st := de.State()
	if log.LastEpoch() >= st.Epoch {
		return // log is not behind; nothing to repair
	}
	_ = log.Compact(dynSnapFromState(st))
}

// persistTree saves a registered tree's placement snapshot.
func (s *Server) persistTree(id string, eng *engine.Engine) error {
	if s.cfg.Durability.Store == nil {
		return nil
	}
	p := eng.Placement()
	t := eng.Tree()
	return s.cfg.Durability.Store.SaveTree(id, persist.PlacementSnapshot{
		Parents: append([]int(nil), t.Parents()...),
		Curve:   p.Curve.Name(),
		Order:   p.Order.Name,
		Side:    p.Side,
		Ranks:   append([]int(nil), p.Order.Rank...),
	})
}

func persistRecord(rec engine.MutationRecord) persist.Record {
	r := persist.Record{Epoch: rec.Epoch, Arg: rec.Arg, Result: rec.Result}
	if rec.Op == engine.MutInsert {
		r.Type = persist.RecInsert
	} else {
		r.Type = persist.RecDelete
	}
	return r
}

func dynSnapFromState(st engine.DynState) persist.DynSnapshot {
	return persist.DynSnapshot{
		Parents:       st.Parents,
		Curve:         st.Curve,
		Side:          st.Side,
		Ranks:         st.Ranks,
		Epsilon:       st.Epsilon,
		Epoch:         st.Epoch,
		Drift:         st.Drift,
		Inserts:       st.Inserts,
		Deletes:       st.Deletes,
		Rebuilds:      st.Rebuilds,
		ParkEnergy:    st.ParkEnergy,
		MigrateEnergy: st.MigrateEnergy,
	}
}

func dynStateFromSnap(snap persist.DynSnapshot) engine.DynState {
	return engine.DynState{
		Parents:       snap.Parents,
		Ranks:         snap.Ranks,
		Side:          snap.Side,
		Curve:         snap.Curve,
		Epsilon:       snap.Epsilon,
		Epoch:         snap.Epoch,
		Drift:         snap.Drift,
		Inserts:       snap.Inserts,
		Deletes:       snap.Deletes,
		Rebuilds:      snap.Rebuilds,
		ParkEnergy:    snap.ParkEnergy,
		MigrateEnergy: snap.MigrateEnergy,
	}
}

// dynSeq extracts the numeric suffix of a dyn shard id ("d17" → 17).
func dynSeq(id string) (int, bool) {
	num, ok := strings.CutPrefix(id, "d")
	if !ok {
		return 0, false
	}
	k, err := strconv.Atoi(num)
	if err != nil || k < 0 {
		return 0, false
	}
	return k, true
}
