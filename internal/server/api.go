package server

// The wire types of the HTTP/JSON API. Every request body is a JSON
// object; every response is either the documented response object
// (status 200) or an ErrorResponse (status >= 400).

import "spatialtree/internal/tune"

// RegisterRequest registers an immutable tree with the server
// (POST /v1/trees). Parents is the parent array with parents[root] = -1.
// Backend optionally picks the shard's execution backend: "native"
// (goroutine-parallel serving, the default) or "sim" (every batch runs
// on the spatial-computer simulator with exact model-cost metering).
// Re-registering a tree with a different backend re-points its queries.
type RegisterRequest struct {
	Parents []int  `json:"parents"`
	Backend string `json:"backend,omitempty"`
}

// RegisterResponse identifies the registered tree. ID is derived from
// the structural fingerprint: registering an identical tree returns the
// same id and routes to the same shard. Backend echoes the shard's
// resolved execution backend.
type RegisterResponse struct {
	ID      string `json:"tree_id"`
	N       int    `json:"n"`
	Backend string `json:"backend"`
}

// LCAQuery asks for the lowest common ancestor of U and V.
type LCAQuery struct {
	U int `json:"u"`
	V int `json:"v"`
}

// GraphEdge is a weighted undirected edge for min-cut queries.
type GraphEdge struct {
	U int   `json:"u"`
	V int   `json:"v"`
	W int64 `json:"w"`
}

// QueryRequest submits one request to a shard (POST /v1/query and
// POST /v1/dyn/{id}/query). Kind selects the kernel: "treefix",
// "topdown", "lca", "mincut" or "expr". Exactly one of TreeID / Parents
// routes a /v1/query (setting both is a 400); the dyn endpoint ignores
// both.
//
// For kind "expr" the routed tree is interpreted as an expression tree:
// ExprKinds labels every vertex (0 = leaf, 1 = add, 2 = mul) and Vals
// carries the leaf constants (one entry per vertex; internal vertices'
// entries are ignored). The tree must be full binary — every internal
// vertex has exactly two children.
type QueryRequest struct {
	TreeID    string      `json:"tree_id,omitempty"`
	Parents   []int       `json:"parents,omitempty"`
	Kind      string      `json:"kind"`
	Op        string      `json:"op,omitempty"` // treefix/topdown: add|max|min|xor ("" = add)
	Vals      []int64     `json:"vals,omitempty"`
	Queries   []LCAQuery  `json:"queries,omitempty"`
	Edges     []GraphEdge `json:"edges,omitempty"`
	ExprKinds []int       `json:"expr_kinds,omitempty"` // expr: 0=leaf, 1=add, 2=mul per vertex
}

// Cost is the spatial-model cost attributed to a request: its
// incremental share of the shared batch simulator run.
type Cost struct {
	Energy   int64 `json:"energy"`
	Messages int64 `json:"messages"`
	Depth    int64 `json:"depth"`
}

// MinCutResult reports a 1-respecting minimum cut.
type MinCutResult struct {
	MinWeight int64 `json:"min_weight"`
	ArgVertex int   `json:"arg_vertex"`
}

// QueryResponse carries the kernel output: exactly the field matching
// the request kind is populated (Value for kind "expr").
type QueryResponse struct {
	Sums    []int64       `json:"sums,omitempty"`
	Answers []int         `json:"answers,omitempty"`
	MinCut  *MinCutResult `json:"min_cut,omitempty"`
	Value   *int64        `json:"value,omitempty"`
	Cost    Cost          `json:"cost"`
}

// DynCreateRequest creates a mutable shard (POST /v1/dyn). Epsilon <= 0
// uses the server's configured default; Backend "" uses the server's
// default execution backend (see RegisterRequest.Backend).
type DynCreateRequest struct {
	Parents []int   `json:"parents"`
	Epsilon float64 `json:"epsilon,omitempty"`
	Backend string  `json:"backend,omitempty"`
}

// DynCreateResponse identifies the new mutable shard. IDs are
// per-server handles (mutations change the tree's fingerprint, so
// mutable shards are routed by id, never structurally). Backend is the
// shard's resolved execution backend.
type DynCreateResponse struct {
	ID      string `json:"shard_id"`
	N       int    `json:"n"`
	Backend string `json:"backend"`
}

// MutateRequest applies one mutation to a dyn shard
// (POST /v1/dyn/{id}/mutate). Op is "insert" (Parent = attachment
// vertex) or "delete" (Leaf = vertex to remove).
type MutateRequest struct {
	Op     string `json:"op"`
	Parent int    `json:"parent,omitempty"`
	Leaf   int    `json:"leaf,omitempty"`
}

// MutateResponse reports the mutation outcome. Vertex is the id of an
// inserted leaf; Moved is the old id renumbered into a deleted slot
// (== the deleted leaf when nothing moved). Epoch and N describe the
// shard after the mutation.
type MutateResponse struct {
	Vertex int    `json:"vertex,omitempty"`
	Moved  int    `json:"moved,omitempty"`
	Epoch  uint64 `json:"epoch"`
	N      int    `json:"n"`
}

// HealthResponse is the /healthz body.
type HealthResponse struct {
	OK       bool `json:"ok"`
	Draining bool `json:"draining"`
}

// ErrorResponse is the body of every non-200 reply. Status names the
// server.Status the condition classified to (see docs/protocol.md).
// Owner is set on "redirect": the binary-protocol address of the
// cluster node owning the addressed shard (also sent as the
// X-Spatialtree-Owner header).
type ErrorResponse struct {
	Error  string `json:"error"`
	Status string `json:"status,omitempty"`
	Owner  string `json:"owner,omitempty"`
}

// ClusterPeer describes one ring member in a ClusterStatus.
type ClusterPeer struct {
	Addr  string `json:"addr"`
	Alive bool   `json:"alive"`
	Self  bool   `json:"self,omitempty"`
}

// ClusterConflict reports one terminally suspended replication pair:
// follower Peer refuses applies for Shard because it serves the shard
// itself (conflicting ownership views), so the owner stopped shipping
// to it instead of retrying forever. Handback completion or a liveness
// transition of the peer clears the entry.
type ClusterConflict struct {
	Shard string `json:"shard"`
	Peer  string `json:"peer"`
	Msg   string `json:"msg,omitempty"`
}

// ClusterStatus is the /v1/cluster/status body: this node's view of the
// ring, the dyn shards it currently owns, and the apply cursors of the
// replicas it follows for other owners.
type ClusterStatus struct {
	Self           string            `json:"self"`
	Peers          []ClusterPeer     `json:"peers"`
	Replicas       int               `json:"replicas"`
	VirtualNodes   int               `json:"virtual_nodes"`
	Redirect       bool              `json:"redirect"`
	Owned          []string          `json:"owned_shards"`
	ReplicaCursors map[string]uint64 `json:"replica_cursors,omitempty"`
	// Handbacks lists shards this node owns by ring but is still
	// reconciling after a restart: requests proxy to the covering
	// successor (or wait briefly) until each handback completes.
	Handbacks []string `json:"handbacks,omitempty"`
	// Conflicts lists replication pairs this node has suspended as
	// terminal rather than retrying forever.
	Conflicts []ClusterConflict `json:"conflicts,omitempty"`
}

// ServerMetrics reports the HTTP layer's counters.
type ServerMetrics struct {
	Accepted  uint64 `json:"accepted"`
	Rejected  uint64 `json:"rejected"`
	InFlight  int    `json:"in_flight"`
	Draining  bool   `json:"draining"`
	Trees     int    `json:"trees"`
	DynShards int    `json:"dyn_shards"`
}

// SchedulerMetrics reports the adaptive batch scheduler: configuration
// plus how traffic actually dispatched. RequestsPerBatch is the
// coalescing factor — values above 1 mean the scheduler merged
// concurrent requests into shared simulator runs.
type SchedulerMetrics struct {
	MaxBatch         int     `json:"max_batch"`
	MaxDelayMillis   float64 `json:"max_delay_ms"`
	Batches          uint64  `json:"batches"`
	Requests         uint64  `json:"requests"`
	SizeFlushes      uint64  `json:"size_flushes"`
	DeadlineFlushes  uint64  `json:"deadline_flushes"`
	RequestsPerBatch float64 `json:"requests_per_batch"`
}

// EngineMetrics reports the kernel side of the pool's engines.
type EngineMetrics struct {
	LCAQueries uint64 `json:"lca_queries"`
	LCARuns    uint64 `json:"lca_runs"`
	Cost       Cost   `json:"cost"`
}

// CacheMetrics reports the shared layout cache.
type CacheMetrics struct {
	Hits      uint64  `json:"hits"`
	Misses    uint64  `json:"misses"`
	Evictions uint64  `json:"evictions"`
	Builds    uint64  `json:"builds"`
	Coalesced uint64  `json:"coalesced"`
	Size      int     `json:"size"`
	Capacity  int     `json:"capacity"`
	HitRate   float64 `json:"hit_rate"`
}

// BackendMetrics reports the execution-backend layer: the serving
// default, retained shards per backend (registered trees + dyn shards +
// ad-hoc pool shards), and — when shadow metering is armed — how many
// batches were sampled through the sim backend and whether any served
// result disagreed with the simulator (mismatches should always read
// zero; a non-zero value means a backend bug).
type BackendMetrics struct {
	Default          string         `json:"default"`
	ShadowMeter      int            `json:"shadow_meter,omitempty"`
	Shards           map[string]int `json:"shards"`
	ShadowBatches    uint64         `json:"shadow_batches"`
	ShadowMismatches uint64         `json:"shadow_mismatches"`
}

// DynMetrics aggregates the mutable shards.
type DynMetrics struct {
	Shards    int    `json:"shards"`
	Epoch     uint64 `json:"epoch"`
	Inserts   uint64 `json:"inserts"`
	Deletes   uint64 `json:"deletes"`
	Rebuilds  uint64 `json:"rebuilds"`
	Refreshes uint64 `json:"refreshes"`
}

// TunerMetrics reports the online layout tuner's aggregate counters
// (profiled shards, candidates scored, republishes, realized-vs-
// projected win); present only when Tuning.Enabled. The shape is owned
// by internal/tune so the /metrics block and the tuner never drift.
type TunerMetrics = tune.Metrics

// TunerShardStatus is one shard's tuner state (profile, cooldown, last
// projected-vs-realized win), embedded in DynStatusResponse.
type TunerShardStatus = tune.ShardStatus

// DynStatusResponse describes a locally served mutable shard
// (GET /v1/dyn/{id}): its current layout configuration — the tuner may
// have moved it off the curve/ε it was created with (Retunes counts
// those republishes) — plus the live tuner state when tuning is on.
type DynStatusResponse struct {
	ID      string  `json:"shard_id"`
	N       int     `json:"n"`
	Epoch   uint64  `json:"epoch"`
	Backend string  `json:"backend"`
	Curve   string  `json:"curve"`
	Epsilon float64 `json:"epsilon"`
	Retunes uint64  `json:"retunes"`

	Tuner *TunerShardStatus `json:"tuner,omitempty"`
}

// PersistMetrics reports the durability layer; present only when the
// server was configured with a Store.
type PersistMetrics struct {
	Enabled bool `json:"enabled"`
	// JournalRecords counts WAL records appended by this process.
	JournalRecords uint64 `json:"journal_records"`
	// WALRecords counts records currently past their shards' snapshots
	// (replayed on the next restart).
	WALRecords uint64 `json:"wal_records"`
	// Compactions counts WAL foldings into fresh snapshots.
	Compactions uint64 `json:"compactions"`
	// RecoveredTrees / RecoveredShards / ReplayedRecords describe the
	// warm start this process performed, if any.
	RecoveredTrees  int `json:"recovered_trees"`
	RecoveredShards int `json:"recovered_shards"`
	ReplayedRecords int `json:"replayed_records"`
}

// WireMetrics reports the binary TCP protocol listener; present only
// when the daemon serves one (see docs/protocol.md).
type WireMetrics struct {
	// Conns counts accepted connections over the process lifetime;
	// ActiveConns is the current count.
	Conns       uint64 `json:"conns"`
	ActiveConns int    `json:"active_conns"`
	// Queries counts query frames answered (with any status);
	// Errors counts protocol-level failures (corrupt frames, unknown
	// frame kinds) that terminated a connection.
	Queries uint64 `json:"queries"`
	Errors  uint64 `json:"errors"`
}

// MetricsResponse is the /metrics body.
type MetricsResponse struct {
	Server    ServerMetrics    `json:"server"`
	Scheduler SchedulerMetrics `json:"scheduler"`
	Engine    EngineMetrics    `json:"engine"`
	Cache     CacheMetrics     `json:"cache"`
	Backends  BackendMetrics   `json:"backends"`
	Dyn       DynMetrics       `json:"dyn"`
	Tuner     *TunerMetrics    `json:"tuner,omitempty"`
	Wire      *WireMetrics     `json:"wire,omitempty"`
	Persist   *PersistMetrics  `json:"persist,omitempty"`
}
