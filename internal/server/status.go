package server

// Status is the server's error vocabulary: one exported classification
// every serving surface maps through. Before PR 8, the HTTP handlers
// picked http.Status* codes ad hoc and tcp.go mirrored them in a
// separate wireStatus switch; the cluster tier would have added a third
// copy. Now classification happens once (Classify) and each surface
// renders a Status through the single table below — the HTTP code and
// the wire status of one condition can no longer drift apart.
// docs/protocol.md documents the vocabulary.

import (
	"errors"
	"fmt"
	"net/http"

	"spatialtree/internal/engine"
	"spatialtree/internal/mincut"
	"spatialtree/internal/treefix"
	"spatialtree/internal/wire"
)

// Status classifies a serving outcome.
type Status int

// The status vocabulary. Order is stable (the zero value is StatusOK);
// the on-wire numbering lives in internal/wire, not here.
const (
	// StatusOK: the request succeeded.
	StatusOK Status = iota
	// StatusBadRequest: the client's fault — malformed body, invalid
	// query, unknown operator or backend.
	StatusBadRequest
	// StatusNotFound: the tree or shard id is unknown.
	StatusNotFound
	// StatusTooMany: admission refused — the request queue or the
	// MaxShards budget is full. Backpressure; retry later.
	StatusTooMany
	// StatusUnavailable: the server is draining (or, in a cluster, the
	// shard's owner is unreachable). The request was not admitted, so
	// re-sending cannot double-apply.
	StatusUnavailable
	// StatusTooLarge: the request body or frame exceeds the size limit.
	StatusTooLarge
	// StatusRedirect: another cluster node owns the addressed shard;
	// the response carries its address. Smart clients re-issue there.
	StatusRedirect
	// StatusInternal: the server's fault.
	StatusInternal
)

// statusTable is the single mapping from the vocabulary to both
// protocol surfaces. Every status renders through it; no handler picks
// an HTTP code or wire status directly.
var statusTable = [...]struct {
	http int
	wire wire.Status
	name string
}{
	StatusOK:          {http.StatusOK, wire.StatusOK, "ok"},
	StatusBadRequest:  {http.StatusBadRequest, wire.StatusBadRequest, "bad_request"},
	StatusNotFound:    {http.StatusNotFound, wire.StatusNotFound, "not_found"},
	StatusTooMany:     {http.StatusTooManyRequests, wire.StatusTooMany, "too_many"},
	StatusUnavailable: {http.StatusServiceUnavailable, wire.StatusUnavailable, "unavailable"},
	StatusTooLarge:    {http.StatusRequestEntityTooLarge, wire.StatusTooLarge, "too_large"},
	StatusRedirect:    {http.StatusMisdirectedRequest, wire.StatusRedirect, "redirect"},
	StatusInternal:    {http.StatusInternalServerError, wire.StatusInternal, "internal"},
}

func (st Status) valid() bool { return st >= 0 && int(st) < len(statusTable) }

// HTTP returns the status's HTTP response code.
func (st Status) HTTP() int {
	if !st.valid() {
		return http.StatusInternalServerError
	}
	return statusTable[st].http
}

// Wire returns the status's binary-protocol status.
func (st Status) Wire() wire.Status {
	if !st.valid() {
		return wire.StatusInternal
	}
	return statusTable[st].wire
}

func (st Status) String() string {
	if !st.valid() {
		return fmt.Sprintf("status(%d)", int(st))
	}
	return statusTable[st].name
}

// statusError attaches a Status to an error; Classify honors it over
// the sentinel rules.
type statusError struct {
	st  Status
	err error
}

func (e statusError) Error() string { return e.err.Error() }
func (e statusError) Unwrap() error { return e.err }

// Is keeps sentinel checks consistent with the explicit
// classification: a statusError marked as a client fault matches
// errBadRequest, the sentinel the rest of the vocabulary uses.
func (e statusError) Is(target error) bool {
	return target == errBadRequest && e.st == StatusBadRequest
}

// statusErr classifies err as st.
func statusErr(st Status, err error) error { return statusError{st: st, err: err} }

// statusErrf builds a classified error.
//
//spatialvet:errclass
func statusErrf(st Status, format string, args ...any) error {
	return statusErr(st, fmt.Errorf(format, args...))
}

// Err classifies err as st — the cluster tier's handle on the
// vocabulary (in-package paths use the unexported twins).
func Err(st Status, err error) error { return statusErr(st, err) }

// Errf builds a classified error from a format string.
//
//spatialvet:errclass
func Errf(st Status, format string, args ...any) error {
	return statusErrf(st, format, args...)
}

// RedirectTo reports that the node at addr owns the addressed shard.
// Classify maps it to StatusRedirect; both render paths carry addr
// (HTTP in the body and X-Spatialtree-Owner, wire as the error message
// FollowRedirects dials).
func RedirectTo(addr string) error { return redirectError{Addr: addr} }

// StatusFromWire maps a wire status back into the vocabulary — the
// proxy path's inverse of Status.Wire, so an error a shard owner
// classified re-renders identically at the proxying edge.
func StatusFromWire(ws wire.Status) Status {
	for st := StatusOK; st.valid(); st++ {
		if statusTable[st].wire == ws {
			return st
		}
	}
	return StatusInternal
}

// redirectError reports that another node owns the addressed shard.
// Classify maps it to StatusRedirect; the render paths surface Addr.
type redirectError struct{ Addr string }

func (e redirectError) Error() string {
	return "shard is owned by " + e.Addr
}

// errBadRequest classifies errors the client caused (malformed query,
// unknown operator) as distinct from server-side failures; Classify
// maps it to StatusBadRequest. The wrapper keeps the original message.
var errBadRequest = errors.New("server: bad request")

type badRequestError struct{ error }

func (badRequestError) Is(target error) bool { return target == errBadRequest }

func badRequest(err error) error { return badRequestError{err} }

// Classify maps a serving error onto the status vocabulary: explicit
// statusError classifications and redirects first, then the classified
// sentinels — faults in the request itself (engine/mincut validation,
// unsupported operators, malformed bodies) are the client's, admission
// refusals are backpressure, and everything else — backend dispatch,
// journal repair, shard resolution — is the server's.
func Classify(err error) Status {
	if err == nil {
		return StatusOK
	}
	var se statusError
	if errors.As(err, &se) {
		return se.st
	}
	var re redirectError
	if errors.As(err, &re) {
		return StatusRedirect
	}
	if errors.Is(err, engine.ErrInvalid) || errors.Is(err, mincut.ErrInvalid) ||
		errors.Is(err, treefix.ErrUnsupportedOp) || errors.Is(err, treefix.ErrInvalid) ||
		errors.Is(err, errBadRequest) {
		return StatusBadRequest
	}
	if errors.Is(err, errShardLimit) {
		return StatusTooMany
	}
	return StatusInternal
}

// writeStatus renders a non-OK status on the HTTP surface.
func writeStatus(w http.ResponseWriter, st Status, msg string) {
	writeJSON(w, st.HTTP(), ErrorResponse{Error: msg, Status: st.String()})
}

// writeErr classifies err and renders it on the HTTP surface. Redirects
// additionally carry the owner address, both in the response body and
// in an X-Spatialtree-Owner header (the binary-protocol address — 421
// has no Location semantics for a non-HTTP endpoint).
func writeErr(w http.ResponseWriter, err error) {
	st := Classify(err)
	var re redirectError
	if errors.As(err, &re) {
		w.Header().Set("X-Spatialtree-Owner", re.Addr)
		writeJSON(w, st.HTTP(), ErrorResponse{Error: err.Error(), Status: st.String(), Owner: re.Addr})
		return
	}
	writeStatus(w, st, err.Error())
}

// wireErr classifies err for the binary surface: its wire status and
// the message to carry (redirects carry the bare owner address — the
// contract FollowRedirects dials).
func wireErr(err error) (wire.Status, string) {
	var re redirectError
	if errors.As(err, &re) {
		return wire.StatusRedirect, re.Addr
	}
	return Classify(err).Wire(), err.Error()
}
