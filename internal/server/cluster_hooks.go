package server

// The seam between the single-node serving core and the cluster tier
// (internal/cluster). The server never imports the cluster package;
// instead the daemon installs a ClusterHooks implementation with
// SetCluster, and the dyn-shard entry points — HTTP handlers and the
// binary listener alike — dispatch through it. A nil hooks value (the
// default) is the single-node fast path: every dispatcher falls through
// to the local core below with no extra locking beyond one atomic load.
//
// The split keeps the dependency arrow pointing one way: cluster
// imports server for the local cores (DynMutate, DynCreateLocal,
// AdoptDynShard), server knows cluster only as this interface.

import (
	"fmt"
	"net/http"
	"strconv"

	"spatialtree/internal/engine"
	"spatialtree/internal/exec"
	"spatialtree/internal/persist"
	"spatialtree/internal/tree"
	"spatialtree/internal/wire"
)

// MutateResult is the outcome of one applied dyn-shard mutation, the
// protocol-neutral twin of MutateResponse / wire.Mutated.
type MutateResult struct {
	// Vertex is the inserted leaf's id (OpInsert).
	Vertex int
	// Moved is the old id renumbered into the deleted slot (OpDelete).
	Moved int
	// Epoch and N describe the shard after the mutation.
	Epoch uint64
	N     int
}

// DynCreateResult is the outcome of a dyn-shard creation, the
// protocol-neutral twin of DynCreateResponse / wire.DynCreated.
type DynCreateResult struct {
	ID      string
	N       int
	Backend string
}

// ClusterHooks is what a cluster node plugs into the server: every
// dyn-shard request routes through it when installed. Implementations
// must be safe for concurrent use; errors surface through Classify, so
// they should carry a Status (or a redirect) when the default
// StatusInternal is wrong.
type ClusterHooks interface {
	// DynCreate routes a shard creation: hash the tree, create at the
	// owner (locally or by proxy), arm replication.
	DynCreate(parents []int, epsilon float64, backend string) (DynCreateResult, error)

	// Mutate routes one mutation. At the owner it applies locally and
	// blocks until the configured replicas acked the shipped record; at
	// a non-owner it proxies or returns a redirect error.
	Mutate(shardID string, op uint8, arg int) (MutateResult, error)

	// ShardQuery routes a dyn-shard query. handled == false means the
	// shard is (or should be) local: the caller serves it from its own
	// table, keeping the zero-conversion fast path. handled == true
	// means the hook produced the response (proxied) or the error
	// (redirect, owner unreachable).
	ShardQuery(shardID string, req *QueryRequest) (resp *QueryResponse, handled bool, err error)

	// ApplySnapshot and ApplyRecords are the follower half of the
	// replication conversation (FrameRepSnapshot / FrameRepRecords):
	// they return the replica's apply cursor and an Ack* code.
	ApplySnapshot(shardID string, blob []byte) (cursor uint64, code uint8, msg string)
	ApplyRecords(shardID string, recs []wire.RepRecord) (cursor uint64, code uint8, msg string)

	// Handback serves the successor half of rejoin reconciliation
	// (FrameHandbackOffer): diff cursors against the offer, and on a
	// claim fence the shard, release it from serving, and describe how
	// the rejoiner reaches the fence. The grant's ID and ShardID are the
	// transport's to fill.
	Handback(offer *wire.HandbackOffer) *wire.HandbackGrant

	// Status snapshots this node's view of the ring for
	// GET /v1/cluster/status.
	Status() ClusterStatus
}

// SetCluster installs the cluster tier. Install before serving traffic;
// the hooks stay for the server's lifetime (there is no un-install —
// a node leaves a cluster by restarting without peers).
func (s *Server) SetCluster(h ClusterHooks) { s.cluster.Store(&h) }

// clusterHooks returns the installed hooks, or nil on a single node.
func (s *Server) clusterHooks() ClusterHooks {
	p := s.cluster.Load()
	if p == nil {
		return nil
	}
	return *p
}

// mutate dispatches one dyn mutation: through the cluster tier when
// installed, else straight to the local core.
func (s *Server) mutate(id string, op uint8, arg int) (MutateResult, error) {
	if h := s.clusterHooks(); h != nil {
		return h.Mutate(id, op, arg)
	}
	return s.DynMutate(id, op, arg)
}

// dynCreate dispatches one dyn-shard creation.
func (s *Server) dynCreate(parents []int, epsilon float64, backend string) (DynCreateResult, error) {
	if h := s.clusterHooks(); h != nil {
		return h.DynCreate(parents, epsilon, backend)
	}
	return s.DynCreateLocal("", parents, epsilon, backend)
}

// DynMutate applies one mutation to a locally served dyn shard: the
// single-node mutation core, also the cluster owner's apply step. op is
// wire.OpInsert (arg = parent) or wire.OpDelete (arg = leaf).
func (s *Server) DynMutate(id string, op uint8, arg int) (MutateResult, error) {
	s.mu.Lock()
	de := s.dyns[id]
	s.mu.Unlock()
	if de == nil {
		return MutateResult{}, statusErrf(StatusNotFound, "unknown shard_id %s", id)
	}
	var res MutateResult
	var err error
	epochBefore := de.Epoch()
	switch op {
	case wire.OpInsert:
		res.Vertex, err = de.InsertLeaf(arg)
	case wire.OpDelete:
		res.Moved, err = de.DeleteLeaf(arg)
	default:
		return MutateResult{}, statusErrf(StatusBadRequest, "unknown mutation op %d (want %d=insert or %d=delete)", op, wire.OpInsert, wire.OpDelete)
	}
	if err != nil {
		// An error with the epoch bumped means the mutation applied but
		// the layout's post-mutation rebuild failed — or its journal
		// append did — server-side degradation, not a bad request.
		// (Epoch comparison can misread under concurrent mutations on
		// one shard; the worst case is an internal status for what was a
		// bad request, which errs on the honest side.) A journal failure
		// leaves the log behind the engine; repairJournal re-snapshots to
		// close the gap so one transient disk error cannot wedge
		// durability for the rest of the process.
		st := StatusBadRequest
		if de.Epoch() != epochBefore {
			st = StatusInternal
			s.repairJournal(id, de)
		}
		return MutateResult{}, statusErr(st, err)
	}
	res.Epoch, res.N = de.Epoch(), de.N()
	s.maybeCompact(id, de)
	return res, nil
}

// DynCreateLocal creates a dyn shard on this node: the single-node
// creation core, also the cluster owner's create step. id "" assigns
// the next local id ("d<seq>"); a non-empty id is the cluster tier's
// (ring-routable) choice. The order of checks is part of the API
// contract: request faults (bad parents, unknown backend) are reported
// before the shard budget, so a client cannot be told "too many" for a
// request that could never succeed.
func (s *Server) DynCreateLocal(id string, parents []int, epsilon float64, backend string) (DynCreateResult, error) {
	t, err := tree.FromParents(parents)
	if err != nil {
		return DynCreateResult{}, statusErr(StatusBadRequest, err)
	}
	if backend != "" && !exec.Valid(backend) {
		return DynCreateResult{}, statusErrf(StatusBadRequest, "unknown backend %q (want %q or %q)", backend, exec.Native, exec.Sim)
	}
	if s.pool.Size() >= s.cfg.Limits.MaxShards {
		return DynCreateResult{}, errShardLimit
	}
	eps := epsilon
	if eps <= 0 {
		eps = s.cfg.Epsilon
	}
	be := backend
	if be == "" {
		be = s.cfg.Backend
	}
	de, err := s.pool.NewDynShardBackend(t, eps, be)
	if err != nil {
		return DynCreateResult{}, err
	}
	if id == "" {
		s.mu.Lock()
		s.nextDyn++
		id = "d" + strconv.Itoa(s.nextDyn)
		s.mu.Unlock()
	}
	// Durability before routability: the shard becomes addressable only
	// once its initial snapshot and WAL exist, so no mutation can ever
	// precede its log. On persistence failure the pool keeps an
	// unroutable shard until restart — an acceptable leak on a path
	// that only fails with the disk.
	if err := s.persistDynCreate(id, de); err != nil {
		return DynCreateResult{}, err
	}
	s.mu.Lock()
	if _, dup := s.dyns[id]; dup {
		s.mu.Unlock()
		return DynCreateResult{}, statusErrf(StatusBadRequest, "shard_id %s already exists", id)
	}
	s.dyns[id] = de
	s.backends[id] = de.Backend()
	s.mu.Unlock()
	// Outside s.mu: Adopt installs the profile observer under the
	// engine's own lock, and routing must not nest under it.
	if s.tuner != nil {
		s.tuner.Adopt(id, de)
	}
	return DynCreateResult{ID: id, N: t.N(), Backend: de.Backend()}, nil
}

// DynShard returns the locally served dyn engine for id, if any. The
// cluster tier uses it to snapshot owned shards for replication.
func (s *Server) DynShard(id string) (*engine.DynEngine, bool) {
	s.mu.Lock()
	de := s.dyns[id]
	s.mu.Unlock()
	return de, de != nil
}

// DynShardLog returns the WAL behind a locally served dyn shard, if
// durability is enabled. The cluster tier ships its records to resync a
// lagging follower.
func (s *Server) DynShardLog(id string) (*persist.ShardLog, bool) {
	s.mu.Lock()
	l := s.logs[id]
	s.mu.Unlock()
	return l, l != nil
}

// DynShardIDs lists the locally served dyn shard ids.
func (s *Server) DynShardIDs() []string {
	s.mu.Lock()
	ids := make([]string, 0, len(s.dyns))
	for id := range s.dyns {
		ids = append(ids, id)
	}
	s.mu.Unlock()
	return ids
}

// AdoptDynShard installs an already-built dyn engine into the serving
// table — the cluster tier's failover step: a successor promotes the
// replica it was following into a served shard. A non-nil log becomes
// the shard's journal (mutations applied after adoption append to it),
// so the promoted shard keeps the durability it had as a replica.
// Adoption is idempotent-by-refusal: it fails if id is already served,
// which a racing double-promotion would otherwise corrupt.
func (s *Server) AdoptDynShard(id string, de *engine.DynEngine, log *persist.ShardLog) error {
	if log != nil {
		de.SetJournal(s.journalFunc(log))
	}
	s.mu.Lock()
	if _, dup := s.dyns[id]; dup {
		s.mu.Unlock()
		return fmt.Errorf("server: shard %s already served", id)
	}
	s.dyns[id] = de
	if log != nil {
		s.logs[id] = log
	}
	s.backends[id] = de.Backend()
	s.mu.Unlock()
	// Outside s.mu: the pool's mutex is routing-class too, and routing
	// locks do not nest.
	s.pool.AdoptDynShard(de)
	if s.tuner != nil {
		s.tuner.Adopt(id, de)
	}
	return nil
}

// ReleaseDynShard removes a served dyn shard from the serving table and
// returns its engine and journal log — the inverse of AdoptDynShard,
// used by the cluster tier's ownership handback: a shard granted back
// to its rejoined ring owner demotes into a followed replica here. The
// id stops resolving locally the moment this returns; the engine keeps
// whatever journal it had, so mutations applied through the replica
// path retain the same durability.
func (s *Server) ReleaseDynShard(id string) (*engine.DynEngine, *persist.ShardLog, bool) {
	s.mu.Lock()
	de := s.dyns[id]
	if de == nil {
		s.mu.Unlock()
		return nil, nil, false
	}
	delete(s.dyns, id)
	log := s.logs[id]
	delete(s.logs, id)
	delete(s.backends, id)
	s.mu.Unlock()
	// Outside s.mu, like AdoptDynShard: the pool's mutex is
	// routing-class too, and routing locks do not nest. The tuner
	// release also strips the profile observer, so the handed-back
	// engine carries no callback into this server's tuner.
	s.pool.ReleaseDynShard(de)
	if s.tuner != nil {
		s.tuner.Release(id)
	}
	return de, log, true
}

// DropDynState deletes the server store's durable copy of a dyn shard
// that is not currently served. The cluster tier calls it when a
// shard's authoritative durable copy moves to the replica store during
// handback, so a later boot cannot resurrect the stale server-store
// copy as an owned shard. Serving shards are refused; without a store,
// or for ids the store does not know, it is a no-op.
func (s *Server) DropDynState(id string) error {
	s.mu.Lock()
	_, served := s.dyns[id]
	s.mu.Unlock()
	if served {
		return fmt.Errorf("server: shard %s is served; refusing to drop its durable state", id)
	}
	if s.cfg.Durability.Store == nil {
		return nil
	}
	return s.cfg.Durability.Store.DropShard(id)
}

// EngineOptions returns the serving pool's resolved engine options. The
// cluster tier builds replica engines with them (engine.RestoreDyn), so
// a promoted replica serves exactly like a pool-created shard — same
// shared cache, backend, autoflush tuning.
func (s *Server) EngineOptions() engine.Options { return s.pool.Options() }

// SnapshotDyn captures a locally served dyn shard as a persist-encoded
// snapshot blob plus the epoch it is consistent with — the payload of a
// replication FrameRepSnapshot.
func (s *Server) SnapshotDyn(id string) (blob []byte, epoch uint64, err error) {
	de, ok := s.DynShard(id)
	if !ok {
		return nil, 0, statusErrf(StatusNotFound, "unknown shard_id %s", id)
	}
	st := de.State()
	return persist.EncodeDyn(dynSnapFromState(st)), st.Epoch, nil
}

// DynStateFromSnapshot converts a decoded persist snapshot into the
// engine's restore state. Exported for the cluster tier's replica
// apply; the inverse is DynSnapshotFromState.
func DynStateFromSnapshot(snap persist.DynSnapshot) engine.DynState {
	return dynStateFromSnap(snap)
}

// DynSnapshotFromState converts an engine state capture into the
// persist codec's snapshot type.
func DynSnapshotFromState(st engine.DynState) persist.DynSnapshot {
	return dynSnapFromState(st)
}

// ClusterConfig returns the resolved cluster configuration block.
func (s *Server) ClusterConfig() Cluster { return s.cfg.Cluster }

// handleClusterStatus serves GET /v1/cluster/status.
func (s *Server) handleClusterStatus(w http.ResponseWriter, r *http.Request) {
	h := s.clusterHooks()
	if h == nil {
		writeStatus(w, StatusNotFound, "not a cluster node")
		return
	}
	writeJSON(w, http.StatusOK, h.Status())
}
