package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"testing"
	"time"

	"spatialtree/internal/persist"
	"spatialtree/internal/treefix"
)

func getJSON(base, path string, out any) error {
	resp, err := http.Get(base + path)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var e ErrorResponse
		_ = json.NewDecoder(resp.Body).Decode(&e)
		return fmt.Errorf("status %d: %s", resp.StatusCode, e.Error)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// TestTuningEndToEnd drives the whole self-tuning loop through the
// serving stack: a sim-backend shard seeded on the known-bad scatter
// curve is profiled by real HTTP traffic, a manual tuner tick
// republishes it onto a distance-bound curve, the /metrics tuner block
// and GET /v1/dyn/{id} report the retune, the shard keeps answering
// correctly — and a restart on the same data dir warm-starts on the
// tuned layout because the republish compacted the snapshot.
func TestTuningEndToEnd(t *testing.T) {
	dir := t.TempDir()
	store := openTestStore(t, dir, persist.Options{})
	cfg := Config{
		Durability: Durability{Store: store},
		Scheduler:  Scheduler{MaxDelay: time.Millisecond},
		Tuning:     Tuning{Enabled: true, Interval: time.Hour}, // ticks are manual below
		Curve:      "scatter",
		Backend:    "sim",
	}
	s, hs := newTestServer(t, cfg)
	if s.Tuner() == nil {
		t.Fatal("Tuning.Enabled built no tuner")
	}

	var dc DynCreateResponse
	if err := postJSON(hs.URL, "/v1/dyn", DynCreateRequest{Parents: testParents(80, 3)}, &dc); err != nil {
		t.Fatal(err)
	}

	// Before any traffic: status shows the seed config, no tuner action.
	var st0 DynStatusResponse
	if err := getJSON(hs.URL, "/v1/dyn/"+dc.ID, &st0); err != nil {
		t.Fatal(err)
	}
	if st0.Curve != "scatter" || st0.Retunes != 0 || st0.Tuner == nil {
		t.Fatalf("fresh status = %+v", st0)
	}

	// Profile enough batches for the tuner to act (default MinSamples).
	vals := make([]int64, 80)
	for i := range vals {
		vals[i] = 1
	}
	query := QueryRequest{Kind: "treefix", Vals: vals}
	var want QueryResponse
	if err := postJSON(hs.URL, "/v1/dyn/"+dc.ID+"/query", query, &want); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 12; i++ {
		if err := postJSON(hs.URL, "/v1/dyn/"+dc.ID+"/query", query, nil); err != nil {
			t.Fatal(err)
		}
	}

	s.Tuner().Tick()

	var st1 DynStatusResponse
	if err := getJSON(hs.URL, "/v1/dyn/"+dc.ID, &st1); err != nil {
		t.Fatal(err)
	}
	if st1.Retunes != 1 {
		t.Fatalf("Retunes = %d after tick on a scatter-seeded sim shard, want 1 (status %+v)", st1.Retunes, st1)
	}
	if st1.Curve == "scatter" {
		t.Fatal("tick left the shard on the known-bad scatter curve")
	}
	if st1.Tuner == nil || st1.Tuner.Republishes != 1 || st1.Tuner.Profile.Batches == 0 {
		t.Fatalf("per-shard tuner state = %+v", st1.Tuner)
	}

	m := getMetrics(t, hs.URL)
	if m.Tuner == nil {
		t.Fatal("/metrics has no tuner block with Tuning.Enabled")
	}
	if m.Tuner.Shards != 1 || m.Tuner.Republishes != 1 || m.Tuner.CandidatesScored == 0 || m.Tuner.Ticks != 1 {
		t.Fatalf("tuner metrics = %+v", m.Tuner)
	}

	// The retuned shard still answers exactly as before.
	var got QueryResponse
	if err := postJSON(hs.URL, "/v1/dyn/"+dc.ID+"/query", query, &got); err != nil {
		t.Fatal(err)
	}
	for v := range want.Sums {
		if got.Sums[v] != want.Sums[v] {
			t.Fatalf("sum[%d] = %d after retune, want %d", v, got.Sums[v], want.Sums[v])
		}
	}

	// Restart: the tuned choice must survive (the republish compacted
	// the snapshot; curve and ε are durable DynState).
	tunedCurve := st1.Curve
	if err := s.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	hs.Close()
	store.Close()
	store2 := openTestStore(t, dir, persist.Options{})
	cfg.Durability.Store = store2
	s2, hs2 := newTestServer(t, cfg)
	if _, err := s2.Recover(); err != nil {
		t.Fatal(err)
	}
	var st2 DynStatusResponse
	if err := getJSON(hs2.URL, "/v1/dyn/"+dc.ID, &st2); err != nil {
		t.Fatal(err)
	}
	if st2.Curve != tunedCurve {
		t.Fatalf("recovered shard on curve %q, want warm-started tuned curve %q", st2.Curve, tunedCurve)
	}
	if st2.Tuner == nil {
		t.Fatal("recovered shard not re-adopted by the tuner")
	}
}

// TestTunerFollowsShardHandoff pins the cluster-facing lifecycle the
// tuner must track: a shard released from a tuning server (the PR 9
// handback path) stops being tuned there and carries no profile
// callback into its old server, and adopting it into another tuning
// server (the failover-promotion path) puts it under that server's
// tuner, which can then retune it from its own traffic.
func TestTunerFollowsShardHandoff(t *testing.T) {
	cfg := Config{
		Scheduler: Scheduler{MaxDelay: time.Millisecond},
		Tuning:    Tuning{Enabled: true, Interval: time.Hour},
		Curve:     "scatter",
		Backend:   "sim",
	}
	s1, _ := newTestServer(t, cfg)
	created, err := s1.DynCreateLocal("", testParents(60, 4), 0, "")
	if err != nil {
		t.Fatal(err)
	}
	// The cluster tier's read surface sees the served shard.
	if ids := s1.DynShardIDs(); len(ids) != 1 || ids[0] != created.ID {
		t.Fatalf("DynShardIDs = %v", ids)
	}
	if _, ok := s1.DynShard(created.ID); !ok {
		t.Fatal("DynShard missed a served shard")
	}
	if blob, epoch, err := s1.SnapshotDyn(created.ID); err != nil || len(blob) == 0 || epoch != 0 {
		t.Fatalf("SnapshotDyn = %d bytes, epoch %d, err %v", len(blob), epoch, err)
	}
	if _, ok := s1.Tuner().Status(created.ID); !ok {
		t.Fatal("created shard not adopted by the tuner")
	}

	de, log, ok := s1.ReleaseDynShard(created.ID)
	if !ok || de == nil {
		t.Fatal("ReleaseDynShard lost the shard")
	}
	if _, ok := s1.Tuner().Status(created.ID); ok {
		t.Fatal("released shard still tracked by the old server's tuner")
	}

	s2, _ := newTestServer(t, cfg)
	if opts := s2.EngineOptions(); opts.Backend != "sim" {
		t.Fatalf("EngineOptions backend = %q, want the configured sim", opts.Backend)
	}
	if err := s2.AdoptDynShard(created.ID, de, log); err != nil {
		t.Fatal(err)
	}
	if err := s2.AdoptDynShard(created.ID, de, nil); err == nil {
		t.Fatal("double adoption not refused")
	}
	if _, ok := s2.Tuner().Status(created.ID); !ok {
		t.Fatal("adopted shard not tracked by the adopter's tuner")
	}
	// The adopter's own traffic profiles the shard, and its tuner — not
	// the releaser's — republishes the scatter seed.
	vals := make([]int64, de.N())
	for i := 0; i < 13; i++ {
		if res := de.SubmitTreefix(vals, treefix.Add).Wait(); res.Err != nil {
			t.Fatal(res.Err)
		}
	}
	s2.Tuner().Tick()
	if de.Stats().Retunes == 0 {
		t.Fatal("adopter's tuner never retuned the handed-off shard")
	}
	if s1.Tuner().Metrics().Republishes != 0 {
		t.Fatal("releaser's tuner acted on a shard it no longer owns")
	}
}

// TestTuningDisabledSurface pins the off state: no tuner block in
// /metrics, no tuner sub-object in shard status, and GET /v1/dyn/{id}
// still works as a plain layout-config probe.
func TestTuningDisabledSurface(t *testing.T) {
	s, hs := newTestServer(t, Config{Scheduler: Scheduler{MaxDelay: time.Millisecond}})
	if s.Tuner() != nil {
		t.Fatal("tuner built without Tuning.Enabled")
	}
	var dc DynCreateResponse
	if err := postJSON(hs.URL, "/v1/dyn", DynCreateRequest{Parents: testParents(20, 5)}, &dc); err != nil {
		t.Fatal(err)
	}
	var st DynStatusResponse
	if err := getJSON(hs.URL, "/v1/dyn/"+dc.ID, &st); err != nil {
		t.Fatal(err)
	}
	if st.Curve != "hilbert" || st.Epsilon <= 0 || st.Tuner != nil {
		t.Fatalf("status = %+v", st)
	}
	if err := getJSON(hs.URL, "/v1/dyn/nope", &st); err == nil {
		t.Fatal("status for unknown shard succeeded")
	}
	if m := getMetrics(t, hs.URL); m.Tuner != nil {
		t.Fatal("tuner metrics block present with tuning off")
	}
}
