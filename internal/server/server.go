// Package server exposes the batched query engines over HTTP/JSON: the
// serving subsystem behind cmd/spatialtreed. It separates request
// arrival from batch execution the way the paper separates layout
// construction from kernel runs — handlers enqueue work and wait on
// futures while a per-shard adaptive scheduler (the engines' autoflush:
// MaxBatch requests or a MaxDelay deadline, whichever comes first)
// decides when simulator runs actually happen, so concurrent clients
// hitting one tree coalesce into far fewer runs than requests.
//
// Endpoints:
//
//	POST /v1/trees          register an immutable tree → tree_id
//	POST /v1/query          run treefix|topdown|lca|mincut on a tree
//	POST /v1/dyn            create a mutable shard → shard_id
//	POST /v1/dyn/{id}/mutate  insert/delete a leaf
//	POST /v1/dyn/{id}/query   query the mutable shard's current tree
//	GET  /metrics           server + scheduler + engine + cache stats
//	GET  /healthz           liveness (503 while draining)
//
// Immutable traffic is routed per tenant by tree fingerprint through an
// engine.Pool: structurally identical trees share a shard and therefore
// a batch window. Mutable shards are routed by id. Admission control is
// a bounded in-flight queue: when QueueLimit requests are already being
// served, further work is rejected with 429 rather than queued without
// bound. Drain stops admission, waits for in-flight requests and
// flushes every shard, so shutdown never strands a future.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"spatialtree/internal/engine"
	"spatialtree/internal/exec"
	"spatialtree/internal/exprtree"
	"spatialtree/internal/lca"
	"spatialtree/internal/mincut"
	"spatialtree/internal/persist"
	"spatialtree/internal/tree"
	"spatialtree/internal/treefix"
)

// Defaults used by New when the corresponding Config field is zero.
const (
	DefaultMaxBatch      = 64
	DefaultMaxDelay      = 2 * time.Millisecond
	DefaultQueueLimit    = 1024
	DefaultCacheCapacity = 128
	DefaultBodyLimit     = 64 << 20
	DefaultMaxShards     = 1024
	// DefaultTCPIdleTimeout bounds how long a binary-protocol connection
	// may sit between frames before the server hangs up — the TCP
	// equivalent of the HTTP layer's read/idle timeouts, so one silent
	// client cannot pin a connection forever.
	DefaultTCPIdleTimeout = 2 * time.Minute
	// DefaultTCPWriteTimeout bounds each binary-protocol response write.
	DefaultTCPWriteTimeout = 30 * time.Second
)

// Config configures a Server.
type Config struct {
	// MaxBatch is the scheduler's size trigger: a shard's pending batch
	// is dispatched as soon as it holds this many requests (0 means
	// DefaultMaxBatch).
	MaxBatch int
	// MaxDelay is the scheduler's deadline trigger: a pending batch is
	// dispatched once its oldest request has waited this long (0 means
	// DefaultMaxDelay).
	MaxDelay time.Duration
	// QueueLimit bounds concurrently admitted requests; excess traffic
	// receives 429 (0 means DefaultQueueLimit).
	QueueLimit int
	// Workers bounds the pool's parallel shard flushes (0 means
	// GOMAXPROCS).
	Workers int
	// Curve names the space-filling curve for placements ("" means
	// "hilbert").
	Curve string
	// Seed drives the Las Vegas coins of the simulator runs.
	Seed uint64
	// CacheCapacity sizes the shared layout cache (0 means
	// DefaultCacheCapacity).
	CacheCapacity int
	// Epsilon is the default drift budget of mutable shards (0 means
	// engine.DefaultEpsilon).
	Epsilon float64
	// BodyLimit caps request body bytes (0 means DefaultBodyLimit).
	BodyLimit int64
	// MaxShards bounds retained per-tree serving state (registered
	// trees + mutable shards + pool shards auto-created for ad-hoc
	// query trees; 0 means DefaultMaxShards). Beyond it, registration
	// and shard creation are refused with 429, and ad-hoc query trees
	// are served from ephemeral engines instead of growing the pool —
	// admission control for memory, the way QueueLimit is admission
	// control for concurrency.
	MaxShards int
	// Store, when non-nil, makes the shard table durable: registered
	// trees are persisted as placement snapshots, mutable shards as a
	// snapshot plus a mutation WAL, and Recover replays all of it on
	// boot. Nil serves everything from memory, as before.
	Store *persist.Store
	// Backend names the default execution backend shards serve on
	// ("" means "native": goroutine-parallel kernels, no simulator
	// bookkeeping on the hot path). "sim" serves every batch through the
	// spatial-computer simulator with exact model-cost metering — the
	// validation/metering deployment, an order of magnitude slower.
	// Register/create requests may override per shard; recovered shards
	// come back on this default (the backend is a serving-time knob, not
	// part of the durable state — re-register to override after boot).
	Backend string
	// ShadowMeter, when > 0 with a native default backend, samples every
	// N-th batch of each shard through a shadow sim run: /metrics keeps
	// reporting (sampled) model Energy/Depth and counts any
	// native-vs-sim result mismatches, at 1/N of the simulator's cost.
	ShadowMeter int
	// TCPIdleTimeout bounds the gap between frames on a binary-protocol
	// connection; an idle connection is closed when it expires (0 means
	// DefaultTCPIdleTimeout, < 0 disables the deadline — tests only).
	TCPIdleTimeout time.Duration
	// TCPWriteTimeout bounds each binary-protocol response write (0
	// means DefaultTCPWriteTimeout).
	TCPWriteTimeout time.Duration
}

// Server serves the engines over HTTP. Construct with New; the zero
// value is not usable.
type Server struct {
	cfg     Config
	pool    *engine.Pool
	engOpts engine.Options // the pool's options (shared cache); used for ephemeral engines
	mux     *http.ServeMux

	// ephem folds the counters of ephemeral engines (ad-hoc query
	// trees served beyond the shard budget), which would otherwise
	// vanish from /metrics.
	ephemMu sync.Mutex
	ephem   engine.Stats

	sem      chan struct{}
	draining atomic.Bool
	accepted atomic.Uint64
	rejected atomic.Uint64

	// flightMu serializes request admission against Drain: enter checks
	// the draining flag and bumps inflight under it, so Drain can set
	// the flag and wait for a moment when inflight is provably zero.
	flightMu  sync.Mutex
	inflight  int
	drainDone chan struct{} // non-nil while a Drain waits; closed at inflight 0

	// journaled counts WAL records appended across all dyn shards.
	journaled atomic.Uint64

	// Binary-protocol listener state (tcp.go). wireEnabled flips once
	// ServeBinary runs, making the Wire block appear in /metrics.
	wireEnabled   atomic.Bool
	wireTotal     atomic.Uint64
	wireQueries   atomic.Uint64
	wireErrors    atomic.Uint64
	wireMu        sync.Mutex
	wireConns     map[net.Conn]struct{}
	wireListeners map[net.Listener]struct{}

	mu        sync.Mutex //spatialvet:lockclass routing
	trees     map[string]*tree.Tree
	dyns      map[string]*engine.DynEngine
	logs      map[string]*persist.ShardLog // per-dyn-shard WALs (nil Store: empty)
	adhoc     map[uint64]struct{}          // fingerprints of pool shards auto-created for ad-hoc query trees
	backends  map[string]string            // tree id / dyn shard id -> serving backend
	nextDyn   int
	recovered RecoveryStats
}

// New builds a server; all zero Config fields take the documented
// defaults.
func New(cfg Config) *Server {
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = DefaultMaxBatch
	}
	if cfg.MaxDelay <= 0 {
		cfg.MaxDelay = DefaultMaxDelay
	}
	if cfg.QueueLimit <= 0 {
		cfg.QueueLimit = DefaultQueueLimit
	}
	if cfg.CacheCapacity <= 0 {
		cfg.CacheCapacity = DefaultCacheCapacity
	}
	if cfg.Epsilon <= 0 {
		cfg.Epsilon = engine.DefaultEpsilon
	}
	if cfg.BodyLimit <= 0 {
		cfg.BodyLimit = DefaultBodyLimit
	}
	if cfg.MaxShards <= 0 {
		cfg.MaxShards = DefaultMaxShards
	}
	if cfg.Backend == "" {
		cfg.Backend = exec.Native
	}
	if cfg.TCPIdleTimeout == 0 {
		cfg.TCPIdleTimeout = DefaultTCPIdleTimeout
	}
	if cfg.TCPWriteTimeout <= 0 {
		cfg.TCPWriteTimeout = DefaultTCPWriteTimeout
	}
	opts := engine.Options{
		Curve:       cfg.Curve,
		Window:      cfg.MaxBatch,
		Seed:        cfg.Seed,
		Cache:       engine.NewLayoutCache(cfg.CacheCapacity),
		FlushDelay:  cfg.MaxDelay,
		Backend:     cfg.Backend,
		ShadowMeter: cfg.ShadowMeter,
	}
	s := &Server{
		cfg:      cfg,
		pool:     engine.NewPool(cfg.Workers, opts),
		engOpts:  opts,
		sem:      make(chan struct{}, cfg.QueueLimit),
		trees:    make(map[string]*tree.Tree),
		dyns:     make(map[string]*engine.DynEngine),
		logs:     make(map[string]*persist.ShardLog),
		adhoc:    make(map[uint64]struct{}),
		backends: make(map[string]string),

		wireConns:     make(map[net.Conn]struct{}),
		wireListeners: make(map[net.Listener]struct{}),
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/trees", s.admitted(s.handleRegister))
	s.mux.HandleFunc("POST /v1/query", s.admitted(s.handleQuery))
	s.mux.HandleFunc("POST /v1/dyn", s.admitted(s.handleDynCreate))
	s.mux.HandleFunc("POST /v1/dyn/{id}/mutate", s.admitted(s.handleDynMutate))
	s.mux.HandleFunc("POST /v1/dyn/{id}/query", s.admitted(s.handleDynQuery))
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	return s
}

// Handler returns the server's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Pool returns the underlying engine pool (exposed for the daemon's
// preloading and for tests).
func (s *Server) Pool() *engine.Pool { return s.pool }

// Drain performs a graceful shutdown of the serving layer: new requests
// are rejected with 503, in-flight requests are waited for (bounded by
// ctx), and every shard is flushed so that no submitted future is left
// pending. The HTTP listener itself is the caller's to close (see
// cmd/spatialtreed).
func (s *Server) Drain(ctx context.Context) error {
	s.flightMu.Lock()
	s.draining.Store(true)
	var done chan struct{}
	if s.inflight > 0 {
		done = make(chan struct{})
		s.drainDone = done
	}
	s.flightMu.Unlock()
	if done != nil {
		select {
		case <-done:
		case <-ctx.Done():
			return errors.New("server: drain interrupted with requests in flight")
		}
	}
	s.pool.FlushAll()
	return nil
}

// enter registers an admitted request; it fails once draining started.
func (s *Server) enter() bool {
	s.flightMu.Lock()
	defer s.flightMu.Unlock()
	if s.draining.Load() {
		return false
	}
	s.inflight++
	return true
}

// exit retires an admitted request, waking a waiting Drain when the
// last one leaves.
func (s *Server) exit() {
	s.flightMu.Lock()
	s.inflight--
	if s.inflight == 0 && s.drainDone != nil {
		close(s.drainDone)
		s.drainDone = nil
	}
	s.flightMu.Unlock()
}

// admitted wraps a handler with admission control: requests beyond the
// bounded queue are rejected with 429 (backpressure the client can see)
// and everything admitted is tracked for Drain.
func (s *Server) admitted(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		select {
		case s.sem <- struct{}{}:
		default:
			s.rejected.Add(1)
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusTooManyRequests, "request queue full")
			return
		}
		if !s.enter() {
			<-s.sem
			writeError(w, http.StatusServiceUnavailable, "server is draining")
			return
		}
		s.accepted.Add(1)
		defer func() {
			<-s.sem
			s.exit()
		}()
		r.Body = http.MaxBytesReader(w, r.Body, s.cfg.BodyLimit)
		h(w, r)
	}
}

// errShardLimit reports that MaxShards worth of per-tree serving state
// is already retained.
var errShardLimit = errors.New("shard limit reached (MaxShards): delete load or raise the limit")

// RegisterTree registers t on the server's default backend and returns
// its id, warming the shard (and through it the layout cache). The id
// is stable across servers: it is derived from the structural
// fingerprint. Registration beyond the MaxShards budget fails with
// errShardLimit — unless the tree is already registered, which retains
// nothing new. (The budget check and the shard creation are not atomic;
// concurrent registrations can overshoot by their own count, which is
// why this is a memory admission bound, not an exact quota.)
func (s *Server) RegisterTree(t *tree.Tree) (string, error) {
	return s.registerTree(t, true, "")
}

// RegisterTreeBackend is RegisterTree with an explicit execution
// backend ("" means the server default). Re-registering an existing
// tree with a different backend re-points its queries at a shard on
// that backend (both shards share one cached placement).
func (s *Server) RegisterTreeBackend(t *tree.Tree, backend string) (string, error) {
	return s.registerTree(t, true, backend)
}

// registerTree is RegisterTree with the persistence side controllable:
// Recover re-registers trees that are already on disk (and were
// admitted when first registered, so the budget does not re-apply).
//
//spatialvet:errclass
func (s *Server) registerTree(t *tree.Tree, save bool, backend string) (string, error) {
	if backend == "" {
		backend = s.cfg.Backend
	}
	if !exec.Valid(backend) {
		return "", badRequest(fmt.Errorf("unknown backend %q (want %q or %q)", backend, exec.Native, exec.Sim))
	}
	backend = exec.Normalize(backend)
	fp := engine.Fingerprint(t)
	id := treeID(fp)
	s.mu.Lock()
	_, registered := s.trees[id]
	// known means this registration retains nothing new: a pool shard
	// for (fingerprint, backend) already exists. A re-registration that
	// switches backends creates a fresh shard (the pool keys on the
	// pair), so it must pass the budget check like any first sight —
	// otherwise backend switching would be a MaxShards bypass.
	known := registered && s.backends[id] == backend
	if !registered {
		// A shard auto-created for this structure's ad-hoc traffic
		// already exists (on the default backend); promoting it to a
		// same-backend registration retains only the id mapping.
		_, adhoc := s.adhoc[fp]
		known = adhoc && backend == s.cfg.Backend
	}
	s.mu.Unlock()
	if save && !known && s.pool.Size() >= s.cfg.MaxShards {
		return "", errShardLimit
	}
	eng, err := s.pool.EngineBackend(t, backend)
	if err != nil {
		return "", err
	}
	// Persist on first registration — including the promotion of an
	// ad-hoc shard, which was never saved when it was auto-created.
	if save && !registered {
		if err := s.persistTree(id, eng); err != nil {
			return "", err
		}
	}
	s.mu.Lock()
	s.trees[id] = t
	s.backends[id] = backend
	// A promoted ad-hoc shard is now accounted as registered; free its
	// slot in the ad-hoc half of the budget.
	delete(s.adhoc, fp)
	s.mu.Unlock()
	return id, nil
}

func treeID(fp uint64) string {
	return "t" + strconv.FormatUint(fp, 16)
}

func (s *Server) handleRegister(w http.ResponseWriter, r *http.Request) {
	var req RegisterRequest
	if !decode(w, r, &req) {
		return
	}
	t, err := tree.FromParents(req.Parents)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	if req.Backend != "" && !exec.Valid(req.Backend) {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("unknown backend %q (want %q or %q)", req.Backend, exec.Native, exec.Sim))
		return
	}
	id, err := s.registerTree(t, true, req.Backend)
	if errors.Is(err, errShardLimit) {
		writeError(w, http.StatusTooManyRequests, err.Error())
		return
	}
	if err != nil {
		writeError(w, errStatus(err), err.Error())
		return
	}
	s.mu.Lock()
	be := s.backends[id]
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, RegisterResponse{ID: id, N: t.N(), Backend: be})
}

// submitter is the Submit surface Engine and DynEngine share; the
// query path is identical for both shard kinds.
type submitter interface {
	SubmitTreefix([]int64, treefix.Op) *engine.Future
	SubmitTopDown([]int64, treefix.Op) *engine.Future
	SubmitLCA([]lca.Query) *engine.Future
	SubmitMinCut([]mincut.Edge) *engine.Future
	SubmitExpr(*exprtree.Expr) *engine.Future
}

// errBadRequest classifies errors the client caused (malformed query,
// unknown operator) as distinct from server-side failures; errStatus
// maps it to 400. The wrapper keeps the original message.
var errBadRequest = errors.New("server: bad request")

type badRequestError struct{ error }

func (badRequestError) Is(target error) bool { return target == errBadRequest }

func badRequest(err error) error { return badRequestError{err} }

// errStatus classifies a query-path error: faults in the request itself
// (engine/mincut validation, unsupported operators, malformed bodies)
// are the client's (400); everything else — backend dispatch, journal
// repair, shard resolution — is the server's (500). The binary
// protocol's wireStatus mirrors this mapping.
func errStatus(err error) int {
	if errors.Is(err, engine.ErrInvalid) || errors.Is(err, mincut.ErrInvalid) ||
		errors.Is(err, treefix.ErrUnsupportedOp) || errors.Is(err, treefix.ErrInvalid) ||
		errors.Is(err, errBadRequest) {
		return http.StatusBadRequest
	}
	return http.StatusInternalServerError
}

// checkQuery validates the cheap, tree-independent parts of a query —
// kind and operator — so handlers can reject garbage before any shard
// state is created or budget consumed. Keep its kind set in sync with
// submit's dispatch below.
//
//spatialvet:errclass
func checkQuery(req *QueryRequest) error {
	switch req.Kind {
	case "lca", "mincut", "expr":
		return nil
	case "treefix", "topdown":
		if req.Op == "" {
			return nil
		}
		_, err := treefix.OpByName(req.Op)
		return err
	default:
		return badRequest(fmt.Errorf("unknown kind %q (want treefix, topdown, lca, mincut or expr)", req.Kind))
	}
}

// submit enqueues the request on the shard. It never runs kernel work
// itself (beyond the size-trigger dispatch the scheduler may hand the
// calling goroutine) — the returned future resolves when the shard's
// scheduler flushes the batch. getTree supplies the shard's tree for
// request kinds that need one to build their submission (expr); its
// failure is a server-side error, never the client's.
//
//spatialvet:errclass
func submit(sh submitter, req *QueryRequest, getTree func() (*tree.Tree, error)) (*engine.Future, error) {
	switch req.Kind {
	case "treefix", "topdown":
		opName := req.Op
		if opName == "" {
			opName = "add"
		}
		op, err := treefix.OpByName(opName)
		if err != nil {
			return nil, badRequest(err)
		}
		if req.Kind == "treefix" {
			return sh.SubmitTreefix(req.Vals, op), nil
		}
		return sh.SubmitTopDown(req.Vals, op), nil
	case "lca":
		qs := make([]lca.Query, len(req.Queries))
		for i, q := range req.Queries {
			qs[i] = lca.Query{U: q.U, V: q.V}
		}
		return sh.SubmitLCA(qs), nil
	case "mincut":
		es := make([]mincut.Edge, len(req.Edges))
		for i, e := range req.Edges {
			es[i] = mincut.Edge{U: e.U, V: e.V, W: e.W}
		}
		return sh.SubmitMinCut(es), nil
	case "expr":
		t, err := getTree()
		if err != nil {
			return nil, err
		}
		kinds := make([]exprtree.NodeKind, len(req.ExprKinds))
		for i, k := range req.ExprKinds {
			if k < 0 || k > int(exprtree.Mul) {
				return nil, badRequest(fmt.Errorf("expr_kinds[%d] = %d (want 0=leaf, 1=add or 2=mul)", i, k))
			}
			kinds[i] = exprtree.NodeKind(k)
		}
		// Length and shape invariants (full binary tree, leaf labeling)
		// are SubmitExpr's validation, classified ErrInvalid there.
		return sh.SubmitExpr(&exprtree.Expr{Tree: t, Kind: kinds, Val: req.Vals}), nil
	default:
		return nil, badRequest(fmt.Errorf("unknown kind %q (want treefix, topdown, lca, mincut or expr)", req.Kind))
	}
}

// serveQuery runs the shared tail of both query endpoints: enqueue,
// wait for the scheduler to dispatch the batch, translate the result.
// Errors are classified by errStatus: the client's faults are 400s,
// the server's 500s.
func serveQuery(w http.ResponseWriter, sh submitter, req *QueryRequest, getTree func() (*tree.Tree, error)) {
	fut, err := submit(sh, req, getTree)
	if err != nil {
		writeError(w, errStatus(err), err.Error())
		return
	}
	res := fut.Wait()
	if res.Err != nil {
		writeError(w, errStatus(res.Err), res.Err.Error())
		return
	}
	resp := QueryResponse{
		Sums:    res.Sums,
		Answers: res.Answers,
		Cost:    Cost{Energy: res.Cost.Energy, Messages: res.Cost.Messages, Depth: res.Cost.Depth},
	}
	switch req.Kind {
	case "mincut":
		resp.MinCut = &MinCutResult{MinWeight: res.MinCut.MinWeight, ArgVertex: res.MinCut.ArgVertex}
	case "expr":
		v := res.Value
		resp.Value = &v
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req QueryRequest
	if !decode(w, r, &req) {
		return
	}
	if err := checkQuery(&req); err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	var t *tree.Tree
	switch {
	case req.TreeID != "" && len(req.Parents) > 0:
		// The API contract is "exactly one of tree_id / parents";
		// silently preferring one would mask a client bug where the two
		// disagree.
		writeError(w, http.StatusBadRequest, "exactly one of tree_id and parents may be set")
		return
	case req.TreeID != "":
		s.mu.Lock()
		t = s.trees[req.TreeID]
		s.mu.Unlock()
		if t == nil {
			writeError(w, http.StatusNotFound, "unknown tree_id "+req.TreeID)
			return
		}
	case len(req.Parents) > 0:
		var err error
		if t, err = tree.FromParents(req.Parents); err != nil {
			writeError(w, http.StatusBadRequest, err.Error())
			return
		}
	default:
		writeError(w, http.StatusBadRequest, "tree_id or parents required")
		return
	}
	eng, retire, err := s.engineFor(t)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	serveQuery(w, eng, &req, func() (*tree.Tree, error) { return t, nil })
	retire()
}

// engineFor resolves the shard serving an ad-hoc query tree. Known
// trees (registered, or ad-hoc structures already given a shard) join
// their pooled shard — equal fingerprints coalesce into one batch
// window, and a registered tree's traffic runs on whatever backend it
// was registered with (ad-hoc structures use the server default). New
// ad-hoc structures get a pooled shard only while the ad-hoc half of
// the MaxShards budget lasts; the other half stays reserved for
// explicit registration, so unauthenticated one-off traffic can bound
// neither memory nor the registration API. Beyond the budget the tree
// is served from an ephemeral engine (the shared layout cache still
// catches repeated structures). retire must run after the request's
// future resolves — for an ephemeral engine it folds the counters into
// /metrics.
func (s *Server) engineFor(t *tree.Tree) (*engine.Engine, func(), error) {
	fp := engine.Fingerprint(t)
	id := treeID(fp)
	// Sample the pool size before taking the routing lock: Size takes
	// the pool's own routing lock, and s.mu must never nest over
	// another lock (the /metrics deadlock class). The value is a budget
	// heuristic — concurrent registrations already race it regardless
	// of where it is read.
	poolSize := s.pool.Size()
	s.mu.Lock()
	backend := s.cfg.Backend
	_, known := s.trees[id]
	if known {
		if be, ok := s.backends[id]; ok {
			backend = be
		}
	} else {
		_, known = s.adhoc[fp]
		if !known && len(s.adhoc) < s.cfg.MaxShards/2 && poolSize < s.cfg.MaxShards {
			s.adhoc[fp] = struct{}{}
			known = true
		}
	}
	s.mu.Unlock()
	if known {
		eng, err := s.pool.EngineBackend(t, backend)
		return eng, func() {}, err
	}
	opts := s.engOpts
	// No scheduler on a single-request engine: nothing can ever join
	// its batch, so Wait should flush at once instead of sleeping out
	// the MaxDelay deadline. No shadow metering either — a fresh
	// engine's first batch is always sampled, which would shadow-run
	// the simulator on every over-budget request; pool shards carry the
	// sampling instead.
	opts.FlushDelay = 0
	opts.ShadowMeter = 0
	eng, err := engine.New(t, opts)
	if err != nil {
		return nil, nil, err
	}
	return eng, func() {
		st := eng.Stats()
		st.Cache = engine.CacheStats{} // shared-cache counters stay with the pool's
		s.ephemMu.Lock()
		s.ephem.Add(st)
		s.ephemMu.Unlock()
	}, nil
}

func (s *Server) handleDynCreate(w http.ResponseWriter, r *http.Request) {
	var req DynCreateRequest
	if !decode(w, r, &req) {
		return
	}
	t, err := tree.FromParents(req.Parents)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	if req.Backend != "" && !exec.Valid(req.Backend) {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("unknown backend %q (want %q or %q)", req.Backend, exec.Native, exec.Sim))
		return
	}
	if s.pool.Size() >= s.cfg.MaxShards {
		writeError(w, http.StatusTooManyRequests, errShardLimit.Error())
		return
	}
	eps := req.Epsilon
	if eps <= 0 {
		eps = s.cfg.Epsilon
	}
	backend := req.Backend
	if backend == "" {
		backend = s.cfg.Backend
	}
	de, err := s.pool.NewDynShardBackend(t, eps, backend)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	s.mu.Lock()
	s.nextDyn++
	id := "d" + strconv.Itoa(s.nextDyn)
	s.mu.Unlock()
	// Durability before routability: the shard becomes addressable only
	// once its initial snapshot and WAL exist, so no mutation can ever
	// precede its log. On persistence failure the pool keeps an
	// unroutable shard until restart — an acceptable leak on a path
	// that only fails with the disk.
	if err := s.persistDynCreate(id, de); err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	s.mu.Lock()
	s.dyns[id] = de
	s.backends[id] = de.Backend()
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, DynCreateResponse{ID: id, N: t.N(), Backend: de.Backend()})
}

func (s *Server) dynShard(w http.ResponseWriter, r *http.Request) *engine.DynEngine {
	id := r.PathValue("id")
	s.mu.Lock()
	de := s.dyns[id]
	s.mu.Unlock()
	if de == nil {
		writeError(w, http.StatusNotFound, "unknown shard_id "+id)
	}
	return de
}

func (s *Server) handleDynMutate(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	de := s.dynShard(w, r)
	if de == nil {
		return
	}
	var req MutateRequest
	if !decode(w, r, &req) {
		return
	}
	resp := MutateResponse{}
	var err error
	epochBefore := de.Epoch()
	switch req.Op {
	case "insert":
		resp.Vertex, err = de.InsertLeaf(req.Parent)
	case "delete":
		resp.Moved, err = de.DeleteLeaf(req.Leaf)
	default:
		writeError(w, http.StatusBadRequest, "unknown op "+strconv.Quote(req.Op)+" (want insert or delete)")
		return
	}
	if err != nil {
		// An error with the epoch bumped means the mutation applied but
		// the layout's post-mutation rebuild failed — or its journal
		// append did — server-side degradation, not a bad request.
		// (Epoch comparison can misread under concurrent mutations on
		// one shard; the worst case is a 500 for what was a 400, which
		// errs on the honest side.) A journal failure leaves the log
		// behind the engine; repairJournal re-snapshots to close the
		// gap so one transient disk error cannot wedge durability for
		// the rest of the process.
		status := http.StatusBadRequest
		if de.Epoch() != epochBefore {
			status = http.StatusInternalServerError
			s.repairJournal(id, de)
		}
		writeError(w, status, err.Error())
		return
	}
	resp.Epoch, resp.N = de.Epoch(), de.N()
	s.maybeCompact(id, de)
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleDynQuery(w http.ResponseWriter, r *http.Request) {
	de := s.dynShard(w, r)
	if de == nil {
		return
	}
	var req QueryRequest
	if !decode(w, r, &req) {
		return
	}
	// Same pre-validation as /v1/query (a dyn shard has no budget to
	// protect, but the two surfaces must agree on what a valid request
	// is).
	if err := checkQuery(&req); err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	serveQuery(w, de, &req, de.Tree)
}

// Metrics snapshots every layer's counters (also served as /metrics).
func (s *Server) Metrics() MetricsResponse {
	st := s.pool.Stats()
	s.ephemMu.Lock()
	st.Add(s.ephem)
	s.ephemMu.Unlock()
	// Copy the shard list under s.mu, then aggregate without it:
	// DynEngine.Stats blocks on the shard's mutation lock, which a slow
	// mutation can hold through a drain and a layout rebuild — routing
	// must not queue behind a metrics scrape for that long.
	s.mu.Lock()
	trees, shards := len(s.trees), len(s.dyns)
	dynList := make([]*engine.DynEngine, 0, len(s.dyns))
	for _, de := range s.dyns {
		dynList = append(dynList, de)
	}
	logList := make([]*persist.ShardLog, 0, len(s.logs))
	for _, l := range s.logs {
		logList = append(logList, l)
	}
	recovered := s.recovered
	backendShards := map[string]int{}
	for _, be := range s.backends {
		backendShards[be]++
	}
	// Ad-hoc pool shards were created on the default backend.
	backendShards[s.cfg.Backend] += len(s.adhoc)
	s.mu.Unlock()
	var pm *PersistMetrics
	if s.cfg.Store != nil {
		pm = &PersistMetrics{
			Enabled:         true,
			JournalRecords:  s.journaled.Load(),
			RecoveredTrees:  recovered.Trees,
			RecoveredShards: recovered.DynShards,
			ReplayedRecords: recovered.Records,
		}
		for _, l := range logList {
			pm.Compactions += l.Compactions()
			pm.WALRecords += l.RecordsSinceSnapshot()
		}
	}
	var dyn DynMetrics
	dyn.Shards = shards
	for _, de := range dynList {
		ds := de.Stats()
		dyn.Epoch += ds.Epoch
		dyn.Inserts += ds.Inserts
		dyn.Deletes += ds.Deletes
		dyn.Rebuilds += ds.Rebuilds
		dyn.Refreshes += ds.Refreshes
	}
	batches := st.Batches
	perBatch := 0.0
	if batches > 0 {
		perBatch = float64(st.Requests) / float64(batches)
	}
	var wm *WireMetrics
	if s.wireEnabled.Load() {
		s.wireMu.Lock()
		active := len(s.wireConns)
		s.wireMu.Unlock()
		wm = &WireMetrics{
			Conns:       s.wireTotal.Load(),
			ActiveConns: active,
			Queries:     s.wireQueries.Load(),
			Errors:      s.wireErrors.Load(),
		}
	}
	return MetricsResponse{
		Server: ServerMetrics{
			Accepted:  s.accepted.Load(),
			Rejected:  s.rejected.Load(),
			InFlight:  len(s.sem),
			Draining:  s.draining.Load(),
			Trees:     trees,
			DynShards: shards,
		},
		Scheduler: SchedulerMetrics{
			MaxBatch:         s.cfg.MaxBatch,
			MaxDelayMillis:   float64(s.cfg.MaxDelay) / float64(time.Millisecond),
			Batches:          st.Batches,
			Requests:         st.Requests,
			SizeFlushes:      st.SizeFlushes,
			DeadlineFlushes:  st.DeadlineFlushes,
			RequestsPerBatch: perBatch,
		},
		Engine: EngineMetrics{
			LCAQueries: st.LCAQueries,
			LCARuns:    st.LCARuns,
			Cost:       Cost{Energy: st.Cost.Energy, Messages: st.Cost.Messages, Depth: st.Cost.Depth},
		},
		Cache: CacheMetrics{
			Hits:      st.Cache.Hits,
			Misses:    st.Cache.Misses,
			Evictions: st.Cache.Evictions,
			Builds:    st.Cache.Builds,
			Coalesced: st.Cache.Coalesced,
			Size:      st.Cache.Size,
			Capacity:  st.Cache.Capacity,
			HitRate:   st.Cache.HitRate(),
		},
		Backends: BackendMetrics{
			Default:          s.cfg.Backend,
			ShadowMeter:      s.cfg.ShadowMeter,
			Shards:           backendShards,
			ShadowBatches:    st.ShadowBatches,
			ShadowMismatches: st.ShadowMismatches,
		},
		Dyn:     dyn,
		Wire:    wm,
		Persist: pm,
	}
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Metrics())
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, HealthResponse{OK: false, Draining: true})
		return
	}
	writeJSON(w, http.StatusOK, HealthResponse{OK: true})
}

// decode parses the JSON body into v, replying 400 (or 413 for an
// oversized body) itself on failure.
func decode(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeError(w, http.StatusRequestEntityTooLarge, err.Error())
			return false
		}
		writeError(w, http.StatusBadRequest, "invalid request body: "+err.Error())
		return false
	}
	if dec.More() {
		writeError(w, http.StatusBadRequest, "trailing data after request body")
		return false
	}
	_, _ = io.Copy(io.Discard, r.Body)
	return true
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, ErrorResponse{Error: msg})
}
