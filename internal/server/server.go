// Package server exposes the batched query engines over HTTP/JSON: the
// serving subsystem behind cmd/spatialtreed. It separates request
// arrival from batch execution the way the paper separates layout
// construction from kernel runs — handlers enqueue work and wait on
// futures while a per-shard adaptive scheduler (the engines' autoflush:
// MaxBatch requests or a MaxDelay deadline, whichever comes first)
// decides when simulator runs actually happen, so concurrent clients
// hitting one tree coalesce into far fewer runs than requests.
//
// Endpoints:
//
//	POST /v1/trees          register an immutable tree → tree_id
//	POST /v1/query          run treefix|topdown|lca|mincut on a tree
//	POST /v1/dyn            create a mutable shard → shard_id
//	GET  /v1/dyn/{id}       shard status: layout config + tuner state
//	POST /v1/dyn/{id}/mutate  insert/delete a leaf
//	POST /v1/dyn/{id}/query   query the mutable shard's current tree
//	GET  /metrics           server + scheduler + engine + cache stats
//	GET  /healthz           liveness (503 while draining)
//
// Immutable traffic is routed per tenant by tree fingerprint through an
// engine.Pool: structurally identical trees share a shard and therefore
// a batch window. Mutable shards are routed by id. Admission control is
// a bounded in-flight queue: when QueueLimit requests are already being
// served, further work is rejected with 429 rather than queued without
// bound. Drain stops admission, waits for in-flight requests and
// flushes every shard, so shutdown never strands a future.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"spatialtree/internal/engine"
	"spatialtree/internal/exec"
	"spatialtree/internal/exprtree"
	"spatialtree/internal/lca"
	"spatialtree/internal/mincut"
	"spatialtree/internal/persist"
	"spatialtree/internal/tree"
	"spatialtree/internal/treefix"
	"spatialtree/internal/tune"
	"spatialtree/internal/wire"
)

// Server serves the engines over HTTP. Construct with New; the zero
// value is not usable.
type Server struct {
	cfg     Config
	pool    *engine.Pool
	engOpts engine.Options // the pool's options (shared cache); used for ephemeral engines
	mux     *http.ServeMux

	// ephem folds the counters of ephemeral engines (ad-hoc query
	// trees served beyond the shard budget), which would otherwise
	// vanish from /metrics.
	ephemMu sync.Mutex
	ephem   engine.Stats

	sem      chan struct{}
	draining atomic.Bool
	accepted atomic.Uint64
	rejected atomic.Uint64

	// flightMu serializes request admission against Drain: enter checks
	// the draining flag and bumps inflight under it, so Drain can set
	// the flag and wait for a moment when inflight is provably zero.
	flightMu  sync.Mutex
	inflight  int
	drainDone chan struct{} // non-nil while a Drain waits; closed at inflight 0

	// journaled counts WAL records appended across all dyn shards.
	journaled atomic.Uint64

	// cluster holds the installed ClusterHooks (see cluster_hooks.go);
	// nil means single-node serving.
	cluster atomic.Pointer[ClusterHooks]

	// tuner is the online layout tuner (nil unless Tuning.Enabled). It
	// adopts every locally served dyn shard and republishes layouts
	// through the engine's Retune path; see internal/tune.
	tuner *tune.Tuner

	// Binary-protocol listener state (tcp.go). wireEnabled flips once
	// ServeBinary runs, making the Wire block appear in /metrics.
	wireEnabled   atomic.Bool
	wireTotal     atomic.Uint64
	wireQueries   atomic.Uint64
	wireErrors    atomic.Uint64
	wireMu        sync.Mutex
	wireConns     map[net.Conn]struct{}
	wireListeners map[net.Listener]struct{}

	mu        sync.Mutex //spatialvet:lockclass routing
	trees     map[string]*tree.Tree
	dyns      map[string]*engine.DynEngine
	logs      map[string]*persist.ShardLog // per-dyn-shard WALs (nil Store: empty)
	adhoc     map[uint64]struct{}          // fingerprints of pool shards auto-created for ad-hoc query trees
	backends  map[string]string            // tree id / dyn shard id -> serving backend
	nextDyn   int
	recovered RecoveryStats
}

// New builds a server; all zero Config fields take the documented
// defaults.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	opts := engine.Options{
		Curve:       cfg.Curve,
		Window:      cfg.Scheduler.MaxBatch,
		Seed:        cfg.Seed,
		Cache:       engine.NewLayoutCache(cfg.Limits.CacheCapacity),
		FlushDelay:  cfg.Scheduler.MaxDelay,
		Backend:     cfg.Backend,
		ShadowMeter: cfg.ShadowMeter,
	}
	s := &Server{
		cfg:      cfg,
		pool:     engine.NewPool(cfg.Scheduler.Workers, opts),
		engOpts:  opts,
		sem:      make(chan struct{}, cfg.Limits.QueueLimit),
		trees:    make(map[string]*tree.Tree),
		dyns:     make(map[string]*engine.DynEngine),
		logs:     make(map[string]*persist.ShardLog),
		adhoc:    make(map[uint64]struct{}),
		backends: make(map[string]string),

		wireConns:     make(map[net.Conn]struct{}),
		wireListeners: make(map[net.Listener]struct{}),
	}
	if cfg.Tuning.Enabled {
		s.tuner = tune.New(tune.Config{
			Threshold:   cfg.Tuning.Threshold,
			Backends:    cfg.Tuning.Backends,
			OnRepublish: s.persistRetune,
		})
		s.tuner.Start(cfg.Tuning.Interval)
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/trees", s.admitted(s.handleRegister))
	s.mux.HandleFunc("POST /v1/query", s.admitted(s.handleQuery))
	s.mux.HandleFunc("POST /v1/dyn", s.admitted(s.handleDynCreate))
	s.mux.HandleFunc("GET /v1/dyn/{id}", s.handleDynStatus)
	s.mux.HandleFunc("POST /v1/dyn/{id}/mutate", s.admitted(s.handleDynMutate))
	s.mux.HandleFunc("POST /v1/dyn/{id}/query", s.admitted(s.handleDynQuery))
	s.mux.HandleFunc("GET /v1/cluster/status", s.handleClusterStatus)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	return s
}

// Handler returns the server's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Pool returns the underlying engine pool (exposed for the daemon's
// preloading and for tests).
func (s *Server) Pool() *engine.Pool { return s.pool }

// Tuner returns the online layout tuner, or nil when Tuning is off
// (exposed so tests can drive Tick deterministically).
func (s *Server) Tuner() *tune.Tuner { return s.tuner }

// Drain performs a graceful shutdown of the serving layer: new requests
// are rejected with 503, in-flight requests are waited for (bounded by
// ctx), and every shard is flushed so that no submitted future is left
// pending. The HTTP listener itself is the caller's to close (see
// cmd/spatialtreed).
func (s *Server) Drain(ctx context.Context) error {
	s.flightMu.Lock()
	s.draining.Store(true)
	var done chan struct{}
	if s.inflight > 0 {
		done = make(chan struct{})
		s.drainDone = done
	}
	s.flightMu.Unlock()
	if done != nil {
		select {
		case <-done:
		case <-ctx.Done():
			return errors.New("server: drain interrupted with requests in flight")
		}
	}
	// Stop the tuner before flushing: a retune in flight quiesces its
	// shard and finishes; no new republish can start mid-shutdown.
	if s.tuner != nil {
		s.tuner.Stop()
	}
	s.pool.FlushAll()
	return nil
}

// enter registers an admitted request; it fails once draining started.
func (s *Server) enter() bool {
	s.flightMu.Lock()
	defer s.flightMu.Unlock()
	if s.draining.Load() {
		return false
	}
	s.inflight++
	return true
}

// exit retires an admitted request, waking a waiting Drain when the
// last one leaves.
func (s *Server) exit() {
	s.flightMu.Lock()
	s.inflight--
	if s.inflight == 0 && s.drainDone != nil {
		close(s.drainDone)
		s.drainDone = nil
	}
	s.flightMu.Unlock()
}

// admitted wraps a handler with admission control: requests beyond the
// bounded queue are rejected with 429 (backpressure the client can see)
// and everything admitted is tracked for Drain.
func (s *Server) admitted(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		select {
		case s.sem <- struct{}{}:
		default:
			s.rejected.Add(1)
			w.Header().Set("Retry-After", "1")
			writeStatus(w, StatusTooMany, "request queue full")
			return
		}
		if !s.enter() {
			<-s.sem
			writeStatus(w, StatusUnavailable, "server is draining")
			return
		}
		s.accepted.Add(1)
		defer func() {
			<-s.sem
			s.exit()
		}()
		r.Body = http.MaxBytesReader(w, r.Body, s.cfg.Limits.BodyLimit)
		h(w, r)
	}
}

// errShardLimit reports that MaxShards worth of per-tree serving state
// is already retained.
var errShardLimit = errors.New("shard limit reached (MaxShards): delete load or raise the limit")

// RegisterTree registers t on the server's default backend and returns
// its id, warming the shard (and through it the layout cache). The id
// is stable across servers: it is derived from the structural
// fingerprint. Registration beyond the MaxShards budget fails with
// errShardLimit — unless the tree is already registered, which retains
// nothing new. (The budget check and the shard creation are not atomic;
// concurrent registrations can overshoot by their own count, which is
// why this is a memory admission bound, not an exact quota.)
func (s *Server) RegisterTree(t *tree.Tree) (string, error) {
	return s.registerTree(t, true, "")
}

// RegisterTreeBackend is RegisterTree with an explicit execution
// backend ("" means the server default). Re-registering an existing
// tree with a different backend re-points its queries at a shard on
// that backend (both shards share one cached placement).
func (s *Server) RegisterTreeBackend(t *tree.Tree, backend string) (string, error) {
	return s.registerTree(t, true, backend)
}

// registerTree is RegisterTree with the persistence side controllable:
// Recover re-registers trees that are already on disk (and were
// admitted when first registered, so the budget does not re-apply).
//
//spatialvet:errclass
func (s *Server) registerTree(t *tree.Tree, save bool, backend string) (string, error) {
	if backend == "" {
		backend = s.cfg.Backend
	}
	if !exec.Valid(backend) {
		return "", badRequest(fmt.Errorf("unknown backend %q (want %q or %q)", backend, exec.Native, exec.Sim))
	}
	backend = exec.Normalize(backend)
	fp := engine.Fingerprint(t)
	id := treeID(fp)
	s.mu.Lock()
	_, registered := s.trees[id]
	// known means this registration retains nothing new: a pool shard
	// for (fingerprint, backend) already exists. A re-registration that
	// switches backends creates a fresh shard (the pool keys on the
	// pair), so it must pass the budget check like any first sight —
	// otherwise backend switching would be a MaxShards bypass.
	known := registered && s.backends[id] == backend
	if !registered {
		// A shard auto-created for this structure's ad-hoc traffic
		// already exists (on the default backend); promoting it to a
		// same-backend registration retains only the id mapping.
		_, adhoc := s.adhoc[fp]
		known = adhoc && backend == s.cfg.Backend
	}
	s.mu.Unlock()
	if save && !known && s.pool.Size() >= s.cfg.Limits.MaxShards {
		return "", errShardLimit
	}
	eng, err := s.pool.EngineBackend(t, backend)
	if err != nil {
		return "", err
	}
	// Persist on first registration — including the promotion of an
	// ad-hoc shard, which was never saved when it was auto-created.
	if save && !registered {
		if err := s.persistTree(id, eng); err != nil {
			return "", err
		}
	}
	s.mu.Lock()
	s.trees[id] = t
	s.backends[id] = backend
	// A promoted ad-hoc shard is now accounted as registered; free its
	// slot in the ad-hoc half of the budget.
	delete(s.adhoc, fp)
	s.mu.Unlock()
	return id, nil
}

func treeID(fp uint64) string {
	return "t" + strconv.FormatUint(fp, 16)
}

func (s *Server) handleRegister(w http.ResponseWriter, r *http.Request) {
	var req RegisterRequest
	if !decode(w, r, &req) {
		return
	}
	t, err := tree.FromParents(req.Parents)
	if err != nil {
		writeStatus(w, StatusBadRequest, err.Error())
		return
	}
	if req.Backend != "" && !exec.Valid(req.Backend) {
		writeStatus(w, StatusBadRequest, fmt.Sprintf("unknown backend %q (want %q or %q)", req.Backend, exec.Native, exec.Sim))
		return
	}
	id, err := s.registerTree(t, true, req.Backend)
	if errors.Is(err, errShardLimit) {
		writeStatus(w, StatusTooMany, err.Error())
		return
	}
	if err != nil {
		writeErr(w, err)
		return
	}
	s.mu.Lock()
	be := s.backends[id]
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, RegisterResponse{ID: id, N: t.N(), Backend: be})
}

// submitter is the Submit surface Engine and DynEngine share; the
// query path is identical for both shard kinds.
type submitter interface {
	SubmitTreefix([]int64, treefix.Op) *engine.Future
	SubmitTopDown([]int64, treefix.Op) *engine.Future
	SubmitLCA([]lca.Query) *engine.Future
	SubmitMinCut([]mincut.Edge) *engine.Future
	SubmitExpr(*exprtree.Expr) *engine.Future
}

// checkQuery validates the cheap, tree-independent parts of a query —
// kind and operator — so handlers can reject garbage before any shard
// state is created or budget consumed. Keep its kind set in sync with
// submit's dispatch below.
//
//spatialvet:errclass
func checkQuery(req *QueryRequest) error {
	switch req.Kind {
	case "lca", "mincut", "expr":
		return nil
	case "treefix", "topdown":
		if req.Op == "" {
			return nil
		}
		_, err := treefix.OpByName(req.Op)
		return err
	default:
		return badRequest(fmt.Errorf("unknown kind %q (want treefix, topdown, lca, mincut or expr)", req.Kind))
	}
}

// submit enqueues the request on the shard. It never runs kernel work
// itself (beyond the size-trigger dispatch the scheduler may hand the
// calling goroutine) — the returned future resolves when the shard's
// scheduler flushes the batch. getTree supplies the shard's tree for
// request kinds that need one to build their submission (expr); its
// failure is a server-side error, never the client's.
//
//spatialvet:errclass
func submit(sh submitter, req *QueryRequest, getTree func() (*tree.Tree, error)) (*engine.Future, error) {
	switch req.Kind {
	case "treefix", "topdown":
		opName := req.Op
		if opName == "" {
			opName = "add"
		}
		op, err := treefix.OpByName(opName)
		if err != nil {
			return nil, badRequest(err)
		}
		if req.Kind == "treefix" {
			return sh.SubmitTreefix(req.Vals, op), nil
		}
		return sh.SubmitTopDown(req.Vals, op), nil
	case "lca":
		qs := make([]lca.Query, len(req.Queries))
		for i, q := range req.Queries {
			qs[i] = lca.Query{U: q.U, V: q.V}
		}
		return sh.SubmitLCA(qs), nil
	case "mincut":
		es := make([]mincut.Edge, len(req.Edges))
		for i, e := range req.Edges {
			es[i] = mincut.Edge{U: e.U, V: e.V, W: e.W}
		}
		return sh.SubmitMinCut(es), nil
	case "expr":
		t, err := getTree()
		if err != nil {
			return nil, err
		}
		kinds := make([]exprtree.NodeKind, len(req.ExprKinds))
		for i, k := range req.ExprKinds {
			if k < 0 || k > int(exprtree.Mul) {
				return nil, badRequest(fmt.Errorf("expr_kinds[%d] = %d (want 0=leaf, 1=add or 2=mul)", i, k))
			}
			kinds[i] = exprtree.NodeKind(k)
		}
		// Length and shape invariants (full binary tree, leaf labeling)
		// are SubmitExpr's validation, classified ErrInvalid there.
		return sh.SubmitExpr(&exprtree.Expr{Tree: t, Kind: kinds, Val: req.Vals}), nil
	default:
		return nil, badRequest(fmt.Errorf("unknown kind %q (want treefix, topdown, lca, mincut or expr)", req.Kind))
	}
}

// serveQuery runs the shared tail of both query endpoints: enqueue,
// wait for the scheduler to dispatch the batch, translate the result.
// Errors render through Classify: the client's faults are 400s, the
// server's 500s.
func serveQuery(w http.ResponseWriter, sh submitter, req *QueryRequest, getTree func() (*tree.Tree, error)) {
	fut, err := submit(sh, req, getTree)
	if err != nil {
		writeErr(w, err)
		return
	}
	res := fut.Wait()
	if res.Err != nil {
		writeErr(w, res.Err)
		return
	}
	resp := QueryResponse{
		Sums:    res.Sums,
		Answers: res.Answers,
		Cost:    Cost{Energy: res.Cost.Energy, Messages: res.Cost.Messages, Depth: res.Cost.Depth},
	}
	switch req.Kind {
	case "mincut":
		resp.MinCut = &MinCutResult{MinWeight: res.MinCut.MinWeight, ArgVertex: res.MinCut.ArgVertex}
	case "expr":
		v := res.Value
		resp.Value = &v
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req QueryRequest
	if !decode(w, r, &req) {
		return
	}
	if err := checkQuery(&req); err != nil {
		writeStatus(w, StatusBadRequest, err.Error())
		return
	}
	var t *tree.Tree
	switch {
	case req.TreeID != "" && len(req.Parents) > 0:
		// The API contract is "exactly one of tree_id / parents";
		// silently preferring one would mask a client bug where the two
		// disagree.
		writeStatus(w, StatusBadRequest, "exactly one of tree_id and parents may be set")
		return
	case req.TreeID != "":
		s.mu.Lock()
		t = s.trees[req.TreeID]
		s.mu.Unlock()
		if t == nil {
			writeStatus(w, StatusNotFound, "unknown tree_id "+req.TreeID)
			return
		}
	case len(req.Parents) > 0:
		var err error
		if t, err = tree.FromParents(req.Parents); err != nil {
			writeStatus(w, StatusBadRequest, err.Error())
			return
		}
	default:
		writeStatus(w, StatusBadRequest, "tree_id or parents required")
		return
	}
	eng, retire, err := s.engineFor(t)
	if err != nil {
		writeErr(w, err)
		return
	}
	serveQuery(w, eng, &req, func() (*tree.Tree, error) { return t, nil })
	retire()
}

// engineFor resolves the shard serving an ad-hoc query tree. Known
// trees (registered, or ad-hoc structures already given a shard) join
// their pooled shard — equal fingerprints coalesce into one batch
// window, and a registered tree's traffic runs on whatever backend it
// was registered with (ad-hoc structures use the server default). New
// ad-hoc structures get a pooled shard only while the ad-hoc half of
// the MaxShards budget lasts; the other half stays reserved for
// explicit registration, so unauthenticated one-off traffic can bound
// neither memory nor the registration API. Beyond the budget the tree
// is served from an ephemeral engine (the shared layout cache still
// catches repeated structures). retire must run after the request's
// future resolves — for an ephemeral engine it folds the counters into
// /metrics.
func (s *Server) engineFor(t *tree.Tree) (*engine.Engine, func(), error) {
	fp := engine.Fingerprint(t)
	id := treeID(fp)
	// Sample the pool size before taking the routing lock: Size takes
	// the pool's own routing lock, and s.mu must never nest over
	// another lock (the /metrics deadlock class). The value is a budget
	// heuristic — concurrent registrations already race it regardless
	// of where it is read.
	poolSize := s.pool.Size()
	s.mu.Lock()
	backend := s.cfg.Backend
	_, known := s.trees[id]
	if known {
		if be, ok := s.backends[id]; ok {
			backend = be
		}
	} else {
		_, known = s.adhoc[fp]
		if !known && len(s.adhoc) < s.cfg.Limits.MaxShards/2 && poolSize < s.cfg.Limits.MaxShards {
			s.adhoc[fp] = struct{}{}
			known = true
		}
	}
	s.mu.Unlock()
	if known {
		eng, err := s.pool.EngineBackend(t, backend)
		return eng, func() {}, err
	}
	opts := s.engOpts
	// No scheduler on a single-request engine: nothing can ever join
	// its batch, so Wait should flush at once instead of sleeping out
	// the MaxDelay deadline. No shadow metering either — a fresh
	// engine's first batch is always sampled, which would shadow-run
	// the simulator on every over-budget request; pool shards carry the
	// sampling instead.
	opts.FlushDelay = 0
	opts.ShadowMeter = 0
	eng, err := engine.New(t, opts)
	if err != nil {
		return nil, nil, err
	}
	return eng, func() {
		st := eng.Stats()
		st.Cache = engine.CacheStats{} // shared-cache counters stay with the pool's
		s.ephemMu.Lock()
		s.ephem.Add(st)
		s.ephemMu.Unlock()
	}, nil
}

func (s *Server) handleDynCreate(w http.ResponseWriter, r *http.Request) {
	var req DynCreateRequest
	if !decode(w, r, &req) {
		return
	}
	res, err := s.dynCreate(req.Parents, req.Epsilon, req.Backend)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, DynCreateResponse{ID: res.ID, N: res.N, Backend: res.Backend})
}

func (s *Server) handleDynMutate(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	var req MutateRequest
	if !decode(w, r, &req) {
		return
	}
	var op uint8
	var arg int
	switch req.Op {
	case "insert":
		op, arg = wire.OpInsert, req.Parent
	case "delete":
		op, arg = wire.OpDelete, req.Leaf
	default:
		writeStatus(w, StatusBadRequest, "unknown op "+strconv.Quote(req.Op)+" (want insert or delete)")
		return
	}
	res, err := s.mutate(id, op, arg)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, MutateResponse{Vertex: res.Vertex, Moved: res.Moved, Epoch: res.Epoch, N: res.N})
}

func (s *Server) handleDynQuery(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	var req QueryRequest
	if !decode(w, r, &req) {
		return
	}
	// Same pre-validation as /v1/query (a dyn shard has no budget to
	// protect, but the two surfaces must agree on what a valid request
	// is) — and it runs before routing, so a cluster never proxies a
	// request its own surface would reject.
	if err := checkQuery(&req); err != nil {
		writeStatus(w, StatusBadRequest, err.Error())
		return
	}
	if h := s.clusterHooks(); h != nil {
		resp, handled, err := h.ShardQuery(id, &req)
		if err != nil {
			writeErr(w, err)
			return
		}
		if handled {
			writeJSON(w, http.StatusOK, *resp)
			return
		}
	}
	s.mu.Lock()
	de := s.dyns[id]
	s.mu.Unlock()
	if de == nil {
		writeStatus(w, StatusNotFound, "unknown shard_id "+id)
		return
	}
	serveQuery(w, de, &req, de.Tree)
}

// handleDynStatus reports a locally served shard's current layout
// configuration and, when tuning is on, its tuner state (profile,
// cooldown, last projected-vs-realized win). It is a local view: in
// cluster mode non-owners answer 404 rather than proxy — status is an
// operator surface, not a routed data path.
func (s *Server) handleDynStatus(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	de := s.dyns[id]
	s.mu.Unlock()
	if de == nil {
		writeStatus(w, StatusNotFound, "unknown shard_id "+id)
		return
	}
	spec := de.LayoutConfig()
	ds := de.Stats()
	resp := DynStatusResponse{
		ID:      id,
		N:       de.N(),
		Epoch:   ds.Epoch,
		Backend: spec.Backend,
		Curve:   spec.Curve,
		Epsilon: spec.Epsilon,
		Retunes: ds.Retunes,
	}
	if s.tuner != nil {
		if st, ok := s.tuner.Status(id); ok {
			resp.Tuner = &st
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// persistRetune is the tuner's OnRepublish hook: the tuned curve and ε
// are already part of the shard's durable state (engine.DynState), so a
// compaction right after the republish folds them into the snapshot and
// the next boot warm-starts on the tuned layout instead of replaying to
// the untuned one. Best-effort like maybeCompact; the backend stays a
// serving-time knob and is not persisted.
func (s *Server) persistRetune(id string, _ engine.RetuneSpec) {
	s.mu.Lock()
	de := s.dyns[id]
	log := s.logs[id]
	s.mu.Unlock()
	if de == nil || log == nil {
		return
	}
	_ = log.Compact(dynSnapFromState(de.State()))
}

// Metrics snapshots every layer's counters (also served as /metrics).
func (s *Server) Metrics() MetricsResponse {
	st := s.pool.Stats()
	s.ephemMu.Lock()
	st.Add(s.ephem)
	s.ephemMu.Unlock()
	// Copy the shard list under s.mu, then aggregate without it:
	// DynEngine.Stats blocks on the shard's mutation lock, which a slow
	// mutation can hold through a drain and a layout rebuild — routing
	// must not queue behind a metrics scrape for that long.
	s.mu.Lock()
	trees, shards := len(s.trees), len(s.dyns)
	dynList := make([]*engine.DynEngine, 0, len(s.dyns))
	for _, de := range s.dyns {
		dynList = append(dynList, de)
	}
	logList := make([]*persist.ShardLog, 0, len(s.logs))
	for _, l := range s.logs {
		logList = append(logList, l)
	}
	recovered := s.recovered
	backendShards := map[string]int{}
	for _, be := range s.backends {
		backendShards[be]++
	}
	// Ad-hoc pool shards were created on the default backend.
	backendShards[s.cfg.Backend] += len(s.adhoc)
	s.mu.Unlock()
	var pm *PersistMetrics
	if s.cfg.Durability.Store != nil {
		pm = &PersistMetrics{
			Enabled:         true,
			JournalRecords:  s.journaled.Load(),
			RecoveredTrees:  recovered.Trees,
			RecoveredShards: recovered.DynShards,
			ReplayedRecords: recovered.Records,
		}
		for _, l := range logList {
			pm.Compactions += l.Compactions()
			pm.WALRecords += l.RecordsSinceSnapshot()
		}
	}
	var dyn DynMetrics
	dyn.Shards = shards
	for _, de := range dynList {
		ds := de.Stats()
		dyn.Epoch += ds.Epoch
		dyn.Inserts += ds.Inserts
		dyn.Deletes += ds.Deletes
		dyn.Rebuilds += ds.Rebuilds
		dyn.Refreshes += ds.Refreshes
	}
	batches := st.Batches
	perBatch := 0.0
	if batches > 0 {
		perBatch = float64(st.Requests) / float64(batches)
	}
	var tm *TunerMetrics
	if s.tuner != nil {
		m := s.tuner.Metrics()
		tm = &m
	}
	var wm *WireMetrics
	if s.wireEnabled.Load() {
		s.wireMu.Lock()
		active := len(s.wireConns)
		s.wireMu.Unlock()
		wm = &WireMetrics{
			Conns:       s.wireTotal.Load(),
			ActiveConns: active,
			Queries:     s.wireQueries.Load(),
			Errors:      s.wireErrors.Load(),
		}
	}
	return MetricsResponse{
		Server: ServerMetrics{
			Accepted:  s.accepted.Load(),
			Rejected:  s.rejected.Load(),
			InFlight:  len(s.sem),
			Draining:  s.draining.Load(),
			Trees:     trees,
			DynShards: shards,
		},
		Scheduler: SchedulerMetrics{
			MaxBatch:         s.cfg.Scheduler.MaxBatch,
			MaxDelayMillis:   float64(s.cfg.Scheduler.MaxDelay) / float64(time.Millisecond),
			Batches:          st.Batches,
			Requests:         st.Requests,
			SizeFlushes:      st.SizeFlushes,
			DeadlineFlushes:  st.DeadlineFlushes,
			RequestsPerBatch: perBatch,
		},
		Engine: EngineMetrics{
			LCAQueries: st.LCAQueries,
			LCARuns:    st.LCARuns,
			Cost:       Cost{Energy: st.Cost.Energy, Messages: st.Cost.Messages, Depth: st.Cost.Depth},
		},
		Cache: CacheMetrics{
			Hits:      st.Cache.Hits,
			Misses:    st.Cache.Misses,
			Evictions: st.Cache.Evictions,
			Builds:    st.Cache.Builds,
			Coalesced: st.Cache.Coalesced,
			Size:      st.Cache.Size,
			Capacity:  st.Cache.Capacity,
			HitRate:   st.Cache.HitRate(),
		},
		Backends: BackendMetrics{
			Default:          s.cfg.Backend,
			ShadowMeter:      s.cfg.ShadowMeter,
			Shards:           backendShards,
			ShadowBatches:    st.ShadowBatches,
			ShadowMismatches: st.ShadowMismatches,
		},
		Dyn:     dyn,
		Tuner:   tm,
		Wire:    wm,
		Persist: pm,
	}
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Metrics())
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, HealthResponse{OK: false, Draining: true})
		return
	}
	writeJSON(w, http.StatusOK, HealthResponse{OK: true})
}

// decode parses the JSON body into v, replying 400 (or 413 for an
// oversized body) itself on failure.
func decode(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeStatus(w, StatusTooLarge, err.Error())
			return false
		}
		writeStatus(w, StatusBadRequest, "invalid request body: "+err.Error())
		return false
	}
	if dec.More() {
		writeStatus(w, StatusBadRequest, "trailing data after request body")
		return false
	}
	_, _ = io.Copy(io.Discard, r.Body)
	return true
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}
