package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"spatialtree/internal/rng"
	"spatialtree/internal/tree"
	"spatialtree/internal/treefix"
)

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(hs.Close)
	return s, hs
}

// postJSON posts body and decodes a 200 response into out (which may be
// nil); any other status is returned as an error carrying the code.
func postJSON(base, path string, body, out any) error {
	buf, err := json.Marshal(body)
	if err != nil {
		return err
	}
	resp, err := http.Post(base+path, "application/json", bytes.NewReader(buf))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var e ErrorResponse
		_ = json.NewDecoder(resp.Body).Decode(&e)
		return fmt.Errorf("status %d: %s", resp.StatusCode, e.Error)
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

func getMetrics(t *testing.T, base string) MetricsResponse {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m MetricsResponse
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	return m
}

func testParents(n int, seed uint64) []int {
	return tree.RandomAttachment(n, rng.New(seed)).Parents()
}

// TestDeadlineFlush: a lone request against a huge MaxBatch must be
// served by the MaxDelay trigger, and /metrics must attribute the batch
// to the deadline.
func TestDeadlineFlush(t *testing.T) {
	_, hs := newTestServer(t, Config{Scheduler: Scheduler{MaxBatch: 1 << 20, MaxDelay: 10 * time.Millisecond}})
	parents := testParents(200, 1)
	tr := tree.MustFromParents(parents)
	vals := make([]int64, tr.N())
	for i := range vals {
		vals[i] = int64(i % 17)
	}
	var resp QueryResponse
	if err := postJSON(hs.URL, "/v1/query", QueryRequest{Parents: parents, Kind: "treefix", Vals: vals}, &resp); err != nil {
		t.Fatal(err)
	}
	want := treefix.SequentialBottomUp(tr, vals, treefix.Add)
	for v := range want {
		if resp.Sums[v] != want[v] {
			t.Fatalf("sum[%d] = %d, want %d", v, resp.Sums[v], want[v])
		}
	}
	m := getMetrics(t, hs.URL)
	if m.Scheduler.DeadlineFlushes != 1 || m.Scheduler.SizeFlushes != 0 {
		t.Fatalf("scheduler = %+v, want exactly one deadline flush", m.Scheduler)
	}
}

// TestSizeFlush: MaxBatch concurrent requests against a very long
// deadline must be dispatched by the size trigger (the test would time
// out on its Wait otherwise) into one shared run.
func TestSizeFlush(t *testing.T) {
	const batch = 4
	_, hs := newTestServer(t, Config{Scheduler: Scheduler{MaxBatch: batch, MaxDelay: time.Hour}})
	parents := testParents(150, 2)
	var wg sync.WaitGroup
	errs := make([]error, batch)
	for i := 0; i < batch; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var resp QueryResponse
			errs[i] = postJSON(hs.URL, "/v1/query", QueryRequest{
				Parents: parents,
				Kind:    "lca",
				Queries: []LCAQuery{{U: i, V: 149 - i}},
			}, &resp)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	m := getMetrics(t, hs.URL)
	if m.Scheduler.SizeFlushes != 1 || m.Scheduler.DeadlineFlushes != 0 {
		t.Fatalf("scheduler = %+v, want exactly one size flush", m.Scheduler)
	}
	if m.Scheduler.Batches != 1 || m.Scheduler.Requests != batch {
		t.Fatalf("batches=%d requests=%d, want one batch of %d", m.Scheduler.Batches, m.Scheduler.Requests, batch)
	}
	if m.Engine.LCARuns != 1 || m.Engine.LCAQueries != batch {
		t.Fatalf("lca runs=%d queries=%d, want the batch coalesced into one run", m.Engine.LCARuns, m.Engine.LCAQueries)
	}
}

// TestBackpressure429: with QueueLimit in-flight requests already
// parked on the scheduler's deadline, further traffic must bounce with
// 429 instead of queueing without bound.
func TestBackpressure429(t *testing.T) {
	const limit = 2
	_, hs := newTestServer(t, Config{Scheduler: Scheduler{MaxBatch: 1 << 20, MaxDelay: 300 * time.Millisecond}, Limits: Limits{QueueLimit: limit}})
	parents := testParents(100, 3)

	const clients = 12
	var wg sync.WaitGroup
	errs := make([]error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = postJSON(hs.URL, "/v1/query", QueryRequest{
				Parents: parents,
				Kind:    "lca",
				Queries: []LCAQuery{{U: 0, V: 1}},
			}, nil)
		}(i)
	}
	wg.Wait()
	served, rejected := 0, 0
	for _, err := range errs {
		switch {
		case err == nil:
			served++
		case bytes.Contains([]byte(err.Error()), []byte("429")):
			rejected++
		default:
			t.Fatalf("unexpected failure: %v", err)
		}
	}
	if served == 0 || rejected == 0 {
		t.Fatalf("served=%d rejected=%d, want both admission and backpressure", served, rejected)
	}
	m := getMetrics(t, hs.URL)
	if m.Server.Rejected == 0 {
		t.Fatal("metrics did not count rejected requests")
	}
}

// TestDynMutationThenQuery: on a mutable shard, a mutation must be
// visible to the next query — treefix sums answer for the grown tree,
// and a delete renumbers back.
func TestDynMutationThenQuery(t *testing.T) {
	_, hs := newTestServer(t, Config{Scheduler: Scheduler{MaxBatch: 8, MaxDelay: 5 * time.Millisecond}})
	parents := testParents(80, 4)
	var created DynCreateResponse
	if err := postJSON(hs.URL, "/v1/dyn", DynCreateRequest{Parents: parents}, &created); err != nil {
		t.Fatal(err)
	}
	base := "/v1/dyn/" + created.ID

	var mut MutateResponse
	if err := postJSON(hs.URL, base+"/mutate", MutateRequest{Op: "insert", Parent: 0}, &mut); err != nil {
		t.Fatal(err)
	}
	if mut.N != 81 || mut.Vertex != 80 || mut.Epoch != 1 {
		t.Fatalf("insert response = %+v, want vertex 80 at n=81 epoch=1", mut)
	}

	vals := make([]int64, 81)
	for i := range vals {
		vals[i] = 1
	}
	var resp QueryResponse
	if err := postJSON(hs.URL, base+"/query", QueryRequest{Kind: "treefix", Vals: vals}, &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Sums) != 81 {
		t.Fatalf("sums over %d vertices, want the mutated tree's 81", len(resp.Sums))
	}
	// With unit values, the root's subtree sum is the vertex count —
	// the query definitely ran against the post-mutation tree.
	grown := tree.MustFromParents(append(append([]int(nil), parents...), 0))
	if resp.Sums[grown.Root()] != 81 {
		t.Fatalf("root sum = %d, want 81", resp.Sums[grown.Root()])
	}

	if err := postJSON(hs.URL, base+"/mutate", MutateRequest{Op: "delete", Leaf: 80}, &mut); err != nil {
		t.Fatal(err)
	}
	if mut.N != 80 || mut.Epoch != 2 {
		t.Fatalf("delete response = %+v, want n=80 epoch=2", mut)
	}
	// Stale vals length must now be rejected by validation.
	if err := postJSON(hs.URL, base+"/query", QueryRequest{Kind: "treefix", Vals: vals}, nil); err == nil {
		t.Fatal("81 vals accepted against the shrunk 80-vertex tree")
	}
	// The dyn query surface validates kind exactly like /v1/query.
	err := postJSON(hs.URL, base+"/query", QueryRequest{Kind: "sort"}, nil)
	if err == nil || !bytes.Contains([]byte(err.Error()), []byte("400")) {
		t.Fatalf("unknown kind on dyn query = %v, want 400", err)
	}
}

// TestGracefulDrain: requests in flight when Drain starts must all
// resolve (no dropped futures), and traffic after the drain must be
// refused with 503.
func TestGracefulDrain(t *testing.T) {
	s, hs := newTestServer(t, Config{Scheduler: Scheduler{MaxBatch: 1 << 20, MaxDelay: 150 * time.Millisecond}})
	parents := testParents(120, 5)

	const clients = 6
	var wg sync.WaitGroup
	errs := make([]error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = postJSON(hs.URL, "/v1/query", QueryRequest{
				Parents: parents,
				Kind:    "lca",
				Queries: []LCAQuery{{U: i, V: i + 1}},
			}, nil)
		}(i)
	}
	time.Sleep(20 * time.Millisecond) // let the clients' requests land in the batch
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("in-flight request %d dropped during drain: %v", i, err)
		}
	}
	err := postJSON(hs.URL, "/v1/query", QueryRequest{Parents: parents, Kind: "lca", Queries: []LCAQuery{{U: 0, V: 1}}}, nil)
	if err == nil || !bytes.Contains([]byte(err.Error()), []byte("503")) {
		t.Fatalf("post-drain request = %v, want 503", err)
	}
	resp, err := http.Get(hs.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz while draining = %d, want 503", resp.StatusCode)
	}
}

// TestConcurrentClientsCoalesce is the end-to-end acceptance check: 64+
// concurrent HTTP clients against a seeded forest must be served from
// fewer simulator runs than requests, with both scheduler triggers
// live. (Size flushes fire on the shards that fill MaxBatch; the
// stragglers' partial batches go out on the deadline.)
func TestConcurrentClientsCoalesce(t *testing.T) {
	s, hs := newTestServer(t, Config{Scheduler: Scheduler{MaxBatch: 16, MaxDelay: 50 * time.Millisecond}})

	// The seeded forest: 4 registered trees, one shard each.
	const forest = 4
	ids := make([]string, forest)
	for i := range ids {
		var reg RegisterResponse
		if err := postJSON(hs.URL, "/v1/trees", RegisterRequest{Parents: testParents(300, 10+uint64(i))}, &reg); err != nil {
			t.Fatal(err)
		}
		ids[i] = reg.ID
	}

	const clients = 72
	var wg sync.WaitGroup
	errs := make([]error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			var resp QueryResponse
			errs[c] = postJSON(hs.URL, "/v1/query", QueryRequest{
				TreeID:  ids[c%forest],
				Kind:    "lca",
				Queries: []LCAQuery{{U: c % 300, V: (c * 7) % 300}},
			}, &resp)
			if errs[c] == nil && len(resp.Answers) != 1 {
				errs[c] = fmt.Errorf("client %d: %d answers, want 1", c, len(resp.Answers))
			}
		}(c)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}

	m := getMetrics(t, hs.URL)
	if m.Scheduler.Requests != clients {
		t.Fatalf("requests = %d, want %d", m.Scheduler.Requests, clients)
	}
	if m.Scheduler.Batches >= m.Scheduler.Requests {
		t.Fatalf("batches = %d for %d requests: scheduler did not coalesce", m.Scheduler.Batches, m.Scheduler.Requests)
	}
	if m.Scheduler.SizeFlushes+m.Scheduler.DeadlineFlushes != m.Scheduler.Batches {
		t.Fatalf("scheduler = %+v: every batch must be attributed to a MaxBatch or MaxDelay trigger", m.Scheduler)
	}
	if m.Engine.LCARuns >= m.Engine.LCAQueries {
		t.Fatalf("lca runs=%d queries=%d, want coalesced runs", m.Engine.LCARuns, m.Engine.LCAQueries)
	}
	if m.Server.Trees != forest {
		t.Fatalf("trees = %d, want %d", m.Server.Trees, forest)
	}
	// Same-fingerprint routing: re-registering tree 0 yields the same id.
	var reg RegisterResponse
	if err := postJSON(hs.URL, "/v1/trees", RegisterRequest{Parents: testParents(300, 10)}, &reg); err != nil {
		t.Fatal(err)
	}
	if reg.ID != ids[0] {
		t.Fatalf("re-registered tree id %q != %q: fingerprint routing broken", reg.ID, ids[0])
	}
	if got := s.Pool().Size(); got != forest {
		t.Fatalf("pool size = %d, want %d shards", got, forest)
	}
}

// TestShardBudget: retained per-tree state is bounded by MaxShards —
// registration and dyn creation beyond it bounce with 429, already
// registered trees stay servable, and ad-hoc query trees fall back to
// ephemeral engines (served fine, nothing retained, still metered).
func TestShardBudget(t *testing.T) {
	s, hs := newTestServer(t, Config{Scheduler: Scheduler{MaxDelay: 5 * time.Millisecond}, Limits: Limits{MaxShards: 2}})
	var reg RegisterResponse
	if err := postJSON(hs.URL, "/v1/trees", RegisterRequest{Parents: testParents(60, 20)}, &reg); err != nil {
		t.Fatal(err)
	}
	if err := postJSON(hs.URL, "/v1/trees", RegisterRequest{Parents: testParents(60, 21)}, nil); err != nil {
		t.Fatal(err)
	}
	err := postJSON(hs.URL, "/v1/trees", RegisterRequest{Parents: testParents(60, 22)}, nil)
	if err == nil || !bytes.Contains([]byte(err.Error()), []byte("429")) {
		t.Fatalf("third registration = %v, want 429", err)
	}
	err = postJSON(hs.URL, "/v1/dyn", DynCreateRequest{Parents: testParents(60, 23)}, nil)
	if err == nil || !bytes.Contains([]byte(err.Error()), []byte("429")) {
		t.Fatalf("dyn create over budget = %v, want 429", err)
	}
	// Re-registering a known tree retains nothing new: still 200.
	if err := postJSON(hs.URL, "/v1/trees", RegisterRequest{Parents: testParents(60, 20)}, nil); err != nil {
		t.Fatal(err)
	}
	// Ad-hoc query trees beyond the budget are served ephemerally.
	before := s.Metrics().Scheduler.Requests
	var resp QueryResponse
	if err := postJSON(hs.URL, "/v1/query", QueryRequest{
		Parents: testParents(60, 24), Kind: "lca", Queries: []LCAQuery{{U: 1, V: 2}},
	}, &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Answers) != 1 {
		t.Fatalf("ephemeral answers = %v", resp.Answers)
	}
	if s.Pool().Size() != 2 {
		t.Fatalf("pool size = %d after over-budget traffic, want 2", s.Pool().Size())
	}
	if got := s.Metrics().Scheduler.Requests; got != before+1 {
		t.Fatalf("ephemeral request not metered: %d -> %d", before, got)
	}
}

// TestAdHocBudgetSplit: ad-hoc query trees may auto-occupy at most
// half of MaxShards, so junk one-off traffic can never lock explicit
// registration out of the shard budget.
func TestAdHocBudgetSplit(t *testing.T) {
	s, hs := newTestServer(t, Config{Scheduler: Scheduler{MaxDelay: 5 * time.Millisecond}, Limits: Limits{MaxShards: 4}})
	for seed := uint64(30); seed < 33; seed++ { // 3 distinct ad-hoc structures
		if err := postJSON(hs.URL, "/v1/query", QueryRequest{
			Parents: testParents(60, seed), Kind: "lca", Queries: []LCAQuery{{U: 0, V: 1}},
		}, nil); err != nil {
			t.Fatal(err)
		}
	}
	if got := s.Pool().Size(); got != 2 {
		t.Fatalf("pool size = %d after 3 ad-hoc structures, want the ad-hoc half (2)", got)
	}
	// Registration headroom survived the ad-hoc flood.
	if err := postJSON(hs.URL, "/v1/trees", RegisterRequest{Parents: testParents(60, 40)}, nil); err != nil {
		t.Fatalf("registration after ad-hoc traffic: %v", err)
	}
	// Registering a structure that already has an ad-hoc shard retains
	// only the id mapping — allowed even at the budget edge.
	if err := postJSON(hs.URL, "/v1/trees", RegisterRequest{Parents: testParents(60, 30)}, nil); err != nil {
		t.Fatalf("promoting an ad-hoc shard to registered: %v", err)
	}
	if got := s.Pool().Size(); got != 3 {
		t.Fatalf("pool size = %d, want 3 (2 ad-hoc + 1 registered, promotion reused)", got)
	}
	// Promotion freed its ad-hoc slot, so a new ad-hoc structure gets a
	// pooled shard again.
	if err := postJSON(hs.URL, "/v1/query", QueryRequest{
		Parents: testParents(60, 33), Kind: "lca", Queries: []LCAQuery{{U: 0, V: 1}},
	}, nil); err != nil {
		t.Fatal(err)
	}
	if got := s.Pool().Size(); got != 4 {
		t.Fatalf("pool size = %d after promotion freed a slot, want 4", got)
	}
	// Garbage kind consumes no budget: rejected before any shard exists.
	err := postJSON(hs.URL, "/v1/query", QueryRequest{Parents: testParents(60, 50), Kind: "bogus"}, nil)
	if err == nil || !bytes.Contains([]byte(err.Error()), []byte("400")) {
		t.Fatalf("bogus kind = %v, want 400", err)
	}
	if got := s.Pool().Size(); got != 4 {
		t.Fatalf("pool size = %d after rejected kind, want still 4", got)
	}
}

// TestValidationErrors pins the HTTP error mapping.
func TestValidationErrors(t *testing.T) {
	_, hs := newTestServer(t, Config{Scheduler: Scheduler{MaxDelay: 5 * time.Millisecond}})
	parents := testParents(50, 6)
	cases := []struct {
		name string
		path string
		body any
		code string
	}{
		{"unknown kind", "/v1/query", QueryRequest{Parents: parents, Kind: "sort"}, "400"},
		{"no tree", "/v1/query", QueryRequest{Kind: "lca"}, "400"},
		{"unknown tree id", "/v1/query", QueryRequest{TreeID: "tdeadbeef", Kind: "lca"}, "404"},
		{"bad parents", "/v1/query", QueryRequest{Parents: []int{5, 5, 5}, Kind: "lca"}, "400"},
		{"out-of-range lca", "/v1/query", QueryRequest{Parents: parents, Kind: "lca", Queries: []LCAQuery{{U: -1, V: 2}}}, "400"},
		{"short treefix vals", "/v1/query", QueryRequest{Parents: parents, Kind: "treefix", Vals: []int64{1, 2}}, "400"},
		{"bad op", "/v1/query", QueryRequest{Parents: parents, Kind: "treefix", Op: "mul"}, "400"},
		{"unknown dyn shard", "/v1/dyn/d99/mutate", MutateRequest{Op: "insert"}, "404"},
		// Request faults report before shard routing: a cluster edge
		// must reject an op it cannot route without knowing the shard.
		{"bad mutate op", "/v1/dyn/d99/mutate", MutateRequest{Op: "swap"}, "400"},
		{"bad register", "/v1/trees", RegisterRequest{Parents: []int{0, 0}}, "400"},
	}
	for _, tc := range cases {
		err := postJSON(hs.URL, tc.path, tc.body, nil)
		if err == nil || !bytes.Contains([]byte(err.Error()), []byte(tc.code)) {
			t.Errorf("%s: err = %v, want status %s", tc.name, err, tc.code)
		}
	}
	// Malformed JSON body.
	resp, err := http.Post(hs.URL+"/v1/query", "application/json", bytes.NewReader([]byte("{not json")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed body status = %d, want 400", resp.StatusCode)
	}
}

// TestMinCutAndTopDown covers the remaining kinds end to end. The
// server runs on the sim backend: the closing assertion pins the model
// cost attribution only the simulator produces.
func TestMinCutAndTopDown(t *testing.T) {
	_, hs := newTestServer(t, Config{Scheduler: Scheduler{MaxDelay: 5 * time.Millisecond}, Backend: "sim"})
	// Path 0-1-2 with a heavy shortcut: the 1-respecting min cut is 6
	// on either tree edge (see internal/mincut's known-graph test).
	parents := []int{-1, 0, 1}
	var resp QueryResponse
	err := postJSON(hs.URL, "/v1/query", QueryRequest{
		Parents: parents,
		Kind:    "mincut",
		Edges:   []GraphEdge{{U: 0, V: 1, W: 1}, {U: 1, V: 2, W: 1}, {U: 0, V: 2, W: 5}},
	}, &resp)
	if err != nil {
		t.Fatal(err)
	}
	if resp.MinCut == nil || resp.MinCut.MinWeight != 6 {
		t.Fatalf("min cut = %+v, want weight 6", resp.MinCut)
	}

	// Top-down max along root paths of a path graph is the prefix max.
	err = postJSON(hs.URL, "/v1/query", QueryRequest{
		Parents: parents,
		Kind:    "topdown",
		Op:      "max",
		Vals:    []int64{3, 1, 2},
	}, &resp)
	if err != nil {
		t.Fatal(err)
	}
	want := []int64{3, 3, 3}
	for i := range want {
		if resp.Sums[i] != want[i] {
			t.Fatalf("topdown sums = %v, want %v", resp.Sums, want)
		}
	}
	if resp.Cost.Messages == 0 {
		t.Fatal("cost attribution missing: zero messages reported")
	}
}
