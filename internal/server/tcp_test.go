package server

// Tests of the binary-protocol listener: the differential check that
// binary and HTTP/JSON are the same serving surface (identical results
// for every kind and op against the same shard), shared backpressure
// and drain semantics, per-connection deadlines, and the wire error
// classification.

import (
	"bytes"
	"context"
	"errors"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"spatialtree/internal/exprtree"
	"spatialtree/internal/rng"
	"spatialtree/internal/wire"
)

// newWireServer starts a binary-protocol listener for s and returns a
// connected client.
func newWireServer(t *testing.T, s *Server) *wire.Client {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = s.ServeBinary(ln) }()
	t.Cleanup(s.CloseBinary)
	cl, err := wire.Dial(ln.Addr().String(), wire.DialOptions{DialTimeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })
	return cl
}

// TestWireDifferential is the protocol-equivalence acceptance check:
// every query kind (treefix and topdown across all ops, lca, mincut,
// expr), routed both by registered tree id and by ad-hoc parents, must
// return identical results over the binary protocol and over HTTP/JSON
// against the same shard.
func TestWireDifferential(t *testing.T) {
	s, hs := newTestServer(t, Config{Scheduler: Scheduler{MaxBatch: 8, MaxDelay: 2 * time.Millisecond}})
	cl := newWireServer(t, s)

	// The shard under test is a full binary tree so kind "expr" works on
	// it too; treefix/topdown/lca/mincut accept any tree shape.
	ex := exprtree.Random(64, rng.New(7))
	parents := append([]int(nil), ex.Tree.Parents()...)
	n := ex.Tree.N()
	var reg RegisterResponse
	if err := postJSON(hs.URL, "/v1/trees", RegisterRequest{Parents: parents}, &reg); err != nil {
		t.Fatal(err)
	}

	r := rng.New(99)
	vals := make([]int64, n)
	for i := range vals {
		vals[i] = int64(r.Intn(2000) - 1000)
	}
	lcaJSON := make([]LCAQuery, 32)
	lcaWire := make([]wire.LCAQuery, 32)
	for i := range lcaJSON {
		u, v := r.Intn(n), r.Intn(n)
		lcaJSON[i], lcaWire[i] = LCAQuery{U: u, V: v}, wire.LCAQuery{U: u, V: v}
	}
	var edgesJSON []GraphEdge
	var edgesWire []wire.Edge
	for i := 0; i < 24; i++ {
		u, v, w := r.Intn(n), r.Intn(n), int64(r.Intn(50)+1)
		if u == v {
			continue
		}
		edgesJSON = append(edgesJSON, GraphEdge{U: u, V: v, W: w})
		edgesWire = append(edgesWire, wire.Edge{U: u, V: v, W: w})
	}
	exprKindsJSON := make([]int, n)
	exprKindsWire := make([]uint8, n)
	for i, k := range ex.Kind {
		exprKindsJSON[i], exprKindsWire[i] = int(k), uint8(k)
	}

	type tc struct {
		name string
		json QueryRequest
		wire wire.Query
	}
	var cases []tc
	for _, op := range []string{"add", "max", "min", "xor"} {
		cases = append(cases,
			tc{"treefix-" + op,
				QueryRequest{Kind: "treefix", Op: op, Vals: vals},
				wire.Query{Kind: wire.KindTreefix, Op: op, Vals: vals}},
			tc{"topdown-" + op,
				QueryRequest{Kind: "topdown", Op: op, Vals: vals},
				wire.Query{Kind: wire.KindTopDown, Op: op, Vals: vals}},
		)
	}
	cases = append(cases,
		tc{"lca",
			QueryRequest{Kind: "lca", Queries: lcaJSON},
			wire.Query{Kind: wire.KindLCA, Queries: lcaWire}},
		tc{"mincut",
			QueryRequest{Kind: "mincut", Edges: edgesJSON},
			wire.Query{Kind: wire.KindMinCut, Edges: edgesWire}},
		tc{"expr",
			QueryRequest{Kind: "expr", ExprKinds: exprKindsJSON, Vals: ex.Val},
			wire.Query{Kind: wire.KindExpr, ExprKinds: exprKindsWire, Vals: ex.Val}},
	)

	for _, route := range []string{"tree_id", "parents"} {
		for _, c := range cases {
			jq, wq := c.json, c.wire
			if route == "tree_id" {
				jq.TreeID, wq.TreeID = reg.ID, reg.ID
			} else {
				jq.Parents, wq.Parents = parents, parents
			}
			var jr QueryResponse
			if err := postJSON(hs.URL, "/v1/query", jq, &jr); err != nil {
				t.Fatalf("%s via %s over HTTP: %v", c.name, route, err)
			}
			wr, err := cl.Do(&wq)
			if err != nil {
				t.Fatalf("%s via %s over wire: %v", c.name, route, err)
			}
			switch {
			case jr.Sums != nil:
				if len(wr.Sums) != len(jr.Sums) {
					t.Fatalf("%s via %s: wire %d sums, http %d", c.name, route, len(wr.Sums), len(jr.Sums))
				}
				for i := range jr.Sums {
					if wr.Sums[i] != jr.Sums[i] {
						t.Fatalf("%s via %s: sums[%d] wire=%d http=%d", c.name, route, i, wr.Sums[i], jr.Sums[i])
					}
				}
			case jr.Answers != nil:
				for i := range jr.Answers {
					if wr.Answers[i] != jr.Answers[i] {
						t.Fatalf("%s via %s: answers[%d] wire=%d http=%d", c.name, route, i, wr.Answers[i], jr.Answers[i])
					}
				}
			case jr.MinCut != nil:
				if wr.MinWeight != jr.MinCut.MinWeight || wr.ArgVertex != jr.MinCut.ArgVertex {
					t.Fatalf("%s via %s: wire (%d,%d) http %+v", c.name, route, wr.MinWeight, wr.ArgVertex, jr.MinCut)
				}
			case jr.Value != nil:
				if wr.Value != *jr.Value {
					t.Fatalf("%s via %s: wire value %d http %d", c.name, route, wr.Value, *jr.Value)
				}
				// And both must agree with the sequential evaluator.
				if want := ex.EvalSequential()[ex.Tree.Root()]; wr.Value != want {
					t.Fatalf("expr value %d, want %d", wr.Value, want)
				}
			default:
				t.Fatalf("%s via %s: HTTP response carried no payload", c.name, route)
			}
		}
	}
}

// TestWireErrorClassification pins the binary status codes to the
// HTTP classification: validation errors answer StatusBadRequest,
// unknown trees StatusNotFound, and the connection survives all of
// them (application errors are answers, not protocol failures).
func TestWireErrorClassification(t *testing.T) {
	s, _ := newTestServer(t, Config{Scheduler: Scheduler{MaxDelay: 2 * time.Millisecond}})
	cl := newWireServer(t, s)
	parents := testParents(50, 6)

	cases := []struct {
		name   string
		q      wire.Query
		status wire.Status
	}{
		{"no route", wire.Query{Kind: wire.KindLCA}, wire.StatusBadRequest},
		{"unknown tree id", wire.Query{TreeID: "tdeadbeef", Kind: wire.KindLCA}, wire.StatusNotFound},
		{"bad parents", wire.Query{Parents: []int{5, 5, 5}, Kind: wire.KindLCA}, wire.StatusBadRequest},
		{"out-of-range lca", wire.Query{Parents: parents, Kind: wire.KindLCA,
			Queries: []wire.LCAQuery{{U: -1, V: 2}}}, wire.StatusBadRequest},
		{"short treefix vals", wire.Query{Parents: parents, Kind: wire.KindTreefix,
			Vals: []int64{1, 2}}, wire.StatusBadRequest},
		{"bad op", wire.Query{Parents: parents, Kind: wire.KindTreefix, Op: "mul"}, wire.StatusBadRequest},
		{"expr on non-binary tree", wire.Query{Parents: parents, Kind: wire.KindExpr,
			ExprKinds: make([]uint8, 50), Vals: make([]int64, 50)}, wire.StatusBadRequest},
		{"negative mincut weight", wire.Query{Parents: parents, Kind: wire.KindMinCut,
			Edges: []wire.Edge{{U: 0, V: 1, W: -3}}}, wire.StatusBadRequest},
	}
	for _, c := range cases {
		q := c.q
		_, err := cl.Do(&q)
		var we *wire.Error
		if !errors.As(err, &we) || we.Status != c.status {
			t.Errorf("%s: err = %v, want status %v", c.name, err, c.status)
		}
	}
	// The connection is still healthy after every rejected query.
	if err := cl.Ping(); err != nil {
		t.Fatalf("connection dead after application errors: %v", err)
	}
}

// TestWireBackpressure floods the binary listener past QueueLimit and
// requires both outcomes: some queries served, some answered with
// StatusTooMany — the binary counterpart of HTTP 429 — with the shared
// rejection counter advancing.
func TestWireBackpressure(t *testing.T) {
	s, _ := newTestServer(t, Config{Scheduler: Scheduler{MaxBatch: 1 << 20, MaxDelay: 300 * time.Millisecond}, Limits: Limits{QueueLimit: 2}})
	parents := testParents(100, 3)

	const clients = 12
	var wg sync.WaitGroup
	errs := make([]error, clients)
	for i := 0; i < clients; i++ {
		cl := newWireServer(t, s)
		wg.Add(1)
		go func(i int, cl *wire.Client) {
			defer wg.Done()
			_, errs[i] = cl.Do(&wire.Query{Kind: wire.KindLCA, Parents: parents,
				Queries: []wire.LCAQuery{{U: 0, V: 1}}})
		}(i, cl)
	}
	wg.Wait()
	served, rejected := 0, 0
	for _, err := range errs {
		var we *wire.Error
		switch {
		case err == nil:
			served++
		case errors.As(err, &we) && we.Status == wire.StatusTooMany:
			rejected++
		default:
			t.Fatalf("unexpected failure: %v", err)
		}
	}
	if served == 0 || rejected == 0 {
		t.Fatalf("served=%d rejected=%d, want both admission and backpressure", served, rejected)
	}
	if s.Metrics().Server.Rejected == 0 {
		t.Fatal("binary rejections did not advance the shared counter")
	}
}

// TestWireDrain: a drained server answers binary queries with
// StatusUnavailable — the 503 counterpart — and in-flight binary
// requests resolve rather than drop.
func TestWireDrain(t *testing.T) {
	s, _ := newTestServer(t, Config{Scheduler: Scheduler{MaxBatch: 1 << 20, MaxDelay: 150 * time.Millisecond}})
	parents := testParents(120, 5)

	const clients = 4
	var wg sync.WaitGroup
	errs := make([]error, clients)
	for i := 0; i < clients; i++ {
		cl := newWireServer(t, s)
		wg.Add(1)
		go func(i int, cl *wire.Client) {
			defer wg.Done()
			_, errs[i] = cl.Do(&wire.Query{Kind: wire.KindLCA, Parents: parents,
				Queries: []wire.LCAQuery{{U: i, V: i + 1}}})
		}(i, cl)
	}
	time.Sleep(20 * time.Millisecond) // let the queries land in the batch
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("in-flight binary request %d dropped during drain: %v", i, err)
		}
	}
	cl := newWireServer(t, s)
	_, err := cl.Do(&wire.Query{Kind: wire.KindLCA, Parents: parents,
		Queries: []wire.LCAQuery{{U: 0, V: 1}}})
	var we *wire.Error
	if !errors.As(err, &we) || we.Status != wire.StatusUnavailable {
		t.Fatalf("post-drain binary query = %v, want StatusUnavailable", err)
	}
}

// TestWireIdleTimeout: a connection that goes quiet past TCPIdleTimeout
// is closed by the server — the binary counterpart of the HTTP
// listener's slow-loris guards.
func TestWireIdleTimeout(t *testing.T) {
	s, _ := newTestServer(t, Config{Scheduler: Scheduler{MaxDelay: 2 * time.Millisecond}, Timeouts: Timeouts{TCPIdle: 50 * time.Millisecond}})
	cl := newWireServer(t, s)
	if err := cl.Ping(); err != nil {
		t.Fatal(err)
	}
	// Go quiet for several idle budgets, then the next ping must find
	// the connection closed. (Each served frame rearms the deadline, so
	// the silence has to be contiguous.)
	deadline := time.Now().Add(5 * time.Second)
	for cl.Ping() == nil {
		if time.Now().After(deadline) {
			t.Fatal("idle connection still alive well past TCPIdleTimeout")
		}
		time.Sleep(200 * time.Millisecond)
	}
}

// TestWireMetrics: the /metrics wire section appears once the binary
// listener serves and counts connections and queries.
func TestWireMetrics(t *testing.T) {
	s, hs := newTestServer(t, Config{Scheduler: Scheduler{MaxDelay: 2 * time.Millisecond}})
	if got := getMetrics(t, hs.URL).Wire; got != nil {
		t.Fatalf("wire metrics = %+v before any binary listener, want absent", got)
	}
	cl := newWireServer(t, s)
	parents := testParents(40, 8)
	if _, err := cl.Do(&wire.Query{Kind: wire.KindLCA, Parents: parents,
		Queries: []wire.LCAQuery{{U: 0, V: 1}}}); err != nil {
		t.Fatal(err)
	}
	m := getMetrics(t, hs.URL).Wire
	if m == nil || m.Conns != 1 || m.Queries != 1 {
		t.Fatalf("wire metrics = %+v, want 1 conn and 1 query", m)
	}
}

// TestWireCorruptFrame: garbage on the wire answers a connection-level
// StatusBadRequest error and hangs up, and the protocol error counter
// advances.
func TestWireCorruptFrame(t *testing.T) {
	s, hs := newTestServer(t, Config{Scheduler: Scheduler{MaxDelay: 2 * time.Millisecond}})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = s.ServeBinary(ln) }()
	t.Cleanup(s.CloseBinary)

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte("GET / HTTP/1.1\r\n\r\n")); err != nil {
		t.Fatal(err)
	}
	rd := wire.NewReader(conn, 1<<20)
	kind, payload, err := rd.Next()
	if err != nil {
		t.Fatalf("expected an error frame before hangup, got %v", err)
	}
	if kind != wire.FrameError {
		t.Fatalf("frame kind = %d, want FrameError", kind)
	}
	var we wire.Error
	if err := we.Decode(payload); err != nil {
		t.Fatal(err)
	}
	if we.ID != 0 || we.Status != wire.StatusBadRequest {
		t.Fatalf("error frame = %+v, want connection-level StatusBadRequest", we)
	}
	buf := make([]byte, 1)
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := conn.Read(buf); err == nil {
		t.Fatal("server kept the connection open after a corrupt frame")
	}
	if getMetrics(t, hs.URL).Wire.Errors == 0 {
		t.Fatal("protocol error did not advance the wire error counter")
	}
}

// TestHTTPBothRoutesRejected is the regression test for the tree_id +
// parents contract: POST /v1/query with both fields populated must be
// a 400, not silently route by one of them.
func TestHTTPBothRoutesRejected(t *testing.T) {
	_, hs := newTestServer(t, Config{Scheduler: Scheduler{MaxDelay: 2 * time.Millisecond}})
	parents := testParents(30, 9)
	var reg RegisterResponse
	if err := postJSON(hs.URL, "/v1/trees", RegisterRequest{Parents: parents}, &reg); err != nil {
		t.Fatal(err)
	}
	err := postJSON(hs.URL, "/v1/query", QueryRequest{
		TreeID:  reg.ID,
		Parents: parents,
		Kind:    "lca",
		Queries: []LCAQuery{{U: 0, V: 1}},
	}, nil)
	if err == nil || !bytes.Contains([]byte(err.Error()), []byte("400")) {
		t.Fatalf("both tree_id and parents = %v, want 400", err)
	}
	if !strings.Contains(err.Error(), "exactly one") {
		t.Fatalf("error %q should explain the exactly-one contract", err)
	}
}

// TestHTTPExpr: kind "expr" over HTTP evaluates the expression tree and
// validates its inputs (bad node kinds and non-binary shapes are 400s).
func TestHTTPExpr(t *testing.T) {
	_, hs := newTestServer(t, Config{Scheduler: Scheduler{MaxDelay: 2 * time.Millisecond}})
	ex := exprtree.Random(32, rng.New(11))
	parents := ex.Tree.Parents()
	kinds := make([]int, len(ex.Kind))
	for i, k := range ex.Kind {
		kinds[i] = int(k)
	}
	var resp QueryResponse
	if err := postJSON(hs.URL, "/v1/query", QueryRequest{
		Parents: parents, Kind: "expr", ExprKinds: kinds, Vals: ex.Val,
	}, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Value == nil {
		t.Fatal("expr response carried no value")
	}
	if want := ex.EvalSequential()[ex.Tree.Root()]; *resp.Value != want {
		t.Fatalf("expr value = %d, want %d", *resp.Value, want)
	}

	// Invalid node kind.
	bad := append([]int(nil), kinds...)
	bad[0] = 7
	err := postJSON(hs.URL, "/v1/query", QueryRequest{
		Parents: parents, Kind: "expr", ExprKinds: bad, Vals: ex.Val,
	}, nil)
	if err == nil || !bytes.Contains([]byte(err.Error()), []byte("400")) {
		t.Fatalf("expr kind 7 = %v, want 400", err)
	}
	// Non-full-binary tree.
	err = postJSON(hs.URL, "/v1/query", QueryRequest{
		Parents: testParents(30, 12), Kind: "expr", ExprKinds: make([]int, 30), Vals: make([]int64, 30),
	}, nil)
	if err == nil || !bytes.Contains([]byte(err.Error()), []byte("400")) {
		t.Fatalf("expr on a random tree = %v, want 400", err)
	}
	// Expr on a dyn shard.
	var created DynCreateResponse
	if err := postJSON(hs.URL, "/v1/dyn", DynCreateRequest{Parents: parents}, &created); err != nil {
		t.Fatal(err)
	}
	if err := postJSON(hs.URL, "/v1/dyn/"+created.ID+"/query", QueryRequest{
		Kind: "expr", ExprKinds: kinds, Vals: ex.Val,
	}, &resp); err != nil {
		t.Fatal(err)
	}
	if want := ex.EvalSequential()[ex.Tree.Root()]; resp.Value == nil || *resp.Value != want {
		t.Fatalf("dyn expr value = %v, want %d", resp.Value, want)
	}
}
