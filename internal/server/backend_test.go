package server

import (
	"testing"
	"time"

	"spatialtree/internal/rng"
	"spatialtree/internal/tree"
)

// TestBackendPerTree pins the per-shard backend surface: registration
// picks a backend, queries route to it (observable through the cost
// metering only the sim backend produces), and /metrics reports the
// shard split.
func TestBackendPerTree(t *testing.T) {
	_, hs := newTestServer(t, Config{Scheduler: Scheduler{MaxDelay: time.Millisecond}})
	simParents := testParents(60, 1)
	natParents := testParents(61, 2)

	var reg RegisterResponse
	if err := postJSON(hs.URL, "/v1/trees", RegisterRequest{Parents: simParents, Backend: "sim"}, &reg); err != nil {
		t.Fatal(err)
	}
	if reg.Backend != "sim" {
		t.Fatalf("registered backend = %q, want sim", reg.Backend)
	}
	var natReg RegisterResponse
	if err := postJSON(hs.URL, "/v1/trees", RegisterRequest{Parents: natParents}, &natReg); err != nil {
		t.Fatal(err)
	}
	if natReg.Backend != "native" {
		t.Fatalf("default backend = %q, want native", natReg.Backend)
	}

	vals := make([]int64, 60)
	for i := range vals {
		vals[i] = int64(i)
	}
	var simResp QueryResponse
	if err := postJSON(hs.URL, "/v1/query", QueryRequest{TreeID: reg.ID, Kind: "treefix", Vals: vals}, &simResp); err != nil {
		t.Fatal(err)
	}
	if simResp.Cost.Messages == 0 {
		t.Fatal("sim-backend shard served without model cost")
	}
	natVals := make([]int64, 61)
	var natResp QueryResponse
	if err := postJSON(hs.URL, "/v1/query", QueryRequest{TreeID: natReg.ID, Kind: "treefix", Vals: natVals}, &natResp); err != nil {
		t.Fatal(err)
	}
	if natResp.Cost.Messages != 0 {
		t.Fatal("native shard reported model cost without shadow metering")
	}

	m := getMetrics(t, hs.URL)
	if m.Backends.Default != "native" {
		t.Fatalf("metrics default backend = %q", m.Backends.Default)
	}
	if m.Backends.Shards["sim"] != 1 || m.Backends.Shards["native"] != 1 {
		t.Fatalf("metrics shard split = %v", m.Backends.Shards)
	}

	// Unknown backends are rejected before any shard state is created.
	if err := postJSON(hs.URL, "/v1/trees", RegisterRequest{Parents: simParents, Backend: "warp"}, nil); err == nil {
		t.Fatal("unknown register backend accepted")
	}
	if err := postJSON(hs.URL, "/v1/dyn", DynCreateRequest{Parents: simParents, Backend: "warp"}, nil); err == nil {
		t.Fatal("unknown dyn backend accepted")
	}
}

// TestBackendSwitchBudget pins the admission fix: re-registering a
// known tree on a different backend creates a new pool shard, so it
// must respect MaxShards instead of riding the "already known" bypass;
// re-registering on the same backend stays free.
func TestBackendSwitchBudget(t *testing.T) {
	s, _ := newTestServer(t, Config{Scheduler: Scheduler{MaxDelay: time.Millisecond}, Limits: Limits{MaxShards: 2}})
	t1 := tree.RandomAttachment(30, rng.New(1))
	t2 := tree.RandomAttachment(31, rng.New(2))
	if _, err := s.RegisterTree(t1); err != nil {
		t.Fatal(err)
	}
	if _, err := s.RegisterTree(t2); err != nil {
		t.Fatal(err)
	}
	// Budget full: switching t1 to sim would retain a third shard.
	if _, err := s.RegisterTreeBackend(t1, "sim"); err == nil {
		t.Fatal("backend switch bypassed the MaxShards budget")
	}
	// Same-backend re-registration retains nothing and stays admitted.
	if _, err := s.RegisterTree(t1); err != nil {
		t.Fatalf("same-backend re-registration refused: %v", err)
	}
	if got := s.Pool().Size(); got != 2 {
		t.Fatalf("pool size = %d, want 2", got)
	}
}

// TestBackendDynShard pins dyn shard backend selection end to end:
// create on sim, mutate, query — model cost flows; a default (native)
// shard stays unmetered.
func TestBackendDynShard(t *testing.T) {
	_, hs := newTestServer(t, Config{Scheduler: Scheduler{MaxDelay: time.Millisecond}})
	parents := testParents(40, 3)

	var sim DynCreateResponse
	if err := postJSON(hs.URL, "/v1/dyn", DynCreateRequest{Parents: parents, Backend: "sim"}, &sim); err != nil {
		t.Fatal(err)
	}
	if sim.Backend != "sim" {
		t.Fatalf("dyn backend = %q, want sim", sim.Backend)
	}
	var mut MutateResponse
	if err := postJSON(hs.URL, "/v1/dyn/"+sim.ID+"/mutate", MutateRequest{Op: "insert", Parent: 0}, &mut); err != nil {
		t.Fatal(err)
	}
	vals := make([]int64, mut.N)
	var resp QueryResponse
	if err := postJSON(hs.URL, "/v1/dyn/"+sim.ID+"/query", QueryRequest{Kind: "treefix", Vals: vals}, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Cost.Messages == 0 {
		t.Fatal("sim dyn shard served without model cost")
	}

	var nat DynCreateResponse
	if err := postJSON(hs.URL, "/v1/dyn", DynCreateRequest{Parents: parents}, &nat); err != nil {
		t.Fatal(err)
	}
	if nat.Backend != "native" {
		t.Fatalf("default dyn backend = %q", nat.Backend)
	}
	if err := postJSON(hs.URL, "/v1/dyn/"+nat.ID+"/query", QueryRequest{Kind: "treefix", Vals: make([]int64, 40)}, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Cost.Messages != 0 {
		t.Fatal("native dyn shard reported model cost")
	}
	m := getMetrics(t, hs.URL)
	if m.Backends.Shards["sim"] != 1 || m.Backends.Shards["native"] != 1 {
		t.Fatalf("metrics shard split = %v", m.Backends.Shards)
	}
}

// TestShadowMeterMetrics arms shadow metering on a native server and
// checks /metrics regains sampled model cost with zero mismatches.
func TestShadowMeterMetrics(t *testing.T) {
	_, hs := newTestServer(t, Config{Scheduler: Scheduler{MaxDelay: time.Millisecond}, ShadowMeter: 1})
	parents := testParents(80, 4)
	vals := make([]int64, 80)
	for i := 0; i < 3; i++ {
		var resp QueryResponse
		if err := postJSON(hs.URL, "/v1/query", QueryRequest{Parents: parents, Kind: "treefix", Vals: vals}, &resp); err != nil {
			t.Fatal(err)
		}
		// The served result itself stays unmetered — the shadow cost is
		// an engine-level sample, not a per-request attribution.
		if resp.Cost.Messages != 0 {
			t.Fatal("shadow metering leaked cost into a native response")
		}
	}
	m := getMetrics(t, hs.URL)
	if m.Backends.ShadowBatches == 0 {
		t.Fatal("no batches shadow-sampled at shadow-meter 1")
	}
	if m.Backends.ShadowMismatches != 0 {
		t.Fatalf("shadow mismatches = %d: backends disagree", m.Backends.ShadowMismatches)
	}
	if m.Engine.Cost.Energy == 0 {
		t.Fatal("shadow sampling left /metrics energy at zero")
	}
}
