package server

import (
	"context"
	"reflect"
	"testing"
	"time"

	"spatialtree/internal/persist"
	"spatialtree/internal/tree"
)

func openTestStore(t *testing.T, dir string, opts persist.Options) *persist.Store {
	t.Helper()
	opts.Dir = dir
	st, err := persist.Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	return st
}

// TestRestartDurability is the end-to-end warm-start test: a server
// with registered trees and mutated dyn shards is drained and replaced
// by a fresh server on the same data dir, which must recover the full
// shard table — same ids, same /metrics shard counts, same query
// answers — with the registered trees' placements served from the
// seeded layout cache (zero rebuilt layouts) and the dyn WAL replayed.
func TestRestartDurability(t *testing.T) {
	dir := t.TempDir()
	store := openTestStore(t, dir, persist.Options{})
	s1, hs1 := newTestServer(t, Config{Durability: Durability{Store: store}, Scheduler: Scheduler{MaxDelay: time.Millisecond}})

	// Two registered trees.
	parentsA := testParents(300, 1)
	parentsB := testParents(150, 2)
	var regA, regB RegisterResponse
	if err := postJSON(hs1.URL, "/v1/trees", RegisterRequest{Parents: parentsA}, &regA); err != nil {
		t.Fatal(err)
	}
	if err := postJSON(hs1.URL, "/v1/trees", RegisterRequest{Parents: parentsB}, &regB); err != nil {
		t.Fatal(err)
	}

	// Two dyn shards; mutate both, enough to cross a dynlayout rebuild.
	var dynA, dynB DynCreateResponse
	if err := postJSON(hs1.URL, "/v1/dyn", DynCreateRequest{Parents: testParents(80, 3)}, &dynA); err != nil {
		t.Fatal(err)
	}
	if err := postJSON(hs1.URL, "/v1/dyn", DynCreateRequest{Parents: testParents(60, 4), Epsilon: 0.1}, &dynB); err != nil {
		t.Fatal(err)
	}
	var lastInserted int
	for i := 0; i < 30; i++ {
		var mr MutateResponse
		if err := postJSON(hs1.URL, "/v1/dyn/"+dynA.ID+"/mutate", MutateRequest{Op: "insert", Parent: i % 80}, &mr); err != nil {
			t.Fatal(err)
		}
		lastInserted = mr.Vertex
		if i%3 == 2 {
			if err := postJSON(hs1.URL, "/v1/dyn/"+dynA.ID+"/mutate", MutateRequest{Op: "delete", Leaf: lastInserted}, &mr); err != nil {
				t.Fatal(err)
			}
		}
		if err := postJSON(hs1.URL, "/v1/dyn/"+dynB.ID+"/mutate", MutateRequest{Op: "insert", Parent: i % 60}, nil); err != nil {
			t.Fatal(err)
		}
	}

	// Record pre-restart answers.
	lcaReq := QueryRequest{Kind: "lca", Queries: []LCAQuery{{U: 3, V: 141}, {U: 17, V: 89}, {U: 0, V: 55}}}
	lcaReq.TreeID = regA.ID
	var lcaBefore QueryResponse
	if err := postJSON(hs1.URL, "/v1/query", lcaReq, &lcaBefore); err != nil {
		t.Fatal(err)
	}
	dynQ := QueryRequest{Kind: "lca", Queries: []LCAQuery{{U: 1, V: 42}, {U: 7, V: 33}}}
	var dynBefore QueryResponse
	if err := postJSON(hs1.URL, "/v1/dyn/"+dynA.ID+"/query", dynQ, &dynBefore); err != nil {
		t.Fatal(err)
	}
	mBefore := getMetrics(t, hs1.URL)
	if mBefore.Persist == nil || !mBefore.Persist.Enabled || mBefore.Persist.JournalRecords == 0 {
		t.Fatalf("persist metrics before restart: %+v", mBefore.Persist)
	}

	// Stop the first server: drain, then close the store (the daemon's
	// shutdown sequence).
	if err := s1.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	hs1.Close()
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}

	// Second server, same data dir.
	store2 := openTestStore(t, dir, persist.Options{})
	s2, hs2 := newTestServer(t, Config{Durability: Durability{Store: store2}, Scheduler: Scheduler{MaxDelay: time.Millisecond}})
	rs, err := s2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if rs.Trees != 2 || rs.DynShards != 2 || rs.Records == 0 {
		t.Fatalf("RecoveryStats = %+v", rs)
	}

	// Shard counts survive the restart.
	m := getMetrics(t, hs2.URL)
	if m.Server.Trees != 2 || m.Server.DynShards != 2 {
		t.Fatalf("post-restart metrics: trees=%d dyn=%d", m.Server.Trees, m.Server.DynShards)
	}
	if m.Persist == nil || m.Persist.RecoveredTrees != 2 || m.Persist.RecoveredShards != 2 || m.Persist.ReplayedRecords != rs.Records {
		t.Fatalf("post-restart persist metrics: %+v", m.Persist)
	}

	// The registered trees' placements came from the seeded cache: the
	// recovery registrations hit, and nothing ran the layout pipeline.
	if m.Cache.Builds != 0 {
		t.Fatalf("warm start rebuilt %d layouts; want 0 (cache-seeded)", m.Cache.Builds)
	}
	if m.Cache.Hits < 2 {
		t.Fatalf("warm start cache hits = %d, want >= 2 (one per registered tree)", m.Cache.Hits)
	}

	// Same ids answer identically.
	var lcaAfter QueryResponse
	if err := postJSON(hs2.URL, "/v1/query", lcaReq, &lcaAfter); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(lcaAfter.Answers, lcaBefore.Answers) {
		t.Fatalf("registered-tree answers changed: %v vs %v", lcaAfter.Answers, lcaBefore.Answers)
	}
	var dynAfter QueryResponse
	if err := postJSON(hs2.URL, "/v1/dyn/"+dynA.ID+"/query", dynQ, &dynAfter); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(dynAfter.Answers, dynBefore.Answers) {
		t.Fatalf("dyn shard answers changed: %v vs %v", dynAfter.Answers, dynBefore.Answers)
	}

	// The recovered server keeps journaling: a fresh mutation lands in
	// the same log and a fresh shard gets an id after the recovered
	// ones, not a colliding one.
	var mr MutateResponse
	if err := postJSON(hs2.URL, "/v1/dyn/"+dynA.ID+"/mutate", MutateRequest{Op: "insert", Parent: 0}, &mr); err != nil {
		t.Fatal(err)
	}
	var dynC DynCreateResponse
	if err := postJSON(hs2.URL, "/v1/dyn", DynCreateRequest{Parents: testParents(20, 5)}, &dynC); err != nil {
		t.Fatal(err)
	}
	if dynC.ID == dynA.ID || dynC.ID == dynB.ID {
		t.Fatalf("recovered server reissued shard id %s", dynC.ID)
	}
}

// TestRestartCompaction exercises the WAL-compaction path end to end: a
// low CompactAfter forces snapshots mid-traffic, and a restart must
// replay only the records past the newest snapshot.
func TestRestartCompaction(t *testing.T) {
	dir := t.TempDir()
	store := openTestStore(t, dir, persist.Options{CompactAfter: 8})
	s1, hs1 := newTestServer(t, Config{Durability: Durability{Store: store}, Scheduler: Scheduler{MaxDelay: time.Millisecond}})
	var dyn DynCreateResponse
	if err := postJSON(hs1.URL, "/v1/dyn", DynCreateRequest{Parents: testParents(40, 9)}, &dyn); err != nil {
		t.Fatal(err)
	}
	const muts = 50
	for i := 0; i < muts; i++ {
		if err := postJSON(hs1.URL, "/v1/dyn/"+dyn.ID+"/mutate", MutateRequest{Op: "insert", Parent: i % 40}, nil); err != nil {
			t.Fatal(err)
		}
	}
	m := getMetrics(t, hs1.URL)
	if m.Persist.Compactions == 0 {
		t.Fatalf("expected compactions at CompactAfter=8 with %d mutations", muts)
	}
	if m.Persist.WALRecords >= muts {
		t.Fatalf("WAL holds %d records; compaction should have folded most of %d", m.Persist.WALRecords, muts)
	}
	if err := s1.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	hs1.Close()
	store.Close()

	store2 := openTestStore(t, dir, persist.Options{CompactAfter: 8})
	s2, hs2 := newTestServer(t, Config{Durability: Durability{Store: store2}, Scheduler: Scheduler{MaxDelay: time.Millisecond}})
	rs, err := s2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if rs.DynShards != 1 {
		t.Fatalf("RecoveryStats = %+v", rs)
	}
	if rs.Records >= muts {
		t.Fatalf("restart replayed %d records; compaction should have bounded replay below %d", rs.Records, muts)
	}
	var resp QueryResponse
	q := QueryRequest{Kind: "treefix", Vals: make([]int64, 40+muts)}
	for i := range q.Vals {
		q.Vals[i] = 1
	}
	if err := postJSON(hs2.URL, "/v1/dyn/"+dyn.ID+"/query", q, &resp); err != nil {
		t.Fatal(err)
	}
	// Subtree-size treefix at the root equals the mutated vertex count.
	rt := tree.MustFromParents(testParents(40, 9))
	if got := resp.Sums[rt.Root()]; got != int64(40+muts) {
		t.Fatalf("root subtree sum %d, want %d", got, 40+muts)
	}
}
