package server

// Config and its groups. PR 8 restructured the historical flat
// 15-field Config into sub-structs so each concern names its knobs in
// one place; the zero value of every group (and of Config itself)
// still yields the documented defaults, so `server.New(server.Config{})`
// keeps meaning "a serving daemon with stock tuning".

import (
	"time"

	"spatialtree/internal/exec"
	"spatialtree/internal/persist"

	"spatialtree/internal/engine"
)

// Defaults used by New when the corresponding Config field is zero.
const (
	DefaultMaxBatch      = 64
	DefaultMaxDelay      = 2 * time.Millisecond
	DefaultQueueLimit    = 1024
	DefaultCacheCapacity = 128
	DefaultBodyLimit     = 64 << 20
	DefaultMaxShards     = 1024
	// DefaultTCPIdleTimeout bounds how long a binary-protocol connection
	// may sit between frames before the server hangs up — the TCP
	// equivalent of the HTTP layer's read/idle timeouts, so one silent
	// client cannot pin a connection forever.
	DefaultTCPIdleTimeout = 2 * time.Minute
	// DefaultTCPWriteTimeout bounds each binary-protocol response write.
	DefaultTCPWriteTimeout = 30 * time.Second
	// DefaultReplicas is the follower count per dyn shard in cluster
	// mode (Cluster.Replicas 0); capped at len(Peers)-1.
	DefaultReplicas = 2
	// DefaultVirtualNodes is the consistent-hash ring's vnode count per
	// peer (Cluster.VirtualNodes 0).
	DefaultVirtualNodes = 64
)

// Scheduler groups the adaptive batch scheduler's knobs.
type Scheduler struct {
	// MaxBatch is the scheduler's size trigger: a shard's pending batch
	// is dispatched as soon as it holds this many requests (0 means
	// DefaultMaxBatch).
	MaxBatch int
	// MaxDelay is the scheduler's deadline trigger: a pending batch is
	// dispatched once its oldest request has waited this long (0 means
	// DefaultMaxDelay).
	MaxDelay time.Duration
	// Workers bounds the pool's parallel shard flushes (0 means
	// GOMAXPROCS).
	Workers int
}

// Limits groups the admission bounds: concurrency, memory and body
// size. Each is a refusal threshold, not a queue.
type Limits struct {
	// QueueLimit bounds concurrently admitted requests; excess traffic
	// receives 429 (0 means DefaultQueueLimit).
	QueueLimit int
	// MaxShards bounds retained per-tree serving state (registered
	// trees + mutable shards + pool shards auto-created for ad-hoc
	// query trees; 0 means DefaultMaxShards). Beyond it, registration
	// and shard creation are refused with 429, and ad-hoc query trees
	// are served from ephemeral engines instead of growing the pool —
	// admission control for memory, the way QueueLimit is admission
	// control for concurrency.
	MaxShards int
	// BodyLimit caps request body bytes (0 means DefaultBodyLimit).
	BodyLimit int64
	// CacheCapacity sizes the shared layout cache (0 means
	// DefaultCacheCapacity).
	CacheCapacity int
}

// Timeouts groups the binary-protocol connection deadlines. (The HTTP
// listener's equivalents live on the http.Server the daemon builds.)
type Timeouts struct {
	// TCPIdle bounds the gap between frames on a binary-protocol
	// connection; an idle connection is closed when it expires (0 means
	// DefaultTCPIdleTimeout, < 0 disables the deadline — tests only).
	TCPIdle time.Duration
	// TCPWrite bounds each binary-protocol response write (0 means
	// DefaultTCPWriteTimeout).
	TCPWrite time.Duration
}

// Durability groups the persistence wiring.
type Durability struct {
	// Store, when non-nil, makes the shard table durable: registered
	// trees are persisted as placement snapshots, mutable shards as a
	// snapshot plus a mutation WAL, and Recover replays all of it on
	// boot. Nil serves everything from memory.
	Store *persist.Store
}

// Cluster groups the multi-node serving settings. A zero Cluster (no
// peers) is single-node mode: every shard is local and no routing or
// replication happens. With peers configured, the daemon joins a static
// cluster: shards are owned by consistent hash of their tree
// fingerprint across the peer list, non-owners proxy (or redirect)
// to the owner over the binary protocol, and each dyn shard's owner
// ships its snapshot and WAL records to Replicas followers, acking
// mutations only once the followers confirmed. See docs/cluster.md.
type Cluster struct {
	// Self is this node's advertise address — the binary-protocol
	// address peers use to reach it. It must appear in Peers.
	Self string
	// Peers is the static peer list: every node's advertise address,
	// identical on every node (ordering does not matter; the ring
	// hashes addresses, not indices).
	Peers []string
	// Replicas is the number of follower copies each dyn shard keeps
	// beyond the owner (0 means DefaultReplicas, capped at
	// len(Peers)-1; < 0 disables replication).
	Replicas int
	// VirtualNodes is the consistent-hash ring's vnode count per peer
	// (0 means DefaultVirtualNodes). More vnodes → better balance,
	// larger ring.
	VirtualNodes int
	// Redirect makes a non-owner answer routable requests with
	// StatusRedirect (HTTP 421) carrying the owner's address, instead
	// of proxying to the owner on the client's behalf. Smart clients
	// (wire.DialOptions.FollowRedirects) converge on owners themselves;
	// proxying (the default) keeps dumb clients working.
	Redirect bool
}

// Enabled reports whether cluster mode is configured.
func (c Cluster) Enabled() bool { return len(c.Peers) > 0 }

// Tuning configures the online per-shard layout tuner (internal/tune):
// a background loop that profiles each mutable shard's workload (kernel
// mix, batch sizes, sampled shadow cost) and republishes its layout —
// curve × rebuild threshold ε, optionally the execution backend — when
// a candidate configuration projects a win beyond the hysteresis
// threshold. A zero Tuning leaves the tuner off.
type Tuning struct {
	// Enabled arms the tuning loop over the server's dyn shards.
	Enabled bool
	// Interval is the tuner's tick period (0 means
	// tune.DefaultInterval).
	Interval time.Duration
	// Threshold is the hysteresis threshold: the minimum projected
	// fractional win (e.g. 0.15 = 15%) before the tuner republishes a
	// shard's layout (0 means tune.DefaultThreshold).
	Threshold float64
	// Backends additionally lets the tuner switch a shard's execution
	// backend (sim ↔ native), not just its layout.
	Backends bool
}

// Config configures a Server. The zero value serves with stock tuning:
// every group's zero value takes the documented defaults.
type Config struct {
	// Scheduler tunes the per-shard adaptive batch scheduler.
	Scheduler Scheduler
	// Limits bounds admission: concurrency, retained shards, body size.
	Limits Limits
	// Timeouts bounds binary-protocol connection I/O.
	Timeouts Timeouts
	// Durability wires the persistent store.
	Durability Durability
	// Cluster configures multi-node serving; zero means single-node.
	Cluster Cluster
	// Tuning configures the online per-shard layout tuner; zero means
	// off.
	Tuning Tuning

	// Curve names the space-filling curve for placements ("" means
	// "hilbert").
	Curve string
	// Seed drives the Las Vegas coins of the simulator runs.
	Seed uint64
	// Epsilon is the default drift budget of mutable shards (0 means
	// engine.DefaultEpsilon).
	Epsilon float64
	// Backend names the default execution backend shards serve on
	// ("" means "native": goroutine-parallel kernels, no simulator
	// bookkeeping on the hot path). "sim" serves every batch through the
	// spatial-computer simulator with exact model-cost metering — the
	// validation/metering deployment, an order of magnitude slower.
	// Register/create requests may override per shard; recovered shards
	// come back on this default (the backend is a serving-time knob, not
	// part of the durable state — re-register to override after boot).
	Backend string
	// ShadowMeter, when > 0 with a native default backend, samples every
	// N-th batch of each shard through a shadow sim run: /metrics keeps
	// reporting (sampled) model Energy/Depth and counts any
	// native-vs-sim result mismatches, at 1/N of the simulator's cost.
	ShadowMeter int
}

// withDefaults resolves every zero field to its documented default.
func (cfg Config) withDefaults() Config {
	if cfg.Scheduler.MaxBatch <= 0 {
		cfg.Scheduler.MaxBatch = DefaultMaxBatch
	}
	if cfg.Scheduler.MaxDelay <= 0 {
		cfg.Scheduler.MaxDelay = DefaultMaxDelay
	}
	if cfg.Limits.QueueLimit <= 0 {
		cfg.Limits.QueueLimit = DefaultQueueLimit
	}
	if cfg.Limits.CacheCapacity <= 0 {
		cfg.Limits.CacheCapacity = DefaultCacheCapacity
	}
	if cfg.Limits.BodyLimit <= 0 {
		cfg.Limits.BodyLimit = DefaultBodyLimit
	}
	if cfg.Limits.MaxShards <= 0 {
		cfg.Limits.MaxShards = DefaultMaxShards
	}
	if cfg.Epsilon <= 0 {
		cfg.Epsilon = engine.DefaultEpsilon
	}
	if cfg.Backend == "" {
		cfg.Backend = exec.Native
	}
	if cfg.Timeouts.TCPIdle == 0 {
		cfg.Timeouts.TCPIdle = DefaultTCPIdleTimeout
	}
	if cfg.Timeouts.TCPWrite <= 0 {
		cfg.Timeouts.TCPWrite = DefaultTCPWriteTimeout
	}
	if cfg.Cluster.Enabled() {
		if cfg.Cluster.Replicas == 0 {
			cfg.Cluster.Replicas = DefaultReplicas
		}
		if cfg.Cluster.Replicas > len(cfg.Cluster.Peers)-1 {
			cfg.Cluster.Replicas = len(cfg.Cluster.Peers) - 1
		}
		if cfg.Cluster.Replicas < 0 {
			cfg.Cluster.Replicas = 0
		}
		if cfg.Cluster.VirtualNodes <= 0 {
			cfg.Cluster.VirtualNodes = DefaultVirtualNodes
		}
	}
	return cfg
}
