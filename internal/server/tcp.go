package server

// The binary-protocol listener: the same serving semantics as the HTTP
// handlers — shard routing by tree id or ad-hoc parents, bounded-queue
// admission with an explicit backpressure status, drain awareness, the
// same 400-vs-500 error classification — over internal/wire frames on
// raw TCP. One connection processes its queries in arrival order (like
// HTTP/1.1 on one connection); concurrency comes from many connections,
// whose requests coalesce into shared batches exactly as HTTP traffic
// does. The per-connection hot path is allocation-free: the frame
// reader, decoded query, submission scratch and response buffer are all
// connection-local and reused frame to frame.

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"net/http"
	"time"

	"spatialtree/internal/engine"
	"spatialtree/internal/exprtree"
	"spatialtree/internal/lca"
	"spatialtree/internal/mincut"
	"spatialtree/internal/tree"
	"spatialtree/internal/treefix"
	"spatialtree/internal/wire"
)

// ServeBinary accepts binary-protocol connections from ln until the
// listener is closed (by the caller or by CloseBinary) and serves each
// on its own goroutine. Like http.Server.Serve, it always returns a
// non-nil error; net.ErrClosed is the clean-shutdown one.
func (s *Server) ServeBinary(ln net.Listener) error {
	s.wireEnabled.Store(true)
	s.wireMu.Lock()
	s.wireListeners[ln] = struct{}{}
	s.wireMu.Unlock()
	defer func() {
		s.wireMu.Lock()
		delete(s.wireListeners, ln)
		s.wireMu.Unlock()
	}()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return err
		}
		s.wireTotal.Add(1)
		s.wireMu.Lock()
		s.wireConns[conn] = struct{}{}
		s.wireMu.Unlock()
		go func() {
			defer func() {
				s.wireMu.Lock()
				delete(s.wireConns, conn)
				s.wireMu.Unlock()
				conn.Close()
			}()
			s.serveConn(conn)
		}()
	}
}

// CloseBinary closes every binary-protocol listener registered by
// ServeBinary and every open connection. Call it after Drain: draining
// already makes every connection answer StatusUnavailable, so closing
// here cuts off clients that never read their responses.
func (s *Server) CloseBinary() {
	s.wireMu.Lock()
	lns := make([]net.Listener, 0, len(s.wireListeners))
	for ln := range s.wireListeners {
		lns = append(lns, ln)
	}
	conns := make([]net.Conn, 0, len(s.wireConns))
	for c := range s.wireConns {
		conns = append(conns, c)
	}
	s.wireMu.Unlock()
	for _, ln := range lns {
		_ = ln.Close()
	}
	for _, c := range conns {
		_ = c.Close()
	}
}

// wireScratch holds a connection's reusable submission state: the
// kernel-typed slices a wire.Query converts into. Reused frame to
// frame — safe because a connection serves serially and the engine
// releases its view of a request's inputs when the batch retires.
type wireScratch struct {
	queries []lca.Query
	edges   []mincut.Edge
	kinds   []exprtree.NodeKind
}

// serveConn runs one connection's frame loop.
func (s *Server) serveConn(conn net.Conn) {
	rd := wire.NewReader(bufio.NewReader(conn), int(s.cfg.BodyLimit))
	var (
		q       wire.Query
		res     wire.Result
		scratch wireScratch
		out     []byte
	)
	// Shadow metering re-reads a request's input slices after its future
	// resolves (to validate served results against the simulator), so
	// reusing the decoded query's buffers across frames would race with
	// it; a shadow-metered server decodes fresh per frame instead.
	reuse := s.cfg.ShadowMeter <= 0

	writeFrame := func(frame []byte) bool {
		if t := s.cfg.TCPWriteTimeout; t > 0 {
			_ = conn.SetWriteDeadline(time.Now().Add(t))
		}
		_, err := conn.Write(frame)
		return err == nil
	}

	for {
		if t := s.cfg.TCPIdleTimeout; t > 0 {
			// The deadline covers the whole frame read: it doubles as
			// the slow-write guard HTTP gets from ReadTimeout, so a
			// client trickling a frame byte-by-byte cannot hold the
			// connection past the idle budget.
			_ = conn.SetReadDeadline(time.Now().Add(t))
		}
		kind, payload, err := rd.Next()
		switch {
		case err == nil:
		case errors.Is(err, wire.ErrTooLarge):
			// The reader discarded the payload, so the stream is still
			// framed; the query id was in the discarded bytes, hence the
			// connection-level id 0.
			if !writeFrame(wire.AppendError(out[:0], &wire.Error{Status: wire.StatusTooLarge, Msg: err.Error()})) {
				return
			}
			continue
		case errors.Is(err, wire.ErrCorrupt), errors.Is(err, wire.ErrVersion):
			// The stream cannot be resynchronized: answer once at the
			// connection level and hang up.
			s.wireErrors.Add(1)
			writeFrame(wire.AppendError(out[:0], &wire.Error{Status: wire.StatusBadRequest, Msg: err.Error()}))
			return
		default:
			// io.EOF (clean close), deadline expiry, reset: nothing to say.
			return
		}

		switch kind {
		case wire.FramePing:
			if !writeFrame(wire.AppendPong(out[:0])) {
				return
			}
		case wire.FrameQuery:
			wq, sc := &q, &scratch
			if !reuse {
				wq, sc = new(wire.Query), new(wireScratch)
			}
			if err := wq.Decode(payload); err != nil {
				s.wireErrors.Add(1)
				writeFrame(wire.AppendError(out[:0], &wire.Error{Status: wire.StatusBadRequest, Msg: err.Error()}))
				return
			}
			out = s.serveWireQuery(out[:0], wq, &res, sc)
			if !writeFrame(out) {
				return
			}
		default:
			s.wireErrors.Add(1)
			writeFrame(wire.AppendError(out[:0], &wire.Error{Status: wire.StatusBadRequest,
				Msg: fmt.Sprintf("unexpected frame kind %d", kind)}))
			return
		}
	}
}

// serveWireQuery admits, routes, executes and encodes one query,
// appending the response frame (result or error) to out. It mirrors
// the HTTP path stage for stage: the same bounded-queue admission and
// counters, the same shard routing, the same error classification.
func (s *Server) serveWireQuery(out []byte, q *wire.Query, res *wire.Result, scratch *wireScratch) []byte {
	s.wireQueries.Add(1)
	fail := func(status wire.Status, msg string) []byte {
		return wire.AppendError(out, &wire.Error{ID: q.ID, Status: status, Msg: msg})
	}

	// Admission: the bounded in-flight queue (QueueLimit → backpressure
	// the client can see) and drain tracking, sharing the HTTP layer's
	// counters so /metrics reports one serving truth.
	select {
	case s.sem <- struct{}{}:
	default:
		s.rejected.Add(1)
		return fail(wire.StatusTooMany, "request queue full")
	}
	if !s.enter() {
		<-s.sem
		return fail(wire.StatusUnavailable, "server is draining")
	}
	s.accepted.Add(1)
	defer func() {
		<-s.sem
		s.exit()
	}()

	// Routing, as in handleQuery. The frame format routes by exactly one
	// of tree id / parents by construction, so the HTTP both-set 400 has
	// no binary counterpart.
	var t *tree.Tree
	switch {
	case q.TreeID != "":
		s.mu.Lock()
		t = s.trees[q.TreeID]
		s.mu.Unlock()
		if t == nil {
			return fail(wire.StatusNotFound, "unknown tree_id "+q.TreeID)
		}
	case len(q.Parents) > 0:
		var err error
		if t, err = tree.FromParents(q.Parents); err != nil {
			return fail(wire.StatusBadRequest, err.Error())
		}
	default:
		return fail(wire.StatusBadRequest, "tree_id or parents required")
	}
	eng, retire, err := s.engineFor(t)
	if err != nil {
		return fail(wire.StatusInternal, err.Error())
	}
	defer retire()

	fut, err := submitWire(eng, q, t, scratch)
	if err != nil {
		return fail(wireStatus(err), err.Error())
	}
	r := fut.Wait()
	if r.Err != nil {
		return fail(wireStatus(r.Err), r.Err.Error())
	}

	*res = wire.Result{
		ID:   q.ID,
		Kind: q.Kind,
		Cost: wire.Cost{Energy: r.Cost.Energy, Messages: r.Cost.Messages, Depth: r.Cost.Depth},
	}
	switch q.Kind {
	case wire.KindTreefix, wire.KindTopDown:
		res.Sums = r.Sums
	case wire.KindLCA:
		res.Answers = r.Answers
	case wire.KindMinCut:
		res.MinWeight, res.ArgVertex = r.MinCut.MinWeight, r.MinCut.ArgVertex
	case wire.KindExpr:
		res.Value = r.Value
	}
	return wire.AppendResult(out, res)
}

// wireStatus is errStatus in the binary protocol's vocabulary — the
// mirrored classification the HTTP layer documents.
func wireStatus(err error) wire.Status {
	if errStatus(err) == http.StatusBadRequest {
		return wire.StatusBadRequest
	}
	return wire.StatusInternal
}

// submitWire enqueues a decoded binary query on the shard, converting
// its payload into the kernel types through the connection's reusable
// scratch. Identical dispatch and validation to submit; t is the routed
// tree (needed to build expr submissions).
//
//spatialvet:errclass
func submitWire(sh submitter, q *wire.Query, t *tree.Tree, scratch *wireScratch) (*engine.Future, error) {
	switch q.Kind {
	case wire.KindTreefix, wire.KindTopDown:
		opName := q.Op
		if opName == "" {
			opName = "add"
		}
		op, err := treefix.OpByName(opName)
		if err != nil {
			return nil, badRequest(err)
		}
		if q.Kind == wire.KindTreefix {
			return sh.SubmitTreefix(q.Vals, op), nil
		}
		return sh.SubmitTopDown(q.Vals, op), nil
	case wire.KindLCA:
		qs := scratch.queries[:0]
		for _, lq := range q.Queries {
			qs = append(qs, lca.Query{U: lq.U, V: lq.V})
		}
		scratch.queries = qs
		return sh.SubmitLCA(qs), nil
	case wire.KindMinCut:
		es := scratch.edges[:0]
		for _, e := range q.Edges {
			es = append(es, mincut.Edge{U: e.U, V: e.V, W: e.W})
		}
		scratch.edges = es
		return sh.SubmitMinCut(es), nil
	case wire.KindExpr:
		ks := scratch.kinds[:0]
		for _, k := range q.ExprKinds {
			if k > uint8(exprtree.Mul) {
				return nil, badRequest(fmt.Errorf("expr kind %d (want 0=leaf, 1=add or 2=mul)", k))
			}
			ks = append(ks, exprtree.NodeKind(k))
		}
		scratch.kinds = ks
		return sh.SubmitExpr(&exprtree.Expr{Tree: t, Kind: ks, Val: q.Vals}), nil
	default:
		return nil, badRequest(fmt.Errorf("unknown query kind %d", q.Kind))
	}
}
