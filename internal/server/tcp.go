package server

// The binary-protocol listener: the same serving semantics as the HTTP
// handlers — shard routing by tree id or ad-hoc parents, bounded-queue
// admission with an explicit backpressure status, drain awareness, the
// same 400-vs-500 error classification — over internal/wire frames on
// raw TCP. One connection processes its queries in arrival order (like
// HTTP/1.1 on one connection); concurrency comes from many connections,
// whose requests coalesce into shared batches exactly as HTTP traffic
// does. The per-connection hot path is allocation-free: the frame
// reader, decoded query, submission scratch and response buffer are all
// connection-local and reused frame to frame.

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"time"

	"spatialtree/internal/engine"
	"spatialtree/internal/exprtree"
	"spatialtree/internal/lca"
	"spatialtree/internal/mincut"
	"spatialtree/internal/tree"
	"spatialtree/internal/treefix"
	"spatialtree/internal/wire"
)

// ServeBinary accepts binary-protocol connections from ln until the
// listener is closed (by the caller or by CloseBinary) and serves each
// on its own goroutine. Like http.Server.Serve, it always returns a
// non-nil error; net.ErrClosed is the clean-shutdown one.
func (s *Server) ServeBinary(ln net.Listener) error {
	s.wireEnabled.Store(true)
	s.wireMu.Lock()
	s.wireListeners[ln] = struct{}{}
	s.wireMu.Unlock()
	defer func() {
		s.wireMu.Lock()
		delete(s.wireListeners, ln)
		s.wireMu.Unlock()
	}()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return err
		}
		s.wireTotal.Add(1)
		s.wireMu.Lock()
		s.wireConns[conn] = struct{}{}
		s.wireMu.Unlock()
		go func() {
			defer func() {
				s.wireMu.Lock()
				delete(s.wireConns, conn)
				s.wireMu.Unlock()
				conn.Close()
			}()
			s.serveConn(conn)
		}()
	}
}

// CloseBinary closes every binary-protocol listener registered by
// ServeBinary and every open connection. Call it after Drain: draining
// already makes every connection answer StatusUnavailable, so closing
// here cuts off clients that never read their responses.
func (s *Server) CloseBinary() {
	s.wireMu.Lock()
	lns := make([]net.Listener, 0, len(s.wireListeners))
	for ln := range s.wireListeners {
		lns = append(lns, ln)
	}
	conns := make([]net.Conn, 0, len(s.wireConns))
	for c := range s.wireConns {
		conns = append(conns, c)
	}
	s.wireMu.Unlock()
	for _, ln := range lns {
		_ = ln.Close()
	}
	for _, c := range conns {
		_ = c.Close()
	}
}

// wireScratch holds a connection's reusable submission state: the
// kernel-typed slices a wire.Query converts into. Reused frame to
// frame — safe because a connection serves serially and the engine
// releases its view of a request's inputs when the batch retires.
type wireScratch struct {
	queries []lca.Query
	edges   []mincut.Edge
	kinds   []exprtree.NodeKind
}

// serveConn runs one connection's frame loop.
func (s *Server) serveConn(conn net.Conn) {
	rd := wire.NewReader(bufio.NewReader(conn), int(s.cfg.Limits.BodyLimit))
	var (
		q       wire.Query
		res     wire.Result
		scratch wireScratch
		out     []byte
	)
	writeFrame := func(frame []byte) bool {
		if t := s.cfg.Timeouts.TCPWrite; t > 0 {
			_ = conn.SetWriteDeadline(time.Now().Add(t))
		}
		_, err := conn.Write(frame)
		return err == nil
	}

	// badFrame answers a payload that failed decoding at the connection
	// level — the stream is framed but the peer is speaking garbage, so
	// the caller hangs up after it.
	badFrame := func(err error) {
		s.wireErrors.Add(1)
		writeFrame(wire.AppendError(out[:0], &wire.Error{Status: wire.StatusBadRequest, Msg: err.Error()}))
	}

	for {
		if t := s.cfg.Timeouts.TCPIdle; t > 0 {
			// The deadline covers the whole frame read: it doubles as
			// the slow-write guard HTTP gets from ReadTimeout, so a
			// client trickling a frame byte-by-byte cannot hold the
			// connection past the idle budget.
			_ = conn.SetReadDeadline(time.Now().Add(t))
		}
		kind, payload, err := rd.Next()
		switch {
		case err == nil:
		case errors.Is(err, wire.ErrTooLarge):
			// The reader discarded the payload, so the stream is still
			// framed; the query id was in the discarded bytes, hence the
			// connection-level id 0.
			if !writeFrame(wire.AppendError(out[:0], &wire.Error{Status: wire.StatusTooLarge, Msg: err.Error()})) {
				return
			}
			continue
		case errors.Is(err, wire.ErrCorrupt), errors.Is(err, wire.ErrVersion):
			// The stream cannot be resynchronized: answer once at the
			// connection level and hang up.
			s.wireErrors.Add(1)
			writeFrame(wire.AppendError(out[:0], &wire.Error{Status: wire.StatusBadRequest, Msg: err.Error()}))
			return
		default:
			// io.EOF (clean close), deadline expiry, reset: nothing to say.
			return
		}

		switch kind {
		case wire.FramePing:
			if !writeFrame(wire.AppendPong(out[:0])) {
				return
			}
		case wire.FrameQuery:
			// The decode scratch is reused frame to frame even under
			// shadow metering: the engine copies a sampled batch's inputs
			// out before any future resolves (engine.copyShadowInputs),
			// so no engine-side read of these buffers survives the reply.
			if err := q.Decode(payload); err != nil {
				badFrame(err)
				return
			}
			out = s.serveWireQuery(out[:0], &q, &res, &scratch)
			if !writeFrame(out) {
				return
			}
		case wire.FrameDynCreate:
			var dc wire.DynCreate
			if err := dc.Decode(payload); err != nil {
				badFrame(err)
				return
			}
			out = s.serveWireDynCreate(out[:0], &dc)
			if !writeFrame(out) {
				return
			}
		case wire.FrameMutate:
			var m wire.Mutate
			if err := m.Decode(payload); err != nil {
				badFrame(err)
				return
			}
			out = s.serveWireMutate(out[:0], &m)
			if !writeFrame(out) {
				return
			}
		case wire.FrameRepSnapshot:
			var rs wire.RepSnapshot
			if err := rs.Decode(payload); err != nil {
				badFrame(err)
				return
			}
			out = s.serveWireRep(out[:0], rs.ID, rs.ShardID, func(h ClusterHooks) (uint64, uint8, string) {
				return h.ApplySnapshot(rs.ShardID, rs.Blob)
			})
			if !writeFrame(out) {
				return
			}
		case wire.FrameRepRecords:
			var rr wire.RepRecords
			if err := rr.Decode(payload); err != nil {
				badFrame(err)
				return
			}
			out = s.serveWireRep(out[:0], rr.ID, rr.ShardID, func(h ClusterHooks) (uint64, uint8, string) {
				return h.ApplyRecords(rr.ShardID, rr.Recs)
			})
			if !writeFrame(out) {
				return
			}
		case wire.FrameHandbackOffer:
			var ho wire.HandbackOffer
			if err := ho.Decode(payload); err != nil {
				badFrame(err)
				return
			}
			out = s.serveWireHandback(out[:0], &ho)
			if !writeFrame(out) {
				return
			}
		default:
			s.wireErrors.Add(1)
			writeFrame(wire.AppendError(out[:0], &wire.Error{Status: wire.StatusBadRequest,
				Msg: fmt.Sprintf("unexpected frame kind %d", kind)}))
			return
		}
	}
}

// admitWire performs the bounded-queue admission shared by every
// client-originated wire frame: the same QueueLimit backpressure, drain
// tracking and counters as the HTTP layer, so /metrics reports one
// serving truth. A nil release means the request was refused with the
// returned status; otherwise the caller must defer release.
func (s *Server) admitWire() (release func(), status wire.Status, msg string) {
	select {
	case s.sem <- struct{}{}:
	default:
		s.rejected.Add(1)
		return nil, wire.StatusTooMany, "request queue full"
	}
	if !s.enter() {
		<-s.sem
		return nil, wire.StatusUnavailable, "server is draining"
	}
	s.accepted.Add(1)
	return func() {
		<-s.sem
		s.exit()
	}, 0, ""
}

// serveWireQuery admits, routes, executes and encodes one query,
// appending the response frame (result or error) to out. It mirrors
// the HTTP path stage for stage: the same bounded-queue admission and
// counters, the same shard routing (including the cluster hooks), the
// same error classification.
func (s *Server) serveWireQuery(out []byte, q *wire.Query, res *wire.Result, scratch *wireScratch) []byte {
	s.wireQueries.Add(1)
	fail := func(status wire.Status, msg string) []byte {
		return wire.AppendError(out, &wire.Error{ID: q.ID, Status: status, Msg: msg})
	}

	release, status, msg := s.admitWire()
	if release == nil {
		return fail(status, msg)
	}
	defer release()

	// Routing, as in handleQuery/handleDynQuery. The frame format routes
	// by exactly one of shard id / tree id / parents by construction, so
	// the HTTP both-set 400 has no binary counterpart.
	var (
		sh      submitter
		getTree func() (*tree.Tree, error)
		retire  = func() {}
	)
	switch {
	case q.ShardID != "":
		s.mu.Lock()
		de := s.dyns[q.ShardID]
		s.mu.Unlock()
		if de == nil {
			if h := s.clusterHooks(); h != nil {
				// Cluster slow path by design: proxied and redirected
				// queries convert through the JSON request types; only
				// locally served frames stay zero-alloc.
				resp, handled, err := h.ShardQuery(q.ShardID, queryRequestFromWire(q))
				if err != nil {
					return fail(wireErr(err))
				}
				if handled {
					*res = wireResultFromResponse(q.ID, q.Kind, resp)
					return wire.AppendResult(out, res)
				}
				// handled == false: the hook decided the shard is local —
				// possibly promoted from a replica just now — so look
				// again before giving up.
				s.mu.Lock()
				de = s.dyns[q.ShardID]
				s.mu.Unlock()
			}
			if de == nil {
				return fail(wire.StatusNotFound, "unknown shard_id "+q.ShardID)
			}
		}
		sh, getTree = de, de.Tree
	case q.TreeID != "":
		s.mu.Lock()
		t := s.trees[q.TreeID]
		s.mu.Unlock()
		if t == nil {
			return fail(wire.StatusNotFound, "unknown tree_id "+q.TreeID)
		}
		eng, ret, err := s.engineFor(t)
		if err != nil {
			return fail(wireErr(err))
		}
		sh, getTree, retire = eng, func() (*tree.Tree, error) { return t, nil }, ret
	case len(q.Parents) > 0:
		t, err := tree.FromParents(q.Parents)
		if err != nil {
			return fail(wire.StatusBadRequest, err.Error())
		}
		eng, ret, err := s.engineFor(t)
		if err != nil {
			return fail(wireErr(err))
		}
		sh, getTree, retire = eng, func() (*tree.Tree, error) { return t, nil }, ret
	default:
		return fail(wire.StatusBadRequest, "shard_id, tree_id or parents required")
	}
	defer retire()

	fut, err := submitWire(sh, q, getTree, scratch)
	if err != nil {
		return fail(wireErr(err))
	}
	r := fut.Wait()
	if r.Err != nil {
		return fail(wireErr(r.Err))
	}

	*res = wire.Result{
		ID:   q.ID,
		Kind: q.Kind,
		Cost: wire.Cost{Energy: r.Cost.Energy, Messages: r.Cost.Messages, Depth: r.Cost.Depth},
	}
	switch q.Kind {
	case wire.KindTreefix, wire.KindTopDown:
		res.Sums = r.Sums
	case wire.KindLCA:
		res.Answers = r.Answers
	case wire.KindMinCut:
		res.MinWeight, res.ArgVertex = r.MinCut.MinWeight, r.MinCut.ArgVertex
	case wire.KindExpr:
		res.Value = r.Value
	}
	return wire.AppendResult(out, res)
}

// serveWireDynCreate serves one FrameDynCreate: the binary twin of
// POST /v1/dyn, routed through the cluster hooks exactly as the HTTP
// handler is. A frame naming its shard id is the cluster owner path —
// the proxying peer already routed the id here, so it must be created
// locally (re-routing would bounce between skewed ring views).
func (s *Server) serveWireDynCreate(out []byte, dc *wire.DynCreate) []byte {
	s.wireQueries.Add(1)
	fail := func(status wire.Status, msg string) []byte {
		return wire.AppendError(out, &wire.Error{ID: dc.ID, Status: status, Msg: msg})
	}
	release, status, msg := s.admitWire()
	if release == nil {
		return fail(status, msg)
	}
	defer release()
	var res DynCreateResult
	var err error
	if dc.ShardID != "" {
		res, err = s.DynCreateLocal(dc.ShardID, dc.Parents, dc.Epsilon, dc.Backend)
	} else {
		res, err = s.dynCreate(dc.Parents, dc.Epsilon, dc.Backend)
	}
	if err != nil {
		return fail(wireErr(err))
	}
	return wire.AppendDynCreated(out, &wire.DynCreated{ID: dc.ID, ShardID: res.ID, N: res.N, Backend: res.Backend})
}

// serveWireMutate serves one FrameMutate: the binary twin of
// POST /v1/dyn/{id}/mutate, routed through the cluster hooks.
func (s *Server) serveWireMutate(out []byte, m *wire.Mutate) []byte {
	s.wireQueries.Add(1)
	fail := func(status wire.Status, msg string) []byte {
		return wire.AppendError(out, &wire.Error{ID: m.ID, Status: status, Msg: msg})
	}
	release, status, msg := s.admitWire()
	if release == nil {
		return fail(status, msg)
	}
	defer release()
	res, err := s.mutate(m.ShardID, m.Op, m.Arg)
	if err != nil {
		return fail(wireErr(err))
	}
	return wire.AppendMutated(out, &wire.Mutated{ID: m.ID, Vertex: res.Vertex, Moved: res.Moved, Epoch: res.Epoch, N: res.N})
}

// serveWireRep serves one replication frame (FrameRepSnapshot or
// FrameRepRecords), answering with a RepAck. Replication deliberately
// bypasses the admission queue: an owner's mutation holds an admission
// slot while it waits for follower acks, so a follower whose apply had
// to queue behind that same bounded queue could deadlock the cluster at
// saturation. Replication traffic is peer-originated and bounded by the
// peer count, not by untrusted clients.
func (s *Server) serveWireRep(out []byte, id uint64, shardID string, apply func(ClusterHooks) (uint64, uint8, string)) []byte {
	h := s.clusterHooks()
	if h == nil {
		return wire.AppendError(out, &wire.Error{ID: id, Status: wire.StatusBadRequest, Msg: "not a cluster node"})
	}
	cursor, code, msg := apply(h)
	return wire.AppendRepAck(out, &wire.RepAck{ID: id, ShardID: shardID, Cursor: cursor, Code: code, Msg: msg})
}

// serveWireHandback serves one FrameHandbackOffer, answering with a
// HandbackGrant. Like replication, handback bypasses the admission
// queue: it is peer-originated, bounded by the peer count, and must
// make progress while client traffic saturates the bounded queue — a
// rejoiner proxying its clients' requests here depends on it.
func (s *Server) serveWireHandback(out []byte, ho *wire.HandbackOffer) []byte {
	h := s.clusterHooks()
	if h == nil {
		return wire.AppendError(out, &wire.Error{ID: ho.ID, Status: wire.StatusBadRequest, Msg: "not a cluster node"})
	}
	g := h.Handback(ho)
	g.ID, g.ShardID = ho.ID, ho.ShardID
	return wire.AppendHandbackGrant(out, g)
}

// queryRequestFromWire converts a decoded binary query into its JSON
// twin for the cluster proxy path. Scalar slices are borrowed, not
// copied: the hook call consuming the request is synchronous, finishing
// before the connection reuses its decode buffers.
func queryRequestFromWire(q *wire.Query) *QueryRequest {
	req := &QueryRequest{Kind: wire.KindName(q.Kind), Op: q.Op, Vals: q.Vals}
	switch q.Kind {
	case wire.KindLCA:
		req.Queries = make([]LCAQuery, len(q.Queries))
		for i, lq := range q.Queries {
			req.Queries[i] = LCAQuery{U: lq.U, V: lq.V}
		}
	case wire.KindMinCut:
		req.Edges = make([]GraphEdge, len(q.Edges))
		for i, e := range q.Edges {
			req.Edges[i] = GraphEdge{U: e.U, V: e.V, W: e.W}
		}
	case wire.KindExpr:
		req.ExprKinds = make([]int, len(q.ExprKinds))
		for i, k := range q.ExprKinds {
			req.ExprKinds[i] = int(k)
		}
	}
	return req
}

// wireResultFromResponse converts a proxied JSON response back into the
// binary result answering frame id.
func wireResultFromResponse(id uint64, kind uint8, resp *QueryResponse) wire.Result {
	res := wire.Result{
		ID:      id,
		Kind:    kind,
		Sums:    resp.Sums,
		Answers: resp.Answers,
		Cost:    wire.Cost{Energy: resp.Cost.Energy, Messages: resp.Cost.Messages, Depth: resp.Cost.Depth},
	}
	if resp.MinCut != nil {
		res.MinWeight, res.ArgVertex = resp.MinCut.MinWeight, resp.MinCut.ArgVertex
	}
	if resp.Value != nil {
		res.Value = *resp.Value
	}
	return res
}

// WireQueryFromRequest converts a JSON query request into the binary
// query the cluster proxy forwards to a shard owner.
func WireQueryFromRequest(id uint64, shardID string, req *QueryRequest) (*wire.Query, error) {
	kind, ok := wire.KindByName(req.Kind)
	if !ok {
		return nil, statusErrf(StatusBadRequest, "unknown kind %q (want treefix, topdown, lca, mincut or expr)", req.Kind)
	}
	q := &wire.Query{ID: id, Kind: kind, ShardID: shardID, Op: req.Op, Vals: req.Vals}
	switch kind {
	case wire.KindLCA:
		q.Queries = make([]wire.LCAQuery, len(req.Queries))
		for i, lq := range req.Queries {
			q.Queries[i] = wire.LCAQuery{U: lq.U, V: lq.V}
		}
	case wire.KindMinCut:
		q.Edges = make([]wire.Edge, len(req.Edges))
		for i, e := range req.Edges {
			q.Edges[i] = wire.Edge{U: e.U, V: e.V, W: e.W}
		}
	case wire.KindExpr:
		q.ExprKinds = make([]uint8, len(req.ExprKinds))
		for i, k := range req.ExprKinds {
			if k < 0 || k > 255 {
				return nil, statusErrf(StatusBadRequest, "expr_kinds[%d] = %d (want 0=leaf, 1=add or 2=mul)", i, k)
			}
			q.ExprKinds[i] = uint8(k)
		}
	}
	return q, nil
}

// QueryResponseFromWire converts a binary result received from a shard
// owner into the JSON response the proxying node returns to its client.
func QueryResponseFromWire(res *wire.Result) *QueryResponse {
	resp := &QueryResponse{
		Sums:    res.Sums,
		Answers: res.Answers,
		Cost:    Cost{Energy: res.Cost.Energy, Messages: res.Cost.Messages, Depth: res.Cost.Depth},
	}
	switch res.Kind {
	case wire.KindMinCut:
		resp.MinCut = &MinCutResult{MinWeight: res.MinWeight, ArgVertex: res.ArgVertex}
	case wire.KindExpr:
		v := res.Value
		resp.Value = &v
	}
	return resp
}

// submitWire enqueues a decoded binary query on the shard, converting
// its payload into the kernel types through the connection's reusable
// scratch. Identical dispatch and validation to submit; getTree
// supplies the routed tree (consulted only for expr submissions — for a
// dyn shard it snapshots the current tree).
//
//spatialvet:errclass
func submitWire(sh submitter, q *wire.Query, getTree func() (*tree.Tree, error), scratch *wireScratch) (*engine.Future, error) {
	switch q.Kind {
	case wire.KindTreefix, wire.KindTopDown:
		opName := q.Op
		if opName == "" {
			opName = "add"
		}
		op, err := treefix.OpByName(opName)
		if err != nil {
			return nil, badRequest(err)
		}
		if q.Kind == wire.KindTreefix {
			return sh.SubmitTreefix(q.Vals, op), nil
		}
		return sh.SubmitTopDown(q.Vals, op), nil
	case wire.KindLCA:
		qs := scratch.queries[:0]
		for _, lq := range q.Queries {
			qs = append(qs, lca.Query{U: lq.U, V: lq.V})
		}
		scratch.queries = qs
		return sh.SubmitLCA(qs), nil
	case wire.KindMinCut:
		es := scratch.edges[:0]
		for _, e := range q.Edges {
			es = append(es, mincut.Edge{U: e.U, V: e.V, W: e.W})
		}
		scratch.edges = es
		return sh.SubmitMinCut(es), nil
	case wire.KindExpr:
		t, err := getTree()
		if err != nil {
			return nil, err
		}
		ks := scratch.kinds[:0]
		for _, k := range q.ExprKinds {
			if k > uint8(exprtree.Mul) {
				return nil, badRequest(fmt.Errorf("expr kind %d (want 0=leaf, 1=add or 2=mul)", k))
			}
			ks = append(ks, exprtree.NodeKind(k))
		}
		scratch.kinds = ks
		return sh.SubmitExpr(&exprtree.Expr{Tree: t, Kind: ks, Val: q.Vals}), nil
	default:
		return nil, badRequest(fmt.Errorf("unknown query kind %d", q.Kind))
	}
}
