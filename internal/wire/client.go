package wire

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"
)

// Client option defaults.
const (
	// DefaultDialTimeout bounds the TCP connect when
	// DialOptions.DialTimeout is zero.
	DefaultDialTimeout = 5 * time.Second
	// DefaultRetryBackoff is the first retry sleep when
	// DialOptions.RetryBackoff is zero.
	DefaultRetryBackoff = 10 * time.Millisecond
	// MaxRetryBackoff caps the doubling retry sleep.
	MaxRetryBackoff = time.Second
)

// DialOptions configures a Client. The zero value dials with
// DefaultDialTimeout, waits on responses without bound, accepts frames
// up to DefaultMaxFrame, surfaces redirects to the caller and never
// retries — the PR 5 client's behavior.
type DialOptions struct {
	// DialTimeout bounds the TCP connect (0 means DefaultDialTimeout).
	DialTimeout time.Duration
	// ReadTimeout bounds each call's wait for its response; on expiry
	// the connection is failed (responses are pipelined, so a lost
	// response means every later one is late too). 0 waits forever.
	ReadTimeout time.Duration
	// WriteTimeout bounds each request frame write (0 means none).
	WriteTimeout time.Duration
	// MaxFrame bounds accepted response payloads (<= 0 means
	// DefaultMaxFrame).
	MaxFrame int
	// FollowRedirects is the maximum number of StatusRedirect hops a
	// call chases before surfacing the redirect as its error. Redirect
	// targets are dialed lazily with these same options and cached on
	// the client, so a smart client converges on shard owners after one
	// hop per shard. 0 surfaces every redirect.
	FollowRedirects int
	// RetryUnavailable is the number of times a call rejected with
	// StatusUnavailable (server draining — the request was not admitted,
	// so re-sending cannot double-apply) is retried before the status is
	// surfaced. 0 never retries.
	RetryUnavailable int
	// RetryBackoff is the sleep before the first retry, doubled per
	// retry and capped at MaxRetryBackoff (0 means
	// DefaultRetryBackoff).
	RetryBackoff time.Duration
}

// Client speaks the binary protocol to one server connection. It is
// safe for concurrent use: calls are pipelined over the single
// connection (each request carries an ID; a reader goroutine routes
// each response to its waiter), which is how one client keeps a
// server's batch scheduler fed without one connection per in-flight
// request.
type Client struct {
	opts DialOptions
	conn net.Conn
	br   *bufio.Reader

	wmu  sync.Mutex // serializes writes and the write buffer
	wbuf []byte

	mu      sync.Mutex
	nextID  uint64
	pending map[uint64]chan response
	err     error // terminal connection error, set once

	// children caches lazily-dialed redirect targets, keyed by address;
	// they share opts (with redirect-chasing disabled — the hop loop
	// lives on this client) and close with it.
	cmu      sync.Mutex
	children map[string]*Client
}

type response struct {
	msg any // *Result, *DynCreated, *Mutated, *RepAck, *HandbackGrant; nil for pong
	err error
}

// errClosed is the terminal error of a deliberately closed client.
var errClosed = errors.New("wire: client closed")

// Dial connects to a binary-protocol server at addr.
func Dial(addr string, opts DialOptions) (*Client, error) {
	dt := opts.DialTimeout
	if dt <= 0 {
		dt = DefaultDialTimeout
	}
	conn, err := net.DialTimeout("tcp", addr, dt)
	if err != nil {
		return nil, err
	}
	return NewClientOptions(conn, opts), nil
}

// DialTimeout connects to a binary-protocol server at addr.
//
// Deprecated: this is the positional PR 5 dial API. Use Dial with
// DialOptions, which carries the connect timeout and more.
func DialTimeout(addr string, timeout time.Duration) (*Client, error) {
	return Dial(addr, DialOptions{DialTimeout: timeout})
}

// NewClient wraps an established connection with default options. The
// client owns conn and closes it on Close or on any protocol error.
func NewClient(conn net.Conn) *Client {
	return NewClientOptions(conn, DialOptions{})
}

// NewClientOptions wraps an established connection. The client owns
// conn and closes it on Close or on any protocol error.
func NewClientOptions(conn net.Conn, opts DialOptions) *Client {
	c := &Client{
		opts:    opts,
		conn:    conn,
		br:      bufio.NewReader(conn),
		nextID:  1,
		pending: make(map[uint64]chan response),
	}
	go c.readLoop()
	return c
}

// call registers a waiter under a fresh ID, writes the frame enc
// produces for it, and waits for the correlated response.
func (c *Client) call(enc func(dst []byte, id uint64) []byte) (any, error) {
	ch := make(chan response, 1)
	c.mu.Lock()
	if c.err != nil {
		err := c.err
		c.mu.Unlock()
		return nil, err
	}
	id := c.nextID
	c.nextID++
	c.pending[id] = ch
	c.mu.Unlock()

	c.wmu.Lock()
	c.wbuf = enc(c.wbuf[:0], id)
	if c.opts.WriteTimeout > 0 {
		_ = c.conn.SetWriteDeadline(time.Now().Add(c.opts.WriteTimeout))
	}
	//spatialvet:ignore waitunderlock -- wmu exists to serialize whole-frame writes on the shared conn; readLoop never takes it, so writers only wait on writers
	_, werr := c.conn.Write(c.wbuf)
	c.wmu.Unlock()
	if werr != nil {
		c.fail(fmt.Errorf("wire: write: %w", werr))
	}
	r := c.wait(ch)
	return r.msg, r.err
}

// wait blocks for the response, bounded by ReadTimeout. Expiry fails
// the whole connection: responses arrive in request order, so a
// response that has not arrived in time holds every later one behind
// it.
func (c *Client) wait(ch chan response) response {
	if c.opts.ReadTimeout <= 0 {
		return <-ch
	}
	t := time.NewTimer(c.opts.ReadTimeout)
	defer t.Stop()
	select {
	case r := <-ch:
		return r
	case <-t.C:
		c.fail(fmt.Errorf("wire: no response within %v", c.opts.ReadTimeout))
		return <-ch // fail delivered to every pending waiter
	}
}

// retried runs do with the retry-on-unavailable policy: a call the
// server refused at admission (StatusUnavailable) was never applied, so
// it is safe to re-send after a doubling, capped backoff.
func (c *Client) retried(on *Client, do func(*Client) (any, error)) (any, error) {
	backoff := c.opts.RetryBackoff
	if backoff <= 0 {
		backoff = DefaultRetryBackoff
	}
	for try := 0; ; try++ {
		msg, err := do(on)
		var we *Error
		if err != nil && errors.As(err, &we) && we.Status == StatusUnavailable &&
			try < c.opts.RetryUnavailable {
			time.Sleep(backoff)
			backoff *= 2
			if backoff > MaxRetryBackoff {
				backoff = MaxRetryBackoff
			}
			continue
		}
		return msg, err
	}
}

// routed runs do with both client policies: unavailable retries on each
// connection, and redirect-chasing across connections (each hop dialing
// the owner address the redirect named, bounded by FollowRedirects).
func (c *Client) routed(do func(*Client) (any, error)) (any, error) {
	cur := c
	for hops := 0; ; hops++ {
		msg, err := c.retried(cur, do)
		var we *Error
		if err == nil || !errors.As(err, &we) || we.Status != StatusRedirect ||
			we.Msg == "" || hops >= c.opts.FollowRedirects {
			return msg, err
		}
		next, derr := c.child(we.Msg)
		if derr != nil {
			return nil, fmt.Errorf("wire: following redirect to %s: %w", we.Msg, derr)
		}
		cur = next
	}
}

// child returns the cached client for a redirect target, dialing it if
// absent or dead. The dial happens outside cmu; a concurrent dial for
// the same address keeps the first registered client.
func (c *Client) child(addr string) (*Client, error) {
	c.cmu.Lock()
	if cc := c.children[addr]; cc != nil {
		cc.mu.Lock()
		dead := cc.err != nil
		cc.mu.Unlock()
		if !dead {
			c.cmu.Unlock()
			return cc, nil
		}
		delete(c.children, addr)
	}
	c.cmu.Unlock()

	opts := c.opts
	opts.FollowRedirects = 0 // hop chasing lives on the root client
	cc, err := Dial(addr, opts)
	if err != nil {
		return nil, err
	}
	c.cmu.Lock()
	defer c.cmu.Unlock()
	if prior := c.children[addr]; prior != nil {
		prior.mu.Lock()
		dead := prior.err != nil
		prior.mu.Unlock()
		if !dead {
			go cc.Close()
			return prior, nil
		}
	}
	if c.children == nil {
		c.children = make(map[string]*Client)
	}
	c.children[addr] = cc
	return cc, nil
}

// Do sends q and waits for its response. The query's ID field is
// assigned by the client; concurrent Do calls are pipelined. A non-OK
// server response comes back as an *Error (inspect its Status); a
// transport failure fails every in-flight call with the same error.
// Redirects are chased and unavailable rejections retried per the
// client's DialOptions.
func (c *Client) Do(q *Query) (*Result, error) {
	msg, err := c.routed(func(cc *Client) (any, error) {
		return cc.call(func(dst []byte, id uint64) []byte {
			q.ID = id
			return AppendQuery(dst, q)
		})
	})
	if err != nil {
		return nil, err
	}
	return msg.(*Result), nil
}

// DynCreate creates a mutable shard and returns its identity.
func (c *Client) DynCreate(dc *DynCreate) (*DynCreated, error) {
	msg, err := c.routed(func(cc *Client) (any, error) {
		return cc.call(func(dst []byte, id uint64) []byte {
			dc.ID = id
			return AppendDynCreate(dst, dc)
		})
	})
	if err != nil {
		return nil, err
	}
	return msg.(*DynCreated), nil
}

// Mutate inserts or deletes a leaf of a mutable shard. A mutation
// rejected with StatusUnavailable was refused at admission — never
// applied — so the retry policy is as safe here as for queries.
func (c *Client) Mutate(m *Mutate) (*Mutated, error) {
	msg, err := c.routed(func(cc *Client) (any, error) {
		return cc.call(func(dst []byte, id uint64) []byte {
			m.ID = id
			return AppendMutate(dst, m)
		})
	})
	if err != nil {
		return nil, err
	}
	return msg.(*Mutated), nil
}

// ShipSnapshot ships a replica snapshot (cluster replication; not
// redirected — the shipper chose the follower deliberately).
func (c *Client) ShipSnapshot(s *RepSnapshot) (*RepAck, error) {
	msg, err := c.call(func(dst []byte, id uint64) []byte {
		s.ID = id
		return AppendRepSnapshot(dst, s)
	})
	if err != nil {
		return nil, err
	}
	return msg.(*RepAck), nil
}

// ShipRecords ships replica WAL records (cluster replication; not
// redirected, like ShipSnapshot).
func (c *Client) ShipRecords(r *RepRecords) (*RepAck, error) {
	msg, err := c.call(func(dst []byte, id uint64) []byte {
		r.ID = id
		return AppendRepRecords(dst, r)
	})
	if err != nil {
		return nil, err
	}
	return msg.(*RepAck), nil
}

// Handback offers a shard back to the peer currently covering it — the
// rejoin reconciliation conversation (cluster tier; not redirected, the
// rejoiner chose the successor deliberately, like ShipSnapshot).
func (c *Client) Handback(o *HandbackOffer) (*HandbackGrant, error) {
	msg, err := c.call(func(dst []byte, id uint64) []byte {
		o.ID = id
		return AppendHandbackOffer(dst, o)
	})
	if err != nil {
		return nil, err
	}
	return msg.(*HandbackGrant), nil
}

// Ping round-trips a liveness probe.
func (c *Client) Ping() error {
	ch := make(chan response, 1)
	c.mu.Lock()
	if c.err != nil {
		err := c.err
		c.mu.Unlock()
		return err
	}
	// Pings carry no ID on the wire; responses arrive in order relative
	// to other pings, so park waiters on descending pseudo-IDs.
	id := ^c.nextID
	c.nextID++
	c.pending[id] = ch
	c.mu.Unlock()

	c.wmu.Lock()
	c.wbuf = AppendPing(c.wbuf[:0])
	if c.opts.WriteTimeout > 0 {
		_ = c.conn.SetWriteDeadline(time.Now().Add(c.opts.WriteTimeout))
	}
	//spatialvet:ignore waitunderlock -- wmu exists to serialize whole-frame writes on the shared conn; readLoop never takes it, so writers only wait on writers
	_, werr := c.conn.Write(c.wbuf)
	c.wmu.Unlock()
	if werr != nil {
		c.fail(fmt.Errorf("wire: write: %w", werr))
	}
	r := c.wait(ch)
	return r.err
}

// Close tears down the connection and every cached redirect client;
// in-flight calls fail. Close is idempotent: repeated calls are no-ops
// returning nil.
func (c *Client) Close() error {
	c.fail(errClosed)
	c.cmu.Lock()
	kids := c.children
	c.children = nil
	c.cmu.Unlock()
	for _, cc := range kids {
		_ = cc.Close()
	}
	return nil
}

func (c *Client) readLoop() {
	rd := NewReader(c.br, c.opts.MaxFrame)
	for {
		kind, payload, err := rd.Next()
		if err != nil {
			c.fail(fmt.Errorf("wire: read: %w", err))
			return
		}
		var id uint64
		var msg any
		switch kind {
		case FrameResult:
			res := new(Result)
			if err := res.Decode(payload); err != nil {
				c.fail(err)
				return
			}
			id, msg = res.ID, res
		case FrameDynCreated:
			dc := new(DynCreated)
			if err := dc.Decode(payload); err != nil {
				c.fail(err)
				return
			}
			id, msg = dc.ID, dc
		case FrameMutated:
			m := new(Mutated)
			if err := m.Decode(payload); err != nil {
				c.fail(err)
				return
			}
			id, msg = m.ID, m
		case FrameRepAck:
			a := new(RepAck)
			if err := a.Decode(payload); err != nil {
				c.fail(err)
				return
			}
			id, msg = a.ID, a
		case FrameHandbackGrant:
			g := new(HandbackGrant)
			if err := g.Decode(payload); err != nil {
				c.fail(err)
				return
			}
			id, msg = g.ID, g
		case FrameError:
			e := new(Error)
			if err := e.Decode(payload); err != nil {
				c.fail(err)
				return
			}
			if e.ID == 0 {
				// Connection-level error: no request to attribute it to,
				// so every in-flight call fails with it.
				c.fail(e)
				return
			}
			c.deliver(e.ID, response{err: e})
			continue
		case FramePong:
			c.deliverPong()
			continue
		default:
			c.fail(corruptf("unexpected frame kind %d from server", kind))
			return
		}
		c.deliver(id, response{msg: msg})
	}
}

func (c *Client) deliver(id uint64, r response) {
	c.mu.Lock()
	ch, ok := c.pending[id]
	delete(c.pending, id)
	c.mu.Unlock()
	if ok {
		ch <- r
	}
}

func (c *Client) deliverPong() {
	c.mu.Lock()
	var best uint64
	found := false
	// Oldest ping waiter = largest pseudo-ID (IDs descend from ^1).
	for id := range c.pending {
		if id > 1<<63 && (!found || id > best) {
			best, found = id, true
		}
	}
	var ch chan response
	if found {
		ch = c.pending[best]
		delete(c.pending, best)
	}
	c.mu.Unlock()
	if ch != nil {
		ch <- response{}
	}
}

// fail records the terminal error, closes the connection, and fails
// every pending call. Only the first error sticks.
func (c *Client) fail(err error) {
	c.mu.Lock()
	if c.err != nil {
		c.mu.Unlock()
		return
	}
	c.err = err
	pending := c.pending
	c.pending = make(map[uint64]chan response)
	c.mu.Unlock()
	c.conn.Close()
	for _, ch := range pending {
		ch <- response{err: err}
	}
}
