package wire

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"
)

// Client speaks the binary protocol to one server connection. It is
// safe for concurrent use: calls are pipelined over the single
// connection (each query carries an ID; a reader goroutine routes each
// response to its waiter), which is how one client keeps a server's
// batch scheduler fed without one connection per in-flight request.
type Client struct {
	conn net.Conn
	br   *bufio.Reader

	wmu  sync.Mutex // serializes writes and the write buffer
	wbuf []byte

	mu      sync.Mutex
	nextID  uint64
	pending map[uint64]chan response
	err     error // terminal connection error, set once
}

type response struct {
	res *Result
	err error
}

// Dial connects to a binary-protocol server at addr.
func Dial(addr string, timeout time.Duration) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, err
	}
	return NewClient(conn), nil
}

// NewClient wraps an established connection. The client owns conn and
// closes it on Close or on any protocol error.
func NewClient(conn net.Conn) *Client {
	c := &Client{
		conn:    conn,
		br:      bufio.NewReader(conn),
		nextID:  1,
		pending: make(map[uint64]chan response),
	}
	go c.readLoop()
	return c
}

// Do sends q and waits for its response. The query's ID field is
// assigned by the client; concurrent Do calls are pipelined. A non-OK
// server response comes back as an *Error (inspect its Status); a
// transport failure fails every in-flight call with the same error.
func (c *Client) Do(q *Query) (*Result, error) {
	ch := make(chan response, 1)

	c.mu.Lock()
	if c.err != nil {
		err := c.err
		c.mu.Unlock()
		return nil, err
	}
	q.ID = c.nextID
	c.nextID++
	c.pending[q.ID] = ch
	c.mu.Unlock()

	c.wmu.Lock()
	c.wbuf = AppendQuery(c.wbuf[:0], q)
	//spatialvet:ignore waitunderlock -- wmu exists to serialize whole-frame writes on the shared conn; readLoop never takes it, so writers only wait on writers
	_, werr := c.conn.Write(c.wbuf)
	c.wmu.Unlock()
	if werr != nil {
		c.fail(fmt.Errorf("wire: write: %w", werr))
	}

	r := <-ch
	return r.res, r.err
}

// Ping round-trips a liveness probe.
func (c *Client) Ping() error {
	ch := make(chan response, 1)
	c.mu.Lock()
	if c.err != nil {
		err := c.err
		c.mu.Unlock()
		return err
	}
	// Pings carry no ID on the wire; responses arrive in order relative
	// to other pings, so park waiters on descending pseudo-IDs.
	id := ^c.nextID
	c.nextID++
	c.pending[id] = ch
	c.mu.Unlock()

	c.wmu.Lock()
	c.wbuf = AppendPing(c.wbuf[:0])
	//spatialvet:ignore waitunderlock -- wmu exists to serialize whole-frame writes on the shared conn; readLoop never takes it, so writers only wait on writers
	_, werr := c.conn.Write(c.wbuf)
	c.wmu.Unlock()
	if werr != nil {
		c.fail(fmt.Errorf("wire: write: %w", werr))
	}
	r := <-ch
	return r.err
}

// Close tears down the connection; in-flight calls fail.
func (c *Client) Close() error {
	c.fail(errors.New("wire: client closed"))
	return nil
}

func (c *Client) readLoop() {
	rd := NewReader(c.br, DefaultMaxFrame)
	for {
		kind, payload, err := rd.Next()
		if err != nil {
			c.fail(fmt.Errorf("wire: read: %w", err))
			return
		}
		switch kind {
		case FrameResult:
			res := new(Result)
			if err := res.Decode(payload); err != nil {
				c.fail(err)
				return
			}
			c.deliver(res.ID, response{res: res})
		case FrameError:
			e := new(Error)
			if err := e.Decode(payload); err != nil {
				c.fail(err)
				return
			}
			if e.ID == 0 {
				// Connection-level error: no query to attribute it to,
				// so every in-flight call fails with it.
				c.fail(e)
				return
			}
			c.deliver(e.ID, response{err: e})
		case FramePong:
			c.deliverPong()
		default:
			c.fail(corruptf("unexpected frame kind %d from server", kind))
			return
		}
	}
}

func (c *Client) deliver(id uint64, r response) {
	c.mu.Lock()
	ch, ok := c.pending[id]
	delete(c.pending, id)
	c.mu.Unlock()
	if ok {
		ch <- r
	}
}

func (c *Client) deliverPong() {
	c.mu.Lock()
	var best uint64
	found := false
	// Oldest ping waiter = largest pseudo-ID (IDs descend from ^1).
	for id := range c.pending {
		if id > 1<<63 && (!found || id > best) {
			best, found = id, true
		}
	}
	var ch chan response
	if found {
		ch = c.pending[best]
		delete(c.pending, best)
	}
	c.mu.Unlock()
	if ch != nil {
		ch <- response{}
	}
}

// fail records the terminal error, closes the connection, and fails
// every pending call. Only the first error sticks.
func (c *Client) fail(err error) {
	c.mu.Lock()
	if c.err != nil {
		c.mu.Unlock()
		return
	}
	c.err = err
	pending := c.pending
	c.pending = make(map[uint64]chan response)
	c.mu.Unlock()
	c.conn.Close()
	for _, ch := range pending {
		ch <- response{err: err}
	}
}
