// Package wire is the binary serving protocol behind spatialtreed's
// -tcp-addr listener: a length-prefixed, CRC-checked frame format over
// raw TCP that carries the same queries as the HTTP/JSON API at a
// fraction of the encode/decode cost. It exists because the native
// backend made kernels cheap enough (E16: a 16-request treefix batch in
// ~13 ms) that HTTP/JSON marshalling and per-request heap churn became
// the dominant per-query cost for small queries — the wire tax the
// ROADMAP targets.
//
// # Frame layout
//
// Every message is one self-checking frame, reusing the `STSN`-style
// framing idiom of internal/persist (all integers little-endian):
//
//	offset 0:  magic "STWR" (4 bytes)
//	offset 4:  protocol version (1 byte; currently 1)
//	offset 5:  frame kind (1 byte; see Frame* constants)
//	offset 6:  payload length (uint32)
//	offset 10: CRC-32C (Castagnoli) of the payload (uint32)
//	offset 14: payload
//
// Payload fields are varint/uvarint encoded (strings are
// length-prefixed), so a typical small query costs tens of bytes where
// its JSON form costs hundreds. A decoder never trusts a count further
// than the bytes actually present, so arbitrary (fuzzed or corrupt)
// input can neither panic nor over-allocate — the same hardening
// contract as the persist codec, pinned by FuzzWireDecode.
//
// # Conversation shape
//
// A connection carries a sequence of frames in each direction. Clients
// send FrameQuery (or FramePing); the server answers each query with
// exactly one FrameResult or FrameError carrying the query's ID.
// Queries on one connection are processed in arrival order (like
// HTTP/1.1 on one connection); concurrency comes from multiple
// connections, whose requests coalesce into shared batches on the
// server's scheduler exactly as HTTP traffic does. ID 0 is reserved
// for connection-level errors (a frame the server could not attribute
// to a query, e.g. an oversized one).
//
// # Allocation discipline
//
// The hot path is allocation-free where lifetimes allow it: Reader owns
// a single growable frame buffer reused across frames, encoders append
// into caller-supplied buffers (GetBuf/PutBuf lends pooled ones), and
// Query.Decode reuses the Query's own slices across frames. Results
// decoded by the client are fresh allocations — they outlive the
// connection's read loop by design.
//
// # Versioning
//
// The version byte covers the whole conversation: a server receiving a
// frame with an unknown version replies with a connection-level
// StatusBadRequest error and closes. Additive changes (new frame
// kinds, new trailing payload fields guarded by their own counts) do
// not bump the version; changes to existing payload layouts do. See
// docs/protocol.md for the full rules.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"sync"
)

// Protocol constants.
const (
	// Version is the protocol version this package speaks.
	Version = 1
	// HeaderLen is the fixed frame header size.
	HeaderLen = 14
	// DefaultMaxFrame bounds a peer's declared payload length (matching
	// the HTTP layer's default body limit).
	DefaultMaxFrame = 64 << 20
	// maxNameLen bounds tree-id and operator strings.
	maxNameLen = 256
	// maxErrLen bounds error message strings.
	maxErrLen = 4096
)

// Frame kinds.
const (
	// FrameQuery carries a Query (client → server).
	FrameQuery = 1
	// FrameResult carries a Result (server → client, status OK).
	FrameResult = 2
	// FrameError carries an Error (server → client, status != OK).
	FrameError = 3
	// FramePing is an empty liveness probe (client → server).
	FramePing = 4
	// FramePong answers a ping (server → client).
	FramePong = 5
	// FrameDynCreate carries a DynCreate (client → server): create a
	// mutable shard.
	FrameDynCreate = 6
	// FrameDynCreated carries a DynCreated (server → client).
	FrameDynCreated = 7
	// FrameMutate carries a Mutate (client → server): insert/delete a
	// leaf of a mutable shard.
	FrameMutate = 8
	// FrameMutated carries a Mutated (server → client).
	FrameMutated = 9
	// FrameRepSnapshot carries a RepSnapshot (owner → follower): a full
	// dyn shard state the follower resets its replica to. The blob is
	// opaque to this package (internal/persist's snapshot codec).
	FrameRepSnapshot = 10
	// FrameRepRecords carries a RepRecords (owner → follower): WAL
	// mutation records past the follower's apply cursor.
	FrameRepRecords = 11
	// FrameRepAck carries a RepAck (follower → owner): the follower's
	// apply cursor after a RepSnapshot/RepRecords, or a resync request.
	FrameRepAck = 12
	// FrameHandbackOffer carries a HandbackOffer (rejoiner → successor):
	// a restarted ring owner asking for its shard back — a cursor probe,
	// or a claim shipping the rejoiner's stale WAL tail.
	FrameHandbackOffer = 13
	// FrameHandbackGrant carries a HandbackGrant (successor → rejoiner):
	// the fence epoch plus whatever brings the rejoiner to it — a record
	// tail, a full snapshot, or nothing (the rejoiner's copy suffices).
	FrameHandbackGrant = 14
)

// Magic is the frame magic, first on the wire.
var Magic = [4]byte{'S', 'T', 'W', 'R'}

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Query kinds, mirroring the HTTP API's kind strings.
const (
	KindTreefix = 1
	KindTopDown = 2
	KindLCA     = 3
	KindMinCut  = 4
	KindExpr    = 5
)

// KindName maps a binary query kind to the HTTP API's kind string
// ("" for an unknown kind).
func KindName(k uint8) string {
	switch k {
	case KindTreefix:
		return "treefix"
	case KindTopDown:
		return "topdown"
	case KindLCA:
		return "lca"
	case KindMinCut:
		return "mincut"
	case KindExpr:
		return "expr"
	}
	return ""
}

// KindByName maps an HTTP API kind string to the binary query kind;
// ok is false for an unknown name.
func KindByName(name string) (kind uint8, ok bool) {
	switch name {
	case "treefix":
		return KindTreefix, true
	case "topdown":
		return KindTopDown, true
	case "lca":
		return KindLCA, true
	case "mincut":
		return KindMinCut, true
	case "expr":
		return KindExpr, true
	}
	return 0, false
}

// Status is the binary protocol's response status, mirroring the HTTP
// layer's classification: client-fault statuses correspond to 4xx,
// StatusInternal to 500.
type Status uint8

// Statuses. The numeric values are part of the wire format.
const (
	StatusOK          Status = 0 // carried implicitly by FrameResult
	StatusBadRequest  Status = 1 // invalid request (HTTP 400)
	StatusNotFound    Status = 2 // unknown tree or shard id (HTTP 404)
	StatusTooMany     Status = 3 // admission queue full — backpressure (HTTP 429)
	StatusUnavailable Status = 4 // server draining (HTTP 503)
	StatusTooLarge    Status = 5 // frame beyond the size limit (HTTP 413)
	StatusInternal    Status = 6 // server-side failure (HTTP 500)
	// StatusRedirect reports that another cluster node owns the shard
	// the request addressed; the error message carries the owner's
	// binary-protocol address. Smart clients re-issue the request there
	// (HTTP 421).
	StatusRedirect Status = 7
)

// HTTPStatus returns the HTTP status code the same condition maps to on
// the JSON API.
func (s Status) HTTPStatus() int {
	switch s {
	case StatusOK:
		return 200
	case StatusBadRequest:
		return 400
	case StatusNotFound:
		return 404
	case StatusTooMany:
		return 429
	case StatusUnavailable:
		return 503
	case StatusTooLarge:
		return 413
	case StatusRedirect:
		return 421
	}
	return 500
}

func (s Status) String() string {
	switch s {
	case StatusOK:
		return "ok"
	case StatusBadRequest:
		return "bad request"
	case StatusNotFound:
		return "not found"
	case StatusTooMany:
		return "too many requests"
	case StatusUnavailable:
		return "unavailable"
	case StatusTooLarge:
		return "frame too large"
	case StatusInternal:
		return "internal error"
	case StatusRedirect:
		return "redirect"
	}
	return fmt.Sprintf("status %d", uint8(s))
}

// Routing discriminators inside a Query payload.
const (
	routeTreeID  = 1
	routeParents = 2
	routeShard   = 3
)

// ErrCorrupt reports a frame that failed structural validation: bad
// magic, a length prefix disagreeing with the bytes present, a CRC
// mismatch, or payload fields violating their invariants. A stream
// that produced it cannot be resynchronized; close the connection.
var ErrCorrupt = errors.New("wire: corrupt frame")

// ErrVersion reports a frame written by an incompatible protocol
// version.
var ErrVersion = errors.New("wire: unsupported protocol version")

// ErrTooLarge reports a frame whose declared payload exceeds the
// reader's limit. The reader discards the payload, so the stream stays
// synchronized: the caller may answer with StatusTooLarge and continue.
var ErrTooLarge = errors.New("wire: frame exceeds size limit")

func corruptf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrCorrupt, fmt.Sprintf(format, args...))
}

// LCAQuery is one lowest-common-ancestor query.
type LCAQuery struct{ U, V int }

// Edge is a weighted undirected graph edge for min-cut queries.
type Edge struct {
	U, V int
	W    int64
}

// Cost is the spatial-model cost attributed to a request (zero on
// unmetered native backends, like the JSON API's cost block).
type Cost struct{ Energy, Messages, Depth int64 }

// Query is one request, the binary twin of the HTTP API's QueryRequest.
// Exactly one of ShardID / TreeID / Parents routes it (the frame format
// makes the choice explicit, so "both set" is unrepresentable): ShardID
// addresses a mutable shard (the binary twin of /v1/dyn/{id}/query),
// TreeID a registered tree, Parents an ad-hoc tree. Vals carries
// treefix/topdown inputs and expr leaf constants; ExprKinds labels
// expr vertices (0 = leaf, 1 = add, 2 = mul).
type Query struct {
	// ID correlates the response; the client assigns it (never 0).
	ID        uint64
	Kind      uint8
	ShardID   string
	TreeID    string
	Parents   []int
	Op        string
	Vals      []int64
	Queries   []LCAQuery
	Edges     []Edge
	ExprKinds []uint8
}

// Result is one successful response, the binary twin of QueryResponse.
type Result struct {
	ID      uint64
	Kind    uint8
	Sums    []int64
	Answers []int
	// MinWeight/ArgVertex are meaningful for KindMinCut.
	MinWeight int64
	ArgVertex int
	// Value is meaningful for KindExpr.
	Value int64
	Cost  Cost
}

// Error is one failed response. ID 0 marks a connection-level error
// (the server could not attribute the frame to a query).
type Error struct {
	ID     uint64
	Status Status
	Msg    string
}

// Error implements the error interface, so an *Error can travel as the
// client's returned error.
func (e *Error) Error() string {
	return fmt.Sprintf("wire: %s: %s", e.Status, e.Msg)
}

// bufPool lends encode buffers so the hot path never allocates for
// framing. Buffers grow to their workload's high-water mark and are
// reused at that size.
var bufPool = sync.Pool{New: func() any { b := make([]byte, 0, 512); return &b }}

// GetBuf borrows a pooled encode buffer (length 0).
func GetBuf() *[]byte {
	b := bufPool.Get().(*[]byte)
	*b = (*b)[:0]
	return b
}

// PutBuf returns a buffer borrowed with GetBuf.
func PutBuf(b *[]byte) { bufPool.Put(b) }

// appendFrame appends one complete frame to dst: header, then the
// payload produced by enc, then the length and CRC fixed up in place.
func appendFrame(dst []byte, kind byte, enc func([]byte) []byte) []byte {
	base := len(dst)
	dst = append(dst, Magic[0], Magic[1], Magic[2], Magic[3], Version, kind,
		0, 0, 0, 0, 0, 0, 0, 0)
	if enc != nil {
		dst = enc(dst)
	}
	payload := dst[base+HeaderLen:]
	binary.LittleEndian.PutUint32(dst[base+6:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(dst[base+10:], crc32.Checksum(payload, castagnoli))
	return dst
}

// AppendPing appends a ping frame to dst.
func AppendPing(dst []byte) []byte { return appendFrame(dst, FramePing, nil) }

// AppendPong appends a pong frame to dst.
func AppendPong(dst []byte) []byte { return appendFrame(dst, FramePong, nil) }

// AppendQuery appends q as one query frame to dst.
func AppendQuery(dst []byte, q *Query) []byte {
	return appendFrame(dst, FrameQuery, func(b []byte) []byte {
		b = binary.AppendUvarint(b, q.ID)
		b = append(b, q.Kind)
		if q.ShardID != "" {
			b = append(b, routeShard)
			b = appendStr(b, q.ShardID)
		} else if q.TreeID != "" {
			b = append(b, routeTreeID)
			b = appendStr(b, q.TreeID)
		} else {
			b = append(b, routeParents)
			b = binary.AppendUvarint(b, uint64(len(q.Parents)))
			for _, p := range q.Parents {
				b = binary.AppendVarint(b, int64(p))
			}
		}
		switch q.Kind {
		case KindTreefix, KindTopDown:
			b = appendStr(b, q.Op)
			b = appendVals(b, q.Vals)
		case KindLCA:
			b = binary.AppendUvarint(b, uint64(len(q.Queries)))
			for _, lq := range q.Queries {
				b = binary.AppendUvarint(b, uint64(lq.U))
				b = binary.AppendUvarint(b, uint64(lq.V))
			}
		case KindMinCut:
			b = binary.AppendUvarint(b, uint64(len(q.Edges)))
			for _, e := range q.Edges {
				b = binary.AppendUvarint(b, uint64(e.U))
				b = binary.AppendUvarint(b, uint64(e.V))
				b = binary.AppendVarint(b, e.W)
			}
		case KindExpr:
			b = binary.AppendUvarint(b, uint64(len(q.ExprKinds)))
			b = append(b, q.ExprKinds...)
			b = appendVals(b, q.Vals)
		}
		return b
	})
}

// AppendResult appends r as one result frame to dst.
func AppendResult(dst []byte, r *Result) []byte {
	return appendFrame(dst, FrameResult, func(b []byte) []byte {
		b = binary.AppendUvarint(b, r.ID)
		b = append(b, r.Kind)
		b = binary.AppendVarint(b, r.Cost.Energy)
		b = binary.AppendVarint(b, r.Cost.Messages)
		b = binary.AppendVarint(b, r.Cost.Depth)
		switch r.Kind {
		case KindTreefix, KindTopDown:
			b = appendVals(b, r.Sums)
		case KindLCA:
			b = binary.AppendUvarint(b, uint64(len(r.Answers)))
			for _, a := range r.Answers {
				b = binary.AppendUvarint(b, uint64(a))
			}
		case KindMinCut:
			b = binary.AppendVarint(b, r.MinWeight)
			b = binary.AppendVarint(b, int64(r.ArgVertex))
		case KindExpr:
			b = binary.AppendVarint(b, r.Value)
		}
		return b
	})
}

// AppendError appends e as one error frame to dst.
func AppendError(dst []byte, e *Error) []byte {
	return appendFrame(dst, FrameError, func(b []byte) []byte {
		b = binary.AppendUvarint(b, e.ID)
		b = append(b, byte(e.Status))
		msg := e.Msg
		if len(msg) > maxErrLen {
			msg = msg[:maxErrLen]
		}
		b = appendStr(b, msg)
		return b
	})
}

func appendStr(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

func appendVals(dst []byte, vals []int64) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(vals)))
	for _, v := range vals {
		dst = binary.AppendVarint(dst, v)
	}
	return dst
}

// Decode decodes the payload of a query frame into q, reusing q's
// slices when their capacity suffices — the zero-alloc path a serving
// connection leans on. Any structural violation returns ErrCorrupt
// (wrapped); q's contents are then unspecified.
//
//spatialvet:errclass
func (q *Query) Decode(payload []byte) error {
	d := decoder{buf: payload}
	var err error
	if q.ID, err = d.uvarint(); err != nil {
		return err
	}
	kind, err := d.byte()
	if err != nil {
		return err
	}
	q.Kind = kind
	route, err := d.byte()
	if err != nil {
		return err
	}
	q.ShardID, q.TreeID, q.Parents = "", "", q.Parents[:0]
	switch route {
	case routeShard:
		if q.ShardID, err = d.str(maxNameLen); err != nil {
			return err
		}
	case routeTreeID:
		if q.TreeID, err = d.str(maxNameLen); err != nil {
			return err
		}
	case routeParents:
		n, err := d.count("vertex")
		if err != nil {
			return err
		}
		q.Parents = growInts(q.Parents, n)
		for i := range q.Parents {
			p, err := d.varint()
			if err != nil {
				return err
			}
			q.Parents[i] = int(p)
		}
	default:
		return corruptf("unknown route %d", route)
	}
	q.Op, q.Vals, q.Queries, q.Edges, q.ExprKinds =
		"", q.Vals[:0], q.Queries[:0], q.Edges[:0], q.ExprKinds[:0]
	switch q.Kind {
	case KindTreefix, KindTopDown:
		if q.Op, err = d.str(maxNameLen); err != nil {
			return err
		}
		if q.Vals, err = d.vals(q.Vals); err != nil {
			return err
		}
	case KindLCA:
		n, err := d.count("query")
		if err != nil {
			return err
		}
		if cap(q.Queries) < n {
			q.Queries = make([]LCAQuery, n)
		}
		q.Queries = q.Queries[:n]
		for i := range q.Queries {
			u, err := d.uvarint()
			if err != nil {
				return err
			}
			v, err := d.uvarint()
			if err != nil {
				return err
			}
			q.Queries[i] = LCAQuery{U: int(u), V: int(v)}
		}
	case KindMinCut:
		n, err := d.count("edge")
		if err != nil {
			return err
		}
		if cap(q.Edges) < n {
			q.Edges = make([]Edge, n)
		}
		q.Edges = q.Edges[:n]
		for i := range q.Edges {
			u, err := d.uvarint()
			if err != nil {
				return err
			}
			v, err := d.uvarint()
			if err != nil {
				return err
			}
			w, err := d.varint()
			if err != nil {
				return err
			}
			q.Edges[i] = Edge{U: int(u), V: int(v), W: w}
		}
	case KindExpr:
		n, err := d.count("expr vertex")
		if err != nil {
			return err
		}
		if cap(q.ExprKinds) < n {
			q.ExprKinds = make([]uint8, n)
		}
		q.ExprKinds = q.ExprKinds[:n]
		if n > 0 {
			copy(q.ExprKinds, d.buf[:n])
			d.buf = d.buf[n:]
		}
		if q.Vals, err = d.vals(q.Vals); err != nil {
			return err
		}
	default:
		return corruptf("unknown query kind %d", q.Kind)
	}
	return d.drained()
}

// Decode decodes the payload of a result frame into r. Slices are
// freshly allocated: a decoded Result owns its memory.
//
//spatialvet:errclass
func (r *Result) Decode(payload []byte) error {
	d := decoder{buf: payload}
	var err error
	if r.ID, err = d.uvarint(); err != nil {
		return err
	}
	if r.Kind, err = d.byte(); err != nil {
		return err
	}
	if r.Cost.Energy, err = d.varint(); err != nil {
		return err
	}
	if r.Cost.Messages, err = d.varint(); err != nil {
		return err
	}
	if r.Cost.Depth, err = d.varint(); err != nil {
		return err
	}
	r.Sums, r.Answers, r.MinWeight, r.ArgVertex, r.Value = nil, nil, 0, 0, 0
	switch r.Kind {
	case KindTreefix, KindTopDown:
		if r.Sums, err = d.vals(nil); err != nil {
			return err
		}
	case KindLCA:
		n, err := d.count("answer")
		if err != nil {
			return err
		}
		r.Answers = make([]int, n)
		for i := range r.Answers {
			a, err := d.uvarint()
			if err != nil {
				return err
			}
			r.Answers[i] = int(a)
		}
	case KindMinCut:
		if r.MinWeight, err = d.varint(); err != nil {
			return err
		}
		av, err := d.varint()
		if err != nil {
			return err
		}
		r.ArgVertex = int(av)
	case KindExpr:
		if r.Value, err = d.varint(); err != nil {
			return err
		}
	default:
		return corruptf("unknown result kind %d", r.Kind)
	}
	return d.drained()
}

// Decode decodes the payload of an error frame into e.
//
//spatialvet:errclass
func (e *Error) Decode(payload []byte) error {
	d := decoder{buf: payload}
	var err error
	if e.ID, err = d.uvarint(); err != nil {
		return err
	}
	st, err := d.byte()
	if err != nil {
		return err
	}
	e.Status = Status(st)
	if e.Msg, err = d.str(maxErrLen); err != nil {
		return err
	}
	return d.drained()
}

func growInts(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	return s[:n]
}

// Reader reads frames from a stream, reusing one growable buffer: the
// payload returned by Next is valid only until the following Next
// call. The reader never allocates in proportion to a declared length
// it has not actually received.
type Reader struct {
	r      io.Reader
	header [HeaderLen]byte
	buf    []byte
	max    int
}

// NewReader wraps r; maxFrame bounds accepted payload lengths
// (<= 0 means DefaultMaxFrame). Wrap r in a bufio.Reader if it is an
// unbuffered connection.
func NewReader(r io.Reader, maxFrame int) *Reader {
	if maxFrame <= 0 {
		maxFrame = DefaultMaxFrame
	}
	return &Reader{r: r, max: maxFrame}
}

// Next reads one frame and returns its kind and payload (valid until
// the next call). io.EOF on a clean frame boundary means the peer
// closed; ErrTooLarge means the oversized payload was discarded and
// the stream remains usable; ErrCorrupt and ErrVersion mean the stream
// cannot be trusted further.
//
//spatialvet:errclass
func (r *Reader) Next() (kind byte, payload []byte, err error) {
	if _, err := io.ReadFull(r.r, r.header[:]); err != nil {
		if errors.Is(err, io.ErrUnexpectedEOF) {
			return 0, nil, corruptf("truncated header")
		}
		return 0, nil, err
	}
	if [4]byte(r.header[:4]) != Magic {
		return 0, nil, corruptf("bad magic %q", r.header[:4])
	}
	if r.header[4] != Version {
		return 0, nil, fmt.Errorf("%w: version %d (supported: %d)", ErrVersion, r.header[4], Version)
	}
	kind = r.header[5]
	plen := int(binary.LittleEndian.Uint32(r.header[6:]))
	if plen > r.max {
		// Discard the payload so the stream stays framed; the caller
		// can answer StatusTooLarge and keep serving.
		if _, err := io.CopyN(io.Discard, r.r, int64(plen)); err != nil {
			return kind, nil, corruptf("discarding oversized frame: %v", err)
		}
		return kind, nil, fmt.Errorf("%w: %d bytes (limit %d)", ErrTooLarge, plen, r.max)
	}
	if cap(r.buf) < plen {
		r.buf = make([]byte, plen)
	}
	payload = r.buf[:plen]
	if _, err := io.ReadFull(r.r, payload); err != nil {
		return kind, nil, corruptf("truncated payload: %v", err)
	}
	if sum := crc32.Checksum(payload, castagnoli); sum != binary.LittleEndian.Uint32(r.header[10:]) {
		return kind, nil, corruptf("payload CRC mismatch")
	}
	return kind, payload, nil
}

// decoder consumes primitive values, validating every length against
// the bytes actually remaining before allocating anything (the persist
// codec's discipline).
type decoder struct{ buf []byte }

func (d *decoder) byte() (byte, error) {
	if len(d.buf) == 0 {
		return 0, corruptf("truncated byte")
	}
	b := d.buf[0]
	d.buf = d.buf[1:]
	return b, nil
}

func (d *decoder) uvarint() (uint64, error) {
	v, n := binary.Uvarint(d.buf)
	if n <= 0 {
		return 0, corruptf("truncated or overlong uvarint")
	}
	d.buf = d.buf[n:]
	return v, nil
}

func (d *decoder) varint() (int64, error) {
	v, n := binary.Varint(d.buf)
	if n <= 0 {
		return 0, corruptf("truncated or overlong varint")
	}
	d.buf = d.buf[n:]
	return v, nil
}

func (d *decoder) str(limit int) (string, error) {
	n, err := d.uvarint()
	if err != nil {
		return "", err
	}
	if n > uint64(limit) {
		return "", corruptf("string length %d exceeds %d", n, limit)
	}
	if n > uint64(len(d.buf)) {
		return "", corruptf("string length %d exceeds %d remaining bytes", n, len(d.buf))
	}
	s := string(d.buf[:n])
	d.buf = d.buf[n:]
	return s, nil
}

// count reads an element count bounded by the remaining payload (every
// element costs at least one byte, so a count exceeding the bytes
// present is corrupt — and rejecting it here keeps allocation O(input)).
func (d *decoder) count(what string) (int, error) {
	n, err := d.uvarint()
	if err != nil {
		return 0, err
	}
	if n > uint64(len(d.buf)) {
		return 0, corruptf("%s count %d exceeds %d remaining bytes", what, n, len(d.buf))
	}
	return int(n), nil
}

// vals reads a counted varint slice into dst (reusing its capacity;
// pass nil for a fresh allocation).
func (d *decoder) vals(dst []int64) ([]int64, error) {
	n, err := d.count("value")
	if err != nil {
		return nil, err
	}
	if cap(dst) < n {
		dst = make([]int64, n)
	}
	dst = dst[:n]
	for i := range dst {
		if dst[i], err = d.varint(); err != nil {
			return nil, err
		}
	}
	return dst, nil
}

// drained asserts the payload was consumed exactly.
func (d *decoder) drained() error {
	if len(d.buf) != 0 {
		return corruptf("%d trailing payload bytes", len(d.buf))
	}
	return nil
}
