package wire

import (
	"bufio"
	"bytes"
	"encoding/hex"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden frame files under testdata/wire/")

// goldenFrames pins one encoding of every cluster-era frame. The bytes
// under testdata/wire/ are the protocol contract: a codec change that
// alters them breaks rolling upgrades between cluster nodes, so this
// test only goes green on purpose (regenerate with -update).
var goldenFrames = []struct {
	name   string
	kind   uint8
	encode func(dst []byte) []byte
	decode func(payload []byte) (any, error)
	want   any
}{
	{
		name: "dyncreate",
		kind: FrameDynCreate,
		encode: func(dst []byte) []byte {
			return AppendDynCreate(dst, &DynCreate{
				ID: 7, ShardID: "c00000000000002a-3",
				Parents: []int{-1, 0, 0, 1}, Epsilon: 0.25, Backend: "native",
			})
		},
		decode: func(p []byte) (any, error) { var v DynCreate; err := v.Decode(p); return &v, err },
		want: &DynCreate{ID: 7, ShardID: "c00000000000002a-3",
			Parents: []int{-1, 0, 0, 1}, Epsilon: 0.25, Backend: "native"},
	},
	{
		name: "dyncreated",
		kind: FrameDynCreated,
		encode: func(dst []byte) []byte {
			return AppendDynCreated(dst, &DynCreated{ID: 7, ShardID: "c00000000000002a-3", N: 4, Backend: "native"})
		},
		decode: func(p []byte) (any, error) { var v DynCreated; err := v.Decode(p); return &v, err },
		want:   &DynCreated{ID: 7, ShardID: "c00000000000002a-3", N: 4, Backend: "native"},
	},
	{
		name: "mutate",
		kind: FrameMutate,
		encode: func(dst []byte) []byte {
			return AppendMutate(dst, &Mutate{ID: 8, ShardID: "c00000000000002a-3", Op: OpInsert, Arg: 2})
		},
		decode: func(p []byte) (any, error) { var v Mutate; err := v.Decode(p); return &v, err },
		want:   &Mutate{ID: 8, ShardID: "c00000000000002a-3", Op: OpInsert, Arg: 2},
	},
	{
		name: "mutated",
		kind: FrameMutated,
		encode: func(dst []byte) []byte {
			return AppendMutated(dst, &Mutated{ID: 8, Vertex: 4, Moved: 0, Epoch: 11, N: 5})
		},
		decode: func(p []byte) (any, error) { var v Mutated; err := v.Decode(p); return &v, err },
		want:   &Mutated{ID: 8, Vertex: 4, Moved: 0, Epoch: 11, N: 5},
	},
	{
		name: "repsnapshot",
		kind: FrameRepSnapshot,
		encode: func(dst []byte) []byte {
			return AppendRepSnapshot(dst, &RepSnapshot{ID: 9, ShardID: "c00000000000002a-3", Blob: []byte{0xde, 0xad, 0xbe, 0xef}})
		},
		decode: func(p []byte) (any, error) { var v RepSnapshot; err := v.Decode(p); return &v, err },
		want:   &RepSnapshot{ID: 9, ShardID: "c00000000000002a-3", Blob: []byte{0xde, 0xad, 0xbe, 0xef}},
	},
	{
		name: "reprecords",
		kind: FrameRepRecords,
		encode: func(dst []byte) []byte {
			return AppendRepRecords(dst, &RepRecords{ID: 10, ShardID: "c00000000000002a-3", Recs: []RepRecord{
				{Type: OpInsert, Epoch: 12, Arg: 2, Result: 5},
				{Type: OpDelete, Epoch: 13, Arg: 5, Result: 4},
			}})
		},
		decode: func(p []byte) (any, error) { var v RepRecords; err := v.Decode(p); return &v, err },
		want: &RepRecords{ID: 10, ShardID: "c00000000000002a-3", Recs: []RepRecord{
			{Type: OpInsert, Epoch: 12, Arg: 2, Result: 5},
			{Type: OpDelete, Epoch: 13, Arg: 5, Result: 4},
		}},
	},
	{
		name: "repack",
		kind: FrameRepAck,
		encode: func(dst []byte) []byte {
			return AppendRepAck(dst, &RepAck{ID: 10, ShardID: "c00000000000002a-3", Cursor: 13, Code: AckNeedSync, Msg: "gap"})
		},
		decode: func(p []byte) (any, error) { var v RepAck; err := v.Decode(p); return &v, err },
		want:   &RepAck{ID: 10, ShardID: "c00000000000002a-3", Cursor: 13, Code: AckNeedSync, Msg: "gap"},
	},
	{
		name: "handbackoffer",
		kind: FrameHandbackOffer,
		encode: func(dst []byte) []byte {
			return AppendHandbackOffer(dst, &HandbackOffer{
				ID: 11, ShardID: "c00000000000002a-3", Phase: HandbackClaim, Cursor: 13,
				Recs: []RepRecord{
					{Type: OpInsert, Epoch: 12, Arg: 2, Result: 5},
					{Type: OpDelete, Epoch: 13, Arg: 5, Result: 4},
				},
			})
		},
		decode: func(p []byte) (any, error) { var v HandbackOffer; err := v.Decode(p); return &v, err },
		want: &HandbackOffer{ID: 11, ShardID: "c00000000000002a-3", Phase: HandbackClaim, Cursor: 13,
			Recs: []RepRecord{
				{Type: OpInsert, Epoch: 12, Arg: 2, Result: 5},
				{Type: OpDelete, Epoch: 13, Arg: 5, Result: 4},
			}},
	},
	{
		name: "handbackgrant",
		kind: FrameHandbackGrant,
		encode: func(dst []byte) []byte {
			return AppendHandbackGrant(dst, &HandbackGrant{
				ID: 11, ShardID: "c00000000000002a-3", Mode: GrantTail, Fence: 15,
				Recs: []RepRecord{
					{Type: OpInsert, Epoch: 14, Arg: 1, Result: 6},
					{Type: OpInsert, Epoch: 15, Arg: 6, Result: 7},
				},
			})
		},
		decode: func(p []byte) (any, error) { var v HandbackGrant; err := v.Decode(p); return &v, err },
		want: &HandbackGrant{ID: 11, ShardID: "c00000000000002a-3", Mode: GrantTail, Fence: 15,
			Recs: []RepRecord{
				{Type: OpInsert, Epoch: 14, Arg: 1, Result: 6},
				{Type: OpInsert, Epoch: 15, Arg: 6, Result: 7},
			}},
	},
}

// TestClusterFrameRoundTrip: encode → frame-read → decode must
// reproduce every field of every cluster-era frame.
func TestClusterFrameRoundTrip(t *testing.T) {
	for _, tc := range goldenFrames {
		t.Run(tc.name, func(t *testing.T) {
			b := tc.encode(nil)
			rd := NewReader(bufio.NewReader(bytes.NewReader(b)), 0)
			kind, payload, err := rd.Next()
			if err != nil {
				t.Fatalf("frame read: %v", err)
			}
			if kind != tc.kind {
				t.Fatalf("kind = %d, want %d", kind, tc.kind)
			}
			got, err := tc.decode(payload)
			if err != nil {
				t.Fatalf("decode: %v", err)
			}
			if !reflect.DeepEqual(got, tc.want) {
				t.Fatalf("round trip:\n got %+v\nwant %+v", got, tc.want)
			}
		})
	}
}

// TestGoldenFrames pins the exact bytes under testdata/wire/.
func TestGoldenFrames(t *testing.T) {
	for _, tc := range goldenFrames {
		t.Run(tc.name, func(t *testing.T) {
			path := filepath.Join("testdata", "wire", tc.name+".hex")
			b := tc.encode(nil)
			enc := hex.EncodeToString(b) + "\n"
			if *updateGolden {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(enc), 0o644); err != nil {
					t.Fatal(err)
				}
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("%v (regenerate with -update)", err)
			}
			if string(want) != enc {
				t.Fatalf("frame bytes changed vs %s:\n got %s\nwant %s\n(an intentional protocol change must bump the version and regenerate with -update)",
					path, enc, want)
			}
			// The checked-in bytes must also still decode to the same
			// struct — the other half of cross-version compatibility.
			raw, err := hex.DecodeString(string(bytes.TrimSpace(want)))
			if err != nil {
				t.Fatal(err)
			}
			rd := NewReader(bufio.NewReader(bytes.NewReader(raw)), 0)
			_, payload, err := rd.Next()
			if err != nil {
				t.Fatalf("golden frame read: %v", err)
			}
			got, err := tc.decode(payload)
			if err != nil {
				t.Fatalf("golden decode: %v", err)
			}
			if !reflect.DeepEqual(got, tc.want) {
				t.Fatalf("golden decode:\n got %+v\nwant %+v", got, tc.want)
			}
		})
	}
}
